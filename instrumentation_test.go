package tlc

import (
	"sort"
	"sync/atomic"
	"testing"

	"tlc/internal/probe"
)

// TestProbeHooksObserveTimedAccesses installs both probe callbacks and
// checks they see exactly the timed interval's traffic: warm-up is
// functional (Warm, not Access), so the access-event count must equal the
// Result's L2 load + store counts, and a mesh design must route at least
// one message per L2 access.
func TestProbeHooksObserveTimedAccesses(t *testing.T) {
	var accesses, hits, messages atomic.Uint64
	opt := DefaultOptions()
	opt.RunInstructions = 200_000
	opt.Probe = &ProbeHooks{
		OnAccess: func(ev probe.AccessEvent) {
			accesses.Add(1)
			if ev.Hit {
				hits.Add(1)
			}
		},
		OnMessage: func(ev probe.MessageEvent) { messages.Add(1) },
	}
	res, err := Run(DesignSNUCA2, "gcc", opt)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := accesses.Load(), res.L2Loads+res.L2Stores; got != want {
		t.Errorf("OnAccess fired %d times, want L2Loads+L2Stores = %d", got, want)
	}
	if hits.Load() == 0 {
		t.Error("no access event reported Hit after warm-up")
	}
	if messages.Load() == 0 {
		t.Error("OnMessage never fired on a mesh design")
	}
}

// TestProbeHooksDoNotPerturbResults runs the same configuration with and
// without probes installed; the hooks are observers only, so every Result
// field must be identical.
func TestProbeHooksDoNotPerturbResults(t *testing.T) {
	opt := DefaultOptions()
	opt.RunInstructions = 200_000
	base, err := Run(DesignTLC, "gcc", opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Probe = &ProbeHooks{
		OnAccess:  func(probe.AccessEvent) {},
		OnMessage: func(probe.MessageEvent) {},
	}
	probed, err := Run(DesignTLC, "gcc", opt)
	if err != nil {
		t.Fatal(err)
	}
	if base != probed {
		t.Errorf("probe hooks changed the result:\nwithout: %+v\nwith:    %+v", base, probed)
	}
}

// TestOnMetricsSnapshotMatchesResult checks the registry snapshot delivered
// to OnMetrics agrees with the Result assembled from the same registry: the
// counters behind the flat fields must read identically through both paths.
func TestOnMetricsSnapshotMatchesResult(t *testing.T) {
	var got []MetricsEvent
	opt := DefaultOptions()
	opt.RunInstructions = 200_000
	opt.OnMetrics = func(ev MetricsEvent) { got = append(got, ev) }
	res, err := Run(DesignDNUCA, "gcc", opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("OnMetrics fired %d times, want 1", len(got))
	}
	ev := got[0]
	if ev.Design != DesignDNUCA || ev.Benchmark != "gcc" {
		t.Errorf("event labeled %v/%q, want DNUCA/gcc", ev.Design, ev.Benchmark)
	}
	if ev.Cycles != res.Cycles {
		t.Errorf("event Cycles = %d, Result Cycles = %d", ev.Cycles, res.Cycles)
	}
	counters := ev.Snapshot.Counters()
	if counters["l2.loads"] != res.L2Loads {
		t.Errorf("snapshot l2.loads = %d, Result.L2Loads = %d", counters["l2.loads"], res.L2Loads)
	}
	if counters["l2.stores"] != res.L2Stores {
		t.Errorf("snapshot l2.stores = %d, Result.L2Stores = %d", counters["l2.stores"], res.L2Stores)
	}
	if v, ok := ev.Snapshot.Value("power.network_w"); !ok || v != res.NetworkPowerW {
		t.Errorf("snapshot power.network_w = %v (ok=%v), Result.NetworkPowerW = %v", v, ok, res.NetworkPowerW)
	}
	if v, ok := ev.Snapshot.Value("l2.close_hit_pct"); !ok || v != res.CloseHitPct {
		t.Errorf("snapshot l2.close_hit_pct = %v (ok=%v), Result.CloseHitPct = %v", v, ok, res.CloseHitPct)
	}
	// Layers beyond the L2 must be present: the spine spans the whole
	// machine, not just the cache.
	for _, name := range []string{"cpu.l1d.misses", "cpu.rob.stalls", "workload.mem_ops"} {
		if _, ok := ev.Snapshot.Value(name); !ok {
			t.Errorf("snapshot missing %s — a non-cache layer did not register", name)
		}
	}
}

// TestSampledMetricsExtendToEveryCounter checks sampled mode's generic
// per-counter confidence intervals: every registered counter appears in
// SampledResult.Metrics (sorted), and the cache-traffic rates are plausible.
func TestSampledMetricsExtendToEveryCounter(t *testing.T) {
	opt := DefaultOptions()
	opt.RunInstructions = 1_000_000
	opt.SampleIntervals = 8
	opt.SampleLength = 25_000
	sres, err := RunSampled(DesignTLC, "gcc", opt)
	if err != nil {
		t.Fatal(err)
	}
	if sres.Intervals != 8 {
		t.Fatalf("ran %d intervals, want 8", sres.Intervals)
	}
	if len(sres.Metrics) == 0 {
		t.Fatal("SampledResult.Metrics is empty")
	}
	if !sort.SliceIsSorted(sres.Metrics, func(i, j int) bool {
		return sres.Metrics[i].Name < sres.Metrics[j].Name
	}) {
		t.Error("SampledResult.Metrics not sorted by name")
	}
	byName := make(map[string]MetricCI, len(sres.Metrics))
	for _, m := range sres.Metrics {
		if m.CI95 < 0 {
			t.Errorf("%s: negative CI95 %v", m.Name, m.CI95)
		}
		byName[m.Name] = m
	}
	loads, ok := byName["l2.loads"]
	if !ok {
		t.Fatal("sampled metrics missing l2.loads")
	}
	if loads.MeanPer1K <= 0 {
		t.Errorf("l2.loads rate = %v per 1K instructions, want > 0", loads.MeanPer1K)
	}
	// The per-interval rate times the detailed instruction count must land
	// near the (unscaled) detailed-mode counter total.
	detailed := loads.MeanPer1K * float64(sres.DetailedInstructions) / 1000
	scaled := detailed * float64(opt.RunInstructions) / float64(sres.DetailedInstructions)
	if ratio := scaled / float64(sres.L2Loads); ratio < 0.99 || ratio > 1.01 {
		t.Errorf("sampled l2.loads rate inconsistent with Result.L2Loads: ratio %v", ratio)
	}
}
