package tlc

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"tlc/internal/cpu"
	"tlc/internal/machine"
	"tlc/internal/snapshot"
	"tlc/internal/workload"
)

// cmpOptions is the scale the CMP tests run at: enough warm-up for real
// cache state, short timed intervals.
func cmpOptions() Options {
	return Options{WarmInstructions: 200_000, RunInstructions: 100_000, Seed: 7}
}

// TestCMPSingleCoreEquivalence is the PR's non-negotiable invariant: a
// one-core Machine over the same prepared state replays the legacy
// single-core path bit-identically — same Result, same full registry
// snapshot — for every design and every benchmark. RunSpec itself routes
// N=1 around the CMP spine entirely; this pins that the spine, when asked
// to run one core, would have produced the same numbers anyway.
func TestCMPSingleCoreEquivalence(t *testing.T) {
	opt := cmpOptions()
	for _, d := range Designs() {
		for _, spec := range workload.Specs() {
			var ref MetricsSnapshot
			ropt := opt
			ropt.OnMetrics = func(ev MetricsEvent) { ref = ev.Snapshot }
			want, err := RunSpec(d, spec, ropt)
			if err != nil {
				t.Fatalf("%v/%s reference run: %v", d, spec.Name, err)
			}

			inst, core, gen, err := prepare(d, spec, opt)
			if err != nil {
				t.Fatalf("%v/%s prepare: %v", d, spec.Name, err)
			}
			m := machine.New([]*cpu.Core{core}, []cpu.Stream{gen}, nil)
			cr := m.Run(opt.RunInstructions)
			if uint64(cr.Cycles) != want.Cycles || cr.Instructions != want.Instructions {
				t.Fatalf("%v/%s: machine arm %d cycles / %d instrs, legacy %d / %d",
					d, spec.Name, cr.Cycles, cr.Instructions, want.Cycles, want.Instructions)
			}
			if got := inst.Metrics().Snapshot(cr.Cycles); !reflect.DeepEqual(got, ref) {
				for i := range got {
					if i < len(ref) && got[i] != ref[i] {
						t.Errorf("%v/%s: metric %q: %+v != %+v", d, spec.Name, got[i].Name, got[i], ref[i])
					}
				}
				t.Fatalf("%v/%s: registry snapshots differ", d, spec.Name)
			}
		}
	}
}

// TestCMPRunAllDesigns drives a 2-core migratory run through every design:
// the CMP arm must compose with each of the six L2 models, produce
// machine-wide totals, and show coherence traffic.
func TestCMPRunAllDesigns(t *testing.T) {
	opt := cmpOptions()
	opt.Cores = 2
	opt.Sharing = SharingSpec{Pattern: "migratory"}
	for _, d := range Designs() {
		var snap MetricsSnapshot
		opt.OnMetrics = func(ev MetricsEvent) { snap = ev.Snapshot }
		res, err := RunSpec(d, workload.Specs()[1], opt)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if res.Instructions != 2*opt.RunInstructions {
			t.Fatalf("%v: %d instructions, want %d", d, res.Instructions, 2*opt.RunInstructions)
		}
		if res.Cycles == 0 || res.IPC <= 0 {
			t.Fatalf("%v: empty timing: %+v", d, res)
		}
		for _, name := range []string{"coh.busrd", "coh.busrdx", "cmp.arb.requests", "noc.port.injections"} {
			if v, ok := snap.Value(name); !ok || v == 0 {
				t.Fatalf("%v: metric %s = %v (present %v), want nonzero", d, name, v, ok)
			}
		}
		if v, ok := snap.Value("coh.invalidations"); !ok || v == 0 {
			t.Fatalf("%v: no invalidations under migratory sharing (got %v, present %v)", d, v, ok)
		}
	}
}

// TestCMPFourCorePerCoreMetrics checks the 4-core producer-consumer run
// publishes per-core counter sets and that the plain aggregate names equal
// the per-core sums.
func TestCMPFourCorePerCoreMetrics(t *testing.T) {
	opt := cmpOptions()
	opt.Cores = 4
	opt.Sharing = SharingSpec{Pattern: "producer-consumer", SharedFrac: 0.2}
	var snap MetricsSnapshot
	opt.OnMetrics = func(ev MetricsEvent) { snap = ev.Snapshot }
	res, err := RunSpec(Designs()[0], workload.Specs()[1], opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions != 4*opt.RunInstructions {
		t.Fatalf("%d instructions, want %d", res.Instructions, 4*opt.RunInstructions)
	}
	for _, base := range []string{"cpu.l1d.hits", "workload.mem_ops", "workload.shared_refs"} {
		var sum float64
		for i := 0; i < 4; i++ {
			name := "core." + string(rune('0'+i)) + "." + base
			v, ok := snap.Value(name)
			if !ok {
				t.Fatalf("per-core metric %s missing", name)
			}
			sum += v
		}
		agg, ok := snap.Value(base)
		if !ok || agg != sum {
			t.Fatalf("aggregate %s = %v (present %v), per-core sum %v", base, agg, ok, sum)
		}
	}
	// Producer-consumer on 4 cores must invalidate consumer copies and
	// downgrade producer lines as consumers read them back.
	for _, name := range []string{"coh.invalidations", "coh.writebacks"} {
		if v, _ := snap.Value(name); v == 0 {
			t.Fatalf("%s = 0 under producer-consumer sharing", name)
		}
	}

	// Determinism: the identical options replay to the identical snapshot.
	var snap2 MetricsSnapshot
	opt.OnMetrics = func(ev MetricsEvent) { snap2 = ev.Snapshot }
	res2, err := RunSpec(Designs()[0], workload.Specs()[1], opt)
	if err != nil {
		t.Fatal(err)
	}
	if res2 != res || !reflect.DeepEqual(snap2, snap) {
		t.Fatal("4-core replay diverged")
	}
}

// TestCMPOptionsValidation pins the one-line errors the CLIs surface.
func TestCMPOptionsValidation(t *testing.T) {
	spec := workload.Specs()[0]
	d := Designs()[0]
	cases := []struct {
		opt  Options
		frag string
	}{
		{Options{Cores: -1}, "at least 1"},
		{Options{Cores: 65}, "64-core"},
		{Options{Cores: 2, Sharing: SharingSpec{Pattern: "gossip"}}, "unknown sharing pattern"},
		{Options{Sharing: SharingSpec{SharedFrac: 2}}, "outside [0,1]"},
	}
	for _, c := range cases {
		if _, err := RunSpec(d, spec, c.opt); err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("RunSpec(%+v) error = %v, want mention of %q", c.opt, err, c.frag)
		}
		if _, err := RunSpecSampled(d, spec, Options{SampleIntervals: 2, SampleLength: 1000, Cores: c.opt.Cores, Sharing: c.opt.Sharing}); err == nil {
			t.Errorf("RunSpecSampled(%+v) accepted invalid CMP options", c.opt)
		}
	}
}

// TestCMPSampled checks the CMP arm composes with sampled execution: the
// machine fast-forwards functionally between detailed intervals and the
// totals scale by core count.
func TestCMPSampled(t *testing.T) {
	opt := Options{
		WarmInstructions: 200_000,
		RunInstructions:  200_000,
		Seed:             7,
		Cores:            2,
		Sharing:          SharingSpec{Pattern: "read-mostly"},
		SampleIntervals:  4,
		SampleLength:     20_000,
	}
	res, err := RunSpecSampled(Designs()[0], workload.Specs()[1], opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Intervals != 4 {
		t.Fatalf("%d intervals, want 4", res.Intervals)
	}
	if want := uint64(4 * 20_000 * 2); res.DetailedInstructions != want {
		t.Fatalf("%d detailed instructions, want %d", res.DetailedInstructions, want)
	}
	if res.Instructions != 2*opt.RunInstructions || res.Cycles == 0 || res.IPC <= 0 {
		t.Fatalf("sampled CMP totals wrong: %+v", res.Result)
	}
	res2, err := RunSpecSampled(Designs()[0], workload.Specs()[1], opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res2, res) {
		t.Fatal("sampled CMP replay diverged")
	}
}

// TestCMPCheckpointRoundTrip is the CMP warm-state satellite: a 2-core
// machine's checkpoint (cores, streams, L2, coherence directory) restores
// bit-identically, a corrupted disk file degrades to a miss that re-warms
// to the same numbers, and provenance gates both restore directions.
func TestCMPCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opt := cmpOptions()
	opt.WarmInstructions = 500_000
	opt.Cores = 2
	opt.Sharing = SharingSpec{Pattern: "producer-consumer"}
	d := Designs()[0]
	spec := workload.Specs()[1]

	run := func(store *snapshot.Store) (Result, MetricsSnapshot) {
		o := opt
		o.Checkpoints = store
		var snap MetricsSnapshot
		o.OnMetrics = func(ev MetricsEvent) { snap = ev.Snapshot }
		res, err := RunSpec(d, spec, o)
		if err != nil {
			t.Fatal(err)
		}
		return res, snap
	}

	store := snapshot.NewStore(4, dir)
	want, wantSnap := run(store)
	if st := store.Stats(); st.Puts != 1 || st.Misses != 1 {
		t.Fatalf("first run store stats %+v, want 1 put / 1 miss", st)
	}
	got, gotSnap := run(store)
	if st := store.Stats(); st.Hits != 1 {
		t.Fatalf("second run store stats %+v, want a hit", st)
	}
	if got != want || !reflect.DeepEqual(gotSnap, wantSnap) {
		t.Fatal("checkpoint-restored CMP run is not bit-identical")
	}

	// A fresh store over the same directory reads the disk tier.
	got, gotSnap = run(snapshot.NewStore(4, dir))
	if got != want || !reflect.DeepEqual(gotSnap, wantSnap) {
		t.Fatal("disk-restored CMP run is not bit-identical")
	}

	// Corrupt the stored file: the next run must degrade to a miss,
	// re-warm, and still land on the same numbers.
	files, err := filepath.Glob(filepath.Join(dir, "ckpt-*.gob"))
	if err != nil || len(files) != 1 {
		t.Fatalf("checkpoint files on disk: %v (%v)", files, err)
	}
	if err := os.WriteFile(files[0], []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, gotSnap = run(snapshot.NewStore(4, dir))
	if got != want || !reflect.DeepEqual(gotSnap, wantSnap) {
		t.Fatal("re-warmed run after corruption is not bit-identical")
	}
}

// TestCMPCheckpointProvenance pins the restore gates directly: a
// single-core checkpoint (nil CMP) never restores into a CMP machine, a
// CMP checkpoint never restores into a single-core run, and a checkpoint
// from a machine of another width misses.
func TestCMPCheckpointProvenance(t *testing.T) {
	if restoreCheckpoint(snapshot.Checkpoint{CMP: &snapshot.CMPCheckpoint{}}, nil, nil, nil) {
		t.Fatal("single-core restore accepted a CMP checkpoint")
	}
	twoCores := make([]*cpu.Core, 2)
	twoGens := make([]*workload.CMPStream, 2)
	if restoreCMPCheckpoint(snapshot.Checkpoint{}, twoCores, nil, twoGens, nil) {
		t.Fatal("CMP restore accepted a single-core checkpoint (nil CMP)")
	}
	narrow := &snapshot.CMPCheckpoint{Cores: make([]cpu.State, 1), Gens: make([]workload.CMPState, 1)}
	if restoreCMPCheckpoint(snapshot.Checkpoint{CMP: narrow}, twoCores, nil, twoGens, nil) {
		t.Fatal("CMP restore accepted a checkpoint of another core count")
	}
}

// TestCMPKeySeparation: the CMP axis must separate content and checkpoint
// keys — core counts and sharing specs land on distinct keys, while
// Cores 0 and 1 (both "one core") share one.
func TestCMPKeySeparation(t *testing.T) {
	base := cmpOptions()
	if a, b := base.ContentKey(), withCores(base, 1).ContentKey(); a != b {
		t.Fatal("Cores 0 and Cores 1 key apart — they are the same machine")
	}
	seen := map[string]string{base.ContentKey(): "single-core"}
	variants := map[string]Options{
		"2 cores":           withCores(base, 2),
		"4 cores":           withCores(base, 4),
		"2 cores migratory": withSharing(withCores(base, 2), SharingSpec{Pattern: "migratory"}),
		"2 cores mig 2MB":   withSharing(withCores(base, 2), SharingSpec{Pattern: "migratory", SharedMB: 2}),
	}
	for label, o := range variants {
		k := o.ContentKey()
		if prev, dup := seen[k]; dup {
			t.Fatalf("%s and %s share a content key", label, prev)
		}
		seen[k] = label
	}
}

func withCores(o Options, n int) Options { o.Cores = n; return o }

func withSharing(o Options, s SharingSpec) Options { o.Sharing = s; return o }
