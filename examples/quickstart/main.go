// Quickstart: build the base Transmission Line Cache, run the gcc-like
// workload on the Table 3 machine, and print the headline statistics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tlc"
)

func main() {
	// The default options run a scaled experiment: automatic cache
	// warm-up followed by 2 M timed instructions.
	opt := tlc.DefaultOptions()

	res, err := tlc.Run(tlc.DesignTLC, "gcc", opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ran %d instructions of %q on %v in %d cycles (IPC %.2f)\n",
		res.Instructions, res.Benchmark, res.Design, res.Cycles, res.IPC)
	fmt.Printf("L2: %d loads, %d stores, %.3f misses/1K instructions\n",
		res.L2Loads, res.L2Stores, res.MissesPer1K)
	fmt.Printf("mean lookup latency: %.1f cycles (uncontended design range 10-16)\n",
		res.MeanLookup)
	fmt.Printf("predictable lookups: %.1f%% — the property that lets a\n", res.PredictablePct)
	fmt.Println("dynamic scheduler speculate on L2 hits (Section 6.1)")
	fmt.Printf("transmission-line utilization: %.2f%% of %d lines\n",
		res.LinkUtilization*100, tlc.TotalLines(tlc.DesignTLC))
	fmt.Printf("network dynamic power: %.1f mW\n", res.NetworkPowerW*1000)

	// Compare against the conventional-wire baseline in one line.
	base, err := tlc.Run(tlc.DesignSNUCA2, "gcc", opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnormalized execution time vs SNUCA2: %.3f\n",
		float64(res.Cycles)/float64(base.Cycles))
}
