// Powerarea reproduces the paper's physical-cost comparison (Tables 7-9):
// substrate area, communication-network transistor demand, and dynamic
// network power for DNUCA versus the base TLC design.
//
//	go run ./examples/powerarea
package main

import (
	"fmt"
	"log"

	"tlc"
)

func main() {
	fmt.Println("Substrate area (Table 7)")
	fmt.Printf("%-8s %10s %10s %12s %8s\n", "design", "storage", "channel", "controller", "total")
	var dnucaTotal, tlcTotal float64
	for _, d := range []tlc.Design{tlc.DesignDNUCA, tlc.DesignTLC} {
		a := tlc.Area(d)
		fmt.Printf("%-8v %8.1f mm2 %7.1f mm2 %9.1f mm2 %5.1f mm2\n",
			d, a.StorageMM2, a.ChannelMM2, a.ControlMM2, a.TotalMM2())
		if d == tlc.DesignDNUCA {
			dnucaTotal = a.TotalMM2()
		} else {
			tlcTotal = a.TotalMM2()
		}
	}
	fmt.Printf("TLC saves %.0f%% substrate area (paper: 18%%)\n\n",
		100*(1-tlcTotal/dnucaTotal))

	fmt.Println("Network transistors (Table 8)")
	for _, d := range []tlc.Design{tlc.DesignDNUCA, tlc.DesignTLC} {
		n := tlc.Transistors(d)
		fmt.Printf("%-8v %10.2g transistors %8.0f Mlambda gate width\n",
			d, float64(n.Count), n.GateWidthLambda/1e6)
	}
	ratio := float64(tlc.Transistors(tlc.DesignDNUCA).Count) /
		float64(tlc.Transistors(tlc.DesignTLC).Count)
	fmt.Printf("transistor reduction: %.0fx (paper: >50x)\n\n", ratio)

	fmt.Println("Network dynamic power (Table 9)")
	fmt.Printf("%-8s %12s %12s %10s\n", "bench", "DNUCA (mW)", "TLC (mW)", "savings")
	opt := tlc.DefaultOptions()
	var totalSavings float64
	benches := tlc.Benchmarks()
	for _, b := range benches {
		dr, err := tlc.Run(tlc.DesignDNUCA, b, opt)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := tlc.Run(tlc.DesignTLC, b, opt)
		if err != nil {
			log.Fatal(err)
		}
		saving := 1 - tr.NetworkPowerW/dr.NetworkPowerW
		totalSavings += saving
		fmt.Printf("%-8s %10.1f %12.1f %9.0f%%\n",
			b, dr.NetworkPowerW*1000, tr.NetworkPowerW*1000, saving*100)
	}
	fmt.Printf("\naverage network power reduction: %.0f%% (paper: 61%%)\n",
		100*totalSavings/float64(len(benches)))
}
