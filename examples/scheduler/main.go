// Scheduler reproduces the performance-predictability study (Section 6.1,
// Table 6 columns 7-8, Figure 6): a dynamic instruction scheduler that
// speculatively wakes up an L2 load's dependents needs to know when the
// lookup will resolve. TLC resolves at a statically known per-bank
// latency; DNUCA's migration, searches, and mesh contention make its
// resolution time hard to predict, forcing replays.
//
//	go run ./examples/scheduler
package main

import (
	"fmt"
	"log"

	"tlc"
)

func main() {
	opt := tlc.DefaultOptions()

	fmt.Println("L2 lookup predictability: TLC vs DNUCA")
	fmt.Println()
	fmt.Printf("%-8s | %18s | %18s\n", "", "mean lookup (cy)", "predictable (%)")
	fmt.Printf("%-8s | %8s %9s | %8s %9s\n", "bench", "DNUCA", "TLC", "DNUCA", "TLC")
	fmt.Println("---------+--------------------+-------------------")

	var dnucaMin, dnucaMax, tlcMin, tlcMax float64
	first := true
	for _, b := range tlc.Benchmarks() {
		dr, err := tlc.Run(tlc.DesignDNUCA, b, opt)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := tlc.Run(tlc.DesignTLC, b, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s | %8.1f %9.1f | %7.1f%% %8.1f%%\n",
			b, dr.MeanLookup, tr.MeanLookup, dr.PredictablePct, tr.PredictablePct)
		if first {
			dnucaMin, dnucaMax = dr.MeanLookup, dr.MeanLookup
			tlcMin, tlcMax = tr.MeanLookup, tr.MeanLookup
			first = false
		}
		dnucaMin = min(dnucaMin, dr.MeanLookup)
		dnucaMax = max(dnucaMax, dr.MeanLookup)
		tlcMin = min(tlcMin, tr.MeanLookup)
		tlcMax = max(tlcMax, tr.MeanLookup)
	}

	fmt.Println()
	fmt.Printf("TLC mean lookup spans %.1f-%.1f cycles across all benchmarks;\n", tlcMin, tlcMax)
	fmt.Printf("DNUCA spans %.1f-%.1f. A scheduler wiring TLC's per-bank latency\n", dnucaMin, dnucaMax)
	fmt.Println("into its wakeup logic replays rarely; with DNUCA it cannot even")
	fmt.Println("know which bank will answer (Section 6.1's speculative memory")
	fmt.Println("scheduling argument).")
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
