// Reliability quantifies the paper's Section 4 noise strategy: TLC's
// single-ended voltage-mode lines rely on conservative setup/hold margins
// plus end-to-end ECC at the central controller. This example sweeps the
// residual bit-error rate and shows what the ECC machinery costs: nothing
// at realistic rates, and graceful degradation far beyond them.
//
//	go run ./examples/reliability
package main

import (
	"fmt"
	"log"

	"tlc"
)

func main() {
	opt := tlc.DefaultOptions()
	opt.RunInstructions = 1_000_000

	clean, err := tlc.Run(tlc.DesignTLC, "gcc", opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("TLC end-to-end ECC under transmission-line noise (gcc)")
	fmt.Println()
	fmt.Printf("%-12s %14s %12s %12s %10s\n",
		"bit error", "corrections", "retries", "retry rate", "slowdown")
	for _, ber := range []float64{0, 1e-6, 1e-5, 1e-4, 5e-4, 2e-3} {
		o := opt
		o.BitErrorRate = ber
		res, err := tlc.Run(tlc.DesignTLC, "gcc", o)
		if err != nil {
			log.Fatal(err)
		}
		retryRate := float64(res.ECCRetries) / float64(res.L2Loads)
		fmt.Printf("%-12.0e %14d %12d %11.3f%% %9.3fx\n",
			ber, res.ECCCorrections, res.ECCRetries, retryRate*100,
			float64(res.Cycles)/float64(clean.Cycles))
	}

	fmt.Println()
	fmt.Println("Single-bit upsets are repaired inline by the (72,64) SEC-DED code;")
	fmt.Println("only detected double-bit errors force a re-request. The paper's")
	fmt.Println("conservative setup and hold margins target residual rates far below")
	fmt.Println("1e-6, where this table shows the ECC path is entirely free.")
}
