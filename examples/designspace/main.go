// Designspace sweeps the whole TLC family — base TLC plus the three
// optimized designs that trade transmission lines for latency and
// complexity — across the twelve benchmarks, reproducing the shape of the
// paper's Figures 7 and 8: link utilization rises as lines shrink from
// 2048 to 352, while execution time stays nearly flat.
//
//	go run ./examples/designspace            # all benchmarks
//	go run ./examples/designspace mcf swim   # a subset
package main

import (
	"fmt"
	"log"
	"os"

	"tlc"
)

func main() {
	benches := tlc.Benchmarks()
	if len(os.Args) > 1 {
		benches = os.Args[1:]
	}
	opt := tlc.DefaultOptions()

	fmt.Println("TLC family design space: wires vs performance")
	fmt.Println()
	fmt.Printf("%-12s %8s %14s\n", "design", "lines", "uncontended")
	for _, d := range tlc.TLCFamily() {
		min, max := tlc.UncontendedRange(d)
		fmt.Printf("%-12v %8d %10d-%d cy\n", d, tlc.TotalLines(d), min, max)
	}
	fmt.Println()

	header := fmt.Sprintf("%-8s", "bench")
	for _, d := range tlc.TLCFamily() {
		header += fmt.Sprintf(" | %-10v util%%/norm", d)
	}
	fmt.Println(header)

	for _, b := range benches {
		base, err := tlc.Run(tlc.DesignSNUCA2, b, opt)
		if err != nil {
			log.Fatal(err)
		}
		row := fmt.Sprintf("%-8s", b)
		for _, d := range tlc.TLCFamily() {
			r, err := tlc.Run(d, b, opt)
			if err != nil {
				log.Fatal(err)
			}
			row += fmt.Sprintf(" |   %5.2f%% / %.3f   ",
				r.LinkUtilization*100, float64(r.Cycles)/float64(base.Cycles))
		}
		fmt.Println(row)
	}

	fmt.Println()
	fmt.Println("Reading the table: utilization climbs roughly in proportion to the")
	fmt.Println("removed wires (Figure 7) while normalized execution time barely")
	fmt.Println("moves (Figure 8) — the base design's bandwidth is overprovisioned,")
	fmt.Println("so TLCopt350 delivers the same performance with 6x fewer lines.")
}
