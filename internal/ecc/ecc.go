// Package ecc implements the end-to-end error protection the paper leans
// on for transmission-line noise (Section 4): "Remaining faults on the
// transmission lines could be repaired using end-to-end ECC checks",
// generated and checked in the central controller, as the IBM POWER4
// already did for its on-chip L2 [37].
//
// The code is a (72,64) single-error-correct / double-error-detect
// Hamming code with overall parity — the standard SEC-DED arrangement for
// 64-bit datapaths. A 64-byte cache block is protected as eight
// independently coded 64-bit words, so any single bit flip per word is
// corrected in place and any double flip per word is detected and forces
// a retransmission.
package ecc

import "math/bits"

// CheckBits is the number of check bits per 64-bit data word: 7 Hamming
// syndrome bits plus overall parity.
const CheckBits = 8

// WordsPerBlock is the number of coded words in a 64-byte cache block.
const WordsPerBlock = 8

// BlockOverheadBits reports the total check bits a protected block carries
// on the wire: 64 bits, an eighth of the payload.
const BlockOverheadBits = CheckBits * WordsPerBlock

// Encode computes the check byte for a 64-bit data word: bits 0-6 are the
// Hamming syndrome over the data's coded positions, bit 7 is overall
// parity of data plus syndrome.
func Encode(data uint64) uint8 {
	var syn uint8
	for i := 0; i < 64; i++ {
		if data&(1<<uint(i)) != 0 {
			syn ^= uint8(position(i) & 0x7f)
		}
	}
	parity := uint8(bits.OnesCount64(data)+bits.OnesCount8(syn)) & 1
	return syn | parity<<7
}

// Result classifies a decode.
type Result int

const (
	// OK: no error detected.
	OK Result = iota
	// Corrected: a single-bit error was corrected.
	Corrected
	// Uncorrectable: a double-bit (or worse, detected) error.
	Uncorrectable
)

func (r Result) String() string {
	switch r {
	case OK:
		return "ok"
	case Corrected:
		return "corrected"
	case Uncorrectable:
		return "uncorrectable"
	default:
		return "Result(?)"
	}
}

// Decode checks a received (data, check) pair and returns the corrected
// data word and the classification. Correction covers any single flipped
// bit anywhere in the 72-bit codeword; check-bit flips are recognized and
// leave the data intact. Two flipped bits are detected as uncorrectable.
func Decode(data uint64, check uint8) (uint64, Result) {
	// The syndrome difference names the flipped code position; the
	// overall parity of the *received* codeword (even when clean, by
	// construction) distinguishes odd from even flip counts.
	synDiff := (check ^ Encode(data)) & 0x7f
	wholeParity := uint8(bits.OnesCount64(data)+bits.OnesCount8(check)) & 1

	switch {
	case synDiff == 0 && wholeParity == 0:
		return data, OK
	case wholeParity == 1:
		// Odd number of flips: a single-bit error. A zero syndrome
		// difference means the overall parity bit itself flipped; a
		// coded position names a data bit to repair; any other value
		// names a flipped syndrome check bit.
		if synDiff == 0 {
			return data, Corrected
		}
		if bit, ok := dataBit(int(synDiff)); ok {
			return data ^ 1<<uint(bit), Corrected
		}
		return data, Corrected
	default:
		// Even number of flips with a nonzero syndrome: double error.
		return data, Uncorrectable
	}
}

// position maps data bit i (0-63) to its Hamming code position: the
// non-power-of-two positions of a 127-position code, in order.
func position(i int) int {
	p := codePositions[i]
	return p
}

// dataBit inverts position: which data bit lives at code position p.
func dataBit(p int) (int, bool) {
	i, ok := positionToBit[p]
	return i, ok
}

var codePositions [64]int
var positionToBit map[int]int

func init() {
	positionToBit = make(map[int]int, 64)
	i := 0
	for p := 1; p < 128 && i < 64; p++ {
		if p&(p-1) == 0 {
			continue // power of two: reserved for check bits
		}
		codePositions[i] = p
		positionToBit[p] = i
		i++
	}
}

// Block protects a 64-byte cache block as eight coded words.
type Block struct {
	Data  [WordsPerBlock]uint64
	Check [WordsPerBlock]uint8
}

// EncodeBlock codes a block's payload.
func EncodeBlock(data [WordsPerBlock]uint64) Block {
	var b Block
	b.Data = data
	for i, w := range data {
		b.Check[i] = Encode(w)
	}
	return b
}

// DecodeBlock checks and repairs all eight words, returning the corrected
// payload, the per-block classification (the worst word's), and how many
// words were corrected.
func DecodeBlock(b Block) ([WordsPerBlock]uint64, Result, int) {
	out := b.Data
	worst := OK
	corrected := 0
	for i := range b.Data {
		w, res := Decode(b.Data[i], b.Check[i])
		out[i] = w
		switch res {
		case Corrected:
			corrected++
			if worst == OK {
				worst = Corrected
			}
		case Uncorrectable:
			worst = Uncorrectable
		}
	}
	return out, worst, corrected
}
