package ecc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCleanWordDecodesOK(t *testing.T) {
	for _, w := range []uint64{0, 1, 0xdeadbeefcafef00d, ^uint64(0)} {
		c := Encode(w)
		got, res := Decode(w, c)
		if res != OK || got != w {
			t.Fatalf("clean word %#x decoded (%#x,%v)", w, got, res)
		}
	}
}

func TestSingleDataBitFlipCorrected(t *testing.T) {
	w := uint64(0x123456789abcdef0)
	c := Encode(w)
	for bit := 0; bit < 64; bit++ {
		corrupted := w ^ 1<<uint(bit)
		got, res := Decode(corrupted, c)
		if res != Corrected {
			t.Fatalf("bit %d flip classified %v", bit, res)
		}
		if got != w {
			t.Fatalf("bit %d flip not repaired: %#x != %#x", bit, got, w)
		}
	}
}

func TestSingleCheckBitFlipCorrected(t *testing.T) {
	w := uint64(0xfeedface12345678)
	c := Encode(w)
	for bit := 0; bit < 8; bit++ {
		got, res := Decode(w, c^1<<uint(bit))
		if res != Corrected {
			t.Fatalf("check bit %d flip classified %v", bit, res)
		}
		if got != w {
			t.Fatalf("check bit %d flip corrupted data", bit)
		}
	}
}

func TestDoubleDataBitFlipDetected(t *testing.T) {
	w := uint64(0x0f0f0f0f0f0f0f0f)
	c := Encode(w)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		a := rng.Intn(64)
		b := rng.Intn(64)
		if a == b {
			continue
		}
		corrupted := w ^ 1<<uint(a) ^ 1<<uint(b)
		_, res := Decode(corrupted, c)
		if res != Uncorrectable {
			t.Fatalf("double flip (%d,%d) classified %v", a, b, res)
		}
	}
}

func TestDataPlusCheckFlipDetectedOrSafe(t *testing.T) {
	// One data bit plus one check bit: even total weight change =>
	// detected as uncorrectable (we never miscorrect silently into wrong
	// data classified OK).
	w := uint64(0xaaaa5555aaaa5555)
	c := Encode(w)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		db := rng.Intn(64)
		cb := rng.Intn(8)
		got, res := Decode(w^1<<uint(db), c^1<<uint(cb))
		if res == OK {
			t.Fatal("two flips classified OK")
		}
		if res == Corrected && got != w {
			t.Fatalf("miscorrection accepted: %#x != %#x", got, w)
		}
		// Uncorrectable is the expected, safe outcome.
	}
}

func TestBlockRoundTrip(t *testing.T) {
	var payload [WordsPerBlock]uint64
	rng := rand.New(rand.NewSource(3))
	for i := range payload {
		payload[i] = rng.Uint64()
	}
	b := EncodeBlock(payload)
	got, res, corrected := DecodeBlock(b)
	if res != OK || corrected != 0 || got != payload {
		t.Fatal("clean block round trip failed")
	}
	// One flip in each of three words: all corrected.
	b.Data[1] ^= 1 << 5
	b.Data[4] ^= 1 << 63
	b.Data[7] ^= 1
	got, res, corrected = DecodeBlock(b)
	if res != Corrected || corrected != 3 || got != payload {
		t.Fatalf("triple single-bit repair failed: %v corrected=%d", res, corrected)
	}
	// A double flip in one word poisons the block.
	b.Data[2] ^= 3
	_, res, _ = DecodeBlock(b)
	if res != Uncorrectable {
		t.Fatalf("double flip classified %v", res)
	}
}

func TestOverheadConstants(t *testing.T) {
	if BlockOverheadBits != 64 {
		t.Fatalf("block overhead %d bits, want 64 (an eighth of the payload)", BlockOverheadBits)
	}
}

// Property: for random words, any single flip anywhere in the 72-bit
// codeword is repaired to the original data.
func TestQuickSingleFlipAlwaysRepaired(t *testing.T) {
	f := func(w uint64, pos uint8) bool {
		c := Encode(w)
		p := int(pos) % 72
		var gd uint64
		var gc uint8
		if p < 64 {
			gd, gc = w^1<<uint(p), c
		} else {
			gd, gc = w, c^1<<uint(p-64)
		}
		got, res := Decode(gd, gc)
		return res == Corrected && got == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: distinct single-bit data flips produce distinct syndromes
// (the code is a proper Hamming code).
func TestQuickSyndromesDistinct(t *testing.T) {
	w := uint64(0)
	c := Encode(w)
	seen := map[uint8]int{}
	for bit := 0; bit < 64; bit++ {
		syn := (Encode(w^1<<uint(bit)) ^ c) & 0x7f
		if prev, dup := seen[syn]; dup {
			t.Fatalf("bits %d and %d share syndrome %#x", prev, bit, syn)
		}
		seen[syn] = bit
	}
}
