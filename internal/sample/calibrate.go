package sample

// Model-assisted calibration for phase-sampled cycle estimates. The plain
// stratified estimator (one representative speaks for its whole cluster)
// carries the full within-cluster CPI variance, and on these workloads that
// variance is dominated by rare long-latency events — a handful of L2
// misses per window at hundreds of cycles each — whose per-window counts
// are irreducible sampling noise, not phase structure. The fix is a GREG
// (generalized regression) estimator from survey statistics: regress the
// measured representatives' CPI on per-window event rates whose FULL-RUN
// totals the caller knows exactly (L2 misses via warm-path probing,
// mispredicts from the workload generator, shadow-L1 misses from the
// profile), then predict total cycles from those exact totals. Windows'
// event-count fluctuations then cancel exactly instead of being amplified
// by cluster weight, which is worth 3-5x in worst-case error on the
// miss-sparse commercial workloads (oltp, sjbb).

import "math"

// SpanObs is one timed representative's measurement for calibration:
// the cluster it represents, its measured CPI, and its covariate rates
// (events per instruction over the measured window, same order as
// Calibration.Totals).
type SpanObs struct {
	Cluster int
	CPI     float64
	X       []float64
}

// Calibration carries everything Calibrate needs beyond the profile: the
// per-representative observations (cluster order), the exact full-run
// covariate event totals, and per-covariate slope bounds.
type Calibration struct {
	Obs []SpanObs
	// Totals[j] is the exact number of covariate-j events in the full
	// timed region (all windows, measured or not).
	Totals []float64
	// Bounds[j] clamps covariate j's fitted slope (cycles per event) to a
	// physically plausible range; a clamped fit refits the intercept so the
	// weighted residuals still sum to zero. Bounds keep a sparse covariate
	// (a few events across all representatives) from extrapolating a wild
	// slope across the full-run total.
	Bounds [][2]float64
}

// Calibrate replaces est.PhaseCycles with the model-assisted estimate when
// the fit is well-posed, and reports whether it did. On any degeneracy —
// non-finite solution, or a prediction outside [¼, 4]x the stratified
// estimate — the stratified value stands, so calibration can only ever be
// applied deliberately and never silently produces garbage. Deterministic:
// observations are consumed in slice order with fixed-order arithmetic.
func (e *Estimate) Calibrate(p Profile, c Calibration) bool {
	if len(c.Obs) == 0 || len(c.Totals) == 0 || len(c.Bounds) != len(c.Totals) {
		return false
	}
	d := 1 + len(c.Totals)
	xtx := make([][]float64, d)
	for i := range xtx {
		xtx[i] = make([]float64, d)
	}
	xty := make([]float64, d)
	row := make([]float64, d)
	for _, ob := range c.Obs {
		if len(ob.X) != len(c.Totals) || ob.Cluster < 0 || ob.Cluster >= len(p.Weights) {
			return false
		}
		row[0] = 1
		copy(row[1:], ob.X)
		wt := float64(p.Weights[ob.Cluster])
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				xtx[i][j] += wt * row[i] * row[j]
			}
			xty[i] += wt * row[i] * ob.CPI
		}
	}
	// Tiny ridge for rank only (a covariate constant across representatives
	// would otherwise make the system singular); small enough to leave any
	// identified slope untouched.
	for i := range xtx {
		xtx[i][i] += 1e-9
	}
	theta := solveSym(xtx, xty)
	clamped := false
	for j, b := range c.Bounds {
		if theta[1+j] < b[0] {
			theta[1+j], clamped = b[0], true
		} else if theta[1+j] > b[1] {
			theta[1+j], clamped = b[1], true
		}
	}
	if clamped {
		// Refit the intercept so the weighted residuals of the clamped
		// model sum to zero — the property that makes GREG unbiased over
		// the sampled strata.
		var num, den float64
		for _, ob := range c.Obs {
			r := ob.CPI
			for j, x := range ob.X {
				r -= theta[1+j] * x
			}
			wt := float64(p.Weights[ob.Cluster])
			num += wt * r
			den += wt
		}
		theta[0] = num / den
	}
	pred := theta[0] * float64(p.Total)
	for j, tot := range c.Totals {
		pred += theta[1+j] * tot
	}
	for _, v := range theta {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	if base := e.PhaseCycles; !(pred > 0.25*base && pred < 4*base) {
		return false
	}
	e.PhaseCycles = pred
	return true
}

// solveSym solves the d×d linear system a·x = b by Gaussian elimination
// with partial pivoting. a and b are consumed.
func solveSym(a [][]float64, b []float64) []float64 {
	d := len(b)
	for c := 0; c < d; c++ {
		p := c
		for r := c + 1; r < d; r++ {
			if math.Abs(a[r][c]) > math.Abs(a[p][c]) {
				p = r
			}
		}
		a[c], a[p] = a[p], a[c]
		b[c], b[p] = b[p], b[c]
		if a[c][c] == 0 {
			continue
		}
		for r := c + 1; r < d; r++ {
			f := a[r][c] / a[c][c]
			for j := c; j < d; j++ {
				a[r][j] -= f * a[c][j]
			}
			b[r] -= f * b[c]
		}
	}
	x := make([]float64, d)
	for i := d - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < d; j++ {
			s -= a[i][j] * x[j]
		}
		if a[i][i] != 0 {
			x[i] = s / a[i][i]
		}
	}
	return x
}
