package sample

// Phase-aware representative sampling: instead of N uniform detailed
// intervals, a cheap profiling pass slices the timed region into fixed
// instruction windows, extracts one feature vector per window
// (cpu.PhaseProfiler), k-means clusters the windows into program phases,
// and the runner times one representative interval per cluster — scaling
// each cluster's contribution by its instruction weight, in the spirit of
// SimPoint-style interval selection (PAPERS.md: "Improving the
// Representativeness of Simulation Intervals for the Cache Memory
// System"). Everything here is bit-deterministic for a fixed profile key:
// the k-means seeding derives from the key via splitmix64, iteration
// bounds are fixed, and every tie breaks toward the lowest index — so a
// profile recomputed anywhere in a fleet selects the same intervals as one
// fetched from a peer.

import (
	"fmt"
	"hash/fnv"
	"math"

	"tlc/internal/cpu"
	"tlc/internal/sim"
	"tlc/internal/stats"
)

// ProfileFormat versions the phase-profile layout. Bump it whenever the
// feature vector, clustering, or selection semantics change, so stale
// cached profiles miss instead of selecting wrong intervals.
const ProfileFormat = 1

// Profile is a workload's clustered phase profile: per-window feature
// vectors, their cluster assignment, and the selected representative
// window per cluster. It is design-independent (features come from shadow
// caches of the fixed system geometry), so one profile serves every design
// of a benchmark — and, cached by content key, the whole fleet. All fields
// are exported for gob/JSON round-tripping; interval selection rides only
// on the integer fields, so a profile survives any wire encoding intact.
type Profile struct {
	// Version is ProfileFormat at build time.
	Version int
	// Key is the content key the profile was built for (it also seeded the
	// clustering).
	Key string
	// Total is the timed instruction count profiled (per core for CMP).
	Total uint64
	// Windows and Clusters echo the Options the profile was built with.
	Windows  int
	Clusters int
	// Features holds one row per window; the last column is the CPI proxy
	// (cpu.PhaseFeatures.Vector).
	Features [][]float64
	// Instr is the instructions consumed by each window (the window-length
	// split of Total).
	Instr []uint64
	// Assign maps each window to its cluster (post-compaction ids).
	Assign []int
	// Reps[k] is cluster k's representative window, strictly ascending —
	// clusters are relabeled by representative position, so executing
	// Reps in order is executing clusters in order.
	Reps []int
	// Weights[k] is cluster k's total instruction count; the weights sum
	// to Total.
	Weights []uint64
}

// Check validates a (possibly fetched) profile against the run it is about
// to steer. A mismatch means the profile came from a different
// configuration or format era and must be recomputed.
func (p Profile) Check(total uint64, opt Options) error {
	if p.Version != ProfileFormat {
		return fmt.Errorf("sample: profile version %d, want %d", p.Version, ProfileFormat)
	}
	if p.Total != total {
		return fmt.Errorf("sample: profile covers %d instructions, run has %d", p.Total, total)
	}
	if p.Windows != opt.PhaseWindows || p.Clusters != opt.PhaseClusters {
		return fmt.Errorf("sample: profile shape %d windows/%d clusters, options want %d/%d",
			p.Windows, p.Clusters, opt.PhaseWindows, opt.PhaseClusters)
	}
	if len(p.Features) != p.Windows || len(p.Instr) != p.Windows || len(p.Assign) != p.Windows {
		return fmt.Errorf("sample: profile arrays sized %d/%d/%d, want %d windows",
			len(p.Features), len(p.Instr), len(p.Assign), p.Windows)
	}
	if len(p.Reps) == 0 || len(p.Reps) > p.Clusters || len(p.Weights) != len(p.Reps) {
		return fmt.Errorf("sample: profile has %d representatives/%d weights for %d clusters",
			len(p.Reps), len(p.Weights), p.Clusters)
	}
	prev := -1
	for k, w := range p.Reps {
		if w <= prev || w >= p.Windows {
			return fmt.Errorf("sample: representative %d of cluster %d out of order or range", w, k)
		}
		prev = w
	}
	for w, k := range p.Assign {
		if k < 0 || k >= len(p.Reps) {
			return fmt.Errorf("sample: window %d assigned to cluster %d of %d", w, k, len(p.Reps))
		}
	}
	return nil
}

// WindowLengths splits total instructions into n windows: total/n each,
// with the remainder spread one instruction at a time over the first
// total%n windows. Profiling and phased execution both use this split, so
// window boundaries always agree.
func WindowLengths(total uint64, n int) []uint64 {
	base, extra := total/uint64(n), total%uint64(n)
	lens := make([]uint64, n)
	for i := range lens {
		lens[i] = base
		if uint64(i) < extra {
			lens[i]++
		}
	}
	return lens
}

// phaseRNG is a splitmix64 stream: tiny, seedable, and deterministic —
// the clustering's only randomness source, seeded from the profile key so
// equal keys cluster identically everywhere.
type phaseRNG uint64

func newPhaseRNG(key string) *phaseRNG {
	h := fnv.New64a()
	h.Write([]byte(key))
	r := phaseRNG(h.Sum64())
	return &r
}

func (r *phaseRNG) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 draws uniformly from [0,1) with 53 bits of precision.
func (r *phaseRNG) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// intn draws uniformly from [0,n).
func (r *phaseRNG) intn(n int) int {
	return int(r.next() % uint64(n))
}

// kmeansIters bounds the Lloyd iterations; assignments converge long
// before this on the window counts phase mode uses, and the fixed bound
// keeps worst-case clustering cost deterministic.
const kmeansIters = 64

// BuildProfile clusters per-window feature rows into a phase profile.
// feats holds one row per window (equal lengths, CPI proxy last); instr
// the per-window instruction counts (summing to total). opt must have
// passed Validate. The result is bit-deterministic in (key, inputs).
func BuildProfile(key string, total uint64, opt Options, feats [][]float64, instr []uint64) Profile {
	w := opt.PhaseWindows
	k := opt.PhaseClusters
	norm := normalize(feats)
	assign := kmeans(norm, k, newPhaseRNG(key))

	// Compact away empty clusters and pick each survivor's representative:
	// the member window closest to the cluster's feature mean (lowest
	// index on ties).
	type clusterInfo struct {
		rep    int
		weight uint64
		old    int
	}
	var clusters []clusterInfo
	for c := 0; c < k; c++ {
		var members []int
		for wi, a := range assign {
			if a == c {
				members = append(members, wi)
			}
		}
		if len(members) == 0 {
			continue
		}
		centroid := meanOf(norm, members)
		rep, best := members[0], math.Inf(1)
		var weight uint64
		for _, wi := range members {
			weight += instr[wi]
			if d := sqDist(norm[wi], centroid); d < best {
				best, rep = d, wi
			}
		}
		clusters = append(clusters, clusterInfo{rep: rep, weight: weight, old: c})
	}
	// Relabel clusters by representative position: Reps comes out strictly
	// ascending, so phased execution visits clusters in window order and
	// interval index k is cluster k.
	for i := 1; i < len(clusters); i++ {
		for j := i; j > 0 && clusters[j].rep < clusters[j-1].rep; j-- {
			clusters[j], clusters[j-1] = clusters[j-1], clusters[j]
		}
	}
	remap := make(map[int]int, len(clusters))
	reps := make([]int, len(clusters))
	weights := make([]uint64, len(clusters))
	for i, c := range clusters {
		remap[c.old] = i
		reps[i] = c.rep
		weights[i] = c.weight
	}
	for wi := range assign {
		assign[wi] = remap[assign[wi]]
	}
	return Profile{
		Version:  ProfileFormat,
		Key:      key,
		Total:    total,
		Windows:  w,
		Clusters: k,
		Features: feats,
		Instr:    instr,
		Assign:   assign,
		Reps:     reps,
		Weights:  weights,
	}
}

// normalize z-scores each feature column (population moments); a constant
// column normalizes to zero so it cannot dominate distances.
func normalize(feats [][]float64) [][]float64 {
	n := len(feats)
	cols := len(feats[0])
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, cols)
	}
	for c := 0; c < cols; c++ {
		var mean float64
		for _, row := range feats {
			mean += row[c]
		}
		mean /= float64(n)
		var varsum float64
		for _, row := range feats {
			d := row[c] - mean
			varsum += d * d
		}
		std := math.Sqrt(varsum / float64(n))
		if std == 0 {
			continue
		}
		for i, row := range feats {
			out[i][c] = (row[c] - mean) / std
		}
	}
	return out
}

// kmeans runs k-means++ seeding plus bounded Lloyd iterations. Every
// data-dependent choice is deterministic: the rng is the caller's seeded
// stream and ties break toward the lowest index.
func kmeans(points [][]float64, k int, rng *phaseRNG) []int {
	n := len(points)
	cols := len(points[0])
	centroids := make([][]float64, 0, k)

	// k-means++ seeding: first centroid uniform, later ones with
	// probability proportional to squared distance from the nearest
	// chosen centroid.
	first := rng.intn(n)
	centroids = append(centroids, append([]float64(nil), points[first]...))
	d2 := make([]float64, n)
	for len(centroids) < k {
		var totalD float64
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := sqDist(p, c); d < best {
					best = d
				}
			}
			d2[i] = best
			totalD += best
		}
		pick := -1
		if totalD > 0 {
			draw := rng.float64() * totalD
			var cum float64
			for i, d := range d2 {
				cum += d
				if cum > draw && d > 0 {
					pick = i
					break
				}
			}
			if pick == -1 { // rounding left the draw past the last mass
				for i := n - 1; i >= 0; i-- {
					if d2[i] > 0 {
						pick = i
						break
					}
				}
			}
		}
		if pick == -1 {
			// All remaining windows coincide with a centroid: duplicate
			// centroids produce empty clusters, which compaction drops.
			pick = rng.intn(n)
		}
		centroids = append(centroids, append([]float64(nil), points[pick]...))
	}

	assign := make([]int, n)
	counts := make([]int, k)
	sums := make([][]float64, k)
	for c := range sums {
		sums[c] = make([]float64, cols)
	}
	for iter := 0; iter < kmeansIters; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c, cent := range centroids {
				if d := sqDist(p, cent); d < bestD {
					bestD, best = d, c
				}
			}
			if iter == 0 || assign[i] != best {
				changed = true
			}
			assign[i] = best
		}
		if !changed {
			break
		}
		for c := range centroids {
			counts[c] = 0
			for j := range sums[c] {
				sums[c][j] = 0
			}
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for j, v := range p {
				sums[c][j] += v
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				continue // empty cluster keeps its centroid
			}
			for j := range centroids[c] {
				centroids[c][j] = sums[c][j] / float64(counts[c])
			}
		}
	}
	return assign
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func meanOf(points [][]float64, idx []int) []float64 {
	m := make([]float64, len(points[0]))
	for _, i := range idx {
		for j, v := range points[i] {
			m[j] += v
		}
	}
	for j := range m {
		m[j] /= float64(len(idx))
	}
	return m
}

// RunPhasedCore executes a phase-sampled measurement on a warmed core, the
// phase-mode counterpart of Run.
func RunPhasedCore(core *cpu.Core, s cpu.Stream, total uint64, opt Options, p Profile, observe func(Interval)) Estimate {
	return RunPhased(coreTarget{core, s}, total, opt, p, observe)
}

// RunPhased executes a phase-sampled measurement of total instructions on
// a warmed target: the windows run in order, each cluster representative
// times its ENTIRE window in detail, every other window fast-forwards. The
// stream advances exactly total instructions — identical stream evolution
// to a uniform sampled run of the same total. Timing whole windows keeps
// the measured span exactly congruent with the profiled window, so the
// profile's per-window features and the calibration covariates describe
// precisely what was measured. observe, if non-nil, fires per detailed
// interval with Index = the cluster id. Options and profile must have been
// validated (Check).
func RunPhased(t Target, total uint64, opt Options, p Profile, observe func(Interval)) Estimate {
	lens := WindowLengths(total, p.Windows)
	est := Estimate{
		Total:     total,
		Intervals: len(p.Reps),
		Phased:    true,
	}
	cpis := make([]float64, len(p.Reps))
	var clock sim.Time
	k := 0
	for w := 0; w < p.Windows; w++ {
		n := lens[w]
		if k >= len(p.Reps) || p.Reps[k] != w {
			t.Warm(n)
			continue
		}
		r := t.Interval(k, n)
		dur := r.Cycles - clock
		clock = r.Cycles
		cpi := float64(dur) / float64(n)
		cpis[k] = cpi
		est.Detailed += n
		est.CPI.Observe(cpi)
		est.WCPI.Observe(cpi, float64(p.Weights[k]))
		est.L1DHits += r.L1DHits
		est.L1DMisses += r.L1DMisses
		est.L2Loads += r.L2Loads
		est.L2Stores += r.L2Stores
		if observe != nil {
			observe(Interval{Index: k, Cycles: dur, Result: r})
		}
		k++
	}
	est.FinalClock = clock
	// Plain stratified estimate: every window costs its cluster's observed
	// CPI. Callers with per-interval covariates sharpen this with Calibrate.
	var cycles float64
	for k, cpi := range cpis {
		cycles += cpi * float64(p.Weights[k])
	}
	est.PhaseCycles = cycles
	est.PhaseCI = phaseCI(p, cpis)
	return est
}

// phaseCI derives the 95% confidence half-width on the phased cycle
// estimate from within-cluster spread: each cluster contributes its
// instruction weight times the standard error of its windows' CPI-proxy
// values, calibrated to observed-CPI scale by the representative's
// observed/proxy ratio. One sample per stratum makes this an estimate, not
// an exact interval; single-window clusters contribute zero, mirroring
// stats.Sample's n<2 behavior.
func phaseCI(p Profile, cpis []float64) float64 {
	col := len(p.Features[0]) - 1 // CPI proxy column
	var sumsq float64
	for k, rep := range p.Reps {
		var s stats.Sample
		for w, a := range p.Assign {
			if a == k {
				s.Observe(p.Features[w][col])
			}
		}
		if s.N() < 2 {
			continue
		}
		ratio := 1.0
		if repProxy := p.Features[rep][col]; repProxy > 0 && cpis[k] > 0 {
			ratio = cpis[k] / repProxy
		}
		se := float64(p.Weights[k]) * s.StdDev() * ratio / math.Sqrt(float64(s.N()))
		sumsq += se * se
	}
	return 1.96 * math.Sqrt(sumsq)
}
