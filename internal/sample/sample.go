// Package sample implements SMARTS-style sampled simulation: instead of
// timing every instruction of the measured interval, the runner alternates
// functional fast-forward (cache state advances, no timing) with short
// detailed intervals, and estimates whole-run metrics from the per-interval
// observations. Bueno et al. and Zhang et al. (PAPERS.md) show such
// interval sampling reproduces cache and CPI metrics within tight error
// bounds at a fraction of the cost; the detailed fraction here is typically
// a few percent.
//
// Timing convention: detailed intervals are contiguous on the simulated
// clock — interval i+1 resumes the pipeline at interval i's finish via
// cpu.Core.Resume — because the L2 designs require non-decreasing access
// times and because a pipeline restart per interval would bias CPI. The
// fast-forward stretches occupy no simulated time, so the final clock spans
// exactly the detailed work — utilization and power metrics computed over
// it are estimates for the measured execution, just like the miss rates.
package sample

import (
	"fmt"

	"tlc/internal/cpu"
	"tlc/internal/sim"
	"tlc/internal/stats"
)

// Options selects sampled execution. The zero value (no intervals, no
// phase windows) means full detailed simulation. Uniform mode (Intervals >
// 0) and phase mode (PhaseWindows/PhaseClusters > 0) are mutually
// exclusive.
type Options struct {
	// Intervals is the number of detailed measurement intervals (uniform
	// SMARTS-style sampling).
	Intervals int
	// Length is the number of instructions timed in detail per interval
	// (uniform mode; phase mode times whole windows of total/PhaseWindows).
	Length uint64

	// PhaseWindows slices the run into this many fixed profiling windows
	// for phase-aware sampling; PhaseClusters is the k-means cluster count.
	// Both positive selects phase mode: one detailed interval per cluster
	// representative instead of Intervals uniform ones.
	PhaseWindows  int
	PhaseClusters int
}

// Enabled reports whether the options request sampling (either mode).
func (o Options) Enabled() bool { return o.Intervals > 0 || o.Phase() }

// Phase reports whether the options request phase-aware sampling. A
// half-set pair still reports true so Validate can name the missing field.
func (o Options) Phase() bool { return o.PhaseWindows > 0 || o.PhaseClusters > 0 }

// Validate checks the options against a run of total instructions. Error
// messages name the offending field and its value.
func (o Options) Validate(total uint64) error {
	if o.Phase() {
		return o.validatePhase(total)
	}
	if o.Intervals <= 0 {
		return fmt.Errorf("sample: Intervals=%d; need at least 1 detailed interval", o.Intervals)
	}
	if o.Length == 0 {
		return fmt.Errorf("sample: Length=0; need a positive detailed-interval length")
	}
	detailed := uint64(o.Intervals) * o.Length
	if detailed > total {
		return fmt.Errorf("sample: Intervals=%d × Length=%d detailed instructions exceed the %d-instruction run; use a full run",
			o.Intervals, o.Length, total)
	}
	return nil
}

// validatePhase checks the phase-mode field combination.
func (o Options) validatePhase(total uint64) error {
	if o.Intervals > 0 {
		return fmt.Errorf("sample: Intervals=%d combined with PhaseWindows=%d/PhaseClusters=%d; uniform and phase sampling are mutually exclusive",
			o.Intervals, o.PhaseWindows, o.PhaseClusters)
	}
	if o.PhaseWindows <= 0 {
		return fmt.Errorf("sample: PhaseWindows=%d; phase mode needs at least 1 window (set with PhaseClusters=%d)",
			o.PhaseWindows, o.PhaseClusters)
	}
	if o.PhaseClusters <= 0 {
		return fmt.Errorf("sample: PhaseClusters=%d; phase mode needs at least 1 cluster (set with PhaseWindows=%d)",
			o.PhaseClusters, o.PhaseWindows)
	}
	if o.PhaseClusters > o.PhaseWindows {
		return fmt.Errorf("sample: PhaseClusters=%d exceeds PhaseWindows=%d; cannot have more clusters than windows",
			o.PhaseClusters, o.PhaseWindows)
	}
	if uint64(o.PhaseWindows) > total {
		return fmt.Errorf("sample: PhaseWindows=%d exceeds the %d-instruction run; need at least one instruction per window",
			o.PhaseWindows, total)
	}
	// Length is a uniform-mode knob: phase mode times whole windows, so the
	// interval length is total/PhaseWindows by construction.
	return nil
}

// Interval is one detailed measurement, passed to the observer so callers
// can sample their own per-interval statistics (the harness reads L2 stat
// deltas here).
type Interval struct {
	// Index is the interval number, 0-based.
	Index int
	// Cycles is the detailed duration of this interval.
	Cycles sim.Time
	// Result is the core's timing result for the interval; Result.Cycles
	// is the absolute finish clock.
	Result cpu.Result
}

// Estimate aggregates a sampled run.
type Estimate struct {
	// Total is the number of instructions the estimate represents.
	Total uint64
	// Detailed is the number of instructions simulated in detail.
	Detailed uint64
	// Intervals is the number of measurement intervals taken.
	Intervals int
	// FinalClock is the absolute simulated clock after the last detailed
	// interval — the window over which timing resources accumulated.
	FinalClock sim.Time
	// CPI holds the per-interval cycles-per-instruction observations.
	CPI stats.Sample
	// Sums of the detailed per-core counters, for rate estimates.
	L1DHits, L1DMisses, L2Loads, L2Stores uint64

	// Phased marks a phase-mode estimate: WCPI holds the per-cluster CPI
	// observations weighted by cluster instruction counts, PhaseCycles the
	// stratified cycle estimate (sharpened in place by Calibrate when the
	// caller has covariates), and PhaseCI the 95% confidence half-width on
	// Cycles derived from within-cluster feature spread (RunPhased).
	Phased      bool
	WCPI        stats.Weighted
	PhaseCycles float64
	PhaseCI     float64
}

// Cycles estimates the full run's cycle count: Total × mean per-interval
// CPI in uniform mode, the per-cluster stratified (or calibrated) sum in
// phase mode.
func (e *Estimate) Cycles() float64 {
	if e.Phased {
		return e.PhaseCycles
	}
	return e.CPI.Mean() * float64(e.Total)
}

// CyclesCI is the 95% confidence half-width on Cycles: interval-to-interval
// CPI variation in uniform mode, the stratified within-cluster estimate in
// phase mode.
func (e *Estimate) CyclesCI() float64 {
	if e.Phased {
		return e.PhaseCI
	}
	return e.CPI.CI95() * float64(e.Total)
}

// Target is what a sampled measurement drives: anything that can advance
// its instruction stream functionally (Warm) and time a detailed interval
// (Interval). A single core over its stream is the canonical target; an
// N-core machine implements the same contract by advancing every core and
// reporting the machine-wide result (Cycles = the latest core's clock).
// Interval i == 0 starts the timing epoch at cycle zero; later intervals
// resume it, keeping the simulated clock monotone as the L2 designs
// require.
type Target interface {
	Warm(n uint64)
	Interval(i int, n uint64) cpu.Result
}

// coreTarget adapts the single-core (core, stream) pair to Target,
// preserving the exact call sequence sampled runs have always made.
type coreTarget struct {
	core *cpu.Core
	s    cpu.Stream
}

func (t coreTarget) Warm(n uint64) { t.core.Warm(t.s, n) }

func (t coreTarget) Interval(i int, n uint64) cpu.Result {
	if i == 0 {
		return t.core.RunFrom(t.s, n, 0)
	}
	// Later intervals resume the pipeline rather than restarting it: the
	// measured CPI then carries no per-interval pipeline-refill/drain
	// transient, which would otherwise bias the estimate up by a fixed
	// cost per interval.
	return t.core.Resume(t.s, n)
}

// Run executes a sampled measurement of total instructions on a warmed
// core: per interval, a functional fast-forward stretch followed by
// opt.Length detailed instructions. The stream advances exactly total
// instructions. observe, if non-nil, is called after each detailed
// interval. Options must have been validated.
//
// Both phases ride the batched delivery protocol: the fast-forward
// stretches take cpu.Core.Warm's MemStream fast path (non-memory
// instructions skipped as run-length counts, bulk L2 installs), and the
// detailed intervals consume cpu.BatchStream batches. Streams that
// implement neither fall back to scalar Next delivery with identical
// results.
func Run(core *cpu.Core, s cpu.Stream, total uint64, opt Options, observe func(Interval)) Estimate {
	return RunTarget(coreTarget{core, s}, total, opt, observe)
}

// RunTarget is Run over any Target. Total and Length count instructions
// per stream (per core, for a machine target); CPI observations are
// target cycles per per-stream instruction, so the estimate's Cycles()
// projects the target's clock — for an N-core machine, the whole
// machine's finish time — over the full run.
func RunTarget(t Target, total uint64, opt Options, observe func(Interval)) Estimate {
	n := uint64(opt.Intervals)
	detailed := n * opt.Length
	ffPer := (total - detailed) / n
	ffExtra := (total - detailed) % n // first ffExtra intervals skip one more

	est := Estimate{Total: total, Detailed: detailed, Intervals: opt.Intervals}
	var clock sim.Time
	for i := 0; i < opt.Intervals; i++ {
		ff := ffPer
		if uint64(i) < ffExtra {
			ff++
		}
		t.Warm(ff)
		r := t.Interval(i, opt.Length)
		dur := r.Cycles - clock
		clock = r.Cycles
		est.CPI.Observe(float64(dur) / float64(opt.Length))
		est.L1DHits += r.L1DHits
		est.L1DMisses += r.L1DMisses
		est.L2Loads += r.L2Loads
		est.L2Stores += r.L2Stores
		if observe != nil {
			observe(Interval{Index: i, Cycles: dur, Result: r})
		}
	}
	est.FinalClock = clock
	return est
}
