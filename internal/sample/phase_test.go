package sample

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"tlc/internal/cpu"
	"tlc/internal/sim"
)

// TestValidatePhase pins the phase-mode field checks and, because callers
// see these messages verbatim when a flag combination is wrong, that each
// error names the offending field.
func TestValidatePhase(t *testing.T) {
	cases := []struct {
		name  string
		opt   Options
		total uint64
		field string // empty = valid
	}{
		{"valid", Options{PhaseWindows: 40, PhaseClusters: 14}, 200_000, ""},
		{"one window one cluster", Options{PhaseWindows: 1, PhaseClusters: 1}, 10, ""},
		{"mixed with uniform", Options{Intervals: 5, PhaseWindows: 40, PhaseClusters: 14}, 200_000, "Intervals=5"},
		{"clusters without windows", Options{PhaseClusters: 14}, 200_000, "PhaseWindows=0"},
		{"windows without clusters", Options{PhaseWindows: 40}, 200_000, "PhaseClusters=0"},
		{"more clusters than windows", Options{PhaseWindows: 8, PhaseClusters: 9}, 200_000, "PhaseClusters=9"},
		{"more windows than instructions", Options{PhaseWindows: 11, PhaseClusters: 2}, 10, "PhaseWindows=11"},
		// Length is a uniform-mode knob: phase mode times whole windows, so
		// any Length must be ignored, not rejected.
		{"length is ignored in phase mode", Options{PhaseWindows: 40, PhaseClusters: 14, Length: 1 << 60}, 200_000, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.opt.Validate(c.total)
			if c.field == "" {
				if err != nil {
					t.Fatalf("Validate(%+v, %d) = %v, want nil", c.opt, c.total, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate(%+v, %d) = nil, want error naming %s", c.opt, c.total, c.field)
			}
			if !strings.Contains(err.Error(), c.field) {
				t.Errorf("error %q does not name %s", err, c.field)
			}
		})
	}
}

func TestWindowLengths(t *testing.T) {
	cases := []struct {
		total uint64
		n     int
	}{
		{200_000, 40}, // even split
		{200_000, 48}, // remainder 32 spread over the first windows
		{10, 3},
		{7, 7},
	}
	for _, c := range cases {
		lens := WindowLengths(c.total, c.n)
		if len(lens) != c.n {
			t.Fatalf("WindowLengths(%d, %d): %d windows", c.total, c.n, len(lens))
		}
		var sum uint64
		for i, l := range lens {
			sum += l
			// Remainder spreads front-to-back one instruction at a time, so
			// lengths are non-increasing and differ by at most one.
			if l > lens[0] || lens[0]-l > 1 {
				t.Errorf("WindowLengths(%d, %d)[%d] = %d, first = %d: not a ±1 split",
					c.total, c.n, i, l, lens[0])
			}
		}
		if sum != c.total {
			t.Errorf("WindowLengths(%d, %d) sums to %d", c.total, c.n, sum)
		}
	}
}

// phaseFixture builds a feature matrix with three obviously separable
// phases so clustering behavior is predictable.
func phaseFixture(windows int) ([][]float64, []uint64, uint64) {
	feats := make([][]float64, windows)
	instr := make([]uint64, windows)
	var total uint64
	for w := range feats {
		base := float64(w % 3) // three interleaved phases
		feats[w] = []float64{base, base * 2, 0.1 * base, 0, 1 + base}
		instr[w] = 5000
		total += 5000
	}
	return feats, instr, total
}

func TestBuildProfileDeterministicAndValid(t *testing.T) {
	feats, instr, total := phaseFixture(40)
	opt := Options{PhaseWindows: 40, PhaseClusters: 14}
	a := BuildProfile("content-key", total, opt, feats, instr)
	b := BuildProfile("content-key", total, opt, feats, instr)
	if !reflect.DeepEqual(a, b) {
		t.Error("BuildProfile is not deterministic for a fixed key")
	}
	if err := a.Check(total, opt); err != nil {
		t.Fatalf("fresh profile fails its own Check: %v", err)
	}
	var wsum uint64
	for _, w := range a.Weights {
		wsum += w
	}
	if wsum != total {
		t.Errorf("cluster weights sum to %d, want %d", wsum, total)
	}
	for k, rep := range a.Reps {
		if a.Assign[rep] != k {
			t.Errorf("representative %d not assigned to its own cluster %d", rep, k)
		}
	}
	// Three genuinely distinct feature rows: compaction must leave at
	// most three clusters even though 14 were requested.
	if len(a.Reps) > 3 {
		t.Errorf("%d clusters survive for 3 distinct phases", len(a.Reps))
	}
}

func TestProfileCheckRejects(t *testing.T) {
	feats, instr, total := phaseFixture(40)
	opt := Options{PhaseWindows: 40, PhaseClusters: 14}
	good := BuildProfile("k", total, opt, feats, instr)

	mutate := func(f func(*Profile)) Profile {
		p := good
		p.Reps = append([]int(nil), good.Reps...)
		p.Assign = append([]int(nil), good.Assign...)
		f(&p)
		return p
	}
	cases := []struct {
		name string
		p    Profile
		o    Options
		tot  uint64
	}{
		{"stale format", mutate(func(p *Profile) { p.Version = ProfileFormat + 1 }), opt, total},
		{"different total", good, opt, total + 1},
		{"different shape", good, Options{PhaseWindows: 48, PhaseClusters: 14}, total},
		{"reps out of order", mutate(func(p *Profile) { p.Reps[0], p.Reps[1] = p.Reps[1], p.Reps[0] }), opt, total},
		{"assignment out of range", mutate(func(p *Profile) { p.Assign[0] = len(p.Reps) }), opt, total},
		{"truncated arrays", mutate(func(p *Profile) { p.Assign = p.Assign[:1] }), opt, total},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.p.Check(c.tot, c.o); err == nil {
				t.Error("Check accepted a bad profile")
			}
		})
	}
	if err := good.Check(total, opt); err != nil {
		t.Errorf("Check rejects the unmutated profile: %v", err)
	}
}

// scriptedTarget scripts per-window cycle costs so RunPhased's bookkeeping
// can be checked exactly: window w costs cpis[w] cycles per instruction
// when timed. Warm consumes a window without advancing the simulated clock,
// matching the real fast-forward contract.
type scriptedTarget struct {
	cpis   []float64
	clock  float64
	w      int
	warmed uint64
}

func (f *scriptedTarget) Warm(n uint64) { f.warmed += n; f.w++ }

func (f *scriptedTarget) Interval(i int, n uint64) cpu.Result {
	f.clock += f.cpis[f.w] * float64(n)
	f.w++
	return cpu.Result{Cycles: sim.Time(f.clock), Instructions: n}
}

func TestRunPhasedTimesRepresentativesOnly(t *testing.T) {
	feats, instr, total := phaseFixture(12)
	opt := Options{PhaseWindows: 12, PhaseClusters: 4}
	p := BuildProfile("k", total, opt, feats, instr)

	ft := &scriptedTarget{}
	for w := 0; w < 12; w++ {
		ft.cpis = append(ft.cpis, 1+0.5*float64(w%3))
	}
	est := RunPhased(ft, total, opt, p, nil)

	if ft.warmed+est.Detailed != total {
		t.Errorf("warmed %d + detailed %d ≠ total %d", ft.warmed, est.Detailed, total)
	}
	if est.Intervals != len(p.Reps) {
		t.Errorf("%d intervals, want one per representative (%d)", est.Intervals, len(p.Reps))
	}
	if !est.Phased {
		t.Error("estimate not marked phased")
	}
	// Scripted CPI is constant within each phase, so the stratified
	// estimate must be exact: every window billed at its phase's CPI.
	var want float64
	for w := 0; w < 12; w++ {
		want += ft.cpis[w] * 5000
	}
	if math.Abs(est.Cycles()-want) > 1e-6 {
		t.Errorf("stratified cycles %.1f, want exact %.1f", est.Cycles(), want)
	}
	if est.CyclesCI() < 0 || math.IsNaN(est.CyclesCI()) {
		t.Errorf("bad CI %v", est.CyclesCI())
	}
}
