package sample

import (
	"math"
	"testing"
)

// calFixture builds a 4-cluster profile and observations that follow an
// exact linear model cpi = a + b·x, so the calibrated estimate is known in
// closed form: a·Total + b·TotalEvents.
func calFixture() (Profile, Calibration, float64) {
	const a, b = 0.6, 120.0
	p := Profile{
		Total:   100_000,
		Weights: []uint64{40_000, 30_000, 20_000, 10_000},
	}
	rates := []float64{0.001, 0.004, 0.002, 0.008}
	var c Calibration
	for k, x := range rates {
		c.Obs = append(c.Obs, SpanObs{Cluster: k, CPI: a + b*x, X: []float64{x}})
	}
	// Exact full-run event total, deliberately NOT the weighted sum of the
	// observed rates — the whole point of calibration is that the exact
	// total replaces the noisy per-representative extrapolation.
	c.Totals = []float64{310}
	c.Bounds = [][2]float64{{0, 600}}
	return p, c, a*100_000 + b*310
}

func TestCalibrateRecoversExactLinearModel(t *testing.T) {
	p, c, want := calFixture()
	est := &Estimate{Phased: true, PhaseCycles: want * 1.1} // stratified baseline, off by 10%
	if !est.Calibrate(p, c) {
		t.Fatal("well-posed calibration refused")
	}
	if math.Abs(est.PhaseCycles-want) > 1e-6*want {
		t.Errorf("calibrated cycles %.3f, want %.3f", est.PhaseCycles, want)
	}
}

func TestCalibrateClampsWildSlopes(t *testing.T) {
	p, c, _ := calFixture()
	// Tighten the bound far below the true slope (120): the fit must clamp
	// and refit the intercept so weighted residuals sum to zero, keeping
	// the prediction finite and deliberate rather than extrapolating.
	c.Bounds = [][2]float64{{0, 10}}
	base := 65_000.0
	est := &Estimate{Phased: true, PhaseCycles: base}
	if !est.Calibrate(p, c) {
		t.Fatal("clamped calibration refused")
	}
	theta1 := 10.0
	var num, den float64
	for _, ob := range c.Obs {
		wt := float64(p.Weights[ob.Cluster])
		num += wt * (ob.CPI - theta1*ob.X[0])
		den += wt
	}
	want := (num/den)*float64(p.Total) + theta1*c.Totals[0]
	if math.Abs(est.PhaseCycles-want) > 1e-6*want {
		t.Errorf("clamped calibration %.3f, want %.3f", est.PhaseCycles, want)
	}
}

func TestCalibrateGuards(t *testing.T) {
	p, _, want := calFixture()
	cases := []struct {
		name string
		mod  func(*Estimate, *Calibration)
	}{
		{"no observations", func(e *Estimate, c *Calibration) { c.Obs = nil }},
		{"missing bounds", func(e *Estimate, c *Calibration) { c.Bounds = nil }},
		{"covariate length mismatch", func(e *Estimate, c *Calibration) { c.Obs[0].X = []float64{1, 2} }},
		{"cluster out of range", func(e *Estimate, c *Calibration) { c.Obs[0].Cluster = len(p.Weights) }},
		// A stratified baseline wildly far from the prediction means the
		// model left its trust region: keep the baseline.
		{"prediction outside trust region", func(e *Estimate, c *Calibration) { e.PhaseCycles = want * 100 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pp, cc, _ := calFixture()
			est := &Estimate{Phased: true, PhaseCycles: want * 1.1}
			tc.mod(est, &cc)
			before := est.PhaseCycles
			if est.Calibrate(pp, cc) {
				t.Fatal("degenerate calibration accepted")
			}
			if est.PhaseCycles != before {
				t.Error("refused calibration still modified the estimate")
			}
		})
	}
}

func TestSolveSym(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	x := solveSym(a, []float64{5, 10})
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("solveSym = %v, want [1 3]", x)
	}
}
