package sample

import (
	"math"
	"testing"

	"tlc/internal/config"
	"tlc/internal/cpu"
	"tlc/internal/l2"
	"tlc/internal/mem"
	"tlc/internal/sim"
	"tlc/internal/workload"
)

// fixedL2 answers every access with a fixed latency.
type fixedL2 struct{ lat sim.Time }

func (f *fixedL2) Access(at sim.Time, req mem.Request) l2.Outcome {
	if req.Type == mem.Store {
		return l2.Outcome{Hit: true, ResolveAt: at, CompleteAt: at}
	}
	return l2.Outcome{Hit: true, ResolveAt: at + f.lat, CompleteAt: at + f.lat, BanksAccessed: 1}
}
func (f *fixedL2) Warm(mem.Block)          {}
func (f *fixedL2) Contains(mem.Block) bool { return true }

func TestValidate(t *testing.T) {
	cases := []struct {
		opt   Options
		total uint64
		ok    bool
	}{
		{Options{Intervals: 10, Length: 1000}, 100_000, true},
		{Options{Intervals: 10, Length: 10_000}, 100_000, true}, // exactly full coverage
		{Options{Intervals: 10, Length: 10_001}, 100_000, false},
		{Options{Intervals: 0, Length: 1000}, 100_000, false},
		{Options{Intervals: 4, Length: 0}, 100_000, false},
	}
	for _, c := range cases {
		err := c.opt.Validate(c.total)
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v, %d) = %v, want ok=%v", c.opt, c.total, err, c.ok)
		}
	}
	if (Options{}).Enabled() {
		t.Error("zero Options reports sampling enabled")
	}
	if !(Options{Intervals: 1, Length: 1}).Enabled() {
		t.Error("non-zero Options reports sampling disabled")
	}
}

func TestRunAdvancesStreamExactlyTotal(t *testing.T) {
	spec, _ := workload.SpecByName("oltp")
	const total = 200_000
	opt := Options{Intervals: 7, Length: 3_000}
	// Two identical generators: one driven by the sampled run, one advanced
	// total instructions directly. They must end at the same stream
	// position regardless of the fast-forward remainder distribution.
	g1 := workload.New(spec, 1)
	g2 := workload.New(spec, 1)
	core := cpu.New(config.DefaultSystem(), &fixedL2{lat: 13})
	Run(core, g1, total, opt, nil)
	for i := 0; i < total; i++ {
		g2.Next()
	}
	if g1.State() != g2.State() {
		t.Fatal("sampled run advanced the stream a different number of instructions than a full run")
	}
}

func TestRunIntervalsAreContiguousAndObserved(t *testing.T) {
	spec, _ := workload.SpecByName("oltp")
	opt := Options{Intervals: 5, Length: 2_000}
	core := cpu.New(config.DefaultSystem(), &fixedL2{lat: 13})
	g := workload.New(spec, 2)
	var seen []Interval
	var lastFinish sim.Time
	est := Run(core, g, 100_000, opt, func(iv Interval) {
		if iv.Result.Cycles-iv.Cycles != lastFinish {
			t.Fatalf("interval %d started at %d, previous finished at %d",
				iv.Index, iv.Result.Cycles-iv.Cycles, lastFinish)
		}
		lastFinish = iv.Result.Cycles
		seen = append(seen, iv)
	})
	if len(seen) != opt.Intervals {
		t.Fatalf("observer called %d times, want %d", len(seen), opt.Intervals)
	}
	if est.FinalClock != lastFinish {
		t.Fatalf("FinalClock %d, last interval finished at %d", est.FinalClock, lastFinish)
	}
	if est.Detailed != uint64(opt.Intervals)*opt.Length {
		t.Fatalf("Detailed = %d, want %d", est.Detailed, uint64(opt.Intervals)*opt.Length)
	}
	if n := est.CPI.N(); n != uint64(opt.Intervals) {
		t.Fatalf("CPI sample has %d observations, want %d", n, opt.Intervals)
	}
}

func TestEstimateScalesCPIToTotal(t *testing.T) {
	// Against a uniform machine (fixed-latency L2, L1-resident stream) the
	// per-interval CPI is nearly constant, so the estimate must land within
	// a fraction of a percent of a full detailed run, with a tiny CI.
	spec, _ := workload.SpecByName("oltp")
	const total = 400_000
	sampled := cpu.New(config.DefaultSystem(), &fixedL2{lat: 13})
	sg := workload.New(spec, 3)
	sampled.Warm(sg, 100_000)
	est := Run(sampled, sg, total, Options{Intervals: 10, Length: 4_000}, nil)

	full := cpu.New(config.DefaultSystem(), &fixedL2{lat: 13})
	fg := workload.New(spec, 3)
	full.Warm(fg, 100_000)
	want := full.Run(fg, total)

	rel := math.Abs(est.Cycles()-float64(want.Cycles)) / float64(want.Cycles)
	if rel > 0.03 {
		t.Fatalf("sampled estimate %.0f vs full %d cycles: %.1f%% error", est.Cycles(), want.Cycles, 100*rel)
	}
	if ci := est.CyclesCI(); ci < 0 || ci > 0.2*est.Cycles() {
		t.Fatalf("confidence interval ±%.0f implausible for estimate %.0f", ci, est.Cycles())
	}
}

func TestRunIsDeterministic(t *testing.T) {
	spec, _ := workload.SpecByName("apache")
	opt := Options{Intervals: 6, Length: 2_500}
	one := func() Estimate {
		core := cpu.New(config.DefaultSystem(), &fixedL2{lat: 21})
		g := workload.New(spec, 9)
		core.Warm(g, 50_000)
		return Run(core, g, 150_000, opt, nil)
	}
	a, b := one(), one()
	if a != b {
		t.Fatalf("identical sampled runs diverged: %+v vs %+v", a, b)
	}
}
