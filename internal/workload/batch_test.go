package workload

import (
	"testing"

	"tlc/internal/cpu"
)

// batchSpecs picks three structurally different benchmarks: a small-footprint
// SPECint (hit-dominated), a streaming SPECfp (stream/recent paths), and a
// commercial workload (sliding cold window) — together they cover every
// branch of nextBlock.
func batchSpecs(t *testing.T) []Spec {
	t.Helper()
	var out []Spec
	for _, name := range []string{"gcc", "swim", "oltp"} {
		s, ok := SpecByName(name)
		if !ok {
			t.Fatalf("unknown benchmark %q", name)
		}
		out = append(out, s)
	}
	return out
}

// TestNextBatchMatchesNext pins the batched delivery path bit-identical to
// scalar Next: same instructions, same post-call stream state, same
// observation counters — including when batch sizes vary and when scalar and
// batched delivery interleave mid-stream.
func TestNextBatchMatchesNext(t *testing.T) {
	for _, spec := range batchSpecs(t) {
		t.Run(spec.Name, func(t *testing.T) {
			scalar := New(spec, 7)
			batched := New(spec, 7)
			sizes := []int{1, 3, 64, 1000, 4096}
			buf := make([]cpu.Instr, 4096)
			pos := 0
			for round := 0; round < 40; round++ {
				n := sizes[round%len(sizes)]
				if got := batched.NextBatch(buf[:n]); got != n {
					t.Fatalf("NextBatch(%d) = %d", n, got)
				}
				for i := 0; i < n; i++ {
					want := scalar.Next()
					if buf[i] != want {
						t.Fatalf("instr %d: batched %+v != scalar %+v", pos+i, buf[i], want)
					}
				}
				pos += n
				// Interleave a stretch of scalar delivery on the batched
				// generator: the protocols must be freely mixable.
				for i := 0; i < 17; i++ {
					want := scalar.Next()
					if got := batched.Next(); got != want {
						t.Fatalf("interleaved instr: batched %+v != scalar %+v", got, want)
					}
				}
				pos += 17
			}
			if scalar.State() != batched.State() {
				t.Fatalf("stream state diverged: scalar %+v batched %+v", scalar.State(), batched.State())
			}
			if scalar.counters != batched.counters {
				t.Fatalf("counters diverged: scalar %+v batched %+v", scalar.counters, batched.counters)
			}
		})
	}
}

// TestNextMemsMatchesNext pins the warm fast path bit-identical to scalar
// delivery: the materialized memory operations match the IsMem instructions
// of the scalar stream in order, the skipped non-memory runs advance the RNG
// identically (post-call State equality proves it), and the observation
// counters agree.
func TestNextMemsMatchesNext(t *testing.T) {
	for _, spec := range batchSpecs(t) {
		t.Run(spec.Name, func(t *testing.T) {
			scalar := New(spec, 11)
			fast := New(spec, 11)
			buf := make([]cpu.MemRef, 257)
			var consumedTotal uint64
			const total = 300_000
			for consumedTotal < total {
				n, consumed := fast.NextMems(buf, total-consumedTotal)
				if consumed == 0 {
					t.Fatal("NextMems made no progress")
				}
				consumedTotal += consumed
				// The scalar arm replays the same instruction span.
				got := 0
				for i := uint64(0); i < consumed; i++ {
					in := scalar.Next()
					if !in.IsMem {
						continue
					}
					if got >= n {
						t.Fatalf("scalar stream has more mem ops than NextMems reported (%d)", n)
					}
					if buf[got].Block != in.Block || buf[got].Store != in.IsStore {
						t.Fatalf("mem op %d: fast {%d %v} != scalar {%d %v}",
							got, buf[got].Block, buf[got].Store, in.Block, in.IsStore)
					}
					got++
				}
				if got != n {
					t.Fatalf("NextMems reported %d mem ops, scalar span has %d", n, got)
				}
				if scalar.State() != fast.State() {
					t.Fatalf("stream state diverged after %d instructions", consumedTotal)
				}
			}
			// Mispredict/memOp/store counters must match; the region counters
			// advance inside nextBlock on both paths.
			if scalar.counters != fast.counters {
				t.Fatalf("counters diverged: scalar %+v fast %+v", scalar.counters, fast.counters)
			}
			// After a warm stretch, detailed delivery must continue
			// seamlessly on both generators.
			for i := 0; i < 10_000; i++ {
				if got, want := fast.Next(), scalar.Next(); got != want {
					t.Fatalf("post-warm instr %d: %+v != %+v", i, got, want)
				}
			}
		})
	}
}

// TestNextBatchDoesNotAllocate pins batched delivery at zero allocations per
// call at steady state, for both the detailed and the warm-mode entry
// points.
func TestNextBatchDoesNotAllocate(t *testing.T) {
	spec, _ := SpecByName("oltp")
	g := New(spec, 3)
	buf := make([]cpu.Instr, 4096)
	mems := make([]cpu.MemRef, 2048)
	g.NextBatch(buf)
	g.NextMems(mems, 1<<20)
	if allocs := testing.AllocsPerRun(20, func() { g.NextBatch(buf) }); allocs != 0 {
		t.Errorf("NextBatch allocates %.2f per call, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(20, func() { g.NextMems(mems, 1<<20) }); allocs != 0 {
		t.Errorf("NextMems allocates %.2f per call, want 0", allocs)
	}
}
