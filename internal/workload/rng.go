package workload

import "math/bits"

// prng is the generator's random source: xoshiro256** seeded through a
// splitmix64 expansion. It replaces math/rand, whose generator hides its
// state — the warm-state checkpointing in internal/snapshot must capture
// and restore the stream position exactly, so the source's entire state
// lives in four exported-able words (see RNGState).
//
// The draw methods mirror the math/rand surface the generator uses
// (Float64, Intn, Int63n); streams are deterministic per seed but differ
// from math/rand's for the same seed.
type prng struct {
	s [4]uint64
}

// newPRNG seeds a generator. Distinct seeds give decorrelated streams; the
// splitmix64 expansion guarantees a nonzero state even for seed 0.
func newPRNG(seed int64) *prng {
	p := &prng{}
	sm := uint64(seed)
	for i := range p.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		p.s[i] = z ^ (z >> 31)
	}
	return p
}

// reseed resets the state as if freshly constructed with seed.
func (p *prng) reseed(seed int64) { *p = *newPRNG(seed) }

// state returns the complete source state.
func (p *prng) state() [4]uint64 { return p.s }

// setState restores a state captured by state().
func (p *prng) setState(s [4]uint64) { p.s = s }

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// xoDraw is one xoshiro256** step on register-resident state: it returns
// the drawn value and the successor state. The fused NextMems kernel carries
// the whole stream position through locals, so after inlining each draw is
// pure ALU work — no loads or stores of the generator's state. The value and
// transition are bit-identical to Uint64.
func xoDraw(s0, s1, s2, s3 uint64) (v, r0, r1, r2, r3 uint64) {
	v = rotl(s1*5, 7) * 9
	t := s1 << 17
	s2 ^= s0
	s3 ^= s1
	s1 ^= s2
	s0 ^= s3
	s2 ^= t
	s3 = rotl(s3, 45)
	return v, s0, s1, s2, s3
}

// xoAdvance is xoDraw without the output scrambler, for draws whose values
// are never observed (the ** output only shapes the value; the state
// transition is independent of it). Bit-identical to drawing and discarding.
func xoAdvance(s0, s1, s2, s3 uint64) (r0, r1, r2, r3 uint64) {
	t := s1 << 17
	s2 ^= s0
	s3 ^= s1
	s1 ^= s2
	s0 ^= s3
	s2 ^= t
	s3 = rotl(s3, 45)
	return s0, s1, s2, s3
}

// Uint64 draws the next value (xoshiro256**).
func (p *prng) Uint64() uint64 {
	result := rotl(p.s[1]*5, 7) * 9
	t := p.s[1] << 17
	p.s[2] ^= p.s[0]
	p.s[3] ^= p.s[1]
	p.s[1] ^= p.s[2]
	p.s[0] ^= p.s[3]
	p.s[2] ^= t
	p.s[3] = rotl(p.s[3], 45)
	return result
}

// Float64 draws uniformly from [0,1) with 53 bits of precision.
func (p *prng) Float64() float64 {
	return float64(p.Uint64()>>11) / (1 << 53)
}

// Int63n draws uniformly from [0,n). n must be positive. The modulo bias is
// below 2^-40 for every range the generator uses (footprints are far below
// 2^40 blocks), which is negligible next to the synthetic specs' own
// calibration tolerances.
func (p *prng) Int63n(n int64) int64 {
	if n <= 0 {
		panic("workload: Int63n with non-positive bound")
	}
	return int64(p.Uint64() % uint64(n))
}

// Intn draws uniformly from [0,n). n must be positive.
func (p *prng) Intn(n int) int {
	return int(p.Int63n(int64(n)))
}

// invDiv is a precomputed divisor for division-free exact remainders: the
// generator's region sizes are fixed at construction, so the 64-bit
// division Int63n pays per draw can be replaced with a multiply-high and a
// bounded correction. mod(v) returns exactly v % n.
type invDiv struct {
	n uint64
	// m approximates 2^64/n from below; mulhi(v, m) is then within 2 of
	// v/n, and the correction loop settles the exact remainder.
	m uint64
}

// newInvDiv precomputes the reciprocal for a positive divisor.
func newInvDiv(n uint64) invDiv {
	return invDiv{n: n, m: ^uint64(0) / n}
}

// mod returns v % d.n, bit-identical to the hardware remainder. The
// reciprocal underestimates the quotient by at most 2, so two conditional
// subtracts settle it exactly; straight-line code keeps mod inlinable into
// the batch kernels.
func (d invDiv) mod(v uint64) uint64 {
	hi, _ := bits.Mul64(v, d.m)
	r := v - hi*d.n
	if r >= d.n {
		r -= d.n
	}
	if r >= d.n {
		r -= d.n
	}
	return r
}

// f64Threshold converts a Float64 probability compare into an integer
// compare on the raw draw: Float64() < p tests (u>>11)/2^53 < p, and with a
// 53-bit integer left side that is exactly u>>11 < ceil(p·2^53). The scale
// by 2^53 is a power-of-two exponent shift, so p·2^53 is computed without
// rounding and the returned threshold reproduces the float compare
// bit-identically for every draw.
func f64Threshold(p float64) uint64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1 << 53
	}
	scaled := p * (1 << 53)
	t := uint64(scaled)
	if float64(t) < scaled {
		t++ // ceil: scaled was not an integer
	}
	return t
}
