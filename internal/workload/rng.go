package workload

// prng is the generator's random source: xoshiro256** seeded through a
// splitmix64 expansion. It replaces math/rand, whose generator hides its
// state — the warm-state checkpointing in internal/snapshot must capture
// and restore the stream position exactly, so the source's entire state
// lives in four exported-able words (see RNGState).
//
// The draw methods mirror the math/rand surface the generator uses
// (Float64, Intn, Int63n); streams are deterministic per seed but differ
// from math/rand's for the same seed.
type prng struct {
	s [4]uint64
}

// newPRNG seeds a generator. Distinct seeds give decorrelated streams; the
// splitmix64 expansion guarantees a nonzero state even for seed 0.
func newPRNG(seed int64) *prng {
	p := &prng{}
	sm := uint64(seed)
	for i := range p.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		p.s[i] = z ^ (z >> 31)
	}
	return p
}

// reseed resets the state as if freshly constructed with seed.
func (p *prng) reseed(seed int64) { *p = *newPRNG(seed) }

// state returns the complete source state.
func (p *prng) state() [4]uint64 { return p.s }

// setState restores a state captured by state().
func (p *prng) setState(s [4]uint64) { p.s = s }

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 draws the next value (xoshiro256**).
func (p *prng) Uint64() uint64 {
	result := rotl(p.s[1]*5, 7) * 9
	t := p.s[1] << 17
	p.s[2] ^= p.s[0]
	p.s[3] ^= p.s[1]
	p.s[1] ^= p.s[2]
	p.s[0] ^= p.s[3]
	p.s[2] ^= t
	p.s[3] = rotl(p.s[3], 45)
	return result
}

// Float64 draws uniformly from [0,1) with 53 bits of precision.
func (p *prng) Float64() float64 {
	return float64(p.Uint64()>>11) / (1 << 53)
}

// Int63n draws uniformly from [0,n). n must be positive. The modulo bias is
// below 2^-40 for every range the generator uses (footprints are far below
// 2^40 blocks), which is negligible next to the synthetic specs' own
// calibration tolerances.
func (p *prng) Int63n(n int64) int64 {
	if n <= 0 {
		panic("workload: Int63n with non-positive bound")
	}
	return int64(p.Uint64() % uint64(n))
}

// Intn draws uniformly from [0,n). n must be positive.
func (p *prng) Intn(n int) int {
	return int(p.Int63n(int64(n)))
}
