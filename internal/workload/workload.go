// Package workload generates the synthetic instruction traces standing in
// for the paper's twelve benchmarks (Tables 4-6): four SPECint 2000
// (bzip, gcc, mcf, perl), four SPECfp 2000 (equake, lucas, swim, applu),
// and four commercial workloads (apache, zeus, SPECjbb, OLTP).
//
// Each benchmark is a Spec: a memory footprint, a hot working set with
// optional skew, a streaming fraction, a store fraction, a memory-op
// density, and a dependent-load probability. The specs are calibrated so
// the address-stream statistics that drive every result in the paper's
// Section 6 — L2 request rate, L2 miss rate, footprint relative to the
// 16 MB cache and to DNUCA's 2 MB of close banks, and streaming-versus-
// reuse behaviour — land near Table 6.
package workload

import (
	"fmt"
	"math/bits"

	"tlc/internal/cpu"
	"tlc/internal/l2"
	"tlc/internal/mem"
	"tlc/internal/metrics"
)

// Region sizes are expressed in 64-byte blocks.
const blocksPerMB = 1024 * 1024 / mem.BlockBytes

// Spec parameterizes one synthetic benchmark.
type Spec struct {
	// Name is the benchmark label used in every table.
	Name string
	// FootprintMB is the total data footprint.
	FootprintMB float64
	// L1MB is a tiny very-hot region that the 64 KB L1 mostly absorbs;
	// L1Frac of memory references go to it. It controls the L2 request
	// rate (Table 6, column 2).
	L1MB   float64
	L1Frac float64
	// HotMB and HotFrac describe the L2-scale hot working set.
	HotMB   float64
	HotFrac float64
	// HotSkew > 0 applies nested 80/20 skew within the hot region
	// (levels of recursion); 0 is uniform.
	HotSkew int
	// StreamFrac of references walk the cold region sequentially —
	// the SPECfp streaming behaviour. Streams have word-level spatial
	// locality: StreamRepeat consecutive stream references touch the
	// same 64-byte block (default 8, i.e. 8-byte strides), so the L1
	// absorbs 7 of every 8 stream references just as on real hardware.
	StreamFrac   float64
	StreamRepeat int
	// ColdSkew > 0 applies nested 80/20 skew within the cold region
	// (static popularity skew; no temporal drift).
	ColdSkew int
	// ColdWindowMB switches the cold region to a sliding working-set
	// model: references fall uniformly in a window of this size, and
	// with probability ColdTurnover a reference admits a fresh block
	// (advancing the window) instead — a compulsory miss. Fresh blocks
	// are re-referenced within the window shortly after admission, the
	// temporal clustering real commercial workloads exhibit and the
	// behaviour DNUCA's insert-far/promote-on-reuse placement learns.
	ColdWindowMB float64
	// ColdTurnover is the fresh-block probability per cold reference;
	// the cold miss rate is ColdFrac * MemFrac * ColdTurnover.
	ColdTurnover float64
	// RecentFrac of references revisit a block streamed a short while
	// ago (beyond L1 reach, within L2 reach) — the short-reuse traffic
	// that gives the streaming SPECfp benchmarks their small hit rates,
	// hitting DNUCA's *far* banks (Table 6: swim close-hit 0.7% with a
	// 17% hit rate, promotes/inserts 0.15).
	RecentFrac float64
	// StoreFrac of memory operations are stores.
	StoreFrac float64
	// MemFrac of instructions are memory operations.
	MemFrac float64
	// DepFrac is the probability a load depends on the previous load
	// (pointer chasing serializes mcf; streaming code barely does).
	DepFrac float64
	// SerialFrac is the probability a non-memory instruction depends on
	// its predecessor — the ILP limiter that keeps base IPC realistic.
	// Zero selects the default of 0.35.
	SerialFrac float64
	// MispredictEvery is the mean instructions between branch
	// mispredictions (each costs a 30-stage pipeline refill). Zero
	// selects the default of 250.
	MispredictEvery int
}

// Generator produces the instruction stream for a Spec.
type Generator struct {
	spec Spec
	rng  *prng

	l1Blocks, hotBlocks, coldBlocks uint64
	l1Base, hotBase, coldBase       uint64
	streamPtr                       uint64
	streamLeft                      int
	windowHead                      uint64
	reverse                         map[mem.Block]uint64

	// Precomputed reciprocals for the fixed-size region draws: every
	// region size is pinned at construction, so the modulo each draw pays
	// becomes a multiply (invDiv). Values are bit-identical to Int63n.
	l1Div, coldDiv, windowDiv, recentDiv invDiv

	// memCredit implements the deterministic memory-op density.
	memCredit float64

	// counters tallies emitted instructions by class and referenced blocks
	// by footprint region. They are observation-only: not part of State
	// (the stream is unaffected by them) and reset at the start of every
	// timed interval so a restored checkpoint counts only what it runs.
	counters struct {
		memOps, stores, mispredicts                       uint64
		l1Refs, hotRefs, streamRefs, recentRefs, coldRefs uint64
	}
}

// New builds a deterministic generator for the spec with the given seed.
func New(spec Spec, seed int64) *Generator {
	if spec.FootprintMB <= 0 {
		panic(fmt.Sprintf("workload: %q has no footprint", spec.Name))
	}
	l1 := uint64(spec.L1MB * blocksPerMB)
	hot := uint64(spec.HotMB * blocksPerMB)
	total := uint64(spec.FootprintMB * blocksPerMB)
	if l1+hot > total {
		panic(fmt.Sprintf("workload: %q regions exceed footprint", spec.Name))
	}
	cold := total - l1 - hot
	if cold == 0 {
		cold = 1
	}
	g := &Generator{
		spec:       spec,
		rng:        newPRNG(seed),
		l1Blocks:   max64(l1, 1),
		hotBlocks:  max64(hot, 1),
		coldBlocks: cold,
		l1Base:     0,
		hotBase:    l1,
		coldBase:   l1 + hot,
	}
	g.l1Div = newInvDiv(g.l1Blocks)
	g.coldDiv = newInvDiv(g.coldBlocks)
	window := uint64(spec.ColdWindowMB * blocksPerMB)
	if window == 0 || window > g.coldBlocks {
		window = g.coldBlocks
	}
	g.windowDiv = newInvDiv(window)
	g.recentDiv = newInvDiv(15 * 1024)
	return g
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Spec reports the generator's spec.
func (g *Generator) Spec() Spec { return g.spec }

// State is the generator's complete stream position: RNG state plus the
// phase variables (stream pointer, window head, spatial-repeat countdown,
// memory-op credit). Capturing it after warm-up and restoring it later
// resumes the identical instruction stream — the workload half of a
// warm-state checkpoint. All fields are exported for gob encoding by the
// on-disk checkpoint store.
type State struct {
	RNG        [4]uint64
	StreamPtr  uint64
	StreamLeft int
	WindowHead uint64
	MemCredit  float64
}

// State captures the generator's stream position.
func (g *Generator) State() State {
	return State{
		RNG:        g.rng.state(),
		StreamPtr:  g.streamPtr,
		StreamLeft: g.streamLeft,
		WindowHead: g.windowHead,
		MemCredit:  g.memCredit,
	}
}

// SetState restores a stream position captured by State on a generator
// built from the same Spec. The subsequent Next sequence is identical to
// the one the captured generator would have produced.
func (g *Generator) SetState(st State) {
	g.rng.setState(st.RNG)
	g.streamPtr = st.StreamPtr
	g.streamLeft = st.StreamLeft
	g.windowHead = st.WindowHead
	g.memCredit = st.MemCredit
}

// ResetCounters zeroes the observation counters. The harness calls this at
// the start of the timed interval so warm-up traffic (or the run that
// produced a restored checkpoint) is excluded.
func (g *Generator) ResetCounters() {
	g.counters = struct {
		memOps, stores, mispredicts                       uint64
		l1Refs, hotRefs, streamRefs, recentRefs, coldRefs uint64
	}{}
}

// RegisterMetrics publishes the generator's instruction-stream counters
// under "workload.".
func (g *Generator) RegisterMetrics(r *metrics.Registry) {
	g.RegisterMetricsPrefixed(r, "")
}

// RegisterMetricsPrefixed publishes the counters under prefix+"workload.";
// CMP runs use a "core.<i>." prefix per core.
func (g *Generator) RegisterMetricsPrefixed(r *metrics.Registry, prefix string) {
	r.CounterFunc(prefix+"workload.mem_ops", func() uint64 { return g.counters.memOps })
	r.CounterFunc(prefix+"workload.stores", func() uint64 { return g.counters.stores })
	r.CounterFunc(prefix+"workload.mispredicts", func() uint64 { return g.counters.mispredicts })
	r.CounterFunc(prefix+"workload.l1_refs", func() uint64 { return g.counters.l1Refs })
	r.CounterFunc(prefix+"workload.hot_refs", func() uint64 { return g.counters.hotRefs })
	r.CounterFunc(prefix+"workload.stream_refs", func() uint64 { return g.counters.streamRefs })
	r.CounterFunc(prefix+"workload.recent_refs", func() uint64 { return g.counters.recentRefs })
	r.CounterFunc(prefix+"workload.cold_refs", func() uint64 { return g.counters.coldRefs })
}

// Reseed replaces the random source with a freshly seeded one while keeping
// the phase variables (stream position, working-set window). A seed sweep
// over the timed interval reseeds after warm-up: every seed then measures
// from the same warmed machine state, isolating seed effects to the
// measured interval itself.
func (g *Generator) Reseed(seed int64) { g.rng.reseed(seed) }

// Next implements cpu.Stream.
func (g *Generator) Next() cpu.Instr {
	g.memCredit += g.spec.MemFrac
	if g.memCredit < 1 {
		in := cpu.Instr{}
		serial := g.spec.SerialFrac
		if serial == 0 {
			serial = 0.35
		}
		if g.rng.Float64() < serial {
			in.Dep = true
		}
		every := g.spec.MispredictEvery
		if every == 0 {
			every = 250
		}
		if g.rng.Intn(every) == 0 {
			in.Mispredict = true
			g.counters.mispredicts++
		}
		return in
	}
	g.memCredit--
	blk := g.nextBlock()
	isStore := g.rng.Float64() < g.spec.StoreFrac
	dep := !isStore && g.rng.Float64() < g.spec.DepFrac
	g.counters.memOps++
	if isStore {
		g.counters.stores++
	}
	return cpu.Instr{IsMem: true, IsStore: isStore, Block: blk, Dep: dep}
}

// NextBatch implements cpu.BatchStream: it fills buf with the identical
// instruction sequence len(buf) Next calls would produce, in one pass with
// the per-spec constants hoisted out of the loop. The batched and scalar
// paths draw from the RNG in exactly the same order, so they are
// interchangeable mid-stream (TestNextBatchMatchesNext pins this).
func (g *Generator) NextBatch(buf []cpu.Instr) int {
	serial := g.spec.SerialFrac
	if serial == 0 {
		serial = 0.35
	}
	every := g.spec.MispredictEvery
	if every == 0 {
		every = 250
	}
	frac := g.spec.MemFrac
	for i := range buf {
		g.memCredit += frac
		if g.memCredit < 1 {
			in := cpu.Instr{}
			if g.rng.Float64() < serial {
				in.Dep = true
			}
			if g.rng.Intn(every) == 0 {
				in.Mispredict = true
				g.counters.mispredicts++
			}
			buf[i] = in
			continue
		}
		g.memCredit--
		blk := g.nextBlock()
		isStore := g.rng.Float64() < g.spec.StoreFrac
		dep := !isStore && g.rng.Float64() < g.spec.DepFrac
		g.counters.memOps++
		if isStore {
			g.counters.stores++
		}
		buf[i] = cpu.Instr{IsMem: true, IsStore: isStore, Block: blk, Dep: dep}
	}
	return len(buf)
}

// NextMems implements cpu.MemStream, the functional-warm fast path: it
// consumes up to maxInstr instructions, materializing only the memory
// operations into buf and skipping the non-memory runs in between. It is a
// fully fused kernel — the RNG words, phase variables, and credit ride in
// locals for the whole loop, probability compares run in the integer draw
// domain (f64Threshold), and the region draws use the precomputed
// reciprocals — but every draw and branch replays Next's sequence exactly,
// so the generator's stream position, every instruction any later Next or
// NextBatch call produces, and the observation counters stay bit-identical
// to the scalar path (TestNextMemsMatchesNext pins this).
func (g *Generator) NextMems(buf []cpu.MemRef, maxInstr uint64) (n int, consumed uint64) {
	if len(buf) == 0 {
		return 0, 0
	}
	every := uint64(g.spec.MispredictEvery)
	if every == 0 {
		every = 250
	}
	// Division-free divisibility test for the mispredict check (Hacker's
	// Delight 10-17): with every = 2^k·m (m odd) and m⁻¹ the odd-part
	// inverse mod 2⁶⁴, v % every == 0 iff rotr(v·m⁻¹, k) ≤ ⌊(2⁶⁴-1)/every⌋
	// — for a divisible v the product is (v/every)·2^k with zero low bits,
	// while any remainder either leaves low bits for the rotation to hoist
	// into the high end or overflows the quotient bound. The inverse
	// converges in five Newton steps. One setup per call, amortized over
	// the batch, replaces a 64-bit division per skipped instruction with a
	// multiply, a rotate, and one compare whose branch is taken once every
	// `every` instructions — crucially, no 50/50 branch on a random low
	// bit, which a two-part test would hand the branch predictor.
	k := bits.TrailingZeros64(every)
	m := every >> k
	minv := m
	for i := 0; i < 5; i++ {
		minv *= 2 - m*minv
	}
	divThresh := ^uint64(0) / every

	// Integer thresholds for the probability draws. The region cutpoints
	// replicate nextBlock's incremental float sums before scaling, so the
	// partition of the draw space is bit-identical to the float compares.
	t1f := g.spec.L1Frac
	t2f := t1f + g.spec.HotFrac
	t3f := t2f + g.spec.StreamFrac
	t4f := t3f + g.spec.RecentFrac
	t1, t2, t3, t4 := f64Threshold(t1f), f64Threshold(t2f), f64Threshold(t3f), f64Threshold(t4f)
	storeT := f64Threshold(g.spec.StoreFrac)
	turnoverT := f64Threshold(g.spec.ColdTurnover)
	skewT := f64Threshold(0.8)

	frac := g.spec.MemFrac
	repeat := g.spec.StreamRepeat
	if repeat <= 0 {
		repeat = 8
	}
	hotSkew, coldSkew := g.spec.HotSkew, g.spec.ColdSkew
	windowed := g.spec.ColdWindowMB > 0
	l1Base, hotBase, coldBase := g.l1Base, g.hotBase, g.coldBase
	hotBlocks, coldBlocks := g.hotBlocks, g.coldBlocks
	l1Div, coldDiv, windowDiv, recentDiv := g.l1Div, g.coldDiv, g.windowDiv, g.recentDiv
	// One 80/20 narrowing level (the common spec) leaves only two possible
	// final-draw widths — the kept first fifth or its complement — so both
	// reciprocals are computed here (two divisions, amortized over the
	// batch) and the hot-region draw below selects one instead of running a
	// hardware divide with a data-dependent divisor per reference.
	hotCut := hotBlocks / 5
	var hotDivA, hotDivB invDiv
	if hotSkew == 1 && hotBlocks > 5 {
		hotDivA, hotDivB = newInvDiv(hotCut), newInvDiv(hotBlocks-hotCut)
	}
	coldCut := coldBlocks / 5
	var coldDivA, coldDivB invDiv
	if coldSkew == 1 && coldBlocks > 5 {
		coldDivA, coldDivB = newInvDiv(coldCut), newInvDiv(coldBlocks-coldCut)
	}

	// The complete stream position in locals: one load here, one store at
	// the bottom.
	s0, s1, s2, s3 := g.rng.s[0], g.rng.s[1], g.rng.s[2], g.rng.s[3]
	credit := g.memCredit
	ptr, left, head := g.streamPtr, g.streamLeft, g.windowHead
	// The hot counters ride in locals; the per-region tallies (at most one
	// per memory op) update their fields directly to keep the loop's live
	// register set small.
	var mispredicts, memOps, stores uint64

	// The buffer-full check rides on the memory path (the only writer), not
	// the per-instruction loop condition — the skip path's loop overhead is
	// one compare.
	for consumed < maxInstr {
		credit += frac
		consumed++
		var v uint64
		if credit < 1 {
			// Non-memory instruction: the serial-dep draw is unobserved
			// (state advance only); the mispredict draw feeds the counter.
			s0, s1, s2, s3 = xoAdvance(s0, s1, s2, s3)
			v, s0, s1, s2, s3 = xoDraw(s0, s1, s2, s3)
			if bits.RotateLeft64(v*minv, -k) <= divThresh {
				mispredicts++
			}
			continue
		}
		credit--

		// nextBlock, fused. Region select first.
		v, s0, s1, s2, s3 = xoDraw(s0, s1, s2, s3)
		u := v >> 11
		var id uint64
		switch {
		case u < t1:
			g.counters.l1Refs++
			v, s0, s1, s2, s3 = xoDraw(s0, s1, s2, s3)
			id = l1Base + l1Div.mod(v)
		case u < t2:
			g.counters.hotRefs++
			if hotSkew == 1 && hotBlocks > 5 {
				// Single narrowing level: the keep/descend draw selects
				// between the two precomputed widths with conditional
				// moves — the 80/20 outcome is data-random, so nothing
				// here may branch on it.
				v, s0, s1, s2, s3 = xoDraw(s0, s1, s2, s3)
				keep := v>>11 < skewT
				lo, d := uint64(0), hotDivA
				if !keep {
					lo = hotCut
				}
				if !keep {
					d = hotDivB
				}
				v, s0, s1, s2, s3 = xoDraw(s0, s1, s2, s3)
				id = hotBase + lo + d.mod(v)
				break
			}
			lo, hi := uint64(0), hotBlocks
			for level := 0; level < hotSkew && hi-lo > 5; level++ {
				v, s0, s1, s2, s3 = xoDraw(s0, s1, s2, s3)
				// The 80/20 narrowing draw is data-random; both candidate
				// bounds are computed and one selected, keeping it off the
				// branch predictor.
				cut := lo + (hi-lo)/5
				keep := v>>11 < skewT
				if keep {
					hi = cut
				}
				if !keep {
					lo = cut
				}
			}
			v, s0, s1, s2, s3 = xoDraw(s0, s1, s2, s3)
			id = hotBase + lo + v%(hi-lo)
		case u < t3:
			g.counters.streamRefs++
			if left <= 0 {
				// (ptr+1) % coldBlocks: ptr stays < coldBlocks, so the
				// wrap is a single compare.
				ptr++
				if ptr >= coldBlocks {
					ptr = 0
				}
				left = repeat
			}
			left--
			id = coldBase + ptr
		case u < t4:
			g.counters.recentRefs++
			v, s0, s1, s2, s3 = xoDraw(s0, s1, s2, s3)
			delta := 1024 + recentDiv.mod(v)
			if delta >= coldBlocks {
				delta = coldBlocks - 1
			}
			idx := ptr + coldBlocks - delta
			if idx >= coldBlocks {
				idx -= coldBlocks
			}
			id = coldBase + idx
		default:
			g.counters.coldRefs++
			switch {
			case windowed:
				// windowRef, fused.
				v, s0, s1, s2, s3 = xoDraw(s0, s1, s2, s3)
				if v>>11 < turnoverT {
					head++
					if head >= coldBlocks {
						head = 0
					}
					id = coldBase + head
				} else {
					v, s0, s1, s2, s3 = xoDraw(s0, s1, s2, s3)
					back := windowDiv.mod(v)
					idx := head + coldBlocks - back
					if idx >= coldBlocks {
						idx -= coldBlocks
					}
					id = coldBase + idx
				}
			case coldSkew == 1 && coldBlocks > 5:
				v, s0, s1, s2, s3 = xoDraw(s0, s1, s2, s3)
				keep := v>>11 < skewT
				lo, d := uint64(0), coldDivA
				if !keep {
					lo = coldCut
				}
				if !keep {
					d = coldDivB
				}
				v, s0, s1, s2, s3 = xoDraw(s0, s1, s2, s3)
				id = coldBase + lo + d.mod(v)
			case coldSkew > 0:
				lo, hi := uint64(0), coldBlocks
				for level := 0; level < coldSkew && hi-lo > 5; level++ {
					v, s0, s1, s2, s3 = xoDraw(s0, s1, s2, s3)
					cut := lo + (hi-lo)/5
					keep := v>>11 < skewT
					if keep {
						hi = cut
					}
					if !keep {
						lo = cut
					}
				}
				v, s0, s1, s2, s3 = xoDraw(s0, s1, s2, s3)
				id = coldBase + lo + v%(hi-lo)
			default:
				v, s0, s1, s2, s3 = xoDraw(s0, s1, s2, s3)
				id = coldBase + coldDiv.mod(v)
			}
		}

		v, s0, s1, s2, s3 = xoDraw(s0, s1, s2, s3)
		isStore := v>>11 < storeT
		// The dep draw Next takes for loads; its value is unobserved. The
		// advanced state is computed unconditionally and selected, keeping
		// the randomly-taken store/load split off the branch predictor.
		a0, a1, a2, a3 := xoAdvance(s0, s1, s2, s3)
		if !isStore {
			s0, s1, s2, s3 = a0, a1, a2, a3
		}
		memOps++
		var s64 uint64
		if isStore {
			s64 = 1
		}
		stores += s64
		buf[n] = cpu.MemRef{Block: layout(id), Store: isStore}
		n++
		if n == len(buf) {
			break
		}
	}

	g.rng.s[0], g.rng.s[1], g.rng.s[2], g.rng.s[3] = s0, s1, s2, s3
	g.memCredit = credit
	g.streamPtr, g.streamLeft, g.windowHead = ptr, left, head
	g.counters.mispredicts += mispredicts
	g.counters.memOps += memOps
	g.counters.stores += stores
	return n, consumed
}

// layout maps the generator's dense internal block ids onto a sparse
// physical address space: ids stay contiguous within 256 KB chunks (4 K
// blocks), but chunk numbers scatter pseudo-randomly across a ~1 TB range.
// Real processes see exactly this shape — contiguous arrays at scattered
// virtual/physical regions — and it is what gives cache tags their
// diversity: without it, a contiguous footprint yields a handful of
// structured tags and partial-tag aliasing (DNUCA's false-positive
// searches, TLCopt's multi-matches) can never occur. The mix is a
// splitmix64 finalizer; with at most thousands of chunks in a 2^28 space,
// accidental chunk collisions are negligible.
func layout(id uint64) mem.Block {
	const chunkBits = 12
	const mask = 1<<28 - 1
	chunk := id >> chunkBits
	chunk ^= chunk >> 30 // pre-mix is a no-op for small ids; kept for form
	chunk *= 0xbf58476d1ce4e5b9
	chunk ^= chunk >> 27
	chunk *= 0x94d049bb133111eb
	chunk ^= chunk >> 31
	return mem.Block((chunk&mask)<<chunkBits | id&(1<<chunkBits-1))
}

// nextBlock picks the next referenced block by region. It is the scalar
// reference implementation, kept in its straightforward per-draw form (and
// as the honest baseline arm of BenchmarkWarmThroughput); NextMems is the
// optimized kernel that must reproduce its draw sequence bit-exactly.
func (g *Generator) nextBlock() mem.Block {
	r := g.rng.Float64()
	switch {
	case r < g.spec.L1Frac:
		g.counters.l1Refs++
		return layout(g.l1Base + uint64(g.rng.Int63n(int64(g.l1Blocks))))
	case r < g.spec.L1Frac+g.spec.HotFrac:
		g.counters.hotRefs++
		return layout(g.hotBase + g.skewed(g.hotBlocks))
	case r < g.spec.L1Frac+g.spec.HotFrac+g.spec.StreamFrac:
		g.counters.streamRefs++
		if g.streamLeft <= 0 {
			g.streamPtr = (g.streamPtr + 1) % g.coldBlocks
			repeat := g.spec.StreamRepeat
			if repeat <= 0 {
				repeat = 8
			}
			g.streamLeft = repeat
		}
		g.streamLeft--
		return layout(g.coldBase + g.streamPtr)
	case r < g.spec.L1Frac+g.spec.HotFrac+g.spec.StreamFrac+g.spec.RecentFrac:
		g.counters.recentRefs++
		// Revisit a block streamed 1K-16K blocks ago: evicted from the
		// 64 KB L1 (1K blocks) but still in the L2.
		delta := uint64(1024 + g.rng.Int63n(15*1024))
		if delta >= g.coldBlocks {
			delta = g.coldBlocks - 1
		}
		return layout(g.coldBase + (g.streamPtr+g.coldBlocks-delta)%g.coldBlocks)
	default:
		g.counters.coldRefs++
		if g.spec.ColdWindowMB > 0 {
			return layout(g.coldBase + g.windowRef())
		}
		if g.spec.ColdSkew > 0 {
			return layout(g.coldBase + g.skewedN(g.coldBlocks, g.spec.ColdSkew))
		}
		return layout(g.coldBase + uint64(g.rng.Int63n(int64(g.coldBlocks))))
	}
}

// windowRef implements the sliding working-set model: admit a fresh block
// with probability ColdTurnover, else revisit the current window. Indices
// count backward from the window head, wrapping over the cold region.
func (g *Generator) windowRef() uint64 {
	window := uint64(g.spec.ColdWindowMB * blocksPerMB)
	if window == 0 || window > g.coldBlocks {
		window = g.coldBlocks
	}
	if g.rng.Float64() < g.spec.ColdTurnover {
		g.windowHead = (g.windowHead + 1) % g.coldBlocks
		return g.windowHead
	}
	back := uint64(g.rng.Int63n(int64(window)))
	return (g.windowHead + g.coldBlocks - back) % g.coldBlocks
}

// skewed draws an index in [0,n) with the spec's hot-region skew.
func (g *Generator) skewed(n uint64) uint64 { return g.skewedN(n, g.spec.HotSkew) }

// skewedN draws an index in [0,n) with `levels` rounds of nested 80/20
// skew: each round keeps the first fifth of the range with probability
// 0.8.
func (g *Generator) skewedN(n uint64, levels int) uint64 {
	lo, hi := uint64(0), n
	for level := 0; level < levels && hi-lo > 5; level++ {
		if g.rng.Float64() < 0.8 {
			hi = lo + (hi-lo)/5
		} else {
			lo += (hi - lo) / 5
		}
	}
	return lo + uint64(g.rng.Int63n(int64(hi-lo)))
}

// Region classifies a laid-out block address by the footprint region it
// came from: "l1", "hot", "cold", or "outside". Useful for analyzing which
// traffic class a cache design penalizes. The reverse index is built
// lazily on first use.
func (g *Generator) Region(b mem.Block) string {
	if g.reverse == nil {
		g.reverse = make(map[mem.Block]uint64, g.TotalBlocks())
		for id := uint64(0); id < g.TotalBlocks(); id++ {
			g.reverse[layout(id)] = id
		}
	}
	id, ok := g.reverse[b]
	switch {
	case !ok:
		return "outside"
	case id < g.hotBase:
		return "l1"
	case id < g.coldBase:
		return "hot"
	default:
		return "cold"
	}
}

// TotalBlocks reports the footprint in 64-byte blocks.
func (g *Generator) TotalBlocks() uint64 {
	return g.l1Blocks + g.hotBlocks + g.coldBlocks
}

// l2CapacityBlocks is the 16 MB L2 in blocks, bounding how much of a huge
// footprint a pre-warm can usefully install.
const l2CapacityBlocks = 16 * blocksPerMB // 16 MB / 64 B

// PreWarm installs the cache-relevant slice of the footprint functionally:
// the most recently streamed cold blocks first (they come out coldest —
// LRU in the recency designs, farthest banks in DNUCA), then the hot
// region, then the L1-hot region. The cold window is sized so hot data is
// never displaced: capacity minus the hot regions. The generator's Warm
// pass then establishes steady-state recency and migration state.
func (g *Generator) PreWarm(c l2.Cache) {
	budget := uint64(l2CapacityBlocks)
	hotTotal := g.hotBlocks + g.l1Blocks
	var coldWindow uint64
	if budget > hotTotal {
		// Fill to three quarters of the remaining capacity, not all of
		// it: block-to-set mapping is Poisson, so filling to the global
		// mean would overflow a third of the sets and spill the
		// hot-region blocks (inserted last) into placements a warmed-up
		// cache would never leave them in.
		coldWindow = (budget - hotTotal) * 3 / 4
	}
	if coldWindow > g.coldBlocks {
		coldWindow = g.coldBlocks
	}
	// The stream resumes at streamPtr (= 0, i.e. just past cold[N-1]); the
	// window just behind it is what a long-running process would have
	// resident, oldest first. Designs supporting bulk warming receive the
	// blocks in batches (one dispatch per batch, same installation order);
	// the rest get the per-block Warm calls.
	warmer, bulk := c.(l2.Warmer)
	var buf []mem.Block
	if bulk {
		buf = make([]mem.Block, 0, 1024)
	}
	emit := func(b mem.Block) {
		if !bulk {
			c.Warm(b)
			return
		}
		buf = append(buf, b)
		if len(buf) == cap(buf) {
			warmer.WarmBulk(buf)
			buf = buf[:0]
		}
	}
	for i := coldWindow; i > 0; i-- {
		emit(layout(g.coldBase + g.coldBlocks - i))
	}
	for b := g.hotBase; b < g.hotBase+g.hotBlocks; b++ {
		emit(layout(b))
	}
	for b := g.l1Base; b < g.l1Base+g.l1Blocks; b++ {
		emit(layout(b))
	}
	if bulk && len(buf) > 0 {
		warmer.WarmBulk(buf)
	}
}

// Specs returns the twelve benchmark specs in the paper's Table 6 order.
func Specs() []Spec {
	return []Spec{
		// SPECint 2000. Small footprints that fit the 16 MB L2; miss
		// rates near zero (Table 6: 0.019-0.068 per 1K instructions).
		// bzip's hot set mostly fits DNUCA's 2 MB of close banks
		// (close-hit 81%).
		{Name: "bzip", FootprintMB: 7, L1MB: 0.03, L1Frac: 0.954, HotMB: 1.0, HotFrac: 0.028,
			StreamFrac: 0.016, StoreFrac: 0.30, MemFrac: 0.30, DepFrac: 0.45, SerialFrac: 0.6},
		// gcc's hot set fits the close banks: 99% close hits.
		{Name: "gcc", FootprintMB: 6, L1MB: 0.03, L1Frac: 0.78, HotMB: 1.6, HotFrac: 0.21,
			HotSkew: 1, StreamFrac: 0.005, StoreFrac: 0.35, MemFrac: 0.35, DepFrac: 0.45, SerialFrac: 0.6},
		// mcf: pointer chasing over a large in-cache footprint; the close
		// banks hold only a fraction of its hot set (close-hit 48%), and
		// dependent loads expose the full L2 latency.
		{Name: "mcf", FootprintMB: 10, L1MB: 0.02, L1Frac: 0.716, HotMB: 5, HotFrac: 0.27,
			StreamFrac: 0.01, StoreFrac: 0.15, MemFrac: 0.40, DepFrac: 0.75, SerialFrac: 0.5},
		{Name: "perl", FootprintMB: 4, L1MB: 0.03, L1Frac: 0.9837, HotMB: 0.4, HotFrac: 0.015,
			HotSkew: 2, StreamFrac: 0.0, StoreFrac: 0.35, MemFrac: 0.30, DepFrac: 0.40, SerialFrac: 0.6},
		// SPECfp 2000. equake mixes a large frequently-reused set with a
		// stream — the case that separates DNUCA's insertion policy from
		// TLC's LRU (Section 6.1). The streamers (swim, applu, lucas)
		// miss on nearly every L2 request; their few hits are short-reuse
		// revisits landing in DNUCA's far banks.
		{Name: "equake", FootprintMB: 160, L1MB: 0.03, L1Frac: 0.8806, HotMB: 12, HotFrac: 0.0214,
			StreamFrac: 0.096, StoreFrac: 0.20, MemFrac: 0.35, DepFrac: 0.25},
		// swim is nearly pure streaming: its few hits are short-reuse
		// revisits to recently streamed blocks, which sit in DNUCA's far
		// banks (close-hit 0.7%, promotes/inserts 0.15).
		{Name: "swim", FootprintMB: 192, L1MB: 0.004, L1Frac: 0.06, HotMB: 0.25, HotFrac: 0.002,
			StreamFrac: 0.92, RecentFrac: 0.014, StoreFrac: 0.35, MemFrac: 0.40, DepFrac: 0.10},
		{Name: "applu", FootprintMB: 180, L1MB: 0.03, L1Frac: 0.627, HotMB: 0.25, HotFrac: 0.002,
			StreamFrac: 0.366, RecentFrac: 0.003, StoreFrac: 0.35, MemFrac: 0.35, DepFrac: 0.10},
		{Name: "lucas", FootprintMB: 140, L1MB: 0.03, L1Frac: 0.6413, HotMB: 0.5, HotFrac: 0.004,
			StreamFrac: 0.3467, RecentFrac: 0.0065, StoreFrac: 0.25, MemFrac: 0.30, DepFrac: 0.10},
		// Commercial workloads: large footprints, a cache-resident hot
		// set, and a cold tail whose misses set the Table 6 rates.
		{Name: "apache", FootprintMB: 120, L1MB: 0.03, L1Frac: 0.913, HotMB: 2.5, HotFrac: 0.048,
			HotSkew: 1, ColdWindowMB: 1.2, ColdTurnover: 0.33, StreamFrac: 0.002,
			StoreFrac: 0.30, MemFrac: 0.35, DepFrac: 0.45, SerialFrac: 0.5},
		{Name: "zeus", FootprintMB: 130, L1MB: 0.03, L1Frac: 0.918, HotMB: 0.6, HotFrac: 0.030,
			HotSkew: 1, ColdWindowMB: 1.2, ColdTurnover: 0.33, StreamFrac: 0.002,
			StoreFrac: 0.30, MemFrac: 0.35, DepFrac: 0.45, SerialFrac: 0.5},
		{Name: "sjbb", FootprintMB: 100, L1MB: 0.03, L1Frac: 0.958, HotMB: 0.8, HotFrac: 0.023,
			HotSkew: 1, ColdWindowMB: 1.2, ColdTurnover: 0.33, StreamFrac: 0.002,
			StoreFrac: 0.30, MemFrac: 0.35, DepFrac: 0.40, SerialFrac: 0.5},
		{Name: "oltp", FootprintMB: 60, L1MB: 0.03, L1Frac: 0.9805, HotMB: 1.2, HotFrac: 0.0136,
			HotSkew: 2, ColdWindowMB: 1.0, ColdTurnover: 0.33, StreamFrac: 0.001,
			StoreFrac: 0.35, MemFrac: 0.35, DepFrac: 0.50, SerialFrac: 0.5},
	}
}

// AutoWarmInstructions reports a warm-up length that gives every block of
// the hot working set roughly five L2-visible touches — enough for DNUCA's
// accelerated warm promotion to reach its steady-state placement —
// clamped to [4 M, 24 M] instructions.
func (s Spec) AutoWarmInstructions() uint64 {
	const touches = 5
	hotBlocks := s.HotMB * blocksPerMB
	rate := s.MemFrac * s.HotFrac
	warm := uint64(4_000_000)
	if rate > 0 {
		if w := uint64(touches * hotBlocks / rate); w > warm {
			warm = w
		}
	}
	if warm > 24_000_000 {
		warm = 24_000_000
	}
	return warm
}

// specIndex maps benchmark names to their specs, built once: SpecByName is
// called per Run and per checkpoint-key computation, and rebuilding all
// twelve specs per lookup was measurable in sweep profiles.
var specIndex = func() map[string]Spec {
	m := make(map[string]Spec, 12)
	for _, s := range Specs() {
		m[s.Name] = s
	}
	return m
}()

// SpecByName looks up one of the twelve benchmarks.
func SpecByName(name string) (Spec, bool) {
	s, ok := specIndex[name]
	return s, ok
}

// specNames is the Table 6 name order, built once alongside specIndex.
var specNames = func() []string {
	specs := Specs()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}()

// Names lists the benchmark names in order. The returned slice is fresh per
// call; callers may mutate it.
func Names() []string {
	out := make([]string, len(specNames))
	copy(out, specNames)
	return out
}
