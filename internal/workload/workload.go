// Package workload generates the synthetic instruction traces standing in
// for the paper's twelve benchmarks (Tables 4-6): four SPECint 2000
// (bzip, gcc, mcf, perl), four SPECfp 2000 (equake, lucas, swim, applu),
// and four commercial workloads (apache, zeus, SPECjbb, OLTP).
//
// Each benchmark is a Spec: a memory footprint, a hot working set with
// optional skew, a streaming fraction, a store fraction, a memory-op
// density, and a dependent-load probability. The specs are calibrated so
// the address-stream statistics that drive every result in the paper's
// Section 6 — L2 request rate, L2 miss rate, footprint relative to the
// 16 MB cache and to DNUCA's 2 MB of close banks, and streaming-versus-
// reuse behaviour — land near Table 6.
package workload

import (
	"fmt"

	"tlc/internal/cpu"
	"tlc/internal/l2"
	"tlc/internal/mem"
	"tlc/internal/metrics"
)

// Region sizes are expressed in 64-byte blocks.
const blocksPerMB = 1024 * 1024 / mem.BlockBytes

// Spec parameterizes one synthetic benchmark.
type Spec struct {
	// Name is the benchmark label used in every table.
	Name string
	// FootprintMB is the total data footprint.
	FootprintMB float64
	// L1MB is a tiny very-hot region that the 64 KB L1 mostly absorbs;
	// L1Frac of memory references go to it. It controls the L2 request
	// rate (Table 6, column 2).
	L1MB   float64
	L1Frac float64
	// HotMB and HotFrac describe the L2-scale hot working set.
	HotMB   float64
	HotFrac float64
	// HotSkew > 0 applies nested 80/20 skew within the hot region
	// (levels of recursion); 0 is uniform.
	HotSkew int
	// StreamFrac of references walk the cold region sequentially —
	// the SPECfp streaming behaviour. Streams have word-level spatial
	// locality: StreamRepeat consecutive stream references touch the
	// same 64-byte block (default 8, i.e. 8-byte strides), so the L1
	// absorbs 7 of every 8 stream references just as on real hardware.
	StreamFrac   float64
	StreamRepeat int
	// ColdSkew > 0 applies nested 80/20 skew within the cold region
	// (static popularity skew; no temporal drift).
	ColdSkew int
	// ColdWindowMB switches the cold region to a sliding working-set
	// model: references fall uniformly in a window of this size, and
	// with probability ColdTurnover a reference admits a fresh block
	// (advancing the window) instead — a compulsory miss. Fresh blocks
	// are re-referenced within the window shortly after admission, the
	// temporal clustering real commercial workloads exhibit and the
	// behaviour DNUCA's insert-far/promote-on-reuse placement learns.
	ColdWindowMB float64
	// ColdTurnover is the fresh-block probability per cold reference;
	// the cold miss rate is ColdFrac * MemFrac * ColdTurnover.
	ColdTurnover float64
	// RecentFrac of references revisit a block streamed a short while
	// ago (beyond L1 reach, within L2 reach) — the short-reuse traffic
	// that gives the streaming SPECfp benchmarks their small hit rates,
	// hitting DNUCA's *far* banks (Table 6: swim close-hit 0.7% with a
	// 17% hit rate, promotes/inserts 0.15).
	RecentFrac float64
	// StoreFrac of memory operations are stores.
	StoreFrac float64
	// MemFrac of instructions are memory operations.
	MemFrac float64
	// DepFrac is the probability a load depends on the previous load
	// (pointer chasing serializes mcf; streaming code barely does).
	DepFrac float64
	// SerialFrac is the probability a non-memory instruction depends on
	// its predecessor — the ILP limiter that keeps base IPC realistic.
	// Zero selects the default of 0.35.
	SerialFrac float64
	// MispredictEvery is the mean instructions between branch
	// mispredictions (each costs a 30-stage pipeline refill). Zero
	// selects the default of 250.
	MispredictEvery int
}

// Generator produces the instruction stream for a Spec.
type Generator struct {
	spec Spec
	rng  *prng

	l1Blocks, hotBlocks, coldBlocks uint64
	l1Base, hotBase, coldBase       uint64
	streamPtr                       uint64
	streamLeft                      int
	windowHead                      uint64
	reverse                         map[mem.Block]uint64

	// memCredit implements the deterministic memory-op density.
	memCredit float64

	// counters tallies emitted instructions by class and referenced blocks
	// by footprint region. They are observation-only: not part of State
	// (the stream is unaffected by them) and reset at the start of every
	// timed interval so a restored checkpoint counts only what it runs.
	counters struct {
		memOps, stores, mispredicts                       uint64
		l1Refs, hotRefs, streamRefs, recentRefs, coldRefs uint64
	}
}

// New builds a deterministic generator for the spec with the given seed.
func New(spec Spec, seed int64) *Generator {
	if spec.FootprintMB <= 0 {
		panic(fmt.Sprintf("workload: %q has no footprint", spec.Name))
	}
	l1 := uint64(spec.L1MB * blocksPerMB)
	hot := uint64(spec.HotMB * blocksPerMB)
	total := uint64(spec.FootprintMB * blocksPerMB)
	if l1+hot > total {
		panic(fmt.Sprintf("workload: %q regions exceed footprint", spec.Name))
	}
	cold := total - l1 - hot
	if cold == 0 {
		cold = 1
	}
	return &Generator{
		spec:       spec,
		rng:        newPRNG(seed),
		l1Blocks:   max64(l1, 1),
		hotBlocks:  max64(hot, 1),
		coldBlocks: cold,
		l1Base:     0,
		hotBase:    l1,
		coldBase:   l1 + hot,
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Spec reports the generator's spec.
func (g *Generator) Spec() Spec { return g.spec }

// State is the generator's complete stream position: RNG state plus the
// phase variables (stream pointer, window head, spatial-repeat countdown,
// memory-op credit). Capturing it after warm-up and restoring it later
// resumes the identical instruction stream — the workload half of a
// warm-state checkpoint. All fields are exported for gob encoding by the
// on-disk checkpoint store.
type State struct {
	RNG        [4]uint64
	StreamPtr  uint64
	StreamLeft int
	WindowHead uint64
	MemCredit  float64
}

// State captures the generator's stream position.
func (g *Generator) State() State {
	return State{
		RNG:        g.rng.state(),
		StreamPtr:  g.streamPtr,
		StreamLeft: g.streamLeft,
		WindowHead: g.windowHead,
		MemCredit:  g.memCredit,
	}
}

// SetState restores a stream position captured by State on a generator
// built from the same Spec. The subsequent Next sequence is identical to
// the one the captured generator would have produced.
func (g *Generator) SetState(st State) {
	g.rng.setState(st.RNG)
	g.streamPtr = st.StreamPtr
	g.streamLeft = st.StreamLeft
	g.windowHead = st.WindowHead
	g.memCredit = st.MemCredit
}

// ResetCounters zeroes the observation counters. The harness calls this at
// the start of the timed interval so warm-up traffic (or the run that
// produced a restored checkpoint) is excluded.
func (g *Generator) ResetCounters() {
	g.counters = struct {
		memOps, stores, mispredicts                       uint64
		l1Refs, hotRefs, streamRefs, recentRefs, coldRefs uint64
	}{}
}

// RegisterMetrics publishes the generator's instruction-stream counters
// under "workload.".
func (g *Generator) RegisterMetrics(r *metrics.Registry) {
	r.CounterFunc("workload.mem_ops", func() uint64 { return g.counters.memOps })
	r.CounterFunc("workload.stores", func() uint64 { return g.counters.stores })
	r.CounterFunc("workload.mispredicts", func() uint64 { return g.counters.mispredicts })
	r.CounterFunc("workload.l1_refs", func() uint64 { return g.counters.l1Refs })
	r.CounterFunc("workload.hot_refs", func() uint64 { return g.counters.hotRefs })
	r.CounterFunc("workload.stream_refs", func() uint64 { return g.counters.streamRefs })
	r.CounterFunc("workload.recent_refs", func() uint64 { return g.counters.recentRefs })
	r.CounterFunc("workload.cold_refs", func() uint64 { return g.counters.coldRefs })
}

// Reseed replaces the random source with a freshly seeded one while keeping
// the phase variables (stream position, working-set window). A seed sweep
// over the timed interval reseeds after warm-up: every seed then measures
// from the same warmed machine state, isolating seed effects to the
// measured interval itself.
func (g *Generator) Reseed(seed int64) { g.rng.reseed(seed) }

// Next implements cpu.Stream.
func (g *Generator) Next() cpu.Instr {
	g.memCredit += g.spec.MemFrac
	if g.memCredit < 1 {
		in := cpu.Instr{}
		serial := g.spec.SerialFrac
		if serial == 0 {
			serial = 0.35
		}
		if g.rng.Float64() < serial {
			in.Dep = true
		}
		every := g.spec.MispredictEvery
		if every == 0 {
			every = 250
		}
		if g.rng.Intn(every) == 0 {
			in.Mispredict = true
			g.counters.mispredicts++
		}
		return in
	}
	g.memCredit--
	blk := g.nextBlock()
	isStore := g.rng.Float64() < g.spec.StoreFrac
	dep := !isStore && g.rng.Float64() < g.spec.DepFrac
	g.counters.memOps++
	if isStore {
		g.counters.stores++
	}
	return cpu.Instr{IsMem: true, IsStore: isStore, Block: blk, Dep: dep}
}

// layout maps the generator's dense internal block ids onto a sparse
// physical address space: ids stay contiguous within 256 KB chunks (4 K
// blocks), but chunk numbers scatter pseudo-randomly across a ~1 TB range.
// Real processes see exactly this shape — contiguous arrays at scattered
// virtual/physical regions — and it is what gives cache tags their
// diversity: without it, a contiguous footprint yields a handful of
// structured tags and partial-tag aliasing (DNUCA's false-positive
// searches, TLCopt's multi-matches) can never occur. The mix is a
// splitmix64 finalizer; with at most thousands of chunks in a 2^28 space,
// accidental chunk collisions are negligible.
func layout(id uint64) mem.Block {
	const chunkBits = 12
	const mask = 1<<28 - 1
	chunk := id >> chunkBits
	chunk ^= chunk >> 30 // pre-mix is a no-op for small ids; kept for form
	chunk *= 0xbf58476d1ce4e5b9
	chunk ^= chunk >> 27
	chunk *= 0x94d049bb133111eb
	chunk ^= chunk >> 31
	return mem.Block((chunk&mask)<<chunkBits | id&(1<<chunkBits-1))
}

// nextBlock picks the next referenced block by region.
func (g *Generator) nextBlock() mem.Block {
	r := g.rng.Float64()
	switch {
	case r < g.spec.L1Frac:
		g.counters.l1Refs++
		return layout(g.l1Base + uint64(g.rng.Int63n(int64(g.l1Blocks))))
	case r < g.spec.L1Frac+g.spec.HotFrac:
		g.counters.hotRefs++
		return layout(g.hotBase + g.skewed(g.hotBlocks))
	case r < g.spec.L1Frac+g.spec.HotFrac+g.spec.StreamFrac:
		g.counters.streamRefs++
		if g.streamLeft <= 0 {
			g.streamPtr = (g.streamPtr + 1) % g.coldBlocks
			repeat := g.spec.StreamRepeat
			if repeat <= 0 {
				repeat = 8
			}
			g.streamLeft = repeat
		}
		g.streamLeft--
		return layout(g.coldBase + g.streamPtr)
	case r < g.spec.L1Frac+g.spec.HotFrac+g.spec.StreamFrac+g.spec.RecentFrac:
		g.counters.recentRefs++
		// Revisit a block streamed 1K-16K blocks ago: evicted from the
		// 64 KB L1 (1K blocks) but still in the L2.
		delta := uint64(1024 + g.rng.Int63n(15*1024))
		if delta >= g.coldBlocks {
			delta = g.coldBlocks - 1
		}
		return layout(g.coldBase + (g.streamPtr+g.coldBlocks-delta)%g.coldBlocks)
	default:
		g.counters.coldRefs++
		if g.spec.ColdWindowMB > 0 {
			return layout(g.coldBase + g.windowRef())
		}
		if g.spec.ColdSkew > 0 {
			return layout(g.coldBase + g.skewedN(g.coldBlocks, g.spec.ColdSkew))
		}
		return layout(g.coldBase + uint64(g.rng.Int63n(int64(g.coldBlocks))))
	}
}

// windowRef implements the sliding working-set model: admit a fresh block
// with probability ColdTurnover, else revisit the current window. Indices
// count backward from the window head, wrapping over the cold region.
func (g *Generator) windowRef() uint64 {
	window := uint64(g.spec.ColdWindowMB * blocksPerMB)
	if window == 0 || window > g.coldBlocks {
		window = g.coldBlocks
	}
	if g.rng.Float64() < g.spec.ColdTurnover {
		g.windowHead = (g.windowHead + 1) % g.coldBlocks
		return g.windowHead
	}
	back := uint64(g.rng.Int63n(int64(window)))
	return (g.windowHead + g.coldBlocks - back) % g.coldBlocks
}

// skewed draws an index in [0,n) with the spec's hot-region skew.
func (g *Generator) skewed(n uint64) uint64 { return g.skewedN(n, g.spec.HotSkew) }

// skewedN draws an index in [0,n) with `levels` rounds of nested 80/20
// skew: each round keeps the first fifth of the range with probability
// 0.8.
func (g *Generator) skewedN(n uint64, levels int) uint64 {
	lo, hi := uint64(0), n
	for level := 0; level < levels && hi-lo > 5; level++ {
		if g.rng.Float64() < 0.8 {
			hi = lo + (hi-lo)/5
		} else {
			lo += (hi - lo) / 5
		}
	}
	return lo + uint64(g.rng.Int63n(int64(hi-lo)))
}

// Region classifies a laid-out block address by the footprint region it
// came from: "l1", "hot", "cold", or "outside". Useful for analyzing which
// traffic class a cache design penalizes. The reverse index is built
// lazily on first use.
func (g *Generator) Region(b mem.Block) string {
	if g.reverse == nil {
		g.reverse = make(map[mem.Block]uint64, g.TotalBlocks())
		for id := uint64(0); id < g.TotalBlocks(); id++ {
			g.reverse[layout(id)] = id
		}
	}
	id, ok := g.reverse[b]
	switch {
	case !ok:
		return "outside"
	case id < g.hotBase:
		return "l1"
	case id < g.coldBase:
		return "hot"
	default:
		return "cold"
	}
}

// TotalBlocks reports the footprint in 64-byte blocks.
func (g *Generator) TotalBlocks() uint64 {
	return g.l1Blocks + g.hotBlocks + g.coldBlocks
}

// l2CapacityBlocks is the 16 MB L2 in blocks, bounding how much of a huge
// footprint a pre-warm can usefully install.
const l2CapacityBlocks = 16 * blocksPerMB // 16 MB / 64 B

// PreWarm installs the cache-relevant slice of the footprint functionally:
// the most recently streamed cold blocks first (they come out coldest —
// LRU in the recency designs, farthest banks in DNUCA), then the hot
// region, then the L1-hot region. The cold window is sized so hot data is
// never displaced: capacity minus the hot regions. The generator's Warm
// pass then establishes steady-state recency and migration state.
func (g *Generator) PreWarm(c l2.Cache) {
	budget := uint64(l2CapacityBlocks)
	hotTotal := g.hotBlocks + g.l1Blocks
	var coldWindow uint64
	if budget > hotTotal {
		// Fill to three quarters of the remaining capacity, not all of
		// it: block-to-set mapping is Poisson, so filling to the global
		// mean would overflow a third of the sets and spill the
		// hot-region blocks (inserted last) into placements a warmed-up
		// cache would never leave them in.
		coldWindow = (budget - hotTotal) * 3 / 4
	}
	if coldWindow > g.coldBlocks {
		coldWindow = g.coldBlocks
	}
	// The stream resumes at streamPtr (= 0, i.e. just past cold[N-1]); the
	// window just behind it is what a long-running process would have
	// resident, oldest first.
	for i := coldWindow; i > 0; i-- {
		c.Warm(layout(g.coldBase + g.coldBlocks - i))
	}
	for b := g.hotBase; b < g.hotBase+g.hotBlocks; b++ {
		c.Warm(layout(b))
	}
	for b := g.l1Base; b < g.l1Base+g.l1Blocks; b++ {
		c.Warm(layout(b))
	}
}

// Specs returns the twelve benchmark specs in the paper's Table 6 order.
func Specs() []Spec {
	return []Spec{
		// SPECint 2000. Small footprints that fit the 16 MB L2; miss
		// rates near zero (Table 6: 0.019-0.068 per 1K instructions).
		// bzip's hot set mostly fits DNUCA's 2 MB of close banks
		// (close-hit 81%).
		{Name: "bzip", FootprintMB: 7, L1MB: 0.03, L1Frac: 0.954, HotMB: 1.0, HotFrac: 0.028,
			StreamFrac: 0.016, StoreFrac: 0.30, MemFrac: 0.30, DepFrac: 0.45, SerialFrac: 0.6},
		// gcc's hot set fits the close banks: 99% close hits.
		{Name: "gcc", FootprintMB: 6, L1MB: 0.03, L1Frac: 0.78, HotMB: 1.6, HotFrac: 0.21,
			HotSkew: 1, StreamFrac: 0.005, StoreFrac: 0.35, MemFrac: 0.35, DepFrac: 0.45, SerialFrac: 0.6},
		// mcf: pointer chasing over a large in-cache footprint; the close
		// banks hold only a fraction of its hot set (close-hit 48%), and
		// dependent loads expose the full L2 latency.
		{Name: "mcf", FootprintMB: 10, L1MB: 0.02, L1Frac: 0.716, HotMB: 5, HotFrac: 0.27,
			StreamFrac: 0.01, StoreFrac: 0.15, MemFrac: 0.40, DepFrac: 0.75, SerialFrac: 0.5},
		{Name: "perl", FootprintMB: 4, L1MB: 0.03, L1Frac: 0.9837, HotMB: 0.4, HotFrac: 0.015,
			HotSkew: 2, StreamFrac: 0.0, StoreFrac: 0.35, MemFrac: 0.30, DepFrac: 0.40, SerialFrac: 0.6},
		// SPECfp 2000. equake mixes a large frequently-reused set with a
		// stream — the case that separates DNUCA's insertion policy from
		// TLC's LRU (Section 6.1). The streamers (swim, applu, lucas)
		// miss on nearly every L2 request; their few hits are short-reuse
		// revisits landing in DNUCA's far banks.
		{Name: "equake", FootprintMB: 160, L1MB: 0.03, L1Frac: 0.8806, HotMB: 12, HotFrac: 0.0214,
			StreamFrac: 0.096, StoreFrac: 0.20, MemFrac: 0.35, DepFrac: 0.25},
		// swim is nearly pure streaming: its few hits are short-reuse
		// revisits to recently streamed blocks, which sit in DNUCA's far
		// banks (close-hit 0.7%, promotes/inserts 0.15).
		{Name: "swim", FootprintMB: 192, L1MB: 0.004, L1Frac: 0.06, HotMB: 0.25, HotFrac: 0.002,
			StreamFrac: 0.92, RecentFrac: 0.014, StoreFrac: 0.35, MemFrac: 0.40, DepFrac: 0.10},
		{Name: "applu", FootprintMB: 180, L1MB: 0.03, L1Frac: 0.627, HotMB: 0.25, HotFrac: 0.002,
			StreamFrac: 0.366, RecentFrac: 0.003, StoreFrac: 0.35, MemFrac: 0.35, DepFrac: 0.10},
		{Name: "lucas", FootprintMB: 140, L1MB: 0.03, L1Frac: 0.6413, HotMB: 0.5, HotFrac: 0.004,
			StreamFrac: 0.3467, RecentFrac: 0.0065, StoreFrac: 0.25, MemFrac: 0.30, DepFrac: 0.10},
		// Commercial workloads: large footprints, a cache-resident hot
		// set, and a cold tail whose misses set the Table 6 rates.
		{Name: "apache", FootprintMB: 120, L1MB: 0.03, L1Frac: 0.913, HotMB: 2.5, HotFrac: 0.048,
			HotSkew: 1, ColdWindowMB: 1.2, ColdTurnover: 0.33, StreamFrac: 0.002,
			StoreFrac: 0.30, MemFrac: 0.35, DepFrac: 0.45, SerialFrac: 0.5},
		{Name: "zeus", FootprintMB: 130, L1MB: 0.03, L1Frac: 0.918, HotMB: 0.6, HotFrac: 0.030,
			HotSkew: 1, ColdWindowMB: 1.2, ColdTurnover: 0.33, StreamFrac: 0.002,
			StoreFrac: 0.30, MemFrac: 0.35, DepFrac: 0.45, SerialFrac: 0.5},
		{Name: "sjbb", FootprintMB: 100, L1MB: 0.03, L1Frac: 0.958, HotMB: 0.8, HotFrac: 0.023,
			HotSkew: 1, ColdWindowMB: 1.2, ColdTurnover: 0.33, StreamFrac: 0.002,
			StoreFrac: 0.30, MemFrac: 0.35, DepFrac: 0.40, SerialFrac: 0.5},
		{Name: "oltp", FootprintMB: 60, L1MB: 0.03, L1Frac: 0.9805, HotMB: 1.2, HotFrac: 0.0136,
			HotSkew: 2, ColdWindowMB: 1.0, ColdTurnover: 0.33, StreamFrac: 0.001,
			StoreFrac: 0.35, MemFrac: 0.35, DepFrac: 0.50, SerialFrac: 0.5},
	}
}

// AutoWarmInstructions reports a warm-up length that gives every block of
// the hot working set roughly five L2-visible touches — enough for DNUCA's
// accelerated warm promotion to reach its steady-state placement —
// clamped to [4 M, 24 M] instructions.
func (s Spec) AutoWarmInstructions() uint64 {
	const touches = 5
	hotBlocks := s.HotMB * blocksPerMB
	rate := s.MemFrac * s.HotFrac
	warm := uint64(4_000_000)
	if rate > 0 {
		if w := uint64(touches * hotBlocks / rate); w > warm {
			warm = w
		}
	}
	if warm > 24_000_000 {
		warm = 24_000_000
	}
	return warm
}

// specIndex maps benchmark names to their specs, built once: SpecByName is
// called per Run and per checkpoint-key computation, and rebuilding all
// twelve specs per lookup was measurable in sweep profiles.
var specIndex = func() map[string]Spec {
	m := make(map[string]Spec, 12)
	for _, s := range Specs() {
		m[s.Name] = s
	}
	return m
}()

// SpecByName looks up one of the twelve benchmarks.
func SpecByName(name string) (Spec, bool) {
	s, ok := specIndex[name]
	return s, ok
}

// specNames is the Table 6 name order, built once alongside specIndex.
var specNames = func() []string {
	specs := Specs()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}()

// Names lists the benchmark names in order. The returned slice is fresh per
// call; callers may mutate it.
func Names() []string {
	out := make([]string, len(specNames))
	copy(out, specNames)
	return out
}
