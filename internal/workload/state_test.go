package workload

import (
	"reflect"
	"testing"

	"tlc/internal/cpu"
)

func TestStateRoundTripResumesIdenticalStream(t *testing.T) {
	spec, _ := SpecByName("apache")
	g := New(spec, 7)
	// Advance into the middle of the stream so every phase variable is hot.
	for i := 0; i < 50000; i++ {
		g.Next()
	}
	st := g.State()

	// Reference continuation from the captured point.
	want := make([]cpu.Instr, 20000)
	for i := range want {
		want[i] = g.Next()
	}

	// A fresh generator restored to the captured state must reproduce it.
	g2 := New(spec, 999) // different seed: state must fully override it
	g2.SetState(st)
	for i := range want {
		if got := g2.Next(); got != want[i] {
			t.Fatalf("instr %d after restore: got %+v, want %+v", i, got, want[i])
		}
	}
}

func TestStateIsDeepCopy(t *testing.T) {
	spec, _ := SpecByName("oltp")
	g := New(spec, 3)
	for i := 0; i < 1000; i++ {
		g.Next()
	}
	st := g.State()
	snap := st
	// Advancing the generator must not mutate the captured state.
	for i := 0; i < 1000; i++ {
		g.Next()
	}
	if !reflect.DeepEqual(st, snap) {
		t.Fatal("advancing the generator mutated a captured State")
	}
}

func TestReseedMatchesFreshSource(t *testing.T) {
	spec, _ := SpecByName("sjbb")
	g := New(spec, 11)
	for i := 0; i < 5000; i++ {
		g.Next()
	}
	// Capture phase, reseed, and compare against a generator with the same
	// phase but a freshly constructed source for the new seed.
	st := g.State()
	g.Reseed(42)

	ref := New(spec, 42)
	refState := st
	refState.RNG = ref.rng.state()
	ref.SetState(refState)

	for i := 0; i < 5000; i++ {
		if got, want := g.Next(), ref.Next(); got != want {
			t.Fatalf("instr %d after Reseed diverges: got %+v, want %+v", i, got, want)
		}
	}
}

func TestSpecByNameMatchesSpecs(t *testing.T) {
	for _, s := range Specs() {
		got, ok := SpecByName(s.Name)
		if !ok {
			t.Fatalf("SpecByName(%q) not found", s.Name)
		}
		if !reflect.DeepEqual(got, s) {
			t.Fatalf("SpecByName(%q) = %+v, want %+v", s.Name, got, s)
		}
	}
	if _, ok := SpecByName("no-such-bench"); ok {
		t.Fatal("SpecByName accepted an unknown name")
	}
}

func TestNamesReturnsFreshSlice(t *testing.T) {
	a := Names()
	a[0] = "clobbered"
	if b := Names(); b[0] == "clobbered" {
		t.Fatal("Names shares its backing array across calls")
	}
}

func BenchmarkSpecByName(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := SpecByName("apache"); !ok {
			b.Fatal("lookup failed")
		}
	}
}
