package workload

import (
	"fmt"

	"tlc/internal/cpu"
	"tlc/internal/l2"
	"tlc/internal/mem"
	"tlc/internal/metrics"
	"tlc/internal/sim"
)

// SharingSpec parameterizes how N CMP cores' streams relate. The zero
// value is the private-striped pattern: every core runs its own copy of
// the benchmark in a disjoint address-space stripe, and core 0's stripe is
// bit-identical to the single-core stream.
type SharingSpec struct {
	// Pattern names the cross-core sharing pattern: "private" (or ""),
	// "producer-consumer" (even cores write a shared region sequentially,
	// odd cores read it), "migratory" (cores take turns doing
	// read-modify-write bursts over the shared region), or "read-mostly"
	// (all cores read the shared region uniformly with a small store
	// fraction).
	Pattern string
	// SharedMB sizes the shared region; zero selects 1 MB. Ignored by the
	// private pattern.
	SharedMB float64
	// SharedFrac is the probability a memory reference is redirected into
	// the shared region; zero selects 0.1. Ignored by the private pattern.
	SharedFrac float64
}

// SharingPatterns lists the valid Pattern names.
func SharingPatterns() []string {
	return []string{"private", "producer-consumer", "migratory", "read-mostly"}
}

// Validate rejects unknown patterns and out-of-range parameters.
func (s SharingSpec) Validate() error {
	switch s.Pattern {
	case "", "private", "producer-consumer", "migratory", "read-mostly":
	default:
		return fmt.Errorf("workload: unknown sharing pattern %q (want private, producer-consumer, migratory, or read-mostly)", s.Pattern)
	}
	if s.SharedMB < 0 {
		return fmt.Errorf("workload: negative shared region size %g MB", s.SharedMB)
	}
	if s.SharedFrac < 0 || s.SharedFrac > 1 {
		return fmt.Errorf("workload: shared fraction %g outside [0,1]", s.SharedFrac)
	}
	return nil
}

// Normalize resolves defaults so equal-behaviour specs hash equally: ""
// becomes "private", the private pattern drops its unused knobs, and the
// sharing patterns fill in the default region size and redirect fraction.
func (s SharingSpec) Normalize() SharingSpec {
	if s.Pattern == "" {
		s.Pattern = "private"
	}
	if s.Pattern == "private" {
		return SharingSpec{Pattern: "private"}
	}
	if s.SharedMB == 0 {
		s.SharedMB = 1
	}
	if s.SharedFrac == 0 {
		s.SharedFrac = 0.1
	}
	return s
}

// CMPSeed derives core i's stream seed from the run seed. Core 0 keeps the
// run seed itself, so its private stream is the canonical single-core one;
// later cores decorrelate by a golden-ratio stride.
func CMPSeed(seed int64, core int) int64 {
	return seed + int64(core)*0x9e3779b9
}

// CoreTag is the address-space stripe tag of one core's private footprint.
// layout() produces blocks below 2^40; the stripe index rides in bits 44+
// and the shared region claims bit 43, so private stripes and the shared
// region can never alias. Core 0's tag is zero: its private blocks are
// exactly the single-core addresses.
func CoreTag(core int) mem.Block {
	return mem.Block(uint64(core) << 44)
}

// sharedRegionTag marks shared-region blocks (see CoreTag).
const sharedRegionTag = mem.Block(1) << 43

// sharedBlockOf lays out a shared-region dense id: the same chunk-scatter
// the private footprints get (tag diversity for the partial-tag designs),
// offset into the shared address space.
func sharedBlockOf(id uint64) mem.Block {
	return layout(id) | sharedRegionTag
}

// redirectSeedMix decorrelates the redirect-decision RNG from the inner
// stream's RNG, which is seeded from the same per-core seed.
const redirectSeedMix = 0x5851f42d4c957f2d

// Sharing pattern constants: migratory bursts are long enough for the
// ownership transfer (invalidate + writeback) to amortize over several
// reuses, as migratory data behaves; the read-mostly store fraction is
// small but nonzero so invalidations still occur.
const (
	migratoryBurst      = 64
	migratoryStoreFrac  = 0.5
	readMostlyStoreFrac = 0.02
)

// pattern is the parsed SharingSpec.Pattern.
type pattern uint8

const (
	patternPrivate pattern = iota
	patternProducerConsumer
	patternMigratory
	patternReadMostly
)

func parsePattern(name string) pattern {
	switch name {
	case "producer-consumer":
		return patternProducerConsumer
	case "migratory":
		return patternMigratory
	case "read-mostly":
		return patternReadMostly
	default:
		return patternPrivate
	}
}

// CMPStream is one core's instruction stream in an N-core CMP run: the
// benchmark Generator striped into the core's private address space, with
// an optional fraction of references redirected into a region shared by
// every core. It implements the full delivery protocol (cpu.Stream,
// cpu.BatchStream, cpu.MemStream); the redirect decisions draw from a
// dedicated RNG, one draw per memory operation in stream order, so the
// scalar, batched, and warm-mode paths stay bit-identical.
type CMPStream struct {
	g    *Generator
	rng  *prng
	core int
	tag  mem.Block

	pat          pattern
	redirectT    uint64 // f64Threshold(SharedFrac)
	storeT       uint64 // redirected-ref store threshold (migratory/read-mostly)
	producer     bool   // producer-consumer: this core writes
	sharedBlocks uint64
	shDiv        invDiv

	// Pattern phase state (captured by State).
	seq       uint64
	burstBase uint64
	burstLeft int

	counters struct {
		sharedRefs, sharedStores uint64
	}
}

// NewCMPStream builds core `core`'s stream for an N-core run of spec,
// seeded from the run seed (each core derives its own via CMPSeed). The
// SharingSpec must have been validated.
func NewCMPStream(spec Spec, seed int64, core int, sh SharingSpec) *CMPStream {
	sh = sh.Normalize()
	cs := &CMPStream{
		g:        New(spec, CMPSeed(seed, core)),
		rng:      newPRNG(CMPSeed(seed, core) ^ redirectSeedMix),
		core:     core,
		tag:      CoreTag(core),
		pat:      parsePattern(sh.Pattern),
		producer: core%2 == 0,
	}
	if cs.pat != patternPrivate {
		cs.redirectT = f64Threshold(sh.SharedFrac)
		cs.sharedBlocks = max64(uint64(sh.SharedMB*blocksPerMB), 1)
		cs.shDiv = newInvDiv(cs.sharedBlocks)
		switch cs.pat {
		case patternMigratory:
			cs.storeT = f64Threshold(migratoryStoreFrac)
		case patternReadMostly:
			cs.storeT = f64Threshold(readMostlyStoreFrac)
		}
	}
	return cs
}

// Generator exposes the inner striped generator (tests and reporting).
func (cs *CMPStream) Generator() *Generator { return cs.g }

// mapRef maps one inner memory reference into the CMP address space: with
// probability SharedFrac it becomes a shared-region reference shaped by
// the pattern, otherwise the core's private-stripe tag is applied. Exactly
// one redirect draw per memory operation, in stream order.
func (cs *CMPStream) mapRef(b mem.Block, isStore bool) (mem.Block, bool) {
	if cs.pat != patternPrivate && cs.rng.Uint64()>>11 < cs.redirectT {
		return cs.sharedRef()
	}
	return b | cs.tag, isStore
}

// sharedRef draws the next shared-region reference for the pattern.
func (cs *CMPStream) sharedRef() (mem.Block, bool) {
	var id uint64
	var isStore bool
	switch cs.pat {
	case patternProducerConsumer:
		// Sequential walk over the shared region: producers (even cores)
		// write it, consumers read it — the classic one-way flow whose
		// stores invalidate every consumer copy.
		cs.seq++
		if cs.seq >= cs.sharedBlocks {
			cs.seq = 0
		}
		id, isStore = cs.seq, cs.producer
	case patternMigratory:
		// Read-modify-write bursts over a random window: ownership of the
		// touched blocks migrates to the bursting core, ping-ponging M
		// copies between cores.
		if cs.burstLeft <= 0 {
			cs.burstBase = cs.shDiv.mod(cs.rng.Uint64())
			cs.burstLeft = migratoryBurst
		}
		id = cs.burstBase + uint64(migratoryBurst-cs.burstLeft)
		if id >= cs.sharedBlocks {
			id -= cs.sharedBlocks
		}
		cs.burstLeft--
		isStore = cs.rng.Uint64()>>11 < cs.storeT
	default: // read-mostly
		id = cs.shDiv.mod(cs.rng.Uint64())
		isStore = cs.rng.Uint64()>>11 < cs.storeT
	}
	cs.counters.sharedRefs++
	if isStore {
		cs.counters.sharedStores++
	}
	return sharedBlockOf(id), isStore
}

// Next implements cpu.Stream.
func (cs *CMPStream) Next() cpu.Instr {
	in := cs.g.Next()
	if in.IsMem {
		in.Block, in.IsStore = cs.mapRef(in.Block, in.IsStore)
	}
	return in
}

// NextBatch implements cpu.BatchStream: the inner generator fills the
// batch, then each memory operation is mapped in order — the identical
// draw sequence Next produces.
func (cs *CMPStream) NextBatch(buf []cpu.Instr) int {
	n := cs.g.NextBatch(buf)
	for i := range buf[:n] {
		if buf[i].IsMem {
			buf[i].Block, buf[i].IsStore = cs.mapRef(buf[i].Block, buf[i].IsStore)
		}
	}
	return n
}

// NextMems implements cpu.MemStream, keeping the warm fast path for CMP
// streams: the inner fused kernel materializes the memory operations, then
// each is mapped in order (one redirect draw per ref, as in Next).
func (cs *CMPStream) NextMems(buf []cpu.MemRef, maxInstr uint64) (n int, consumed uint64) {
	n, consumed = cs.g.NextMems(buf, maxInstr)
	for i := range buf[:n] {
		buf[i].Block, buf[i].Store = cs.mapRef(buf[i].Block, buf[i].Store)
	}
	return n, consumed
}

// CMPState is a CMPStream's complete stream position: the inner
// generator's state plus the redirect RNG and pattern phase. Fields are
// exported for gob encoding by the on-disk checkpoint store.
type CMPState struct {
	Gen       State
	RNG       [4]uint64
	Seq       uint64
	BurstBase uint64
	BurstLeft int
}

// State captures the stream position.
func (cs *CMPStream) State() CMPState {
	return CMPState{
		Gen:       cs.g.State(),
		RNG:       cs.rng.state(),
		Seq:       cs.seq,
		BurstBase: cs.burstBase,
		BurstLeft: cs.burstLeft,
	}
}

// SetState restores a position captured by State on a stream built with
// the same spec, core, and sharing parameters.
func (cs *CMPStream) SetState(st CMPState) {
	cs.g.SetState(st.Gen)
	cs.rng.setState(st.RNG)
	cs.seq = st.Seq
	cs.burstBase = st.BurstBase
	cs.burstLeft = st.BurstLeft
}

// Reseed reseeds the inner stream and the redirect RNG from the base run
// seed (per-core derivation as at construction), keeping the phase
// variables — the CMP counterpart of Generator.Reseed for seed sweeps.
func (cs *CMPStream) Reseed(seed int64) {
	cs.g.Reseed(CMPSeed(seed, cs.core))
	cs.rng.reseed(CMPSeed(seed, cs.core) ^ redirectSeedMix)
}

// ResetCounters zeroes the observation counters (inner and shared).
func (cs *CMPStream) ResetCounters() {
	cs.g.ResetCounters()
	cs.counters = struct{ sharedRefs, sharedStores uint64 }{}
}

// RegisterMetricsPrefixed publishes the stream's counters under
// prefix+"workload.": the inner generator's set plus the shared-region
// tallies. Note the inner mem_ops/stores counters describe the
// pre-redirect stream (the redirect replaces a reference's target and
// store flag after the inner draw); shared_refs/shared_stores count the
// redirected subset.
func (cs *CMPStream) RegisterMetricsPrefixed(r *metrics.Registry, prefix string) {
	cs.g.RegisterMetricsPrefixed(r, prefix)
	r.CounterFunc(prefix+"workload.shared_refs", func() uint64 { return cs.counters.sharedRefs })
	r.CounterFunc(prefix+"workload.shared_stores", func() uint64 { return cs.counters.sharedStores })
}

// RegisterMetricsSum publishes summed stream counters over all cores under
// the plain "workload." names, alongside the per-core prefixed sets.
func RegisterMetricsSum(r *metrics.Registry, streams []*CMPStream) {
	sum := func(read func(*CMPStream) uint64) func() uint64 {
		return func() uint64 {
			var n uint64
			for _, cs := range streams {
				n += read(cs)
			}
			return n
		}
	}
	r.CounterFunc("workload.mem_ops", sum(func(cs *CMPStream) uint64 { return cs.g.counters.memOps }))
	r.CounterFunc("workload.stores", sum(func(cs *CMPStream) uint64 { return cs.g.counters.stores }))
	r.CounterFunc("workload.mispredicts", sum(func(cs *CMPStream) uint64 { return cs.g.counters.mispredicts }))
	r.CounterFunc("workload.l1_refs", sum(func(cs *CMPStream) uint64 { return cs.g.counters.l1Refs }))
	r.CounterFunc("workload.hot_refs", sum(func(cs *CMPStream) uint64 { return cs.g.counters.hotRefs }))
	r.CounterFunc("workload.stream_refs", sum(func(cs *CMPStream) uint64 { return cs.g.counters.streamRefs }))
	r.CounterFunc("workload.recent_refs", sum(func(cs *CMPStream) uint64 { return cs.g.counters.recentRefs }))
	r.CounterFunc("workload.cold_refs", sum(func(cs *CMPStream) uint64 { return cs.g.counters.coldRefs }))
	r.CounterFunc("workload.shared_refs", sum(func(cs *CMPStream) uint64 { return cs.counters.sharedRefs }))
	r.CounterFunc("workload.shared_stores", sum(func(cs *CMPStream) uint64 { return cs.counters.sharedStores }))
}

// PreWarm installs the core's striped footprint functionally, exactly as
// Generator.PreWarm does for the single-core stream but with the private
// stripe tag applied to every block. The shared region is not pre-warmed:
// it is established by the trace warm-up, like any recency state.
func (cs *CMPStream) PreWarm(c l2.Cache) {
	cs.g.PreWarm(&tagL2{inner: c, tag: cs.tag})
}

// tagL2 is the warm-path shim that applies a stripe tag to every install.
// It forwards bulk installs through the inner design's Warmer when one is
// available, preserving the batched delivery protocol.
type tagL2 struct {
	inner l2.Cache
	tag   mem.Block
	buf   []mem.Block
}

func (t *tagL2) Warm(b mem.Block)          { t.inner.Warm(b | t.tag) }
func (t *tagL2) Contains(b mem.Block) bool { return t.inner.Contains(b | t.tag) }

func (t *tagL2) Access(at sim.Time, req mem.Request) l2.Outcome {
	req.Block |= t.tag
	return t.inner.Access(at, req)
}

// WarmBulk implements l2.Warmer: tag into a reusable buffer, then forward.
func (t *tagL2) WarmBulk(blocks []mem.Block) {
	if cap(t.buf) < len(blocks) {
		t.buf = make([]mem.Block, len(blocks))
	}
	t.buf = t.buf[:len(blocks)]
	for i, b := range blocks {
		t.buf[i] = b | t.tag
	}
	l2.WarmAll(t.inner, t.buf)
}
