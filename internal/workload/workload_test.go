package workload

import (
	"math"
	"testing"
	"testing/quick"

	"tlc/internal/l2"
	"tlc/internal/mem"
	"tlc/internal/sim"
)

func TestTwelveBenchmarks(t *testing.T) {
	specs := Specs()
	if len(specs) != 12 {
		t.Fatalf("%d specs, want the paper's 12 benchmarks", len(specs))
	}
	want := []string{"bzip", "gcc", "mcf", "perl", "equake", "swim", "applu", "lucas",
		"apache", "zeus", "sjbb", "oltp"}
	for i, name := range want {
		if specs[i].Name != name {
			t.Fatalf("spec %d is %q, want %q (Table 6 order)", i, specs[i].Name, name)
		}
	}
	if names := Names(); len(names) != 12 || names[0] != "bzip" {
		t.Fatal("Names() disagrees with Specs()")
	}
}

func TestSpecByName(t *testing.T) {
	s, ok := SpecByName("mcf")
	if !ok || s.Name != "mcf" {
		t.Fatal("SpecByName(mcf) failed")
	}
	if _, ok := SpecByName("doom"); ok {
		t.Fatal("unknown benchmark resolved")
	}
}

func TestSpecFractionsSane(t *testing.T) {
	for _, s := range Specs() {
		sum := s.L1Frac + s.HotFrac + s.StreamFrac + s.RecentFrac
		if sum > 1 {
			t.Errorf("%s: region fractions sum to %.3f > 1", s.Name, sum)
		}
		if s.MemFrac <= 0 || s.MemFrac > 0.5 {
			t.Errorf("%s: memory-op density %.2f implausible", s.Name, s.MemFrac)
		}
		if s.StoreFrac < 0 || s.StoreFrac > 0.5 {
			t.Errorf("%s: store fraction %.2f implausible", s.Name, s.StoreFrac)
		}
		if s.L1MB+s.HotMB >= s.FootprintMB {
			t.Errorf("%s: regions exceed footprint", s.Name)
		}
	}
}

func TestDeterministicStreams(t *testing.T) {
	spec, _ := SpecByName("gcc")
	a := New(spec, 7)
	b := New(spec, 7)
	for i := 0; i < 10000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	c := New(spec, 8)
	same := true
	a2 := New(spec, 7)
	for i := 0; i < 10000; i++ {
		if a2.Next() != c.Next() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestMemoryOpDensity(t *testing.T) {
	spec, _ := SpecByName("gcc") // MemFrac 0.35
	g := New(spec, 1)
	memOps := 0
	const n = 200000
	for i := 0; i < n; i++ {
		if g.Next().IsMem {
			memOps++
		}
	}
	got := float64(memOps) / n
	if math.Abs(got-spec.MemFrac) > 0.01 {
		t.Fatalf("memory-op density %.3f, want %.3f", got, spec.MemFrac)
	}
}

func TestStoreFraction(t *testing.T) {
	spec, _ := SpecByName("gcc")
	g := New(spec, 1)
	stores, memOps := 0, 0
	for i := 0; i < 300000; i++ {
		in := g.Next()
		if in.IsMem {
			memOps++
			if in.IsStore {
				stores++
			}
		}
	}
	got := float64(stores) / float64(memOps)
	if math.Abs(got-spec.StoreFrac) > 0.02 {
		t.Fatalf("store fraction %.3f, want %.3f", got, spec.StoreFrac)
	}
}

func TestStreamSpatialLocality(t *testing.T) {
	// A pure streaming spec touches each block StreamRepeat times in a
	// row before moving on: exactly the word-granularity reuse an L1
	// absorbs.
	spec := Spec{Name: "s", FootprintMB: 64, StreamFrac: 1, MemFrac: 1, StreamRepeat: 8}
	g := New(spec, 1)
	prev := g.Next().Block
	repeats, advances := 0, 0
	for i := 0; i < 8000; i++ {
		b := g.Next().Block
		if b == prev {
			repeats++
		} else {
			advances++
		}
		prev = b
	}
	ratio := float64(repeats) / float64(advances)
	if ratio < 6.5 || ratio > 8.5 {
		t.Fatalf("stream repeat ratio %.1f, want ~7 (8 refs per block)", ratio)
	}
}

func TestStreamAdvancesSequentiallyWithinChunks(t *testing.T) {
	spec := Spec{Name: "s", FootprintMB: 64, StreamFrac: 1, MemFrac: 1, StreamRepeat: 1}
	g := New(spec, 1)
	prev := g.Next().Block
	sequential := 0
	const n = 4000
	for i := 0; i < n; i++ {
		b := g.Next().Block
		if b == prev+1 {
			sequential++
		}
		prev = b
	}
	// All but one-in-4096 (chunk boundary) steps are +1.
	if sequential < n*99/100 {
		t.Fatalf("only %d/%d stream steps sequential", sequential, n)
	}
}

func TestLayoutInjectiveAndChunked(t *testing.T) {
	seen := map[mem.Block]uint64{}
	for id := uint64(0); id < 1<<16; id++ {
		b := layout(id)
		if prev, dup := seen[b]; dup {
			t.Fatalf("layout collision: ids %d and %d both map to %v", prev, id, b)
		}
		seen[b] = id
		// Within-chunk contiguity: ids in the same 4K-block chunk stay
		// adjacent.
		if id%4096 != 0 {
			if b != layout(id-1)+1 {
				t.Fatalf("id %d not adjacent to predecessor within chunk", id)
			}
		}
	}
}

func TestLayoutScattersChunks(t *testing.T) {
	// Chunk numbers must not remain consecutive: tags need diversity.
	a := uint64(layout(0)) >> 12
	b := uint64(layout(4096)) >> 12
	c := uint64(layout(8192)) >> 12
	if b == a+1 || c == b+1 {
		t.Fatal("layout left chunks consecutive")
	}
}

func TestDependentLoadFraction(t *testing.T) {
	spec, _ := SpecByName("mcf") // DepFrac 0.75
	g := New(spec, 1)
	deps, loads := 0, 0
	for i := 0; i < 300000; i++ {
		in := g.Next()
		if in.IsMem && !in.IsStore {
			loads++
			if in.Dep {
				deps++
			}
		}
	}
	got := float64(deps) / float64(loads)
	if math.Abs(got-spec.DepFrac) > 0.02 {
		t.Fatalf("dependent-load fraction %.3f, want %.3f", got, spec.DepFrac)
	}
}

func TestMispredictRate(t *testing.T) {
	spec, _ := SpecByName("gcc")
	g := New(spec, 1)
	mispredicts := 0
	const n = 500000
	for i := 0; i < n; i++ {
		if g.Next().Mispredict {
			mispredicts++
		}
	}
	// Default: one per 250 non-memory instructions.
	expected := float64(n) * (1 - spec.MemFrac) / 250
	if float64(mispredicts) < expected*0.7 || float64(mispredicts) > expected*1.3 {
		t.Fatalf("%d mispredicts, want ~%.0f", mispredicts, expected)
	}
}

// fakeCache records Warm calls for pre-warm verification.
type fakeCache struct {
	warmed map[mem.Block]bool
}

func (f *fakeCache) Access(at sim.Time, req mem.Request) l2.Outcome { return l2.Outcome{} }
func (f *fakeCache) Warm(b mem.Block)                               { f.warmed[b] = true }
func (f *fakeCache) Contains(b mem.Block) bool                      { return f.warmed[b] }

func TestPreWarmCoversHotRegions(t *testing.T) {
	spec, _ := SpecByName("gcc")
	g := New(spec, 1)
	f := &fakeCache{warmed: map[mem.Block]bool{}}
	g.PreWarm(f)
	// Every hot and L1 block must be pre-warmed; sample the generator to
	// confirm hot references land on warmed blocks.
	gen := New(spec, 2)
	misses := 0
	for i := 0; i < 100000; i++ {
		in := gen.Next()
		if in.IsMem && !f.warmed[in.Block] {
			misses++
		}
	}
	// gcc's footprint fits the cache entirely: everything is warm.
	if misses != 0 {
		t.Fatalf("%d references to unwarmed blocks for an in-cache footprint", misses)
	}
}

func TestPreWarmBoundedByCapacity(t *testing.T) {
	spec, _ := SpecByName("swim") // 192 MB footprint
	g := New(spec, 1)
	f := &fakeCache{warmed: map[mem.Block]bool{}}
	g.PreWarm(f)
	if len(f.warmed) > l2CapacityBlocks {
		t.Fatalf("pre-warm installed %d blocks, beyond the 16 MB capacity %d",
			len(f.warmed), l2CapacityBlocks)
	}
	// Three quarters of the remaining capacity plus the hot regions: the
	// deliberate per-set slack (see PreWarm).
	if len(f.warmed) < l2CapacityBlocks*7/10 {
		t.Fatalf("pre-warm installed only %d blocks for a huge footprint", len(f.warmed))
	}
}

func TestAutoWarmInstructions(t *testing.T) {
	gcc, _ := SpecByName("gcc")
	bzip, _ := SpecByName("bzip")
	if gcc.AutoWarmInstructions() < 4_000_000 {
		t.Fatal("auto warm below the floor")
	}
	if bzip.AutoWarmInstructions() <= gcc.AutoWarmInstructions() {
		t.Fatal("bzip's sparse hot set needs a longer warm than gcc's dense one")
	}
	if bzip.AutoWarmInstructions() > 24_000_000 {
		t.Fatal("auto warm above the cap")
	}
}

func TestBadSpecsPanic(t *testing.T) {
	for _, spec := range []Spec{
		{Name: "nofootprint"},
		{Name: "overflow", FootprintMB: 1, HotMB: 2},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("spec %q did not panic", spec.Name)
				}
			}()
			New(spec, 1)
		}()
	}
}

// Property: every generated address falls inside the laid-out footprint
// image, and the generator never emits a store marked dependent.
func TestQuickGeneratorWellFormed(t *testing.T) {
	spec, _ := SpecByName("apache")
	f := func(seed int64) bool {
		g := New(spec, seed)
		valid := map[mem.Block]bool{}
		for id := uint64(0); id < g.TotalBlocks(); id++ {
			valid[layout(id)] = true
		}
		for i := 0; i < 5000; i++ {
			in := g.Next()
			if !in.IsMem {
				continue
			}
			if in.IsStore && in.Dep {
				return false
			}
			if !valid[in.Block] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
