package workload

import (
	"reflect"
	"testing"

	"tlc/internal/cpu"
	"tlc/internal/mem"
)

// TestSharingSpecValidate pins the validation errors the CLIs surface.
func TestSharingSpecValidate(t *testing.T) {
	cases := []struct {
		spec SharingSpec
		ok   bool
	}{
		{SharingSpec{}, true},
		{SharingSpec{Pattern: "private"}, true},
		{SharingSpec{Pattern: "producer-consumer", SharedMB: 2, SharedFrac: 0.3}, true},
		{SharingSpec{Pattern: "migratory"}, true},
		{SharingSpec{Pattern: "read-mostly"}, true},
		{SharingSpec{Pattern: "false-sharing"}, false},
		{SharingSpec{Pattern: "migratory", SharedMB: -1}, false},
		{SharingSpec{Pattern: "migratory", SharedFrac: 1.5}, false},
		{SharingSpec{Pattern: "migratory", SharedFrac: -0.1}, false},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.spec, err, c.ok)
		}
	}
	for _, p := range SharingPatterns() {
		if err := (SharingSpec{Pattern: p}).Validate(); err != nil {
			t.Errorf("listed pattern %q fails validation: %v", p, err)
		}
	}
}

// TestSharingSpecNormalize pins the default resolution that makes
// equal-behaviour specs hash equally in configuration keys.
func TestSharingSpecNormalize(t *testing.T) {
	if got := (SharingSpec{}).Normalize(); got != (SharingSpec{Pattern: "private"}) {
		t.Fatalf("zero spec normalized to %+v", got)
	}
	if got := (SharingSpec{Pattern: "private", SharedMB: 4, SharedFrac: 0.5}).Normalize(); got != (SharingSpec{Pattern: "private"}) {
		t.Fatalf("private kept unused knobs: %+v", got)
	}
	want := SharingSpec{Pattern: "migratory", SharedMB: 1, SharedFrac: 0.1}
	if got := (SharingSpec{Pattern: "migratory"}).Normalize(); got != want {
		t.Fatalf("migratory defaults = %+v, want %+v", got, want)
	}
}

// TestCMPSeedCoreZero: core 0 runs under the run seed itself — the anchor
// of the N=1 bit-identity guarantee.
func TestCMPSeedCoreZero(t *testing.T) {
	for _, s := range []int64{0, 1, 42, -7} {
		if CMPSeed(s, 0) != s {
			t.Fatalf("CMPSeed(%d, 0) = %d", s, CMPSeed(s, 0))
		}
	}
	if CMPSeed(1, 1) == CMPSeed(1, 2) {
		t.Fatal("core seeds collide")
	}
}

// TestCMPStreamCore0PrivateMatchesGenerator pins the bit-identity anchor:
// core 0 under the private pattern emits exactly the single-core
// Generator's stream (tag 0, no redirects).
func TestCMPStreamCore0PrivateMatchesGenerator(t *testing.T) {
	spec, _ := SpecByName("gcc")
	cs := NewCMPStream(spec, 42, 0, SharingSpec{})
	g := New(spec, 42)
	for i := 0; i < 200_000; i++ {
		if got, want := cs.Next(), g.Next(); got != want {
			t.Fatalf("instr %d: CMP core 0 %+v != generator %+v", i, got, want)
		}
	}
	if !reflect.DeepEqual(cs.Generator().State(), g.State()) {
		t.Fatal("stream states diverged")
	}
}

// drainMems collects total instructions' worth of memory operations from a
// CMPStream via the given delivery mode.
func drainMems(t *testing.T, cs *CMPStream, mode string, total uint64) []cpu.MemRef {
	t.Helper()
	var out []cpu.MemRef
	switch mode {
	case "scalar":
		for i := uint64(0); i < total; i++ {
			in := cs.Next()
			if in.IsMem {
				out = append(out, cpu.MemRef{Block: in.Block, Store: in.IsStore})
			}
		}
	case "batch":
		buf := make([]cpu.Instr, 173) // deliberately unaligned batch size
		var done uint64
		for done < total {
			want := total - done
			if want > uint64(len(buf)) {
				want = uint64(len(buf))
			}
			n := cs.NextBatch(buf[:want])
			for _, in := range buf[:n] {
				if in.IsMem {
					out = append(out, cpu.MemRef{Block: in.Block, Store: in.IsStore})
				}
			}
			done += uint64(n)
		}
	case "mems":
		buf := make([]cpu.MemRef, 211)
		var done uint64
		for done < total {
			n, consumed := cs.NextMems(buf, total-done)
			out = append(out, buf[:n]...)
			done += consumed
			if consumed == 0 {
				t.Fatal("NextMems made no progress")
			}
		}
	default:
		t.Fatalf("unknown mode %q", mode)
	}
	return out
}

// TestCMPStreamDeliveryEquivalence pins the delivery protocol for every
// sharing pattern: scalar, batched, and warm-mode mem delivery produce the
// identical memory-reference sequence and identical final stream state —
// the property that keeps batched warm-up and checkpoints interchangeable
// with scalar execution in CMP runs.
func TestCMPStreamDeliveryEquivalence(t *testing.T) {
	spec, _ := SpecByName("gcc")
	const total = 120_000
	for _, p := range SharingPatterns() {
		sh := SharingSpec{Pattern: p, SharedMB: 0.5, SharedFrac: 0.2}
		for _, core := range []int{0, 1, 3} {
			ref := drainMems(t, NewCMPStream(spec, 9, core, sh), "scalar", total)
			for _, mode := range []string{"batch", "mems"} {
				cs := NewCMPStream(spec, 9, core, sh)
				got := drainMems(t, cs, mode, total)
				if len(got) != len(ref) {
					t.Fatalf("%s/%s core %d: %d mem ops, scalar %d", p, mode, core, len(got), len(ref))
				}
				for i := range got {
					if got[i] != ref[i] {
						t.Fatalf("%s/%s core %d: mem op %d = %+v, scalar %+v", p, mode, core, i, got[i], ref[i])
					}
				}
				want := NewCMPStream(spec, 9, core, sh)
				drainMems(t, want, "scalar", total)
				if !reflect.DeepEqual(cs.State(), want.State()) {
					t.Fatalf("%s/%s core %d: final state diverged from scalar", p, mode, core)
				}
			}
		}
	}
}

// TestCMPStreamStateRoundTrip pins checkpoint resume: a stream restored
// mid-run continues bit-identically to one that never stopped.
func TestCMPStreamStateRoundTrip(t *testing.T) {
	spec, _ := SpecByName("mcf")
	for _, p := range SharingPatterns() {
		sh := SharingSpec{Pattern: p}
		ref := NewCMPStream(spec, 5, 2, sh)
		drainMems(t, ref, "scalar", 50_000)
		st := ref.State()
		want := drainMems(t, ref, "scalar", 50_000)

		resumed := NewCMPStream(spec, 5, 2, sh)
		resumed.SetState(st)
		got := drainMems(t, resumed, "scalar", 50_000)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: resumed continuation diverged", p)
		}
		if !reflect.DeepEqual(resumed.State(), ref.State()) {
			t.Fatalf("%s: final states differ after resume", p)
		}
	}
}

// TestCMPStreamStriping checks the address-space isolation contract: a
// core's private references carry its stripe tag, shared-region references
// carry the shared tag, and the two can never alias.
func TestCMPStreamStriping(t *testing.T) {
	spec, _ := SpecByName("gcc")
	sh := SharingSpec{Pattern: "read-mostly", SharedFrac: 0.3}
	const core = 3
	cs := NewCMPStream(spec, 11, core, sh)
	tag := CoreTag(core)
	var private, shared int
	for _, r := range drainMems(t, cs, "scalar", 100_000) {
		switch {
		case r.Block&sharedRegionTag != 0:
			shared++
			if r.Block&tag != 0 {
				t.Fatalf("shared block %#x carries a private stripe tag", r.Block)
			}
		case r.Block&^((mem.Block(1)<<44)-1) == tag:
			private++
		default:
			t.Fatalf("block %#x in neither core %d's stripe nor the shared region", r.Block, core)
		}
	}
	if private == 0 || shared == 0 {
		t.Fatalf("expected both private and shared traffic, got %d/%d", private, shared)
	}
	if got := float64(shared) / float64(private+shared); got < 0.2 || got > 0.4 {
		t.Fatalf("shared fraction %.3f far from configured 0.3", got)
	}
}

// TestCMPStreamProducerConsumerRoles: producers (even cores) store to the
// shared region, consumers (odd cores) only load from it.
func TestCMPStreamProducerConsumerRoles(t *testing.T) {
	spec, _ := SpecByName("gcc")
	sh := SharingSpec{Pattern: "producer-consumer", SharedFrac: 0.2}
	for core := 0; core < 2; core++ {
		cs := NewCMPStream(spec, 3, core, sh)
		var sharedStores, sharedLoads int
		for _, r := range drainMems(t, cs, "scalar", 100_000) {
			if r.Block&sharedRegionTag == 0 {
				continue
			}
			if r.Store {
				sharedStores++
			} else {
				sharedLoads++
			}
		}
		if core%2 == 0 && (sharedStores == 0 || sharedLoads != 0) {
			t.Fatalf("producer core %d: %d shared stores, %d shared loads", core, sharedStores, sharedLoads)
		}
		if core%2 == 1 && (sharedLoads == 0 || sharedStores != 0) {
			t.Fatalf("consumer core %d: %d shared stores, %d shared loads", core, sharedStores, sharedLoads)
		}
	}
}
