package calibrate

import (
	"math"
	"strings"
	"testing"
)

// TestCommittedArtifactParses pins the embedded CALIBRATION.json: it must
// parse, cover the full benchmark grid, and produce bounds. Default()'s
// nil-on-corrupt escape hatch must never fire on the committed file.
func TestCommittedArtifactParses(t *testing.T) {
	a := Default()
	if a == nil {
		t.Fatal("committed CALIBRATION.json failed to parse")
	}
	if a.Format != Format {
		t.Errorf("format %d, want %d", a.Format, Format)
	}
	if a.Version < 1 {
		t.Errorf("version %d, want >= 1", a.Version)
	}
	if len(a.Benchmarks) == 0 {
		t.Fatal("no benchmarks in committed artifact")
	}
	if a.Scale.WarmInstructions == 0 || a.Scale.RunInstructions == 0 || a.Scale.Designs == 0 {
		t.Errorf("degenerate scale %+v", a.Scale)
	}
	for _, b := range a.Benchmarks {
		if b.Cells != a.Scale.Designs {
			t.Errorf("%s: %d cells, want %d", b.Benchmark, b.Cells, a.Scale.Designs)
		}
		bound, ok := a.Bound(b.Benchmark)
		if !ok {
			t.Fatalf("%s: no bound", b.Benchmark)
		}
		if bound.CalibrationVersion != a.Version {
			t.Errorf("%s: bound version %d, want %d", b.Benchmark, bound.CalibrationVersion, a.Version)
		}
		if bound.CyclesLoPct > b.Cycles.MinPct || bound.CyclesHiPct < b.Cycles.MaxPct {
			t.Errorf("%s: bound [%f, %f] does not cover observed [%f, %f]",
				b.Benchmark, bound.CyclesLoPct, bound.CyclesHiPct, b.Cycles.MinPct, b.Cycles.MaxPct)
		}
	}
}

func TestFitWeightsAndExtremes(t *testing.T) {
	// Two cells, fast 10% high on the heavy one, exact on the light one:
	// the cycle-weighted bias sits much closer to the heavy cell.
	cells := []Cell{
		{Design: "A", Benchmark: "x", FullCycles: 900_000, FastCycles: 990_000, FullIPC: 1.0, FastIPC: 0.9},
		{Design: "B", Benchmark: "x", FullCycles: 100_000, FastCycles: 100_000, FullIPC: 2.0, FastIPC: 2.0},
	}
	a := Fit(cells, Scale{WarmInstructions: 1, RunInstructions: 1, Designs: 2}, 3)
	if a.Version != 3 || a.Format != Format {
		t.Fatalf("stamped version/format wrong: %+v", a)
	}
	b, ok := a.Bench("x")
	if !ok || b.Cells != 2 {
		t.Fatalf("bench x: %+v ok=%v", b, ok)
	}
	if want := 9.0; math.Abs(b.Cycles.BiasPct-want) > 1e-9 {
		t.Errorf("weighted cycle bias %f, want %f", b.Cycles.BiasPct, want)
	}
	if b.Cycles.MinPct != 0 || b.Cycles.MaxPct != 10 {
		t.Errorf("cycle extremes [%f, %f], want [0, 10]", b.Cycles.MinPct, b.Cycles.MaxPct)
	}
	bound, _ := a.Bound("x")
	// The interval must cover both the observed extremes and bias±2σ.
	if bound.CyclesLoPct > 0 || bound.CyclesHiPct < 10 {
		t.Errorf("bound [%f, %f] does not cover observed extremes", bound.CyclesLoPct, bound.CyclesHiPct)
	}
	if lo := b.Cycles.BiasPct - 2*b.Cycles.SpreadPct; bound.CyclesLoPct > lo {
		t.Errorf("bound lo %f does not cover bias-2sigma %f", bound.CyclesLoPct, lo)
	}
}

func TestCompareFlagsDrift(t *testing.T) {
	cells := []Cell{{Design: "A", Benchmark: "x", FullCycles: 100, FastCycles: 110, FullIPC: 1, FastIPC: 0.9}}
	scale := Scale{WarmInstructions: 1, RunInstructions: 1, Designs: 1}
	committed := Fit(cells, scale, 1)

	if bad := Compare(committed, Fit(cells, scale, 1), 0.25); len(bad) != 0 {
		t.Fatalf("identical rebuild flagged: %v", bad)
	}

	drifted := Fit([]Cell{{Design: "A", Benchmark: "x", FullCycles: 100, FastCycles: 111, FullIPC: 1, FastIPC: 0.9}}, scale, 1)
	bad := Compare(committed, drifted, 0.25)
	if len(bad) == 0 {
		t.Fatal("1pp cycle-bias drift not flagged at 0.25pp tolerance")
	}
	if !strings.Contains(bad[0], "cycles bias drifted") {
		t.Errorf("unexpected drift message %q", bad[0])
	}

	other := Fit(cells, Scale{WarmInstructions: 2, RunInstructions: 1, Designs: 1}, 1)
	if bad := Compare(committed, other, 0.25); len(bad) != 1 || !strings.Contains(bad[0], "scale mismatch") {
		t.Errorf("scale mismatch not flagged first: %v", bad)
	}

	extra := Fit([]Cell{
		{Design: "A", Benchmark: "x", FullCycles: 100, FastCycles: 110, FullIPC: 1, FastIPC: 0.9},
		{Design: "A", Benchmark: "y", FullCycles: 100, FastCycles: 100, FullIPC: 1, FastIPC: 1},
	}, scale, 1)
	if bad := Compare(committed, extra, 0.25); len(bad) != 1 || !strings.Contains(bad[0], "not committed") {
		t.Errorf("extra benchmark not flagged: %v", bad)
	}
	if bad := Compare(extra, committed, 0.25); len(bad) != 1 || !strings.Contains(bad[0], "missing") {
		t.Errorf("missing benchmark not flagged: %v", bad)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	a := Fit([]Cell{{Design: "A", Benchmark: "x", FullCycles: 100, FastCycles: 90, FullIPC: 1, FastIPC: 1.1}},
		Scale{WarmInstructions: 5, RunInstructions: 7, Seed: 3, Designs: 1}, 2)
	buf, err := a.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if buf[len(buf)-1] != '\n' {
		t.Error("marshal output lacks trailing newline")
	}
	got, err := parse(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 2 || got.Scale != a.Scale || len(got.Benchmarks) != 1 {
		t.Errorf("round trip lost data: %+v", got)
	}

	if _, err := parse([]byte(`{"format": 99}`)); err == nil {
		t.Error("parse accepted unknown format")
	}
}
