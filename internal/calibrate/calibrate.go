// Package calibrate is the fast-tier error contract: it fits per-benchmark
// error statistics (bias + spread on cycles and IPC) of the fast core tier
// against the full tier, serializes them as the committed, versioned
// CALIBRATION.json artifact, and turns the artifact into the ErrorBound
// values fast-tier results carry. The artifact is CI-gated like the
// coverage floor: scripts/calibration_check.sh rebuilds it from scratch and
// fails on drift beyond the committed tolerance, so a fast-core change that
// silently worsens error cannot land without refreshing the contract.
package calibrate

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"

	"tlc/internal/stats"
)

// Format versions the artifact schema. Load rejects other formats, so a
// schema change invalidates stale artifacts instead of misreading them.
const Format = 1

// Artifact is the committed calibration: one error summary per benchmark,
// fitted at a recorded scale. Version counts deliberate regenerations
// (bump it when committing a refit) — it is stamped into every ErrorBound
// so a served error bar names the contract it came from.
type Artifact struct {
	Format     int          `json:"format"`
	Version    int          `json:"version"`
	Scale      Scale        `json:"scale"`
	Benchmarks []BenchError `json:"benchmarks"`
}

// Scale records the run shape both tiers executed during the fit. The
// bounds only provably cover runs of this shape; other scales inherit them
// as estimates.
type Scale struct {
	WarmInstructions uint64 `json:"warm_instructions"`
	RunInstructions  uint64 `json:"run_instructions"`
	Seed             int64  `json:"seed"`
	Designs          int    `json:"designs"`
}

// BenchError is one benchmark's fitted error: weighted moments across its
// design cells, for cycles and IPC.
type BenchError struct {
	Benchmark string     `json:"benchmark"`
	Cells     int        `json:"cells"`
	Cycles    ErrorStats `json:"cycles"`
	IPC       ErrorStats `json:"ipc"`
}

// ErrorStats summarizes one metric's fast-vs-full relative error in
// percent: the cycle-weighted mean (bias), the weighted standard deviation
// (spread), and the observed per-cell extremes across the fitted designs.
type ErrorStats struct {
	BiasPct   float64 `json:"bias_pct"`
	SpreadPct float64 `json:"spread_pct"`
	MinPct    float64 `json:"min_pct"`
	MaxPct    float64 `json:"max_pct"`
}

// Cell is one (design, benchmark) measurement pair feeding the fit.
type Cell struct {
	Design     string
	Benchmark  string
	FullCycles uint64
	FastCycles uint64
	FullIPC    float64
	FastIPC    float64
}

// Bound is the error envelope attached to one fast-tier result: the
// benchmark's fitted bias and a [lo, hi] interval covering both the
// bias ± 2·spread band and the observed extremes. Interpreting a fast
// result: the full tier's cycles lie near fast/(1 + bias/100), with the
// interval giving the calibrated uncertainty.
type Bound struct {
	Benchmark          string  `json:"benchmark"`
	CyclesBiasPct      float64 `json:"cycles_bias_pct"`
	CyclesLoPct        float64 `json:"cycles_lo_pct"`
	CyclesHiPct        float64 `json:"cycles_hi_pct"`
	IPCBiasPct         float64 `json:"ipc_bias_pct"`
	IPCLoPct           float64 `json:"ipc_lo_pct"`
	IPCHiPct           float64 `json:"ipc_hi_pct"`
	CalibrationVersion int     `json:"calibration_version"`
}

// errPct is the relative error of fast against full, in percent.
func errPct(fast, full float64) float64 {
	if full == 0 {
		return 0
	}
	return 100 * (fast - full) / full
}

// Fit computes the per-benchmark error artifact from measured cells. Each
// cell is weighted by its full-tier cycle count (stats.Weighted moments),
// so big-footprint designs dominate the bias the way they dominate real
// sweeps. Benchmarks sort by name for a stable committed serialization.
func Fit(cells []Cell, scale Scale, version int) *Artifact {
	type acc struct {
		cyc, ipc       stats.Weighted
		cycMin, cycMax float64
		ipcMin, ipcMax float64
		n              int
	}
	byBench := make(map[string]*acc)
	for _, c := range cells {
		a := byBench[c.Benchmark]
		if a == nil {
			a = &acc{}
			byBench[c.Benchmark] = a
		}
		w := float64(c.FullCycles)
		ce := errPct(float64(c.FastCycles), float64(c.FullCycles))
		ie := errPct(c.FastIPC, c.FullIPC)
		a.cyc.Observe(ce, w)
		a.ipc.Observe(ie, w)
		if a.n == 0 {
			a.cycMin, a.cycMax = ce, ce
			a.ipcMin, a.ipcMax = ie, ie
		} else {
			a.cycMin = min(a.cycMin, ce)
			a.cycMax = max(a.cycMax, ce)
			a.ipcMin = min(a.ipcMin, ie)
			a.ipcMax = max(a.ipcMax, ie)
		}
		a.n++
	}
	art := &Artifact{Format: Format, Version: version, Scale: scale}
	for name, a := range byBench {
		art.Benchmarks = append(art.Benchmarks, BenchError{
			Benchmark: name,
			Cells:     a.n,
			Cycles: ErrorStats{
				BiasPct:   a.cyc.Mean(),
				SpreadPct: a.cyc.StdDev(),
				MinPct:    a.cycMin,
				MaxPct:    a.cycMax,
			},
			IPC: ErrorStats{
				BiasPct:   a.ipc.Mean(),
				SpreadPct: a.ipc.StdDev(),
				MinPct:    a.ipcMin,
				MaxPct:    a.ipcMax,
			},
		})
	}
	sort.Slice(art.Benchmarks, func(i, j int) bool {
		return art.Benchmarks[i].Benchmark < art.Benchmarks[j].Benchmark
	})
	return art
}

// Bench returns the named benchmark's fitted error, if present.
func (a *Artifact) Bench(name string) (BenchError, bool) {
	for _, b := range a.Benchmarks {
		if b.Benchmark == name {
			return b, true
		}
	}
	return BenchError{}, false
}

// Bound derives the served error envelope for one benchmark: the interval
// is the union of bias ± 2·spread and the observed extremes, so it covers
// both the fitted distribution and every cell the fit actually saw.
func (a *Artifact) Bound(bench string) (Bound, bool) {
	b, ok := a.Bench(bench)
	if !ok {
		return Bound{}, false
	}
	return Bound{
		Benchmark:          bench,
		CyclesBiasPct:      b.Cycles.BiasPct,
		CyclesLoPct:        min(b.Cycles.MinPct, b.Cycles.BiasPct-2*b.Cycles.SpreadPct),
		CyclesHiPct:        max(b.Cycles.MaxPct, b.Cycles.BiasPct+2*b.Cycles.SpreadPct),
		IPCBiasPct:         b.IPC.BiasPct,
		IPCLoPct:           min(b.IPC.MinPct, b.IPC.BiasPct-2*b.IPC.SpreadPct),
		IPCHiPct:           max(b.IPC.MaxPct, b.IPC.BiasPct+2*b.IPC.SpreadPct),
		CalibrationVersion: a.Version,
	}, true
}

// Compare diffs a rebuilt artifact against the committed one with a
// per-benchmark drift tolerance in percentage points, returning one
// human-readable line per violation (empty means within tolerance). It
// checks bias and spread on both metrics, plus benchmark-set and scale
// identity — a rebuild at a different scale is a configuration error, not
// drift.
func Compare(committed, rebuilt *Artifact, tolPct float64) []string {
	var bad []string
	if committed.Scale != rebuilt.Scale {
		bad = append(bad, fmt.Sprintf("scale mismatch: committed %+v vs rebuilt %+v", committed.Scale, rebuilt.Scale))
		return bad
	}
	seen := make(map[string]bool)
	for _, cb := range committed.Benchmarks {
		seen[cb.Benchmark] = true
		rb, ok := rebuilt.Bench(cb.Benchmark)
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: missing from rebuilt artifact", cb.Benchmark))
			continue
		}
		check := func(metric, field string, old, new float64) {
			if d := new - old; d > tolPct || d < -tolPct {
				bad = append(bad, fmt.Sprintf("%s: %s %s drifted %+.3fpp (committed %+.3f%%, rebuilt %+.3f%%, tol %.3fpp)",
					cb.Benchmark, metric, field, d, old, new, tolPct))
			}
		}
		check("cycles", "bias", cb.Cycles.BiasPct, rb.Cycles.BiasPct)
		check("cycles", "spread", cb.Cycles.SpreadPct, rb.Cycles.SpreadPct)
		check("ipc", "bias", cb.IPC.BiasPct, rb.IPC.BiasPct)
		check("ipc", "spread", cb.IPC.SpreadPct, rb.IPC.SpreadPct)
	}
	for _, rb := range rebuilt.Benchmarks {
		if !seen[rb.Benchmark] {
			bad = append(bad, fmt.Sprintf("%s: present in rebuilt artifact but not committed", rb.Benchmark))
		}
	}
	return bad
}

// Marshal serializes the artifact in its committed form: indented, stable
// field and benchmark order, trailing newline.
func (a *Artifact) Marshal() ([]byte, error) {
	buf, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// Load reads and validates an artifact file.
func Load(path string) (*Artifact, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return parse(buf)
}

func parse(buf []byte) (*Artifact, error) {
	var a Artifact
	if err := json.Unmarshal(buf, &a); err != nil {
		return nil, fmt.Errorf("calibrate: %w", err)
	}
	if a.Format != Format {
		return nil, fmt.Errorf("calibrate: artifact format %d, want %d", a.Format, Format)
	}
	return &a, nil
}

// calibration is the committed artifact, compiled into every binary so
// fast-tier error bounds need no runtime file lookup. Regenerate with
// cmd/tlccal (see EXPERIMENTS.md).
//
//go:embed CALIBRATION.json
var calibration []byte

var (
	defaultOnce sync.Once
	defaultArt  *Artifact
)

// Default returns the committed artifact compiled into the binary, or nil
// if it fails to parse (only possible if the committed file is corrupt —
// TestCommittedArtifactParses pins this non-nil).
func Default() *Artifact {
	defaultOnce.Do(func() {
		a, err := parse(calibration)
		if err != nil {
			return
		}
		defaultArt = a
	})
	return defaultArt
}

// DefaultBound is Bound against the committed artifact; ok is false when
// the artifact is unavailable or the benchmark was never calibrated.
func DefaultBound(bench string) (Bound, bool) {
	a := Default()
	if a == nil {
		return Bound{}, false
	}
	return a.Bound(bench)
}
