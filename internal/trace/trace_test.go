package trace

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"tlc/internal/cpu"
	"tlc/internal/mem"
	"tlc/internal/workload"
)

// tempTrace writes instrs to a temp file and returns its path.
func tempTrace(t *testing.T, instrs []cpu.Instr) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range instrs {
		w.Add(in)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func readTrace(t *testing.T, path string) *Reader {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRoundTrip(t *testing.T) {
	instrs := []cpu.Instr{
		{},
		{IsMem: true, Block: 100},
		{IsMem: true, IsStore: true, Block: 50},
		{Dep: true},
		{Mispredict: true},
		{IsMem: true, Dep: true, Block: 1 << 30},
	}
	r := readTrace(t, tempTrace(t, instrs))
	if r.Len() != len(instrs) {
		t.Fatalf("trace length %d, want %d", r.Len(), len(instrs))
	}
	for i, want := range instrs {
		if got := r.Next(); got != want {
			t.Fatalf("record %d: %+v, want %+v", i, got, want)
		}
	}
}

func TestReplayWrapsAround(t *testing.T) {
	r := readTrace(t, tempTrace(t, []cpu.Instr{{IsMem: true, Block: 1}, {IsMem: true, Block: 2}}))
	seq := []mem.Block{r.Next().Block, r.Next().Block, r.Next().Block, r.Next().Block}
	want := []mem.Block{1, 2, 1, 2}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("wrapped replay %v, want %v", seq, want)
		}
	}
	r.Rewind()
	if r.Next().Block != 1 {
		t.Fatal("rewind did not restart")
	}
}

func TestCaptureFromWorkload(t *testing.T) {
	spec, _ := workload.SpecByName("gcc")
	gen := workload.New(spec, 1)
	path := filepath.Join(t.TempDir(), "gcc.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Capture(f, gen, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if n != 50_000 {
		t.Fatalf("captured %d, want 50000", n)
	}
	// The replayed trace must reproduce the generator exactly.
	r := readTrace(t, path)
	gen2 := workload.New(spec, 1)
	for i := 0; i < 50_000; i++ {
		if r.Next() != gen2.Next() {
			t.Fatalf("replay diverged at %d", i)
		}
	}
}

func TestCompactness(t *testing.T) {
	// A streaming trace should encode near one byte per record plus two
	// per memory op (flags + small delta).
	spec := workload.Spec{Name: "s", FootprintMB: 64, StreamFrac: 1, MemFrac: 0.5}
	gen := workload.New(spec, 1)
	path := filepath.Join(t.TempDir(), "s.trace")
	f, _ := os.Create(path)
	Capture(f, gen, 100_000)
	f.Close()
	fi, _ := os.Stat(path)
	perRecord := float64(fi.Size()) / 100_000
	if perRecord > 2.5 {
		t.Fatalf("%.2f bytes/record, want < 2.5 for a streaming trace", perRecord)
	}
}

func TestSummarize(t *testing.T) {
	r := readTrace(t, tempTrace(t, []cpu.Instr{
		{IsMem: true, Block: 1},
		{IsMem: true, Block: 1},
		{IsMem: true, IsStore: true, Block: 2},
		{IsMem: true, Dep: true, Block: 3},
		{Mispredict: true},
		{},
	}))
	s := r.Summarize()
	if s.Instructions != 6 || s.MemOps != 4 || s.Stores != 1 || s.DepLoads != 1 ||
		s.Mispredicts != 1 || s.UniqueBlocks != 3 {
		t.Fatalf("summary %+v wrong", s)
	}
}

func TestMalformedTraces(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("XXXX\x00\x00\x00\x00\x00\x00\x00\x00"),
		"truncated": append([]byte("TLC1"), 5, 0, 0, 0, 0, 0, 0, 0),
		"zero":      append([]byte("TLC1"), 0, 0, 0, 0, 0, 0, 0, 0),
	}
	for name, data := range cases {
		if _, err := NewReader(bytes.NewReader(data)); err == nil {
			t.Errorf("%s trace accepted", name)
		}
	}
}

func TestUnknownFlagsRejected(t *testing.T) {
	data := append([]byte("TLC1"), 1, 0, 0, 0, 0, 0, 0, 0, 0x80)
	if _, err := NewReader(bytes.NewReader(data)); err == nil {
		t.Error("unknown flag bits accepted")
	}
}

// Property: arbitrary instruction sequences survive a round trip.
func TestQuickRoundTrip(t *testing.T) {
	f := func(raw []uint32, flags []uint8) bool {
		n := len(raw)
		if len(flags) < n {
			n = len(flags)
		}
		if n == 0 {
			return true
		}
		instrs := make([]cpu.Instr, n)
		for i := 0; i < n; i++ {
			instrs[i] = cpu.Instr{
				IsMem:      flags[i]&1 != 0,
				IsStore:    flags[i]&2 != 0,
				Dep:        flags[i]&4 != 0,
				Mispredict: flags[i]&8 != 0,
			}
			if instrs[i].IsMem {
				instrs[i].Block = mem.Block(raw[i])
			}
		}
		var buf seekBuffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		for _, in := range instrs {
			w.Add(in)
		}
		if w.Close() != nil {
			return false
		}
		r, err := NewReader(bytes.NewReader(buf.data))
		if err != nil {
			return false
		}
		for _, want := range instrs {
			if r.Next() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// seekBuffer is an in-memory io.WriteSeeker.
type seekBuffer struct {
	data []byte
	pos  int
}

func (b *seekBuffer) Write(p []byte) (int, error) {
	if need := b.pos + len(p); need > len(b.data) {
		b.data = append(b.data, make([]byte, need-len(b.data))...)
	}
	copy(b.data[b.pos:], p)
	b.pos += len(p)
	return len(p), nil
}

func (b *seekBuffer) Seek(offset int64, whence int) (int64, error) {
	switch whence {
	case io.SeekStart:
		b.pos = int(offset)
	case io.SeekCurrent:
		b.pos += int(offset)
	case io.SeekEnd:
		b.pos = len(b.data) + int(offset)
	}
	return int64(b.pos), nil
}
