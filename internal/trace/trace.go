// Package trace records and replays instruction traces in a compact
// binary format, so experiments can run from captured traces instead of
// live generators: the usual workflow for comparing many designs against
// byte-identical input, or for importing reference streams produced by an
// external tool.
//
// Format (little-endian):
//
//	magic   [4]byte  "TLC1"
//	count   uint64   number of records
//	records          one per instruction, variable length:
//	  flags byte     bit0 IsMem, bit1 IsStore, bit2 Dep, bit3 Mispredict
//	  block uvarint  present only when IsMem: delta-encoded block id
//	                 (zigzag delta from the previous memory block)
//
// Delta encoding keeps streaming workloads near one byte per memory
// reference.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"tlc/internal/cpu"
	"tlc/internal/mem"
)

var magic = [4]byte{'T', 'L', 'C', '1'}

const (
	flagMem byte = 1 << iota
	flagStore
	flagDep
	flagMispredict
)

// Writer streams instructions to an io.Writer.
type Writer struct {
	w     *bufio.Writer
	count uint64
	prev  uint64
	// countPos unsupported on plain writers: the count is written by
	// Close into a seekable writer, or via the two-pass Record helper.
	seeker io.WriteSeeker
	err    error
}

// NewWriter starts a trace on a seekable writer (a file): the record
// count is patched into the header on Close.
func NewWriter(w io.WriteSeeker) (*Writer, error) {
	tw := &Writer{w: bufio.NewWriter(w), seeker: w}
	if _, err := tw.w.Write(magic[:]); err != nil {
		return nil, err
	}
	var zero [8]byte
	if _, err := tw.w.Write(zero[:]); err != nil {
		return nil, err
	}
	return tw, nil
}

// Add appends one instruction.
func (t *Writer) Add(in cpu.Instr) {
	if t.err != nil {
		return
	}
	var flags byte
	if in.IsMem {
		flags |= flagMem
	}
	if in.IsStore {
		flags |= flagStore
	}
	if in.Dep {
		flags |= flagDep
	}
	if in.Mispredict {
		flags |= flagMispredict
	}
	if err := t.w.WriteByte(flags); err != nil {
		t.err = err
		return
	}
	if in.IsMem {
		delta := int64(uint64(in.Block)) - int64(t.prev)
		var buf [binary.MaxVarintLen64]byte
		n := binary.PutVarint(buf[:], delta)
		if _, err := t.w.Write(buf[:n]); err != nil {
			t.err = err
			return
		}
		t.prev = uint64(in.Block)
	}
	t.count++
}

// Count reports the number of instructions recorded so far.
func (t *Writer) Count() uint64 { return t.count }

// Close flushes the records and patches the count into the header.
func (t *Writer) Close() error {
	if t.err != nil {
		return t.err
	}
	if err := t.w.Flush(); err != nil {
		return err
	}
	if _, err := t.seeker.Seek(4, io.SeekStart); err != nil {
		return err
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], t.count)
	if _, err := t.seeker.Write(buf[:]); err != nil {
		return err
	}
	_, err := t.seeker.Seek(0, io.SeekEnd)
	return err
}

// Capture records n instructions from a stream into w and returns the
// count written.
func Capture(w io.WriteSeeker, s cpu.Stream, n uint64) (uint64, error) {
	tw, err := NewWriter(w)
	if err != nil {
		return 0, err
	}
	for i := uint64(0); i < n; i++ {
		tw.Add(s.Next())
	}
	if err := tw.Close(); err != nil {
		return 0, err
	}
	return tw.Count(), nil
}

// Reader replays a recorded trace as a cpu.Stream. Reaching the end of
// the trace wraps around to the beginning, so a short captured loop can
// drive an arbitrarily long run (warm-up plus timing).
type Reader struct {
	records []cpu.Instr
	pos     int
}

// ErrBadTrace reports a malformed trace file.
var ErrBadTrace = errors.New("trace: malformed trace")

// NewReader loads a full trace into memory.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrBadTrace, err)
	}
	if [4]byte(hdr[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadTrace)
	}
	count := binary.LittleEndian.Uint64(hdr[4:])
	records := make([]cpu.Instr, 0, count)
	var prev uint64
	for i := uint64(0); i < count; i++ {
		flags, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: truncated at record %d", ErrBadTrace, i)
		}
		in := cpu.Instr{
			IsMem:      flags&flagMem != 0,
			IsStore:    flags&flagStore != 0,
			Dep:        flags&flagDep != 0,
			Mispredict: flags&flagMispredict != 0,
		}
		if flags&^(flagMem|flagStore|flagDep|flagMispredict) != 0 {
			return nil, fmt.Errorf("%w: unknown flags %#x at record %d", ErrBadTrace, flags, i)
		}
		if in.IsMem {
			delta, err := binary.ReadVarint(br)
			if err != nil {
				return nil, fmt.Errorf("%w: truncated block at record %d", ErrBadTrace, i)
			}
			prev = uint64(int64(prev) + delta)
			in.Block = mem.Block(prev)
		}
		records = append(records, in)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("%w: empty trace", ErrBadTrace)
	}
	return &Reader{records: records}, nil
}

// Len reports the number of records in the trace.
func (r *Reader) Len() int { return len(r.records) }

// Next implements cpu.Stream, wrapping at the end of the trace.
func (r *Reader) Next() cpu.Instr {
	in := r.records[r.pos]
	r.pos++
	if r.pos == len(r.records) {
		r.pos = 0
	}
	return in
}

// NextBatch implements cpu.BatchStream: copy runs of records into buf,
// wrapping at the trace end, so batched delivery is a memcpy instead of one
// interface call per instruction.
func (r *Reader) NextBatch(buf []cpu.Instr) int {
	for filled := 0; filled < len(buf); {
		n := copy(buf[filled:], r.records[r.pos:])
		filled += n
		r.pos += n
		if r.pos == len(r.records) {
			r.pos = 0
		}
	}
	return len(buf)
}

// NextMems implements cpu.MemStream: scan up to maxInstr records, skipping
// non-memory instructions and materializing memory operations into buf. The
// replay position after the call is exactly where the same instructions
// delivered through Next would have left it.
func (r *Reader) NextMems(buf []cpu.MemRef, maxInstr uint64) (n int, consumed uint64) {
	for consumed < maxInstr && n < len(buf) {
		in := r.records[r.pos]
		r.pos++
		if r.pos == len(r.records) {
			r.pos = 0
		}
		consumed++
		if !in.IsMem {
			continue
		}
		buf[n] = cpu.MemRef{Block: in.Block, Store: in.IsStore}
		n++
	}
	return n, consumed
}

// Rewind restarts replay from the first record.
func (r *Reader) Rewind() { r.pos = 0 }

// Stats summarizes a trace for sanity checks and tooling.
type Stats struct {
	Instructions uint64
	MemOps       uint64
	Stores       uint64
	DepLoads     uint64
	Mispredicts  uint64
	UniqueBlocks int
}

// Summarize scans a reader's records.
func (r *Reader) Summarize() Stats {
	s := Stats{Instructions: uint64(len(r.records))}
	blocks := make(map[mem.Block]struct{})
	for _, in := range r.records {
		if in.Mispredict {
			s.Mispredicts++
		}
		if !in.IsMem {
			continue
		}
		s.MemOps++
		if in.IsStore {
			s.Stores++
		} else if in.Dep {
			s.DepLoads++
		}
		blocks[in.Block] = struct{}{}
	}
	s.UniqueBlocks = len(blocks)
	return s
}
