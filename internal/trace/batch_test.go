package trace

import (
	"bytes"
	"io"
	"testing"

	"tlc/internal/cpu"
	"tlc/internal/workload"
)

// writeSeeker adapts a bytes.Buffer for the trace writer's header patch.
type writeSeeker struct {
	buf []byte
	pos int
}

func (w *writeSeeker) Write(p []byte) (int, error) {
	if n := w.pos + len(p); n > len(w.buf) {
		w.buf = append(w.buf, make([]byte, n-len(w.buf))...)
	}
	copy(w.buf[w.pos:], p)
	w.pos += len(p)
	return len(p), nil
}

func (w *writeSeeker) Seek(off int64, whence int) (int64, error) {
	switch whence {
	case io.SeekStart:
		w.pos = int(off)
	case io.SeekCurrent:
		w.pos += int(off)
	case io.SeekEnd:
		w.pos = len(w.buf) + int(off)
	}
	return int64(w.pos), nil
}

// captureTestTrace records a short generator prefix (odd length, so batch
// reads exercise wrap-around mid-buffer).
func captureTestTrace(t *testing.T) *Reader {
	t.Helper()
	spec, ok := workload.SpecByName("gcc")
	if !ok {
		t.Fatal("unknown benchmark gcc")
	}
	var ws writeSeeker
	if _, err := Capture(&ws, workload.New(spec, 5), 10_007); err != nil {
		t.Fatalf("capture: %v", err)
	}
	r, err := NewReader(bytes.NewReader(ws.buf))
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	return r
}

// TestReaderNextBatchMatchesNext pins batched replay bit-identical to scalar
// replay, including wrap-around inside a batch.
func TestReaderNextBatchMatchesNext(t *testing.T) {
	scalar := captureTestTrace(t)
	batched := captureTestTrace(t)
	buf := make([]cpu.Instr, 4096)
	sizes := []int{1, 3, 64, 1000, 4096}
	for round := 0; round < 30; round++ {
		n := sizes[round%len(sizes)]
		if got := batched.NextBatch(buf[:n]); got != n {
			t.Fatalf("NextBatch(%d) = %d", n, got)
		}
		for i := 0; i < n; i++ {
			if want := scalar.Next(); buf[i] != want {
				t.Fatalf("round %d instr %d: batched %+v != scalar %+v", round, i, buf[i], want)
			}
		}
	}
	if scalar.pos != batched.pos {
		t.Fatalf("replay position diverged: scalar %d batched %d", scalar.pos, batched.pos)
	}
}

// TestReaderNextMemsMatchesNext pins the reader's warm fast path: the
// materialized memory operations match the scalar stream's IsMem records in
// order, and the replay position after each call is identical.
func TestReaderNextMemsMatchesNext(t *testing.T) {
	scalar := captureTestTrace(t)
	fast := captureTestTrace(t)
	buf := make([]cpu.MemRef, 129)
	var consumedTotal uint64
	const total = 60_000 // several trace wraps
	for consumedTotal < total {
		n, consumed := fast.NextMems(buf, total-consumedTotal)
		if consumed == 0 {
			t.Fatal("NextMems made no progress")
		}
		consumedTotal += consumed
		got := 0
		for i := uint64(0); i < consumed; i++ {
			in := scalar.Next()
			if !in.IsMem {
				continue
			}
			if buf[got].Block != in.Block || buf[got].Store != in.IsStore {
				t.Fatalf("mem op %d: fast {%d %v} != scalar {%d %v}",
					got, buf[got].Block, buf[got].Store, in.Block, in.IsStore)
			}
			got++
		}
		if got != n {
			t.Fatalf("NextMems reported %d mem ops, scalar span has %d", n, got)
		}
		if scalar.pos != fast.pos {
			t.Fatalf("replay position diverged after %d instructions", consumedTotal)
		}
	}
}
