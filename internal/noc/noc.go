// Package noc models the 2-D switched mesh the NUCA designs use to reach
// their banks (Figure 1): a horizontal spine along the cache controller
// edge plus one vertical link chain per bank column, built from
// conventional repeated RC wires with a switch at every bank.
//
// Messages are routed wormhole-style: the head flit pays one segment
// latency per hop, and every segment on the path is occupied for the
// message's full flit count, which is where DNUCA's link contention —
// search traffic, migration swaps, and insertion fills — comes from.
package noc

import (
	"fmt"

	"tlc/internal/metrics"
	"tlc/internal/probe"
	"tlc/internal/sim"
)

// Dir distinguishes the two unidirectional link sets.
type Dir int

const (
	// ToBank is the request direction, controller to bank.
	ToBank Dir = iota
	// ToController is the response direction, bank to controller.
	ToController
)

// Config describes one mesh floorplan.
type Config struct {
	// Cols and Rows give the bank grid. The controller sits below the
	// grid at the horizontal center.
	Cols, Rows int
	// ColDist[c] is the number of spine segments between the controller
	// and column c's injection point (0 = adjacent).
	ColDist []int
	// SpineSegLat is the latency of one spine segment, cycles.
	SpineSegLat sim.Time
	// VertReqLat[r] / VertRespLat[r] are the per-segment latencies of the
	// vertical hop from row r-1 to row r in each direction. Splitting the
	// directions lets a floorplan with non-integer per-hop delay (SNUCA2's
	// 1.5-cycle bank pitch) keep integer cycles per direction while the
	// round trip sums exactly.
	VertReqLat, VertRespLat []sim.Time
	// IngressLat is charged once on the request path for controller
	// injection.
	IngressLat sim.Time
	// FlitBytes is the link width: a message of N bytes occupies each
	// segment for ceil(N/FlitBytes) cycles (+1 header flit).
	FlitBytes int
	// SpineSegMM and VertSegMM are the physical segment lengths, used by
	// the energy accounting.
	SpineSegMM, VertSegMM float64
}

func (c Config) validate() {
	if c.Cols <= 0 || c.Rows <= 0 || len(c.ColDist) != c.Cols {
		panic(fmt.Sprintf("noc: bad grid %dx%d with %d column distances", c.Cols, c.Rows, len(c.ColDist)))
	}
	if len(c.VertReqLat) != c.Rows || len(c.VertRespLat) != c.Rows {
		panic("noc: vertical latency tables must have one entry per row")
	}
	if c.FlitBytes <= 0 {
		panic("noc: flit width must be positive")
	}
}

// Mesh is the instantiated network with per-segment contention state.
type Mesh struct {
	cfg Config
	// spine[dir][side][seg] — side 0 = left of controller, 1 = right.
	spine [2][2][]sim.Resource
	// vert[dir][col][row]
	vert [2][][]sim.Resource

	// FlitSegments counts flit-segment traversals, split by segment kind,
	// for the dynamic power roll-up.
	SpineFlitSegs, VertFlitSegs uint64
	// HeaderFlits counts routed messages (one header each).
	Messages uint64

	hooks *probe.Hooks
}

// New builds a mesh for the given floorplan.
func New(cfg Config) *Mesh {
	cfg.validate()
	m := &Mesh{cfg: cfg}
	maxSpine := 0
	for _, d := range cfg.ColDist {
		if d > maxSpine {
			maxSpine = d
		}
	}
	for dir := 0; dir < 2; dir++ {
		for side := 0; side < 2; side++ {
			m.spine[dir][side] = make([]sim.Resource, maxSpine)
		}
		m.vert[dir] = make([][]sim.Resource, cfg.Cols)
		for c := 0; c < cfg.Cols; c++ {
			m.vert[dir][c] = make([]sim.Resource, cfg.Rows)
		}
	}
	return m
}

// Config returns the mesh floorplan.
func (m *Mesh) Config() Config { return m.cfg }

// RegisterMetrics publishes the mesh's traffic counters under "noc.".
func (m *Mesh) RegisterMetrics(r *metrics.Registry) {
	r.CounterFunc("noc.messages", func() uint64 { return m.Messages })
	r.CounterFunc("noc.spine.flits", func() uint64 { return m.SpineFlitSegs })
	r.CounterFunc("noc.vert.flits", func() uint64 { return m.VertFlitSegs })
	r.CounterFunc("noc.link_busy_cycles", func() uint64 { return uint64(m.TotalLinkBusyCycles()) })
}

// SetProbe installs (or clears, with nil) event hooks for routed messages.
func (m *Mesh) SetProbe(h *probe.Hooks) { m.hooks = h }

// side reports which spine side column c hangs off.
func (m *Mesh) side(c int) int {
	if c < m.cfg.Cols/2 {
		return 0
	}
	return 1
}

// flits reports the segment occupancy of a message: one header flit plus
// the payload at link width.
func (m *Mesh) flits(payloadBytes int) sim.Time {
	f := 1 + (payloadBytes+m.cfg.FlitBytes-1)/m.cfg.FlitBytes
	return sim.Time(f)
}

// UncontendedOneWay reports the request-path latency to bank (col,row) on
// an idle network: ingress + spine + vertical climb.
func (m *Mesh) UncontendedOneWay(col, row int) sim.Time {
	t := m.cfg.IngressLat + sim.Time(m.cfg.ColDist[col])*m.cfg.SpineSegLat
	for r := 1; r <= row; r++ {
		t += m.cfg.VertReqLat[r-1]
	}
	return t
}

// UncontendedRoundTrip reports request + response latency on an idle
// network.
func (m *Mesh) UncontendedRoundTrip(col, row int) sim.Time {
	t := m.UncontendedOneWay(col, row)
	t += sim.Time(m.cfg.ColDist[col]) * m.cfg.SpineSegLat
	for r := 1; r <= row; r++ {
		t += m.cfg.VertRespLat[r-1]
	}
	return t
}

// Route sends a message of payloadBytes to (dir==ToBank) or from
// (dir==ToController) bank (col,row), arriving/leaving at cycle `at`.
// It returns the head arrival time at the destination, with every segment
// along the path reserved for the message's flit count.
func (m *Mesh) Route(at sim.Time, col, row int, payloadBytes int, dir Dir) sim.Time {
	if col < 0 || col >= m.cfg.Cols || row < 0 || row >= m.cfg.Rows {
		panic(fmt.Sprintf("noc: bank (%d,%d) outside %dx%d grid", col, row, m.cfg.Cols, m.cfg.Rows))
	}
	fl := m.flits(payloadBytes)
	m.Messages++
	if h := m.hooks; h != nil && h.OnMessage != nil {
		kind := probe.Request
		if dir == ToController {
			kind = probe.Response
		}
		h.OnMessage(probe.MessageEvent{At: at, Kind: kind, Bytes: payloadBytes})
	}
	side := m.side(col)
	t := at
	if dir == ToBank {
		t += m.cfg.IngressLat
		for s := 0; s < m.cfg.ColDist[col]; s++ {
			start := m.spine[dir][side][s].Reserve(t, fl)
			t = start + m.cfg.SpineSegLat
			m.SpineFlitSegs += uint64(fl)
		}
		for r := 1; r <= row; r++ {
			start := m.vert[dir][col][r-1].Reserve(t, fl)
			t = start + m.cfg.VertReqLat[r-1]
			m.VertFlitSegs += uint64(fl)
		}
		return t
	}
	// Response direction: descend the column, then cross the spine inward.
	for r := row; r >= 1; r-- {
		start := m.vert[dir][col][r-1].Reserve(t, fl)
		t = start + m.cfg.VertRespLat[r-1]
		m.VertFlitSegs += uint64(fl)
	}
	for s := m.cfg.ColDist[col] - 1; s >= 0; s-- {
		start := m.spine[dir][side][s].Reserve(t, fl)
		t = start + m.cfg.SpineSegLat
		m.SpineFlitSegs += uint64(fl)
	}
	return t
}

// RouteBetween moves a message between two banks in the same column (the
// DNUCA migration swap path), reserving the vertical segments between them.
// It returns head arrival. Migration uses the request-direction links when
// moving away from the controller and response-direction links when moving
// closer.
func (m *Mesh) RouteBetween(at sim.Time, col, fromRow, toRow, payloadBytes int) sim.Time {
	if fromRow == toRow {
		return at
	}
	fl := m.flits(payloadBytes)
	m.Messages++
	if h := m.hooks; h != nil && h.OnMessage != nil {
		h.OnMessage(probe.MessageEvent{At: at, Kind: probe.Migration, Bytes: payloadBytes})
	}
	t := at
	if toRow > fromRow {
		for r := fromRow + 1; r <= toRow; r++ {
			start := m.vert[ToBank][col][r-1].Reserve(t, fl)
			t = start + m.cfg.VertReqLat[r-1]
			m.VertFlitSegs += uint64(fl)
		}
		return t
	}
	for r := fromRow; r > toRow; r-- {
		start := m.vert[ToController][col][r-1].Reserve(t, fl)
		t = start + m.cfg.VertRespLat[r-1]
		m.VertFlitSegs += uint64(fl)
	}
	return t
}

// TotalLinkBusyCycles sums occupancy over every segment, for utilization
// reporting.
func (m *Mesh) TotalLinkBusyCycles() sim.Time {
	var total sim.Time
	for dir := 0; dir < 2; dir++ {
		for side := 0; side < 2; side++ {
			for i := range m.spine[dir][side] {
				total += m.spine[dir][side][i].BusyCycles()
			}
		}
		for c := range m.vert[dir] {
			for r := range m.vert[dir][c] {
				total += m.vert[dir][c][r].BusyCycles()
			}
		}
	}
	return total
}

// SegmentCount reports the number of link segments in the mesh (both
// directions), for utilization denominators and the transistor roll-up.
func (m *Mesh) SegmentCount() int {
	n := 0
	for dir := 0; dir < 2; dir++ {
		for side := 0; side < 2; side++ {
			n += len(m.spine[dir][side])
		}
		for c := range m.vert[dir] {
			n += len(m.vert[dir][c])
		}
	}
	return n
}
