package noc

import (
	"fmt"

	"tlc/internal/metrics"
	"tlc/internal/sim"
)

// Ports models the per-core injection points a CMP's cores use to reach
// the shared L2 controller: each core owns a private link from its L1 miss
// queue to the controller edge. The link is a contended single-server
// resource (back-to-back misses from one core serialize at its port), and
// cores sit at increasing distances from the controller's center tap —
// core 0 adjacent, later cores one hop further per pair, mirroring the
// mesh's symmetric spine placement. Arbitration among cores happens above,
// at the controller (the shared-L2 frontier); Ports charges only each
// core's private path.
type Ports struct {
	occ sim.Time
	lat []sim.Time
	res []sim.Resource

	// Injections counts requests injected across all ports.
	Injections uint64
}

// Port latencies: one cycle of port occupancy per injected request header,
// one cycle per hop of controller-edge distance. These are fixed physical
// constants of the floorplan, like the mesh segment latencies.
const (
	portOccupancy = sim.Time(1)
	portHop       = sim.Time(1)
)

// NewPorts builds the injection ports for an N-core CMP.
func NewPorts(cores int) *Ports {
	if cores <= 0 {
		panic(fmt.Sprintf("noc: %d cores", cores))
	}
	p := &Ports{
		occ: portOccupancy,
		lat: make([]sim.Time, cores),
		res: make([]sim.Resource, cores),
	}
	for i := range p.lat {
		// Symmetric placement around the controller tap: cores 1,2 one hop
		// out, 3,4 two hops, ... Core 0 sits at the tap itself.
		p.lat[i] = portHop * sim.Time((i+1)/2)
	}
	return p
}

// Cores reports the number of ports.
func (p *Ports) Cores() int { return len(p.res) }

// Inject serializes core's request at its private port starting no earlier
// than `at` and returns when the request header reaches the controller
// edge. Calls for one core must be in non-decreasing time order (the
// resource calendar's monotone-time contract); different cores may
// interleave freely.
func (p *Ports) Inject(at sim.Time, core int) sim.Time {
	p.Injections++
	start := p.res[core].Reserve(at, p.occ)
	return start + p.occ + p.lat[core]
}

// Waits sums queued injections over all ports.
func (p *Ports) Waits() uint64 {
	var n uint64
	for i := range p.res {
		n += p.res[i].Waits()
	}
	return n
}

// WaitCycles sums queuing delay over all ports.
func (p *Ports) WaitCycles() sim.Time {
	var t sim.Time
	for i := range p.res {
		t += p.res[i].WaitCycles()
	}
	return t
}

// RegisterMetrics publishes the port counters under "noc.port.".
func (p *Ports) RegisterMetrics(r *metrics.Registry) {
	r.CounterFunc("noc.port.injections", func() uint64 { return p.Injections })
	r.CounterFunc("noc.port.waits", func() uint64 { return p.Waits() })
	r.CounterFunc("noc.port.wait_cycles", func() uint64 { return uint64(p.WaitCycles()) })
}
