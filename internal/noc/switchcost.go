package noc

import "tlc/internal/wire"

// SwitchCost models the circuit cost of one mesh switch: an Orion-style
// [39] wormhole router with per-port input buffers, a crossbar, and
// arbitration, at the mesh's link width. These feed the Table 8 transistor
// roll-up and the Table 9 per-flit switch energy.
type SwitchCost struct {
	Ports    int
	FlitBits int
	BufDepth int
}

// DefaultSwitch is the 5-port router (4 mesh directions + bank ejection)
// used by the NUCA designs, matching their 16-byte links.
func DefaultSwitch(flitBytes int) SwitchCost {
	return SwitchCost{Ports: 5, FlitBits: flitBytes * 8, BufDepth: 4}
}

// Transistors reports the per-switch transistor count: 6T per buffer cell
// (latch), 6T per crossbar crosspoint bit, plus arbiter/control overhead.
func (s SwitchCost) Transistors() int {
	buffers := s.Ports * s.BufDepth * s.FlitBits * 10 // flit buffer + valid/ctrl
	crossbar := s.Ports * s.Ports * s.FlitBits * 6
	arbiters := s.Ports * 600
	return buffers + crossbar + arbiters
}

// GateWidthLambda reports summed gate width per switch. Datapath devices
// are sized several times minimum to meet the single-cycle hop at 10 GHz.
func (s SwitchCost) GateWidthLambda() float64 {
	const avgDeviceWidthLambda = 30.0
	return float64(s.Transistors()) * avgDeviceWidthLambda
}

// EnergyPerFlitJ reports the switching energy of one flit traversing the
// router: buffer write+read plus crossbar traversal. A 128-bit flit through
// a 45 nm router costs a few hundred femtojoules.
func (s SwitchCost) EnergyPerFlitJ() float64 {
	const perBitJ = 2.5e-15
	return float64(s.FlitBits) * perBitJ
}

// LinkEnergyPerFlitJ reports the wire switching energy of one flit
// traversing a link segment of the given length, at a 0.25 data activity
// across the repeated RC wire.
func LinkEnergyPerFlitJ(flitBytes int, segMM float64) float64 {
	const activity = 0.25
	return activity * float64(flitBytes*8) * wire.EnergyPerTransitionJ(wire.Global45(), segMM)
}

// MeshTransistors rolls up the communication-network transistor demand of a
// mesh: one switch per bank plus the link repeaters, the DNUCA side of
// Table 8.
func MeshTransistors(m *Mesh, sc SwitchCost) (count int, gateWidthLambda float64) {
	banks := m.cfg.Cols * m.cfg.Rows
	count = banks * sc.Transistors()
	gateWidthLambda = float64(banks) * sc.GateWidthLambda()
	// One output driver/repeater per link segment and bit: mesh segments
	// span a single bank (under a millimeter), so the switch's output
	// stage is the only repeater each hop needs.
	segs := m.SegmentCount()
	rw := wire.Repeat(wire.Global45(), m.cfg.VertSegMM)
	bits := m.cfg.FlitBytes * 8
	count += segs * bits * 2
	gateWidthLambda += float64(segs*bits) * rw.RepeaterSize * 12
	return count, gateWidthLambda
}
