package noc

import (
	"testing"
	"testing/quick"

	"tlc/internal/sim"
)

// testConfig builds a small 4x4 mesh with unit latencies.
func testConfig() Config {
	return Config{
		Cols: 4, Rows: 4,
		ColDist:     []int{1, 0, 0, 1},
		SpineSegLat: 1,
		VertReqLat:  []sim.Time{1, 1, 1, 1},
		VertRespLat: []sim.Time{1, 1, 1, 1},
		IngressLat:  0,
		FlitBytes:   16,
		SpineSegMM:  1, VertSegMM: 1,
	}
}

func TestUncontendedLatencies(t *testing.T) {
	m := New(testConfig())
	if got := m.UncontendedOneWay(1, 0); got != 0 {
		t.Fatalf("closest bank one-way %d, want 0", got)
	}
	if got := m.UncontendedOneWay(0, 3); got != 4 {
		t.Fatalf("far bank one-way %d, want 4 (1 spine + 3 vertical)", got)
	}
	if got := m.UncontendedRoundTrip(0, 3); got != 8 {
		t.Fatalf("far bank round trip %d, want 8", got)
	}
}

func TestRouteMatchesUncontendedOnIdleMesh(t *testing.T) {
	for col := 0; col < 4; col++ {
		for row := 0; row < 4; row++ {
			m := New(testConfig()) // fresh mesh: no contention carry-over
			arrive := m.Route(100, col, row, 8, ToBank)
			want := sim.Time(100) + m.UncontendedOneWay(col, row)
			if arrive != want {
				t.Fatalf("bank (%d,%d) head arrives %d, want %d", col, row, arrive, want)
			}
			// Response on idle links completes the round trip.
			back := m.Route(arrive, col, row, 8, ToController)
			if back != 100+m.UncontendedRoundTrip(col, row) {
				t.Fatalf("bank (%d,%d) round trip mismatch", col, row)
			}
		}
	}
}

func TestContentionDelaysSecondMessage(t *testing.T) {
	m := New(testConfig())
	// Two large messages to the same far bank: the second queues behind
	// the first on every shared segment.
	first := m.Route(0, 0, 3, 64, ToBank)
	second := m.Route(0, 0, 3, 64, ToBank)
	if second <= first {
		t.Fatalf("second message (%d) not delayed behind first (%d)", second, first)
	}
	// 64B at 16B flits = 4+1 flits: the second head waits 5 cycles at the
	// first segment.
	if second != first+5 {
		t.Fatalf("second head arrives %d, want first+5=%d", second, first+5)
	}
}

func TestDisjointColumnsDoNotContend(t *testing.T) {
	m := New(testConfig())
	a := m.Route(0, 1, 3, 64, ToBank)
	b := m.Route(0, 2, 3, 64, ToBank)
	if a != b {
		t.Fatalf("independent columns interfered: %d vs %d", a, b)
	}
}

func TestOppositeSpineSidesDoNotContend(t *testing.T) {
	m := New(testConfig())
	a := m.Route(0, 0, 0, 64, ToBank) // left spine
	b := m.Route(0, 3, 0, 64, ToBank) // right spine
	if a != b {
		t.Fatalf("opposite spine sides interfered: %d vs %d", a, b)
	}
}

func TestDirectionsAreIndependent(t *testing.T) {
	m := New(testConfig())
	m.Route(0, 0, 3, 64, ToBank)
	// A response at the same time must not queue behind the request.
	resp := m.Route(0, 0, 3, 8, ToController)
	if resp != 0+m.UncontendedOneWay(0, 3) {
		t.Fatalf("response contended with request direction: %d", resp)
	}
}

func TestRouteBetween(t *testing.T) {
	m := New(testConfig())
	// Move between rows 3 and 1 in column 0: two vertical segments.
	if got := m.RouteBetween(10, 0, 3, 1, 8); got != 12 {
		t.Fatalf("downward (toward controller) migration arrives %d, want 12", got)
	}
	if got := m.RouteBetween(10, 0, 1, 3, 8); got != 12 {
		t.Fatalf("upward migration arrives %d, want 12", got)
	}
	if got := m.RouteBetween(10, 0, 2, 2, 8); got != 10 {
		t.Fatalf("no-op migration arrives %d, want 10", got)
	}
}

func TestBusyCyclesAccounting(t *testing.T) {
	m := New(testConfig())
	m.Route(0, 0, 3, 8, ToBank) // 2 flits over 1 spine + 3 vertical = 8 flit-segs
	if m.TotalLinkBusyCycles() != 8 {
		t.Fatalf("busy cycles %d, want 8", m.TotalLinkBusyCycles())
	}
	if m.SpineFlitSegs != 2 || m.VertFlitSegs != 6 {
		t.Fatalf("flit-segments %d/%d, want 2/6", m.SpineFlitSegs, m.VertFlitSegs)
	}
	if m.Messages != 1 {
		t.Fatalf("messages %d, want 1", m.Messages)
	}
}

func TestSegmentCount(t *testing.T) {
	m := New(testConfig())
	// Per direction: 2 sides x 1 spine segment + 4 cols x 4 rows vertical.
	want := 2 * (2*1 + 4*4)
	if got := m.SegmentCount(); got != want {
		t.Fatalf("segment count %d, want %d", got, want)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m := New(testConfig())
	defer func() {
		if recover() == nil {
			t.Error("routing to an out-of-range bank did not panic")
		}
	}()
	m.Route(0, 9, 0, 8, ToBank)
}

func TestConfigValidation(t *testing.T) {
	bad := testConfig()
	bad.ColDist = []int{1}
	defer func() {
		if recover() == nil {
			t.Error("bad column distance table did not panic")
		}
	}()
	New(bad)
}

// Property: routed head arrival is never earlier than the uncontended
// latency, and repeating the same route never gets faster (monotone
// contention).
func TestQuickRouteNeverBeatsUncontended(t *testing.T) {
	f := func(seed int64, cols, rows []uint8) bool {
		m := New(testConfig())
		n := len(cols)
		if len(rows) < n {
			n = len(rows)
		}
		var at sim.Time
		prev := map[[2]int]sim.Time{}
		for i := 0; i < n && i < 30; i++ {
			col := int(cols[i]) % 4
			row := int(rows[i]) % 4
			arrive := m.Route(at, col, row, 32, ToBank)
			if arrive < at+m.UncontendedOneWay(col, row) {
				return false
			}
			key := [2]int{col, row}
			if p, ok := prev[key]; ok && arrive < p {
				return false
			}
			prev[key] = arrive
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSwitchCost(t *testing.T) {
	sc := DefaultSwitch(16)
	if sc.Transistors() < 10000 {
		t.Fatalf("switch transistors %d implausibly low", sc.Transistors())
	}
	if sc.GateWidthLambda() <= 0 || sc.EnergyPerFlitJ() <= 0 {
		t.Fatal("switch cost must be positive")
	}
	// Wider links cost more.
	if DefaultSwitch(32).Transistors() <= sc.Transistors() {
		t.Fatal("wider flits should need more transistors")
	}
}

func TestMeshTransistorsScale(t *testing.T) {
	small := New(testConfig())
	bigCfg := testConfig()
	bigCfg.Cols, bigCfg.Rows = 8, 8
	bigCfg.ColDist = []int{3, 2, 1, 0, 0, 1, 2, 3}
	bigCfg.VertReqLat = make([]sim.Time, 8)
	bigCfg.VertRespLat = make([]sim.Time, 8)
	for i := range bigCfg.VertReqLat {
		bigCfg.VertReqLat[i], bigCfg.VertRespLat[i] = 1, 1
	}
	big := New(bigCfg)
	sc := DefaultSwitch(16)
	cs, ws := MeshTransistors(small, sc)
	cb, wb := MeshTransistors(big, sc)
	if cb <= cs || wb <= ws {
		t.Fatal("a larger mesh should need more transistors and gate width")
	}
}

func TestLinkEnergyScalesWithLengthAndWidth(t *testing.T) {
	if LinkEnergyPerFlitJ(16, 2) <= LinkEnergyPerFlitJ(16, 1) {
		t.Fatal("longer segments should cost more energy")
	}
	if LinkEnergyPerFlitJ(32, 1) <= LinkEnergyPerFlitJ(16, 1) {
		t.Fatal("wider flits should cost more energy")
	}
}
