package api

import (
	"encoding/json"
	"testing"

	"tlc"
)

func TestRunOptionsDefaults(t *testing.T) {
	opt := RunOptions{}.Options()
	def := tlc.DefaultOptions()
	if opt.RunInstructions != def.RunInstructions || opt.Seed != def.Seed {
		t.Fatalf("zero RunOptions expanded to %+v, want the tlc defaults %+v", opt, def)
	}
	// A round trip through the wire shape preserves every content field:
	// the expanded options must hash to the same content key.
	set := tlc.Options{
		WarmInstructions: 123, RunInstructions: 456, Seed: 7, WarmSeed: 9,
		UseDRAM: true, BitErrorRate: 1e-9, SampleIntervals: 3, SampleLength: 11,
	}
	if got := FromOptions(set).Options().ContentKey(); got != set.ContentKey() {
		t.Fatal("RunOptions round trip changed the options content key")
	}
}

func TestRunRequestKey(t *testing.T) {
	base := RunRequest{Design: "TLC", Benchmark: "gcc"}
	k1, err := base.Key()
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := base.Key()
	if k1 != k2 {
		t.Fatal("Key is not deterministic")
	}
	for _, req := range []RunRequest{
		{Design: "DNUCA", Benchmark: "gcc"},
		{Design: "TLC", Benchmark: "mcf"},
		{Design: "TLC", Benchmark: "gcc", Options: RunOptions{Seed: 2}},
		{Design: "TLC", Benchmark: "gcc", Options: RunOptions{UseDRAM: true}},
		{Design: "TLC", Benchmark: "gcc", Options: RunOptions{RunInstructions: 100}},
	} {
		k, err := req.Key()
		if err != nil {
			t.Fatal(err)
		}
		if k == k1 {
			t.Fatalf("distinct config %+v aliases the base key", req)
		}
	}
	if _, err := (RunRequest{Design: "NOPE", Benchmark: "gcc"}).Key(); err == nil {
		t.Fatal("unknown design accepted")
	}
	if _, err := (RunRequest{Design: "TLC", Benchmark: "nope"}).Key(); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestParseDesignRoundTrip(t *testing.T) {
	for _, d := range tlc.Designs() {
		got, err := ParseDesign(d.String())
		if err != nil || got != d {
			t.Fatalf("ParseDesign(%q) = %v, %v", d.String(), got, err)
		}
	}
}

func TestRecordRoundTrip(t *testing.T) {
	res := tlc.Result{
		Design: tlc.DesignTLC, Benchmark: "gcc",
		Instructions: 1000, Cycles: 2000, IPC: 0.5,
		L2Loads: 30, L2Stores: 10, MissesPer1K: 1.5, MeanLookup: 12.25,
		PredictablePct: 80, BanksPerRequest: 1.25, LinkUtilization: 0.05,
		NetworkPowerW: 0.004, CloseHitPct: 0, PromotesPerInsert: 0,
	}
	rec := RecordFrom(res, nil, nil, 3.5)
	rec.Result = &res

	raw, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var back RunRecord
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	got, err := back.ToResult()
	if err != nil {
		t.Fatal(err)
	}
	if got != res {
		t.Fatalf("wire round trip changed the result:\n got %+v\nwant %+v", got, res)
	}

	// Without the embedded Result (a CLI artifact), the projection keeps
	// the headline fields.
	back.Result = nil
	partial, err := back.ToResult()
	if err != nil {
		t.Fatal(err)
	}
	if partial.Cycles != res.Cycles || partial.MeanLookup != res.MeanLookup || partial.Design != res.Design {
		t.Fatalf("headline projection diverged: %+v", partial)
	}
}
