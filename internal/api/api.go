// Package api defines the wire types of the tlcd experiment service: the
// request and record shapes POST /v1/runs exchanges, shared by the server
// (internal/server), the typed client (internal/client), and cmd/tlcbench —
// whose artifact run records use the identical schema, so a served run
// record and a CLI artifact record are interchangeable JSON.
package api

import (
	"fmt"

	"tlc"
)

// RunOptions is the serializable subset of tlc.Options a request may set.
// Zero-valued WarmInstructions, RunInstructions, and Seed take the
// tlc.DefaultOptions values (automatic warm-up, 2 M timed instructions,
// seed 1); every other zero field means exactly zero. The non-serializable
// Options fields (Checkpoints, OnMetrics, Probe, Cancel) are the server's
// business: they change how a run executes, never what it computes.
type RunOptions struct {
	WarmInstructions uint64  `json:"warm_instructions,omitempty"`
	RunInstructions  uint64  `json:"run_instructions,omitempty"`
	Seed             int64   `json:"seed,omitempty"`
	WarmSeed         int64   `json:"warm_seed,omitempty"`
	UseDRAM          bool    `json:"use_dram,omitempty"`
	BitErrorRate     float64 `json:"bit_error_rate,omitempty"`
	SampleIntervals  int     `json:"sample_intervals,omitempty"`
	SampleLength     uint64  `json:"sample_length,omitempty"`
	PhaseWindows     int     `json:"phase_windows,omitempty"`
	PhaseClusters    int     `json:"phase_clusters,omitempty"`

	// CMP axis: Cores 0 or 1 is the single-core machine (bit-identical to
	// requests that never set it); 2..64 runs N cores over the shared L2
	// with MSI-coherent private L1s. The sharing fields shape the cross-core
	// reference pattern and are meaningful only when Cores > 1.
	Cores          int     `json:"cores,omitempty"`
	SharingPattern string  `json:"sharing_pattern,omitempty"`
	SharedMB       float64 `json:"shared_mb,omitempty"`
	SharedFrac     float64 `json:"shared_frac,omitempty"`

	// Fidelity selects the core timing tier: "full" (the default; ""
	// normalizes to it) or "fast" (calibrated in-order model; the record
	// carries error bounds). Fidelity is part of the run key, so the tiers
	// never share a cached result.
	Fidelity string `json:"fidelity,omitempty"`
}

// Options expands the wire options into a runnable tlc.Options, applying
// the documented defaults.
func (o RunOptions) Options() tlc.Options {
	opt := tlc.DefaultOptions()
	if o.WarmInstructions != 0 {
		opt.WarmInstructions = o.WarmInstructions
	}
	if o.RunInstructions != 0 {
		opt.RunInstructions = o.RunInstructions
	}
	if o.Seed != 0 {
		opt.Seed = o.Seed
	}
	opt.WarmSeed = o.WarmSeed
	opt.UseDRAM = o.UseDRAM
	opt.BitErrorRate = o.BitErrorRate
	opt.SampleIntervals = o.SampleIntervals
	if o.SampleLength != 0 {
		opt.SampleLength = o.SampleLength
	}
	opt.PhaseWindows = o.PhaseWindows
	opt.PhaseClusters = o.PhaseClusters
	opt.Cores = o.Cores
	opt.Sharing = tlc.SharingSpec{
		Pattern:    o.SharingPattern,
		SharedMB:   o.SharedMB,
		SharedFrac: o.SharedFrac,
	}
	opt.Fidelity = o.Fidelity
	return opt
}

// FromOptions projects the serializable fields of a tlc.Options.
func FromOptions(opt tlc.Options) RunOptions {
	return RunOptions{
		WarmInstructions: opt.WarmInstructions,
		RunInstructions:  opt.RunInstructions,
		Seed:             opt.Seed,
		WarmSeed:         opt.WarmSeed,
		UseDRAM:          opt.UseDRAM,
		BitErrorRate:     opt.BitErrorRate,
		SampleIntervals:  opt.SampleIntervals,
		SampleLength:     opt.SampleLength,
		PhaseWindows:     opt.PhaseWindows,
		PhaseClusters:    opt.PhaseClusters,
		Cores:            opt.Cores,
		SharingPattern:   opt.Sharing.Pattern,
		SharedMB:         opt.Sharing.SharedMB,
		SharedFrac:       opt.Sharing.SharedFrac,
		Fidelity:         opt.Fidelity,
	}
}

// RunRequest is the POST /v1/runs body.
type RunRequest struct {
	Design    string     `json:"design"`
	Benchmark string     `json:"benchmark"`
	Options   RunOptions `json:"options"`
}

// Validate resolves the design name, checks the benchmark exists, and
// rejects impossible CMP options (core count out of 1..64, unknown sharing
// pattern) with the same one-line errors a local run would produce.
func (r RunRequest) Validate() (tlc.Design, error) {
	d, err := ParseDesign(r.Design)
	if err != nil {
		return d, err
	}
	known := false
	for _, b := range tlc.Benchmarks() {
		if b == r.Benchmark {
			known = true
			break
		}
	}
	if !known {
		return d, fmt.Errorf("api: unknown benchmark %q", r.Benchmark)
	}
	if err := r.Options.Options().Validate(); err != nil {
		return d, err
	}
	return d, nil
}

// Key is the run's content address: equal keys name bit-identical results.
// It is also the record ID the service returns and GET /v1/runs/{id} looks
// up — the result cache is content-addressed, so the ID of a configuration
// is known before (and independent of) any execution.
func (r RunRequest) Key() (string, error) {
	d, err := r.Validate()
	if err != nil {
		return "", err
	}
	return tlc.RunKey(d, r.Benchmark, r.Options.Options()), nil
}

// ParseDesign resolves a design by its String name ("SNUCA2", "DNUCA",
// "TLC", "TLC-opt1000", ...).
func ParseDesign(name string) (tlc.Design, error) {
	for _, d := range tlc.Designs() {
		if d.String() == name {
			return d, nil
		}
	}
	return 0, fmt.Errorf("api: unknown design %q", name)
}

// RunRecord is one completed run: the schema of cmd/tlcbench's artifact
// run records, extended with service-only fields (ID, Cached, Coalesced,
// Result) that the CLI artifacts simply omit.
type RunRecord struct {
	// ID is the run's content address (RunRequest.Key); set by the service.
	ID        string  `json:"id,omitempty"`
	Design    string  `json:"design"`
	Benchmark string  `json:"benchmark"`
	Cycles    uint64  `json:"cycles"`
	IPC       float64 `json:"ipc"`

	MeanLookup      float64 `json:"mean_lookup_cycles"`
	MissesPer1K     float64 `json:"misses_per_1k"`
	PredictablePct  float64 `json:"predictable_pct"`
	LinkUtilization float64 `json:"link_utilization"`
	NetworkPowerW   float64 `json:"network_power_w"`
	WallMS          float64 `json:"wall_ms"`

	// Sampled-mode confidence half-widths (95%); omitted for full runs.
	CyclesCI      float64 `json:"cycles_ci,omitempty"`
	MeanLookupCI  float64 `json:"mean_lookup_ci,omitempty"`
	MissesPer1KCI float64 `json:"misses_per_1k_ci,omitempty"`

	// Fidelity is the core timing tier the run executed at ("full" or
	// "fast"); ErrorBound is the fast tier's committed calibration envelope
	// (nil on full-fidelity records and on benchmarks never calibrated).
	Fidelity   string          `json:"fidelity,omitempty"`
	ErrorBound *tlc.ErrorBound `json:"error_bound,omitempty"`

	// Metrics is the run's full registry snapshot — every counter, gauge,
	// and histogram each simulation layer registered.
	Metrics tlc.MetricsSnapshot `json:"metrics,omitempty"`

	// Result carries the complete tlc.Result so remote callers reconstruct
	// exactly what an in-process run returned; set by the service.
	Result *tlc.Result `json:"result,omitempty"`

	// Cached marks a response served from the result cache (no simulation
	// work); Coalesced marks one that joined an identical in-flight run;
	// PeerFilled marks one a fleet worker pulled from a peer's result cache
	// instead of simulating.
	Cached     bool `json:"cached,omitempty"`
	Coalesced  bool `json:"coalesced,omitempty"`
	PeerFilled bool `json:"peer_filled,omitempty"`
}

// RecordFrom builds a run record from an in-process result. sres may be nil
// for full (non-sampled) runs.
func RecordFrom(res tlc.Result, sres *tlc.SampledResult, snap tlc.MetricsSnapshot, wallMS float64) RunRecord {
	rec := RunRecord{
		Design:          res.Design.String(),
		Benchmark:       res.Benchmark,
		Cycles:          res.Cycles,
		IPC:             res.IPC,
		MeanLookup:      res.MeanLookup,
		MissesPer1K:     res.MissesPer1K,
		PredictablePct:  res.PredictablePct,
		LinkUtilization: res.LinkUtilization,
		NetworkPowerW:   res.NetworkPowerW,
		WallMS:          wallMS,
		Metrics:         snap,
		ErrorBound:      res.ErrorBound,
	}
	if sres != nil {
		rec.CyclesCI = sres.CyclesCI
		rec.MeanLookupCI = sres.MeanLookupCI
		rec.MissesPer1KCI = sres.MissesPer1KCI
	}
	return rec
}

// ToResult reconstructs the run's tlc.Result. Records produced by the
// service carry the full Result verbatim; for records without one (a CLI
// artifact read back), the headline fields are projected into a partial
// Result.
func (r RunRecord) ToResult() (tlc.Result, error) {
	if r.Result != nil {
		return *r.Result, nil
	}
	d, err := ParseDesign(r.Design)
	if err != nil {
		return tlc.Result{}, err
	}
	return tlc.Result{
		Design:          d,
		Benchmark:       r.Benchmark,
		Cycles:          r.Cycles,
		IPC:             r.IPC,
		MeanLookup:      r.MeanLookup,
		MissesPer1K:     r.MissesPer1K,
		PredictablePct:  r.PredictablePct,
		LinkUtilization: r.LinkUtilization,
		NetworkPowerW:   r.NetworkPowerW,
		ErrorBound:      r.ErrorBound,
	}, nil
}

// SweepRequest is the POST /v1/sweeps body: an explicit list of grid
// points. A sweep is one request however large the grid — the server (or
// the fleet coordinator) owns scheduling and backpressure internally and
// streams points back as they land, so the client never runs a retry loop
// per point.
type SweepRequest struct {
	Points []RunRequest `json:"points"`
}

// Validate checks every point, reporting the first invalid one by index.
func (s SweepRequest) Validate() error {
	if len(s.Points) == 0 {
		return fmt.Errorf("api: sweep has no points")
	}
	for i, p := range s.Points {
		if _, err := p.Validate(); err != nil {
			return fmt.Errorf("api: sweep point %d: %w", i, err)
		}
	}
	return nil
}

// SweepPoint is one NDJSON line of a streaming sweep response: the index
// of the grid point in the request plus either its record or its error.
// Lines arrive in completion order, not request order — Index is the join
// key.
type SweepPoint struct {
	Index  int        `json:"index"`
	Record *RunRecord `json:"record,omitempty"`
	Error  string     `json:"error,omitempty"`
}

// RegisterRequest is the POST /v1/workers body a worker sends the fleet
// coordinator: the base URL peers and the coordinator reach it at.
// Registration is an idempotent upsert and doubles as a heartbeat.
type RegisterRequest struct {
	BaseURL string `json:"base_url"`
}

// WorkerState is one worker as the coordinator sees it. Liveness and
// readiness are distinct: a draining worker is alive (it still answers
// cache lookups, and its in-flight runs will complete) but not ready (it
// must stop receiving new keys).
type WorkerState struct {
	BaseURL string `json:"base_url"`
	Alive   bool   `json:"alive"`
	Ready   bool   `json:"ready"`
}

// FleetState is the coordinator's membership view: the GET /v1/workers
// response and the reply to a registration, so one heartbeat round-trip
// also refreshes the member's ring.
type FleetState struct {
	Workers []WorkerState `json:"workers"`
}

// Error is the JSON error body every non-2xx service response carries.
type Error struct {
	Error string `json:"error"`
}
