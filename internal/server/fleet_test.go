package server

import (
	"context"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"tlc"
	"tlc/internal/api"
	"tlc/internal/client"
	"tlc/internal/fleet"
)

// These tests wire real Servers (stub execution) into a fleet.Coordinator
// and fleet.Members — the full fleet path minus the simulator. They live in
// package server to reach Config.execute and the server's counters.

// newFleetWorker builds a Server whose executions are counted, serves it
// over HTTP, and returns both plus the execution counter. peerFill, when
// non-nil, is installed as Config.PeerFill.
func newFleetWorker(t *testing.T, peerFill *atomic.Pointer[fleet.Member]) (*Server, *httptest.Server, *atomic.Int64) {
	t.Helper()
	var executed atomic.Int64
	cfg := Config{
		Workers: 2,
		execute: func(ctx context.Context, d tlc.Design, bench string, opt tlc.Options) (api.RunRecord, error) {
			executed.Add(1)
			return stubRecord(d, bench), nil
		},
	}
	if peerFill != nil {
		cfg.PeerFill = func(ctx context.Context, key string) (api.RunRecord, bool) {
			m := peerFill.Load()
			if m == nil {
				return api.RunRecord{}, false
			}
			return m.PeerFill(ctx, key)
		}
	}
	s, hs := newTestServer(t, cfg)
	return s, hs, &executed
}

// TestFleetPeerFillAcrossJoin is the cache-network property end to end:
// run a grid through a one-worker fleet, join a second worker, run the
// identical grid again — nothing re-executes. Keys the ring remaps to the
// joiner are pulled sideways from their former owner (peer fill); keys
// that stay put hit the local cache.
func TestFleetPeerFillAcrossJoin(t *testing.T) {
	coord := fleet.NewCoordinator(fleet.Config{HealthInterval: time.Hour})
	chs := httptest.NewServer(coord.Handler())
	t.Cleanup(func() {
		chs.Close()
		coord.Close()
	})
	ccl := client.New(chs.URL, nil)

	_, hsA, executedA := newFleetWorker(t, nil)
	if _, err := ccl.RegisterWorker(context.Background(), hsA.URL); err != nil {
		t.Fatalf("register A: %v", err)
	}

	grid := make([]api.RunRequest, 0, 24)
	for _, bench := range tlc.Benchmarks() {
		for _, design := range []string{"TLC", "DNUCA"} {
			grid = append(grid, api.RunRequest{Design: design, Benchmark: bench})
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	first := make(map[string]api.RunRecord, len(grid))
	for _, req := range grid {
		rec, err := ccl.Run(ctx, req)
		if err != nil {
			t.Fatalf("cold %s/%s: %v", req.Design, req.Benchmark, err)
		}
		first[rec.ID] = rec
	}
	if n := executedA.Load(); n != int64(len(grid)) {
		t.Fatalf("cold pass executed %d runs on A, want %d", n, len(grid))
	}

	// Worker B joins: its member view (via the registration response) now
	// holds A and B, so B's PeerFill knows each remapped key's former owner.
	var memberB atomic.Pointer[fleet.Member]
	sB, hsB, executedB := newFleetWorker(t, &memberB)
	mb := fleet.Join(chs.URL, hsB.URL, time.Hour, 0)
	t.Cleanup(mb.Close)
	memberB.Store(mb)
	if peers := mb.Peers(); len(peers) != 2 {
		t.Fatalf("member view after join: %v, want both workers", peers)
	}

	for _, req := range grid {
		rec, err := ccl.Run(ctx, req)
		if err != nil {
			t.Fatalf("warm %s/%s: %v", req.Design, req.Benchmark, err)
		}
		if !rec.Cached && !rec.PeerFilled {
			t.Fatalf("warm %s/%s: neither cached nor peer-filled", req.Design, req.Benchmark)
		}
		prev := first[rec.ID]
		if rec.Cycles != prev.Cycles || rec.Design != prev.Design || rec.Benchmark != prev.Benchmark {
			t.Fatalf("warm %s/%s: record diverged from cold pass", req.Design, req.Benchmark)
		}
	}
	if n := executedA.Load(); n != int64(len(grid)) {
		t.Fatalf("warm pass re-executed on A: %d, want %d", n, len(grid))
	}
	if n := executedB.Load(); n != 0 {
		t.Fatalf("warm pass executed %d runs on B, want 0 (peer fill)", n)
	}
	// With 24 keys and ~half the ring remapping to B, at least one peer
	// fill is a statistical certainty (P(none) ≈ 2^-24).
	if fills := sB.nPeerFills.Load(); fills == 0 {
		t.Fatal("no peer fills recorded on the joining worker")
	}
}

// TestFleetPeerFillFallsBackWhenOwnerDown: the satellite requirement — a
// worker whose peer-fill target is dead must still answer by simulating
// locally; peer fill is an optimization, never a dependency.
func TestFleetPeerFillFallsBackWhenOwnerDown(t *testing.T) {
	coord := fleet.NewCoordinator(fleet.Config{HealthInterval: time.Hour})
	chs := httptest.NewServer(coord.Handler())
	t.Cleanup(func() {
		chs.Close()
		coord.Close()
	})
	ccl := client.New(chs.URL, nil)

	// A worker that registered and died without ever being probed: its URL
	// refuses connections but the fleet view still lists it alive.
	deadHS := httptest.NewServer(nil)
	deadURL := deadHS.URL
	deadHS.Close()
	if _, err := ccl.RegisterWorker(context.Background(), deadURL); err != nil {
		t.Fatalf("register dead worker: %v", err)
	}

	var memberB atomic.Pointer[fleet.Member]
	sB, hsB, executedB := newFleetWorker(t, &memberB)
	mb := fleet.Join(chs.URL, hsB.URL, time.Hour, 0)
	t.Cleanup(mb.Close)
	memberB.Store(mb)
	if peers := mb.Peers(); len(peers) != 2 {
		t.Fatalf("member view: %v, want dead worker and self", peers)
	}

	// On a two-node ring, OwnerExcluding(key, self) is always the dead
	// worker: every peer fill must fail over to local execution.
	req := api.RunRequest{Design: "TLC", Benchmark: "gcc"}
	cl := client.New(hsB.URL, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rec, err := cl.Run(ctx, req)
	if err != nil {
		t.Fatalf("run with dead peer-fill target: %v", err)
	}
	if rec.PeerFilled {
		t.Fatal("record claims a peer fill from a dead worker")
	}
	if n := executedB.Load(); n != 1 {
		t.Fatalf("executed %d runs locally, want 1", n)
	}
	if misses := sB.nPeerMisses.Load(); misses != 1 {
		t.Fatalf("peer-fill misses = %d, want 1", misses)
	}
}
