package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tlc"
	"tlc/internal/api"
	"tlc/internal/client"
)

// tinyOptions keeps real simulations fast where a test needs one.
func tinyOptions() tlc.Options {
	opt := tlc.DefaultOptions()
	opt.WarmInstructions = 10_000
	opt.RunInstructions = 5_000
	return opt
}

// newTestServer builds a server (stubbed when execute != nil) and its
// httptest front end, torn down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		if !s.Draining() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := s.Drain(ctx); err != nil {
				t.Errorf("drain: %v", err)
			}
		}
	})
	return s, hs
}

func postRun(t *testing.T, url string, req api.RunRequest, query string) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/runs"+query, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func decodeRecord(t *testing.T, data []byte) api.RunRecord {
	t.Helper()
	var rec api.RunRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatalf("decoding record: %v\n%s", err, data)
	}
	return rec
}

// counter reads one named counter from the server's registry.
func counter(t *testing.T, s *Server, name string) uint64 {
	t.Helper()
	for _, m := range s.Metrics().Snapshot(0) {
		if m.Name == name {
			return m.Count
		}
	}
	t.Fatalf("no counter %s", name)
	return 0
}

// stubRecord is what the stub executor returns for (d, bench).
func stubRecord(d tlc.Design, bench string) api.RunRecord {
	return api.RunRecord{Design: d.String(), Benchmark: bench, Cycles: 42}
}

// TestBackpressure429 saturates a one-worker, depth-one queue and asserts
// the overflow request is rejected with 429 + Retry-After instead of
// queueing unboundedly.
func TestBackpressure429(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	s, hs := newTestServer(t, Config{
		Workers:    1,
		QueueDepth: 1,
		execute: func(ctx context.Context, d tlc.Design, bench string, opt tlc.Options) (api.RunRecord, error) {
			started <- struct{}{}
			select {
			case <-release:
			case <-ctx.Done():
			}
			return stubRecord(d, bench), nil
		},
	})

	// Occupy the worker, then the queue slot, with distinct configs.
	var wg sync.WaitGroup
	occupy := func(bench string) {
		defer wg.Done()
		resp, _ := postRun(t, hs.URL, api.RunRequest{Design: "TLC", Benchmark: bench}, "")
		if resp.StatusCode != http.StatusOK {
			t.Errorf("occupying run %s: status %d", bench, resp.StatusCode)
		}
	}
	wg.Add(1)
	go occupy("gcc")
	<-started // the worker holds gcc
	wg.Add(1)
	go occupy("mcf") // fills the queue slot

	// Wait for the queue to actually hold mcf, then overflow with a third
	// distinct config.
	deadline := time.Now().Add(5 * time.Second)
	for len(s.queue) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}
	resp, data := postRun(t, hs.URL, api.RunRequest{Design: "TLC", Benchmark: "perl"}, "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow request: status %d, want 429 (%s)", resp.StatusCode, data)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After header")
	}
	var apiErr api.Error
	if err := json.Unmarshal(data, &apiErr); err != nil || apiErr.Error == "" {
		t.Errorf("429 body is not an api.Error: %s", data)
	}
	if got := counter(t, s, "server.runs.rejected"); got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}

	close(release) // finish gcc and mcf; later executions return immediately
	wg.Wait()
	// The rejected key must not linger as a dead flight: retrying succeeds.
	resp, data = postRun(t, hs.URL, api.RunRequest{Design: "TLC", Benchmark: "perl"}, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry after 429: status %d (%s)", resp.StatusCode, data)
	}
}

// TestDeadlineCancelsRun: a request whose deadline expires gets 504 and its
// abandoned run's context is cancelled, so the execution stops cooperatively.
func TestDeadlineCancelsRun(t *testing.T) {
	cancelled := make(chan struct{})
	s, hs := newTestServer(t, Config{
		Workers: 1,
		execute: func(ctx context.Context, d tlc.Design, bench string, opt tlc.Options) (api.RunRecord, error) {
			<-ctx.Done() // simulate a long run that polls cancellation
			close(cancelled)
			return api.RunRecord{}, ctx.Err()
		},
	})

	resp, data := postRun(t, hs.URL, api.RunRequest{Design: "TLC", Benchmark: "gcc"}, "?timeout_ms=50")
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired request: status %d, want 504 (%s)", resp.StatusCode, data)
	}
	select {
	case <-cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("abandoned run's context was never cancelled")
	}
	if got := counter(t, s, "server.runs.deadline_exceeded"); got != 1 {
		t.Errorf("deadline counter = %d, want 1", got)
	}
	// The cancelled run must not be cached as a result.
	s.mu.Lock()
	n := s.cache.len()
	s.mu.Unlock()
	if n != 0 {
		t.Errorf("cancelled run landed in the result cache (%d entries)", n)
	}
}

// TestCoalescing: concurrent identical requests execute exactly once; the
// extras are marked coalesced. A follow-up request hits the result cache
// with zero further executions.
func TestCoalescing(t *testing.T) {
	var executions atomic.Uint64
	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	s, hs := newTestServer(t, Config{
		Workers: 4,
		execute: func(ctx context.Context, d tlc.Design, bench string, opt tlc.Options) (api.RunRecord, error) {
			executions.Add(1)
			once.Do(func() { close(started) })
			<-release
			return stubRecord(d, bench), nil
		},
	})

	req := api.RunRequest{Design: "TLC", Benchmark: "gcc"}
	const callers = 6
	var wg sync.WaitGroup
	var coalesced atomic.Uint64
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, data := postRun(t, hs.URL, req, "")
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d (%s)", resp.StatusCode, data)
				return
			}
			if decodeRecord(t, data).Coalesced {
				coalesced.Add(1)
			}
		}()
		if i == 0 {
			select {
			case <-started:
			case <-time.After(5 * time.Second):
				t.Fatal("first request never started executing")
			}
		}
	}
	// All joiners are waiting on the one flight; release it.
	for counter(t, s, "server.runs.coalesced") < callers-1 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := executions.Load(); got != 1 {
		t.Fatalf("%d executions for %d concurrent identical requests, want 1", got, callers)
	}
	if got := coalesced.Load(); got != callers-1 {
		t.Errorf("%d responses marked coalesced, want %d", got, callers-1)
	}

	// Identical follow-up: served from cache, no new execution.
	resp, data := postRun(t, hs.URL, req, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached request: status %d", resp.StatusCode)
	}
	rec := decodeRecord(t, data)
	if !rec.Cached {
		t.Error("follow-up request not marked cached")
	}
	if got := executions.Load(); got != 1 {
		t.Fatalf("cache hit triggered execution %d", got)
	}
	if got := counter(t, s, "server.runs.cache_hits"); got != 1 {
		t.Errorf("cache_hits counter = %d, want 1", got)
	}

	// GET by content address finds the same record.
	id, err := req.Key()
	if err != nil {
		t.Fatal(err)
	}
	if rec.ID != id {
		t.Errorf("record ID %q != content address %q", rec.ID, id)
	}
	gresp, err := http.Get(hs.URL + "/v1/runs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer gresp.Body.Close()
	if gresp.StatusCode != http.StatusOK {
		t.Errorf("GET by id: status %d", gresp.StatusCode)
	}
	if gresp2, err := http.Get(hs.URL + "/v1/runs/no-such-id"); err == nil {
		gresp2.Body.Close()
		if gresp2.StatusCode != http.StatusNotFound {
			t.Errorf("GET unknown id: status %d, want 404", gresp2.StatusCode)
		}
	}
}

// TestServedMatchesInProcess is the byte-identity contract: a run served
// over HTTP reconstructs exactly the tlc.Result an in-process run returns.
func TestServedMatchesInProcess(t *testing.T) {
	opt := tinyOptions()
	_, hs := newTestServer(t, Config{Workers: 2, BaseOptions: opt})

	req := api.RunRequest{Design: "TLC", Benchmark: "perl", Options: api.FromOptions(opt)}
	resp, data := postRun(t, hs.URL, req, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s)", resp.StatusCode, data)
	}
	served, err := decodeRecord(t, data).ToResult()
	if err != nil {
		t.Fatal(err)
	}
	local, err := tlc.Run(tlc.DesignTLC, "perl", opt)
	if err != nil {
		t.Fatal(err)
	}
	if served != local {
		t.Fatalf("served result diverged from in-process run:\nserved %+v\nlocal  %+v", served, local)
	}
}

// TestRunErrorNotCached: a failing run answers 500 and is re-attempted on
// retry rather than served from the cache.
func TestRunErrorNotCached(t *testing.T) {
	var executions atomic.Uint64
	s, hs := newTestServer(t, Config{
		Workers: 1,
		execute: func(ctx context.Context, d tlc.Design, bench string, opt tlc.Options) (api.RunRecord, error) {
			executions.Add(1)
			return api.RunRecord{}, fmt.Errorf("boom %d", executions.Load())
		},
	})
	for i := 1; i <= 2; i++ {
		resp, data := postRun(t, hs.URL, api.RunRequest{Design: "TLC", Benchmark: "gcc"}, "")
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("attempt %d: status %d (%s)", i, resp.StatusCode, data)
		}
	}
	if got := executions.Load(); got != 2 {
		t.Fatalf("%d executions, want 2 (errors are not cached)", got)
	}
	if got := counter(t, s, "server.runs.failed"); got != 2 {
		t.Errorf("failed counter = %d, want 2", got)
	}
}

// TestValidation: malformed bodies and unknown names are 400s.
func TestValidation(t *testing.T) {
	_, hs := newTestServer(t, Config{
		Workers: 1,
		execute: func(ctx context.Context, d tlc.Design, bench string, opt tlc.Options) (api.RunRecord, error) {
			return stubRecord(d, bench), nil
		},
	})
	for name, body := range map[string]string{
		"not json":          "{nope",
		"unknown design":    `{"design":"NOPE","benchmark":"gcc"}`,
		"unknown benchmark": `{"design":"TLC","benchmark":"nope"}`,
	} {
		resp, err := http.Post(hs.URL+"/v1/runs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	resp, err := http.Post(hs.URL+"/v1/runs?timeout_ms=-5", "application/json",
		strings.NewReader(`{"design":"TLC","benchmark":"gcc"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative timeout: status %d, want 400", resp.StatusCode)
	}
}

// TestDrain: draining answers 503 on healthz and new runs, completes queued
// work, and Drain returns cleanly.
func TestDrain(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	s, hs := newTestServer(t, Config{
		Workers: 1,
		execute: func(ctx context.Context, d tlc.Design, bench string, opt tlc.Options) (api.RunRecord, error) {
			once.Do(func() { close(started) })
			<-release
			return stubRecord(d, bench), nil
		},
	})

	// An in-flight run spans the drain: its waiter must still get a result.
	type outcome struct {
		status int
		rec    api.RunRecord
	}
	resc := make(chan outcome, 1)
	go func() {
		resp, data := postRun(t, hs.URL, api.RunRequest{Design: "TLC", Benchmark: "gcc"}, "")
		var rec api.RunRecord
		json.Unmarshal(data, &rec)
		resc <- outcome{resp.StatusCode, rec}
	}()
	<-started

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}

	// Liveness and readiness split: a draining server is alive (healthz
	// 200 — its cache still answers peer fills) but not ready (readyz 503 —
	// a coordinator must stop routing new keys to it).
	if resp, err := http.Get(hs.URL + "/healthz"); err == nil {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("healthz while draining: status %d, want 200 (liveness, not readiness)", resp.StatusCode)
		}
	}
	if resp, err := http.Get(hs.URL + "/readyz"); err == nil {
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("readyz while draining: status %d, want 503", resp.StatusCode)
		}
	}
	resp, _ := postRun(t, hs.URL, api.RunRequest{Design: "TLC", Benchmark: "mcf"}, "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("new run while draining: status %d, want 503", resp.StatusCode)
	}

	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	out := <-resc
	if out.status != http.StatusOK || out.rec.Cycles != 42 {
		t.Errorf("run spanning drain: status %d rec %+v", out.status, out.rec)
	}
}

// TestDrainWithBlockedEnqueue: a figure-grid submit blocked on a full queue
// when Drain begins must fail with 503, not panic the process with a send
// on a closed channel (the queue channel is never closed).
func TestDrainWithBlockedEnqueue(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	s, hs := newTestServer(t, Config{
		Workers:    1,
		QueueDepth: 1,
		execute: func(ctx context.Context, d tlc.Design, bench string, opt tlc.Options) (api.RunRecord, error) {
			started <- struct{}{}
			select {
			case <-release:
			case <-ctx.Done():
			}
			return stubRecord(d, bench), nil
		},
	})

	// Occupy the worker and the single queue slot.
	var wg sync.WaitGroup
	for _, bench := range []string{"gcc", "mcf"} {
		wg.Add(1)
		go func(bench string) {
			defer wg.Done()
			resp, _ := postRun(t, hs.URL, api.RunRequest{Design: "TLC", Benchmark: bench}, "")
			if resp.StatusCode != http.StatusOK {
				t.Errorf("occupying run %s: status %d", bench, resp.StatusCode)
			}
		}(bench)
		if bench == "gcc" {
			<-started // the worker holds gcc before mcf takes the queue slot
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(s.queue) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}

	// A wait=true submit (the figure-grid path) now blocks on the send.
	blocked := make(chan *httpError, 1)
	go func() {
		_, herr := s.submitKeyed(context.Background(), tlc.DesignTLC, "perl", tlc.DefaultOptions(), true)
		blocked <- herr
	}()
	time.Sleep(50 * time.Millisecond) // let it reach the blocking enqueue

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()

	select {
	case herr := <-blocked:
		if herr == nil || herr.status != http.StatusServiceUnavailable {
			t.Fatalf("blocked enqueue during drain: %+v, want 503", herr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked enqueue never resolved during drain")
	}
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
}

// TestNoCoalesceOntoCancelledFlight: after the last waiter of a queued run
// times out (cancelling the flight's context), a new identical request must
// install a fresh flight and succeed — not join the dead one and get a
// spurious "context canceled" 500.
func TestNoCoalesceOntoCancelledFlight(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	_, hs := newTestServer(t, Config{
		Workers:    1,
		QueueDepth: 2,
		execute: func(ctx context.Context, d tlc.Design, bench string, opt tlc.Options) (api.RunRecord, error) {
			if err := ctx.Err(); err != nil {
				return api.RunRecord{}, err
			}
			started <- struct{}{}
			select {
			case <-release:
			case <-ctx.Done():
				return api.RunRecord{}, ctx.Err()
			}
			return stubRecord(d, bench), nil
		},
	})

	// Occupy the worker with gcc; mcf queues behind it and its only waiter
	// times out, cancelling the mcf flight's context while it is queued.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, _ := postRun(t, hs.URL, api.RunRequest{Design: "TLC", Benchmark: "gcc"}, "")
		if resp.StatusCode != http.StatusOK {
			t.Errorf("gcc: status %d", resp.StatusCode)
		}
	}()
	<-started
	resp, data := postRun(t, hs.URL, api.RunRequest{Design: "TLC", Benchmark: "mcf"}, "?timeout_ms=50")
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("queued mcf with 50ms deadline: status %d, want 504 (%s)", resp.StatusCode, data)
	}

	// A fresh mcf request while the worker is still busy must not inherit
	// the cancelled flight.
	type outcome struct {
		status int
		data   []byte
	}
	resc := make(chan outcome, 1)
	go func() {
		resp, data := postRun(t, hs.URL, api.RunRequest{Design: "TLC", Benchmark: "mcf"}, "")
		resc <- outcome{resp.StatusCode, data}
	}()
	time.Sleep(50 * time.Millisecond)
	close(release)
	out := <-resc
	if out.status != http.StatusOK {
		t.Fatalf("mcf after its predecessor was cancelled: status %d, want 200 (%s)", out.status, out.data)
	}
	if rec := decodeRecord(t, out.data); rec.Cycles != 42 {
		t.Errorf("mcf record %+v, want the executed stub result", rec)
	}
	wg.Wait()
}

// TestFigureRendersWithoutResimulating: a simulated figure must render from
// the records its grid fill returned (seeding the suite), never by serially
// re-simulating grid points with a background context inside the handler —
// even when the suite holds none of the results (fresh suite, or results
// served straight from the LRU cache).
func TestFigureRendersWithoutResimulating(t *testing.T) {
	var executions atomic.Uint64
	s, hs := newTestServer(t, Config{
		Workers:     4,
		BaseOptions: tinyOptions(),
		execute: func(ctx context.Context, d tlc.Design, bench string, opt tlc.Options) (api.RunRecord, error) {
			executions.Add(1)
			rec := stubRecord(d, bench)
			rec.Result = &tlc.Result{Design: d, Benchmark: bench, Instructions: 1000, Cycles: 42}
			return rec, nil
		},
	})

	grid := uint64(2 * len(tlc.Benchmarks())) // table9: {DNUCA, TLC} x benches
	for fetch := 1; fetch <= 2; fetch++ {
		resp, err := http.Get(hs.URL + "/v1/figures/table9")
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("fetch %d: status %d (%s)", fetch, resp.StatusCode, data)
		}
		if !strings.Contains(string(data), "Dynamic Components") {
			t.Fatalf("fetch %d: implausible table9: %.80s", fetch, data)
		}
		if got := executions.Load(); got != grid {
			t.Fatalf("fetch %d: %d executions, want %d (second fetch must be all cache hits)", fetch, got, grid)
		}
		if sim := s.suiteFor(s.cfg.BaseOptions).Metrics().Simulated; sim != 0 {
			t.Fatalf("fetch %d: render re-simulated %d grid points in the handler", fetch, sim)
		}
	}
}

// TestFigureStatic: the physics-only figures render without simulation.
func TestFigureStatic(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(hs.URL + "/v1/figures/table1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("table1: status %d", resp.StatusCode)
	}
	if !strings.Contains(string(data), "Transmission Line Dimensions") {
		t.Errorf("table1 content implausible: %.80s", data)
	}
	if resp, err := http.Get(hs.URL + "/v1/figures/nope"); err == nil {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown figure: status %d, want 404", resp.StatusCode)
		}
	}
}

// TestRetryAfterCountsOnlyBusyWorkers pins the idle-pool backpressure
// estimate: with a known mean run wall time and nothing executing, the
// estimate must not charge the client for Workers idle slots (the old
// formula answered a full mean — here 8s — for an empty, idle server).
func TestRetryAfterCountsOnlyBusyWorkers(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{}, 16)
	s, hs := newTestServer(t, Config{
		Workers: 4,
		execute: func(ctx context.Context, d tlc.Design, bench string, opt tlc.Options) (api.RunRecord, error) {
			started <- struct{}{}
			select {
			case <-block:
			case <-ctx.Done():
			}
			return stubRecord(d, bench), nil
		},
	})
	s.observeWall(8000) // pretend runs take 8s

	// Idle pool, empty queue: the wait is the floor, not Workers × mean / Workers.
	if got := s.retryAfterSeconds(); got != 1 {
		t.Fatalf("idle-pool Retry-After = %ds, want 1s (only busy workers contribute backlog)", got)
	}

	// Two of four workers busy: backlog = 2 × 8000ms / 4 = 4s.
	var wg sync.WaitGroup
	for _, bench := range []string{"gcc", "mcf"} {
		wg.Add(1)
		go func(bench string) {
			defer wg.Done()
			postRun(t, hs.URL, api.RunRequest{Design: "TLC", Benchmark: bench}, "")
		}(bench)
	}
	<-started
	<-started
	if got := s.retryAfterSeconds(); got != 4 {
		t.Errorf("half-busy Retry-After = %ds, want 4s (2 busy × 8s / 4 workers)", got)
	}
	close(block)
	wg.Wait()
}

// TestSweepStreamsNDJSON: POST /v1/sweeps answers every grid point exactly
// once as NDJSON, duplicate points dedupe through cache/coalescing, and an
// empty or invalid sweep is a 400.
func TestSweepStreamsNDJSON(t *testing.T) {
	var executions atomic.Uint64
	s, hs := newTestServer(t, Config{
		Workers: 2,
		execute: func(ctx context.Context, d tlc.Design, bench string, opt tlc.Options) (api.RunRecord, error) {
			executions.Add(1)
			return stubRecord(d, bench), nil
		},
	})

	sreq := api.SweepRequest{Points: []api.RunRequest{
		{Design: "TLC", Benchmark: "gcc"},
		{Design: "TLC", Benchmark: "mcf"},
		{Design: "DNUCA", Benchmark: "gcc"},
		{Design: "TLC", Benchmark: "gcc"}, // duplicate of point 0
	}}
	body, _ := json.Marshal(sreq)
	resp, err := http.Post(hs.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("sweep Content-Type %q", ct)
	}
	seen := map[int]api.SweepPoint{}
	dec := json.NewDecoder(resp.Body)
	for {
		var p api.SweepPoint
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("stream decode: %v", err)
		}
		if _, dup := seen[p.Index]; dup {
			t.Fatalf("point %d streamed twice", p.Index)
		}
		seen[p.Index] = p
	}
	if len(seen) != len(sreq.Points) {
		t.Fatalf("stream delivered %d points, want %d", len(seen), len(sreq.Points))
	}
	for i, p := range seen {
		if p.Error != "" || p.Record == nil || p.Record.Cycles != 42 {
			t.Errorf("point %d = %+v, want a 42-cycle record", i, p)
		}
	}
	// The duplicate point must not simulate twice.
	if got := executions.Load(); got != 3 {
		t.Errorf("%d executions for 3 distinct points, want 3", got)
	}
	if got := counter(t, s, "server.runs.requested"); got != 4 {
		t.Errorf("requested counter = %d, want 4", got)
	}

	for name, body := range map[string]string{
		"empty":         `{"points":[]}`,
		"invalid point": `{"points":[{"design":"NOPE","benchmark":"gcc"}]}`,
	} {
		resp, err := http.Post(hs.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s sweep: status %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestPeerFillServesWithoutExecuting: with a PeerFill hook that has the
// record, an admitted run is answered from the peer — zero local
// executions, the record cached locally for the next hit — and when the
// hook misses, the run falls through to local simulation.
func TestPeerFillServesWithoutExecuting(t *testing.T) {
	var executions, fills atomic.Uint64
	peerRec := api.RunRecord{Design: "TLC", Benchmark: "gcc", Cycles: 77, Cached: true}
	s, hs := newTestServer(t, Config{
		Workers: 1,
		PeerFill: func(ctx context.Context, key string) (api.RunRecord, bool) {
			fills.Add(1)
			if key == mustKey(t, api.RunRequest{Design: "TLC", Benchmark: "gcc"}) {
				return peerRec, true
			}
			return api.RunRecord{}, false
		},
		execute: func(ctx context.Context, d tlc.Design, bench string, opt tlc.Options) (api.RunRecord, error) {
			executions.Add(1)
			return stubRecord(d, bench), nil
		},
	})

	// Peer has gcc: served via peer fill, not executed.
	resp, data := postRun(t, hs.URL, api.RunRequest{Design: "TLC", Benchmark: "gcc"}, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("peer-filled run: status %d (%s)", resp.StatusCode, data)
	}
	rec := decodeRecord(t, data)
	if !rec.PeerFilled || rec.Cached || rec.Cycles != 77 {
		t.Fatalf("peer-filled record = %+v, want PeerFilled=true Cached=false Cycles=77", rec)
	}
	if executions.Load() != 0 {
		t.Fatal("peer fill still executed locally")
	}
	if got := counter(t, s, "server.runs.peer_fills"); got != 1 {
		t.Errorf("peer_fills counter = %d, want 1", got)
	}

	// Second request: the peer-filled record now lives in the local cache.
	resp, data = postRun(t, hs.URL, api.RunRequest{Design: "TLC", Benchmark: "gcc"}, "")
	if resp.StatusCode != http.StatusOK || !decodeRecord(t, data).Cached {
		t.Fatalf("peer-filled record not cached locally: status %d (%s)", resp.StatusCode, data)
	}
	if fills.Load() != 1 {
		t.Fatalf("local cache hit consulted the peer again (%d fills)", fills.Load())
	}

	// Peer misses mcf: simulate locally.
	resp, data = postRun(t, hs.URL, api.RunRequest{Design: "TLC", Benchmark: "mcf"}, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("peer-miss run: status %d (%s)", resp.StatusCode, data)
	}
	if rec := decodeRecord(t, data); rec.PeerFilled || rec.Cycles != 42 {
		t.Fatalf("peer-miss record = %+v, want locally executed stub", rec)
	}
	if executions.Load() != 1 {
		t.Fatalf("%d local executions after peer miss, want 1", executions.Load())
	}
	if got := counter(t, s, "server.runs.peer_fill_misses"); got != 1 {
		t.Errorf("peer_fill_misses counter = %d, want 1", got)
	}
}

// mustKey resolves a request's content address.
func mustKey(t *testing.T, req api.RunRequest) string {
	t.Helper()
	key, err := req.Key()
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// TestMetricz: the server's own counters are served as a sorted snapshot.
func TestMetricz(t *testing.T) {
	_, hs := newTestServer(t, Config{
		Workers: 1,
		execute: func(ctx context.Context, d tlc.Design, bench string, opt tlc.Options) (api.RunRecord, error) {
			return stubRecord(d, bench), nil
		},
	})
	postRun(t, hs.URL, api.RunRequest{Design: "TLC", Benchmark: "gcc"}, "")
	resp, err := http.Get(hs.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap []struct {
		Name  string  `json:"name"`
		Value float64 `json:"value"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	for _, m := range snap {
		vals[m.Name] = m.Value
	}
	if vals["server.runs.executed"] != 1 {
		t.Errorf("metricz executed = %v, want 1", vals["server.runs.executed"])
	}
	if vals["server.http.requests"] < 1 {
		t.Error("metricz http.requests not counted")
	}
}

// TestProfileEndpoint: GET /v1/profiles/{key} serves a locally cached
// phase profile and answers 404 for an unknown key — a pure Peek, so a
// fleet peer's profile fetch can never trigger work on this node.
func TestProfileEndpoint(t *testing.T) {
	profiles := tlc.NewPhaseProfileStore(0, "")
	_, hs := newTestServer(t, Config{
		Workers:  1,
		Profiles: profiles,
		execute: func(ctx context.Context, d tlc.Design, bench string, opt tlc.Options) (api.RunRecord, error) {
			return stubRecord(d, bench), nil
		},
	})
	cl := client.New(hs.URL, nil)

	if _, ok, err := cl.GetProfile(context.Background(), "nope"); err != nil || ok {
		t.Fatalf("unknown key: ok=%v err=%v, want a clean 404 miss", ok, err)
	}

	want := tlc.PhaseProfile{
		Version:  1,
		Key:      "k1",
		Total:    200_000,
		Windows:  2,
		Clusters: 1,
		Features: [][]float64{{1, 2}, {3, 4}},
		Instr:    []uint64{100_000, 100_000},
		Assign:   []int{0, 0},
		Reps:     []int{0},
		Weights:  []uint64{200_000},
	}
	profiles.Put("k1", want)
	got, ok, err := cl.GetProfile(context.Background(), "k1")
	if err != nil || !ok {
		t.Fatalf("cached key: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("profile round-trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}
