package server

import (
	"container/list"

	"tlc/internal/api"
)

// lru is the content-addressed result cache: RunKey → RunRecord, bounded by
// entry count. Not safe for concurrent use; the Server guards it with its
// own mutex.
type lru struct {
	cap   int
	order *list.List // front = most recently used; values are *lruEntry
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	rec api.RunRecord
}

// newLRU builds a cache holding at least one entry. A capacity below 1
// would make add's eviction loop remove the just-inserted record — a cache
// that silently never holds anything — so degenerate capacities clamp to 1.
// (server.New validates Config.CacheSize before ever reaching this; the
// clamp is defense in depth for any other construction site.)
func newLRU(capacity int) *lru {
	if capacity < 1 {
		capacity = 1
	}
	return &lru{cap: capacity, order: list.New(), items: make(map[string]*list.Element)}
}

func (c *lru) get(key string) (api.RunRecord, bool) {
	el, ok := c.items[key]
	if !ok {
		return api.RunRecord{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).rec, true
}

func (c *lru) add(key string, rec api.RunRecord) {
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).rec = rec
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, rec: rec})
	for len(c.items) > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

func (c *lru) len() int { return len(c.items) }
