package server

import (
	"container/list"

	"tlc/internal/api"
)

// lru is the content-addressed result cache: RunKey → RunRecord, bounded by
// entry count. Not safe for concurrent use; the Server guards it with its
// own mutex.
type lru struct {
	cap   int
	order *list.List // front = most recently used; values are *lruEntry
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	rec api.RunRecord
}

func newLRU(capacity int) *lru {
	return &lru{cap: capacity, order: list.New(), items: make(map[string]*list.Element)}
}

func (c *lru) get(key string) (api.RunRecord, bool) {
	el, ok := c.items[key]
	if !ok {
		return api.RunRecord{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).rec, true
}

func (c *lru) add(key string, rec api.RunRecord) {
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).rec = rec
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, rec: rec})
	for len(c.items) > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

func (c *lru) len() int { return len(c.items) }
