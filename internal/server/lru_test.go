package server

import (
	"context"
	"testing"
	"time"

	"tlc"
	"tlc/internal/api"
)

// TestLRUDegenerateCapacity: a capacity of zero (or less) must not build a
// cache that evicts every record immediately after insertion — the
// degenerate loop in add would otherwise disable the result cache with no
// signal. newLRU clamps to one retained entry.
func TestLRUDegenerateCapacity(t *testing.T) {
	for _, capacity := range []int{0, -3} {
		c := newLRU(capacity)
		c.add("k", api.RunRecord{Cycles: 7})
		rec, ok := c.get("k")
		if !ok || rec.Cycles != 7 {
			t.Fatalf("newLRU(%d): just-added record was evicted (ok=%v)", capacity, ok)
		}
		if c.len() != 1 {
			t.Fatalf("newLRU(%d): len = %d, want 1", capacity, c.len())
		}
	}
}

// TestLRUEvictsLeastRecentlyUsed pins the ordinary eviction order.
func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	c := newLRU(2)
	c.add("a", api.RunRecord{Cycles: 1})
	c.add("b", api.RunRecord{Cycles: 2})
	if _, ok := c.get("a"); !ok { // touch a: b becomes the eviction victim
		t.Fatal("a missing before eviction")
	}
	c.add("c", api.RunRecord{Cycles: 3})
	if _, ok := c.get("b"); ok {
		t.Fatal("least-recently-used entry b survived eviction")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("entry %s evicted, want retained", k)
		}
	}
}

// TestServerValidatesCacheSize: a negative configured CacheSize must not
// produce a server whose result cache drops every record; it clamps to the
// documented default and the cache works.
func TestServerValidatesCacheSize(t *testing.T) {
	s := New(Config{
		Workers:   1,
		CacheSize: -1,
		execute: func(ctx context.Context, d tlc.Design, bench string, opt tlc.Options) (api.RunRecord, error) {
			return stubRecord(d, bench), nil
		},
	})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	if s.cfg.CacheSize != defaultCacheSize {
		t.Fatalf("CacheSize = %d after New, want clamped default %d", s.cfg.CacheSize, defaultCacheSize)
	}
	s.mu.Lock()
	s.cache.add("k", api.RunRecord{Cycles: 9})
	_, ok := s.cache.get("k")
	s.mu.Unlock()
	if !ok {
		t.Fatal("result cache with clamped capacity dropped a record")
	}
}
