package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"tlc"
	"tlc/internal/api"
	"tlc/internal/experiments"
	"tlc/internal/sim"
)

// Handler returns the service's HTTP interface:
//
//	POST /v1/runs            run (or fetch) one configuration (?block=1
//	                         queues behind a full pool instead of 429)
//	GET  /v1/runs/{id}       look up a completed run by content address
//	POST /v1/sweeps          run a grid, streamed back as NDJSON
//	GET  /v1/profiles/{key}  look up a cached phase profile by content key
//	GET  /v1/figures/{fig}   render a paper table/figure (text/plain)
//	GET  /healthz            liveness (200 for the process lifetime)
//	GET  /readyz             readiness (503 while draining)
//	GET  /metricz            the server's own counters, as JSON
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleRun)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleGetRun)
	mux.HandleFunc("POST /v1/sweeps", s.handleSweep)
	mux.HandleFunc("GET /v1/profiles/{key}", s.handleGetProfile)
	mux.HandleFunc("GET /v1/figures/{fig}", s.handleFigure)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /metricz", s.handleMetrics)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.nHTTP.Add(1)
		mux.ServeHTTP(w, r)
	})
}

// requestTimeout resolves the effective deadline for one request: the
// timeout_ms query parameter if present, clamped to [1ms, MaxTimeout];
// DefaultTimeout otherwise.
func (s *Server) requestTimeout(r *http.Request) (time.Duration, error) {
	raw := r.URL.Query().Get("timeout_ms")
	if raw == "" {
		return s.cfg.DefaultTimeout, nil
	}
	ms, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || ms <= 0 {
		return 0, fmt.Errorf("server: invalid timeout_ms %q", raw)
	}
	d := time.Duration(ms) * time.Millisecond
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, e *httpError) {
	if e.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.retryAfter))
	}
	writeJSON(w, e.status, api.Error{Error: e.msg})
}

// handleRun is POST /v1/runs: decode, bound by the request deadline, and
// submit through cache → coalesce → queue. ?block=1 turns a full queue
// into a ctx-bounded blocking enqueue instead of a 429 — the fleet
// coordinator uses it when dispatching sweep grid points, mirroring how a
// single server's own figure/sweep handlers enqueue internally.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req api.RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, &httpError{status: 400, msg: "decoding request: " + err.Error()})
		return
	}
	timeout, err := s.requestTimeout(r)
	if err != nil {
		writeError(w, &httpError{status: 400, msg: err.Error()})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	rec, herr := s.submit(ctx, req, r.URL.Query().Get("block") == "1")
	if herr != nil {
		writeError(w, herr)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// handleSweep is POST /v1/sweeps: validate the whole grid up front, then
// stream one NDJSON api.SweepPoint per completed point, in completion
// order. Every point flows through the ordinary submit pipeline (result
// cache → coalescing → worker pool) with blocking admission, so a sweep of
// any size is bounded by the pool and the queue — one request replaces the
// client-side retry loop a large grid otherwise degenerates into. Points
// that fail (deadline, execution error) carry their error on the line;
// the stream itself stays 200 once opened.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var sreq api.SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&sreq); err != nil {
		writeError(w, &httpError{status: 400, msg: "decoding sweep: " + err.Error()})
		return
	}
	if err := sreq.Validate(); err != nil {
		writeError(w, &httpError{status: 400, msg: err.Error()})
		return
	}
	timeout, err := s.requestTimeout(r)
	if err != nil {
		writeError(w, &httpError{status: 400, msg: err.Error()})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Lane phase: one shared warm pass per group of grid points on the
	// same workload stream, so the submits below restore checkpoints
	// instead of each re-warming. Validate passed, so every point's
	// design resolves.
	points := make([]experiments.GridPoint, len(sreq.Points))
	for i, p := range sreq.Points {
		d, _ := p.Validate()
		points[i] = experiments.GridPoint{Design: d, Bench: p.Benchmark, Opt: p.Options.Options()}
	}
	s.laneWarm(ctx, points)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	var (
		wmu sync.Mutex
		enc = json.NewEncoder(w)
		wg  sync.WaitGroup
	)
	emit := func(p api.SweepPoint) {
		wmu.Lock()
		defer wmu.Unlock()
		enc.Encode(p)
		if fl != nil {
			fl.Flush()
		}
	}
	for i, p := range sreq.Points {
		wg.Add(1)
		go func(i int, p api.RunRequest) {
			defer wg.Done()
			rec, herr := s.submit(ctx, p, true)
			if herr != nil {
				emit(api.SweepPoint{Index: i, Error: herr.msg})
				return
			}
			emit(api.SweepPoint{Index: i, Record: &rec})
		}(i, p)
	}
	wg.Wait()
}

// handleGetRun is GET /v1/runs/{id}: a pure result-cache lookup. IDs are
// content addresses (api.RunRequest.Key), so a configuration's ID is known
// before any execution; absent simply means "not run yet (or evicted)".
func (s *Server) handleGetRun(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	rec, ok := s.cache.get(id)
	s.mu.Unlock()
	if !ok {
		writeError(w, &httpError{status: 404, msg: "no completed run with id " + id})
		return
	}
	rec.Cached = true
	writeJSON(w, http.StatusOK, rec)
}

// handleGetProfile is GET /v1/profiles/{key}: a pure phase-profile lookup
// (memory or disk — Peek, never the fill hook), so a fleet peer asking
// this node can only ever read what a local phase run already computed;
// profile fetches never cascade. Absent means "not profiled yet (or
// evicted)".
func (s *Server) handleGetProfile(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	prof, ok := s.cfg.Profiles.Peek(key)
	if !ok {
		writeError(w, &httpError{status: 404, msg: "no cached phase profile with key " + key})
		return
	}
	writeJSON(w, http.StatusOK, prof)
}

// figureGrid lists the (designs × benchmarks) a simulated figure needs.
type figureGrid struct {
	designs []tlc.Design
	render  func(*experiments.Suite) string
}

// figures maps the {fig} path element to its renderer. Static entries
// (physics-only, no simulation) have no grid.
func figures() map[string]figureGrid {
	return map[string]figureGrid{
		// Static: derived from the physical models only.
		"table1": {render: func(*experiments.Suite) string { return experiments.Table1().String() }},
		"table2": {render: func(*experiments.Suite) string { return experiments.Table2().String() }},
		"table7": {render: func(*experiments.Suite) string { return experiments.Table7().String() }},
		"table8": {render: func(*experiments.Suite) string { return experiments.Table8().String() }},
		"fig3":   {render: func(*experiments.Suite) string { return experiments.Figure3().String() }},
		// Simulated: the server fills the grid through its own run pipeline
		// (cache, coalescing, worker pool) before rendering.
		"table6": {
			designs: []tlc.Design{tlc.DesignTLC, tlc.DesignDNUCA},
			render:  func(s *experiments.Suite) string { return s.Table6().String() },
		},
		"table9": {
			designs: []tlc.Design{tlc.DesignDNUCA, tlc.DesignTLC},
			render:  func(s *experiments.Suite) string { return s.Table9().String() },
		},
		"fig5": {
			designs: []tlc.Design{tlc.DesignSNUCA2, tlc.DesignDNUCA, tlc.DesignTLC},
			render:  func(s *experiments.Suite) string { return s.Figure5().String() },
		},
		"fig6": {
			designs: []tlc.Design{tlc.DesignDNUCA, tlc.DesignTLC},
			render:  func(s *experiments.Suite) string { return s.Figure6().String() },
		},
		"fig7": {
			designs: tlc.TLCFamily(),
			render:  func(s *experiments.Suite) string { return s.Figure7().String() },
		},
		"fig8": {
			designs: append([]tlc.Design{tlc.DesignSNUCA2}, tlc.TLCFamily()...),
			render:  func(s *experiments.Suite) string { return s.Figure8().String() },
		},
	}
}

// FigureNames lists the figures the service can render, sorted.
func FigureNames() []string {
	m := figures()
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// handleFigure is GET /v1/figures/{fig}. Simulated figures fill their grid
// through submitKeyed with wait=true — grid points queue behind external
// runs (blocking, not rejected, so a figure request cannot trip its own
// backpressure) and share the result cache and coalescing with them.
func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	fig, ok := figures()[r.PathValue("fig")]
	if !ok {
		writeError(w, &httpError{status: 404,
			msg: fmt.Sprintf("unknown figure %q (have %v)", r.PathValue("fig"), FigureNames())})
		return
	}
	timeout, err := s.requestTimeout(r)
	if err != nil {
		writeError(w, &httpError{status: 400, msg: err.Error()})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	suite := s.suiteFor(s.cfg.BaseOptions)
	if len(fig.designs) > 0 {
		// Lane phase: each benchmark's warm-up is paid once for every
		// design of the figure through a shared stream before the grid
		// fans out.
		points := make([]experiments.GridPoint, 0, len(fig.designs)*len(tlc.Benchmarks()))
		for _, d := range fig.designs {
			for _, b := range tlc.Benchmarks() {
				points = append(points, experiments.GridPoint{Design: d, Bench: b, Opt: s.cfg.BaseOptions})
			}
		}
		s.laneWarm(ctx, points)
		var (
			wg    sync.WaitGroup
			mu    sync.Mutex
			first *httpError
		)
		for _, d := range fig.designs {
			for _, b := range tlc.Benchmarks() {
				wg.Add(1)
				go func(d tlc.Design, b string) {
					defer wg.Done()
					rec, herr := s.submitKeyed(ctx, d, b, s.cfg.BaseOptions, true)
					if herr != nil {
						mu.Lock()
						if first == nil {
							first = herr
						}
						mu.Unlock()
						return
					}
					// Seed the rendering suite from the returned record: a
					// grid point served from the result cache never touched
					// this suite (it may be fresh, or rebuilt after LRU
					// eviction), and render below must be a pure lookup —
					// not a serial background-context re-simulation inside
					// the HTTP handler that would bypass the worker pool
					// and the request deadline.
					if rec.Result != nil {
						var sres *tlc.SampledResult
						if suite.Sampled() {
							sres = &tlc.SampledResult{
								Result:        *rec.Result,
								CyclesCI:      rec.CyclesCI,
								MeanLookupCI:  rec.MeanLookupCI,
								MissesPer1KCI: rec.MissesPer1KCI,
							}
						}
						suite.Seed(d, b, *rec.Result, sres)
					}
				}(d, b)
			}
		}
		wg.Wait()
		if first != nil {
			writeError(w, first)
			return
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, fig.render(suite))
}

// handleHealth is GET /healthz: pure liveness — 200 for as long as the
// process serves HTTP, including while draining. A draining worker is not
// dead: its in-flight runs complete and its result cache still answers
// peer-fill lookups. Routing eligibility is /readyz's job, so a fleet
// coordinator can stop sending a draining worker new keys without
// declaring it dead and reassigning its whole arc early.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.Draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": status})
}

// handleReady is GET /readyz: readiness — 200 while accepting new runs,
// 503 once draining.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetrics is GET /metricz: the server's own registry, snapshotted.
// Gauges are read at wall-clock zero simulated time — the server registry
// holds no sim-time-dependent gauges.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot(sim.Time(0))
	writeJSON(w, http.StatusOK, snap)
}
