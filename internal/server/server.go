// Package server implements the tlcd experiment service: the paper's
// evaluation behind an HTTP API. One long-running process amortizes what
// every one-shot CLI invocation re-pays — warm state, identical grid
// points, in-flight duplicates — through three layers that a request
// traverses in order:
//
//  1. a content-addressed LRU result cache keyed by tlc.RunKey (hits are
//     served without touching a worker),
//  2. request coalescing: an identical in-flight configuration is joined,
//     not re-enqueued, and the underlying execution is additionally
//     deduplicated by experiments.Suite's per-key singleflight,
//  3. a bounded worker pool fed by a bounded queue with explicit
//     backpressure — a full queue rejects with 429 and a Retry-After
//     estimate instead of queueing without bound.
//
// Per-request deadlines are cooperative: the executing simulation polls the
// request context at batch boundaries (tlc.Options.Cancel), so an expired
// deadline abandons the run mid-flight instead of simulating to completion
// for a client that stopped waiting. All runs share one warm-state
// checkpoint store: concurrent requests for the same benchmark reuse one
// warm prefix.
package server

import (
	"container/list"
	"context"
	"fmt"
	"log"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"tlc"
	"tlc/internal/api"
	"tlc/internal/experiments"
	"tlc/internal/metrics"
	"tlc/internal/sim"
)

// Config parameterizes a Server. The zero value is usable: every field has
// a documented default.
type Config struct {
	// Workers bounds concurrent simulations (default 4).
	Workers int
	// QueueDepth bounds runs admitted but not yet executing; a full queue
	// rejects with 429 (default 4×Workers).
	QueueDepth int
	// CacheSize bounds the result cache in entries (default 4096).
	CacheSize int
	// DefaultTimeout applies to requests that set none; MaxTimeout caps
	// client-requested timeouts (defaults 5m / 30m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// Checkpoints is the shared warm-state store (an in-memory store is
	// built when nil). CheckpointDir adds a disk tier to the built store.
	Checkpoints   *tlc.CheckpointStore
	CheckpointDir string
	// Profiles is the shared phase-profile store every phase-sampled run
	// uses (an in-memory store is built when nil; CheckpointDir adds its
	// disk tier too). GET /v1/profiles/{key} serves from it — Peek only, so
	// a fleet's peer profile fetch can never recurse into computation.
	Profiles *tlc.PhaseProfileStore
	// BaseOptions are the options figure endpoints run with, and the
	// defaults RunOptions expand against conceptually (clients always send
	// explicit options; BaseOptions only drive /v1/figures). Zero means
	// tlc.DefaultOptions.
	BaseOptions tlc.Options

	// PeerFill, when set, is consulted once per admitted flight after the
	// local cache missed and coalescing collapsed the waiters — immediately
	// before simulating. In a fleet, internal/fleet.Member wires it to a
	// pure cache lookup (GET /v1/runs/{key}) on the node that owned the key
	// before this worker joined the ring, so a rebalanced ring pulls
	// results sideways instead of re-running the world. Returning false
	// (peer missing, down, or also cold) falls through to local execution —
	// peer fill is an optimization, never a dependency.
	PeerFill func(ctx context.Context, key string) (api.RunRecord, bool)

	// execute overrides run execution, for tests. The default executes
	// through a per-options experiments.Suite.
	execute func(ctx context.Context, d tlc.Design, bench string, opt tlc.Options) (api.RunRecord, error)
}

// Server is the service state. Create with New, serve via Handler, stop
// with Drain.
type Server struct {
	cfg   Config
	reg   *metrics.Registry
	start time.Time

	mu       sync.Mutex
	suites   map[string]*experiments.Suite // by Options.ContentKey
	suiteUse *list.List                    // LRU order of suite keys
	flights  map[string]*runFlight         // in-flight runs by RunKey
	cache    *lru                          // RunKey -> api.RunRecord
	draining bool

	queue   chan *runFlight
	workers sync.WaitGroup
	// drain closes when Drain begins: blocked figure-grid enqueues abort on
	// it with 503 instead of sending into a shutting-down pool. settled
	// closes once every blocking enqueue admitted before the drain has
	// resolved (tracked by sending), after which the queue can only shrink
	// and workers exit when it empties. The queue channel itself is never
	// closed, so no send can panic during shutdown.
	drain   chan struct{}
	settled chan struct{}
	sending sync.WaitGroup

	// nInFlight counts flights a worker is currently running (peer fill or
	// execution). It feeds the Retry-After estimate: only busy workers
	// contribute backlog, so the first 429 after a quiet period does not
	// charge the client for a full pool of idle workers.
	nInFlight atomic.Int64

	// Counters behind /metricz; atomics so the HTTP paths never contend
	// with the worker pool on mu for bookkeeping.
	nRequested atomic.Uint64
	nExecuted  atomic.Uint64
	// Per-fidelity-tier execution counts: nExecuted split by the run's
	// tier, so /metricz shows that fast and full traffic execute
	// separately (the fidelity e2e leg asserts no cross-tier cache hit).
	nExecutedFull atomic.Uint64
	nExecutedFast atomic.Uint64
	nCacheHits    atomic.Uint64
	nCoalesced    atomic.Uint64
	nRejected     atomic.Uint64
	nDeadline     atomic.Uint64
	nFailed       atomic.Uint64
	nHTTP         atomic.Uint64
	nPeerFills    atomic.Uint64
	nPeerMisses   atomic.Uint64

	// Lane-parallel warm phase: sweep and figure grids are planned into
	// shared-stream groups and warmed once per group before their points
	// are submitted. laneMu serializes the passes (concurrent grids would
	// mostly duplicate each other's warm work); the planner reuses its
	// storage across plans.
	laneMu      sync.Mutex
	planner     *experiments.LanePlanner
	nLaneGroups atomic.Uint64
	nLaneWarmed atomic.Uint64
	nLaneBatch  atomic.Uint64
	nLaneScalar atomic.Uint64
	// wallEWMA is an exponentially weighted mean of executed-run wall time
	// in milliseconds (float64 bits), feeding the Retry-After estimate.
	wallEWMA atomic.Uint64
}

// runFlight is one admitted run: installed in the flights map at admission,
// executed by a worker, awaited by its requesters. Its context is the union
// of its waiters' interest — it cancels when the last waiter gives up, so
// an abandoned run stops simulating at the next batch boundary.
type runFlight struct {
	key    string
	design tlc.Design
	bench  string
	opt    tlc.Options

	ctx    context.Context
	cancel context.CancelFunc
	refs   int // guarded by Server.mu

	done chan struct{}
	rec  api.RunRecord
	err  error
}

// maxSuites bounds the per-options suite cache. Each suite's internal
// result cache is bounded by the design×benchmark grid, so the worst-case
// footprint is maxSuites full grids of Results plus metric snapshots.
const maxSuites = 32

// defaultCacheSize is the result-cache capacity when Config.CacheSize is
// zero or invalid.
const defaultCacheSize = 4096

// New builds a server. Call Drain before discarding it.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	// CacheSize 0 means "default" by contract; anything negative is a
	// misconfiguration that would otherwise build a degenerate LRU (every
	// record evicted the moment it is inserted — a silently disabled result
	// cache). Clamp loudly instead.
	if cfg.CacheSize < 0 {
		log.Printf("server: invalid CacheSize %d clamped to default %d (a non-positive capacity would disable the result cache)", cfg.CacheSize, defaultCacheSize)
		cfg.CacheSize = defaultCacheSize
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = defaultCacheSize
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 5 * time.Minute
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 30 * time.Minute
	}
	if cfg.Checkpoints == nil {
		cfg.Checkpoints = tlc.NewCheckpointStore(0, cfg.CheckpointDir)
	}
	if cfg.Profiles == nil {
		cfg.Profiles = tlc.NewPhaseProfileStore(0, cfg.CheckpointDir)
	}
	if cfg.BaseOptions.RunInstructions == 0 {
		base := tlc.DefaultOptions()
		base.Seed = cfg.BaseOptions.Seed
		if base.Seed == 0 {
			base.Seed = 1
		}
		cfg.BaseOptions = base
	}

	s := &Server{
		cfg:      cfg,
		reg:      metrics.New(),
		start:    time.Now(),
		suites:   make(map[string]*experiments.Suite),
		suiteUse: list.New(),
		flights:  make(map[string]*runFlight),
		cache:    newLRU(cfg.CacheSize),
		queue:    make(chan *runFlight, cfg.QueueDepth),
		drain:    make(chan struct{}),
		settled:  make(chan struct{}),
	}
	if s.cfg.execute == nil {
		s.cfg.execute = s.executeSuite
	}
	s.registerMetrics()
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

// registerMetrics publishes the server's own counters on its registry —
// the same instrumentation spine the simulation layers use, read by
// /metricz.
func (s *Server) registerMetrics() {
	s.reg.CounterFunc("server.runs.requested", s.nRequested.Load)
	s.reg.CounterFunc("server.runs.executed", s.nExecuted.Load)
	s.reg.CounterFunc("server.runs.executed_full", s.nExecutedFull.Load)
	s.reg.CounterFunc("server.runs.executed_fast", s.nExecutedFast.Load)
	s.reg.CounterFunc("server.runs.cache_hits", s.nCacheHits.Load)
	s.reg.CounterFunc("server.runs.coalesced", s.nCoalesced.Load)
	s.reg.CounterFunc("server.runs.rejected", s.nRejected.Load)
	s.reg.CounterFunc("server.runs.deadline_exceeded", s.nDeadline.Load)
	s.reg.CounterFunc("server.runs.failed", s.nFailed.Load)
	s.reg.CounterFunc("server.runs.peer_fills", s.nPeerFills.Load)
	s.reg.CounterFunc("server.runs.peer_fill_misses", s.nPeerMisses.Load)
	s.reg.CounterFunc("server.http.requests", s.nHTTP.Load)
	s.reg.Gauge("server.runs.inflight", func(sim.Time) float64 { return float64(s.nInFlight.Load()) })
	s.reg.Gauge("server.queue.depth", func(sim.Time) float64 { return float64(len(s.queue)) })
	s.reg.Gauge("server.queue.capacity", func(sim.Time) float64 { return float64(cap(s.queue)) })
	s.reg.Gauge("server.uptime_seconds", func(sim.Time) float64 { return time.Since(s.start).Seconds() })
	s.reg.Gauge("server.run_wall_ewma_ms", func(sim.Time) float64 { return s.meanWallMS() })
	ck := s.cfg.Checkpoints
	s.reg.CounterFunc("server.checkpoints.hits", func() uint64 { return ck.Stats().Hits })
	s.reg.CounterFunc("server.checkpoints.misses", func() uint64 { return ck.Stats().Misses })
	pr := s.cfg.Profiles
	s.reg.CounterFunc("server.profiles.hits", func() uint64 { return pr.Stats().Hits })
	s.reg.CounterFunc("server.profiles.misses", func() uint64 { return pr.Stats().Misses })
	s.reg.CounterFunc("server.profiles.fill_hits", func() uint64 { return pr.Stats().FillHits })
	// The sim.lanes.* spine: how much grid warm-up the lane-parallel
	// passes absorbed (/metricz exposes these next to the run counters).
	s.reg.CounterFunc("sim.lanes.groups", s.nLaneGroups.Load)
	s.reg.CounterFunc("sim.lanes.lanes_warmed", s.nLaneWarmed.Load)
	s.reg.CounterFunc("sim.lanes.batches_shared", s.nLaneBatch.Load)
	s.reg.CounterFunc("sim.lanes.scalar_points", s.nLaneScalar.Load)
}

// laneWarm pre-pays a grid's warm-ups into the shared checkpoint store:
// points are grouped by shared workload stream and each group warmed once
// through a lane-parallel pass, so the submits that follow restore
// checkpoints instead of re-warming per point. Purely an accelerator —
// lane-warmed state is pinned bit-identical to scalar warm-up — so pass
// errors (the request's deadline expiring mid-pass) just stop the phase;
// the points themselves still run and surface their own errors.
func (s *Server) laneWarm(ctx context.Context, points []experiments.GridPoint) {
	for i := range points {
		points[i].Opt.Checkpoints = s.cfg.Checkpoints
		points[i].Opt.Cancel = ctx.Err
	}
	s.laneMu.Lock()
	defer s.laneMu.Unlock()
	if s.planner == nil {
		s.planner = experiments.NewLanePlanner()
	}
	groups := s.planner.Plan(points)
	s.nLaneScalar.Add(uint64(s.planner.ScalarPoints()))
	for i := range groups {
		g := &groups[i]
		if len(g.Designs) < 2 {
			continue
		}
		st, err := tlc.WarmLanes(g.Designs, g.Bench, g.Opt)
		if err != nil {
			return
		}
		if st.Lanes == 0 {
			continue
		}
		s.nLaneGroups.Add(1)
		s.nLaneWarmed.Add(uint64(st.Lanes))
		s.nLaneBatch.Add(st.Batches)
	}
}

// Metrics exposes the server's registry (tests and /metricz).
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// httpError carries an HTTP status through the submit path.
type httpError struct {
	status     int
	msg        string
	retryAfter int // seconds; nonzero only for 429
}

func (e *httpError) Error() string { return e.msg }

// submit is the core of POST /v1/runs: resolve the content address, then
// cache → coalesce → enqueue, and wait bounded by ctx. wait=true turns a
// full queue into a ctx-bounded blocking enqueue instead of a 429 — the
// figure endpoints use it for their internal grid fills so one figure
// request cannot trip its own backpressure.
func (s *Server) submit(ctx context.Context, req api.RunRequest, wait bool) (api.RunRecord, *httpError) {
	d, err := req.Validate()
	if err != nil {
		return api.RunRecord{}, &httpError{status: 400, msg: err.Error()}
	}
	return s.submitKeyed(ctx, d, req.Benchmark, req.Options.Options(), wait)
}

// submitKeyed is submit after validation; the figure endpoints call it
// directly for their grid fills.
func (s *Server) submitKeyed(ctx context.Context, d tlc.Design, bench string, opt tlc.Options, wait bool) (api.RunRecord, *httpError) {
	s.nRequested.Add(1)
	key := tlc.RunKey(d, bench, opt)

	s.mu.Lock()
	if rec, ok := s.cache.get(key); ok {
		s.mu.Unlock()
		s.nCacheHits.Add(1)
		rec.Cached = true
		return rec, nil
	}
	if s.draining {
		s.mu.Unlock()
		return api.RunRecord{}, &httpError{status: 503, msg: "server is draining"}
	}
	f, joined := s.flights[key]
	// Never coalesce onto a flight whose context is already cancelled (its
	// last waiter gave up): incrementing refs cannot un-cancel it, so a
	// joiner would inherit a spurious "context canceled" failure. deref
	// removes dead flights under mu, so this is defense in depth.
	if joined && f.ctx.Err() == nil {
		f.refs++
		s.nCoalesced.Add(1)
	} else {
		joined = false
		f = &runFlight{key: key, design: d, bench: bench, opt: opt, done: make(chan struct{}), refs: 1}
		f.ctx, f.cancel = context.WithCancel(context.Background())
		s.flights[key] = f
		if !wait {
			select {
			case s.queue <- f:
			default:
				delete(s.flights, key)
				f.cancel()
				s.mu.Unlock()
				s.nRejected.Add(1)
				return api.RunRecord{}, &httpError{
					status:     429,
					msg:        "run queue is full",
					retryAfter: s.retryAfterSeconds(),
				}
			}
		} else {
			// Register the upcoming blocking enqueue while mu still
			// guarantees !draining, so Drain can wait for it to resolve
			// before telling the workers the queue is settled.
			s.sending.Add(1)
		}
	}
	s.mu.Unlock()

	if wait && !joined {
		if herr := s.blockingEnqueue(ctx, f); herr != nil {
			return api.RunRecord{}, herr
		}
	}

	select {
	case <-f.done:
	case <-ctx.Done():
		s.deref(f)
		s.nDeadline.Add(1)
		return api.RunRecord{}, &httpError{status: 504, msg: ctx.Err().Error()}
	}
	s.deref(f)
	if f.err != nil {
		s.nFailed.Add(1)
		return api.RunRecord{}, &httpError{status: 500, msg: f.err.Error()}
	}
	rec := f.rec
	rec.Coalesced = joined
	return rec, nil
}

// blockingEnqueue submits a freshly installed flight to the queue, blocking
// until space frees — the figure-grid fill path, where backpressure must
// queue, not reject. It aborts if the requester's ctx dies or the server
// starts draining first; the aborted flight never reached a worker and
// never will, so it is removed from the flights map and failed so that any
// coalesced joiners get an answer instead of waiting out their deadlines.
func (s *Server) blockingEnqueue(ctx context.Context, f *runFlight) *httpError {
	var herr *httpError
	select {
	case s.queue <- f:
		s.sending.Done()
		return nil
	case <-s.drain:
		herr = &httpError{status: 503, msg: "server is draining"}
	case <-ctx.Done():
		s.nDeadline.Add(1)
		herr = &httpError{status: 504, msg: ctx.Err().Error()}
	}
	s.sending.Done()
	s.mu.Lock()
	if s.flights[f.key] == f {
		delete(s.flights, f.key)
	}
	s.mu.Unlock()
	f.err = fmt.Errorf("run was never scheduled: %s", herr.msg)
	close(f.done)
	s.deref(f)
	return herr
}

// deref drops one waiter's interest in a flight; the last one out cancels
// the flight's context so an execution nobody is waiting for stops at its
// next batch boundary, and removes the dead flight from the flights map so
// a later identical request installs a fresh one instead of coalescing onto
// a cancelled context. Cancel and removal happen under mu: a concurrent
// submit either joined before refs hit zero (no cancel) or serializes
// after and finds the key absent — refs never resurrect from zero.
func (s *Server) deref(f *runFlight) {
	s.mu.Lock()
	f.refs--
	if f.refs == 0 {
		f.cancel()
		if s.flights[f.key] == f {
			delete(s.flights, f.key)
		}
	}
	s.mu.Unlock()
}

// worker executes queued flights until the queue is settled (Drain has
// begun and every pending enqueue has resolved) and empty.
func (s *Server) worker() {
	defer s.workers.Done()
	for {
		select {
		case f := <-s.queue:
			s.runOne(f)
		case <-s.settled:
			// The queue can only shrink now: finish what's left and exit.
			for {
				select {
				case f := <-s.queue:
					s.runOne(f)
				default:
					return
				}
			}
		}
	}
}

// runOne executes one flight and publishes its outcome. With a PeerFill
// hook configured (fleet worker mode), the flight first tries to pull the
// result from the key's previous owner — a pure peer-cache lookup — and
// only simulates when no peer has it. The hook runs here, after the local
// cache and coalescing layers, so N concurrent requests for a remapped key
// cost one peer round-trip, not N.
func (s *Server) runOne(f *runFlight) {
	s.nInFlight.Add(1)
	defer s.nInFlight.Add(-1)

	if s.cfg.PeerFill != nil && f.ctx.Err() == nil {
		if rec, ok := s.cfg.PeerFill(f.ctx, f.key); ok {
			s.nPeerFills.Add(1)
			rec.ID = f.key
			rec.Cached = false
			rec.PeerFilled = true
			f.rec = rec
			s.mu.Lock()
			s.cache.add(f.key, f.rec)
			if s.flights[f.key] == f {
				delete(s.flights, f.key)
			}
			s.mu.Unlock()
			close(f.done)
			return
		}
		s.nPeerMisses.Add(1)
	}

	start := time.Now()
	rec, err := s.cfg.execute(f.ctx, f.design, f.bench, f.opt)
	wall := time.Since(start)

	f.rec, f.err = rec, err
	if err == nil {
		f.rec.ID = f.key
		f.rec.WallMS = float64(wall.Microseconds()) / 1000
		s.nExecuted.Add(1)
		if f.opt.FidelityTier() == tlc.FidelityFast {
			s.nExecutedFast.Add(1)
		} else {
			s.nExecutedFull.Add(1)
		}
		s.observeWall(f.rec.WallMS)
	}
	s.mu.Lock()
	if err == nil {
		s.cache.add(f.key, f.rec)
	}
	if s.flights[f.key] == f {
		delete(s.flights, f.key)
	}
	s.mu.Unlock()
	close(f.done)
}

// executeSuite is the production execute hook: run through the per-options
// suite so identical configurations share the singleflight and the metrics
// aggregation, with the shared checkpoint store wired in.
func (s *Server) executeSuite(ctx context.Context, d tlc.Design, bench string, opt tlc.Options) (api.RunRecord, error) {
	suite := s.suiteFor(opt)
	var res tlc.Result
	var sres *tlc.SampledResult
	var err error
	if suite.Sampled() {
		var sr tlc.SampledResult
		sr, err = suite.SampledCtx(ctx, d, bench)
		res, sres = sr.Result, &sr
	} else {
		res, err = suite.RunCtx(ctx, d, bench)
	}
	if err != nil {
		return api.RunRecord{}, err
	}
	snap, _ := suite.RunMetrics(d, bench)
	rec := api.RecordFrom(res, sres, snap, 0)
	rec.Fidelity = opt.FidelityTier()
	// Embed the complete Result so remote callers reconstruct exactly what
	// this in-process run returned (the byte-identity contract).
	rec.Result = &res
	return rec, nil
}

// suiteFor returns the suite for opt's content key, building it (with the
// shared checkpoint store) on first use. Suites are kept LRU-bounded: each
// one retains at most a full grid of results, and maxSuites bounds how many
// option variants retain theirs.
func (s *Server) suiteFor(opt tlc.Options) *experiments.Suite {
	ck := opt.ContentKey()
	s.mu.Lock()
	defer s.mu.Unlock()
	if suite, ok := s.suites[ck]; ok {
		for el := s.suiteUse.Front(); el != nil; el = el.Next() {
			if el.Value.(string) == ck {
				s.suiteUse.MoveToFront(el)
				break
			}
		}
		return suite
	}
	opt.Checkpoints = s.cfg.Checkpoints
	opt.PhaseProfiles = s.cfg.Profiles
	suite := experiments.NewSuite(opt)
	s.suites[ck] = suite
	s.suiteUse.PushFront(ck)
	for len(s.suites) > maxSuites {
		oldest := s.suiteUse.Back()
		s.suiteUse.Remove(oldest)
		delete(s.suites, oldest.Value.(string))
	}
	return suite
}

// observeWall folds one executed run's wall time into the EWMA.
func (s *Server) observeWall(ms float64) {
	for {
		old := s.wallEWMA.Load()
		prev := math.Float64frombits(old)
		next := ms
		if prev > 0 {
			next = 0.8*prev + 0.2*ms
		}
		if s.wallEWMA.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// meanWallMS reads the wall-time EWMA.
func (s *Server) meanWallMS() float64 {
	return math.Float64frombits(s.wallEWMA.Load())
}

// retryAfterSeconds estimates when queue space will open: the backlog's
// expected drain time across the pool, floored at one second. Backlog is
// queued runs plus runs actually in flight — idle workers contribute
// nothing, so the first 429 after a quiet period (queue momentarily full,
// pool mostly idle) is not over-estimated by a full Workers × mean. With
// no executed runs yet it answers 1.
func (s *Server) retryAfterSeconds() int {
	mean := s.meanWallMS()
	if mean <= 0 {
		return 1
	}
	busy := int(s.nInFlight.Load())
	if busy > s.cfg.Workers {
		busy = s.cfg.Workers
	}
	backlog := float64(len(s.queue)+busy) * mean / float64(s.cfg.Workers)
	secs := int(math.Ceil(backlog / 1000))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// Draining reports whether Drain has begun (healthz flips to 503).
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain stops intake and waits for queued work to finish, bounded by ctx:
// new runs are rejected with 503, queued and executing runs complete (their
// waiters get answers), then the worker pool exits. On ctx expiry the
// remaining flights are cancelled cooperatively and Drain returns ctx's
// error once the workers notice.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return fmt.Errorf("server: already draining")
	}
	s.draining = true
	close(s.drain)
	s.mu.Unlock()

	// The queue channel is never closed — a figure-grid enqueue blocked on
	// a full queue could otherwise panic sending into it. Instead, wait for
	// the blocking enqueues admitted before draining flipped to resolve
	// (each lands in the queue or aborts on s.drain with a 503), then tell
	// the workers the queue is settled so they exit once it empties. New
	// sends register under mu while !draining, so none can start now.
	go func() {
		s.sending.Wait()
		close(s.settled)
	}()

	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Cut the remaining work loose: cancelling flight contexts aborts
		// executing runs at their next batch boundary.
		s.mu.Lock()
		for _, f := range s.flights {
			f.cancel()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}
