// Package cliopt registers the simulation-accelerator and observability
// flags shared by the run-capable commands (tlcsim, tlcbench, tlcsweep,
// tlctables): warm-state checkpointing, SMARTS-style sampled execution, and
// full metric-registry dumps.
package cliopt

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"

	"tlc"
)

// Flags holds the shared accelerator flag values after parsing.
type Flags struct {
	// CkptDir persists warm-state checkpoints on disk when non-empty.
	CkptDir string
	// Sample is the number of detailed intervals; 0 keeps full detailed
	// simulation.
	Sample int
	// Length is the instructions per detailed interval.
	Length uint64
	// Metrics, when non-empty, collects every run's full metric-registry
	// snapshot and writes them as JSON to this file ("-" for stdout) when
	// WriteMetrics is called.
	Metrics string

	mu     sync.Mutex
	events []tlc.MetricsEvent
}

// Register installs -ckptdir, -sample, -samplelen, and -metrics on the
// default flag set. Call before flag.Parse.
func Register() *Flags {
	f := &Flags{}
	flag.StringVar(&f.CkptDir, "ckptdir", "",
		"persist warm-state checkpoints in this directory (reused across invocations)")
	flag.IntVar(&f.Sample, "sample", 0,
		"sampled mode: detailed intervals per run (0 = full detailed simulation)")
	flag.Uint64Var(&f.Length, "samplelen", 2000,
		"instructions per detailed interval in sampled mode")
	flag.StringVar(&f.Metrics, "metrics", "",
		"dump every run's full metric registry as JSON to this file ('-' for stdout)")
	return f
}

// Apply wires the parsed flags into opt: a -ckptdir attaches a disk-backed
// checkpoint store (runs sharing a warm prefix skip warm-up, bit-identically),
// -sample/-samplelen select the sampled interval plan, and -metrics chains a
// collector onto OnMetrics (a hook already present keeps firing after it).
// Apply may be called on several Options values (one suite per memory model,
// say); all their runs collect into the same dump.
func (f *Flags) Apply(opt *tlc.Options) {
	if f.CkptDir != "" {
		opt.Checkpoints = tlc.NewCheckpointStore(0, f.CkptDir)
	}
	if f.Sample > 0 {
		opt.SampleIntervals = f.Sample
		opt.SampleLength = f.Length
	}
	if f.Metrics != "" {
		user := opt.OnMetrics
		opt.OnMetrics = func(ev tlc.MetricsEvent) {
			f.mu.Lock()
			f.events = append(f.events, ev)
			f.mu.Unlock()
			if user != nil {
				user(ev)
			}
		}
	}
}

// runMetricsJSON is the per-run shape of the -metrics dump.
type runMetricsJSON struct {
	Design    string              `json:"design"`
	Benchmark string              `json:"benchmark"`
	Cycles    uint64              `json:"cycles"`
	Metrics   tlc.MetricsSnapshot `json:"metrics"`
}

// WriteMetrics writes the collected snapshots, sorted by (design,
// benchmark), to the -metrics target. It is a no-op when the flag is unset.
// Call once, after every run has completed.
func (f *Flags) WriteMetrics() error {
	if f.Metrics == "" {
		return nil
	}
	f.mu.Lock()
	out := make([]runMetricsJSON, 0, len(f.events))
	for _, ev := range f.events {
		out = append(out, runMetricsJSON{
			Design:    ev.Design.String(),
			Benchmark: ev.Benchmark,
			Cycles:    ev.Cycles,
			Metrics:   ev.Snapshot,
		})
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Design != out[j].Design {
			return out[i].Design < out[j].Design
		}
		return out[i].Benchmark < out[j].Benchmark
	})

	w := os.Stdout
	if f.Metrics != "-" {
		file, err := os.Create(f.Metrics)
		if err != nil {
			return fmt.Errorf("cliopt: -metrics: %w", err)
		}
		defer file.Close()
		w = file
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("cliopt: -metrics: %w", err)
	}
	return nil
}
