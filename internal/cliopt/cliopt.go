// Package cliopt registers the simulation-accelerator and observability
// flags shared by the run-capable commands (tlcsim, tlcbench, tlcsweep,
// tlctables): warm-state checkpointing, SMARTS-style sampled execution,
// full metric-registry dumps, and the CMP axis (-cores, -sharing).
package cliopt

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"

	"tlc"
)

// Flags holds the shared accelerator flag values after parsing.
type Flags struct {
	// CkptDir persists warm-state checkpoints on disk when non-empty.
	CkptDir string
	// Sample is the number of detailed intervals; 0 keeps full detailed
	// simulation.
	Sample int
	// Length is the instructions per detailed interval.
	Length uint64
	// Metrics, when non-empty, collects every run's full metric-registry
	// snapshot and writes them as JSON to this file ("-" for stdout) when
	// WriteMetrics is called.
	Metrics string
	// Cores is the CMP core count: 1 is the single-core machine, 2..64 run
	// N cores over the shared L2 with MSI-coherent private L1s.
	Cores int
	// Sharing is the CMP sharing pattern name; SharedMB and SharedFrac are
	// its shared-region knobs (0 = pattern default).
	Sharing    string
	SharedMB   float64
	SharedFrac float64

	mu     sync.Mutex
	events []tlc.MetricsEvent
}

// Register installs -ckptdir, -sample, -samplelen, -metrics, -cores, and
// the -sharing knobs on the default flag set. Call before flag.Parse.
func Register() *Flags {
	f := &Flags{}
	flag.StringVar(&f.CkptDir, "ckptdir", "",
		"persist warm-state checkpoints in this directory (reused across invocations)")
	flag.IntVar(&f.Sample, "sample", 0,
		"sampled mode: detailed intervals per run (0 = full detailed simulation)")
	flag.Uint64Var(&f.Length, "samplelen", 2000,
		"instructions per detailed interval in sampled mode")
	flag.StringVar(&f.Metrics, "metrics", "",
		"dump every run's full metric registry as JSON to this file ('-' for stdout)")
	flag.IntVar(&f.Cores, "cores", 1,
		"CMP core count: N cores share the L2 through an MSI directory (1 = the single-core machine)")
	flag.StringVar(&f.Sharing, "sharing", "",
		"CMP sharing pattern: private|producer-consumer|migratory|read-mostly (default private)")
	flag.Float64Var(&f.SharedMB, "sharedmb", 0,
		"shared-region footprint in MB for CMP sharing patterns (0 = pattern default)")
	flag.Float64Var(&f.SharedFrac, "sharedfrac", 0,
		"fraction of references aimed at the shared region (0 = pattern default)")
	return f
}

// Apply wires the parsed flags into opt: a -ckptdir attaches a disk-backed
// checkpoint store (runs sharing a warm prefix skip warm-up, bit-identically),
// -sample/-samplelen select the sampled interval plan, -cores/-sharing set
// the CMP axis, and -metrics chains a collector onto OnMetrics (a hook
// already present keeps firing after it). Apply may be called on several
// Options values (one suite per memory model, say); all their runs collect
// into the same dump. The returned error rejects impossible CMP flags — a
// core count outside 1..64 or an unknown sharing pattern — with a one-line
// message for the caller to print and exit on.
func (f *Flags) Apply(opt *tlc.Options) error {
	if f.Cores < 1 {
		return fmt.Errorf("cliopt: -cores %d: need at least 1", f.Cores)
	}
	opt.Cores = f.Cores
	opt.Sharing = tlc.SharingSpec{Pattern: f.Sharing, SharedMB: f.SharedMB, SharedFrac: f.SharedFrac}
	if err := opt.Validate(); err != nil {
		return err
	}
	if f.CkptDir != "" {
		opt.Checkpoints = tlc.NewCheckpointStore(0, f.CkptDir)
	}
	if f.Sample > 0 {
		opt.SampleIntervals = f.Sample
		opt.SampleLength = f.Length
	}
	if f.Metrics != "" {
		user := opt.OnMetrics
		opt.OnMetrics = func(ev tlc.MetricsEvent) {
			f.mu.Lock()
			f.events = append(f.events, ev)
			f.mu.Unlock()
			if user != nil {
				user(ev)
			}
		}
	}
	return nil
}

// runMetricsJSON is the per-run shape of the -metrics dump.
type runMetricsJSON struct {
	Design    string              `json:"design"`
	Benchmark string              `json:"benchmark"`
	Cycles    uint64              `json:"cycles"`
	Metrics   tlc.MetricsSnapshot `json:"metrics"`
}

// WriteMetrics writes the collected snapshots, sorted by (design,
// benchmark), to the -metrics target. It is a no-op when the flag is unset.
// Call once, after every run has completed.
func (f *Flags) WriteMetrics() error {
	if f.Metrics == "" {
		return nil
	}
	f.mu.Lock()
	out := make([]runMetricsJSON, 0, len(f.events))
	for _, ev := range f.events {
		out = append(out, runMetricsJSON{
			Design:    ev.Design.String(),
			Benchmark: ev.Benchmark,
			Cycles:    ev.Cycles,
			Metrics:   ev.Snapshot,
		})
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Design != out[j].Design {
			return out[i].Design < out[j].Design
		}
		if out[i].Benchmark != out[j].Benchmark {
			return out[i].Benchmark < out[j].Benchmark
		}
		// A (design, benchmark) pair can run more than once per invocation
		// (the contention grid sweeps core counts); cycles break the tie so
		// the dump order never depends on run completion order.
		return out[i].Cycles < out[j].Cycles
	})

	w := os.Stdout
	if f.Metrics != "-" {
		file, err := os.Create(f.Metrics)
		if err != nil {
			return fmt.Errorf("cliopt: -metrics: %w", err)
		}
		defer file.Close()
		w = file
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("cliopt: -metrics: %w", err)
	}
	return nil
}
