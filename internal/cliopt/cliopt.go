// Package cliopt registers the simulation-accelerator and observability
// flags shared by the run-capable commands (tlcsim, tlcbench, tlcsweep,
// tlctables): warm-state checkpointing, SMARTS-style sampled execution,
// full metric-registry dumps, and the CMP axis (-cores, -sharing).
package cliopt

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"

	"tlc"
)

// Flags holds the shared accelerator flag values after parsing.
type Flags struct {
	// CkptDir persists warm-state checkpoints on disk when non-empty.
	CkptDir string
	// Sample is the number of detailed intervals; 0 keeps full detailed
	// simulation.
	Sample int
	// Length is the instructions per detailed interval.
	Length uint64
	// Phase selects phase-aware representative sampling with the default
	// window/cluster shape; PhaseWindows and PhaseClusters override the
	// shape (either implies -phase). Mutually exclusive with -sample.
	Phase         bool
	PhaseWindows  int
	PhaseClusters int
	// Metrics, when non-empty, collects every run's full metric-registry
	// snapshot and writes them as JSON to this file ("-" for stdout) when
	// WriteMetrics is called.
	Metrics string
	// Cores is the CMP core count: 1 is the single-core machine, 2..64 run
	// N cores over the shared L2 with MSI-coherent private L1s.
	Cores int
	// Sharing is the CMP sharing pattern name; SharedMB and SharedFrac are
	// its shared-region knobs (0 = pattern default).
	Sharing    string
	SharedMB   float64
	SharedFrac float64
	// Fidelity selects the core timing tier: "full" (default) or "fast"
	// (calibrated in-order model; results carry error bounds).
	Fidelity string

	mu     sync.Mutex
	events []tlc.MetricsEvent
}

// DefaultPhaseWindows and DefaultPhaseClusters shape -phase when the
// explicit knobs are zero: 40 windows clustered into at most 14 phases —
// the representative timed spans are whole windows, so this is 3-4x fewer
// detailed intervals than the typical -sample 50 at comparable accuracy
// (intervals collapse further when fewer phases are distinct). The window
// count is deliberately modest: phase calibration regresses per-window
// event rates, and longer windows average the rare-event noise (a handful
// of DRAM-latency misses per window) that short windows drown in.
const (
	DefaultPhaseWindows  = 40
	DefaultPhaseClusters = 14
)

// Register installs -ckptdir, -sample, -samplelen, -phase and its shape
// knobs, -metrics, -cores, and the -sharing knobs on the default flag set.
// Call before flag.Parse.
func Register() *Flags {
	f := &Flags{}
	flag.StringVar(&f.CkptDir, "ckptdir", "",
		"persist warm-state checkpoints in this directory (reused across invocations)")
	flag.IntVar(&f.Sample, "sample", 0,
		"sampled mode: detailed intervals per run (0 = full detailed simulation)")
	flag.Uint64Var(&f.Length, "samplelen", 2000,
		"instructions per detailed interval in sampled mode")
	flag.BoolVar(&f.Phase, "phase", false,
		"phase-aware sampling: cluster profiling windows and time one representative interval per phase")
	flag.IntVar(&f.PhaseWindows, "phase-windows", 0,
		fmt.Sprintf("profiling windows for -phase (0 = default %d; setting it implies -phase)", DefaultPhaseWindows))
	flag.IntVar(&f.PhaseClusters, "phase-clusters", 0,
		fmt.Sprintf("k-means clusters for -phase (0 = default %d; setting it implies -phase)", DefaultPhaseClusters))
	flag.StringVar(&f.Metrics, "metrics", "",
		"dump every run's full metric registry as JSON to this file ('-' for stdout)")
	flag.IntVar(&f.Cores, "cores", 1,
		"CMP core count: N cores share the L2 through an MSI directory (1 = the single-core machine)")
	flag.StringVar(&f.Sharing, "sharing", "",
		"CMP sharing pattern: private|producer-consumer|migratory|read-mostly (default private)")
	flag.Float64Var(&f.SharedMB, "sharedmb", 0,
		"shared-region footprint in MB for CMP sharing patterns (0 = pattern default)")
	flag.Float64Var(&f.SharedFrac, "sharedfrac", 0,
		"fraction of references aimed at the shared region (0 = pattern default)")
	flag.StringVar(&f.Fidelity, "fidelity", "",
		"core timing tier: full (default) or fast (calibrated in-order model with committed error bounds)")
	return f
}

// Apply wires the parsed flags into opt: a -ckptdir attaches a disk-backed
// checkpoint store (runs sharing a warm prefix skip warm-up, bit-identically),
// -sample/-samplelen select the uniform sampled interval plan, -phase (and
// its shape knobs) the phase-aware one with a per-invocation profile store,
// -cores/-sharing set the CMP axis, and -metrics chains a collector onto
// OnMetrics (a hook
// already present keeps firing after it). Apply may be called on several
// Options values (one suite per memory model, say); all their runs collect
// into the same dump. The returned error rejects impossible CMP flags — a
// core count outside 1..64 or an unknown sharing pattern — with a one-line
// message for the caller to print and exit on.
func (f *Flags) Apply(opt *tlc.Options) error {
	if f.Cores < 1 {
		return fmt.Errorf("cliopt: -cores %d: need at least 1", f.Cores)
	}
	opt.Cores = f.Cores
	opt.Sharing = tlc.SharingSpec{Pattern: f.Sharing, SharedMB: f.SharedMB, SharedFrac: f.SharedFrac}
	opt.Fidelity = f.Fidelity
	if err := opt.Validate(); err != nil {
		return err
	}
	if f.CkptDir != "" {
		opt.Checkpoints = tlc.NewCheckpointStore(0, f.CkptDir)
	}
	phase := f.Phase || f.PhaseWindows > 0 || f.PhaseClusters > 0
	if phase && f.Sample > 0 {
		return fmt.Errorf("cliopt: -sample %d and -phase are mutually exclusive (uniform vs phase-aware sampling)", f.Sample)
	}
	if f.Sample > 0 {
		opt.SampleIntervals = f.Sample
		opt.SampleLength = f.Length
	}
	if phase {
		opt.PhaseWindows = f.PhaseWindows
		if opt.PhaseWindows == 0 {
			opt.PhaseWindows = DefaultPhaseWindows
		}
		opt.PhaseClusters = f.PhaseClusters
		if opt.PhaseClusters == 0 {
			opt.PhaseClusters = DefaultPhaseClusters
		}
		if opt.PhaseClusters > opt.PhaseWindows {
			return fmt.Errorf("cliopt: -phase-clusters %d exceeds -phase-windows %d", opt.PhaseClusters, opt.PhaseWindows)
		}
		opt.SampleLength = f.Length
		// One profile store per invocation: the profile is design-
		// independent, so a grid over all six designs pays one clustering
		// pass per benchmark. -ckptdir adds the persistent tier, shared
		// with later invocations.
		opt.PhaseProfiles = tlc.NewPhaseProfileStore(0, f.CkptDir)
	}
	if f.Metrics != "" {
		user := opt.OnMetrics
		opt.OnMetrics = func(ev tlc.MetricsEvent) {
			f.mu.Lock()
			f.events = append(f.events, ev)
			f.mu.Unlock()
			if user != nil {
				user(ev)
			}
		}
	}
	return nil
}

// runMetricsJSON is the per-run shape of the -metrics dump.
type runMetricsJSON struct {
	Design    string              `json:"design"`
	Benchmark string              `json:"benchmark"`
	Cycles    uint64              `json:"cycles"`
	Metrics   tlc.MetricsSnapshot `json:"metrics"`
}

// WriteMetrics writes the collected snapshots, sorted by (design,
// benchmark), to the -metrics target. It is a no-op when the flag is unset.
// Call once, after every run has completed.
func (f *Flags) WriteMetrics() error {
	if f.Metrics == "" {
		return nil
	}
	f.mu.Lock()
	out := make([]runMetricsJSON, 0, len(f.events))
	for _, ev := range f.events {
		out = append(out, runMetricsJSON{
			Design:    ev.Design.String(),
			Benchmark: ev.Benchmark,
			Cycles:    ev.Cycles,
			Metrics:   ev.Snapshot,
		})
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Design != out[j].Design {
			return out[i].Design < out[j].Design
		}
		if out[i].Benchmark != out[j].Benchmark {
			return out[i].Benchmark < out[j].Benchmark
		}
		// A (design, benchmark) pair can run more than once per invocation
		// (the contention grid sweeps core counts); cycles break the tie so
		// the dump order never depends on run completion order.
		return out[i].Cycles < out[j].Cycles
	})

	w := os.Stdout
	if f.Metrics != "-" {
		file, err := os.Create(f.Metrics)
		if err != nil {
			return fmt.Errorf("cliopt: -metrics: %w", err)
		}
		defer file.Close()
		w = file
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("cliopt: -metrics: %w", err)
	}
	return nil
}
