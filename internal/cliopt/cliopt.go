// Package cliopt registers the simulation-accelerator flags shared by the
// run-capable commands (tlcsim, tlcbench, tlcsweep, tlctables): warm-state
// checkpointing and SMARTS-style sampled execution.
package cliopt

import (
	"flag"

	"tlc"
)

// Flags holds the shared accelerator flag values after parsing.
type Flags struct {
	// CkptDir persists warm-state checkpoints on disk when non-empty.
	CkptDir string
	// Sample is the number of detailed intervals; 0 keeps full detailed
	// simulation.
	Sample int
	// Length is the instructions per detailed interval.
	Length uint64
}

// Register installs -ckptdir, -sample, and -samplelen on the default flag
// set. Call before flag.Parse.
func Register() *Flags {
	f := &Flags{}
	flag.StringVar(&f.CkptDir, "ckptdir", "",
		"persist warm-state checkpoints in this directory (reused across invocations)")
	flag.IntVar(&f.Sample, "sample", 0,
		"sampled mode: detailed intervals per run (0 = full detailed simulation)")
	flag.Uint64Var(&f.Length, "samplelen", 2000,
		"instructions per detailed interval in sampled mode")
	return f
}

// Apply wires the parsed flags into opt: a -ckptdir attaches a disk-backed
// checkpoint store (runs sharing a warm prefix skip warm-up, bit-identically),
// and -sample/-samplelen select the sampled interval plan.
func (f *Flags) Apply(opt *tlc.Options) {
	if f.CkptDir != "" {
		opt.Checkpoints = tlc.NewCheckpointStore(0, f.CkptDir)
	}
	if f.Sample > 0 {
		opt.SampleIntervals = f.Sample
		opt.SampleLength = f.Length
	}
}
