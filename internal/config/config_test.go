package config

import (
	"testing"

	"tlc/internal/noc"
	"tlc/internal/tline"
)

func TestTable2TotalLines(t *testing.T) {
	// Table 2, column "Total Transmission Lines Used".
	want := map[Design]int{
		TLC:        2048,
		TLCOpt1000: 1008,
		TLCOpt500:  512,
		TLCOpt350:  352,
	}
	for d, lines := range want {
		if got := TLCFor(d).TotalLines(); got != lines {
			t.Errorf("%v total lines %d, want %d", d, got, lines)
		}
	}
}

func TestTable2BankCounts(t *testing.T) {
	for _, tc := range []struct {
		d             Design
		banks, perBlk int
		bankKB        int
		access        int
	}{
		{TLC, 32, 1, 512, 8},
		{TLCOpt1000, 16, 2, 1024, 10},
		{TLCOpt500, 16, 4, 1024, 10},
		{TLCOpt350, 16, 8, 1024, 10},
	} {
		p := TLCFor(tc.d)
		if p.Banks != tc.banks || p.BanksPerBlock != tc.perBlk ||
			p.BankBytes != tc.bankKB*1024 || int(p.BankAccess) != tc.access {
			t.Errorf("%v parameters %+v do not match Table 2", tc.d, p)
		}
	}
}

func TestTLCCapacityIs16MB(t *testing.T) {
	for _, d := range TLCFamily() {
		p := TLCFor(d)
		if p.Banks*p.BankBytes != 16*1024*1024 {
			t.Errorf("%v capacity %d bytes, want 16 MB", d, p.Banks*p.BankBytes)
		}
	}
}

func TestLinkBudgetsFitLineCounts(t *testing.T) {
	// The down+up split per pair must not exceed the pair's line budget.
	for _, d := range TLCFamily() {
		p := TLCFor(d)
		if p.DownBits+p.UpBits > p.LinesPerPair {
			t.Errorf("%v link split %d+%d exceeds %d lines per pair",
				d, p.DownBits, p.UpBits, p.LinesPerPair)
		}
	}
}

func TestGroups(t *testing.T) {
	if TLCFor(TLC).Groups() != 32 {
		t.Fatal("base TLC should have 32 single-bank groups")
	}
	if TLCFor(TLCOpt350).Groups() != 2 {
		t.Fatal("TLCopt350 stripes across 8 of 16 banks: 2 groups")
	}
}

func TestNUCACapacities(t *testing.T) {
	s := NUCAFor(SNUCA2)
	if s.Banks*s.BankBytes != 16*1024*1024 || s.Banks != 32 {
		t.Fatalf("SNUCA2 storage %+v does not match Table 2", s)
	}
	d := NUCAFor(DNUCA)
	if d.Banks*d.BankBytes != 16*1024*1024 || d.Banks != 256 {
		t.Fatalf("DNUCA storage %+v does not match Table 2", d)
	}
	if d.BankSets != 16 {
		t.Fatalf("DNUCA bank sets %d, want 16", d.BankSets)
	}
	// Aggregate associativity: 16 banks per set x 2 ways = 32 ("+30-way").
	if got := d.Banks / d.BankSets * d.BankAssoc; got != 32 {
		t.Fatalf("DNUCA aggregate associativity %d, want 32", got)
	}
}

func TestNUCAMeshLatencyRanges(t *testing.T) {
	// Table 2 uncontended latency: SNUCA2 9-32, DNUCA 3-47. The mesh
	// round trip plus bank access must land on those ranges.
	s := NUCAFor(SNUCA2)
	sm := noc.New(s.Mesh)
	min, max := ^uint64(0), uint64(0)
	for c := 0; c < s.Mesh.Cols; c++ {
		for r := 0; r < s.Mesh.Rows; r++ {
			lat := uint64(s.BankAccess + sm.UncontendedRoundTrip(c, r))
			if lat < min {
				min = lat
			}
			if lat > max {
				max = lat
			}
		}
	}
	if min != 9 || max != 32 {
		t.Fatalf("SNUCA2 uncontended range %d-%d, want 9-32", min, max)
	}

	d := NUCAFor(DNUCA)
	dm := noc.New(d.Mesh)
	min, max = ^uint64(0), 0
	for c := 0; c < d.Mesh.Cols; c++ {
		for r := 0; r < d.Mesh.Rows; r++ {
			lat := uint64(d.BankAccess + dm.UncontendedRoundTrip(c, r))
			if lat < min {
				min = lat
			}
			if lat > max {
				max = lat
			}
		}
	}
	if min != 3 || max != 47 {
		t.Fatalf("DNUCA uncontended range %d-%d, want 3-47", min, max)
	}
}

func TestLinkGeometryOrdering(t *testing.T) {
	// Nearer pairs use the shorter Table 1 lines.
	near := LinkGeometry(0, 16)
	mid := LinkGeometry(8, 16)
	far := LinkGeometry(15, 16)
	if near.LengthCM != 0.9 || mid.LengthCM != 1.1 || far.LengthCM != 1.3 {
		t.Fatalf("geometry assignment %v/%v/%v cm, want 0.9/1.1/1.3",
			near.LengthCM, mid.LengthCM, far.LengthCM)
	}
	// Every assigned geometry must pass signal-integrity acceptance.
	for pr := 0; pr < 16; pr++ {
		if !tline.Analyze(LinkGeometry(pr, 16)).OK {
			t.Errorf("pair %d geometry fails signal integrity", pr)
		}
	}
}

func TestDesignStrings(t *testing.T) {
	names := map[Design]string{
		SNUCA2: "SNUCA2", DNUCA: "DNUCA", TLC: "TLC",
		TLCOpt1000: "TLCopt1000", TLCOpt500: "TLCopt500", TLCOpt350: "TLCopt350",
	}
	for d, want := range names {
		if d.String() != want {
			t.Errorf("design %d prints %q, want %q", int(d), d.String(), want)
		}
	}
	if Design(99).String() != "Design(99)" {
		t.Error("unknown design should format numerically")
	}
}

func TestAllDesignsComplete(t *testing.T) {
	if len(AllDesigns()) != 6 {
		t.Fatal("AllDesigns should list the six Table 2 designs")
	}
	if len(TLCFamily()) != 4 {
		t.Fatal("TLCFamily should list four designs")
	}
}

func TestDefaultSystemMatchesTable3(t *testing.T) {
	s := DefaultSystem()
	if s.L1Bytes != 64*1024 || s.L1Assoc != 2 || s.L1Latency != 3 {
		t.Fatal("L1 parameters do not match Table 3")
	}
	if s.L2Bytes != 16*1024*1024 || s.L2Assoc != 4 {
		t.Fatal("L2 parameters do not match Table 3")
	}
	if s.MemoryLatency != 300 || s.MaxOutstanding != 8 {
		t.Fatal("memory parameters do not match Table 3")
	}
	if s.ROBEntries != 128 || s.SchedulerEntries != 64 || s.FetchWidth != 4 || s.PipelineStages != 30 {
		t.Fatal("core parameters do not match Table 3")
	}
}

func TestTLCForPanicsOnNUCA(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("TLCFor(DNUCA) did not panic")
		}
	}()
	TLCFor(DNUCA)
}

func TestNUCAForPanicsOnTLC(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NUCAFor(TLC) did not panic")
		}
	}()
	NUCAFor(TLC)
}
