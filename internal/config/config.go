// Package config holds the paper's design and system parameter tables as
// code: the six cache designs of Table 2, the transmission-line geometries
// of Table 1, the simulated machine of Table 3, and the mesh floorplans
// behind the NUCA latency ranges.
package config

import (
	"fmt"

	"tlc/internal/noc"
	"tlc/internal/sim"
	"tlc/internal/tline"
)

// Design identifies one of the six evaluated cache designs (Table 2).
type Design int

const (
	SNUCA2 Design = iota
	DNUCA
	TLC
	TLCOpt1000
	TLCOpt500
	TLCOpt350
)

// AllDesigns lists every design in Table 2 order.
func AllDesigns() []Design {
	return []Design{TLC, TLCOpt1000, TLCOpt500, TLCOpt350, SNUCA2, DNUCA}
}

// TLCFamily lists the four transmission-line designs (Figures 7-8).
func TLCFamily() []Design {
	return []Design{TLC, TLCOpt1000, TLCOpt500, TLCOpt350}
}

func (d Design) String() string {
	switch d {
	case SNUCA2:
		return "SNUCA2"
	case DNUCA:
		return "DNUCA"
	case TLC:
		return "TLC"
	case TLCOpt1000:
		return "TLCopt1000"
	case TLCOpt500:
		return "TLCopt500"
	case TLCOpt350:
		return "TLCopt350"
	default:
		return fmt.Sprintf("Design(%d)", int(d))
	}
}

// System holds the Table 3 machine parameters shared by every run.
type System struct {
	// L1Bytes, L1Assoc, L1Latency describe each split L1 (I and D).
	L1Bytes   int
	L1Assoc   int
	L1Latency sim.Time
	// L2Bytes is the unified L2 capacity.
	L2Bytes int
	// L2Assoc is the per-set associativity of the TLC/SNUCA designs.
	L2Assoc int
	// MemoryLatency is the flat DRAM access latency.
	MemoryLatency sim.Time
	// MaxOutstanding bounds in-flight memory requests (MSHRs).
	MaxOutstanding int
	// ROBEntries, SchedulerEntries, FetchWidth, PipelineStages describe
	// the dynamically scheduled core.
	ROBEntries, SchedulerEntries, FetchWidth, PipelineStages int
}

// DefaultSystem is the simulated machine of Table 3.
func DefaultSystem() System {
	return System{
		L1Bytes:          64 * 1024,
		L1Assoc:          2,
		L1Latency:        3,
		L2Bytes:          16 * 1024 * 1024,
		L2Assoc:          4,
		MemoryLatency:    300,
		MaxOutstanding:   8,
		ROBEntries:       128,
		SchedulerEntries: 64,
		FetchWidth:       4,
		PipelineStages:   30,
	}
}

// TLCParams describes one member of the TLC family (Table 2 plus the link
// widths derived from its transmission-line budget).
type TLCParams struct {
	Design Design
	// Banks is the number of storage banks.
	Banks int
	// BanksPerBlock is how many banks one 64-byte block is striped across.
	BanksPerBlock int
	// BankBytes is the per-bank capacity.
	BankBytes int
	// BankAccess is the ECACTI bank access latency, cycles.
	BankAccess sim.Time
	// LinesPerPair is the transmission-line count shared by a bank pair.
	LinesPerPair int
	// DownBits / UpBits split each pair's lines into the request
	// (controller->banks) and response (banks->controller) links.
	DownBits, UpBits int
	// TLCycles is the one-way transmission-line flight+interface latency.
	TLCycles sim.Time
	// CtrlWireMax is the worst-case conventional-wire delay inside the
	// cache controller, from the transmission-line landing point to the
	// controller center (up to 3 cycles for the base design). Per-pair
	// values are spread evenly across [0, CtrlWireMax].
	CtrlWireMax sim.Time
	// PartialTagInBank marks the optimized designs, which ship only a
	// 6-bit partial tag to the banks and resolve full tags at the
	// controller.
	PartialTagInBank bool
}

// TotalLines reports the design's total transmission-line count (Table 2).
func (p TLCParams) TotalLines() int { return p.LinesPerPair * p.Banks / 2 }

// Pairs reports the number of bank pairs.
func (p TLCParams) Pairs() int { return p.Banks / 2 }

// Groups reports the number of independent block groups: blocks are striped
// across BanksPerBlock banks, so Banks/BanksPerBlock groups each hold
// complete blocks.
func (p TLCParams) Groups() int { return p.Banks / p.BanksPerBlock }

// TLCFor returns the Table 2 parameters of a TLC-family design.
func TLCFor(d Design) TLCParams {
	switch d {
	case TLC:
		// 32 x 512 KB banks; each pair shares two 8-byte unidirectional
		// links (64 down + 64 up = 128 lines); uncontended 10-16 cycles:
		// 8 (bank) + 2 (TL each way) + 0..6 (controller wires, 0-3 per
		// direction by landing position).
		return TLCParams{
			Design: TLC, Banks: 32, BanksPerBlock: 1, BankBytes: 512 * 1024,
			BankAccess: 8, LinesPerPair: 128, DownBits: 64, UpBits: 64,
			TLCycles: 1, CtrlWireMax: 3,
		}
	case TLCOpt1000:
		// 16 x 1 MB banks, blocks striped across the 2 banks of a pair;
		// 126 lines per pair: 30-bit request link (set index + partial
		// tag + command), 96-bit response link shared by the pair.
		// Uncontended 12-13: 10 (bank) + 2 (TL) + 0..1 (controller).
		return TLCParams{
			Design: TLCOpt1000, Banks: 16, BanksPerBlock: 2, BankBytes: 1024 * 1024,
			BankAccess: 10, LinesPerPair: 126, DownBits: 30, UpBits: 96,
			TLCycles: 1, CtrlWireMax: 1, PartialTagInBank: true,
		}
	case TLCOpt500:
		// Blocks striped across 4 banks (2 pairs); 64 lines per pair:
		// 16 down + 48 up. Uncontended 12 flat.
		return TLCParams{
			Design: TLCOpt500, Banks: 16, BanksPerBlock: 4, BankBytes: 1024 * 1024,
			BankAccess: 10, LinesPerPair: 64, DownBits: 16, UpBits: 48,
			TLCycles: 1, CtrlWireMax: 0, PartialTagInBank: true,
		}
	case TLCOpt350:
		// Blocks striped across 8 banks (4 pairs); 44 lines per pair:
		// 12 down + 32 up. Uncontended 12 flat.
		return TLCParams{
			Design: TLCOpt350, Banks: 16, BanksPerBlock: 8, BankBytes: 1024 * 1024,
			BankAccess: 10, LinesPerPair: 44, DownBits: 12, UpBits: 32,
			TLCycles: 1, CtrlWireMax: 0, PartialTagInBank: true,
		}
	default:
		panic(fmt.Sprintf("config: %v is not a TLC-family design", d))
	}
}

// LinkGeometry maps a bank-pair index to its Table 1 transmission-line
// geometry: pairs land on the controller in order of distance, so the
// nearest quarter uses the 0.9 cm lines, the middle half 1.1 cm, and the
// farthest quarter 1.3 cm.
func LinkGeometry(pair, pairs int) tline.Geometry {
	g := tline.Table1()
	switch {
	case pair < pairs/4:
		return g[0]
	case pair < 3*pairs/4:
		return g[1]
	default:
		return g[2]
	}
}

// NUCAParams describes one NUCA design: bank organization plus mesh
// floorplan.
type NUCAParams struct {
	Design Design
	// Banks, BankBytes, BankAssoc, BankAccess describe the storage.
	Banks      int
	BankBytes  int
	BankAssoc  int
	BankAccess sim.Time
	// Mesh is the interconnect floorplan.
	Mesh noc.Config
	// BankSets is the number of DNUCA bank sets (columns); zero for the
	// static design.
	BankSets int
	// PTagLatency is the DNUCA controller partial-tag access time.
	PTagLatency sim.Time
}

// NUCAFor returns the parameters of a NUCA design.
//
// The floorplans are arranged so the uncontended latency ranges land on
// Table 2: SNUCA2 9-32 cycles (8-cycle banks, round-trip network 1-24 over
// a 4x8 grid of 512 KB banks with 1.5-cycle-tall rows), DNUCA 3-47 cycles
// (3-cycle banks, round-trip network 0-44 over a 16x16 grid of 64 KB
// banks).
func NUCAFor(d Design) NUCAParams {
	switch d {
	case SNUCA2:
		cols := 4
		rows := 8
		req := make([]sim.Time, rows)
		resp := make([]sim.Time, rows)
		for r := 0; r < rows; r++ {
			// 1.5 cycles per 512 KB bank pitch: alternate 2/1 on the
			// request path and 1/2 on the response path so the round trip
			// sums to exactly 3 per row.
			if r%2 == 0 {
				req[r], resp[r] = 2, 1
			} else {
				req[r], resp[r] = 1, 2
			}
		}
		return NUCAParams{
			Design: SNUCA2, Banks: 32, BankBytes: 512 * 1024, BankAssoc: 4, BankAccess: 8,
			Mesh: noc.Config{
				Cols: cols, Rows: rows,
				ColDist:     []int{1, 0, 0, 1},
				SpineSegLat: 1,
				VertReqLat:  req, VertRespLat: resp,
				IngressLat: 1,
				FlitBytes:  16,
				SpineSegMM: 1.6, VertSegMM: 1.6,
			},
		}
	case DNUCA:
		cols := 16
		rows := 16
		req := make([]sim.Time, rows)
		resp := make([]sim.Time, rows)
		for r := 0; r < rows; r++ {
			req[r], resp[r] = 1, 1
		}
		dist := make([]int, cols)
		for c := 0; c < cols; c++ {
			d := c - 8
			if c < 8 {
				d = 7 - c
			}
			dist[c] = d
		}
		return NUCAParams{
			Design: DNUCA, Banks: 256, BankBytes: 64 * 1024, BankAssoc: 2, BankAccess: 3,
			Mesh: noc.Config{
				Cols: cols, Rows: rows,
				ColDist:     dist,
				SpineSegLat: 1,
				VertReqLat:  req, VertRespLat: resp,
				IngressLat: 0,
				FlitBytes:  16,
				SpineSegMM: 0.6, VertSegMM: 0.6,
			},
			BankSets:    cols,
			PTagLatency: 4,
		}
	default:
		panic(fmt.Sprintf("config: %v is not a NUCA design", d))
	}
}
