package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := New()
	if e.Now() != 0 {
		t.Fatalf("new engine at cycle %d, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("new engine has %d pending events, want 0", e.Pending())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := New()
	var order []Time
	for _, at := range []Time{30, 10, 20, 5, 25} {
		at := at
		e.At(at, func() { order = append(order, at) })
	}
	e.Run()
	want := []Time{5, 10, 20, 25, 30}
	for i, at := range want {
		if order[i] != at {
			t.Fatalf("fire order %v, want %v", order, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("clock at %d after run, want 30", e.Now())
	}
}

func TestSameCycleEventsFIFO(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func() { order = append(order, i) })
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-cycle order %v not FIFO", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := New()
	var fired Time
	e.At(10, func() {
		e.After(5, func() { fired = e.Now() })
	})
	e.Run()
	if fired != 15 {
		t.Fatalf("After(5) from cycle 10 fired at %d, want 15", fired)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestRunUntilLeavesLaterEventsQueued(t *testing.T) {
	e := New()
	fired := map[Time]bool{}
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		e.At(at, func() { fired[at] = true })
	}
	e.RunUntil(12)
	if !fired[5] || !fired[10] {
		t.Fatal("events at or before the limit did not fire")
	}
	if fired[15] || fired[20] {
		t.Fatal("events after the limit fired")
	}
	if e.Pending() != 2 {
		t.Fatalf("%d events pending, want 2", e.Pending())
	}
	if e.Now() != 12 {
		t.Fatalf("clock at %d, want advanced to limit 12", e.Now())
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := New()
	count := 0
	for i := Time(1); i <= 10; i++ {
		e.At(i, func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("fired %d events after Stop, want 3", count)
	}
	if e.Pending() != 7 {
		t.Fatalf("%d pending after Stop, want 7", e.Pending())
	}
}

func TestNextEventTime(t *testing.T) {
	e := New()
	if _, ok := e.NextEventTime(); ok {
		t.Fatal("empty engine reported a next event")
	}
	e.At(42, func() {})
	at, ok := e.NextEventTime()
	if !ok || at != 42 {
		t.Fatalf("next event (%d,%v), want (42,true)", at, ok)
	}
}

func TestAdvanceTo(t *testing.T) {
	e := New()
	e.AdvanceTo(100)
	if e.Now() != 100 {
		t.Fatalf("clock at %d, want 100", e.Now())
	}
	e.At(150, func() {})
	defer func() {
		if recover() == nil {
			t.Error("AdvanceTo past a pending event did not panic")
		}
	}()
	e.AdvanceTo(200)
}

func TestAdvanceToPastPanics(t *testing.T) {
	e := New()
	e.AdvanceTo(10)
	defer func() {
		if recover() == nil {
			t.Error("AdvanceTo into the past did not panic")
		}
	}()
	e.AdvanceTo(5)
}

// Property: for any random schedule, events fire in nondecreasing time order
// and the engine visits exactly the scheduled set.
func TestQuickEventOrdering(t *testing.T) {
	f := func(times []uint16) bool {
		e := New()
		var fired []Time
		for _, raw := range times {
			at := Time(raw)
			e.At(at, func() { fired = append(fired, at) })
		}
		e.Run()
		if len(fired) != len(times) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		want := make([]Time, len(times))
		for i, raw := range times {
			want[i] = Time(raw)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestEngineSchedulingDoesNotAllocate pins the typed min-heap's allocation
// behaviour: once the queue's backing array has grown to its steady-state
// size, At and Step must not allocate (container/heap boxed one item per
// Push/Pop through its interface{} methods).
func TestEngineSchedulingDoesNotAllocate(t *testing.T) {
	e := New()
	fn := func() {}
	// Grow the queue to steady-state capacity.
	for i := 0; i < 64; i++ {
		e.At(e.Now()+Time(i)+1, fn)
	}
	for e.Step() {
	}
	if allocs := testing.AllocsPerRun(200, func() {
		now := e.Now()
		for i := 0; i < 32; i++ {
			e.At(now+Time(i)+1, fn)
		}
		for e.Step() {
		}
	}); allocs != 0 {
		t.Fatalf("At/Step allocated %.1f times per schedule-and-drain cycle, want 0", allocs)
	}
}

// TestEngineStepReleasesCallback verifies pop clears the vacated tail slot:
// a drained queue must not pin the last event's closure in its backing array.
func TestEngineStepReleasesCallback(t *testing.T) {
	e := New()
	e.At(1, func() {})
	e.Step()
	q := e.queue[:cap(e.queue)]
	for i := range q {
		if q[i].fn != nil {
			t.Fatal("drained queue still references an event callback")
		}
	}
}

func TestResourceBackToBackReservations(t *testing.T) {
	var r Resource
	if got := r.Reserve(0, 4); got != 0 {
		t.Fatalf("first reservation starts at %d, want 0", got)
	}
	if got := r.Reserve(0, 4); got != 4 {
		t.Fatalf("second reservation starts at %d, want 4", got)
	}
	if got := r.Reserve(10, 4); got != 10 {
		t.Fatalf("reservation after idle gap starts at %d, want 10", got)
	}
	if r.BusyCycles() != 12 {
		t.Fatalf("busy cycles %d, want 12", r.BusyCycles())
	}
	if r.Waits() != 1 {
		t.Fatalf("waits %d, want 1", r.Waits())
	}
	if r.WaitCycles() != 4 {
		t.Fatalf("wait cycles %d, want 4", r.WaitCycles())
	}
}

func TestResourceUtilization(t *testing.T) {
	var r Resource
	r.Reserve(0, 10)
	r.Reserve(50, 10)
	if got := r.Utilization(100); got != 0.2 {
		t.Fatalf("utilization %.3f, want 0.200", got)
	}
	if got := r.Utilization(0); got != 0 {
		t.Fatalf("utilization over empty window %.3f, want 0", got)
	}
	// Busy beyond the window clamps to 1.
	var r2 Resource
	r2.Reserve(0, 100)
	if got := r2.Utilization(10); got != 1 {
		t.Fatalf("clamped utilization %.3f, want 1", got)
	}
}

func TestResourceReset(t *testing.T) {
	var r Resource
	r.Reserve(5, 10)
	r.Reset()
	if r.BusyCycles() != 0 || r.FreeAt() != 0 || r.Reservations() != 0 {
		t.Fatal("Reset did not clear resource state")
	}
}

// Property: a resource never overlaps reservations, service never starts
// before the request arrives, and busy time equals the sum of durations.
func TestQuickResourceNoOverlap(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var r Resource
		var at Time
		var lastEnd Time
		var sum Time
		for i := 0; i < int(n%40)+1; i++ {
			at += Time(rng.Intn(8))
			dur := Time(rng.Intn(6) + 1)
			start := r.Reserve(at, dur)
			if start < at || start < lastEnd {
				return false
			}
			lastEnd = start + dur
			sum += dur
		}
		return r.BusyCycles() == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestResourceGapFilling(t *testing.T) {
	// A far-future booking (a memory fill) must not block present
	// traffic: the present request schedules into the gap.
	var r Resource
	if got := r.Reserve(300, 10); got != 300 {
		t.Fatalf("future booking starts at %d, want 300", got)
	}
	if got := r.Reserve(5, 10); got != 5 {
		t.Fatalf("present request got %d, want the gap at 5", got)
	}
	// A request that cannot fit before the future booking lands after it.
	if got := r.Reserve(295, 10); got != 310 {
		t.Fatalf("overlapping request got %d, want 310 (after the booking)", got)
	}
	if r.BusyCycles() != 30 {
		t.Fatalf("busy cycles %d, want 30", r.BusyCycles())
	}
}

func TestResourceGapMustFitWholeDuration(t *testing.T) {
	var r Resource
	r.Reserve(20, 10) // [20,30)
	// A 15-cycle job at 10 cannot fit the 10-cycle gap: it goes after.
	if got := r.Reserve(10, 15); got != 30 {
		t.Fatalf("oversized job got %d, want 30", got)
	}
	// A 10-cycle job exactly fits the gap [10,20).
	if got := r.Reserve(10, 10); got != 10 {
		t.Fatalf("exact-fit job got %d, want 10", got)
	}
}

func TestResourcePruningKeepsFutureBookings(t *testing.T) {
	var r Resource
	r.Reserve(1000, 10) // far future
	for at := Time(0); at < 50; at += 10 {
		r.Reserve(at, 10) // present traffic, pruned as time passes
	}
	// The future booking must still be honoured.
	if got := r.Reserve(1000, 10); got != 1010 {
		t.Fatalf("future booking lost: new request got %d, want 1010", got)
	}
}

func TestResourceZeroDuration(t *testing.T) {
	var r Resource
	if got := r.Reserve(7, 0); got != 7 {
		t.Fatalf("zero-duration reservation got %d, want 7", got)
	}
	if r.BusyCycles() != 0 {
		t.Fatal("zero-duration reservation should not accrue busy cycles")
	}
}
