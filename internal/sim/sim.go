// Package sim provides the discrete-event simulation engine that underlies
// every timing model in this repository. The engine advances a cycle-granular
// clock (one cycle = one 10 GHz processor clock at the paper's 45 nm design
// point) and dispatches events in deterministic order: events scheduled for
// the same cycle fire in the order they were scheduled, so simulations are
// reproducible run-to-run regardless of map iteration or goroutine timing.
package sim

import (
	"fmt"
)

// Time is a simulation timestamp in processor cycles.
type Time uint64

// Event is a callback scheduled to run at a particular cycle.
type Event func()

// item is a scheduled event inside the queue.
type item struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among events at the same cycle
	fn  Event
}

// eventHeap is a hand-rolled binary min-heap of items ordered by (at, seq).
// container/heap's interface{}-shaped Push/Pop boxed one item per scheduled
// event; the typed heap keeps the scheduling hot path allocation-free once
// the backing array reaches steady-state capacity.
type eventHeap []item

// less orders the heap by timestamp, then by scheduling order (FIFO ties).
func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

// push adds an item and restores the heap invariant by sifting it up.
func (h *eventHeap) push(it item) {
	*h = append(*h, it)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

// pop removes and returns the minimum item, sifting the displaced tail down.
func (h *eventHeap) pop() item {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = item{} // release the callback so the backing array does not pin it
	*h = q[:n]
	q = q[:n]
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		min := left
		if right := left + 1; right < n && q.less(right, left) {
			min = right
		}
		if !q.less(min, i) {
			break
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
	return top
}

// Engine is a deterministic discrete-event simulator.
// The zero value is ready to use.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	stopped bool
}

// New returns an empty engine at cycle 0.
func New() *Engine { return &Engine{} }

// Now reports the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of scheduled, not-yet-fired events.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at the absolute cycle t.
// Scheduling in the past panics: it indicates a model bug, and silently
// reordering time would corrupt every downstream statistic.
func (e *Engine) At(t Time, fn Event) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at cycle %d, before now (%d)", t, e.now))
	}
	e.seq++
	e.queue.push(item{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Time, fn Event) { e.At(e.now+d, fn) }

// Step fires the single earliest pending event, advancing the clock to its
// timestamp. It reports false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	it := e.queue.pop()
	e.now = it.at
	it.fn()
	return true
}

// Run fires events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil fires events up to and including cycle limit. Events scheduled
// after limit remain queued; the clock is left at the last fired event (or
// advanced to limit if nothing fired at or before it).
func (e *Engine) RunUntil(limit Time) {
	e.stopped = false
	for !e.stopped && len(e.queue) > 0 && e.queue[0].at <= limit {
		e.Step()
	}
	if e.now < limit {
		e.now = limit
	}
}

// Stop makes the innermost Run or RunUntil return after the current event.
func (e *Engine) Stop() { e.stopped = true }

// NextEventTime reports the timestamp of the earliest pending event.
// The second result is false when no events are pending.
func (e *Engine) NextEventTime() (Time, bool) {
	if len(e.queue) == 0 {
		return 0, false
	}
	return e.queue[0].at, true
}

// AdvanceTo moves the clock forward to t without firing events.
// It panics if events are pending before t (they would be skipped) or if t
// is in the past. It is used by cycle-stepped components (the CPU core) to
// fast-forward across idle stretches.
func (e *Engine) AdvanceTo(t Time) {
	if t < e.now {
		panic(fmt.Sprintf("sim: AdvanceTo(%d) is before now (%d)", t, e.now))
	}
	if len(e.queue) > 0 && e.queue[0].at < t {
		panic(fmt.Sprintf("sim: AdvanceTo(%d) would skip event at %d", t, e.queue[0].at))
	}
	e.now = t
}
