package sim

// Resource models a single-server resource: a bank port, a transmission-
// line link, or a mesh link segment. A reservation occupies the resource
// for a fixed number of cycles; overlapping requests queue.
//
// The resource keeps a calendar of future busy intervals rather than a
// single free-at horizon, so traffic booked in the future (a memory fill
// arriving 300 cycles after its miss resolves) does not block present
// traffic: a present request schedules into the gap. Intervals wholly in
// the past relative to the latest request are pruned; a rare
// earlier-timestamped reservation may therefore see slightly less
// contention than it should, which is the documented approximation.
//
// Resource tracks busy cycles so callers can compute utilization, the
// metric behind Figure 7.
type Resource struct {
	// intervals holds future/active busy spans, sorted by start,
	// non-overlapping.
	intervals []span
	// busy accumulates total occupied cycles (including pruned spans).
	busy Time
	// waits counts reservations that could not start at their request
	// time.
	waits uint64
	// waitCycles accumulates total queuing delay.
	waitCycles Time
	// reservations counts all reservations.
	reservations uint64
	// maxEnd is the latest booked end, for FreeAt.
	maxEnd Time
}

type span struct {
	start, end Time
}

// Reserve books the resource for dur cycles starting no earlier than `at`,
// in the earliest gap that fits. It returns the cycle service starts.
func (r *Resource) Reserve(at, dur Time) Time {
	r.reservations++
	r.busy += dur
	if dur == 0 {
		return at
	}
	// Prune spans that end at or before `at`: they cannot conflict with
	// this or (in the common monotone-time case) any later reservation.
	// Compact in place rather than re-slicing forward so the backing
	// array's capacity is retained — the calendar reaches a steady-state
	// size and stops allocating.
	i := 0
	for i < len(r.intervals) && r.intervals[i].end <= at {
		i++
	}
	if i > 0 {
		n := copy(r.intervals, r.intervals[i:])
		r.intervals = r.intervals[:n]
	}
	// Find the earliest gap of length dur starting at or after `at`.
	start := at
	insert := len(r.intervals)
	for j, s := range r.intervals {
		if start+dur <= s.start {
			insert = j
			break
		}
		if s.end > start {
			start = s.end
		}
	}
	r.intervals = append(r.intervals, span{})
	copy(r.intervals[insert+1:], r.intervals[insert:])
	r.intervals[insert] = span{start: start, end: start + dur}
	if start+dur > r.maxEnd {
		r.maxEnd = start + dur
	}
	if start > at {
		r.waits++
		r.waitCycles += start - at
	}
	return start
}

// FreeAt reports the end of the latest booked interval.
func (r *Resource) FreeAt() Time { return r.maxEnd }

// BusyCycles reports the total cycles ever reserved.
func (r *Resource) BusyCycles() Time { return r.busy }

// Reservations reports the number of reservations made.
func (r *Resource) Reservations() uint64 { return r.reservations }

// Waits reports how many reservations queued behind earlier ones.
func (r *Resource) Waits() uint64 { return r.waits }

// WaitCycles reports the total cycles reservations spent queued.
func (r *Resource) WaitCycles() Time { return r.waitCycles }

// Utilization reports busy cycles as a fraction of the elapsed window
// [0, now]. It returns 0 for an empty window and clamps at 1 (a
// reservation extending past `now` can push occupancy beyond the window).
func (r *Resource) Utilization(now Time) float64 {
	if now == 0 {
		return 0
	}
	u := float64(r.busy) / float64(now)
	if u > 1 {
		u = 1
	}
	return u
}

// Reset clears all bookkeeping, returning the resource to idle at cycle 0.
func (r *Resource) Reset() { *r = Resource{} }
