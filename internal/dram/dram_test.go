package dram

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tlc/internal/mem"
	"tlc/internal/sim"
)

func TestRowHitFasterThanMiss(t *testing.T) {
	m := New(Default())
	b := mem.Block(0x1234)
	first := m.Fetch(0, b) // closed bank: activate + CAS
	// Re-fetch the same block later (within the refresh interval, so the
	// row is still open).
	second := m.Fetch(10000, b) - 10000
	if second >= first {
		t.Fatalf("open-row access (%d) not faster than activate (%d)", second, first)
	}
	if m.RowHits != 1 || m.RowMisses != 1 {
		t.Fatalf("outcome counts hits=%d misses=%d, want 1/1", m.RowHits, m.RowMisses)
	}
}

func TestRowConflictSlowest(t *testing.T) {
	m := New(Default())
	a := mem.Block(0)
	// A block in the same bank but a different row: same low bits, far
	// apart. Find one by search.
	chA, bkA, rowA := m.route(a)
	var b mem.Block
	for cand := mem.Block(1); ; cand++ {
		ch, bk, row := m.route(cand)
		if ch == chA && bk == bkA && row != rowA {
			b = cand
			break
		}
	}
	m.Fetch(0, a)
	conflict := m.Fetch(10000, b) - 10000
	m2 := New(Default())
	miss := m2.Fetch(0, b)
	if conflict <= miss {
		t.Fatalf("row conflict (%d) should exceed a plain activate (%d)", conflict, miss)
	}
	if m.RowConflicts != 1 {
		t.Fatalf("conflicts %d, want 1", m.RowConflicts)
	}
}

func TestMeanNearTable3At50PctHits(t *testing.T) {
	// The default config targets the paper's 300-cycle mean at a typical
	// open-page mix: alternate hits and activates and check the average.
	m := New(Default())
	var total sim.Time
	const n = 1000
	at := sim.Time(0)
	for i := 0; i < n; i++ {
		b := mem.Block(i / 2 * 7) // pairs: second access hits the row
		done := m.Fetch(at, b)
		total += done - at
		at = done + 1000 // idle: no queueing
	}
	mean := float64(total) / n
	if mean < 240 || mean > 360 {
		t.Fatalf("idle-load mean %0.f cycles, want near the Table 3 300", mean)
	}
}

func TestBankQueueing(t *testing.T) {
	m := New(Default())
	b := mem.Block(42)
	_, bk, _ := m.route(b)
	_ = bk
	first := m.Fetch(0, b)
	// A simultaneous access to the same bank queues.
	var sameBank mem.Block
	chA, bkA, _ := m.route(b)
	for cand := mem.Block(1); ; cand++ {
		if ch, bk, _ := m.route(cand); ch == chA && bk == bkA && cand != b {
			sameBank = cand
			break
		}
	}
	second := m.Fetch(0, sameBank)
	if second <= first {
		t.Fatal("same-bank simultaneous accesses should serialize")
	}
}

func TestChannelParallelism(t *testing.T) {
	m := New(Default())
	// Accesses to different channels at the same instant should not
	// serialize on each other.
	var a, b mem.Block
	chA, _, _ := m.route(0)
	a = 0
	for cand := mem.Block(1); ; cand++ {
		if ch, _, _ := m.route(cand); ch != chA {
			b = cand
			break
		}
	}
	t1 := m.Fetch(0, a)
	t2 := m.Fetch(0, b)
	if t2-0 > t1+Default().Burst {
		t.Fatalf("cross-channel access serialized: %d vs %d", t2, t1)
	}
}

func TestSequentialStreamEnjoysOpenRows(t *testing.T) {
	m := New(Default())
	at := sim.Time(0)
	for i := 0; i < 4096; i++ {
		done := m.Fetch(at, mem.Block(i))
		at = done + 50
	}
	if m.RowHitRate() < 0.5 {
		t.Fatalf("sequential stream row-hit rate %.2f, want high open-page locality", m.RowHitRate())
	}
}

func TestGeometryValidation(t *testing.T) {
	bad := Default()
	bad.Channels = 3
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two geometry accepted")
		}
	}()
	New(bad)
}

// Property: completion is always after arrival plus the frontend, and
// repeated fetches never complete earlier than a prior fetch issued at the
// same or later time to the same bank.
func TestQuickFetchSane(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New(Default())
		at := sim.Time(0)
		for i := 0; i < 100; i++ {
			b := mem.Block(rng.Intn(1 << 20))
			done := m.Fetch(at, b)
			if done < at+Default().Frontend {
				return false
			}
			at += sim.Time(rng.Intn(200))
		}
		return m.Accesses == 100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRefreshBlocksTheBank(t *testing.T) {
	cfg := Default()
	cfg.RefreshInterval = 1000
	cfg.RefreshTime = 400
	m := New(cfg)
	b := mem.Block(7)
	m.Fetch(0, b) // opens the row, books refreshes through the lookahead
	if m.Refreshes == 0 {
		t.Fatal("no refresh windows booked")
	}
	// An access arriving inside a refresh window queues behind it: ask
	// right at the first refresh start.
	before := m.Fetch(900, b) - 900
	inside := m.Fetch(1050, b) - 1050
	if inside <= before {
		t.Fatalf("access during refresh (%d) should exceed one before it (%d)", inside, before)
	}
}

func TestRefreshClosesOpenRow(t *testing.T) {
	cfg := Default()
	cfg.RefreshInterval = 500
	cfg.RefreshTime = 100
	m := New(cfg)
	b := mem.Block(3)
	m.Fetch(0, b)
	// After several refresh intervals the row is closed again.
	m.Fetch(5000, b)
	if m.RowHits != 0 {
		t.Fatal("row survived refresh")
	}
}

func TestRefreshDisabled(t *testing.T) {
	cfg := Default()
	cfg.RefreshInterval = 0
	m := New(cfg)
	m.Fetch(0, mem.Block(1))
	m.Fetch(1e6, mem.Block(1))
	if m.Refreshes != 0 {
		t.Fatal("refresh booked while disabled")
	}
	if m.RowHits != 1 {
		t.Fatal("row should survive forever without refresh")
	}
}
