// Package dram is a banked main-memory model: channels, banks, row
// buffers, and bus occupancy, built on the same calendar resources as the
// on-chip models. The paper's evaluation uses a flat 300-cycle memory
// (Table 3); this model is the substrate extension that lets the harness
// ask how sensitive the cache comparison is to a real memory system —
// bank conflicts, open-page locality, and channel contention.
//
// Timing (10 GHz core cycles) roughly follows a 2003-era DDR part behind
// an on-chip controller: a row-buffer hit costs the frontend plus CAS and
// the data burst; a closed row adds activate (RCD); a conflicting open
// row adds precharge (RP) first. The defaults calibrate the mix to the
// paper's 300-cycle mean at low load.
package dram

import (
	"fmt"

	"tlc/internal/mem"
	"tlc/internal/metrics"
	"tlc/internal/sim"
)

// Config describes the memory system geometry and timing.
type Config struct {
	// Channels and BanksPerChannel give the parallelism.
	Channels, BanksPerChannel int
	// RowBlocks is the row-buffer size in 64-byte blocks (8 KB rows = 128).
	RowBlocks int
	// Frontend is the fixed on-chip controller + I/O latency per access.
	Frontend sim.Time
	// RCD, RP, CAS are activate, precharge, and column-access latencies.
	RCD, RP, CAS sim.Time
	// Burst is the data-bus occupancy of one 64-byte transfer.
	Burst sim.Time
	// RefreshInterval and RefreshTime model periodic refresh: every
	// RefreshInterval cycles each bank is unavailable for RefreshTime.
	// Zero interval disables refresh.
	RefreshInterval, RefreshTime sim.Time
}

// Default returns the standard configuration: mean latency ≈ 300 cycles
// at low load with a typical open-page hit rate.
func Default() Config {
	return Config{
		Channels:        2,
		BanksPerChannel: 8,
		RowBlocks:       128,
		Frontend:        70,
		RCD:             110,
		RP:              110,
		CAS:             120,
		Burst:           40,
		// 7.8 us tREFI / ~260 ns tRFC at 10 GHz core cycles.
		RefreshInterval: 78000,
		RefreshTime:     2600,
	}
}

func (c Config) validate() {
	if c.Channels <= 0 || c.BanksPerChannel <= 0 || c.RowBlocks <= 0 {
		panic(fmt.Sprintf("dram: bad geometry %+v", c))
	}
	if !mem.IsPow2(c.Channels) || !mem.IsPow2(c.BanksPerChannel) || !mem.IsPow2(c.RowBlocks) {
		panic("dram: geometry must be powers of two")
	}
}

// bank is one DRAM bank: a busy calendar plus the open row.
type bank struct {
	busy    sim.Resource
	openRow uint64
	hasOpen bool
	// refreshedTo is how far refresh reservations have been booked.
	refreshedTo sim.Time
}

// Memory is the banked model. It implements l2-style Fetch semantics:
// given an arrival time and block, it returns when the block's data is
// back at the cache controller.
type Memory struct {
	cfg   Config
	banks [][]*bank
	bus   []sim.Resource // per-channel data bus

	// Accesses, RowHits, RowMisses, RowConflicts count outcomes;
	// Refreshes counts booked refresh windows.
	Accesses, RowHits, RowMisses, RowConflicts, Refreshes uint64
}

// New builds the memory system.
func New(cfg Config) *Memory {
	cfg.validate()
	m := &Memory{cfg: cfg, bus: make([]sim.Resource, cfg.Channels)}
	for c := 0; c < cfg.Channels; c++ {
		row := make([]*bank, cfg.BanksPerChannel)
		for b := range row {
			row[b] = &bank{}
		}
		m.banks = append(m.banks, row)
	}
	return m
}

// RegisterMetrics publishes the memory system's counters under "dram.":
// the outcome tallies, the open-row hit-rate gauge, and the per-channel
// data-bus resources.
func (m *Memory) RegisterMetrics(r *metrics.Registry) {
	r.CounterFunc("dram.accesses", func() uint64 { return m.Accesses })
	r.CounterFunc("dram.rowhits", func() uint64 { return m.RowHits })
	r.CounterFunc("dram.rowmisses", func() uint64 { return m.RowMisses })
	r.CounterFunc("dram.rowconflicts", func() uint64 { return m.RowConflicts })
	r.CounterFunc("dram.refreshes", func() uint64 { return m.Refreshes })
	r.Gauge("dram.row_hit_rate", func(sim.Time) float64 { return m.RowHitRate() })
	for ch := range m.bus {
		r.Resource(fmt.Sprintf("dram.bus%d", ch), &m.bus[ch])
	}
}

// route maps a block to (channel, bank, row). Channel and bank interleave
// on hashed low bits so streams spread; the row is the block's high bits,
// so spatially adjacent blocks share an open row.
func (m *Memory) route(b mem.Block) (ch, bk int, row uint64) {
	chBits := mem.Log2(m.cfg.Channels)
	bkBits := mem.Log2(m.cfg.BanksPerChannel)
	ch = int(mem.FoldHash(uint64(b), chBits))
	bk = int(mem.FoldHash(uint64(b)>>uint(chBits), bkBits))
	row = uint64(b) / uint64(m.cfg.RowBlocks)
	return ch, bk, row
}

// Fetch performs one block read and returns the completion time.
func (m *Memory) Fetch(at sim.Time, b mem.Block) sim.Time {
	m.Accesses++
	ch, bk, row := m.route(b)
	bnk := m.banks[ch][bk]
	m.bookRefreshes(bnk, at)

	// Bank occupancy: the command sequence holds the bank.
	var access sim.Time
	switch {
	case bnk.hasOpen && bnk.openRow == row:
		m.RowHits++
		access = m.cfg.CAS
	case !bnk.hasOpen:
		m.RowMisses++
		access = m.cfg.RCD + m.cfg.CAS
	default:
		m.RowConflicts++
		access = m.cfg.RP + m.cfg.RCD + m.cfg.CAS
	}
	bnk.openRow, bnk.hasOpen = row, true

	start := bnk.busy.Reserve(at+m.cfg.Frontend, access)
	ready := start + access
	// The data burst occupies the channel bus.
	busStart := m.bus[ch].Reserve(ready, m.cfg.Burst)
	return busStart + m.cfg.Burst
}

// bookRefreshes lazily reserves the periodic refresh windows on a bank's
// calendar up to the current time (plus one interval of lookahead, so an
// in-flight access can still collide with the next refresh). A refresh
// closes the open row.
func (m *Memory) bookRefreshes(bnk *bank, at sim.Time) {
	if m.cfg.RefreshInterval == 0 {
		return
	}
	for bnk.refreshedTo <= at+m.cfg.RefreshInterval {
		next := bnk.refreshedTo + m.cfg.RefreshInterval
		bnk.busy.Reserve(next, m.cfg.RefreshTime)
		bnk.refreshedTo = next
		bnk.hasOpen = false
		m.Refreshes++
	}
}

// Write performs one block writeback: same bank/bus occupancy, but the
// caller does not wait, so only the reservations matter.
func (m *Memory) Write(at sim.Time, b mem.Block) {
	m.Fetch(at, b)
}

// RowHitRate reports the fraction of accesses that hit an open row.
func (m *Memory) RowHitRate() float64 {
	if m.Accesses == 0 {
		return 0
	}
	return float64(m.RowHits) / float64(m.Accesses)
}
