package machine

import (
	"tlc/internal/cpu"
	"tlc/internal/sim"
)

// quantum is the interleaving grain of the CMP event loop, in instructions
// per scheduling slice. It matches the cpu batch size, so a slice is one
// stream-batch fill; the min-clock scheduler keeps the cores' simulated
// clocks within roughly one slice of each other, which bounds how far the
// controller frontier can run ahead of a lagging core.
const quantum = 4096

// Machine runs N cores as peers: it owns the loop that a single cpu.Core's
// caller used to be, scheduling detailed execution across cores in
// min-clock order so the shared L2 sees an interleaving close to true
// parallel issue. It implements sample.Target, so sampled CMP runs reuse
// the interval math unchanged.
//
// A 1-core Machine built with a nil Shared layer degenerates to exactly
// the legacy path: Warm is one core.Warm call and each Interval is one
// RunFrom/Resume call, the same call sequence (hence bit-identical state
// and timing) as driving the core directly.
type Machine struct {
	cores   []*cpu.Core
	streams []cpu.Stream
	shared  *Shared

	clocks    []sim.Time
	remaining []uint64
	// inEpoch[i] marks that core i's timing epoch is open: its next
	// detailed quantum continues via Resume. Interval 0 clears the flags,
	// so each core's first quantum starts its epoch at cycle zero.
	inEpoch []bool
}

// New assembles a machine. shared must be non-nil exactly when there are
// two or more cores (the single-core machine bypasses the CMP layers
// entirely); the caller has already built each core over shared.Port(i)
// and called Attach.
func New(cores []*cpu.Core, streams []cpu.Stream, shared *Shared) *Machine {
	if len(cores) == 0 || len(cores) != len(streams) {
		panic("machine: need one stream per core")
	}
	if (len(cores) > 1) != (shared != nil) {
		panic("machine: Shared layer iff multi-core")
	}
	return &Machine{
		cores:     cores,
		streams:   streams,
		shared:    shared,
		clocks:    make([]sim.Time, len(cores)),
		remaining: make([]uint64, len(cores)),
		inEpoch:   make([]bool, len(cores)),
	}
}

// Cores reports the core count.
func (m *Machine) Cores() int { return len(m.cores) }

// Shared reports the shared-L2 layer (nil for a single-core machine).
func (m *Machine) Shared() *Shared { return m.shared }

// Clock reports the machine's current time: the latest core's clock.
func (m *Machine) Clock() sim.Time {
	var t sim.Time
	for _, c := range m.clocks {
		if c > t {
			t = c
		}
	}
	return t
}

// Warm advances every core's stream n instructions functionally, then
// reseeds the coherence directory from the resulting L1 contents — warm-up
// runs without coherence, so each warm stretch (initial or sampled-mode
// fast-forward) re-enters the coherent regime through SeedDirectory.
func (m *Machine) Warm(n uint64) {
	for i, c := range m.cores {
		c.Warm(m.streams[i], n)
		if c.CancelErr() != nil {
			return
		}
	}
	if m.shared != nil && n > 0 {
		m.shared.SeedDirectory()
	}
}

// Run times n instructions per core from a cold pipeline and returns the
// machine-wide result.
func (m *Machine) Run(n uint64) cpu.Result { return m.Interval(0, n) }

// Interval implements sample.Target: n detailed instructions per core.
// Interval 0 starts every core's timing epoch at cycle zero; later
// intervals resume the epochs, exactly as single-core sampling resumes its
// one core. The result aggregates all cores — Instructions and the L1/L2
// counters sum over cores, Cycles is the machine finish time (the latest
// core's clock), so per-interval CPI reads as machine cycles per per-core
// instruction.
func (m *Machine) Interval(i int, n uint64) cpu.Result {
	if i == 0 {
		for j := range m.inEpoch {
			m.inEpoch[j] = false
			m.clocks[j] = 0
		}
	}
	if len(m.cores) == 1 {
		// The single-core sequence, verbatim: one call per interval.
		var r cpu.Result
		if !m.inEpoch[0] {
			m.inEpoch[0] = true
			r = m.cores[0].RunFrom(m.streams[0], n, 0)
		} else {
			r = m.cores[0].Resume(m.streams[0], n)
		}
		m.clocks[0] = r.Cycles
		return r
	}
	return m.interleave(n)
}

// interleave is the CMP event loop: repeatedly run a quantum of detailed
// instructions on the core whose clock is furthest behind. Each core's own
// stream of L2 access times stays monotone (its epoch continues across
// quanta via Resume), and min-clock order keeps the interleaving the
// controller frontier sees close to a truly parallel schedule.
func (m *Machine) interleave(n uint64) cpu.Result {
	var agg cpu.Result
	for i := range m.remaining {
		m.remaining[i] = n
	}
	for {
		// Pick the laggard among cores with work left.
		pick := -1
		for i, rem := range m.remaining {
			if rem == 0 {
				continue
			}
			if pick < 0 || m.clocks[i] < m.clocks[pick] {
				pick = i
			}
		}
		if pick < 0 {
			break
		}
		q := m.remaining[pick]
		if q > quantum {
			q = quantum
		}
		var r cpu.Result
		if !m.inEpoch[pick] {
			m.inEpoch[pick] = true
			r = m.cores[pick].RunFrom(m.streams[pick], q, 0)
		} else {
			r = m.cores[pick].Resume(m.streams[pick], q)
		}
		if m.cores[pick].CancelErr() != nil {
			return agg
		}
		m.clocks[pick] = r.Cycles
		m.remaining[pick] -= q
		agg.Instructions += r.Instructions
		agg.L1DHits += r.L1DHits
		agg.L1DMisses += r.L1DMisses
		agg.L2Loads += r.L2Loads
		agg.L2Stores += r.L2Stores
	}
	agg.Cycles = m.Clock()
	return agg
}

// CancelErr reports the first core's cancellation error, if any run was
// aborted by the cooperative cancel hook.
func (m *Machine) CancelErr() error {
	for _, c := range m.cores {
		if err := c.CancelErr(); err != nil {
			return err
		}
	}
	return nil
}
