package machine

import (
	"reflect"
	"testing"

	"tlc/internal/config"
	"tlc/internal/cpu"
	"tlc/internal/mem"
	"tlc/internal/metrics"
	"tlc/internal/nuca"
	"tlc/internal/sim"
	"tlc/internal/workload"
)

// sliceStream replays a fixed instruction sequence, looping.
type sliceStream struct {
	ins []cpu.Instr
	pos int
}

func (s *sliceStream) Next() cpu.Instr {
	in := s.ins[s.pos%len(s.ins)]
	s.pos++
	return in
}

func load(b mem.Block) cpu.Instr  { return cpu.Instr{IsMem: true, Block: b} }
func store(b mem.Block) cpu.Instr { return cpu.Instr{IsMem: true, IsStore: true, Block: b} }

// buildCMP assembles an n-core machine over a fresh SNUCA design with the
// given per-core streams.
func buildCMP(t *testing.T, n int, streams []cpu.Stream) (*Machine, *Shared, *metrics.Registry) {
	t.Helper()
	sys := config.DefaultSystem()
	inst := nuca.NewSNUCA(sys.MemoryLatency)
	shd := NewShared(inst, n)
	cores := make([]*cpu.Core, n)
	for i := range cores {
		cores[i] = cpu.New(sys, shd.Port(i))
	}
	shd.Attach(cores)
	return New(cores, streams, shd), shd, inst.Metrics()
}

// TestSingleCoreMachineMatchesCore pins the N=1 machine arm: a one-core
// Machine (nil Shared) produces bit-identical results to driving the core
// directly — Warm then Run, the legacy sequence.
func TestSingleCoreMachineMatchesCore(t *testing.T) {
	sys := config.DefaultSystem()
	spec, _ := workload.SpecByName("gcc")
	const warm, run = 100_000, 50_000

	ref := nuca.NewSNUCA(sys.MemoryLatency)
	refCore := cpu.New(sys, ref)
	refGen := workload.New(spec, 7)
	refCore.Warm(refGen, warm)
	want := refCore.Run(refGen, run)

	inst := nuca.NewSNUCA(sys.MemoryLatency)
	core := cpu.New(sys, inst)
	gen := workload.New(spec, 7)
	m := New([]*cpu.Core{core}, []cpu.Stream{gen}, nil)
	m.Warm(warm)
	got := m.Run(run)

	if got != want {
		t.Fatalf("single-core machine result %+v != direct core result %+v", got, want)
	}
	if m.Clock() != want.Cycles {
		t.Fatalf("machine clock %d != result cycles %d", m.Clock(), want.Cycles)
	}
}

// TestMSIProtocol drives the directory through the three MSI transitions
// and checks the traffic counters and L1 side effects.
func TestMSIProtocol(t *testing.T) {
	b := mem.Block(0x1234)
	streams := []cpu.Stream{
		&sliceStream{ins: []cpu.Instr{load(b)}},
		&sliceStream{ins: []cpu.Instr{load(b)}},
	}
	m, shd, reg := buildCMP(t, 2, streams)
	shd.RegisterMetrics(reg)

	// Both cores read the block: two BusRds, two sharers, no owner.
	m.cores[0].Warm(streams[0], 1)
	m.cores[1].Warm(streams[1], 1)
	shd.SeedDirectory()
	if got := shd.DirEntries(); got != 1 {
		t.Fatalf("directory entries after seeding = %d, want 1", got)
	}
	snap := shd.DirectorySnapshot()
	if len(snap) != 1 || snap[0].Sharers != 0b11 || snap[0].Owner != 0 {
		t.Fatalf("seeded entry = %+v, want sharers=0b11 owner=0", snap[0])
	}

	// Core 0 writes: BusRdX invalidates core 1's clean copy.
	shd.StoreNotify(0, b)
	if got := reg.CounterValue("coh.invalidations"); got != 1 {
		t.Fatalf("invalidations after BusRdX = %d, want 1", got)
	}
	snap = shd.DirectorySnapshot()
	if snap[0].Sharers != 0b01 || snap[0].Owner != 1 {
		t.Fatalf("entry after BusRdX = %+v, want sharers=0b01 owner=1", snap[0])
	}
	if present, _ := m.cores[1].Invalidate(b); present {
		t.Fatal("core 1 still holds the block after a remote BusRdX")
	}
	// A second store by the owner is the silent upgrade hit.
	shd.StoreNotify(0, b)
	if got := reg.CounterValue("coh.invalidations"); got != 1 {
		t.Fatalf("owner store caused invalidations: %d", got)
	}

	// Core 1 reads it back: BusRd downgrades core 0's M copy, charging a
	// coherence writeback; both end up sharers. (The store warm marks core
	// 0's L1 line dirty — timed stores retire in the L1, so the directory's
	// dirty knowledge lives in the core's dirty bits.)
	m.cores[0].Warm(&sliceStream{ins: []cpu.Instr{store(b)}}, 1)
	shd.busRd(sim.Time(100), b, 1)
	if got := reg.CounterValue("coh.downgrades"); got != 1 {
		t.Fatalf("downgrades after BusRd on M = %d, want 1", got)
	}
	if got := reg.CounterValue("coh.writebacks"); got != 1 {
		t.Fatalf("writebacks after downgrade = %d, want 1", got)
	}
	snap = shd.DirectorySnapshot()
	if snap[0].Sharers != 0b11 || snap[0].Owner != 0 {
		t.Fatalf("entry after downgrade = %+v, want sharers=0b11 owner=0", snap[0])
	}
	if _, dirty := m.cores[0].Downgrade(b); dirty {
		t.Fatal("core 0's copy still dirty after downgrade")
	}
}

// TestDirectorySnapshotRoundTrip pins capture/restore: a restored
// directory is indistinguishable from the original, and the snapshot is
// sorted by block for deterministic encoding.
func TestDirectorySnapshotRoundTrip(t *testing.T) {
	blocks := []mem.Block{0x30, 0x10, 0x20}
	ins := make([]cpu.Instr, 0, 4)
	for _, b := range blocks {
		ins = append(ins, load(b))
	}
	ins = append(ins, store(0x40))
	streams := []cpu.Stream{
		&sliceStream{ins: ins},
		&sliceStream{ins: []cpu.Instr{load(0x10)}},
	}
	_, shd, _ := buildCMP(t, 2, streams)
	shd.cores[0].Warm(streams[0], len64(ins))
	shd.cores[1].Warm(streams[1], 1)
	shd.SeedDirectory()

	snap := shd.DirectorySnapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Block >= snap[i].Block {
			t.Fatalf("snapshot not sorted: %v before %v", snap[i-1].Block, snap[i].Block)
		}
	}

	other := NewShared(nuca.NewSNUCA(config.DefaultSystem().MemoryLatency), 2)
	other.RestoreDirectory(snap)
	if again := other.DirectorySnapshot(); !reflect.DeepEqual(again, snap) {
		t.Fatalf("restored snapshot differs:\n got %+v\nwant %+v", again, snap)
	}
}

func len64(ins []cpu.Instr) uint64 { return uint64(len(ins)) }

// TestAccessDoesNotAllocate extends the designs' zero-alloc pin to the CMP
// hot path: N-core port injection, frontier arbitration, and the MSI
// directory lookup on both the BusRd and BusRdX sides, over a fixed
// post-warm working set (steady state touches only existing map keys).
func TestAccessDoesNotAllocate(t *testing.T) {
	const n = 4
	blocks := make([]mem.Block, 256)
	ins := make([]cpu.Instr, len(blocks))
	for i := range blocks {
		blocks[i] = mem.Block(i * 65)
		ins[i] = load(blocks[i])
	}
	streams := make([]cpu.Stream, n)
	for i := range streams {
		streams[i] = &sliceStream{ins: ins}
	}
	m, shd, _ := buildCMP(t, n, streams)
	for i, c := range m.cores {
		c.Warm(streams[i], uint64(len(ins)))
	}
	shd.SeedDirectory()

	at := make([]sim.Time, n)
	access := func() {
		for i, b := range blocks {
			core := i % n
			req := mem.Request{Block: b, Type: mem.Load, Core: core}
			if i%8 == 7 {
				// The BusRdX path: invalidations sweep the other cores'
				// sharer bits and rewrite an existing directory entry.
				shd.StoreNotify(core, b)
				continue
			}
			out := shd.access(at[core], req, core)
			if out.CompleteAt > at[core] {
				at[core] = out.CompleteAt
			}
			at[core]++
		}
	}
	// Steady the reusable state (resource calendars, directory keys)
	// before measuring.
	for i := 0; i < 50; i++ {
		access()
	}
	if allocs := testing.AllocsPerRun(50, access); allocs != 0 {
		t.Errorf("%.2f allocs per CMP access burst, want 0", allocs)
	}
}

// TestInterleaveAdvancesAllCores checks the CMP event loop executes the
// requested instruction count on every core and keeps their clocks within
// the machine's finish time.
func TestInterleaveAdvancesAllCores(t *testing.T) {
	spec, _ := workload.SpecByName("gcc")
	const n = 3
	streams := make([]cpu.Stream, n)
	for i := range streams {
		streams[i] = workload.NewCMPStream(spec, 11, i, workload.SharingSpec{})
	}
	m, _, _ := buildCMP(t, n, streams)
	m.Warm(20_000)
	const run = 30_000
	res := m.Run(run)
	if res.Instructions != n*run {
		t.Fatalf("machine executed %d instructions, want %d", res.Instructions, n*run)
	}
	if res.Cycles != m.Clock() {
		t.Fatalf("result cycles %d != machine clock %d", res.Cycles, m.Clock())
	}
	for i, c := range m.clocks {
		if c == 0 || c > res.Cycles {
			t.Fatalf("core %d clock %d outside (0, %d]", i, c, res.Cycles)
		}
	}
	// Determinism: an identical machine replays to the identical result.
	streams2 := make([]cpu.Stream, n)
	for i := range streams2 {
		streams2[i] = workload.NewCMPStream(spec, 11, i, workload.SharingSpec{})
	}
	m2, _, _ := buildCMP(t, n, streams2)
	m2.Warm(20_000)
	if res2 := m2.Run(run); res2 != res {
		t.Fatalf("replay diverged: %+v vs %+v", res2, res)
	}
}
