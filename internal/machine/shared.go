// Package machine is the CMP simulation spine: it owns the event loop a
// single cpu.Core used to own, runs N cores as peers against one shared L2
// design, and layers an MSI coherence directory over the cores' private
// L1s. The cores' L1-miss traffic reaches the shared L2 through per-core
// NOC injection ports and a controller frontier that arbitrates the
// interleaved request streams onto the design's monotone-time calendars.
//
// The N=1 wiring deliberately bypasses everything in shared.go: a
// single-core Machine is built with no Shared layer, its core driving the
// instrumented L2 directly, so the one-core case stays bit-identical to
// the pre-CMP path (TestCMPSingleCoreEquivalence pins this).
package machine

import (
	"math/bits"
	"sort"

	"tlc/internal/cpu"
	"tlc/internal/l2"
	"tlc/internal/mem"
	"tlc/internal/metrics"
	"tlc/internal/noc"
	"tlc/internal/sim"
)

// dirLine is one directory entry: the bitmask of cores holding the block
// in their L1, and the exclusive owner when some core's copy is modified.
// owner stores core+1 so the zero value means "no owner" — an int16 keeps
// the entry at 10 bytes and leaves room far beyond the 64-core bitmask
// limit.
type dirLine struct {
	sharers uint64
	owner   int16
}

// Shared is the shared-L2 side of the CMP: per-core injection ports, the
// controller frontier serializing N cores' traffic onto the inner design's
// non-decreasing-time contract, and the MSI directory over the private
// L1s. It implements cpu.Coherence (StoreNotify is the BusRdX moment) and
// hands each core an l2.Cache façade via Port.
//
// The directory is an over-approximation, as hardware sparse directories
// are: a core that silently drops a clean line stays listed as a sharer
// until a BusRdX sweeps it, costing a spurious (miss) invalidation probe
// but never missing a real copy.
type Shared struct {
	inner l2.Cache
	ports *noc.Ports
	cores []*cpu.Core

	// frontier is the latest time the inner design has been accessed at;
	// requests arriving earlier (a core running behind its peers) are
	// arbitrated onto the controller no earlier than it.
	frontier sim.Time

	dir map[mem.Block]dirLine

	counters struct {
		busRd, busRdX             uint64
		invalidations, downgrades uint64
		writebacks                uint64
		arbRequests, arbDelayed   uint64
	}
	arbDelayCycles sim.Time
}

// NewShared builds the shared-L2 layer for an N-core machine over the
// inner design. Attach must be called with the cores before any timed
// access; construction is split because each core needs its Port façade
// at its own construction time.
func NewShared(inner l2.Cache, cores int) *Shared {
	if cores < 2 || cores > 64 {
		panic("machine: Shared needs 2..64 cores")
	}
	return &Shared{
		inner: inner,
		ports: noc.NewPorts(cores),
		dir:   make(map[mem.Block]dirLine),
	}
}

// Attach installs the cores the directory probes (Invalidate/Downgrade)
// and registers this Shared as each core's coherence hook.
func (s *Shared) Attach(cores []*cpu.Core) {
	if len(cores) != s.ports.Cores() {
		panic("machine: core count mismatch")
	}
	s.cores = cores
	for i, c := range cores {
		c.SetCoherence(i, s)
	}
}

// Port returns core i's view of the shared L2: timed accesses go through
// the core's injection port and the controller frontier; functional warm
// installs pass straight through to the inner design.
func (s *Shared) Port(core int) l2.Cache { return &port{s: s, core: core} }

// port is one core's l2.Cache façade over the Shared layer.
type port struct {
	s    *Shared
	core int
}

func (p *port) Access(at sim.Time, req mem.Request) l2.Outcome {
	return p.s.access(at, req, p.core)
}

func (p *port) Warm(b mem.Block)          { p.s.inner.Warm(b) }
func (p *port) Contains(b mem.Block) bool { return p.s.inner.Contains(b) }

// WarmBulk keeps the warm fast path's batched delivery through the
// façade: the inner design's Warmer (when it has one) sees the same bulk
// installs it would driven directly.
func (p *port) WarmBulk(blocks []mem.Block) { l2.WarmAll(p.s.inner, blocks) }

// access is the timed path: inject at the core's port, arbitrate onto the
// controller frontier, run the directory action for the request class, and
// perform the inner access. Loads are BusRd; the only stores the L2 sees
// from a core are dirty-victim writebacks (stores themselves retire in the
// L1 — their coherence moment is StoreNotify).
func (s *Shared) access(at sim.Time, req mem.Request, core int) l2.Outcome {
	at = s.ports.Inject(at, core)
	s.counters.arbRequests++
	if at < s.frontier {
		// A core running behind its peers: its request reaches a controller
		// whose calendars have already been booked past `at`. Arbitrate it
		// in at the frontier — the design's Resources require
		// non-decreasing times.
		s.counters.arbDelayed++
		s.arbDelayCycles += s.frontier - at
		at = s.frontier
	} else {
		s.frontier = at
	}
	if req.Type == mem.Load {
		s.busRd(at, req.Block, core)
	} else {
		s.victimDrop(req.Block, core)
	}
	return s.inner.Access(at, req)
}

// busRd records a load miss in the directory: a remote modified copy is
// downgraded to shared (its dirty data written back to the L2 before the
// read), and the reader joins the sharer set.
func (s *Shared) busRd(at sim.Time, b mem.Block, core int) {
	s.counters.busRd++
	d := s.dir[b]
	if o := int(d.owner) - 1; o >= 0 && o != core {
		if _, wasDirty := s.cores[o].Downgrade(b); wasDirty {
			s.counters.downgrades++
			s.writeback(at, b, o)
		}
		d.owner = 0
	}
	d.sharers |= 1 << uint(core)
	s.dir[b] = d
}

// victimDrop removes a core from a block's sharer set when its L1 evicts
// the dirty line (the writeback itself proceeds to the inner design).
// Entries with no remaining sharers are deleted, keeping the directory
// bounded by the aggregate L1 footprint.
func (s *Shared) victimDrop(b mem.Block, core int) {
	d, ok := s.dir[b]
	if !ok {
		return
	}
	d.sharers &^= 1 << uint(core)
	if int(d.owner)-1 == core {
		d.owner = 0
	}
	if d.sharers == 0 {
		delete(s.dir, b)
		return
	}
	s.dir[b] = d
}

// StoreNotify implements cpu.Coherence: the BusRdX / upgrade moment. Every
// remote copy is invalidated (a remote modified copy writes back first);
// the writer becomes the exclusive owner. A store by the current owner is
// the silent upgrade hit — one map probe, no traffic.
func (s *Shared) StoreNotify(core int, b mem.Block) {
	s.counters.busRdX++
	d := s.dir[b]
	if int(d.owner)-1 == core {
		return
	}
	rest := d.sharers &^ (1 << uint(core))
	for rest != 0 {
		j := bits.TrailingZeros64(rest)
		rest &^= 1 << uint(j)
		present, wasDirty := s.cores[j].Invalidate(b)
		if !present {
			continue // stale sharer bit: the copy was silently dropped
		}
		s.counters.invalidations++
		if wasDirty {
			// The invalidated modified copy drains to the L2 off the
			// writer's critical path; the frontier is the earliest time the
			// controller can take it.
			s.writeback(s.frontier, b, j)
		}
	}
	s.dir[b] = dirLine{sharers: 1 << uint(core), owner: int16(core) + 1}
}

// writeback charges the inner design with a coherence-induced writeback
// from the given core — the bandwidth cost that makes coherence traffic
// visible in the designs' bank and link contention.
func (s *Shared) writeback(at sim.Time, b mem.Block, core int) {
	s.counters.writebacks++
	s.inner.Access(at, mem.Request{Block: b, Type: mem.Store, Core: core})
}

// SeedDirectory rebuilds the directory from the cores' current L1
// contents: every resident line becomes a sharer entry, dirty lines claim
// ownership. Warm-up is functional and runs without coherence, so this is
// how a machine enters (or re-enters, after a sampled-mode fast-forward
// stretch) the coherent regime; when warm left a block dirty in several
// L1s, the highest-numbered core wins ownership deterministically.
func (s *Shared) SeedDirectory() {
	clear(s.dir)
	for i, c := range s.cores {
		bit := uint64(1) << uint(i)
		own := int16(i) + 1
		c.VisitL1(func(b mem.Block, dirty bool) {
			d := s.dir[b]
			d.sharers |= bit
			if dirty {
				d.owner = own
			}
			s.dir[b] = d
		})
	}
}

// DirEntry is one directory entry in checkpoint form. Fields are exported
// for gob encoding by the on-disk checkpoint store.
type DirEntry struct {
	Block   mem.Block
	Sharers uint64
	Owner   int16
}

// DirectorySnapshot captures the directory sorted by block, so snapshots
// of equal state are byte-identical regardless of map iteration order.
func (s *Shared) DirectorySnapshot() []DirEntry {
	out := make([]DirEntry, 0, len(s.dir))
	for b, d := range s.dir {
		out = append(out, DirEntry{Block: b, Sharers: d.sharers, Owner: d.owner})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Block < out[j].Block })
	return out
}

// RestoreDirectory replaces the directory with a captured snapshot.
func (s *Shared) RestoreDirectory(entries []DirEntry) {
	clear(s.dir)
	for _, e := range entries {
		s.dir[e.Block] = dirLine{sharers: e.Sharers, owner: e.Owner}
	}
}

// DirEntries reports the live directory size (tests and reporting).
func (s *Shared) DirEntries() int { return len(s.dir) }

// RegisterMetrics publishes the coherence and arbitration counters, plus
// the injection-port counters, under "coh.", "cmp.arb.", and "noc.port.".
// Only CMP machines register these names: single-core runs must keep their
// registry snapshot unchanged.
func (s *Shared) RegisterMetrics(r *metrics.Registry) {
	r.CounterFunc("coh.busrd", func() uint64 { return s.counters.busRd })
	r.CounterFunc("coh.busrdx", func() uint64 { return s.counters.busRdX })
	r.CounterFunc("coh.invalidations", func() uint64 { return s.counters.invalidations })
	r.CounterFunc("coh.downgrades", func() uint64 { return s.counters.downgrades })
	r.CounterFunc("coh.writebacks", func() uint64 { return s.counters.writebacks })
	r.CounterFunc("cmp.arb.requests", func() uint64 { return s.counters.arbRequests })
	r.CounterFunc("cmp.arb.delayed", func() uint64 { return s.counters.arbDelayed })
	r.CounterFunc("cmp.arb.delay_cycles", func() uint64 { return uint64(s.arbDelayCycles) })
	s.ports.RegisterMetrics(r)
}

// ResetCounters zeroes the traffic counters (warm-up noise) while keeping
// the directory and frontier — the timed run starts from the warmed state.
func (s *Shared) ResetCounters() {
	s.counters = struct {
		busRd, busRdX             uint64
		invalidations, downgrades uint64
		writebacks                uint64
		arbRequests, arbDelayed   uint64
	}{}
	s.arbDelayCycles = 0
}
