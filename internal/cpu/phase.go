package cpu

// Phase profiling: a cheap functional pass over the timed stream that
// slices it into fixed instruction windows and extracts one feature vector
// per window for phase clustering (internal/sample). The profiler runs at
// warm-pass speed — shadow tag arrays, no timing model — and consumes the
// stream through the same batched delivery protocol the warm fast path
// uses, so a profiled-and-rewound generator is bit-identical to one that
// never profiled.

import (
	"tlc/internal/cache"
	"tlc/internal/config"
	"tlc/internal/mem"
)

// PhaseFeatures are one profiling window's raw counts. The derived feature
// vector (Vector) is what the clusterer consumes.
type PhaseFeatures struct {
	// Instr is the number of instructions the window consumed.
	Instr uint64
	// MemOps and Stores count the window's memory operations.
	MemOps, Stores uint64
	// L1Misses counts shadow-L1 misses; L2Misses the subset that also
	// missed the shadow L2 (a footprint/reuse proxy).
	L1Misses, L2Misses uint64
}

// Shadow-model latency weights for the CPI proxy: an L1 miss that hits the
// L2 costs roughly an uncontended lookup, an L2 miss the flat memory
// latency. The proxy only needs to rank windows for clustering and scale
// within-cluster spread; the detailed intervals supply the calibrated CPI.
const (
	proxyL2Cycles  = 20
	proxyMemCycles = 300
)

// Add accumulates other into f (CMP profiling sums per-core windows).
func (f *PhaseFeatures) Add(other PhaseFeatures) {
	f.Instr += other.Instr
	f.MemOps += other.MemOps
	f.Stores += other.Stores
	f.L1Misses += other.L1Misses
	f.L2Misses += other.L2Misses
}

// CPIProxy is the window's crude cycles-per-instruction estimate from the
// shadow-miss counts alone.
func (f PhaseFeatures) CPIProxy() float64 {
	if f.Instr == 0 {
		return 0
	}
	return 1 +
		proxyL2Cycles*float64(f.L1Misses)/float64(f.Instr) +
		proxyMemCycles*float64(f.L2Misses)/float64(f.Instr)
}

// Feature-vector column indices for Vector's layout. Consumers that read
// individual columns out of a sample.Profile (the phase calibration reads
// the shadow L1 miss rate; the CI heuristic reads the CPI proxy) index by
// these names rather than magic numbers.
const (
	FeatMemFrac = iota
	FeatStoreFrac
	FeatL1MissRate
	FeatL2MissRate
	FeatCPIProxy
	FeatCols
)

// Vector derives the per-window feature vector: memory intensity, store
// fraction, shadow L1/L2 miss rates per instruction, and the CPI proxy.
// The CPI proxy is by convention the LAST column — the phase estimator
// reads within-cluster spread from it (sample.Profile).
func (f PhaseFeatures) Vector() []float64 {
	if f.Instr == 0 {
		return []float64{0, 0, 0, 0, 0}
	}
	instr := float64(f.Instr)
	storeFrac := 0.0
	if f.MemOps > 0 {
		storeFrac = float64(f.Stores) / float64(f.MemOps)
	}
	return []float64{
		float64(f.MemOps) / instr,
		storeFrac,
		float64(f.L1Misses) / instr,
		float64(f.L2Misses) / instr,
		f.CPIProxy(),
	}
}

// PhaseProfiler extracts window features by driving the stream's memory
// references through shadow L1/L2 tag arrays (the run machine's geometry,
// LRU replacement, no coherence and no timing). Build one per stream being
// profiled; it is not safe for concurrent use.
type PhaseProfiler struct {
	l1  *cache.SetAssoc
	l2  *cache.SetAssoc
	buf []MemRef
}

// NewPhaseProfiler builds a profiler with shadow caches matching sys.
func NewPhaseProfiler(sys config.System) *PhaseProfiler {
	return &PhaseProfiler{
		l1:  cache.NewSetAssoc(sys.L1Bytes/mem.BlockBytes/sys.L1Assoc, sys.L1Assoc),
		l2:  cache.NewSetAssoc(sys.L2Bytes/mem.BlockBytes/sys.L2Assoc, sys.L2Assoc),
		buf: make([]MemRef, 4096),
	}
}

// Window consumes exactly n instructions from s and reports the window's
// feature counts. Memory-stream sources take the fused NextMems path;
// anything else falls back to scalar Next delivery with identical stream
// evolution.
func (p *PhaseProfiler) Window(s Stream, n uint64) PhaseFeatures {
	var f PhaseFeatures
	if ms, ok := s.(MemStream); ok {
		for f.Instr < n {
			cnt, consumed := ms.NextMems(p.buf, n-f.Instr)
			f.Instr += consumed
			for i := 0; i < cnt; i++ {
				p.observe(&f, p.buf[i].Block, p.buf[i].Store)
			}
		}
		return f
	}
	for ; f.Instr < n; f.Instr++ {
		in := s.Next()
		if in.IsMem {
			p.observe(&f, in.Block, in.IsStore)
		}
	}
	return f
}

// observe runs one memory reference through the shadow hierarchy.
func (p *PhaseProfiler) observe(f *PhaseFeatures, b mem.Block, store bool) {
	f.MemOps++
	if store {
		f.Stores++
	}
	if _, hit, _, _ := p.l1.TouchOrInsertAt(b); !hit {
		f.L1Misses++
		if _, hit2, _, _ := p.l2.TouchOrInsertAt(b); !hit2 {
			f.L2Misses++
		}
	}
}
