package cpu

import (
	"bytes"

	"tlc/internal/cache"
	"tlc/internal/l2"
	"tlc/internal/mem"
)

// LaneWarmer warms K cores off one shared stream: the structure-of-arrays
// counterpart of Core.Warm. Each core contributes one lane — its L1
// geometry, array contents, and dirty bits — and the whole group consumes
// the stream's generation and batching cost once instead of K times.
//
// Warm-up is functional and the L2 installs a warm pass emits never feed
// back into L1 decisions, so each lane's evolution is independent of its
// neighbors: lane l finishes in exactly the state core l's own Warm call
// over an identical stream would leave (the lane/scalar equivalence tests
// pin this bit for bit). The cores' L2 designs may differ arbitrarily —
// only the stream is shared.
//
// Independence buys a second amortization: lanes whose L1 geometry AND
// current L1 state coincide must trace identical L1 trajectories and emit
// identical spills, so the warmer groups them into cohorts and sweeps one
// leader lane per cohort, fanning the leader's spill out to every member's
// L2. A design-grid group — six L2 designs behind the paper's one L1 —
// collapses to a single cohort, leaving only the per-design L2 fills as
// per-lane work.
type LaneWarmer struct {
	cores []*Core
	geoms []cache.LaneGeom
	// cohort[i] is the lane index of the leader whose L1 evolution lane i
	// shares (leaders have cohort[i] == i); prev is the assignment the
	// current lanes block was built for, so unchanged plans reuse it.
	cohort []int
	prev   []int
	// leaders lists leader lane indices in slot order; slot[i] is the
	// leader's slot in lanes for lane i (members share their leader's).
	leaders []int
	slot    []int
	lanes   *cache.Lanes // one slot per leader
	memBuf  []MemRef
	spills  [][]mem.Block // one per leader slot
	batches uint64
}

// NewLaneWarmer builds a warmer over cores. The lane block and spill
// buffers are sized on the first Warm call, once the cohort structure of
// the cores' states is known; after that Warm is allocation-free until the
// structure changes.
func NewLaneWarmer(cores []*Core) *LaneWarmer {
	if len(cores) == 0 {
		panic("cpu: lane warmer needs at least one core")
	}
	geoms := make([]cache.LaneGeom, len(cores))
	for i, c := range cores {
		geoms[i] = cache.LaneGeom{Sets: c.l1.Sets(), Assoc: c.l1.Assoc()}
	}
	return &LaneWarmer{
		cores:   cores,
		geoms:   geoms,
		cohort:  make([]int, len(cores)),
		leaders: make([]int, 0, len(cores)),
		slot:    make([]int, len(cores)),
		memBuf:  make([]MemRef, memBatch),
	}
}

// Batches reports how many shared stream batches the warmer has consumed —
// each one a batch every lane would otherwise have fetched for itself.
func (lw *LaneWarmer) Batches() uint64 { return lw.batches }

// Cohorts reports how many distinct L1 trajectories the last Warm call
// swept (zero before the first call). K lanes in c cohorts pay for c L1
// sweeps instead of K.
func (lw *LaneWarmer) Cohorts() int { return len(lw.leaders) }

// planCohorts groups lanes by (geometry, current L1 state, dirty bits) and
// rebuilds the leader lane block only when the assignment changed since the
// last call — the steady-state path compares and returns without
// allocating. State equality is transitive, so matching any earlier member
// of a cohort proves equality with its leader.
func (lw *LaneWarmer) planCohorts() {
	cohort := lw.cohort
	for i, c := range lw.cores {
		cohort[i] = i
		for j := 0; j < i; j++ {
			if lw.geoms[i] == lw.geoms[j] &&
				lw.cores[j].l1.StateEqual(c.l1) &&
				bytes.Equal(lw.cores[j].dirty, c.dirty) {
				cohort[i] = cohort[j]
				break
			}
		}
	}
	if lw.lanes != nil && intsEqual(cohort, lw.prev) {
		return
	}
	lw.leaders = lw.leaders[:0]
	for i, leader := range cohort {
		if leader == i {
			lw.slot[i] = len(lw.leaders)
			lw.leaders = append(lw.leaders, i)
		} else {
			lw.slot[i] = lw.slot[leader]
		}
	}
	geoms := make([]cache.LaneGeom, len(lw.leaders))
	for s, li := range lw.leaders {
		geoms[s] = lw.geoms[li]
	}
	lw.lanes = cache.NewLanes(geoms)
	lw.spills = make([][]mem.Block, len(lw.leaders))
	for s := range lw.spills {
		// Worst case per sweep is a dirty writeback plus a load fill per
		// reference, per lane — the same bound l2WarmCap encodes — so the
		// branch-free kernel's headroom requirement always holds.
		lw.spills[s] = make([]mem.Block, 0, l2WarmCap)
	}
	lw.prev = append(lw.prev[:0], cohort...)
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Warm advances s by n instructions functionally, applying every memory
// reference to each cohort leader's L1 lane and routing the leader's spill
// — dirty victims then missing loads, in reference order — to every cohort
// member's L2 via the lane-bulk entry point. cancel, if non-nil, is polled
// once per batch; a non-nil error abandons the pass and is returned with
// the cores untouched (lane state is only stored back on completion).
func (lw *LaneWarmer) Warm(s Stream, n uint64, cancel func() error) error {
	lw.planCohorts()
	for si, li := range lw.leaders {
		c := lw.cores[li]
		lw.lanes.LoadLane(si, c.l1, c.dirty)
	}
	ms, fast := s.(MemStream)
	for remaining := n; remaining > 0; {
		if cancel != nil {
			if err := cancel(); err != nil {
				return err
			}
		}
		var m int
		var consumed uint64
		if fast {
			m, consumed = ms.NextMems(lw.memBuf, remaining)
		} else {
			// Scalar collection preserves the stream contract — identical
			// instruction consumption and reference order, one batch's
			// worth at a time.
			for consumed < remaining && m < len(lw.memBuf) {
				in := s.Next()
				consumed++
				if in.IsMem {
					lw.memBuf[m] = MemRef{Block: in.Block, Store: in.IsStore}
					m++
				}
			}
		}
		if consumed == 0 {
			panic("cpu: warm stream made no progress")
		}
		remaining -= consumed
		lw.batches++
		for si := range lw.spills {
			lw.spills[si] = lw.spills[si][:0]
		}
		out := lw.lanes.WarmSweepLanes(lw.memBuf[:m], lw.spills)
		for si := range lw.spills {
			lw.spills[si] = out[si]
		}
		for i, c := range lw.cores {
			l2.WarmAll(c.l2, out[lw.slot[i]])
		}
	}
	for i, c := range lw.cores {
		lw.lanes.StoreLane(lw.slot[i], c.l1, c.dirty)
	}
	return nil
}
