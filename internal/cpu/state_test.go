package cpu

import (
	"testing"

	"tlc/internal/config"
	"tlc/internal/l2"
	"tlc/internal/mem"
	"tlc/internal/sim"
)

func TestSnapshotRestoreReproducesRun(t *testing.T) {
	// A core restored from another core's post-warm snapshot must time an
	// identical stream identically: the snapshot carries every piece of
	// state Run depends on (L1 contents + dirty bits).
	mk := func() Stream {
		var ins []Instr
		for i := 0; i < 96; i++ {
			ins = append(ins, Instr{IsMem: true, Block: mem.Block(i * 7), IsStore: i%5 == 0})
			ins = append(ins, Instr{Dep: true}, Instr{Mispredict: i%16 == 0})
		}
		return &listStream{ins: ins}
	}
	warm := New(config.DefaultSystem(), &fixedL2{lat: 13})
	warm.Warm(mk(), 20_000)
	st := warm.Snapshot()
	want := warm.Run(mk(), 30_000)

	restored := New(config.DefaultSystem(), &fixedL2{lat: 13})
	if err := restored.Restore(st); err != nil {
		t.Fatal(err)
	}
	got := restored.Run(mk(), 30_000)
	if got != want {
		t.Fatalf("restored core: %+v, warmed core: %+v", got, want)
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	core := New(config.DefaultSystem(), &fixedL2{lat: 13})
	core.Warm(&uniqueLoads{}, 10_000)
	st := core.Snapshot()
	occ := 0
	for _, d := range st.Dirty {
		if d {
			occ++
		}
	}
	// Running the core further must not change the captured snapshot.
	core.Run(&uniqueLoads{dep: true}, 10_000)
	after := 0
	for _, d := range st.Dirty {
		if d {
			after++
		}
	}
	if occ != after {
		t.Fatal("running the core mutated a captured snapshot")
	}
}

func TestRestoreRejectsMismatchedGeometry(t *testing.T) {
	small := config.DefaultSystem()
	small.L1Bytes /= 2
	st := New(small, &fixedL2{lat: 13}).Snapshot()
	if err := New(config.DefaultSystem(), &fixedL2{lat: 13}).Restore(st); err == nil {
		t.Fatal("restore accepted a snapshot from a smaller L1")
	}
}

func TestRunFromShiftsTimingByBase(t *testing.T) {
	// Against a stateless L2, RunFrom(base) must produce exactly Run()'s
	// cycles plus the base offset: the pipeline model is time-invariant.
	mk := func() Stream {
		var ins []Instr
		for i := 0; i < 48; i++ {
			ins = append(ins, Instr{IsMem: true, Block: mem.Block(i)})
			ins = append(ins, Instr{Dep: true}, Instr{Mispredict: i%8 == 0})
		}
		return &listStream{ins: ins}
	}
	const base = sim.Time(1_000_000)
	a := New(config.DefaultSystem(), &fixedL2{lat: 13})
	a.Warm(mk(), 5_000)
	plain := a.Run(mk(), 20_000)

	b := New(config.DefaultSystem(), &fixedL2{lat: 13})
	b.Warm(mk(), 5_000)
	shifted := b.RunFrom(mk(), 20_000, base)
	if shifted.Cycles != plain.Cycles+base {
		t.Fatalf("RunFrom(base=%d) finished at %d, want %d", base, shifted.Cycles, plain.Cycles+base)
	}
	if shifted.L2Loads != plain.L2Loads || shifted.L1DHits != plain.L1DHits {
		t.Fatalf("RunFrom changed event counts: %+v vs %+v", shifted, plain)
	}
}

func TestRunFromContinuesMonotone(t *testing.T) {
	// Consecutive RunFrom intervals must hand the L2 non-decreasing access
	// times even across the reset between intervals.
	probe := &monotoneL2{}
	core := New(config.DefaultSystem(), probe)
	s := &uniqueLoads{}
	var base sim.Time
	for i := 0; i < 4; i++ {
		r := core.RunFrom(s, 5_000, base)
		if r.Cycles < base {
			t.Fatalf("interval %d finished at %d, before its base %d", i, r.Cycles, base)
		}
		base = r.Cycles
	}
	if probe.violations != 0 {
		t.Fatalf("%d non-monotone L2 access times across intervals", probe.violations)
	}
}

func TestResumeMatchesContiguousRun(t *testing.T) {
	// RunFrom followed by Resume must be cycle-identical to one contiguous
	// run: the pipeline state (retire/scheduler rings, MSHRs, fetch
	// frontier) carries across the boundary, so chunked detailed execution
	// introduces no transient at all.
	mk := func() Stream {
		var ins []Instr
		for i := 0; i < 64; i++ {
			ins = append(ins, Instr{IsMem: true, Block: mem.Block(i * 3), IsStore: i%7 == 0})
			ins = append(ins, Instr{Dep: i%2 == 0}, Instr{Mispredict: i%10 == 0})
		}
		return &listStream{ins: ins}
	}
	a := New(config.DefaultSystem(), &fixedL2{lat: 13})
	a.Warm(mk(), 5_000)
	want := a.Run(mk(), 40_000)

	b := New(config.DefaultSystem(), &fixedL2{lat: 13})
	b.Warm(mk(), 5_000)
	s := mk()
	first := b.RunFrom(s, 15_000, 0)
	second := b.Resume(s, 25_000)
	if second.Cycles != want.Cycles {
		t.Fatalf("chunked run finished at %d, contiguous at %d", second.Cycles, want.Cycles)
	}
	if got := first.L2Loads + second.L2Loads; got != want.L2Loads {
		t.Fatalf("chunked runs saw %d L2 loads, contiguous %d", got, want.L2Loads)
	}
	if got := first.L1DHits + second.L1DHits; got != want.L1DHits {
		t.Fatalf("chunked runs saw %d L1 hits, contiguous %d", got, want.L1DHits)
	}
	if first.Cycles > second.Cycles {
		t.Fatalf("resumed interval finished at %d, before the first interval's %d", second.Cycles, first.Cycles)
	}
}

func TestResumeAcrossWarmIsMonotone(t *testing.T) {
	// The sampled-execution pattern: functional Warm stretches between
	// resumed detailed intervals. Access times handed to the L2 must stay
	// non-decreasing throughout.
	probe := &monotoneL2{}
	core := New(config.DefaultSystem(), probe)
	s := &uniqueLoads{}
	last := core.RunFrom(s, 5_000, 0)
	for i := 0; i < 4; i++ {
		core.Warm(s, 20_000)
		r := core.Resume(s, 5_000)
		if r.Cycles < last.Cycles {
			t.Fatalf("interval %d finished at %d, before the previous finish %d", i, r.Cycles, last.Cycles)
		}
		last = r
	}
	if probe.violations != 0 {
		t.Fatalf("%d non-monotone L2 access times across resumed intervals", probe.violations)
	}
}

// monotoneL2 records violations of non-decreasing access times.
type monotoneL2 struct {
	last       sim.Time
	violations int
}

func (m *monotoneL2) Access(at sim.Time, req mem.Request) l2.Outcome {
	if at < m.last {
		m.violations++
	}
	m.last = at
	return l2.Outcome{Hit: true, ResolveAt: at + 20, CompleteAt: at + 20}
}
func (m *monotoneL2) Warm(mem.Block)          {}
func (m *monotoneL2) Contains(mem.Block) bool { return true }
