package cpu

import (
	"tlc/internal/l2"
	"tlc/internal/mem"
	"tlc/internal/sim"
)

// Fast tier: an in-order fixed-IPC-with-MLP core model in the style of the
// interval/one-IPC simplified cores of "Validating Simplified Processor
// Models in Architectural Studies" (arXiv 1610.02094). It reuses the warm
// kernels, the checkpoint state (State is pipeline-free, so fast and full
// checkpoints are shape-identical), the MSHR bound, and the batched stream
// protocol, but skips OoO scheduling entirely:
//
//   - non-memory instructions and L1 hits retire at FetchWidth per cycle
//     (one integer divide per NextMems chunk, remainder carried across
//     chunks and Resume calls so long runs lose no cycles to rounding);
//   - L2 load misses charge their latency divided by an MLP factor of
//     MaxOutstanding/2 — the average overlap an OoO window extracts —
//     with MSHR admission still bounding true burst parallelism;
//   - stores and dirty writebacks are fire-and-forget, as in the full
//     model's store-buffer path.
//
// Dep/Mispredict effects and dependent-load serialization are invisible on
// this path by construction; the per-benchmark bias they introduce is
// measured against the full tier and committed as the calibration artifact
// (internal/calibrate), which callers attach to fast results as error
// bounds. All arithmetic is integer-only so the committed artifact is
// bit-reproducible across platforms.

// SetFast selects the fast (in-order, fixed-IPC-with-MLP) timing model for
// subsequent Run/RunFrom/Resume calls. Warm, Snapshot, and Restore are
// tier-independent; a core switched mid-epoch keeps its architectural cache
// state. The setter exists so the tlc layer can pick the tier per run
// without forking the machine construction path. When the L2 offers the
// uncontended analytic path (l2.FastTimer), the fast tier routes every L2
// request through it; other designs fall back to the full Access timing.
func (c *Core) SetFast(on bool) {
	c.fast = on
	c.fastL2 = nil
	if on {
		c.fastL2, _ = c.l2.(l2.FastTimer)
	}
}

// l2Fast issues one L2 request on the fast tier's timing path.
func (c *Core) l2Fast(at sim.Time, req mem.Request) l2.Outcome {
	if c.fastL2 != nil {
		return c.fastL2.AccessFast(at, req)
	}
	return c.l2.Access(at, req)
}

// runFast is the fast-tier counterpart of run: it drives the stream through
// the warm-mode NextMems protocol (memory operations materialized, non-mem
// instructions consumed as run-length counts) and advances a scalar clock
// instead of simulating the pipeline. Epoch semantics match run exactly —
// RunFrom starts the clock at base, Resume continues from lastRetire — so
// sampled and phase-sampled execution compose unchanged.
func (c *Core) runFast(s Stream, n uint64) Result {
	c.res = Result{Instructions: n}
	if c.memBuf == nil {
		c.memBuf = make([]MemRef, memBatch)
	}
	width := uint64(c.sys.FetchWidth)
	mlp := sim.Time(c.sys.MaxOutstanding) / 2
	if mlp < 1 {
		mlp = 1
	}
	clock := c.lastRetire
	ms, native := s.(MemStream)
	for remaining := n; remaining > 0; {
		if c.cancelled() {
			break
		}
		var m int
		var consumed uint64
		if native {
			m, consumed = ms.NextMems(c.memBuf, remaining)
		} else {
			m, consumed = nextMemsScalar(s, c.memBuf, remaining)
		}
		if consumed == 0 {
			panic("cpu: fast-tier stream made no progress")
		}
		remaining -= consumed
		clock = c.fastChunk(clock, c.memBuf[:m], consumed, width, mlp)
	}
	c.epochInstrs += n
	c.lastRetire = clock
	c.res.Cycles = clock
	return c.res
}

// fastChunk retires one NextMems chunk: consumed instructions spread evenly
// as fetch-bandwidth gaps before the chunk's memory references (so L2
// traffic keeps the stream's pacing instead of arriving in artificial
// bursts), with the sub-cycle remainder carried in fastRem across chunks.
func (c *Core) fastChunk(clock sim.Time, refs []MemRef, consumed uint64, width uint64, mlp sim.Time) sim.Time {
	if len(refs) == 0 {
		c.fastRem += consumed
		clock += sim.Time(c.fastRem / width)
		c.fastRem %= width
		return clock
	}
	q := consumed / uint64(len(refs))
	r := consumed % uint64(len(refs))
	for i := range refs {
		gap := q
		if uint64(i) < r {
			gap++
		}
		c.fastRem += gap
		clock += sim.Time(c.fastRem / width)
		c.fastRem %= width
		clock = c.fastAccess(clock, refs[i], mlp)
	}
	return clock
}

// fastAccess performs one memory reference against the L1/L2 with the same
// architectural bookkeeping as accessL1 (fused touch/insert, dirty bits,
// writebacks, coherence notify, MSHR occupancy) but fast-tier timing: L1
// hits and stores are free (covered by the fixed-IPC base), and an L2 load
// charges its span divided by the MLP factor. MSHR admission is charged in
// full — when all MaxOutstanding entries are busy the clock waits for the
// earliest completion, the same backpressure the full model applies.
func (c *Core) fastAccess(clock sim.Time, ref MemRef, mlp sim.Time) sim.Time {
	idx, hit, victim, evicted := c.l1.TouchOrInsertAt(ref.Block)
	if hit {
		c.res.L1DHits++
		c.cum.l1dHits++
		if ref.Store {
			c.dirty[idx] = 1
			if c.coh != nil {
				c.coh.StoreNotify(c.id, ref.Block)
			}
		}
		return clock
	}
	c.res.L1DMisses++
	c.cum.l1dMisses++
	if evicted && c.dirty[idx] != 0 {
		c.l2Fast(clock, mem.Request{Block: victim, Type: mem.Store, Core: c.id})
		c.res.L2Stores++
		c.cum.l2Stores++
	}
	if ref.Store {
		c.dirty[idx] = 1
		if c.coh != nil {
			c.coh.StoreNotify(c.id, ref.Block)
		}
		return clock
	}
	c.dirty[idx] = 0
	start := c.mshrAdmit(clock)
	out := c.l2Fast(start, mem.Request{Block: ref.Block, Type: mem.Load, Core: c.id})
	c.res.L2Loads++
	c.cum.l2Loads++
	c.mshrTrack(out.CompleteAt)
	if start > clock {
		clock = start
	}
	return clock + (out.CompleteAt-start)/mlp
}

// nextMemsScalar adapts a plain Stream to the NextMems contract for the
// fast tier's compatibility floor: it advances up to maxInstr instructions
// (stopping early when buf fills), writing only the memory operations.
func nextMemsScalar(s Stream, buf []MemRef, maxInstr uint64) (n int, consumed uint64) {
	for consumed < maxInstr {
		in := s.Next()
		consumed++
		if !in.IsMem {
			continue
		}
		buf[n] = MemRef{Block: in.Block, Store: in.IsStore}
		n++
		if n == len(buf) {
			break
		}
	}
	return n, consumed
}
