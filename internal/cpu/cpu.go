// Package cpu is the dynamically scheduled processor timing model of
// Table 3: 4-wide fetch/issue, 128-entry reorder buffer, 64-entry
// scheduler window, split 64 KB 2-way L1 caches at 3 cycles, up to 8
// outstanding memory requests, and a 300-cycle memory behind the L2 under
// test.
//
// It substitutes for the paper's Simics + timing-first setup: instructions
// come from a synthetic trace (package workload), and the model preserves
// exactly the sensitivities the paper's results depend on — tolerance of
// short L2 latencies through out-of-order overlap, serialization of
// dependent loads, and stalls on L2 misses bounded by the MSHR count.
package cpu

import (
	"fmt"

	"tlc/internal/cache"
	"tlc/internal/config"
	"tlc/internal/l2"
	"tlc/internal/mem"
	"tlc/internal/metrics"
	"tlc/internal/sim"
)

// Instr is one instruction of a synthetic trace.
type Instr struct {
	// IsMem marks loads and stores; other instructions execute in one
	// cycle.
	IsMem bool
	// IsStore distinguishes stores from loads (meaningful when IsMem).
	IsStore bool
	// Block is the 64-byte block the memory op touches.
	Block mem.Block
	// Dep marks an instruction that depends on the most recent
	// instruction of its kind: a dependent load cannot issue before the
	// previous load completes (pointer chasing); a dependent ALU op
	// cannot issue before the previous instruction completes (serial
	// integer chains, the ILP limiter).
	Dep bool
	// Mispredict marks a mispredicted branch: the front end restarts,
	// costing a pipeline refill (Table 3: 30 stages).
	Mispredict bool
}

// Stream produces a deterministic instruction sequence.
type Stream interface {
	Next() Instr
}

// BatchStream is the batched delivery protocol: NextBatch fills a
// caller-owned buffer with the next len(buf) instructions of the stream and
// returns how many it wrote (always at least 1 for a non-empty buffer). The
// instruction sequence must be identical to repeated Next calls — batching
// changes delivery, never content. Native implementations (workload
// generator, trace reader) amortize their per-instruction costs over the
// batch; AsBatch adapts any legacy Stream.
type BatchStream interface {
	Stream
	NextBatch(buf []Instr) int
}

// MemRef is one memory operation of a warm stream: the block and whether
// the access is a store. Functional warming needs nothing else. It aliases
// cache.WarmRef so the L1 array can consume whole batches directly
// (SetAssoc.WarmSweep) without a package cycle.
type MemRef = cache.WarmRef

// MemStream is the warm-mode fast path: NextMems advances the stream by up
// to maxInstr instructions, materializing only the memory operations into
// buf and skipping non-memory instructions as run-length counts. It returns
// the number of MemRefs written and the total instructions consumed
// (consumed >= n; the difference is the skipped non-memory run). The
// stream's state after NextMems must be bit-identical to having delivered
// the same instructions through Next — so a detailed interval can resume on
// the same stream right after a warm stretch.
type MemStream interface {
	Stream
	NextMems(buf []MemRef, maxInstr uint64) (n int, consumed uint64)
}

// AsBatch adapts any Stream to BatchStream: native batchers pass through,
// everything else is wrapped in a shim that loops Next. The shim allocates;
// Core.run keeps a reusable one instead.
func AsBatch(s Stream) BatchStream {
	if bs, ok := s.(BatchStream); ok {
		return bs
	}
	return &batchShim{s}
}

// batchShim adapts a scalar Stream to the batched protocol one Next call at
// a time — the compatibility floor every Stream gets for free.
type batchShim struct{ Stream }

// NextBatch implements BatchStream.
func (b *batchShim) NextBatch(buf []Instr) int {
	for i := range buf {
		buf[i] = b.Stream.Next()
	}
	return len(buf)
}

// Result summarizes one timed run.
type Result struct {
	Instructions uint64
	Cycles       sim.Time
	L1DHits      uint64
	L1DMisses    uint64
	L2Loads      uint64
	L2Stores     uint64
}

// IPC reports retired instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// Coherence is the bus-side hook a CMP coherence layer installs on each
// core: the core reports every store (the BusRdX / upgrade moment — the
// writer must gain exclusive ownership) so the directory can invalidate
// remote L1 copies. Loads need no hook: load misses reach the shared L2
// through Access carrying the core id (BusRd), and load hits touch only
// lines this L1 already holds in a readable state.
type Coherence interface {
	StoreNotify(core int, b mem.Block)
}

// Core drives a Stream against an L2 design.
type Core struct {
	sys config.System
	l2  l2.Cache

	// id is this core's CMP core index, stamped on every L2 request.
	// Single-core runs leave it zero.
	id int
	// coh, when non-nil, observes every store for MSI upgrade handling.
	// Nil on single-core runs: the hook costs one nil-check per store.
	coh Coherence

	l1 *cache.SetAssoc
	// dirty[idx] is the dirty bit of L1 line idx (set*assoc+way): per-way
	// state alongside the set-associative array, as the hardware keeps it.
	// A map keyed by block was the hot-loop allocator here. Bytes rather
	// than bools so the warm fast path can update them with arithmetic
	// instead of a data-random branch.
	dirty []uint8

	// retire ring buffer: retire[i % ROB] is instruction i's retire time.
	retire []sim.Time
	// issued ring buffer: issued[i % sched] is when instruction i left the
	// scheduler (operands ready). A waiting instruction occupies a
	// scheduler entry, so instruction i cannot enter the window before
	// instruction i-sched has issued — the constraint that exposes L2
	// latencies beyond the 64-entry window's reach (Table 3).
	issued []sim.Time
	// outstanding L2 load completion times (MSHR occupancy), a small
	// sorted multiset maintained in place.
	outstanding []sim.Time
	lastLoad    sim.Time
	// prevComplete is the previous instruction's completion, for serial
	// ALU chains.
	prevComplete sim.Time
	// fetchPenalty accumulates branch-misprediction pipeline refills.
	fetchPenalty sim.Time

	// Timing-epoch state: RunFrom starts a new epoch; Resume continues the
	// current one. epochBase is the clock the epoch's fetch frontier counts
	// from, epochInstrs the detailed instructions executed so far in the
	// epoch (the ring-buffer index continues across Resume calls), and
	// lastRetire the retire time of the epoch's most recent instruction.
	epochBase   sim.Time
	epochInstrs uint64
	lastRetire  sim.Time

	res Result

	// fast selects the fast timing tier (fast.go): SetFast switches the
	// run dispatch, everything else — warm kernels, checkpoints, metrics —
	// is tier-independent. fastRem carries the fast tier's sub-cycle fetch
	// remainder across chunks and Resume calls; it is epoch state and
	// resets with the pipeline in resetTiming.
	fast    bool
	fastRem uint64
	// fastL2 is the L2's uncontended analytic timing path, resolved by
	// SetFast when the design offers it (nil otherwise: fall back to the
	// contended Access path under fast timing).
	fastL2 l2.FastTimer

	// Batched-delivery buffers, allocated lazily on first use and reused
	// for the core's lifetime so the hot loops stay allocation-free.
	// batch receives detailed-mode instructions (Core.run), memBuf receives
	// warm-mode memory references (warmFast), and l2Warm collects warm-path
	// L2 installs for bulk delivery to an l2.Warmer.
	batch  []Instr
	memBuf []MemRef
	l2Warm []mem.Block
	// shim is the reusable legacy-Stream adapter, so running a scalar
	// stream costs no per-call allocation.
	shim batchShim

	// cancel, when set, is polled at batch boundaries during Warm and run;
	// a non-nil return aborts the loop and is retained in cancelErr. Polling
	// happens once per instruction batch (a few thousand instructions), so
	// cooperative cancellation costs a nil-check per batch, not per
	// instruction, and never perturbs the simulated state of a run that was
	// not cancelled.
	cancel    func() error
	cancelErr error

	// cum accumulates pipeline-event counters over the whole timing epoch
	// (res resets on every run/Resume call; these reset with the epoch in
	// resetTiming), feeding the metrics registry.
	cum struct {
		l1dHits, l1dMisses     uint64
		l2Loads, l2Stores      uint64
		robStalls, schedStalls uint64
		mshrWaits, mispredicts uint64
	}

	// countWarmMisses gates functional L2-miss counting in the warm paths:
	// when set, every warm-path L2 install is preceded by a read-only
	// Contains probe and warmL2Misses counts the absent blocks — the misses
	// a detailed run over the same stretch would have charged. Off by
	// default so bulk warming (the 2M-instruction warm phase, uniform
	// fast-forward, lane sweeps) pays nothing; the phase-sampled runner
	// enables it across the timed region to total its L2-miss covariate
	// exactly. The probe never mutates cache state, so counting cannot
	// perturb a run.
	countWarmMisses bool
	warmL2Misses    uint64
}

// New builds a core over the given L2.
func New(sys config.System, l2c l2.Cache) *Core {
	sets := sys.L1Bytes / mem.BlockBytes / sys.L1Assoc
	l1 := cache.NewSetAssoc(sets, sys.L1Assoc)
	return &Core{
		sys:    sys,
		l2:     l2c,
		l1:     l1,
		dirty:  make([]uint8, l1.Blocks()),
		retire: make([]sim.Time, sys.ROBEntries),
		issued: make([]sim.Time, sys.SchedulerEntries),
		// MSHR occupancy never exceeds MaxOutstanding entries; a fixed
		// capacity keeps the tracking allocation-free.
		outstanding: make([]sim.Time, 0, sys.MaxOutstanding),
	}
}

// SetCoherence installs the MSI hook with this core's CMP core index. The
// machine layer calls it once per core after warm-up; single-core runs
// never do, keeping the default path free of coherence work beyond a
// nil-check per store.
func (c *Core) SetCoherence(id int, h Coherence) {
	c.id = id
	c.coh = h
}

// Invalidate removes b from the L1 (a remote BusRdX hitting this core's
// copy) and reports whether the line was present and whether it was dirty.
// The dirty bit clears with the line; the caller accounts the writeback.
func (c *Core) Invalidate(b mem.Block) (present, wasDirty bool) {
	way, ok := c.l1.WayOf(b)
	if !ok {
		return false, false
	}
	idx := b.SetIndex(c.l1.Sets())*c.l1.Assoc() + way
	wasDirty = c.dirty[idx] != 0
	c.dirty[idx] = 0
	c.l1.Remove(b)
	return true, wasDirty
}

// Downgrade clears b's dirty bit (a remote BusRd demoting this core's M
// copy to S) and reports whether the line was present and dirty. The line
// itself stays resident and readable.
func (c *Core) Downgrade(b mem.Block) (present, wasDirty bool) {
	way, ok := c.l1.WayOf(b)
	if !ok {
		return false, false
	}
	idx := b.SetIndex(c.l1.Sets())*c.l1.Assoc() + way
	wasDirty = c.dirty[idx] != 0
	c.dirty[idx] = 0
	return true, wasDirty
}

// VisitL1 calls fn for every valid L1 line with its dirty bit. The machine
// layer seeds the coherence directory from post-warm L1 contents with it;
// iteration order is deterministic (set-major, way order).
func (c *Core) VisitL1(fn func(b mem.Block, dirty bool)) {
	var buf []cache.Line
	for set := 0; set < c.l1.Sets(); set++ {
		buf = c.l1.AppendLinesIn(buf[:0], set)
		for _, ln := range buf {
			fn(ln.Block, c.dirty[set*c.l1.Assoc()+ln.Way] != 0)
		}
	}
}

// SetCancel installs a cooperative cancellation check, polled at batch
// boundaries by Warm and the timed run loops. When fn returns a non-nil
// error the current loop stops early and CancelErr reports it; the machine
// state is then mid-run and must be discarded (in particular, never
// checkpointed). A nil fn disables checking.
func (c *Core) SetCancel(fn func() error) { c.cancel = fn }

// CancelErr reports the error that aborted the most recent Warm or run
// call, if any. It clears on the next RunFrom (resetTiming), matching the
// rest of the per-epoch state.
func (c *Core) CancelErr() error { return c.cancelErr }

// cancelled polls the cancellation hook and records the first error.
func (c *Core) cancelled() bool {
	if c.cancel == nil || c.cancelErr != nil {
		return c.cancelErr != nil
	}
	if err := c.cancel(); err != nil {
		c.cancelErr = err
		return true
	}
	return false
}

// RegisterMetrics publishes the core's pipeline and L1 counters under
// "cpu.". The counters cover the current timing epoch: they reset with the
// pipeline in RunFrom, and accumulate across Resume calls.
func (c *Core) RegisterMetrics(r *metrics.Registry) {
	c.RegisterMetricsPrefixed(r, "")
}

// RegisterMetricsPrefixed is RegisterMetrics with the names prefixed — CMP
// runs publish each core's counters under "core.<i>." so per-core traffic
// stays attributable after aggregation.
func (c *Core) RegisterMetricsPrefixed(r *metrics.Registry, prefix string) {
	r.CounterFunc(prefix+"cpu.l1d.hits", func() uint64 { return c.cum.l1dHits })
	r.CounterFunc(prefix+"cpu.l1d.misses", func() uint64 { return c.cum.l1dMisses })
	r.CounterFunc(prefix+"cpu.l2.loads", func() uint64 { return c.cum.l2Loads })
	r.CounterFunc(prefix+"cpu.l2.stores", func() uint64 { return c.cum.l2Stores })
	r.CounterFunc(prefix+"cpu.rob.stalls", func() uint64 { return c.cum.robStalls })
	r.CounterFunc(prefix+"cpu.sched.stalls", func() uint64 { return c.cum.schedStalls })
	r.CounterFunc(prefix+"cpu.mshr.waits", func() uint64 { return c.cum.mshrWaits })
	r.CounterFunc(prefix+"cpu.fetch.mispredicts", func() uint64 { return c.cum.mispredicts })
}

// RegisterMetricsSum publishes the summed counters of several cores under
// the plain "cpu." names, so CMP runs keep the aggregate names single-core
// tooling reads alongside the per-core "core.<i>.cpu." sets.
func RegisterMetricsSum(r *metrics.Registry, cores []*Core) {
	sum := func(read func(*Core) uint64) func() uint64 {
		return func() uint64 {
			var n uint64
			for _, c := range cores {
				n += read(c)
			}
			return n
		}
	}
	r.CounterFunc("cpu.l1d.hits", sum(func(c *Core) uint64 { return c.cum.l1dHits }))
	r.CounterFunc("cpu.l1d.misses", sum(func(c *Core) uint64 { return c.cum.l1dMisses }))
	r.CounterFunc("cpu.l2.loads", sum(func(c *Core) uint64 { return c.cum.l2Loads }))
	r.CounterFunc("cpu.l2.stores", sum(func(c *Core) uint64 { return c.cum.l2Stores }))
	r.CounterFunc("cpu.rob.stalls", sum(func(c *Core) uint64 { return c.cum.robStalls }))
	r.CounterFunc("cpu.sched.stalls", sum(func(c *Core) uint64 { return c.cum.schedStalls }))
	r.CounterFunc("cpu.mshr.waits", sum(func(c *Core) uint64 { return c.cum.mshrWaits }))
	r.CounterFunc("cpu.fetch.mispredicts", sum(func(c *Core) uint64 { return c.cum.mispredicts }))
}

// Batch-buffer capacities. streamBatch bounds one detailed-mode NextBatch
// fill; memBatch bounds one warm-mode NextMems fill; l2WarmCap sizes the
// warm-path bulk-install buffer for the worst case of one sweep (a dirty
// writeback plus a load fill per reference) so a sweep's spill never
// reallocates. All keep the working set well inside the host cache while
// amortizing the interface crossings they exist to eliminate.
const (
	streamBatch = 4096
	memBatch    = 512
	l2WarmCap   = 2 * memBatch
)

// Warm advances the stream n instructions functionally: L1 state and L2
// contents update with no timing, so the measured interval starts from a
// steady-state cache.
//
// Streams implementing MemStream take the fast path: non-memory
// instructions are skipped as run-length counts inside the stream, the L1
// touch/insert is fused into one set scan, and L2 installs are delivered in
// bulk when the design implements l2.Warmer. Other streams take the scalar
// reference loop. Both leave the core and L2 in bit-identical state — the
// batched/scalar equivalence tests pin this.
// SetWarmMissCounting gates functional L2-miss counting during Warm; see
// the countWarmMisses field. The count is read with WarmL2Misses.
func (c *Core) SetWarmMissCounting(on bool) { c.countWarmMisses = on }

// WarmL2Misses returns the L2 misses counted by warm-path probing since the
// core was built (only stretches with SetWarmMissCounting(true) count).
func (c *Core) WarmL2Misses() uint64 { return c.warmL2Misses }

func (c *Core) Warm(s Stream, n uint64) {
	if ms, ok := s.(MemStream); ok {
		c.warmFast(ms, n)
		return
	}
	c.warmScalar(s, n)
}

// warmScalar is the per-instruction reference warm loop: every instruction
// crosses the Stream interface, memory ops touch the L1 in two set scans,
// and L2 installs dispatch one at a time. It defines the state evolution
// the fast path must reproduce exactly, and remains the baseline arm of
// BenchmarkWarmThroughput.
func (c *Core) warmScalar(s Stream, n uint64) {
	for i := uint64(0); i < n; i++ {
		if i%streamBatch == 0 && c.cancelled() {
			return
		}
		in := s.Next()
		if !in.IsMem {
			continue
		}
		if idx, hit := c.l1.TouchAt(in.Block); hit {
			if in.IsStore {
				c.dirty[idx] = 1
			}
			continue
		}
		// L1 miss reaches the L2 functionally. The incoming block takes
		// the victim's line, so its dirty bit is read before being
		// overwritten with the new line's state.
		idx, victim, evicted := c.l1.InsertAt(in.Block)
		if evicted && c.dirty[idx] != 0 {
			if c.countWarmMisses && !c.l2.Contains(victim) {
				c.warmL2Misses++
			}
			c.l2.Warm(victim)
		}
		if in.IsStore {
			c.dirty[idx] = 1
		} else {
			c.dirty[idx] = 0
			if c.countWarmMisses && !c.l2.Contains(in.Block) {
				c.warmL2Misses++
			}
			c.l2.Warm(in.Block)
		}
	}
}

// warmFast is the batched warm kernel. Each NextMems fill is driven through
// the L1 in one WarmSweep call, which appends — in reference order — every
// block the L2 must observe (dirty-victim writeback before the missing
// block's fill) to the reusable spill buffer. The L2 installs a warm loop
// emits never feed back into L1 decisions, so delivering each sweep's spill
// through l2.Warmer.WarmBulk preserves the exact Warm-call sequence of the
// scalar loop.
func (c *Core) warmFast(s MemStream, n uint64) {
	if c.memBuf == nil {
		c.memBuf = make([]MemRef, memBatch)
	}
	if c.l2Warm == nil {
		c.l2Warm = make([]mem.Block, 0, l2WarmCap)
	}
	warmer, bulk := c.l2.(l2.Warmer)
	for remaining := n; remaining > 0; {
		if c.cancelled() {
			return
		}
		m, consumed := s.NextMems(c.memBuf, remaining)
		if consumed == 0 {
			panic("cpu: warm stream made no progress")
		}
		remaining -= consumed
		spill := c.l1.WarmSweep(c.memBuf[:m], c.dirty, c.l2Warm[:0])
		if c.countWarmMisses {
			// Probe before the batch installs. A block repeated within one
			// spill (victim refilled in the same sweep) counts once per
			// probe rather than once per true miss; at a few hundred
			// references per sweep the double-count is noise against the
			// covariate total it feeds.
			for _, b := range spill {
				if !c.l2.Contains(b) {
					c.warmL2Misses++
				}
			}
		}
		if bulk {
			if len(spill) > 0 {
				warmer.WarmBulk(spill)
			}
		} else {
			for _, b := range spill {
				c.l2.Warm(b)
			}
		}
	}
}

// Run times n instructions and returns the result. It may be called after
// Warm on the same stream. Per-run timing state resets on entry, so
// repeated Runs on one core (retaining the warmed L1/L2 contents) start
// from a clean pipeline rather than inheriting the previous run's retire,
// scheduler, MSHR, and fetch-penalty state.
func (c *Core) Run(s Stream, n uint64) Result { return c.RunFrom(s, n, 0) }

// RunFrom is Run with the pipeline's clock starting at cycle base instead
// of zero. Sampled execution uses it to keep simulated time monotone across
// detailed intervals: the L2 designs require non-decreasing access times
// (their port and link Resources book absolute spans), so a later interval
// must continue past an earlier one's finish rather than restart at zero.
// The returned Result's Cycles is the absolute finish time; the interval's
// own length is Cycles - base.
func (c *Core) RunFrom(s Stream, n uint64, base sim.Time) Result {
	c.resetTiming()
	c.epochBase = base
	c.lastRetire = base
	return c.run(s, n)
}

// Resume continues detailed timing where the previous RunFrom or Resume on
// this core left off: the retire and scheduler rings, MSHR occupancy, fetch
// frontier, and dependence state all carry across, so RunFrom(s, m, base)
// followed by Resume(s, n) is cycle-identical to a single RunFrom of m+n
// instructions. Sampled execution interleaves functional Warm stretches
// (which occupy no simulated time) with Resume intervals, so interval
// boundaries introduce no pipeline-restart transient into the measured CPI.
func (c *Core) Resume(s Stream, n uint64) Result { return c.run(s, n) }

// run times n instructions within the current timing epoch. Instructions
// arrive through the batched protocol: native BatchStreams fill the core's
// reusable buffer directly; legacy Streams go through the core's resident
// shim, so neither path allocates per call.
func (c *Core) run(s Stream, n uint64) Result {
	if c.fast {
		return c.runFast(s, n)
	}
	c.res = Result{Instructions: n}
	rob := uint64(c.sys.ROBEntries)
	sched := uint64(c.sys.SchedulerEntries)
	width := sim.Time(c.sys.FetchWidth)
	base := c.epochBase
	start := c.epochInstrs
	last := c.lastRetire
	bs, native := s.(BatchStream)
	if !native {
		c.shim.Stream = s
		bs = &c.shim
	}
	if c.batch == nil {
		c.batch = make([]Instr, streamBatch)
	}
	for j := uint64(0); j < n; {
		if c.cancelled() {
			break
		}
		want := n - j
		if want > streamBatch {
			want = streamBatch
		}
		got := bs.NextBatch(c.batch[:want])
		if got <= 0 {
			panic("cpu: batch stream made no progress")
		}
		for _, in := range c.batch[:got] {
			i := start + j
			// Fetch bandwidth: FetchWidth instructions per cycle, pushed
			// back by accumulated misprediction refills.
			issue := base + sim.Time(i)/width + c.fetchPenalty
			// ROB availability: instruction i needs instruction i-ROB
			// retired.
			if i >= rob {
				if t := c.retire[i%rob]; t > issue {
					issue = t
					c.cum.robStalls++
				}
			}
			// Scheduler availability: instruction i-sched must have issued.
			if i >= sched {
				if t := c.issued[i%sched]; t > issue {
					issue = t
					c.cum.schedStalls++
				}
			}
			issueAt, complete := c.execute(issue, in)
			c.issued[i%sched] = issueAt
			if in.Mispredict {
				c.fetchPenalty += sim.Time(c.sys.PipelineStages)
				c.cum.mispredicts++
			}
			c.prevComplete = complete
			// In-order retirement at fetch width.
			slot := c.retire[(i+rob-1)%rob] // previous instruction's retire
			if i == 0 {
				slot = base
			}
			if complete > slot {
				slot = complete
			}
			if i >= uint64(width) {
				if t := c.retire[(i-uint64(width))%rob] + 1; t > slot {
					slot = t
				}
			}
			c.retire[i%rob] = slot
			last = slot
			j++
		}
	}
	c.shim.Stream = nil
	c.epochInstrs = start + n
	c.lastRetire = last
	c.res.Cycles = last
	return c.res
}

// resetTiming clears the pipeline timing state a run accumulates. Cache
// contents (L1 array, dirty bits) survive: they are architectural state a
// back-to-back run legitimately inherits.
func (c *Core) resetTiming() {
	for i := range c.retire {
		c.retire[i] = 0
	}
	for i := range c.issued {
		c.issued[i] = 0
	}
	c.outstanding = c.outstanding[:0]
	c.lastLoad = 0
	c.prevComplete = 0
	c.fetchPenalty = 0
	c.fastRem = 0
	c.cancelErr = nil
	c.epochBase = 0
	c.epochInstrs = 0
	c.lastRetire = 0
	c.cum = struct {
		l1dHits, l1dMisses     uint64
		l2Loads, l2Stores      uint64
		robStalls, schedStalls uint64
		mshrWaits, mispredicts uint64
	}{}
}

// State is the core's architectural cache state: the L1 array plus its
// per-line dirty bits. Pipeline timing state is deliberately absent — Run
// resets it on entry, so a warm core is fully described by its caches.
// Fields are exported for gob encoding by the on-disk checkpoint store.
type State struct {
	L1    cache.SetAssocState
	Dirty []bool
}

// Snapshot captures the core's post-warm state. The result shares no memory
// with the core.
func (c *Core) Snapshot() State {
	st := State{
		L1:    c.l1.Snapshot(),
		Dirty: make([]bool, len(c.dirty)),
	}
	for i, d := range c.dirty {
		st.Dirty[i] = d != 0
	}
	return st
}

// Restore overwrites the core's L1 contents and dirty bits with a captured
// state and clears pipeline timing, exactly the condition a fresh core is
// in after Warm. It rejects states from a differently configured core.
func (c *Core) Restore(st State) error {
	if len(st.Dirty) != len(c.dirty) {
		return fmt.Errorf("cpu: restoring %d dirty bits into a %d-line L1", len(st.Dirty), len(c.dirty))
	}
	if err := c.l1.Restore(st.L1); err != nil {
		return err
	}
	for i, d := range st.Dirty {
		if d {
			c.dirty[i] = 1
		} else {
			c.dirty[i] = 0
		}
	}
	c.resetTiming()
	return nil
}

// execute computes an instruction's issue (operands ready, scheduler entry
// freed) and completion times, given the earliest window entry `issue`.
func (c *Core) execute(issue sim.Time, in Instr) (issueAt, complete sim.Time) {
	if !in.IsMem {
		if in.Dep && c.prevComplete > issue {
			issue = c.prevComplete
		}
		return issue, issue + 1
	}
	if in.IsStore {
		// Stores retire through the store buffer in one cycle; the cache
		// update happens off the critical path.
		c.accessL1(issue, in.Block, true)
		return issue, issue + 1
	}
	if in.Dep && c.lastLoad > issue {
		issue = c.lastLoad
	}
	complete = c.accessL1(issue, in.Block, false)
	c.lastLoad = complete
	return issue, complete
}

// accessL1 performs the L1 lookup, escalating to the L2 on a miss, and
// returns the data-ready time (loads) or the update time (stores).
func (c *Core) accessL1(at sim.Time, b mem.Block, store bool) sim.Time {
	// One fused set scan covers the hit promote and the miss install (the
	// scalar TouchAt-then-InsertAt sequence searched the set twice on a
	// miss).
	idx, hit, victim, evicted := c.l1.TouchOrInsertAt(b)
	if hit {
		c.res.L1DHits++
		c.cum.l1dHits++
		if store {
			c.dirty[idx] = 1
			if c.coh != nil {
				// BusRdX: a store to a possibly shared line must gain
				// exclusive ownership before the write is architecturally
				// visible; the invalidations run off the critical path.
				c.coh.StoreNotify(c.id, b)
			}
		}
		return at + c.sys.L1Latency
	}
	c.res.L1DMisses++
	c.cum.l1dMisses++
	if evicted && c.dirty[idx] != 0 {
		// Dirty writeback to the L2 (the TLC "store" path: written
		// without a tag comparison, fire-and-forget).
		c.l2.Access(at, mem.Request{Block: victim, Type: mem.Store, Core: c.id})
		c.res.L2Stores++
		c.cum.l2Stores++
	}
	if store {
		c.dirty[idx] = 1
		if c.coh != nil {
			// BusRdX on a store miss: write-allocate keeps the timing-only
			// model, but ownership still transfers in the directory.
			c.coh.StoreNotify(c.id, b)
		}
		// Write-allocate without fetch: timing-only model.
		return at + c.sys.L1Latency
	}
	c.dirty[idx] = 0
	// Load miss: bounded by the outstanding-request limit.
	start := c.mshrAdmit(at)
	out := c.l2.Access(start, mem.Request{Block: b, Type: mem.Load, Core: c.id})
	c.res.L2Loads++
	c.cum.l2Loads++
	c.mshrTrack(out.CompleteAt)
	return out.CompleteAt
}

// mshrAdmit delays a request while all MSHRs are busy and returns its
// admission time.
func (c *Core) mshrAdmit(at sim.Time) sim.Time {
	// Drop completed entries.
	live := c.outstanding[:0]
	for _, t := range c.outstanding {
		if t > at {
			live = append(live, t)
		}
	}
	c.outstanding = live
	if len(c.outstanding) < c.sys.MaxOutstanding {
		return at
	}
	c.cum.mshrWaits++
	// Wait for the earliest completion, then free that entry.
	earliest := c.outstanding[0]
	for _, t := range c.outstanding[1:] {
		if t < earliest {
			earliest = t
		}
	}
	removed := false
	live = c.outstanding[:0]
	for _, t := range c.outstanding {
		if !removed && t == earliest {
			removed = true
			continue
		}
		live = append(live, t)
	}
	c.outstanding = live
	return earliest
}

// mshrTrack records a new outstanding completion.
func (c *Core) mshrTrack(completeAt sim.Time) {
	c.outstanding = append(c.outstanding, completeAt)
}
