package cpu

import (
	"testing"

	"tlc/internal/config"
	"tlc/internal/l2"
	"tlc/internal/mem"
	"tlc/internal/sim"
)

// fixedL2 answers every load with a fixed lookup latency and always hits.
type fixedL2 struct {
	lat    sim.Time
	misses bool
	memLat sim.Time
}

func (f *fixedL2) Access(at sim.Time, req mem.Request) l2.Outcome {
	if req.Type == mem.Store {
		return l2.Outcome{Hit: true, ResolveAt: at, CompleteAt: at}
	}
	resolve := at + f.lat
	complete := resolve
	if f.misses {
		complete = resolve + f.memLat
	}
	return l2.Outcome{Hit: !f.misses, ResolveAt: resolve, CompleteAt: complete, Predictable: true, BanksAccessed: 1}
}
func (f *fixedL2) Warm(mem.Block)          {}
func (f *fixedL2) Contains(mem.Block) bool { return true }

// listStream replays a fixed instruction slice.
type listStream struct {
	ins []Instr
	i   int
}

func (s *listStream) Next() Instr {
	in := s.ins[s.i%len(s.ins)]
	s.i++
	return in
}

// pattern builds a loop of `period` instructions with one L2-missing load
// (unique addresses so the L1 always misses) followed by a chain of
// dependent ALU ops.
func pattern(period, chain int) *listStream {
	var ins []Instr
	addr := mem.Block(0)
	for len(ins) < period {
		addr += 997 // L1-conflict-free stride, always a fresh block
		ins = append(ins, Instr{IsMem: true, Block: addr})
		for c := 0; c < chain; c++ {
			ins = append(ins, Instr{Dep: true})
		}
		for len(ins)%period != 0 && len(ins) < period {
			ins = append(ins, Instr{})
		}
	}
	return &listStream{ins: ins}
}

// uniqueLoads emits loads to fresh blocks so every one reaches the L2.
type uniqueLoads struct {
	addr mem.Block
	dep  bool
}

func (u *uniqueLoads) Next() Instr {
	u.addr += 997
	return Instr{IsMem: true, Block: u.addr, Dep: u.dep}
}

func run(t *testing.T, s Stream, l2c l2.Cache, n uint64) Result {
	t.Helper()
	core := New(config.DefaultSystem(), l2c)
	return core.Run(s, n)
}

func TestIdealIPCIsFetchWidth(t *testing.T) {
	res := run(t, &listStream{ins: []Instr{{}}}, &fixedL2{lat: 10}, 100_000)
	if got := res.IPC(); got < 3.9 || got > 4.01 {
		t.Fatalf("pure-ALU IPC %.2f, want ~4 (fetch width)", got)
	}
}

func TestSerialChainLimitsIPC(t *testing.T) {
	res := run(t, &listStream{ins: []Instr{{Dep: true}}}, &fixedL2{lat: 10}, 100_000)
	if got := res.IPC(); got < 0.95 || got > 1.05 {
		t.Fatalf("fully serial IPC %.2f, want ~1", got)
	}
}

func TestMispredictCostsPipelineRefill(t *testing.T) {
	clean := run(t, &listStream{ins: []Instr{{}}}, &fixedL2{lat: 10}, 100_000)
	noisy := run(t, &listStream{ins: append(make([]Instr, 99), Instr{Mispredict: true})}, &fixedL2{lat: 10}, 100_000)
	// 1000 mispredicts x 30 stages = 30K extra cycles.
	extra := int64(noisy.Cycles) - int64(clean.Cycles)
	if extra < 25_000 || extra > 35_000 {
		t.Fatalf("mispredict overhead %d cycles, want ~30K", extra)
	}
}

func TestL2HitLatencyReachesExecutionTime(t *testing.T) {
	// Dependent loads at L2 latencies 13 vs 25: the slower L2 must cost
	// roughly the latency difference per load.
	fast := run(t, &uniqueLoads{dep: true}, &fixedL2{lat: 13}, 50_000)
	slow := run(t, &uniqueLoads{dep: true}, &fixedL2{lat: 25}, 50_000)
	if slow.Cycles <= fast.Cycles {
		t.Fatalf("L2 latency invisible: %d vs %d cycles", fast.Cycles, slow.Cycles)
	}
	perLoad := float64(slow.Cycles-fast.Cycles) / 50_000
	if perLoad < 8 || perLoad > 14 {
		t.Fatalf("dependent loads expose %.1f cycles each, want ~12", perLoad)
	}
}

func TestL2HitLatencyPartiallyHiddenWithoutDeps(t *testing.T) {
	// Independent loads overlap: exposure far below the latency delta,
	// but the ROB still cannot hide everything at high load rates.
	fast := run(t, &uniqueLoads{}, &fixedL2{lat: 13}, 50_000)
	slow := run(t, &uniqueLoads{}, &fixedL2{lat: 25}, 50_000)
	if slow.Cycles < fast.Cycles {
		t.Fatalf("independent loads: slower L2 cannot be faster (%d vs %d)", fast.Cycles, slow.Cycles)
	}
}

func TestMixedPatternExposesL2Latency(t *testing.T) {
	// The realistic shape: sparse L2 loads each feeding a short dependent
	// ALU chain. Latency differences must show in cycles.
	fast := run(t, pattern(50, 3), &fixedL2{lat: 13}, 200_000)
	slow := run(t, pattern(50, 3), &fixedL2{lat: 25}, 200_000)
	if slow.Cycles <= fast.Cycles {
		t.Fatalf("mixed pattern hides L2 latency entirely: %d vs %d", fast.Cycles, slow.Cycles)
	}
}

func TestMissesDominateWhenPresent(t *testing.T) {
	hit := run(t, &uniqueLoads{}, &fixedL2{lat: 13}, 20_000)
	miss := run(t, &uniqueLoads{}, &fixedL2{lat: 13, misses: true, memLat: 300}, 20_000)
	if miss.Cycles < hit.Cycles*3 {
		t.Fatalf("all-miss run only %dx slower", miss.Cycles/hit.Cycles)
	}
}

func TestMSHRLimitsOverlap(t *testing.T) {
	// With all loads missing to memory, throughput is bounded by 8
	// outstanding requests: >= memLat/8 cycles per load.
	res := run(t, &uniqueLoads{}, &fixedL2{lat: 13, misses: true, memLat: 300}, 10_000)
	perLoad := float64(res.Cycles) / 10_000
	if perLoad < 300.0/8-5 {
		t.Fatalf("per-load %.1f cycles beats the MSHR bound %.1f", perLoad, 300.0/8)
	}
}

func TestL1FiltersRepeatedAccesses(t *testing.T) {
	same := &listStream{ins: []Instr{{IsMem: true, Block: 42}}}
	res := run(t, same, &fixedL2{lat: 13}, 10_000)
	if res.L2Loads > 1 {
		t.Fatalf("%d L2 loads for a single hot block, want <=1", res.L2Loads)
	}
	if res.L1DHits == 0 {
		t.Fatal("L1 recorded no hits")
	}
}

func TestDirtyEvictionsReachL2AsStores(t *testing.T) {
	// Store to many distinct blocks: L1 fills with dirty lines whose
	// evictions must reach the L2 as stores.
	var ins []Instr
	for i := 0; i < 4096; i++ {
		ins = append(ins, Instr{IsMem: true, IsStore: true, Block: mem.Block(i * 1024)})
	}
	res := run(t, &listStream{ins: ins}, &fixedL2{lat: 13}, 4096)
	if res.L2Stores == 0 {
		t.Fatal("no dirty writebacks reached the L2")
	}
}

func TestWarmTouchesL2Functionally(t *testing.T) {
	probe := &warmProbe{}
	core := New(config.DefaultSystem(), probe)
	core.Warm(&uniqueLoads{}, 1000)
	if probe.warmed == 0 {
		t.Fatal("warm did not reach the L2")
	}
	if probe.accessed != 0 {
		t.Fatal("warm must not perform timed accesses")
	}
}

type warmProbe struct {
	warmed   int
	accessed int
}

func (w *warmProbe) Access(at sim.Time, req mem.Request) l2.Outcome {
	w.accessed++
	return l2.Outcome{Hit: true, ResolveAt: at, CompleteAt: at}
}
func (w *warmProbe) Warm(mem.Block)          { w.warmed++ }
func (w *warmProbe) Contains(mem.Block) bool { return false }

func TestBackToBackRunsAreIdentical(t *testing.T) {
	// Regression test for stale per-run timing state: retire/issued ring
	// buffers, fetchPenalty, prevComplete, lastLoad, and the MSHR set used
	// to leak from one Run into the next, so a second identical Run on the
	// same core reported different cycles.
	core := New(config.DefaultSystem(), &fixedL2{lat: 13})
	// A small cyclic footprint that fits in the L1: warming it makes both
	// timed runs all-hit, so identical instruction streams must produce
	// identical timing once per-run state resets.
	mk := func() Stream {
		var ins []Instr
		for i := 0; i < 64; i++ {
			ins = append(ins, Instr{IsMem: true, Block: mem.Block(i), Dep: i%8 == 0})
			ins = append(ins, Instr{Dep: true}, Instr{Mispredict: i%16 == 0})
		}
		return &listStream{ins: ins}
	}
	core.Warm(mk(), 10_000)
	first := core.Run(mk(), 50_000)
	second := core.Run(mk(), 50_000)
	if first.Cycles != second.Cycles {
		t.Fatalf("back-to-back identical runs: %d vs %d cycles", first.Cycles, second.Cycles)
	}
	if first != second {
		t.Fatalf("back-to-back identical runs diverged: %+v vs %+v", first, second)
	}
}

func TestRunMatchesFreshCore(t *testing.T) {
	// A second run on a reused core must match a fresh core given the same
	// architectural (cache) state — timing state is per-run, cache state is
	// not.
	stream := func() Stream { return &listStream{ins: []Instr{{IsMem: true, Block: 7}, {Dep: true}}} }
	reused := New(config.DefaultSystem(), &fixedL2{lat: 13})
	reused.Warm(stream(), 1_000)
	reused.Run(stream(), 20_000)
	again := reused.Run(stream(), 20_000)

	fresh := New(config.DefaultSystem(), &fixedL2{lat: 13})
	fresh.Warm(stream(), 1_000)
	want := fresh.Run(stream(), 20_000)
	if again.Cycles != want.Cycles {
		t.Fatalf("reused core %d cycles, fresh core %d", again.Cycles, want.Cycles)
	}
}

func TestDirtyBitsTrackEvictions(t *testing.T) {
	// Store then force the set's ways to turn over: exactly the dirty
	// victims must reach the L2 as stores, and clean reloads must not.
	probe := &countingL2{}
	core := New(config.DefaultSystem(), probe)
	sets := config.DefaultSystem().L1Bytes / mem.BlockBytes / config.DefaultSystem().L1Assoc
	var ins []Instr
	// One dirty block, then enough clean loads in the same set to evict it.
	ins = append(ins, Instr{IsMem: true, IsStore: true, Block: mem.Block(sets)})
	for i := 2; i < 8; i++ {
		ins = append(ins, Instr{IsMem: true, Block: mem.Block(i * sets)})
	}
	core.Run(&listStream{ins: ins}, uint64(len(ins)))
	if probe.stores != 1 {
		t.Fatalf("%d dirty writebacks, want exactly 1", probe.stores)
	}
}

type countingL2 struct {
	stores uint64
}

func (c *countingL2) Access(at sim.Time, req mem.Request) l2.Outcome {
	if req.Type == mem.Store {
		c.stores++
	}
	return l2.Outcome{Hit: true, ResolveAt: at + 10, CompleteAt: at + 10}
}
func (c *countingL2) Warm(mem.Block)          {}
func (c *countingL2) Contains(mem.Block) bool { return true }
