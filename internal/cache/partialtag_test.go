package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tlc/internal/mem"
)

func TestPartialTagNoFalseNegatives(t *testing.T) {
	const sets, banks, assoc = 16, 4, 2
	p := NewPartialTags(sets, banks, assoc)
	b := blk(5, 3, sets)
	p.Install(b, 2, 1)
	cands := p.Candidates(b)
	if len(cands) != 1 || cands[0] != 2 {
		t.Fatalf("candidates %v, want [2]", cands)
	}
	if !p.MatchesIn(b, 2) {
		t.Fatal("MatchesIn missed installed block")
	}
	if p.MatchesIn(b, 1) {
		t.Fatal("MatchesIn matched wrong bank")
	}
}

func TestPartialTagFalsePositive(t *testing.T) {
	const sets = 16
	p := NewPartialTags(sets, 2, 1)
	// Two different blocks, same set, tags differing only above bit 6:
	// partial tags collide.
	a := blk(0x01, 3, sets)
	b := blk(0x41, 3, sets)
	if a.PartialTag(sets) != b.PartialTag(sets) {
		t.Fatal("test blocks should share a partial tag")
	}
	p.Install(a, 0, 0)
	cands := p.Candidates(b)
	if len(cands) != 1 || cands[0] != 0 {
		t.Fatalf("expected false-positive candidate [0], got %v", cands)
	}
}

func TestPartialTagClear(t *testing.T) {
	const sets = 16
	p := NewPartialTags(sets, 2, 2)
	b := blk(5, 3, sets)
	p.Install(b, 1, 0)
	p.Clear(b, 1, 0)
	if len(p.Candidates(b)) != 0 {
		t.Fatal("cleared entry still matches")
	}
}

func TestPartialTagMatchCount(t *testing.T) {
	const sets = 16
	p := NewPartialTags(sets, 1, 4)
	a := blk(0x05, 3, sets)
	b := blk(0x45, 3, sets) // same partial tag as a
	c := blk(0x06, 3, sets) // different partial tag
	p.Install(a, 0, 0)
	p.Install(b, 0, 1)
	p.Install(c, 0, 2)
	if got := p.MatchCount(a, 0); got != 2 {
		t.Fatalf("MatchCount=%d, want 2 (multi-match)", got)
	}
	if got := p.MatchCount(c, 0); got != 1 {
		t.Fatalf("MatchCount=%d, want 1", got)
	}
}

func TestPartialTagEntries(t *testing.T) {
	p := NewPartialTags(512, 16, 2)
	if p.Entries() != 512*16*2 {
		t.Fatalf("entries %d", p.Entries())
	}
}

func TestPartialTagIndexPanics(t *testing.T) {
	p := NewPartialTags(16, 2, 2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range bank did not panic")
		}
	}()
	p.Install(blk(1, 0, 16), 5, 0)
}

// Property: a partial tag structure kept in sync with a SetAssoc bank never
// produces a false negative — any resident block is always a candidate in
// its bank.
func TestQuickPartialTagConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const sets, assoc = 8, 2
		bank := NewSetAssoc(sets, assoc)
		p := NewPartialTags(sets, 1, assoc)
		resident := map[mem.Block]bool{}
		for step := 0; step < 200; step++ {
			b := blk(uint64(rng.Intn(64)), rng.Intn(sets), sets)
			victim, ev := bank.Insert(b)
			if ev {
				delete(resident, victim)
			}
			resident[b] = true
			// Rebuild the shadow entries for this set from the bank, as the
			// DNUCA controller does on migration completion.
			for way := 0; way < assoc; way++ {
				p.Clear(mem.Block(uint64(b.SetIndex(sets))), 0, way)
			}
			for rb := range resident {
				if rb.SetIndex(sets) == b.SetIndex(sets) {
					w, ok := bank.WayOf(rb)
					if !ok {
						return false
					}
					p.Install(rb, 0, w)
				}
			}
			// No false negatives for any resident block.
			for rb := range resident {
				if !p.MatchesIn(rb, 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBankTiming(t *testing.T) {
	b := NewBank(16, 4, 8)
	if done := b.Reserve(0); done != 8 {
		t.Fatalf("first access done at %d, want 8", done)
	}
	// Second access at cycle 0 queues behind the first.
	if done := b.Reserve(0); done != 16 {
		t.Fatalf("queued access done at %d, want 16", done)
	}
	// Access after the port frees starts immediately.
	if done := b.Reserve(100); done != 108 {
		t.Fatalf("idle access done at %d, want 108", done)
	}
	if b.Accesses != 3 {
		t.Fatalf("access count %d, want 3", b.Accesses)
	}
	if b.PortBusyCycles() != 24 {
		t.Fatalf("busy cycles %d, want 24", b.PortBusyCycles())
	}
	if b.PortWaits() != 1 {
		t.Fatalf("port waits %d, want 1", b.PortWaits())
	}
}

func TestBankSizeAndString(t *testing.T) {
	// 512 KB bank: 2048 sets x 4 ways x 64 B.
	b := NewBank(2048, 4, 8)
	if b.SizeBytes() != 512*1024 {
		t.Fatalf("bank size %d, want 512KB", b.SizeBytes())
	}
	if b.String() != "bank{512KB 4-way 8cyc}" {
		t.Fatalf("bank string %q", b.String())
	}
}

func TestBankZeroLatencyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero access time did not panic")
		}
	}()
	NewBank(16, 2, 0)
}
