package cache

import (
	"math/rand"
	"testing"

	"tlc/internal/mem"
)

// churn applies n random inserts/touches/removes to c.
func churn(c *SetAssoc, rng *rand.Rand, n int) {
	for i := 0; i < n; i++ {
		b := mem.Block(rng.Intn(4 * c.Blocks()))
		switch rng.Intn(4) {
		case 0:
			c.Remove(b)
		case 1:
			c.Touch(b)
		default:
			c.Insert(b)
		}
	}
}

func TestSetAssocSnapshotRestoreRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewSetAssoc(64, 8)
	churn(c, rng, 5000)
	st := c.Snapshot()

	// A fresh array restored from the state must behave identically: replay
	// the same operation stream on both and compare outcomes.
	c2 := NewSetAssoc(64, 8)
	if err := c2.Restore(st); err != nil {
		t.Fatal(err)
	}
	opRNG1 := rand.New(rand.NewSource(2))
	opRNG2 := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		b := mem.Block(opRNG1.Intn(4 * c.Blocks()))
		if b2 := mem.Block(opRNG2.Intn(4 * c.Blocks())); b2 != b {
			t.Fatal("op streams diverged")
		}
		v1, e1 := c.Insert(b)
		v2, e2 := c2.Insert(b)
		if v1 != v2 || e1 != e2 {
			t.Fatalf("op %d: original evicted (%v,%v), restored evicted (%v,%v)", i, v1, e1, v2, e2)
		}
	}
	if err := c2.checkLRUPermutation(); err != nil {
		t.Fatal(err)
	}
}

func TestSetAssocSnapshotIsDeepCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := NewSetAssoc(16, 4)
	churn(c, rng, 500)
	st := c.Snapshot()
	occ := 0
	for _, v := range st.Valid {
		if v {
			occ++
		}
	}
	churn(c, rng, 500)
	occAfter := 0
	for _, v := range st.Valid {
		if v {
			occAfter++
		}
	}
	if occ != occAfter {
		t.Fatal("mutating the array changed a captured snapshot")
	}
	// Restoring must also not alias: mutate the array after restore and
	// confirm the state is unchanged by restoring into a second array.
	c2 := NewSetAssoc(16, 4)
	if err := c2.Restore(st); err != nil {
		t.Fatal(err)
	}
	churn(c2, rng, 500)
	c3 := NewSetAssoc(16, 4)
	if err := c3.Restore(st); err != nil {
		t.Fatal(err)
	}
	if c3.Occupancy() != occ {
		t.Fatal("mutating a restored array changed the stored state")
	}
}

func TestSetAssocRestoreRejectsGeometryMismatch(t *testing.T) {
	st := NewSetAssoc(64, 8).Snapshot()
	if err := NewSetAssoc(32, 8).Restore(st); err == nil {
		t.Fatal("restore accepted a state with the wrong set count")
	}
	if err := NewSetAssoc(64, 4).Restore(st); err == nil {
		t.Fatal("restore accepted a state with the wrong associativity")
	}
	st.Lines = st.Lines[:10]
	if err := NewSetAssoc(64, 8).Restore(st); err == nil {
		t.Fatal("restore accepted truncated state arrays")
	}
}

func TestPartialTagsSnapshotRestoreRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := NewPartialTags(32, 4, 8)
	for i := 0; i < 2000; i++ {
		b := mem.Block(rng.Intn(1 << 14))
		bank := rng.Intn(4)
		way := rng.Intn(8)
		if rng.Intn(5) == 0 {
			p.Clear(b, bank, way)
		} else {
			p.Install(b, bank, way)
		}
	}
	st := p.Snapshot()
	p2 := NewPartialTags(32, 4, 8)
	if err := p2.Restore(st); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		b := mem.Block(rng.Intn(1 << 14))
		for bank := 0; bank < 4; bank++ {
			if p.MatchCount(b, bank) != p2.MatchCount(b, bank) {
				t.Fatalf("restored shadow disagrees on block %d bank %d", b, bank)
			}
		}
	}
	// Deep copy: mutating the original must not change the snapshot.
	p.Install(mem.Block(1), 0, 0)
	p3 := NewPartialTags(32, 4, 8)
	if err := p3.Restore(st); err != nil {
		t.Fatal(err)
	}
	if p3.MatchCount(mem.Block(1), 0) != p2.MatchCount(mem.Block(1), 0) {
		// p2 was restored before the mutation; p3 after. Equal counts mean
		// the snapshot was unaffected.
		t.Fatal("mutating the shadow changed a captured snapshot")
	}
}

func TestPartialTagsRestoreRejectsGeometryMismatch(t *testing.T) {
	st := NewPartialTags(32, 4, 8).Snapshot()
	if err := NewPartialTags(32, 8, 8).Restore(st); err == nil {
		t.Fatal("restore accepted a state with the wrong bank count")
	}
	st.Tags = st.Tags[:5]
	if err := NewPartialTags(32, 4, 8).Restore(st); err == nil {
		t.Fatal("restore accepted truncated state arrays")
	}
}
