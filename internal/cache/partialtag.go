package cache

import (
	"fmt"

	"tlc/internal/mem"
)

// PartialTags is the 6-bit partial-tag structure DNUCA keeps at its central
// controller (Section 2) and TLCopt keeps inside each bank (Section 4). It
// shadows a set of cache banks: for each (set, bank, way) it records the low
// six tag bits of the resident block, so a lookup can name the candidate
// banks that might hold a block without accessing them.
//
// Partial tags admit false positives (two tags sharing low bits) but never
// false negatives — provided the structure is kept consistent with the bank
// contents, which is exactly the synchronization burden the paper charges
// DNUCA with.
type PartialTags struct {
	sets  int
	banks int
	assoc int
	// tag[(set*banks+bank)*assoc+way], gated by valid.
	tags  []uint8
	valid []bool
}

// NewPartialTags shadows `banks` banks, each with the given per-bank sets
// and associativity.
func NewPartialTags(sets, banks, assoc int) *PartialTags {
	if sets <= 0 || banks <= 0 || assoc <= 0 {
		panic(fmt.Sprintf("cache: bad partial tag geometry %d/%d/%d", sets, banks, assoc))
	}
	n := sets * banks * assoc
	return &PartialTags{
		sets:  sets,
		banks: banks,
		assoc: assoc,
		tags:  make([]uint8, n),
		valid: make([]bool, n),
	}
}

// Install records block b residing in bank at the given way.
func (p *PartialTags) Install(b mem.Block, bank, way int) {
	idx := p.index(b.SetIndex(p.sets), bank, way)
	p.tags[idx] = b.PartialTag(p.sets)
	p.valid[idx] = true
}

// Clear invalidates the entry for (set of b, bank, way).
func (p *PartialTags) Clear(b mem.Block, bank, way int) {
	idx := p.index(b.SetIndex(p.sets), bank, way)
	p.valid[idx] = false
}

// Candidates reports which banks have at least one way whose partial tag
// matches b. The caller excludes banks it has already probed.
func (p *PartialTags) Candidates(b mem.Block) []int {
	return p.AppendCandidates(nil, b)
}

// AppendCandidates appends the matching banks to dst and returns it — the
// allocation-free form of Candidates for callers that reuse a scratch
// buffer across lookups.
func (p *PartialTags) AppendCandidates(dst []int, b mem.Block) []int {
	set := b.SetIndex(p.sets)
	pt := b.PartialTag(p.sets)
	for bank := 0; bank < p.banks; bank++ {
		for way := 0; way < p.assoc; way++ {
			idx := p.index(set, bank, way)
			if p.valid[idx] && p.tags[idx] == pt {
				dst = append(dst, bank)
				break
			}
		}
	}
	return dst
}

// MatchesIn reports whether bank has any way matching b's partial tag.
func (p *PartialTags) MatchesIn(b mem.Block, bank int) bool {
	set := b.SetIndex(p.sets)
	pt := b.PartialTag(p.sets)
	for way := 0; way < p.assoc; way++ {
		idx := p.index(set, bank, way)
		if p.valid[idx] && p.tags[idx] == pt {
			return true
		}
	}
	return false
}

// MatchCount reports the number of ways in bank matching b's partial tag —
// the multi-match case TLCopt resolves with a second round trip.
func (p *PartialTags) MatchCount(b mem.Block, bank int) int {
	set := b.SetIndex(p.sets)
	pt := b.PartialTag(p.sets)
	n := 0
	for way := 0; way < p.assoc; way++ {
		idx := p.index(set, bank, way)
		if p.valid[idx] && p.tags[idx] == pt {
			n++
		}
	}
	return n
}

// SyncSet makes bank's shadow of one set exactly match the given resident
// lines, the resynchronization the DNUCA controller performs when a fill or
// migration mutates a set.
func (p *PartialTags) SyncSet(set, bank int, lines []Line) {
	for way := 0; way < p.assoc; way++ {
		p.valid[p.index(set, bank, way)] = false
	}
	for _, ln := range lines {
		if ln.Block.SetIndex(p.sets) != set {
			panic("cache: SyncSet line from a different set")
		}
		idx := p.index(set, bank, ln.Way)
		p.tags[idx] = ln.Block.PartialTag(p.sets)
		p.valid[idx] = true
	}
}

// Entries reports the total capacity, used for the area model: DNUCA's
// partial tag structure covers every line in the cache.
func (p *PartialTags) Entries() int { return p.sets * p.banks * p.assoc }

func (p *PartialTags) index(set, bank, way int) int {
	if bank < 0 || bank >= p.banks || way < 0 || way >= p.assoc {
		panic(fmt.Sprintf("cache: partial tag index bank=%d way=%d out of range", bank, way))
	}
	return (set*p.banks+bank)*p.assoc + way
}
