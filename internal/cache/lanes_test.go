package cache

import (
	"reflect"
	"testing"

	"tlc/internal/mem"
)

// laneRefs builds a pseudo-random warm stream over a space a few times the
// largest lane's capacity: hits, misses into free ways, evicting misses,
// ~1/4 stores, and (when withSentinel is set) occasional references to the
// invalidLine sentinel block, which must route through the valid-checked
// generic path.
func laneRefs(n int, withSentinel bool) []WarmRef {
	refs := make([]WarmRef, n)
	x := uint64(3)
	for i := range refs {
		x = x*6364136223846793005 + 1442695040888963407
		b := mem.Block(x >> 52)
		if withSentinel && x%97 == 0 {
			b = invalidLine
		}
		refs[i] = WarmRef{Block: b, Store: x%4 == 0}
	}
	return refs
}

// TestWarmSweepLanesMatchesScalar is the lane layout's correctness gate:
// for every geometry mix — all-2-way (the branch-free kernel), mixed
// associativity (the generic path), and a single lane — a shared
// WarmSweepLanes pass over one stream must leave every lane's array state,
// dirty bits, and spill sequence bit-identical to an independent
// SetAssoc.WarmSweep fed the same references.
func TestWarmSweepLanesMatchesScalar(t *testing.T) {
	// kernel selects which scalar WarmSweep body serves as the oracle, by
	// granting or denying it spill headroom: an all-2-way lane group runs
	// the branch-free kernel and must match warmSweep2; a mixed group runs
	// the generic lane path and must match the generic scalar loop. (The
	// two bodies themselves may diverge only on streams containing the
	// invalidLine sentinel, which real workloads never produce — the
	// kernel's tag-authoritative validity is part of its contract.)
	cases := []struct {
		name   string
		geoms  []LaneGeom
		kernel bool
	}{
		{"all-2-way", []LaneGeom{{64, 2}, {32, 2}, {128, 2}}, true},
		{"mixed-assoc", []LaneGeom{{64, 2}, {16, 4}, {8, 8}}, false},
		{"single-lane", []LaneGeom{{32, 2}}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ln := NewLanes(tc.geoms)
			scalars := make([]*SetAssoc, len(tc.geoms))
			dirties := make([][]uint8, len(tc.geoms))
			scalarSpills := make([][]mem.Block, len(tc.geoms))
			laneSpills := make([][]mem.Block, len(tc.geoms))
			for l, g := range tc.geoms {
				scalars[l] = NewSetAssoc(g.Sets, g.Assoc)
				dirties[l] = make([]uint8, g.Sets*g.Assoc)
				// Start the lane from the scalar array, so any divergence
				// below is the sweep's, not the initial state's.
				ln.LoadLane(l, scalars[l], dirties[l])
			}
			refs := laneRefs(8192, true)
			const batch = 512
			for off := 0; off < len(refs); off += batch {
				chunk := refs[off : off+batch]
				for l := range laneSpills {
					// Headroom for two slots per reference keeps the
					// branch-free kernel eligible, as the cpu warmer does;
					// a zero-capacity scalar spill forces the generic body.
					if tc.kernel {
						scalarSpills[l] = make([]mem.Block, 0, 2*batch)
					} else {
						scalarSpills[l] = nil
					}
					laneSpills[l] = make([]mem.Block, 0, 2*batch)
				}
				out := ln.WarmSweepLanes(chunk, laneSpills)
				for l, c := range scalars {
					scalarSpills[l] = c.WarmSweep(chunk, dirties[l], scalarSpills[l])
					if !reflect.DeepEqual(scalarSpills[l], out[l]) {
						t.Fatalf("lane %d batch at %d: spills diverged: scalar %d blocks, lanes %d",
							l, off, len(scalarSpills[l]), len(out[l]))
					}
				}
			}
			for l, c := range scalars {
				got := NewSetAssoc(tc.geoms[l].Sets, tc.geoms[l].Assoc)
				gotDirty := make([]uint8, len(dirties[l]))
				ln.StoreLane(l, got, gotDirty)
				if !reflect.DeepEqual(got.Snapshot(), c.Snapshot()) {
					t.Errorf("lane %d: array state diverged from scalar WarmSweep", l)
				}
				if !reflect.DeepEqual(gotDirty, dirties[l]) {
					t.Errorf("lane %d: dirty bits diverged from scalar WarmSweep", l)
				}
				if err := got.checkLRUPermutation(); err != nil {
					t.Errorf("lane %d: LRU state corrupt: %v", l, err)
				}
			}
		})
	}
}

// TestWarmSweepLanesWithoutHeadroom forces the generic fallback on an
// all-2-way group (no spill headroom) and checks it against the scalar
// sweep, so both WarmSweepLanes bodies are pinned, not just the kernel.
func TestWarmSweepLanesWithoutHeadroom(t *testing.T) {
	geoms := []LaneGeom{{32, 2}, {64, 2}}
	ln := NewLanes(geoms)
	scalars := make([]*SetAssoc, len(geoms))
	dirties := make([][]uint8, len(geoms))
	for l, g := range geoms {
		scalars[l] = NewSetAssoc(g.Sets, g.Assoc)
		dirties[l] = make([]uint8, g.Sets*g.Assoc)
		ln.LoadLane(l, scalars[l], dirties[l])
	}
	refs := laneRefs(4096, true)
	// Zero-capacity spills cannot satisfy the kernel's headroom bound, so
	// the append-based path runs even though every lane is 2-way.
	out := ln.WarmSweepLanes(refs, make([][]mem.Block, len(geoms)))
	for l, c := range scalars {
		want := c.WarmSweep(refs, dirties[l], nil)
		if !reflect.DeepEqual(want, out[l]) {
			t.Fatalf("lane %d: fallback spills diverged", l)
		}
		got := NewSetAssoc(geoms[l].Sets, geoms[l].Assoc)
		gotDirty := make([]uint8, len(dirties[l]))
		ln.StoreLane(l, got, gotDirty)
		if !reflect.DeepEqual(got.Snapshot(), c.Snapshot()) {
			t.Errorf("lane %d: fallback array state diverged", l)
		}
		if !reflect.DeepEqual(gotDirty, dirties[l]) {
			t.Errorf("lane %d: fallback dirty bits diverged", l)
		}
	}
}

// TestWarmSweepLanesDoesNotAllocate pins the shared sweep at zero
// allocations once the lane block and spill buffers exist — for the
// branch-free kernel and for the generic path given spill capacity.
func TestWarmSweepLanesDoesNotAllocate(t *testing.T) {
	for _, tc := range []struct {
		name  string
		geoms []LaneGeom
	}{
		{"kernel", []LaneGeom{{64, 2}, {128, 2}, {32, 2}}},
		{"generic", []LaneGeom{{64, 2}, {16, 4}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ln := NewLanes(tc.geoms)
			refs := laneRefs(512, false)
			spills := make([][]mem.Block, len(tc.geoms))
			for l := range spills {
				spills[l] = make([]mem.Block, 0, 2*len(refs))
			}
			if allocs := testing.AllocsPerRun(10, func() {
				for l := range spills {
					spills[l] = spills[l][:0]
				}
				out := ln.WarmSweepLanes(refs, spills)
				for l := range spills {
					spills[l] = out[l]
				}
			}); allocs != 0 {
				t.Errorf("WarmSweepLanes allocates %.2f per call, want 0", allocs)
			}
		})
	}
}
