// Package cache provides the storage-array building blocks shared by every
// cache design in the paper: set-associative tag arrays with LRU
// replacement, 6-bit partial-tag stores, and a timed bank model with a
// single contended port.
package cache

import (
	"fmt"

	"tlc/internal/mem"
)

// SetAssoc is a set-associative tag array with true-LRU replacement.
// It tracks block presence only (this is a timing model, not a functional
// memory): Insert returns the victim so callers can model write-backs and
// migrations.
type SetAssoc struct {
	sets  int
	assoc int
	// lines[set*assoc+way] holds the block in that line; valid gates it.
	// Invariant: an invalid line always holds invalidLine, so the hot
	// 2-way probes can decide a hit from the tag compare alone without
	// loading the valid bytes. Snapshot normalizes the sentinel away, so
	// the exported state (and old checkpoints) keep zeros there.
	lines []mem.Block
	valid []uint8
	// lru[set*assoc+way] is the recency rank of the line: 0 = MRU,
	// assoc-1 = LRU. Ranks within a set are always a permutation.
	lru []uint8
}

// invalidLine marks an invalid way in the lines array. No real block takes
// this value (the workload's address layout spans well under 2⁶⁴); the one
// pathological caller — a hand-built trace referencing block ^0 — is routed
// to the valid-checked generic paths instead.
const invalidLine = ^mem.Block(0)

// NewSetAssoc returns an empty array with the given geometry. Sets must be
// a power of two (address arithmetic), assoc must fit the recency encoding.
func NewSetAssoc(sets, assoc int) *SetAssoc {
	if !mem.IsPow2(sets) {
		panic(fmt.Sprintf("cache: sets=%d is not a power of two", sets))
	}
	if assoc <= 0 || assoc > 255 {
		panic(fmt.Sprintf("cache: assoc=%d out of range", assoc))
	}
	n := sets * assoc
	c := &SetAssoc{
		sets:  sets,
		assoc: assoc,
		lines: make([]mem.Block, n),
		valid: make([]uint8, n),
		lru:   make([]uint8, n),
	}
	for i := range c.lines {
		c.lines[i] = invalidLine
	}
	for s := 0; s < sets; s++ {
		for w := 0; w < assoc; w++ {
			c.lru[s*assoc+w] = uint8(w)
		}
	}
	return c
}

// Sets reports the number of sets.
func (c *SetAssoc) Sets() int { return c.sets }

// Assoc reports the associativity.
func (c *SetAssoc) Assoc() int { return c.assoc }

// Blocks reports the total line capacity.
func (c *SetAssoc) Blocks() int { return c.sets * c.assoc }

// Lookup reports whether b is present. It does not update recency; pair it
// with Touch so probe-only paths (partial-tag checks, searches) leave the
// replacement state unchanged.
func (c *SetAssoc) Lookup(b mem.Block) bool {
	_, ok := c.find(b)
	return ok
}

// Touch marks b most-recently-used. It reports whether b was present.
func (c *SetAssoc) Touch(b mem.Block) bool {
	_, ok := c.TouchAt(b)
	return ok
}

// TouchAt is Touch returning the line index (set*assoc+way) of b so callers
// can maintain per-line side state (dirty bits) without a map. The index is
// stable until the line is evicted or removed.
func (c *SetAssoc) TouchAt(b mem.Block) (idx int, ok bool) {
	idx, ok = c.find(b)
	if !ok {
		return 0, false
	}
	c.promote(b.SetIndex(c.sets), idx)
	return idx, true
}

// Access is Lookup+Touch: the normal hit path.
func (c *SetAssoc) Access(b mem.Block) bool { return c.Touch(b) }

// Insert installs b as MRU in its set, evicting the LRU line if the set is
// full. It returns the evicted block and whether an eviction occurred.
// Inserting a block that is already present just refreshes its recency.
func (c *SetAssoc) Insert(b mem.Block) (victim mem.Block, evicted bool) {
	_, victim, evicted = c.InsertAt(b)
	return victim, evicted
}

// InsertAt is Insert returning the line index b now occupies, so callers
// keeping per-line side state can transfer the victim's state (the evicted
// block, if any, held the same index).
func (c *SetAssoc) InsertAt(b mem.Block) (idx int, victim mem.Block, evicted bool) {
	if idx, ok := c.TouchAt(b); ok {
		return idx, 0, false
	}
	set := b.SetIndex(c.sets)
	base := set * c.assoc
	// Prefer an invalid way; otherwise evict the LRU way.
	way := -1
	for w := 0; w < c.assoc; w++ {
		if c.valid[base+w] == 0 {
			way = w
			break
		}
	}
	if way == -1 {
		for w := 0; w < c.assoc; w++ {
			if c.lru[base+w] == uint8(c.assoc-1) {
				way = w
				break
			}
		}
		victim = c.lines[base+way]
		evicted = true
	}
	c.lines[base+way] = b
	c.valid[base+way] = 1
	c.promote(set, base+way)
	return base + way, victim, evicted
}

// TouchOrInsertAt fuses TouchAt with the InsertAt miss path in a single set
// scan: on a hit it promotes b and reports hit=true; on a miss it installs b
// (reusing an invalid way, else evicting the LRU way) and reports the victim.
// State evolution is identical to TouchAt followed by InsertAt on miss — the
// warm fast path uses it to halve the set searches of the scalar sequence.
func (c *SetAssoc) TouchOrInsertAt(b mem.Block) (idx int, hit bool, victim mem.Block, evicted bool) {
	if c.assoc == 2 && b != invalidLine {
		// The split L1s are 2-way; a direct two-line compare with one-bit
		// recency beats the generic way loop on the warm fast path. Which
		// way holds a block is data-random, so the way select is arranged
		// as conditional moves; the only branch taken per call — hit or
		// miss — is the predictable one. The 2-way body is the entry so
		// the hot case pays one call, not two.
		base := b.SetIndex(c.sets) * 2
		lines := c.lines[base : base+2]
		// y is zero iff the way holds b; the invalidLine invariant makes
		// the tag compare alone authoritative.
		y0 := uint64(lines[0]) ^ uint64(b)
		y1 := uint64(lines[1]) ^ uint64(b)
		ymin := y0
		if y1 < ymin {
			ymin = y1
		}
		if ymin == 0 {
			w := base
			if y1 == 0 {
				w = base + 1
			}
			// Promote w unconditionally: rank d for way 0, 1-d for way 1
			// writes the same permutation the promote loop would leave,
			// without a data-dependent branch.
			d := uint8(w - base)
			lru := c.lru[base : base+2]
			lru[0] = d
			lru[1] = 1 - d
			return w, true, 0, false
		}
		return c.insert2(b, base)
	}
	set := b.SetIndex(c.sets)
	base := set * c.assoc
	// One pass finds b, the first invalid way, and the LRU way together.
	invalid, lruWay := -1, -1
	for w := 0; w < c.assoc; w++ {
		if c.valid[base+w] == 0 {
			if invalid == -1 {
				invalid = w
			}
			continue
		}
		if c.lines[base+w] == b {
			c.promote(set, base+w)
			return base + w, true, 0, false
		}
		if c.lru[base+w] == uint8(c.assoc-1) {
			lruWay = w
		}
	}
	way := invalid
	if way == -1 {
		way = lruWay
		victim = c.lines[base+way]
		evicted = true
	}
	c.lines[base+way] = b
	c.valid[base+way] = 1
	c.promote(set, base+way)
	return base + way, false, victim, evicted
}

// insert2 is the 2-way miss path: reuse an invalid way (lower way first,
// as the generic scan does), else evict the LRU way. Recency is a single
// bit per pair, so the install writes both ranks directly. State evolution
// is identical to the generic path.
func (c *SetAssoc) insert2(b mem.Block, base int) (idx int, hit bool, victim mem.Block, evicted bool) {
	way := base
	if c.valid[base] != 0 {
		if c.valid[base+1] == 0 {
			way = base + 1
		} else {
			if c.lru[base] != 1 {
				way = base + 1
			}
			victim = c.lines[way]
			evicted = true
		}
	}
	c.lines[way] = b
	c.valid[way] = 1
	if way == base {
		c.lru[base], c.lru[base+1] = 0, 1
	} else {
		c.lru[base], c.lru[base+1] = 1, 0
	}
	return way, false, victim, evicted
}

// Remove invalidates b (a migration extraction or external eviction) and
// reports whether it was present. The freed way becomes LRU.
func (c *SetAssoc) Remove(b mem.Block) bool {
	idx, ok := c.find(b)
	if !ok {
		return false
	}
	set := b.SetIndex(c.sets)
	base := set * c.assoc
	was := c.lru[idx]
	// Demote: every line below the removed one moves up a rank.
	for w := 0; w < c.assoc; w++ {
		if c.lru[base+w] > was {
			c.lru[base+w]--
		}
	}
	c.lru[idx] = uint8(c.assoc - 1)
	c.valid[idx] = 0
	c.lines[idx] = invalidLine
	return true
}

// VictimOf reports which block would be evicted if b were inserted now,
// without modifying anything. ok is false when the insert would not evict
// (hit, or a free way exists).
func (c *SetAssoc) VictimOf(b mem.Block) (victim mem.Block, ok bool) {
	if _, present := c.find(b); present {
		return 0, false
	}
	set := b.SetIndex(c.sets)
	base := set * c.assoc
	for w := 0; w < c.assoc; w++ {
		if c.valid[base+w] == 0 {
			return 0, false
		}
	}
	for w := 0; w < c.assoc; w++ {
		if c.lru[base+w] == uint8(c.assoc-1) {
			return c.lines[base+w], true
		}
	}
	panic("cache: set has no LRU way") // unreachable: ranks are a permutation
}

// Occupancy reports the number of valid lines.
func (c *SetAssoc) Occupancy() int {
	n := 0
	for _, v := range c.valid {
		if v != 0 {
			n++
		}
	}
	return n
}

// find returns the line index holding b.
func (c *SetAssoc) find(b mem.Block) (int, bool) {
	base := b.SetIndex(c.sets) * c.assoc
	for w := 0; w < c.assoc; w++ {
		if c.valid[base+w] != 0 && c.lines[base+w] == b {
			return base + w, true
		}
	}
	return 0, false
}

// promote makes line idx the MRU of set.
func (c *SetAssoc) promote(set, idx int) {
	was := c.lru[idx]
	if was == 0 {
		// Already MRU: the demotion loop would be a no-op. Re-touches of
		// the hottest line dominate warm streams, so this exit carries
		// most calls.
		return
	}
	base := set * c.assoc
	for w := 0; w < c.assoc; w++ {
		if c.lru[base+w] < was {
			c.lru[base+w]++
		}
	}
	c.lru[idx] = 0
}

// Line is one resident (way, block) pair within a set.
type Line struct {
	Way   int
	Block mem.Block
}

// LinesIn reports the valid lines of a set, in way order. Callers (the
// DNUCA controller) use it to resynchronize partial-tag shadows after a
// migration or fill mutates a set.
func (c *SetAssoc) LinesIn(set int) []Line {
	return c.AppendLinesIn(nil, set)
}

// AppendLinesIn appends the valid lines of a set to dst, in way order, and
// returns the extended slice. Passing a reused buffer (dst[:0] with capacity
// >= assoc) keeps the resynchronization path allocation-free — it is the
// hottest call on the fill/migration path.
func (c *SetAssoc) AppendLinesIn(dst []Line, set int) []Line {
	if set < 0 || set >= c.sets {
		panic(fmt.Sprintf("cache: set %d out of range", set))
	}
	base := set * c.assoc
	for w := 0; w < c.assoc; w++ {
		if c.valid[base+w] != 0 {
			dst = append(dst, Line{Way: w, Block: c.lines[base+w]})
		}
	}
	return dst
}

// checkLRUPermutation verifies the recency ranks of every set form a
// permutation; used by tests.
func (c *SetAssoc) checkLRUPermutation() error {
	for s := 0; s < c.sets; s++ {
		seen := make([]bool, c.assoc)
		for w := 0; w < c.assoc; w++ {
			r := c.lru[s*c.assoc+w]
			if int(r) >= c.assoc || seen[r] {
				return fmt.Errorf("set %d has invalid rank multiset", s)
			}
			seen[r] = true
		}
	}
	return nil
}
