// Package cache provides the storage-array building blocks shared by every
// cache design in the paper: set-associative tag arrays with LRU
// replacement, 6-bit partial-tag stores, and a timed bank model with a
// single contended port.
package cache

import (
	"fmt"

	"tlc/internal/mem"
)

// SetAssoc is a set-associative tag array with true-LRU replacement.
// It tracks block presence only (this is a timing model, not a functional
// memory): Insert returns the victim so callers can model write-backs and
// migrations.
type SetAssoc struct {
	sets  int
	assoc int
	// lines[set*assoc+way] holds the block in that line; valid gates it.
	lines []mem.Block
	valid []bool
	// lru[set*assoc+way] is the recency rank of the line: 0 = MRU,
	// assoc-1 = LRU. Ranks within a set are always a permutation.
	lru []uint8
}

// NewSetAssoc returns an empty array with the given geometry. Sets must be
// a power of two (address arithmetic), assoc must fit the recency encoding.
func NewSetAssoc(sets, assoc int) *SetAssoc {
	if !mem.IsPow2(sets) {
		panic(fmt.Sprintf("cache: sets=%d is not a power of two", sets))
	}
	if assoc <= 0 || assoc > 255 {
		panic(fmt.Sprintf("cache: assoc=%d out of range", assoc))
	}
	n := sets * assoc
	c := &SetAssoc{
		sets:  sets,
		assoc: assoc,
		lines: make([]mem.Block, n),
		valid: make([]bool, n),
		lru:   make([]uint8, n),
	}
	for s := 0; s < sets; s++ {
		for w := 0; w < assoc; w++ {
			c.lru[s*assoc+w] = uint8(w)
		}
	}
	return c
}

// Sets reports the number of sets.
func (c *SetAssoc) Sets() int { return c.sets }

// Assoc reports the associativity.
func (c *SetAssoc) Assoc() int { return c.assoc }

// Blocks reports the total line capacity.
func (c *SetAssoc) Blocks() int { return c.sets * c.assoc }

// Lookup reports whether b is present. It does not update recency; pair it
// with Touch so probe-only paths (partial-tag checks, searches) leave the
// replacement state unchanged.
func (c *SetAssoc) Lookup(b mem.Block) bool {
	_, ok := c.find(b)
	return ok
}

// Touch marks b most-recently-used. It reports whether b was present.
func (c *SetAssoc) Touch(b mem.Block) bool {
	_, ok := c.TouchAt(b)
	return ok
}

// TouchAt is Touch returning the line index (set*assoc+way) of b so callers
// can maintain per-line side state (dirty bits) without a map. The index is
// stable until the line is evicted or removed.
func (c *SetAssoc) TouchAt(b mem.Block) (idx int, ok bool) {
	idx, ok = c.find(b)
	if !ok {
		return 0, false
	}
	c.promote(b.SetIndex(c.sets), idx)
	return idx, true
}

// Access is Lookup+Touch: the normal hit path.
func (c *SetAssoc) Access(b mem.Block) bool { return c.Touch(b) }

// Insert installs b as MRU in its set, evicting the LRU line if the set is
// full. It returns the evicted block and whether an eviction occurred.
// Inserting a block that is already present just refreshes its recency.
func (c *SetAssoc) Insert(b mem.Block) (victim mem.Block, evicted bool) {
	_, victim, evicted = c.InsertAt(b)
	return victim, evicted
}

// InsertAt is Insert returning the line index b now occupies, so callers
// keeping per-line side state can transfer the victim's state (the evicted
// block, if any, held the same index).
func (c *SetAssoc) InsertAt(b mem.Block) (idx int, victim mem.Block, evicted bool) {
	if idx, ok := c.TouchAt(b); ok {
		return idx, 0, false
	}
	set := b.SetIndex(c.sets)
	base := set * c.assoc
	// Prefer an invalid way; otherwise evict the LRU way.
	way := -1
	for w := 0; w < c.assoc; w++ {
		if !c.valid[base+w] {
			way = w
			break
		}
	}
	if way == -1 {
		for w := 0; w < c.assoc; w++ {
			if c.lru[base+w] == uint8(c.assoc-1) {
				way = w
				break
			}
		}
		victim = c.lines[base+way]
		evicted = true
	}
	c.lines[base+way] = b
	c.valid[base+way] = true
	c.promote(set, base+way)
	return base + way, victim, evicted
}

// Remove invalidates b (a migration extraction or external eviction) and
// reports whether it was present. The freed way becomes LRU.
func (c *SetAssoc) Remove(b mem.Block) bool {
	idx, ok := c.find(b)
	if !ok {
		return false
	}
	set := b.SetIndex(c.sets)
	base := set * c.assoc
	was := c.lru[idx]
	// Demote: every line below the removed one moves up a rank.
	for w := 0; w < c.assoc; w++ {
		if c.lru[base+w] > was {
			c.lru[base+w]--
		}
	}
	c.lru[idx] = uint8(c.assoc - 1)
	c.valid[idx] = false
	c.lines[idx] = 0
	return true
}

// VictimOf reports which block would be evicted if b were inserted now,
// without modifying anything. ok is false when the insert would not evict
// (hit, or a free way exists).
func (c *SetAssoc) VictimOf(b mem.Block) (victim mem.Block, ok bool) {
	if _, present := c.find(b); present {
		return 0, false
	}
	set := b.SetIndex(c.sets)
	base := set * c.assoc
	for w := 0; w < c.assoc; w++ {
		if !c.valid[base+w] {
			return 0, false
		}
	}
	for w := 0; w < c.assoc; w++ {
		if c.lru[base+w] == uint8(c.assoc-1) {
			return c.lines[base+w], true
		}
	}
	panic("cache: set has no LRU way") // unreachable: ranks are a permutation
}

// Occupancy reports the number of valid lines.
func (c *SetAssoc) Occupancy() int {
	n := 0
	for _, v := range c.valid {
		if v {
			n++
		}
	}
	return n
}

// find returns the line index holding b.
func (c *SetAssoc) find(b mem.Block) (int, bool) {
	base := b.SetIndex(c.sets) * c.assoc
	for w := 0; w < c.assoc; w++ {
		if c.valid[base+w] && c.lines[base+w] == b {
			return base + w, true
		}
	}
	return 0, false
}

// promote makes line idx the MRU of set.
func (c *SetAssoc) promote(set, idx int) {
	base := set * c.assoc
	was := c.lru[idx]
	for w := 0; w < c.assoc; w++ {
		if c.lru[base+w] < was {
			c.lru[base+w]++
		}
	}
	c.lru[idx] = 0
}

// Line is one resident (way, block) pair within a set.
type Line struct {
	Way   int
	Block mem.Block
}

// LinesIn reports the valid lines of a set, in way order. Callers (the
// DNUCA controller) use it to resynchronize partial-tag shadows after a
// migration or fill mutates a set.
func (c *SetAssoc) LinesIn(set int) []Line {
	return c.AppendLinesIn(nil, set)
}

// AppendLinesIn appends the valid lines of a set to dst, in way order, and
// returns the extended slice. Passing a reused buffer (dst[:0] with capacity
// >= assoc) keeps the resynchronization path allocation-free — it is the
// hottest call on the fill/migration path.
func (c *SetAssoc) AppendLinesIn(dst []Line, set int) []Line {
	if set < 0 || set >= c.sets {
		panic(fmt.Sprintf("cache: set %d out of range", set))
	}
	base := set * c.assoc
	for w := 0; w < c.assoc; w++ {
		if c.valid[base+w] {
			dst = append(dst, Line{Way: w, Block: c.lines[base+w]})
		}
	}
	return dst
}

// checkLRUPermutation verifies the recency ranks of every set form a
// permutation; used by tests.
func (c *SetAssoc) checkLRUPermutation() error {
	for s := 0; s < c.sets; s++ {
		seen := make([]bool, c.assoc)
		for w := 0; w < c.assoc; w++ {
			r := c.lru[s*c.assoc+w]
			if int(r) >= c.assoc || seen[r] {
				return fmt.Errorf("set %d has invalid rank multiset", s)
			}
			seen[r] = true
		}
	}
	return nil
}
