package cache

import (
	"fmt"

	"tlc/internal/mem"
	"tlc/internal/sim"
)

// WayOf reports the way currently holding b, for callers (DNUCA's partial
// tag synchronization) that must shadow per-way residency.
func (c *SetAssoc) WayOf(b mem.Block) (int, bool) {
	idx, ok := c.find(b)
	if !ok {
		return 0, false
	}
	return idx % c.assoc, true
}

// Bank is one storage bank: a set-associative tag/data array behind a
// single contended port. AccessTime is the ECACTI-style array access
// latency (Table 2: 3 cycles for DNUCA's 64 KB banks, 8 for 512 KB, 10 for
// 1 MB). The port is occupied for the full access time — banks are not
// internally pipelined, which is how the paper charges bank contention to
// TLC's fewer, larger banks.
type Bank struct {
	Array      *SetAssoc
	AccessTime sim.Time
	port       sim.Resource

	// Accesses counts timed reservations against this bank.
	Accesses uint64
}

// NewBank builds a bank with the given geometry and access latency.
func NewBank(sets, assoc int, accessTime sim.Time) *Bank {
	if accessTime == 0 {
		panic("cache: bank access time must be positive")
	}
	return &Bank{Array: NewSetAssoc(sets, assoc), AccessTime: accessTime}
}

// Reserve books the bank port for one access arriving at cycle `at` and
// returns the cycle the access completes (data available at the bank edge).
func (b *Bank) Reserve(at sim.Time) (done sim.Time) {
	b.Accesses++
	start := b.port.Reserve(at, b.AccessTime)
	return start + b.AccessTime
}

// PortBusyCycles reports total cycles the bank port was occupied.
func (b *Bank) PortBusyCycles() sim.Time { return b.port.BusyCycles() }

// PortWaits reports how many accesses queued behind the port.
func (b *Bank) PortWaits() uint64 { return b.port.Waits() }

// SizeBytes reports the bank's data capacity.
func (b *Bank) SizeBytes() int { return b.Array.Blocks() * mem.BlockBytes }

// String describes the bank geometry.
func (b *Bank) String() string {
	return fmt.Sprintf("bank{%dKB %d-way %dcyc}", b.SizeBytes()/1024, b.Array.Assoc(), b.AccessTime)
}
