package cache

import (
	"bytes"
	"fmt"
	"slices"

	"tlc/internal/mem"
)

// StateEqual reports whether o has the same geometry and identical line,
// validity, and recency state as c. Equal arrays fed the same reference
// stream evolve identically — the invariant lane cohorts build on.
func (c *SetAssoc) StateEqual(o *SetAssoc) bool {
	return c.sets == o.sets && c.assoc == o.assoc &&
		slices.Equal(c.lines, o.lines) &&
		bytes.Equal(c.valid, o.valid) &&
		bytes.Equal(c.lru, o.lru)
}

// LaneGeom is the geometry of one lane: a set-associative array shape.
type LaneGeom struct {
	Sets  int
	Assoc int
}

// Lanes is K set-associative arrays in a structure-of-arrays layout: the
// lines, valid, recency, and dirty state of every lane live in one shared
// allocation apiece, each lane occupying a contiguous region at base[l].
// One warm reference stream drives all K lanes per reference, so a grid of
// configurations sharing a workload pays for the stream — generation,
// batching, traversal — once instead of K times. Lane state round-trips
// to and from ordinary SetAssoc arrays via LoadLane/StoreLane, so lanes
// are an execution layout, not a new cache type: state evolution per lane
// is bit-identical to an independent SetAssoc fed the same references.
type Lanes struct {
	geoms []LaneGeom
	// base[l] is the first line index of lane l; lane l spans
	// [base[l], base[l]+geoms[l].Sets*geoms[l].Assoc).
	base  []int
	sets  []int // per-lane set counts, hoisted for the kernel
	assoc []int
	// lines/valid/lru hold every lane's array state back to back, with the
	// same invariants as SetAssoc: invalid ways hold the invalidLine
	// sentinel, recency ranks within a set are a permutation.
	lines []mem.Block
	valid []uint8
	lru   []uint8
	// dirty is the per-line write-back state the warm sweep maintains,
	// sharing the lane layout (the "one tag/dirty array block").
	dirty []uint8
	all2  bool
}

// NewLanes builds an empty K-lane array block. Geometry constraints match
// NewSetAssoc: power-of-two sets, associativity within the recency encoding.
func NewLanes(geoms []LaneGeom) *Lanes {
	if len(geoms) == 0 {
		panic("cache: lanes need at least one geometry")
	}
	ln := &Lanes{
		geoms: append([]LaneGeom(nil), geoms...),
		base:  make([]int, len(geoms)),
		sets:  make([]int, len(geoms)),
		assoc: make([]int, len(geoms)),
		all2:  true,
	}
	total := 0
	for l, g := range geoms {
		if !mem.IsPow2(g.Sets) {
			panic(fmt.Sprintf("cache: lane %d sets=%d is not a power of two", l, g.Sets))
		}
		if g.Assoc <= 0 || g.Assoc > 255 {
			panic(fmt.Sprintf("cache: lane %d assoc=%d out of range", l, g.Assoc))
		}
		ln.base[l] = total
		ln.sets[l] = g.Sets
		ln.assoc[l] = g.Assoc
		if g.Assoc != 2 {
			ln.all2 = false
		}
		total += g.Sets * g.Assoc
	}
	ln.lines = make([]mem.Block, total)
	ln.valid = make([]uint8, total)
	ln.lru = make([]uint8, total)
	ln.dirty = make([]uint8, total)
	for i := range ln.lines {
		ln.lines[i] = invalidLine
	}
	for l, g := range geoms {
		for s := 0; s < g.Sets; s++ {
			for w := 0; w < g.Assoc; w++ {
				ln.lru[ln.base[l]+s*g.Assoc+w] = uint8(w)
			}
		}
	}
	return ln
}

// K reports the lane count.
func (ln *Lanes) K() int { return len(ln.geoms) }

// Geom reports lane l's geometry.
func (ln *Lanes) Geom(l int) LaneGeom { return ln.geoms[l] }

// LoadLane copies a SetAssoc array and its dirty sideband into lane l.
// The geometries must match.
func (ln *Lanes) LoadLane(l int, c *SetAssoc, dirty []uint8) {
	ln.checkLane(l, c, dirty)
	base, n := ln.base[l], ln.sets[l]*ln.assoc[l]
	copy(ln.lines[base:base+n], c.lines)
	copy(ln.valid[base:base+n], c.valid)
	copy(ln.lru[base:base+n], c.lru)
	copy(ln.dirty[base:base+n], dirty)
}

// StoreLane copies lane l back into a SetAssoc array and its dirty
// sideband: the inverse of LoadLane.
func (ln *Lanes) StoreLane(l int, c *SetAssoc, dirty []uint8) {
	ln.checkLane(l, c, dirty)
	base, n := ln.base[l], ln.sets[l]*ln.assoc[l]
	copy(c.lines, ln.lines[base:base+n])
	copy(c.valid, ln.valid[base:base+n])
	copy(c.lru, ln.lru[base:base+n])
	copy(dirty, ln.dirty[base:base+n])
}

func (ln *Lanes) checkLane(l int, c *SetAssoc, dirty []uint8) {
	if c.sets != ln.sets[l] || c.assoc != ln.assoc[l] {
		panic(fmt.Sprintf("cache: lane %d is %dx%d, array is %dx%d",
			l, ln.sets[l], ln.assoc[l], c.sets, c.assoc))
	}
	if len(dirty) != c.sets*c.assoc {
		panic(fmt.Sprintf("cache: lane %d dirty slice has %d entries, want %d",
			l, len(dirty), c.sets*c.assoc))
	}
}

// WarmSweepLanes drives the whole batch through lane after lane: lanes are
// mutually independent (nothing a reference does to lane l is visible to
// lane l+1), so consuming refs per lane leaves lane l's state evolution
// exactly what SetAssoc.WarmSweep would produce for the same stream, while
// the batch stays cache-resident as each lane's contiguous region streams
// through once. Blocks lane l's next cache level must observe — dirty
// victims at eviction, then missing loads at fill — are appended to
// spills[l] in reference order, and the extended slices are returned (the
// backing arrays are reused in place when capacity allows).
//
// When every lane is 2-way and each spills[l] has headroom for two slots
// per reference, the sweep runs the branch-free warmSweep2 body per lane
// with plain indexed spill stores and allocates nothing.
func (ln *Lanes) WarmSweepLanes(refs []WarmRef, spills [][]mem.Block) [][]mem.Block {
	if len(spills) != len(ln.geoms) {
		panic(fmt.Sprintf("cache: %d spill slices for %d lanes", len(spills), len(ln.geoms)))
	}
	if ln.all2 && ln.spillHeadroom(refs, spills) {
		return ln.warmSweepLanes2(refs, spills)
	}
	for l := range ln.geoms {
		sp := spills[l]
		for i := range refs {
			b := refs[i].Block
			var st uint8
			if refs[i].Store {
				st = 1
			}
			idx, hit, victim, evicted := ln.touchOrInsertLane(l, b)
			if hit {
				ln.dirty[idx] |= st
				continue
			}
			if evicted && ln.dirty[idx] != 0 {
				sp = append(sp, victim)
			}
			ln.dirty[idx] = st
			if st == 0 {
				sp = append(sp, b)
			}
		}
		spills[l] = sp
	}
	return spills
}

func (ln *Lanes) spillHeadroom(refs []WarmRef, spills [][]mem.Block) bool {
	for l := range spills {
		if cap(spills[l])-len(spills[l]) < 2*len(refs) {
			return false
		}
	}
	return true
}

// warmSweepLanes2 is the all-2-way kernel: the branch-free warmSweep2 body
// run lane by lane over the shared batch. The per-decision bit arithmetic
// is identical to warmSweep2 — only the array base differs per lane — so
// each lane's state trajectory matches the single-array kernel bit for
// bit. With lanes outermost the lane base, set count, and spill cursor
// stay in registers for the whole batch, exactly as they do in the scalar
// kernel, and the batch is re-read from cache K times instead of the lane
// regions being re-touched per reference.
func (ln *Lanes) warmSweepLanes2(refs []WarmRef, spills [][]mem.Block) [][]mem.Block {
	lines, valid, lru, dirty := ln.lines, ln.valid, ln.lru, ln.dirty
	for l := range ln.geoms {
		laneBase := ln.base[l]
		sets := ln.sets[l]
		sp := spills[l][:cap(spills[l])]
		sl := len(spills[l])
		for i := range refs {
			b := refs[i].Block
			var st uint8
			if refs[i].Store {
				st = 1
			}
			if b == invalidLine {
				// The sentinel value cannot use the tag-only probe; route it
				// through the valid-checked generic path.
				idx, hit, victim, evicted := ln.touchOrInsertLane(l, b)
				if hit {
					dirty[idx] |= st
					continue
				}
				if evicted && dirty[idx] != 0 {
					sp[sl] = victim
					sl++
				}
				dirty[idx] = st
				if st == 0 {
					sp[sl] = b
					sl++
				}
				continue
			}
			base := laneBase + b.SetIndex(sets)*2
			l0 := lines[base]
			l1 := lines[base+1]
			y0 := uint64(l0) ^ uint64(b)
			y1 := uint64(l1) ^ uint64(b)
			eq1 := ((y1 | -y1) >> 63) ^ 1          // way 1 holds b
			hitF := eq1 | (((y0 | -y0) >> 63) ^ 1) // some way holds b
			z0 := uint64(l0) ^ ^uint64(0)
			v0 := (z0 | -z0) >> 63 // way 0 valid (not the sentinel)
			z1 := uint64(l1) ^ ^uint64(0)
			v1 := (z1 | -z1) >> 63 // way 1 valid
			// Miss way: the first invalid way (0 before 1, as the generic
			// scan prefers), else the LRU-ranked way.
			mwBit := v0 & ((v1 ^ 1) | (uint64(lru[base]) ^ 1))
			wBit := (hitF & eq1) | ((hitF ^ 1) & mwBit)
			w := base + int(wBit)
			victim := lines[w]
			lines[w] = b
			valid[w] = 1
			lru[base] = uint8(wBit)
			lru[base+1] = 1 - uint8(wBit)
			vd := dirty[w]
			dirty[w] = (vd & (0 - uint8(hitF))) | st
			// Spill slots are written unconditionally; the masked increments
			// decide what the sweep actually emits. Order per reference:
			// dirty-victim writeback, then the missing load's fill.
			nh := hitF ^ 1
			dv := uint64(victim) ^ ^uint64(0)
			ve := (dv | -dv) >> 63 // victim way was valid
			v64 := uint64(vd)
			vdn := (v64 | -v64) >> 63 // victim dirty
			ld := uint64(st) ^ 1      // load fill
			sp[sl] = victim
			sl += int(nh & ve & vdn)
			sp[sl] = b
			sl += int(nh & ld)
		}
		spills[l] = sp[:sl]
	}
	return spills
}

// touchOrInsertLane mirrors SetAssoc.TouchOrInsertAt's generic scan on lane
// l's region: one pass finds b, the first invalid way, and the LRU way
// together; a hit promotes, a miss installs (invalid way first, else the
// LRU way). State evolution is identical to the single-array path for any
// associativity, including the 2-way fast path it specializes.
func (ln *Lanes) touchOrInsertLane(l int, b mem.Block) (idx int, hit bool, victim mem.Block, evicted bool) {
	assoc := ln.assoc[l]
	set := b.SetIndex(ln.sets[l])
	base := ln.base[l] + set*assoc
	invalid, lruWay := -1, -1
	for w := 0; w < assoc; w++ {
		if ln.valid[base+w] == 0 {
			if invalid == -1 {
				invalid = w
			}
			continue
		}
		if ln.lines[base+w] == b {
			ln.promoteLane(base, assoc, base+w)
			return base + w, true, 0, false
		}
		if ln.lru[base+w] == uint8(assoc-1) {
			lruWay = w
		}
	}
	way := invalid
	if way == -1 {
		way = lruWay
		victim = ln.lines[base+way]
		evicted = true
	}
	ln.lines[base+way] = b
	ln.valid[base+way] = 1
	ln.promoteLane(base, assoc, base+way)
	return base + way, false, victim, evicted
}

// promoteLane makes line idx the MRU of the set starting at base.
func (ln *Lanes) promoteLane(base, assoc, idx int) {
	was := ln.lru[idx]
	if was == 0 {
		return
	}
	for w := 0; w < assoc; w++ {
		if ln.lru[base+w] < was {
			ln.lru[base+w]++
		}
	}
	ln.lru[idx] = 0
}
