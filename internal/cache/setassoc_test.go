package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tlc/internal/mem"
)

// blk builds a block that maps to the given set of a sets-set cache with the
// given tag.
func blk(tag uint64, set, sets int) mem.Block {
	return mem.Block(tag*uint64(sets) + uint64(set))
}

func TestInsertAndLookup(t *testing.T) {
	c := NewSetAssoc(16, 4)
	b := blk(1, 3, 16)
	if c.Lookup(b) {
		t.Fatal("empty cache reported a hit")
	}
	if _, ev := c.Insert(b); ev {
		t.Fatal("insert into empty set evicted")
	}
	if !c.Lookup(b) {
		t.Fatal("inserted block not found")
	}
	if c.Occupancy() != 1 {
		t.Fatalf("occupancy %d, want 1", c.Occupancy())
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := NewSetAssoc(4, 2)
	a := blk(1, 0, 4)
	b := blk(2, 0, 4)
	d := blk(3, 0, 4)
	c.Insert(a)
	c.Insert(b)
	// a is now LRU; touching it makes b LRU.
	if !c.Touch(a) {
		t.Fatal("touch of resident block failed")
	}
	victim, ev := c.Insert(d)
	if !ev || victim != b {
		t.Fatalf("evicted (%v,%v), want block b", victim, ev)
	}
	if !c.Lookup(a) || !c.Lookup(d) || c.Lookup(b) {
		t.Fatal("post-eviction contents wrong")
	}
}

func TestLookupDoesNotPerturbLRU(t *testing.T) {
	c := NewSetAssoc(4, 2)
	a := blk(1, 0, 4)
	b := blk(2, 0, 4)
	c.Insert(a)
	c.Insert(b)
	// Probing a must NOT promote it: b stays MRU, a stays LRU.
	c.Lookup(a)
	victim, ev := c.Insert(blk(3, 0, 4))
	if !ev || victim != a {
		t.Fatalf("evicted (%v,%v); Lookup must not refresh recency", victim, ev)
	}
}

func TestReinsertRefreshesRecency(t *testing.T) {
	c := NewSetAssoc(4, 2)
	a := blk(1, 0, 4)
	b := blk(2, 0, 4)
	c.Insert(a)
	c.Insert(b)
	if _, ev := c.Insert(a); ev {
		t.Fatal("reinsert of resident block evicted")
	}
	victim, ev := c.Insert(blk(3, 0, 4))
	if !ev || victim != b {
		t.Fatalf("evicted (%v,%v), want b after a was refreshed", victim, ev)
	}
}

func TestRemove(t *testing.T) {
	c := NewSetAssoc(4, 2)
	a := blk(1, 0, 4)
	b := blk(2, 0, 4)
	c.Insert(a)
	c.Insert(b)
	if !c.Remove(a) {
		t.Fatal("remove of resident block failed")
	}
	if c.Lookup(a) {
		t.Fatal("removed block still present")
	}
	if c.Remove(a) {
		t.Fatal("second remove reported success")
	}
	// Freed way is reused without eviction.
	if _, ev := c.Insert(blk(3, 0, 4)); ev {
		t.Fatal("insert into freed way evicted")
	}
}

func TestVictimOf(t *testing.T) {
	c := NewSetAssoc(4, 2)
	a := blk(1, 0, 4)
	b := blk(2, 0, 4)
	if _, ok := c.VictimOf(a); ok {
		t.Fatal("empty set should have no victim")
	}
	c.Insert(a)
	c.Insert(b)
	v, ok := c.VictimOf(blk(3, 0, 4))
	if !ok || v != a {
		t.Fatalf("VictimOf=(%v,%v), want a", v, ok)
	}
	if _, ok := c.VictimOf(a); ok {
		t.Fatal("resident block should have no victim")
	}
	// VictimOf must not mutate.
	v2, _ := c.VictimOf(blk(3, 0, 4))
	if v2 != v {
		t.Fatal("VictimOf mutated replacement state")
	}
}

func TestWayOf(t *testing.T) {
	c := NewSetAssoc(4, 4)
	blocks := []mem.Block{blk(1, 2, 4), blk(2, 2, 4), blk(3, 2, 4)}
	for _, b := range blocks {
		c.Insert(b)
	}
	seen := map[int]bool{}
	for _, b := range blocks {
		w, ok := c.WayOf(b)
		if !ok {
			t.Fatalf("WayOf missed resident block %v", b)
		}
		if seen[w] {
			t.Fatalf("two blocks share way %d", w)
		}
		seen[w] = true
	}
	if _, ok := c.WayOf(blk(9, 2, 4)); ok {
		t.Fatal("WayOf found an absent block")
	}
}

func TestSetsIsolated(t *testing.T) {
	c := NewSetAssoc(8, 1)
	for s := 0; s < 8; s++ {
		c.Insert(blk(7, s, 8))
	}
	if c.Occupancy() != 8 {
		t.Fatalf("occupancy %d, want 8: sets must not interfere", c.Occupancy())
	}
}

func TestGeometryValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewSetAssoc(3, 2) },
		func() { NewSetAssoc(4, 0) },
		func() { NewSetAssoc(4, 300) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad geometry did not panic")
				}
			}()
			fn()
		}()
	}
}

// Property: under a random workload of inserts/touches/removes, LRU ranks
// stay a permutation, occupancy matches a reference set, and lookups agree
// with a reference model.
func TestQuickLRUReferenceModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const sets, assoc = 4, 3
		c := NewSetAssoc(sets, assoc)
		// Reference: per-set list of blocks, MRU first.
		ref := make([][]mem.Block, sets)
		for step := 0; step < 300; step++ {
			b := blk(uint64(rng.Intn(8)), rng.Intn(sets), sets)
			set := b.SetIndex(sets)
			switch rng.Intn(3) {
			case 0: // insert
				victim, ev := c.Insert(b)
				refIdx := indexOf(ref[set], b)
				if refIdx >= 0 { // already present: refresh
					ref[set] = append([]mem.Block{b}, remove(ref[set], refIdx)...)
					if ev {
						return false
					}
				} else {
					var refVictim mem.Block
					refEv := false
					if len(ref[set]) == assoc {
						refVictim = ref[set][assoc-1]
						ref[set] = ref[set][:assoc-1]
						refEv = true
					}
					ref[set] = append([]mem.Block{b}, ref[set]...)
					if ev != refEv || (ev && victim != refVictim) {
						return false
					}
				}
			case 1: // touch
				hit := c.Touch(b)
				refIdx := indexOf(ref[set], b)
				if hit != (refIdx >= 0) {
					return false
				}
				if refIdx >= 0 {
					ref[set] = append([]mem.Block{b}, remove(ref[set], refIdx)...)
				}
			case 2: // remove
				ok := c.Remove(b)
				refIdx := indexOf(ref[set], b)
				if ok != (refIdx >= 0) {
					return false
				}
				if refIdx >= 0 {
					ref[set] = remove(ref[set], refIdx)
				}
			}
			if err := c.checkLRUPermutation(); err != nil {
				return false
			}
			total := 0
			for s := range ref {
				total += len(ref[s])
				for _, rb := range ref[s] {
					if !c.Lookup(rb) {
						return false
					}
				}
			}
			if c.Occupancy() != total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func indexOf(s []mem.Block, b mem.Block) int {
	for i, v := range s {
		if v == b {
			return i
		}
	}
	return -1
}

func remove(s []mem.Block, i int) []mem.Block {
	out := make([]mem.Block, 0, len(s)-1)
	out = append(out, s[:i]...)
	return append(out, s[i+1:]...)
}

func TestTouchAtInsertAtIndices(t *testing.T) {
	c := NewSetAssoc(4, 2)
	idx, victim, evicted := c.InsertAt(0) // set 0
	if evicted || idx != 0 {
		t.Fatalf("first insert landed at %d (evicted=%v), want way 0", idx, evicted)
	}
	idx2, _, _ := c.InsertAt(4) // same set, second way
	if idx2 != 1 {
		t.Fatalf("second insert landed at %d, want way 1", idx2)
	}
	// Touching block 0 must report its stable index.
	if got, ok := c.TouchAt(0); !ok || got != idx {
		t.Fatalf("TouchAt(0) = (%d,%v), want (%d,true)", got, ok, idx)
	}
	if _, ok := c.TouchAt(8); ok {
		t.Fatal("TouchAt reported a hit for an absent block")
	}
	// Evicting: block 4 is now LRU; inserting block 8 must reuse its index
	// and report it as victim.
	idx3, v, ev := c.InsertAt(8)
	if !ev || v != 4 || idx3 != idx2 {
		t.Fatalf("InsertAt(8) = (%d,%v,%v), want victim 4 at index %d", idx3, v, ev, idx2)
	}
	if victim != 0 {
		_ = victim
	}
	// Re-inserting a present block refreshes recency and returns its index.
	idx4, _, ev4 := c.InsertAt(0)
	if ev4 || idx4 != idx {
		t.Fatalf("re-insert of present block: index %d evicted=%v, want %d", idx4, ev4, idx)
	}
}

func TestAppendLinesInReusesBuffer(t *testing.T) {
	c := NewSetAssoc(2, 4)
	for i := 0; i < 4; i++ {
		c.Insert(mem.Block(i * 2)) // all in set 0
	}
	buf := make([]Line, 0, 4)
	got := c.AppendLinesIn(buf[:0], 0)
	if len(got) != 4 {
		t.Fatalf("%d lines, want 4", len(got))
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("AppendLinesIn reallocated despite sufficient capacity")
	}
	// Must agree with LinesIn.
	want := c.LinesIn(0)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AppendLinesIn[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	if n := len(c.LinesIn(1)); n != 0 {
		t.Fatalf("empty set reported %d lines", n)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		buf = c.AppendLinesIn(buf[:0], 0)
	}); allocs != 0 {
		t.Fatalf("AppendLinesIn allocates %.1f per call with a reused buffer", allocs)
	}
}
