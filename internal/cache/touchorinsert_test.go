package cache

import (
	"reflect"
	"testing"

	"tlc/internal/mem"
)

// TestTouchOrInsertAtMatchesScalarSequence drives an identical pseudo-random
// access sequence through the fused TouchOrInsertAt and through the scalar
// TouchAt-then-InsertAt sequence it replaces, checking every per-call return
// and the final array state. The warm fast path's correctness rests on this
// equivalence.
func TestTouchOrInsertAtMatchesScalarSequence(t *testing.T) {
	// 4-way exercises the generic way loop; 2-way exercises the specialized
	// touchOrInsert2 fast path (the split-L1 geometry).
	for _, geo := range []struct{ sets, assoc int }{{16, 4}, {32, 2}} {
		fused := NewSetAssoc(geo.sets, geo.assoc)
		scalar := NewSetAssoc(geo.sets, geo.assoc)
		// A multiplicative-congruential walk over a space ~4x the capacity
		// mixes hits, misses into free ways, and evicting misses.
		x := uint64(1)
		for i := 0; i < 20000; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			b := mem.Block(x >> 56) // 256 distinct blocks over 64 lines

			fIdx, fHit, fVictim, fEvicted := fused.TouchOrInsertAt(b)

			sIdx, sHit := scalar.TouchAt(b)
			var sVictim mem.Block
			var sEvicted bool
			if !sHit {
				sIdx, sVictim, sEvicted = scalar.InsertAt(b)
			}

			if fIdx != sIdx || fHit != sHit || fVictim != sVictim || fEvicted != sEvicted {
				t.Fatalf("%dx%d step %d block %d: fused (%d,%v,%d,%v) != scalar (%d,%v,%d,%v)",
					geo.sets, geo.assoc, i, b, fIdx, fHit, fVictim, fEvicted, sIdx, sHit, sVictim, sEvicted)
			}
		}
		if !reflect.DeepEqual(fused.Snapshot(), scalar.Snapshot()) {
			t.Fatalf("%dx%d: fused and scalar sequences left different array state", geo.sets, geo.assoc)
		}
		if err := fused.checkLRUPermutation(); err != nil {
			t.Fatalf("%dx%d: fused array LRU state corrupt: %v", geo.sets, geo.assoc, err)
		}
	}
}
