package cache

import (
	"fmt"

	"tlc/internal/mem"
)

// SetAssocState is a deep copy of a SetAssoc's contents: lines, valid bits,
// and LRU ranks, in the array's own (set*assoc+way) layout. Geometry is
// carried so Restore can reject a state captured from a differently shaped
// array. Fields are exported for gob encoding by the on-disk checkpoint
// store; the block type is an integer, so the copy is bit-exact.
type SetAssocState struct {
	Sets  int
	Assoc int
	Lines []mem.Block
	Valid []bool
	LRU   []uint8
}

// Snapshot captures the array's complete replacement state. The returned
// state shares no memory with the array: mutating the array afterwards does
// not change the snapshot, so snapshots can be stored and restored later.
func (c *SetAssoc) Snapshot() SetAssocState {
	st := SetAssocState{
		Sets:  c.sets,
		Assoc: c.assoc,
		Lines: make([]mem.Block, len(c.lines)),
		Valid: make([]bool, len(c.valid)),
		LRU:   make([]uint8, len(c.lru)),
	}
	copy(st.Lines, c.lines)
	for i, v := range c.valid {
		st.Valid[i] = v != 0
		if v == 0 {
			// Normalize the internal invalid-line sentinel away: exported
			// states (and the on-disk checkpoints built from them) keep
			// zeros in invalid ways, as they always have.
			st.Lines[i] = 0
		}
	}
	copy(st.LRU, c.lru)
	return st
}

// Restore overwrites the array's contents with a previously captured state.
// The array keeps no reference to the state's slices, so the same state can
// be restored into many arrays. It returns an error if the state's geometry
// does not match the array's (a checkpoint from a different configuration).
func (c *SetAssoc) Restore(st SetAssocState) error {
	if st.Sets != c.sets || st.Assoc != c.assoc {
		return fmt.Errorf("cache: restoring %dx%d state into %dx%d array",
			st.Sets, st.Assoc, c.sets, c.assoc)
	}
	n := c.sets * c.assoc
	if len(st.Lines) != n || len(st.Valid) != n || len(st.LRU) != n {
		return fmt.Errorf("cache: state arrays sized %d/%d/%d, want %d",
			len(st.Lines), len(st.Valid), len(st.LRU), n)
	}
	copy(c.lines, st.Lines)
	for i, v := range st.Valid {
		if v {
			c.valid[i] = 1
		} else {
			// Re-establish the invalid-line sentinel the exported form
			// (and any checkpoint written before it existed) stores as 0.
			c.valid[i] = 0
			c.lines[i] = invalidLine
		}
	}
	copy(c.lru, st.LRU)
	return nil
}

// PartialTagsState is a deep copy of a PartialTags shadow structure in its
// own ((set*banks+bank)*assoc+way) layout.
type PartialTagsState struct {
	Sets  int
	Banks int
	Assoc int
	Tags  []uint8
	Valid []bool
}

// Snapshot captures the shadow's complete contents; the result shares no
// memory with the structure.
func (p *PartialTags) Snapshot() PartialTagsState {
	st := PartialTagsState{
		Sets:  p.sets,
		Banks: p.banks,
		Assoc: p.assoc,
		Tags:  make([]uint8, len(p.tags)),
		Valid: make([]bool, len(p.valid)),
	}
	copy(st.Tags, p.tags)
	copy(st.Valid, p.valid)
	return st
}

// Restore overwrites the shadow with a previously captured state, rejecting
// geometry mismatches.
func (p *PartialTags) Restore(st PartialTagsState) error {
	if st.Sets != p.sets || st.Banks != p.banks || st.Assoc != p.assoc {
		return fmt.Errorf("cache: restoring %d/%d/%d partial-tag state into %d/%d/%d structure",
			st.Sets, st.Banks, st.Assoc, p.sets, p.banks, p.assoc)
	}
	n := p.sets * p.banks * p.assoc
	if len(st.Tags) != n || len(st.Valid) != n {
		return fmt.Errorf("cache: partial-tag state arrays sized %d/%d, want %d",
			len(st.Tags), len(st.Valid), n)
	}
	copy(p.tags, st.Tags)
	copy(p.valid, st.Valid)
	return nil
}
