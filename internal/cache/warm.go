package cache

import "tlc/internal/mem"

// WarmRef is one memory reference of a functional-warm stream: the block
// and whether the access is a store. Functional warming needs nothing else.
// The cpu package re-exports it as MemRef, the element type of the
// MemStream batch protocol; it lives here so the array can consume whole
// batches without a package cycle.
type WarmRef struct {
	Block mem.Block
	Store bool
}

// WarmSweep drives refs through the array in order, fusing each reference's
// touch/insert with the per-line dirty-bit bookkeeping of a write-back
// cache: a store marks its line dirty, a fill inherits the store bit, and a
// dirty victim must be written back. Every block the next cache level has
// to observe — dirty victims at eviction, then missing loads at fill — is
// appended to spill in reference order, and the extended spill is returned.
//
// dirty holds one byte per line (Blocks()), nonzero meaning dirty. State
// evolution is identical to the per-reference loop over TouchOrInsertAt it
// replaces; batching the sweep keeps the array bases, the dirty slice, and
// the spill append state in registers across the whole batch instead of
// re-establishing them on every call.
func (c *SetAssoc) WarmSweep(refs []WarmRef, dirty []uint8, spill []mem.Block) []mem.Block {
	if c.assoc == 2 && cap(spill)-len(spill) >= 2*len(refs) {
		return c.warmSweep2(refs, dirty, spill)
	}
	for i := range refs {
		var st uint8
		if refs[i].Store {
			st = 1
		}
		idx, hit, victim, evicted := c.TouchOrInsertAt(refs[i].Block)
		if hit {
			dirty[idx] |= st
			continue
		}
		if evicted && dirty[idx] != 0 {
			spill = append(spill, victim)
		}
		dirty[idx] = st
		if st == 0 {
			spill = append(spill, refs[i].Block)
		}
	}
	return spill
}

// warmSweep2 is WarmSweep for 2-way arrays (the split-L1 geometry), with a
// branch-free body: whether a reference hits, which way it lands in, and
// whether anything spills are all data-random, so every one of those
// decisions is arranged as a conditional move or a masked increment rather
// than a branch. A hit degenerates to re-installing the same block over
// itself and a no-op spill store that the length counter never admits; a
// miss picks the first invalid way (the invalidLine sentinel identifies
// them without loading valid bytes), else the LRU way — the same choice the
// generic path makes. The caller guarantees spill headroom of two slots per
// reference, so the spill writes are plain indexed stores.
func (c *SetAssoc) warmSweep2(refs []WarmRef, dirty []uint8, spill []mem.Block) []mem.Block {
	lines, valid, lru := c.lines, c.valid, c.lru
	sets := c.sets
	sp := spill[:cap(spill)]
	sl := len(spill)
	for i := range refs {
		b := refs[i].Block
		var st uint8
		if refs[i].Store {
			st = 1
		}
		if b == invalidLine {
			// The sentinel value cannot use the tag-only probe; route it
			// through the valid-checked generic paths.
			idx, hit, victim, evicted := c.TouchOrInsertAt(b)
			if hit {
				dirty[idx] |= st
				continue
			}
			if evicted && dirty[idx] != 0 {
				sp[sl] = victim
				sl++
			}
			dirty[idx] = st
			if st == 0 {
				sp[sl] = b
				sl++
			}
			continue
		}
		base := b.SetIndex(sets) * 2
		l0 := lines[base]
		l1 := lines[base+1]
		// Every per-reference decision below — hit or miss, which way,
		// what spills — is data-random, so all of it is computed as bit
		// arithmetic on 0/1 flags ((y|-y)>>63 is 1 iff y != 0) rather
		// than trusted to the compiler's branch elimination: the sweep's
		// only branches are the loop and bounds checks.
		y0 := uint64(l0) ^ uint64(b)
		y1 := uint64(l1) ^ uint64(b)
		eq1 := ((y1 | -y1) >> 63) ^ 1       // way 1 holds b
		hitF := eq1 | (((y0 | -y0) >> 63) ^ 1) // some way holds b
		z0 := uint64(l0) ^ ^uint64(0)
		v0 := (z0 | -z0) >> 63 // way 0 valid (not the sentinel)
		z1 := uint64(l1) ^ ^uint64(0)
		v1 := (z1 | -z1) >> 63 // way 1 valid
		// Miss way: the first invalid way (0 before 1, as the generic scan
		// prefers), else the LRU-ranked way.
		mwBit := v0 & ((v1 ^ 1) | (uint64(lru[base]) ^ 1))
		wBit := (hitF & eq1) | ((hitF ^ 1) & mwBit)
		w := base + int(wBit)
		victim := lines[w]
		lines[w] = b
		valid[w] = 1
		lru[base] = uint8(wBit)
		lru[base+1] = 1 - uint8(wBit)
		// The victim's dirty bit is read before the line's new state
		// overwrites it; a hit keeps the old bit, a fill starts clean.
		vd := dirty[w]
		dirty[w] = (vd & (0 - uint8(hitF))) | st
		// Spill slots are written unconditionally; the masked increments
		// decide what the sweep actually emits. Order per reference:
		// dirty-victim writeback, then the missing load's fill.
		nh := hitF ^ 1
		dv := uint64(victim) ^ ^uint64(0)
		ve := (dv | -dv) >> 63 // victim way was valid
		v64 := uint64(vd)
		vdn := (v64 | -v64) >> 63 // victim dirty
		ld := uint64(st) ^ 1      // load fill
		sp[sl] = victim
		sl += int(nh & ve & vdn)
		sp[sl] = b
		sl += int(nh & ld)
	}
	return sp[:sl]
}
