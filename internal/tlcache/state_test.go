package tlcache

import (
	"math/rand"
	"testing"

	"tlc/internal/config"
	"tlc/internal/mem"
	"tlc/internal/sim"
)

func TestSnapshotRoundTripAllTLCDesigns(t *testing.T) {
	for _, d := range config.TLCFamily() {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			orig := New(d, 300)
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < 200_000; i++ {
				orig.Warm(mem.Block(rng.Int63n(1 << 20)))
			}
			st := orig.SnapshotState()

			restored := New(d, 300)
			if err := restored.RestoreState(st); err != nil {
				t.Fatal(err)
			}
			// Identical request streams against identical functional state
			// must produce identical outcomes.
			r1 := rand.New(rand.NewSource(2))
			var at sim.Time
			for i := 0; i < 50_000; i++ {
				at += sim.Time(r1.Intn(50))
				req := mem.Request{Block: mem.Block(r1.Int63n(1 << 20)), Type: mem.Load}
				if r1.Intn(8) == 0 {
					req.Type = mem.Store
				}
				o1 := orig.Access(at, req)
				o2 := restored.Access(at, req)
				if o1 != o2 {
					t.Fatalf("request %d: original %+v, restored %+v", i, o1, o2)
				}
			}
		})
	}
}

func TestRestoreRejectsWrongGeometry(t *testing.T) {
	// TLC base (32 banks) state into TLCopt1000 (different grouping) must
	// fail rather than silently corrupt.
	st := New(config.TLC, 300).SnapshotState()
	if err := New(config.TLCOpt350, 300).RestoreState(st); err == nil {
		t.Fatal("TLCopt350 accepted a TLC-base state")
	}
	if err := New(config.TLC, 300).RestoreState(struct{}{}); err == nil {
		t.Fatal("cache accepted a foreign state type")
	}
}
