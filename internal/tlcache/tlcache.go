// Package tlcache implements the Transmission Line Cache family
// (Section 4): the base TLC design — 32 x 512 KB banks at the die edges,
// each bank pair sharing two 8-byte unidirectional transmission-line links
// to a central controller — and the three optimized designs (TLCopt
// 1000/500/350) that stripe blocks across multiple 1 MB banks, ship only a
// 6-bit partial tag to the banks, and resolve full tags at the controller.
//
// Timing model per access:
//
//	controller center --(controller wires)--> line landing --(TL flight,
//	1 cycle)--> bank --(bank access)--> TL flight back --> controller
//
// The base design's uncontended latency is 10-16 cycles (8-cycle bank +
// 2 cycles of flight + 0-6 cycles of controller wiring by landing
// position); the optimized designs are 12-13 cycles flat, their smaller
// controllers nearly eliminating the internal wire delay (Table 2).
package tlcache

import (
	"fmt"

	"tlc/internal/ecc"

	"tlc/internal/cache"
	"tlc/internal/config"
	"tlc/internal/l2"
	"tlc/internal/mem"
	"tlc/internal/metrics"
	"tlc/internal/probe"
	"tlc/internal/sim"
	"tlc/internal/tline"
)

// pairLinks is the transmission-line bundle one bank pair shares: one
// request (down) link and one response (up) link, each a sim.Resource
// whose occupancy unit is one flit (one cycle at the link's width).
type pairLinks struct {
	down, up sim.Resource
	// geometry is the Table 1 line class this pair uses.
	geometry tline.Geometry
	// z0 caches the extracted characteristic impedance for the energy
	// accounting.
	z0 float64
	// ctrlReq/ctrlResp are the conventional-wire delays inside the
	// controller on each path for this pair's landing position.
	ctrlReq, ctrlResp sim.Time
	// downBusy/upBusy accumulate flit counts for energy accounting.
	downFlits, upFlits uint64
}

// Cache is one member of the TLC family.
type Cache struct {
	l2.Stats
	p      config.TLCParams
	memory l2.Memory

	// groups[g] is the logical complete-block tag/data array of block
	// group g (for the base design, one group per bank).
	groups []*cache.SetAssoc
	// ptags[g] shadows group g's partial tags for the optimized designs'
	// in-bank comparison and multi-match detection.
	ptags []*cache.PartialTags
	// bankPorts[b] is the contended port of physical bank b.
	bankPorts []*cache.Bank
	pairs     []*pairLinks
	sets      int

	// bankScratch is the reused buffer banksOf writes into; lineScratch is
	// the reused buffer for partial-tag resyncs. Both keep the per-access
	// path allocation-free.
	bankScratch []int
	lineScratch []cache.Line

	// fastNominal[g] is group g's uncontended lookup latency, built lazily
	// on the first AccessFast call (after any AddLinkMargin widening).
	fastNominal []sim.Time

	// noise, when set, injects line errors checked by end-to-end ECC.
	noise *Noise

	// MultiMatches counts lookups needing the second round trip
	// (Section 4: ~1% of lookups).
	MultiMatches uint64
	// ECCCorrections counts response words repaired in the controller.
	ECCCorrections uint64
	// ECCRetries counts responses with detected-uncorrectable errors,
	// each costing a full extra round trip.
	ECCRetries uint64
	// Writebacks counts victim blocks returned toward memory.
	Writebacks uint64
	// FillsApplied counts memory fills installed.
	FillsApplied uint64

	reg   *metrics.Registry
	hooks *probe.Hooks
}

// eccUncorrectable aliases the codec's verdict for the retry loop.
const eccUncorrectable = ecc.Uncorrectable

// Request/response flit counts are derived from the per-design link widths.
const addrCmdBits = 22 // set index + 6-bit partial tag + command
const fullAddrBits = 48

// New builds a TLC-family cache for the given design.
func New(d config.Design, memLat sim.Time) *Cache {
	p := config.TLCFor(d)
	groups := p.Groups()
	groupBytes := p.BankBytes * p.BanksPerBlock
	sets := groupBytes / mem.BlockBytes / 4 // 4-way, Table 3
	c := &Cache{
		Stats:       l2.NewStats(),
		p:           p,
		memory:      l2.FlatMemory{Latency: memLat},
		sets:        sets,
		bankScratch: make([]int, 0, p.BanksPerBlock),
		lineScratch: make([]cache.Line, 0, 4),
	}
	for g := 0; g < groups; g++ {
		c.groups = append(c.groups, cache.NewSetAssoc(sets, 4))
		c.ptags = append(c.ptags, cache.NewPartialTags(sets, 1, 4))
	}
	// Physical bank ports: the bank array behind each port holds only a
	// slice of each block, but its set count and access time follow the
	// physical bank geometry.
	bankSets := p.BankBytes / mem.BlockBytes / 4
	for b := 0; b < p.Banks; b++ {
		c.bankPorts = append(c.bankPorts, cache.NewBank(bankSets, 4, p.BankAccess))
	}
	for pr := 0; pr < p.Pairs(); pr++ {
		g := config.LinkGeometry(pr, p.Pairs())
		c.pairs = append(c.pairs, &pairLinks{
			geometry: g,
			z0:       tline.Extract(g).Z0,
			ctrlReq:  c.ctrlReq(pr),
			ctrlResp: c.ctrlResp(pr),
		})
	}
	c.reg = metrics.New()
	c.Stats.Register(c.reg)
	c.reg.CounterFunc("tl.multi_matches", func() uint64 { return c.MultiMatches })
	c.reg.CounterFunc("ecc.corrections", func() uint64 { return c.ECCCorrections })
	c.reg.CounterFunc("ecc.retries", func() uint64 { return c.ECCRetries })
	c.reg.CounterFunc("l2.writebacks", func() uint64 { return c.Writebacks })
	c.reg.CounterFunc("l2.fills", func() uint64 { return c.FillsApplied })
	c.reg.CounterFunc("l2.bank_busy_cycles", func() uint64 { return uint64(c.BankBusyCycles()) })
	c.reg.CounterFunc("tl.down_flits", func() uint64 {
		var n uint64
		for _, pr := range c.pairs {
			n += pr.downFlits
		}
		return n
	})
	c.reg.CounterFunc("tl.up_flits", func() uint64 {
		var n uint64
		for _, pr := range c.pairs {
			n += pr.upFlits
		}
		return n
	})
	c.reg.Gauge("tl.link_utilization", func(now sim.Time) float64 { return c.LinkUtilization(now) })
	c.reg.Gauge("tl.energy_j", func(sim.Time) float64 { return c.NetworkEnergyJ() })
	return c
}

// Metrics implements l2.Instrumented.
func (c *Cache) Metrics() *metrics.Registry { return c.reg }

// SetProbe implements l2.Instrumented.
func (c *Cache) SetProbe(h *probe.Hooks) { c.hooks = h }

// ctrlReq spreads the controller-internal request-path wire delay across
// pairs by landing position: the base design's wide controller costs up to
// 3 cycles; the optimized controllers up to CtrlWireMax.
func (c *Cache) ctrlReq(pair int) sim.Time {
	pairs := c.p.Pairs()
	return sim.Time(int(c.p.CtrlWireMax+1) * pair / pairs)
}

// ctrlResp mirrors ctrlReq for the base design; the optimized designs'
// response links land directly at the controller center (their reduced
// line count keeps the landing edge short), so the response path is free.
func (c *Cache) ctrlResp(pair int) sim.Time {
	if c.p.PartialTagInBank {
		return 0
	}
	return c.ctrlReq(pair)
}

// Params exposes the design parameters.
func (c *Cache) Params() config.TLCParams { return c.p }

// AddLinkMargin widens every transmission-line traversal by extra cycles —
// the ablation for the paper's conservative 40%-of-cycle setup and hold
// margins (Section 4): a design needing even more margin pays this many
// cycles each way.
func (c *Cache) AddLinkMargin(extra sim.Time) { c.p.TLCycles += extra }

// groupOf maps a block to its group and the group-local block id. Group
// selection XOR-folds the bits above the group field into the low bits —
// standard bank hashing — so strided streams (and their own L1 victim
// writebacks, which trail by exactly the L1 capacity) spread across groups
// instead of resonating on one. The mapping stays injective: for a given
// local id, distinct low bits give distinct groups.
func (c *Cache) groupOf(b mem.Block) (g int, local mem.Block) {
	bits := mem.Log2(c.p.Groups())
	return int(mem.FoldHash(uint64(b), bits)), b >> uint(bits)
}

// banksOf reports the physical banks storing group g's blocks. For the
// base design (one bank per block) consecutive groups interleave across
// bank pairs, so sequential address streams spread over all sixteen link
// pairs instead of hammering one; the striped designs already alternate
// pairs by construction.
// The returned slice aliases a scratch buffer reused by the next banksOf
// call; callers iterate it immediately and must not retain it.
func (c *Cache) banksOf(g int) []int {
	n := c.p.BanksPerBlock
	out := c.bankScratch[:0]
	if n == 1 {
		pairs := c.p.Pairs()
		out = append(out, (g%pairs)*2+g/pairs)
	} else {
		for i := 0; i < n; i++ {
			out = append(out, g*n+i)
		}
	}
	c.bankScratch = out
	return out
}

// pairOf reports the bank pair owning physical bank b.
func pairOf(bank int) int { return bank / 2 }

// flitsOf reports the cycles a payload of the given bit count occupies a
// link of the given width.
func flitsOf(bits, width int) sim.Time {
	return sim.Time((bits + width - 1) / width)
}

// loadRespBits is the per-bank response payload for a load hit: the bank's
// data slice plus the high-order tag bits the controller needs for the full
// comparison (optimized designs) or just the slice (base design, full tags
// in bank).
func (c *Cache) loadRespBits() int {
	slice := mem.BlockBytes / c.p.BanksPerBlock * 8
	if c.p.PartialTagInBank {
		return slice + 32
	}
	return slice
}

// storeBits is the per-bank payload of a store or fill: address plus the
// bank's data slice.
func (c *Cache) storeBits() int {
	return fullAddrBits + mem.BlockBytes/c.p.BanksPerBlock*8
}

// Nominal reports the uncontended lookup latency for block b (the
// scheduler's static prediction): bank access + two flights + controller
// wiring for its landing position.
func (c *Cache) Nominal(b mem.Block) sim.Time {
	g, _ := c.groupOf(b)
	pr := pairOf(c.banksOf(g)[0])
	return c.p.BankAccess + 2*c.p.TLCycles + c.pairs[pr].ctrlReq + c.pairs[pr].ctrlResp
}

// NominalRange reports the design's uncontended latency range (Table 2).
func (c *Cache) NominalRange() (min, max sim.Time) {
	min, max = ^sim.Time(0), 0
	for g := 0; g < c.p.Groups(); g++ {
		n := c.Nominal(mem.Block(g))
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	return min, max
}

// Access implements l2.Cache.
func (c *Cache) Access(at sim.Time, req mem.Request) l2.Outcome {
	g, local := c.groupOf(req.Block)
	if req.Type == mem.Store {
		present := c.groups[g].Lookup(local)
		c.write(at, g, local)
		c.RecordStore(present, c.p.BanksPerBlock)
		if h := c.hooks; h != nil && h.OnAccess != nil {
			h.OnAccess(probe.AccessEvent{At: at, Block: req.Block, Store: true, Hit: present, Banks: c.p.BanksPerBlock})
		}
		return l2.Outcome{Hit: present, ResolveAt: at, CompleteAt: at, Predictable: true, BanksAccessed: c.p.BanksPerBlock}
	}

	hit := c.groups[g].Lookup(local)
	// One partial-tag comparison serves both decisions: the in-bank
	// comparators report a single match count per lookup.
	matches := 0
	if c.p.PartialTagInBank {
		matches = c.ptags[g].MatchCount(local, 0)
	}
	multi := matches > 1
	partialMatch := hit || matches > 0

	resolve := c.roundTrip(at, g, partialMatch)
	if multi {
		// Multiple partial-tag matches: the controller receives every
		// matching entry's tag bits, resolves the full comparison, and
		// requests the specific block with a second round trip.
		c.MultiMatches++
		resolve = c.roundTrip(resolve, g, true)
	}
	retried := false
	if c.noise != nil && partialMatch {
		// End-to-end ECC check on the data response. Corrections are
		// free (inline in the controller); a detected-uncorrectable word
		// forces a re-request, and the retry is checked again.
		for {
			fate, corrected := c.noise.responseFate(req.Block, resolve, c.loadRespBits()*c.p.BanksPerBlock)
			c.ECCCorrections += uint64(corrected)
			if fate != eccUncorrectable {
				break
			}
			c.ECCRetries++
			retried = true
			resolve = c.roundTrip(resolve, g, true)
		}
	}
	if hit {
		c.groups[g].Touch(local)
	}

	nominal := c.Nominal(req.Block)
	predictable := resolve-at == nominal && !retried
	out := l2.Outcome{Hit: hit, ResolveAt: resolve, CompleteAt: resolve, Predictable: predictable, BanksAccessed: c.p.BanksPerBlock}
	if !hit {
		out.CompleteAt = c.memory.Fetch(resolve, req.Block)
		c.fill(out.CompleteAt, g, local)
	}
	c.RecordLoad(uint64(resolve-at), hit, predictable, c.p.BanksPerBlock)
	if h := c.hooks; h != nil && h.OnAccess != nil {
		h.OnAccess(probe.AccessEvent{At: at, Block: req.Block, Hit: hit, Latency: uint64(resolve - at), Banks: c.p.BanksPerBlock})
	}
	return out
}

// AccessFast implements l2.FastTimer: the same functional state evolution
// as Access — lookup, LRU touch, insert with eviction, fill and writeback
// accounting, hit/miss statistics — timed with the per-group uncontended
// nominal latency instead of link, bank-port, and ECC simulation. The fast
// core tier drives it so a fast run walks the identical hit/miss
// trajectory as a full run over the same stream while the per-access cost
// drops to the tag arithmetic. Partial-tag shadows are left unsynced
// (nothing on this path reads them), and multi-match and ECC-retry events
// cannot occur by construction; their timing contribution is part of the
// fast tier's calibrated bias.
func (c *Cache) AccessFast(at sim.Time, req mem.Request) l2.Outcome {
	g, local := c.groupOf(req.Block)
	if req.Type == mem.Store {
		present := c.groups[g].Lookup(local)
		if _, evicted := c.groups[g].Insert(local); evicted {
			c.Writebacks++
		}
		c.RecordStore(present, c.p.BanksPerBlock)
		if h := c.hooks; h != nil && h.OnAccess != nil {
			h.OnAccess(probe.AccessEvent{At: at, Block: req.Block, Store: true, Hit: present, Banks: c.p.BanksPerBlock})
		}
		return l2.Outcome{Hit: present, ResolveAt: at, CompleteAt: at, Predictable: true, BanksAccessed: c.p.BanksPerBlock}
	}
	hit := c.groups[g].Lookup(local)
	resolve := at + c.nominalOf(g)
	out := l2.Outcome{Hit: hit, ResolveAt: resolve, CompleteAt: resolve, Predictable: true, BanksAccessed: c.p.BanksPerBlock}
	if hit {
		c.groups[g].Touch(local)
	} else {
		out.CompleteAt = c.memory.Fetch(resolve, req.Block)
		c.FillsApplied++
		if _, evicted := c.groups[g].Insert(local); evicted {
			c.Writebacks++
		}
	}
	c.RecordLoad(uint64(resolve-at), hit, true, c.p.BanksPerBlock)
	if h := c.hooks; h != nil && h.OnAccess != nil {
		h.OnAccess(probe.AccessEvent{At: at, Block: req.Block, Hit: hit, Latency: uint64(resolve - at), Banks: c.p.BanksPerBlock})
	}
	return out
}

// nominalOf is Nominal with the group already mapped, backed by the lazily
// built per-group table.
func (c *Cache) nominalOf(g int) sim.Time {
	if c.fastNominal == nil {
		c.fastNominal = make([]sim.Time, c.p.Groups())
		for i := range c.fastNominal {
			pr := c.pairs[pairOf(c.banksOf(i)[0])]
			c.fastNominal[i] = c.p.BankAccess + 2*c.p.TLCycles + pr.ctrlReq + pr.ctrlResp
		}
	}
	return c.fastNominal[g]
}

// roundTrip times one request/response exchange with group g's banks and
// returns the cycle the critical response beat reaches the controller
// center. withData selects full data-slice responses (hits and partial
// matches) versus single-flit miss acknowledgements.
//
// Striped data returns critical-word-first: the bank holding the requested
// word wins its pair's link arbitration, so the resolve time tracks the
// first bank's response; the remaining slices stream behind it and are
// accounted as link occupancy.
func (c *Cache) roundTrip(at sim.Time, g int, withData bool) sim.Time {
	reqFlits := flitsOf(addrCmdBits, c.p.DownBits)
	respBits := 8 // miss acknowledgement
	if withData {
		respBits = c.loadRespBits()
	}
	respFlits := flitsOf(respBits, c.p.UpBits)

	var resolve sim.Time
	for i, b := range c.banksOf(g) {
		pr := c.pairs[pairOf(b)]
		start := pr.down.Reserve(at+pr.ctrlReq, reqFlits)
		pr.downFlits += uint64(reqFlits)
		// The bank starts decoding when the head flit lands; trailing
		// request flits pipeline into the array access.
		arrive := start + c.p.TLCycles
		done := c.bankPorts[b].Reserve(arrive)
		// On a miss acknowledgement only the critical bank replies — every
		// bank's partial-tag comparison gives the same answer, so the
		// others' responses are suppressed.
		if !withData && i > 0 {
			continue
		}
		upStart := pr.up.Reserve(done, respFlits)
		pr.upFlits += uint64(respFlits)
		beat := upStart + c.p.TLCycles + pr.ctrlResp
		if i == 0 {
			resolve = beat
		}
	}
	return resolve
}

// write performs a store or fill data movement into group g's banks:
// address plus data slice down each involved pair, no response.
func (c *Cache) write(at sim.Time, g int, local mem.Block) {
	flits := flitsOf(c.storeBits(), c.p.DownBits)
	for _, b := range c.banksOf(g) {
		pr := c.pairs[pairOf(b)]
		start := pr.down.Reserve(at+pr.ctrlReq, flits)
		pr.downFlits += uint64(flits)
		arrive := start + c.p.TLCycles + (flits - 1)
		c.bankPorts[b].Reserve(arrive)
	}
	victim, evicted := c.groups[g].Insert(local)
	if evicted {
		c.writeback(at, g, victim)
	}
	c.syncPTag(g, local)
}

// fill installs a memory fill, reusing the write path.
func (c *Cache) fill(at sim.Time, g int, local mem.Block) {
	c.FillsApplied++
	c.write(at, g, local)
}

// writeback streams an evicted block's slices up to the controller on
// their way to memory.
func (c *Cache) writeback(at sim.Time, g int, victim mem.Block) {
	c.Writebacks++
	flits := flitsOf(mem.BlockBytes/c.p.BanksPerBlock*8, c.p.UpBits)
	for _, b := range c.banksOf(g) {
		pr := c.pairs[pairOf(b)]
		pr.up.Reserve(at, flits)
		pr.upFlits += uint64(flits)
	}
	c.syncPTag(g, victim)
}

// syncPTag resynchronizes the partial-tag shadow of the set holding local.
func (c *Cache) syncPTag(g int, local mem.Block) {
	if !c.p.PartialTagInBank {
		return
	}
	set := local.SetIndex(c.sets)
	c.lineScratch = c.groups[g].AppendLinesIn(c.lineScratch[:0], set)
	c.ptags[g].SyncSet(set, 0, c.lineScratch)
}

// Warm implements l2.Cache.
func (c *Cache) Warm(b mem.Block) {
	g, local := c.groupOf(b)
	c.groups[g].Insert(local)
	c.syncPTag(g, local)
}

// WarmBulk implements l2.Warmer: the fused warm kernel. The group-select
// arithmetic (the Log2 loop groupOf repays per block) is hoisted out of the
// loop; each block's install and partial-tag resync match Warm exactly, so
// state evolution is identical to per-block Warm calls in slice order.
func (c *Cache) WarmBulk(blocks []mem.Block) {
	bits := mem.Log2(c.p.Groups())
	sync := c.p.PartialTagInBank
	assoc := c.groups[0].Assoc()
	for _, b := range blocks {
		g := int(mem.FoldHash(uint64(b), bits))
		local := b >> uint(bits)
		// TouchOrInsertAt leaves the group array exactly as Insert would,
		// in one set scan instead of Insert's find-then-place pair.
		idx, hit, _, _ := c.groups[g].TouchOrInsertAt(local)
		if hit || !sync {
			// A hit only promotes recency, which the shadow does not
			// track: the set's lines — and so its shadow — are unchanged.
			continue
		}
		// A warm install mutates exactly one way, the one TouchOrInsertAt
		// filled, so rewriting that way's shadow entry leaves the partial
		// tags in the state a full SyncSet of the set would.
		c.ptags[g].Install(local, 0, idx%assoc)
	}
}

// Contains implements l2.Cache.
func (c *Cache) Contains(b mem.Block) bool {
	g, local := c.groupOf(b)
	return c.groups[g].Lookup(local)
}

// LinkUtilization reports the average busy fraction across every
// transmission-line link (both directions, all pairs) over [0,now] — the
// Figure 7 metric. Like sim.Resource.Utilization it clamps at 1:
// reservations extending past `now` can push total occupancy beyond the
// window, but a link cannot be more than fully busy.
func (c *Cache) LinkUtilization(now sim.Time) float64 {
	if now == 0 || len(c.pairs) == 0 {
		return 0
	}
	var busy sim.Time
	for _, pr := range c.pairs {
		busy += pr.down.BusyCycles() + pr.up.BusyCycles()
	}
	u := float64(busy) / (float64(now) * float64(2*len(c.pairs)))
	if u > 1 {
		u = 1
	}
	return u
}

// NetworkEnergyJ reports the dynamic energy dissipated on the transmission
// lines: every flit drives its link's lines for one cycle at the
// voltage-mode per-bit energy, with half the bits carrying pulses on
// average.
func (c *Cache) NetworkEnergyJ() float64 {
	const activity = 0.25
	var e float64
	for _, pr := range c.pairs {
		perBit := tline.EnergyPerBitJ(pr.z0)
		e += float64(pr.downFlits) * float64(c.p.DownBits) * activity * perBit
		e += float64(pr.upFlits) * float64(c.p.UpBits) * activity * perBit
	}
	return e
}

// BankBusyCycles sums port occupancy over all physical banks.
func (c *Cache) BankBusyCycles() sim.Time {
	var t sim.Time
	for _, b := range c.bankPorts {
		t += b.PortBusyCycles()
	}
	return t
}

// String names the design.
func (c *Cache) String() string { return fmt.Sprintf("%v", c.p.Design) }

// L2Stats exposes the embedded common statistics.
func (c *Cache) L2Stats() *l2.Stats { return &c.Stats }

// SetMemory replaces the flat Table 3 memory with another model.
func (c *Cache) SetMemory(m l2.Memory) { c.memory = m }
