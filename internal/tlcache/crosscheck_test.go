package tlcache

// Differential verification of the timing model: an independent
// event-driven reference implementation of the base TLC access path,
// built on sim.Engine with explicit FIFO queues, is driven with the same
// request sequence as the production calendar-arithmetic model. For
// monotone single-type traffic (all hits, so no future fill bookings) the
// two formulations must produce cycle-identical resolution times; any
// divergence is a bug in one of them.

import (
	"math/rand"
	"testing"

	"tlc/internal/config"
	"tlc/internal/mem"
	"tlc/internal/sim"
)

// fifoServer is an event-driven single server with FIFO queueing.
type fifoServer struct {
	eng   *sim.Engine
	busy  bool
	queue []*refJob
}

type refJob struct {
	dur  sim.Time
	then func(start sim.Time)
}

// submit enqueues a job for `dur` cycles; `then` runs with the service
// start time once the server picks it up.
func (s *fifoServer) submit(dur sim.Time, then func(start sim.Time)) {
	s.queue = append(s.queue, &refJob{dur: dur, then: then})
	if !s.busy {
		s.start()
	}
}

func (s *fifoServer) start() {
	if len(s.queue) == 0 {
		s.busy = false
		return
	}
	s.busy = true
	job := s.queue[0]
	s.queue = s.queue[1:]
	start := s.eng.Now()
	job.then(start)
	s.eng.After(job.dur, s.start)
}

// refTLC is the event-driven reference: one down and one up server per
// pair, one server per bank, plus the static latency offsets of the
// production model.
type refTLC struct {
	eng      *sim.Engine
	p        config.TLCParams
	down, up []*fifoServer
	banks    []*fifoServer
	ctrlReq  []sim.Time
	ctrlResp []sim.Time
	resolved map[int]sim.Time
}

func newRefTLC(prod *Cache) *refTLC {
	p := prod.Params()
	r := &refTLC{
		eng:      sim.New(),
		p:        p,
		resolved: map[int]sim.Time{},
	}
	for pr := 0; pr < p.Pairs(); pr++ {
		r.down = append(r.down, &fifoServer{eng: r.eng})
		r.up = append(r.up, &fifoServer{eng: r.eng})
		r.ctrlReq = append(r.ctrlReq, prod.pairs[pr].ctrlReq)
		r.ctrlResp = append(r.ctrlResp, prod.pairs[pr].ctrlResp)
	}
	for b := 0; b < p.Banks; b++ {
		r.banks = append(r.banks, &fifoServer{eng: r.eng})
	}
	return r
}

// load schedules one hitting load arriving at the controller at `at`.
// Flit counts use the same arithmetic as the production model.
func (r *refTLC) load(id int, at sim.Time, bank int, reqFlits, respFlits sim.Time) {
	pr := bank / 2
	r.eng.At(at+r.ctrlReq[pr], func() {
		r.down[pr].submit(reqFlits, func(start sim.Time) {
			arrive := start + r.p.TLCycles
			r.eng.At(arrive, func() {
				r.banks[bank].submit(r.p.BankAccess, func(bstart sim.Time) {
					done := bstart + r.p.BankAccess
					r.eng.At(done, func() {
						r.up[pr].submit(respFlits, func(ustart sim.Time) {
							r.resolved[id] = ustart + r.p.TLCycles + r.ctrlResp[pr]
						})
					})
				})
			})
		})
	})
}

func TestCrossCheckEventDrivenReference(t *testing.T) {
	// Base TLC: one bank per block, hits only, monotone arrivals.
	prod := New(config.TLC, 300)
	ref := newRefTLC(prod)

	rng := rand.New(rand.NewSource(7))
	type req struct {
		id    int
		at    sim.Time
		block mem.Block
	}
	var reqs []req
	at := sim.Time(0)
	for i := 0; i < 5000; i++ {
		b := mem.Block(rng.Intn(1 << 14))
		prod.Warm(b)
		reqs = append(reqs, req{id: i, at: at, block: b})
		at += sim.Time(rng.Intn(12)) // bursty enough to queue everywhere
	}

	prodResolve := map[int]sim.Time{}
	for _, q := range reqs {
		out := prod.Access(q.at, mem.Request{Block: q.block, Type: mem.Load})
		if !out.Hit {
			t.Fatalf("request %d missed; the cross-check requires all hits", q.id)
		}
		prodResolve[q.id] = out.ResolveAt
		g, _ := prod.groupOf(q.block)
		ref.load(q.id, q.at, prod.banksOf(g)[0],
			flitsOf(addrCmdBits, prod.p.DownBits), flitsOf(prod.loadRespBits(), prod.p.UpBits))
	}
	ref.eng.Run()

	// The production model books a request's whole path at call time, so
	// when two requests' bank completions contend for a shared up link,
	// call order wins; the event-driven reference serves arrival order.
	// Those rare inversions are the calendar formulation's documented
	// approximation — quantify it: agreement must be near-total and the
	// residual skew must be bounded by one response serialization.
	mismatches := 0
	var worst sim.Time
	for _, q := range reqs {
		want, got := prodResolve[q.id], ref.resolved[q.id]
		if got != want {
			mismatches++
			d := want - got
			if got > want {
				d = got - want
			}
			if d > worst {
				worst = d
			}
		}
	}
	if frac := float64(mismatches) / float64(len(reqs)); frac > 0.002 {
		t.Fatalf("%d/%d resolution times diverge (%.2f%%): beyond the arbitration-order skew",
			mismatches, len(reqs), frac*100)
	}
	respFlits := flitsOf(prod.loadRespBits(), prod.p.UpBits)
	if worst > respFlits {
		t.Fatalf("worst divergence %d cycles exceeds one response serialization (%d)", worst, respFlits)
	}
}

func TestCrossCheckUncontendedAgreesWithNominal(t *testing.T) {
	// The reference model, driven one request at a time, lands exactly on
	// the design's nominal latencies too.
	prod := New(config.TLC, 300)
	ref := newRefTLC(prod)
	for g := 0; g < 32; g++ {
		b := mem.Block(g) // group hash maps these across all banks
		prod.Warm(b)
		grp, _ := prod.groupOf(b)
		ref.load(g, sim.Time(g)*10000, prod.banksOf(grp)[0],
			flitsOf(addrCmdBits, prod.p.DownBits), flitsOf(prod.loadRespBits(), prod.p.UpBits))
	}
	ref.eng.Run()
	for g := 0; g < 32; g++ {
		b := mem.Block(g)
		want := sim.Time(g)*10000 + prod.Nominal(b)
		if got := ref.resolved[g]; got != want {
			t.Fatalf("group %d: reference resolves at %d, nominal says %d", g, got, want)
		}
	}
}
