package tlcache

import (
	"math"

	"tlc/internal/ecc"
	"tlc/internal/mem"
	"tlc/internal/sim"
)

// Noise models transmission-line bit errors and the paper's end-to-end
// ECC response (Section 4): every response word carries a (72,64) SEC-DED
// code generated and checked at the central controller. Single-bit upsets
// are corrected in place; a detected double-bit error forces the
// controller to re-request the block — a full extra round trip.
//
// Errors are injected deterministically from a hash of (block, cycle), so
// noisy runs stay reproducible.
type Noise struct {
	// BitErrorRate is the per-bit flip probability per line traversal.
	// The paper's conservative 40%-of-cycle setup/hold margins target
	// effectively zero; the knob exists to quantify what residual noise
	// would cost.
	BitErrorRate float64

	// pSingle and pDouble are per-72-bit-word outcome probabilities,
	// derived once from the rate.
	pSingle, pDouble float64
}

// SetNoise enables noise injection on the cache's response paths.
func (c *Cache) SetNoise(bitErrorRate float64) {
	n := &Noise{BitErrorRate: bitErrorRate}
	bits := 64.0 + ecc.CheckBits
	// Binomial word outcomes: exactly one flip, and two-or-more flips.
	p := bitErrorRate
	p0 := math.Pow(1-p, bits)
	p1 := bits * p * math.Pow(1-p, bits-1)
	n.pSingle = p1
	n.pDouble = 1 - p0 - p1
	c.noise = n
}

// wordFate classifies one coded word's traversal deterministically.
func (n *Noise) wordFate(b mem.Block, at sim.Time, word int) ecc.Result {
	h := uint64(b)*0x9e3779b97f4a7c15 ^ uint64(at)*0xbf58476d1ce4e5b9 ^ uint64(word)*0x94d049bb133111eb
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	r := float64(h>>11) / float64(1<<53)
	switch {
	case r < n.pDouble:
		return ecc.Uncorrectable
	case r < n.pDouble+n.pSingle:
		return ecc.Corrected
	default:
		return ecc.OK
	}
}

// responseFate classifies a whole data response of the given payload bits:
// the worst word's fate, plus the count of corrected words.
func (n *Noise) responseFate(b mem.Block, at sim.Time, payloadBits int) (ecc.Result, int) {
	words := (payloadBits + 63) / 64
	if words < 1 {
		words = 1
	}
	worst := ecc.OK
	corrected := 0
	for w := 0; w < words; w++ {
		switch n.wordFate(b, at, w) {
		case ecc.Uncorrectable:
			worst = ecc.Uncorrectable
		case ecc.Corrected:
			corrected++
			if worst == ecc.OK {
				worst = ecc.Corrected
			}
		}
	}
	return worst, corrected
}
