package tlcache

import (
	"testing"

	"tlc/internal/config"
	"tlc/internal/mem"
)

// TestWarmBulkMatchesWarm pins the fused warm kernel to the scalar Warm
// path: delivering a block sequence through WarmBulk must leave the cache
// bit-identical to per-block Warm calls, and allocate nothing.
func TestWarmBulkMatchesWarm(t *testing.T) {
	for _, d := range config.TLCFamily() {
		t.Run(d.String(), func(t *testing.T) {
			scalar := New(d, testMemLat)
			bulk := New(d, testMemLat)
			blocks := make([]mem.Block, 4096)
			for i := range blocks {
				// A mix of conflicting and fresh blocks exercises eviction.
				blocks[i] = mem.Block(uint64(i*37) % 1024)
			}
			for _, b := range blocks {
				scalar.Warm(b)
			}
			bulk.WarmBulk(blocks[:1000])
			bulk.WarmBulk(blocks[1000:])
			for _, b := range blocks {
				if scalar.Contains(b) != bulk.Contains(b) {
					t.Fatalf("%s: residency of %d diverges: scalar %v bulk %v",
						d, b, scalar.Contains(b), bulk.Contains(b))
				}
			}
			if allocs := testing.AllocsPerRun(20, func() { bulk.WarmBulk(blocks) }); allocs != 0 {
				t.Errorf("%s: WarmBulk allocates %.2f per call, want 0", d, allocs)
			}
		})
	}
}
