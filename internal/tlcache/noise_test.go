package tlcache

import (
	"math"
	"math/rand"
	"testing"

	"tlc/internal/config"
	"tlc/internal/ecc"
	"tlc/internal/mem"
	"tlc/internal/sim"
)

func TestNoiseDisabledByDefault(t *testing.T) {
	c := New(config.TLC, testMemLat)
	c.Warm(mem.Block(1))
	c.Access(0, mem.Request{Block: 1, Type: mem.Load})
	if c.ECCCorrections != 0 || c.ECCRetries != 0 {
		t.Fatal("noise active without SetNoise")
	}
}

func TestZeroRateInjectsNothing(t *testing.T) {
	c := New(config.TLC, testMemLat)
	c.SetNoise(0)
	var at sim.Time
	for i := 0; i < 2000; i++ {
		b := mem.Block(i)
		c.Warm(b)
		c.Access(at, mem.Request{Block: b, Type: mem.Load})
		at += 50
	}
	if c.ECCCorrections != 0 || c.ECCRetries != 0 {
		t.Fatal("zero bit-error rate produced errors")
	}
}

func TestHighNoiseCorrectsAndRetries(t *testing.T) {
	c := New(config.TLC, testMemLat)
	c.SetNoise(1e-3) // aggressive: ~7% single, ~0.2% double per word
	var at sim.Time
	loads := 20000
	for i := 0; i < loads; i++ {
		b := mem.Block(i % 4096)
		c.Warm(b)
		c.Access(at, mem.Request{Block: b, Type: mem.Load})
		at += 40
	}
	if c.ECCCorrections == 0 {
		t.Fatal("no single-bit corrections at BER 1e-3")
	}
	if c.ECCRetries == 0 {
		t.Fatal("no retries at BER 1e-3")
	}
	// Expected correction rate: ~7% per word x 8 words per response.
	perLoad := float64(c.ECCCorrections) / float64(loads)
	if perLoad < 0.2 || perLoad > 1.5 {
		t.Fatalf("corrections per load %.3f outside the binomial expectation", perLoad)
	}
}

func TestRetryDelaysResolutionAndBreaksPredictability(t *testing.T) {
	c := New(config.TLC, testMemLat)
	c.SetNoise(0.02) // extreme: most responses carry a double error
	b := mem.Block(42)
	c.Warm(b)
	out := c.Access(1000, mem.Request{Block: b, Type: mem.Load})
	if c.ECCRetries == 0 {
		t.Skip("deterministic draw produced no double error for this block")
	}
	if out.Predictable {
		t.Fatal("a retried lookup must be unpredictable")
	}
	if out.ResolveAt-1000 <= c.Nominal(b) {
		t.Fatal("retry did not lengthen resolution")
	}
}

func TestNoiseDeterministic(t *testing.T) {
	run := func() (uint64, uint64) {
		c := New(config.TLC, testMemLat)
		c.SetNoise(5e-4)
		var at sim.Time
		for i := 0; i < 5000; i++ {
			b := mem.Block(i % 512)
			c.Warm(b)
			c.Access(at, mem.Request{Block: b, Type: mem.Load})
			at += 30
		}
		return c.ECCCorrections, c.ECCRetries
	}
	c1, r1 := run()
	c2, r2 := run()
	if c1 != c2 || r1 != r2 {
		t.Fatalf("noise not deterministic: (%d,%d) vs (%d,%d)", c1, r1, c2, r2)
	}
}

func TestWordFateDistributionMatchesBinomial(t *testing.T) {
	n := &Noise{}
	c := New(config.TLC, testMemLat)
	c.SetNoise(1e-3)
	n = c.noise
	rng := rand.New(rand.NewSource(9))
	var singles, doubles, total int
	for i := 0; i < 200000; i++ {
		b := mem.Block(rng.Uint64())
		switch n.wordFate(b, sim.Time(rng.Uint64()%1e9), rng.Intn(8)) {
		case ecc.Corrected:
			singles++
		case ecc.Uncorrectable:
			doubles++
		}
		total++
	}
	wantSingle := 72 * 1e-3 * math.Pow(1-1e-3, 71)
	gotSingle := float64(singles) / float64(total)
	if math.Abs(gotSingle-wantSingle)/wantSingle > 0.1 {
		t.Fatalf("single-flip rate %.4f, want ~%.4f", gotSingle, wantSingle)
	}
	if doubles == 0 {
		t.Fatal("no double flips sampled at BER 1e-3")
	}
}
