package tlcache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tlc/internal/config"
	"tlc/internal/mem"
	"tlc/internal/sim"
)

const testMemLat = 300

// mkBlock builds a block that maps to the given bank/group/column target
// under the FoldHash bank selection, with the given local id (which fixes
// set and tag).
func mkBlock(target int, local mem.Block, bits int) mem.Block {
	low := uint64(target) ^ mem.FoldHash(uint64(local), bits)
	return local<<uint(bits) | mem.Block(low)
}

func TestNominalRangesMatchTable2(t *testing.T) {
	want := map[config.Design][2]sim.Time{
		config.TLC:        {10, 16},
		config.TLCOpt1000: {12, 13},
		config.TLCOpt500:  {12, 12},
		config.TLCOpt350:  {12, 12},
	}
	for d, r := range want {
		c := New(d, testMemLat)
		min, max := c.NominalRange()
		if min != r[0] || max != r[1] {
			t.Errorf("%v uncontended range %d-%d, want %d-%d", d, min, max, r[0], r[1])
		}
	}
}

func TestMissThenHit(t *testing.T) {
	for _, d := range config.TLCFamily() {
		c := New(d, testMemLat)
		b := mem.Block(0x1234)
		out := c.Access(0, mem.Request{Block: b, Type: mem.Load})
		if out.Hit {
			t.Fatalf("%v: cold access hit", d)
		}
		delta := int64(out.CompleteAt) - int64(out.ResolveAt)
		if delta < testMemLat-16 || delta > testMemLat+16 {
			t.Fatalf("%v: miss completion %d, want resolve+%d+/-16", d, out.CompleteAt, testMemLat)
		}
		if !c.Contains(b) {
			t.Fatalf("%v: fill did not install", d)
		}
		out2 := c.Access(out.CompleteAt+1000, mem.Request{Block: b, Type: mem.Load})
		if !out2.Hit || out2.CompleteAt != out2.ResolveAt {
			t.Fatalf("%v: second access should be a hit completing at resolution", d)
		}
	}
}

func TestUncontendedHitAtNominal(t *testing.T) {
	for _, d := range config.TLCFamily() {
		c := New(d, testMemLat)
		b := mem.Block(0x42)
		c.Warm(b)
		out := c.Access(500, mem.Request{Block: b, Type: mem.Load})
		if !out.Hit {
			t.Fatalf("%v: warmed block missed", d)
		}
		if got := out.ResolveAt - 500; got != c.Nominal(b) {
			t.Fatalf("%v: uncontended latency %d, want nominal %d", d, got, c.Nominal(b))
		}
		if !out.Predictable {
			t.Fatalf("%v: uncontended hit should be predictable", d)
		}
	}
}

func TestUncontendedMissResolvesAtNominal(t *testing.T) {
	// TLC's key predictability property: a miss is determined at exactly
	// the same latency a hit would resolve, so the lookup is on schedule
	// either way.
	for _, d := range config.TLCFamily() {
		c := New(d, testMemLat)
		b := mem.Block(0x9000)
		out := c.Access(0, mem.Request{Block: b, Type: mem.Load})
		if got := out.ResolveAt; got != c.Nominal(b) {
			t.Fatalf("%v: miss resolution %d, want nominal %d", d, got, c.Nominal(b))
		}
		if !out.Predictable {
			t.Fatalf("%v: uncontended miss should be predictable", d)
		}
	}
}

func TestBankContentionBreaksPredictability(t *testing.T) {
	c := New(config.TLC, testMemLat)
	// Two blocks in the same bank under the XOR group hash.
	a := mem.Block(0)    // group 0
	b := mem.Block(0x21) // (33 ^ 1) & 31 = group 0
	c.Warm(a)
	c.Warm(b)
	outA := c.Access(100, mem.Request{Block: a, Type: mem.Load})
	outB := c.Access(100, mem.Request{Block: b, Type: mem.Load})
	if !outA.Predictable {
		t.Fatal("first access should be at nominal")
	}
	if outB.Predictable || outB.ResolveAt <= outA.ResolveAt {
		t.Fatal("queued access should be delayed and unpredictable")
	}
}

func TestPairLinkSharedBetweenBanks(t *testing.T) {
	c := New(config.TLC, testMemLat)
	// Groups 0 and 16 map to banks 0 and 1, which share pair 0's links:
	// simultaneous loads contend on the shared down link.
	a := mem.Block(0)  // group 0 -> bank 0
	b := mem.Block(16) // group 16 -> bank 1
	c.Warm(a)
	c.Warm(b)
	outA := c.Access(100, mem.Request{Block: a, Type: mem.Load})
	outB := c.Access(100, mem.Request{Block: b, Type: mem.Load})
	if outB.ResolveAt <= outA.ResolveAt {
		t.Fatal("pair-sharing banks should contend")
	}
}

func TestBanksAccessedMatchesStriping(t *testing.T) {
	want := map[config.Design]int{
		config.TLC:        1,
		config.TLCOpt1000: 2,
		config.TLCOpt500:  4,
		config.TLCOpt350:  8,
	}
	for d, banks := range want {
		c := New(d, testMemLat)
		out := c.Access(0, mem.Request{Block: 7, Type: mem.Load})
		if out.BanksAccessed != banks {
			t.Errorf("%v banks accessed %d, want %d", d, out.BanksAccessed, banks)
		}
	}
}

func TestStoreIsFireAndForget(t *testing.T) {
	for _, d := range config.TLCFamily() {
		c := New(d, testMemLat)
		b := mem.Block(0x77)
		out := c.Access(10, mem.Request{Block: b, Type: mem.Store})
		if out.CompleteAt != 10 {
			t.Fatalf("%v: store should complete immediately", d)
		}
		if !c.Contains(b) {
			t.Fatalf("%v: store did not install", d)
		}
	}
}

func TestLRUReplacementEvictsAndWritesBack(t *testing.T) {
	c := New(config.TLC, testMemLat)
	// Fill one 4-way set of bank 0 and overflow it: base TLC uses plain
	// LRU (Table 3), the policy that hurts it on equake.
	var at sim.Time
	for i := 1; i <= 5; i++ {
		b := mkBlock(0, mem.Block(i)<<11, 5) // bank 0, set 0, distinct tags
		c.Access(at, mem.Request{Block: b, Type: mem.Store})
		at += 1000
	}
	if c.Writebacks != 1 {
		t.Fatalf("writebacks %d, want 1", c.Writebacks)
	}
	if c.Contains(mkBlock(0, mem.Block(1)<<11, 5)) {
		t.Fatal("LRU block should have been evicted")
	}
	if !c.Contains(mkBlock(0, mem.Block(5)<<11, 5)) {
		t.Fatal("newest block should be resident")
	}
}

func TestMultiMatchSecondRoundTrip(t *testing.T) {
	c := New(config.TLCOpt1000, testMemLat)
	// Two resident blocks in the same group and set whose tags collide in
	// the low 6 bits: group bits 3 (8 groups), 8192 sets (13 local bits),
	// tags 1 and 0x41 share partial tag 1.
	a := mkBlock(0, mem.Block(1)<<13, 3)
	b := mkBlock(0, mem.Block(0x41)<<13, 3)
	c.Warm(a)
	c.Warm(b)
	ga, la := c.groupOf(a)
	gb, lb := c.groupOf(b)
	if ga != gb || la.SetIndex(c.sets) != lb.SetIndex(c.sets) {
		t.Fatal("test blocks must share a group and set")
	}
	if la.PartialTag(c.sets) != lb.PartialTag(c.sets) {
		t.Fatal("test blocks must share a partial tag")
	}
	out := c.Access(0, mem.Request{Block: a, Type: mem.Load})
	if !out.Hit {
		t.Fatal("resident block missed")
	}
	if c.MultiMatches != 1 {
		t.Fatalf("multi-matches %d, want 1", c.MultiMatches)
	}
	if out.Predictable {
		t.Fatal("multi-match resolution needs a second round trip: unpredictable")
	}
	if got := out.ResolveAt - 0; got <= c.Nominal(a) {
		t.Fatalf("multi-match latency %d should exceed nominal %d", got, c.Nominal(a))
	}
}

func TestBaseTLCNeverMultiMatches(t *testing.T) {
	c := New(config.TLC, testMemLat)
	// Full tags live in the banks of the base design: colliding partial
	// tags are irrelevant.
	a := mkBlock(0, mem.Block(1)<<11, 5)
	b := mkBlock(0, mem.Block(0x41)<<11, 5)
	c.Warm(a)
	c.Warm(b)
	c.Access(0, mem.Request{Block: a, Type: mem.Load})
	if c.MultiMatches != 0 {
		t.Fatal("base TLC must not take the multi-match path")
	}
}

func TestPartialTagFalsePositiveStillMisses(t *testing.T) {
	c := New(config.TLCOpt500, testMemLat)
	// Resident block whose partial tag matches an absent block: the banks
	// respond with data+tag, the controller's full comparison misses.
	setBits := mem.Log2(c.sets)
	a := mkBlock(0, mem.Block(1)<<uint(setBits), 2)    // group 0, set 0, tag 1
	b := mkBlock(0, mem.Block(0x41)<<uint(setBits), 2) // tag 0x41: same partial
	c.Warm(a)
	out := c.Access(0, mem.Request{Block: b, Type: mem.Load})
	if out.Hit {
		t.Fatal("partial-tag false positive must still miss on full tags")
	}
	// The miss is resolved at nominal latency (one round trip with data).
	if !out.Predictable {
		t.Fatal("single-match false positive resolves on schedule")
	}
}

func TestLinkUtilizationGrowsAcrossFamily(t *testing.T) {
	// Fewer lines moving the same traffic => higher utilization: the
	// Figure 7 ordering.
	utils := map[config.Design]float64{}
	for _, d := range config.TLCFamily() {
		c := New(d, testMemLat)
		var at sim.Time
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 2000; i++ {
			b := mem.Block(rng.Intn(1 << 18))
			typ := mem.Load
			if i%3 == 0 {
				typ = mem.Store
			}
			c.Access(at, mem.Request{Block: b, Type: typ})
			at += 20
		}
		utils[d] = c.LinkUtilization(at)
	}
	if !(utils[config.TLC] < utils[config.TLCOpt1000] &&
		utils[config.TLCOpt1000] < utils[config.TLCOpt500] &&
		utils[config.TLCOpt500] < utils[config.TLCOpt350]) {
		t.Fatalf("utilization not monotone across family: %v", utils)
	}
}

func TestNetworkEnergyAccumulates(t *testing.T) {
	c := New(config.TLC, testMemLat)
	if c.NetworkEnergyJ() != 0 {
		t.Fatal("no traffic, no energy")
	}
	c.Access(0, mem.Request{Block: 1, Type: mem.Load})
	if c.NetworkEnergyJ() <= 0 {
		t.Fatal("traffic should dissipate energy")
	}
}

func TestWarmInstallsWithoutTiming(t *testing.T) {
	c := New(config.TLCOpt350, testMemLat)
	c.Warm(mem.Block(5))
	if !c.Contains(mem.Block(5)) {
		t.Fatal("warm did not install")
	}
	if c.LinkUtilization(1000) != 0 {
		t.Fatal("warm must not consume link cycles")
	}
}

// Property: across random traffic, every design keeps functional agreement
// with a reference map of the most recent 4 blocks per (group,set) — i.e.
// LRU within the striped group arrays behaves identically to the base
// arrays.
func TestQuickFamilyFunctionalEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		caches := make([]*Cache, 0, 4)
		for _, d := range config.TLCFamily() {
			caches = append(caches, New(d, testMemLat))
		}
		var at sim.Time
		pool := make([]mem.Block, 32)
		for i := range pool {
			pool[i] = mem.Block(rng.Intn(1 << 12))
		}
		for step := 0; step < 200; step++ {
			b := pool[rng.Intn(len(pool))]
			typ := mem.Load
			if rng.Intn(3) == 0 {
				typ = mem.Store
			}
			hits := 0
			for _, c := range caches {
				out := c.Access(at, mem.Request{Block: b, Type: typ})
				if out.Hit {
					hits++
				}
			}
			// All four designs are 16 MB 4-way LRU caches over the same
			// block space; with a pool this small no set conflicts differ
			// (hash = identity modulo different group counts), so hit
			// outcomes may legitimately differ only through set-mapping.
			// Weaker invariant that must always hold: residency after the
			// access agrees everywhere.
			for _, c := range caches {
				if !c.Contains(b) {
					return false
				}
			}
			_ = hits
			at += sim.Time(rng.Intn(100))
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestStatsAccounting(t *testing.T) {
	c := New(config.TLC, testMemLat)
	c.Access(0, mem.Request{Block: 1, Type: mem.Load})    // miss
	c.Access(1000, mem.Request{Block: 1, Type: mem.Load}) // hit
	c.Access(2000, mem.Request{Block: 2, Type: mem.Store})
	// The store allocated an absent block: it counts as a miss too.
	if c.Loads.Value() != 2 || c.Stores.Value() != 1 || c.Hits.Value() != 1 || c.Misses.Value() != 2 {
		t.Fatal("stat counts wrong")
	}
	if c.BanksPerRequest() != 1 {
		t.Fatalf("base TLC banks/request %v, want exactly 1 (Table 9)", c.BanksPerRequest())
	}
	if c.FillsApplied != 1 {
		t.Fatal("fill count wrong")
	}
}

func TestLinkUtilizationClampsAtSaturation(t *testing.T) {
	// Hammer one design with back-to-back requests all timestamped 0:
	// reservations extend far past the measurement window, which used to
	// report utilization > 1.0 (compare sim.Resource.Utilization, which
	// clamps).
	c := New(config.TLC, testMemLat)
	b := mkBlock(0, 1, mem.Log2(c.p.Groups()))
	c.Warm(b)
	for i := 0; i < 200; i++ {
		c.Access(0, mem.Request{Block: b, Type: mem.Load})
	}
	u := c.LinkUtilization(1)
	if u > 1 {
		t.Fatalf("LinkUtilization = %v at a saturated link, want <= 1", u)
	}
	if u != 1 {
		t.Fatalf("LinkUtilization = %v with reservations past the window, want exactly 1", u)
	}
	if got := c.LinkUtilization(0); got != 0 {
		t.Fatalf("LinkUtilization(0) = %v, want 0", got)
	}
}

// TestAccessDoesNotAllocate pins the per-access allocation count of the
// simulation hot path at zero, for every family member and for the hit,
// miss/fill, and store paths. A steady-state core loop must not touch the
// garbage collector.
func TestAccessDoesNotAllocate(t *testing.T) {
	for _, d := range config.TLCFamily() {
		c := New(d, testMemLat)
		bits := mem.Log2(c.p.Groups())
		// Warm a working set and run a burst so reusable buffers (link
		// calendars, scratch slices) reach steady-state capacity.
		blocks := make([]mem.Block, 256)
		for i := range blocks {
			blocks[i] = mkBlock(i%c.p.Groups(), mem.Block(i+1), bits)
			c.Warm(blocks[i])
		}
		at := sim.Time(0)
		access := func() {
			for i, b := range blocks {
				typ := mem.Load
				if i%4 == 3 {
					typ = mem.Store
				}
				out := c.Access(at, mem.Request{Block: b, Type: typ})
				if out.CompleteAt > at {
					at = out.CompleteAt
				}
				at++
			}
			// A guaranteed miss exercises the fill and writeback paths.
			miss := mkBlock(0, mem.Block(0x5f5f5f+int(at)), bits)
			at = c.Access(at, mem.Request{Block: miss, Type: mem.Load}).CompleteAt + 1
		}
		access() // warm-up burst, outside the measurement
		if allocs := testing.AllocsPerRun(50, access); allocs != 0 {
			t.Errorf("%v: %.2f allocs per access burst, want 0", d, allocs)
		}
	}
}
