package tlcache

import (
	"fmt"

	"tlc/internal/cache"
	"tlc/internal/l2"
)

// State is the functional contents of a TLC design: the per-group
// complete-tag arrays plus their partial-tag shadows (captured together so
// the shadows stay consistent without a rebuild). Exported for gob encoding
// by the checkpoint store.
type State struct {
	Groups []cache.SetAssocState
	PTags  []cache.PartialTagsState
}

// SnapshotState implements l2.Snapshotter.
func (c *Cache) SnapshotState() l2.State {
	st := State{
		Groups: make([]cache.SetAssocState, len(c.groups)),
		PTags:  make([]cache.PartialTagsState, len(c.ptags)),
	}
	for i, g := range c.groups {
		st.Groups[i] = g.Snapshot()
	}
	for i, p := range c.ptags {
		st.PTags[i] = p.Snapshot()
	}
	return st
}

// RestoreState implements l2.Snapshotter.
func (c *Cache) RestoreState(state l2.State) error {
	st, ok := state.(State)
	if !ok {
		return fmt.Errorf("tlcache: restoring %T into a TLC cache", state)
	}
	if len(st.Groups) != len(c.groups) || len(st.PTags) != len(c.ptags) {
		return fmt.Errorf("tlcache: state has %d groups/%d ptags, cache has %d/%d",
			len(st.Groups), len(st.PTags), len(c.groups), len(c.ptags))
	}
	for i, g := range c.groups {
		if err := g.Restore(st.Groups[i]); err != nil {
			return fmt.Errorf("tlcache: group %d: %w", i, err)
		}
	}
	for i, p := range c.ptags {
		if err := p.Restore(st.PTags[i]); err != nil {
			return fmt.Errorf("tlcache: ptag %d: %w", i, err)
		}
	}
	return nil
}
