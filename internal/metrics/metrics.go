// Package metrics is the simulation's instrumentation spine: a typed
// registry of named counters, gauges, and histograms every layer publishes
// into. Names are hierarchical, dot-separated, lowercase ("l2.lookup",
// "noc.spine.flits", "cpu.rob.stalls", "dram.rowhits", "ecc.retries"); the
// layer owning the counter owns the prefix.
//
// The registry is read-side only with respect to the hot path: layers
// register at construction time and keep incrementing their own fields
// (stats.Counter pointers, raw uint64 tallies) exactly as before, so metric
// publication adds zero allocations and zero work per access. The registry
// evaluates those fields lazily — through closures — when a snapshot or a
// read is requested, which happens once per run (or once per sampled
// interval), never per event.
//
// Concurrency: a registry instance belongs to one simulation run, which is
// single-goroutine; registration and reads are serialized by construction.
// The internal mutex guards the registration maps so that cross-goroutine
// readers (a Suite aggregating finished runs, a -metrics dump racing a
// progress hook) see consistent map state; the counter values themselves
// are published safely because every cross-goroutine hand-off goes through
// a Snapshot taken after the run's goroutine finished.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"tlc/internal/sim"
	"tlc/internal/stats"
)

// Registry holds one run's named metrics.
type Registry struct {
	mu       sync.Mutex
	counters map[string]func() uint64
	gauges   map[string]func(now sim.Time) float64
	hists    map[string]*stats.Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]func() uint64),
		gauges:   make(map[string]func(now sim.Time) float64),
		hists:    make(map[string]*stats.Histogram),
	}
}

// checkName panics on empty or duplicate names: registration happens at
// construction time, so a collision is a programming error, not a runtime
// condition to tolerate.
func (r *Registry) checkName(name string) {
	if name == "" {
		panic("metrics: empty metric name")
	}
	if _, ok := r.counters[name]; ok {
		panic(fmt.Sprintf("metrics: duplicate metric %q", name))
	}
	if _, ok := r.gauges[name]; ok {
		panic(fmt.Sprintf("metrics: duplicate metric %q", name))
	}
	if _, ok := r.hists[name]; ok {
		panic(fmt.Sprintf("metrics: duplicate metric %q", name))
	}
}

// Counter registers an existing stats.Counter under name. The caller keeps
// incrementing the counter directly; the registry reads it on demand.
func (r *Registry) Counter(name string, c *stats.Counter) {
	r.CounterFunc(name, c.Value)
}

// CounterFunc registers a counter read through fn — the adapter for raw
// uint64 tallies a layer keeps as plain struct fields.
func (r *Registry) CounterFunc(name string, fn func() uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name)
	r.counters[name] = fn
}

// Gauge registers a derived value evaluated at read time. Gauges receive
// the simulated clock so cycle-integrated metrics (power, utilization) can
// normalize over the run window.
func (r *Registry) Gauge(name string, fn func(now sim.Time) float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name)
	r.gauges[name] = fn
}

// Histogram registers an existing histogram under name. The caller keeps
// observing into it directly.
func (r *Registry) Histogram(name string, h *stats.Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name)
	r.hists[name] = h
}

// Resource registers a sim.Resource's aggregate counters under the given
// prefix: <prefix>.busy_cycles, <prefix>.reservations, <prefix>.waits, and
// <prefix>.wait_cycles. It lives here rather than in package sim so the
// event-kernel layer stays import-free of the instrumentation spine.
func (r *Registry) Resource(prefix string, res *sim.Resource) {
	r.CounterFunc(prefix+".busy_cycles", func() uint64 { return uint64(res.BusyCycles()) })
	r.CounterFunc(prefix+".reservations", res.Reservations)
	r.CounterFunc(prefix+".waits", res.Waits)
	r.CounterFunc(prefix+".wait_cycles", func() uint64 { return uint64(res.WaitCycles()) })
}

// CounterValue reads a registered counter; absent names read 0, so shared
// reporting code can ask for design-specific counters unconditionally.
func (r *Registry) CounterValue(name string) uint64 {
	r.mu.Lock()
	fn := r.counters[name]
	r.mu.Unlock()
	if fn == nil {
		return 0
	}
	return fn()
}

// GaugeValue evaluates a registered gauge at the given clock; absent names
// read 0.
func (r *Registry) GaugeValue(name string, now sim.Time) float64 {
	r.mu.Lock()
	fn := r.gauges[name]
	r.mu.Unlock()
	if fn == nil {
		return 0
	}
	return fn(now)
}

// HistogramMean reads a registered histogram's exact mean; absent names
// read 0.
func (r *Registry) HistogramMean(name string) float64 {
	r.mu.Lock()
	h := r.hists[name]
	r.mu.Unlock()
	if h == nil {
		return 0
	}
	return h.Mean()
}

// CounterNames lists the registered counter names in sorted order — the
// stable iteration order sampled mode uses for per-interval deltas.
func (r *Registry) CounterNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// AppendCounterValues appends the current value of each named counter to
// dst and returns it — the allocation-bounded bulk read behind sampled
// mode's per-interval snapshots. Absent names append 0.
func (r *Registry) AppendCounterValues(dst []uint64, names []string) []uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, n := range names {
		if fn := r.counters[n]; fn != nil {
			dst = append(dst, fn())
		} else {
			dst = append(dst, 0)
		}
	}
	return dst
}

// Metric is one snapshotted value.
type Metric struct {
	// Name is the hierarchical metric name.
	Name string `json:"name"`
	// Kind is "counter", "gauge", or "histogram".
	Kind string `json:"kind"`
	// Value is the metric's scalar reading: the count for counters, the
	// evaluated value for gauges, the mean for histograms.
	Value float64 `json:"value"`
	// Count is the exact integer count (counters and histogram sample
	// counts; zero for gauges).
	Count uint64 `json:"count,omitempty"`
	// Histogram shape, present only for Kind == "histogram".
	Min uint64 `json:"min,omitempty"`
	Max uint64 `json:"max,omitempty"`
	P50 uint64 `json:"p50,omitempty"`
	P95 uint64 `json:"p95,omitempty"`
	P99 uint64 `json:"p99,omitempty"`
}

// Snapshot is a point-in-time reading of every registered metric, sorted
// by name. It shares no state with the registry: safe to retain, compare,
// and serialize after the run advances or ends.
type Snapshot []Metric

// Snapshot reads every metric at the given simulated clock.
func (r *Registry) Snapshot(now sim.Time) Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(Snapshot, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n, fn := range r.counters {
		v := fn()
		out = append(out, Metric{Name: n, Kind: "counter", Value: float64(v), Count: v})
	}
	for n, fn := range r.gauges {
		out = append(out, Metric{Name: n, Kind: "gauge", Value: fn(now)})
	}
	for n, h := range r.hists {
		out = append(out, Metric{
			Name: n, Kind: "histogram",
			Value: h.Mean(), Count: h.Count(),
			Min: h.Min(), Max: h.Max(),
			P50: h.Percentile(0.50), P95: h.Percentile(0.95), P99: h.Percentile(0.99),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Value looks up a metric by name in the snapshot. Registry-produced
// snapshots are sorted and answer via binary search; a snapshot that
// arrived unsorted (deserialized from an artifact whose array was
// reassembled out of order) still answers correctly through the linear
// fallback.
func (s Snapshot) Value(name string) (float64, bool) {
	i := sort.Search(len(s), func(i int) bool { return s[i].Name >= name })
	if i < len(s) && s[i].Name == name {
		return s[i].Value, true
	}
	for _, m := range s {
		if m.Name == name {
			return m.Value, true
		}
	}
	return 0, false
}

// Counters extracts the exact integer counters of the snapshot — the shape
// a Suite aggregates across a grid.
func (s Snapshot) Counters() map[string]uint64 {
	out := make(map[string]uint64)
	for _, m := range s {
		if m.Kind == "counter" {
			out[m.Name] = m.Count
		}
	}
	return out
}

// WriteJSON serializes the snapshot, indented, to w.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
