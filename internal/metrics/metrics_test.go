package metrics

import (
	"bytes"
	"encoding/json"
	"sort"
	"testing"

	"tlc/internal/sim"
	"tlc/internal/stats"
)

func TestCounterReads(t *testing.T) {
	r := New()
	var c stats.Counter
	var raw uint64
	r.Counter("l2.hits", &c)
	r.CounterFunc("l2.misses", func() uint64 { return raw })

	if got := r.CounterValue("l2.hits"); got != 0 {
		t.Fatalf("fresh counter reads %d, want 0", got)
	}
	c.Add(3)
	raw = 7
	if got := r.CounterValue("l2.hits"); got != 3 {
		t.Errorf("l2.hits = %d, want 3 (registry must read the live counter)", got)
	}
	if got := r.CounterValue("l2.misses"); got != 7 {
		t.Errorf("l2.misses = %d, want 7", got)
	}
	if got := r.CounterValue("no.such.name"); got != 0 {
		t.Errorf("absent counter reads %d, want 0", got)
	}
}

func TestGaugeReceivesClock(t *testing.T) {
	r := New()
	r.Gauge("power.network_w", func(now sim.Time) float64 { return float64(now) * 0.5 })
	if got := r.GaugeValue("power.network_w", 10); got != 5 {
		t.Errorf("gauge at clock 10 = %v, want 5", got)
	}
	if got := r.GaugeValue("absent", 10); got != 0 {
		t.Errorf("absent gauge reads %v, want 0", got)
	}
}

func TestHistogramMean(t *testing.T) {
	r := New()
	h := stats.NewHistogram(16)
	r.Histogram("l2.lookup", h)
	h.Observe(10)
	h.Observe(20)
	if got := r.HistogramMean("l2.lookup"); got != 15 {
		t.Errorf("histogram mean = %v, want 15", got)
	}
	if got := r.HistogramMean("absent"); got != 0 {
		t.Errorf("absent histogram mean = %v, want 0", got)
	}
}

func TestDuplicateAndEmptyNamesPanic(t *testing.T) {
	cases := []struct {
		name string
		reg  func(r *Registry)
	}{
		{"empty", func(r *Registry) { r.CounterFunc("", func() uint64 { return 0 }) }},
		{"dup counter", func(r *Registry) { r.CounterFunc("x", func() uint64 { return 0 }) }},
		{"dup across kinds (gauge)", func(r *Registry) { r.Gauge("x", func(sim.Time) float64 { return 0 }) }},
		{"dup across kinds (histogram)", func(r *Registry) { r.Histogram("x", stats.NewHistogram(4)) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := New()
			r.CounterFunc("x", func() uint64 { return 0 })
			defer func() {
				if recover() == nil {
					t.Error("registration did not panic")
				}
			}()
			tc.reg(r)
		})
	}
}

func TestResourceRegistersAggregates(t *testing.T) {
	r := New()
	var res sim.Resource
	r.Resource("dram.bus0", &res)
	res.Reserve(0, 4)
	res.Reserve(2, 4) // waits 2 cycles behind the first reservation

	if got := r.CounterValue("dram.bus0.busy_cycles"); got != 8 {
		t.Errorf("busy_cycles = %d, want 8", got)
	}
	if got := r.CounterValue("dram.bus0.reservations"); got != 2 {
		t.Errorf("reservations = %d, want 2", got)
	}
	if got := r.CounterValue("dram.bus0.waits"); got != 1 {
		t.Errorf("waits = %d, want 1", got)
	}
	if got := r.CounterValue("dram.bus0.wait_cycles"); got != 2 {
		t.Errorf("wait_cycles = %d, want 2", got)
	}
}

func TestSnapshotSortedAndComplete(t *testing.T) {
	r := New()
	var c stats.Counter
	c.Add(5)
	r.Counter("b.counter", &c)
	r.Gauge("a.gauge", func(now sim.Time) float64 { return 2.5 })
	h := stats.NewHistogram(8)
	h.Observe(1)
	h.Observe(3)
	r.Histogram("c.hist", h)

	s := r.Snapshot(100)
	if len(s) != 3 {
		t.Fatalf("snapshot has %d metrics, want 3", len(s))
	}
	if !sort.SliceIsSorted(s, func(i, j int) bool { return s[i].Name < s[j].Name }) {
		t.Error("snapshot not sorted by name")
	}
	if v, ok := s.Value("b.counter"); !ok || v != 5 {
		t.Errorf("Value(b.counter) = %v, %v; want 5, true", v, ok)
	}
	if v, ok := s.Value("a.gauge"); !ok || v != 2.5 {
		t.Errorf("Value(a.gauge) = %v, %v; want 2.5, true", v, ok)
	}
	if v, ok := s.Value("c.hist"); !ok || v != 2 {
		t.Errorf("Value(c.hist) = %v, %v; want mean 2, true", v, ok)
	}
	if _, ok := s.Value("zzz"); ok {
		t.Error("Value found a metric that was never registered")
	}

	counters := s.Counters()
	if len(counters) != 1 || counters["b.counter"] != 5 {
		t.Errorf("Counters() = %v, want map[b.counter:5]", counters)
	}

	// The snapshot must not track later counter movement.
	c.Add(100)
	if v, _ := s.Value("b.counter"); v != 5 {
		t.Errorf("snapshot tracked a live counter: %v", v)
	}
}

func TestSnapshotJSONRoundTrips(t *testing.T) {
	r := New()
	var c stats.Counter
	c.Add(9)
	r.Counter("l2.loads", &c)
	var buf bytes.Buffer
	if err := r.Snapshot(0).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if v, ok := back.Value("l2.loads"); !ok || v != 9 {
		t.Errorf("round-tripped Value = %v, %v; want 9, true", v, ok)
	}
}

func TestAppendCounterValues(t *testing.T) {
	r := New()
	var a, b stats.Counter
	a.Add(1)
	b.Add(2)
	r.Counter("a", &a)
	r.Counter("b", &b)
	names := r.CounterNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("CounterNames = %v, want [a b]", names)
	}
	got := r.AppendCounterValues(nil, append(names, "absent"))
	want := []uint64{1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AppendCounterValues = %v, want %v", got, want)
		}
	}
}

// TestBulkReadDoesNotAllocate pins the sampled-mode interval read: with a
// pre-sized destination, reading every counter allocates nothing, so
// per-interval registry snapshots cannot disturb the allocation-free hot
// path they interleave with.
func TestBulkReadDoesNotAllocate(t *testing.T) {
	r := New()
	var cs [16]stats.Counter
	for i := range cs {
		r.Counter(string(rune('a'+i)), &cs[i])
	}
	names := r.CounterNames()
	buf := make([]uint64, 0, len(names))
	if allocs := testing.AllocsPerRun(100, func() {
		buf = r.AppendCounterValues(buf[:0], names)
	}); allocs != 0 {
		t.Errorf("AppendCounterValues allocates %.2f per bulk read, want 0", allocs)
	}
}
