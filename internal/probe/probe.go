// Package probe is the event-level companion to the metrics registry:
// where metrics aggregate, probes expose the individual events — one
// callback per L2 access, one per interconnect message — for tracing,
// validation, and ad-hoc analysis (the "internal event stream" visibility
// Zhang et al. argue simplified models need).
//
// Hooks are nil by default and checked at every emission site, so an
// uninstrumented run pays two loads and two compares per potential event
// and allocates nothing. Callbacks receive events by value; a callback
// that retains or allocates pays for it itself.
package probe

import (
	"tlc/internal/mem"
	"tlc/internal/sim"
)

// AccessEvent is one L2 access outcome, emitted by every cache design as
// the access resolves.
type AccessEvent struct {
	// At is the cycle the request arrived at the controller.
	At sim.Time
	// Block is the 64-byte block accessed.
	Block mem.Block
	// Store marks writes (fire-and-forget; Latency is 0).
	Store bool
	// Hit reports residency.
	Hit bool
	// Latency is the lookup resolution latency in cycles (loads).
	Latency uint64
	// Banks is the number of data banks the access touched.
	Banks int
}

// MessageKind classifies interconnect traffic.
type MessageKind uint8

const (
	// Request is controller-to-bank command traffic.
	Request MessageKind = iota
	// Response is bank-to-controller reply traffic.
	Response
	// Migration is bank-to-bank block movement (DNUCA promotion swaps).
	Migration
	// Writeback is evicted-block traffic headed to memory.
	Writeback
	// Fill is memory-fill data headed into the cache.
	Fill
)

// String names the kind for traces and logs.
func (k MessageKind) String() string {
	switch k {
	case Request:
		return "request"
	case Response:
		return "response"
	case Migration:
		return "migration"
	case Writeback:
		return "writeback"
	case Fill:
		return "fill"
	default:
		return "unknown"
	}
}

// MessageEvent is one interconnect transfer: a routed mesh message or a
// transmission-line exchange.
type MessageEvent struct {
	// At is the cycle the message entered the network.
	At sim.Time
	// Kind classifies the traffic.
	Kind MessageKind
	// Bytes is the payload size.
	Bytes int
}

// Hooks is the set of optional event callbacks a model emits into. A nil
// *Hooks (or a nil individual callback) disables emission at that site.
// Emission sites guard explicitly:
//
//	if h := m.hooks; h != nil && h.OnMessage != nil {
//		h.OnMessage(probe.MessageEvent{...})
//	}
//
// so the unset case compiles down to nil-checks with no event
// construction.
type Hooks struct {
	// OnAccess observes every L2 access outcome.
	OnAccess func(AccessEvent)
	// OnMessage observes every interconnect message.
	OnMessage func(MessageEvent)
}
