package probe

import "testing"

func TestMessageKindStrings(t *testing.T) {
	want := map[MessageKind]string{
		Request:   "request",
		Response:  "response",
		Migration: "migration",
		Writeback: "writeback",
		Fill:      "fill",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("MessageKind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
	if got := MessageKind(99).String(); got == "" {
		t.Error("out-of-range MessageKind stringifies to empty")
	}
}

// TestEmissionIdiom documents the nil-check pattern every layer uses: a nil
// Hooks or a nil callback must cost only the check, and a set callback must
// receive the event. The pattern under test is
//
//	if h := hooks; h != nil && h.OnAccess != nil { h.OnAccess(ev) }
func TestEmissionIdiom(t *testing.T) {
	emit := func(h *Hooks, ev AccessEvent) {
		if h != nil && h.OnAccess != nil {
			h.OnAccess(ev)
		}
	}

	emit(nil, AccessEvent{})      // nil hooks: no panic
	emit(&Hooks{}, AccessEvent{}) // hooks without OnAccess: no panic
	var got []AccessEvent
	h := &Hooks{OnAccess: func(ev AccessEvent) { got = append(got, ev) }}
	emit(h, AccessEvent{Block: 42, Store: true, Hit: true, Banks: 3})
	if len(got) != 1 || got[0].Block != 42 || !got[0].Store || !got[0].Hit || got[0].Banks != 3 {
		t.Fatalf("callback saw %+v", got)
	}
}
