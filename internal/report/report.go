// Package report renders the paper's tables and figure series as aligned
// text, for cmd/tlctables, the benchmark harness, and EXPERIMENTS.md.
package report

import (
	"fmt"
	"strings"

	"tlc/internal/stats"
)

// Table is a simple aligned text table with a title and column headers.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable starts a table.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v unless already
// strings.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly: integers without decimals, small
// values with enough precision to be meaningful.
func FormatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	case v >= 0.1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Figure renders a set of named series (one per design) over shared labels
// (one per benchmark) as a table plus, optionally, ASCII bars.
type Figure struct {
	Title  string
	Labels []string
	Series []stats.Series
	// Unit annotates the value column.
	Unit string
}

// NewFigure starts a figure over the given x labels.
func NewFigure(title string, labels []string) *Figure {
	return &Figure{Title: title, Labels: labels}
}

// AddSeries appends one series; its values must align with the labels.
func (f *Figure) AddSeries(name string, values []float64) {
	f.Series = append(f.Series, stats.Series{Name: name, Labels: f.Labels, Values: values})
}

// String renders the figure as an aligned table of label x series.
func (f *Figure) String() string {
	headers := []string{""}
	for _, s := range f.Series {
		h := s.Name
		if f.Unit != "" {
			h += " (" + f.Unit + ")"
		}
		headers = append(headers, h)
	}
	t := NewTable(f.Title, headers...)
	for i, label := range f.Labels {
		cells := []interface{}{label}
		for _, s := range f.Series {
			if i < len(s.Values) {
				cells = append(cells, s.Values[i])
			} else {
				cells = append(cells, "")
			}
		}
		t.AddRow(cells...)
	}
	return t.String()
}

// Bars renders one series as labeled ASCII bars scaled to maxWidth.
func Bars(title string, labels []string, values []float64, maxWidth int) string {
	var max float64
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for i, v := range values {
		n := 0
		if max > 0 {
			n = int(v / max * float64(maxWidth))
		}
		fmt.Fprintf(&b, "%-*s |%s %s\n", labelW, labels[i], strings.Repeat("#", n), FormatFloat(v))
	}
	return b.String()
}
