package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("short", 1)
	tb.AddRow("much-longer-name", 123.456)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, underline, header, separator, two rows.
	if len(lines) != 6 {
		t.Fatalf("%d lines, want 6:\n%s", len(lines), out)
	}
	if lines[0] != "Demo" {
		t.Fatalf("title line %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "====") {
		t.Fatalf("missing underline: %q", lines[1])
	}
	// All data lines share the header's column start for column 2.
	idx := strings.Index(lines[2], "value")
	if idx < 0 {
		t.Fatal("header missing")
	}
	if !strings.HasPrefix(lines[4][idx:], "1") {
		t.Fatalf("misaligned column:\n%s", out)
	}
}

func TestTableWithoutTitle(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("x")
	if strings.Contains(tb.String(), "=") {
		t.Fatal("untitled table should not have an underline")
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:        "0",
		12345:    "12345",
		42.37:    "42.4",
		3.14159:  "3.14",
		0.061234: "0.061",
	}
	for v, want := range cases {
		if got := FormatFloat(v); got != want {
			t.Errorf("FormatFloat(%v)=%q, want %q", v, got, want)
		}
	}
}

func TestFigureRendersAllSeries(t *testing.T) {
	f := NewFigure("Fig", []string{"gcc", "mcf"})
	f.AddSeries("DNUCA", []float64{1.0, 2.0})
	f.AddSeries("TLC", []float64{3.0, 4.0})
	out := f.String()
	for _, want := range []string{"Fig", "gcc", "mcf", "DNUCA", "TLC", "1.00", "4.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure output missing %q:\n%s", want, out)
		}
	}
}

func TestFigureWithUnit(t *testing.T) {
	f := NewFigure("Fig", []string{"x"})
	f.Unit = "mW"
	f.AddSeries("s", []float64{1})
	if !strings.Contains(f.String(), "s (mW)") {
		t.Fatal("unit annotation missing")
	}
}

func TestBars(t *testing.T) {
	out := Bars("util", []string{"a", "bb"}, []float64{1, 2}, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines, want title + 2 bars", len(lines))
	}
	if strings.Count(lines[2], "#") != 10 {
		t.Fatalf("max bar should reach full width: %q", lines[2])
	}
	if strings.Count(lines[1], "#") != 5 {
		t.Fatalf("half bar should reach half width: %q", lines[1])
	}
}

func TestBarsAllZero(t *testing.T) {
	out := Bars("", []string{"a"}, []float64{0}, 10)
	if strings.Contains(out, "#") {
		t.Fatal("zero values should render empty bars")
	}
}
