package tline

import (
	"testing"
	"testing/quick"
)

func TestShieldingCutsCrosstalk(t *testing.T) {
	for _, g := range Table1() {
		sh := CrosstalkFrac(g, true)
		un := CrosstalkFrac(g, false)
		if sh >= un {
			t.Fatalf("%+v: shielded crosstalk %.3f not below unshielded %.3f", g, sh, un)
		}
		if un/sh < 5 {
			t.Fatalf("%+v: shields only cut crosstalk %.1fx", g, un/sh)
		}
	}
}

func TestTable1GeometriesPassShielded(t *testing.T) {
	for _, g := range Table1() {
		n := AnalyzeNoise(g)
		if !n.OKShielded {
			t.Errorf("%+v fails the noise criterion even shielded (xtalk %.3f)", g, n.CrosstalkShielded)
		}
		if n.CrosstalkShielded > NoiseMarginFrac {
			t.Errorf("%+v: shielded crosstalk %.3f above the %.2f margin", g, n.CrosstalkShielded, NoiseMarginFrac)
		}
	}
}

func TestUnshieldedNoiseWorse(t *testing.T) {
	// The Section 3 argument: without per-line shields the coupled noise
	// eats deep into the receiver's budget.
	g := Table1()[2]
	n := AnalyzeNoise(g)
	if n.CrosstalkUnshielded < NoiseMarginFrac {
		t.Fatalf("unshielded crosstalk %.3f unexpectedly inside the margin — the shields would be unnecessary", n.CrosstalkUnshielded)
	}
	if n.OKUnshielded {
		t.Fatal("the 1.3 cm line should fail unshielded")
	}
}

func TestTighterSpacingCouplesMore(t *testing.T) {
	g := Table1()[0]
	tight := g
	tight.SpacingUM = g.SpacingUM / 2
	if CrosstalkFrac(tight, false) <= CrosstalkFrac(g, false) {
		t.Fatal("halving the spacing should raise coupling")
	}
}

func TestReturnPathResistance(t *testing.T) {
	g := Table1()[1]
	sh := ReturnPathResistanceOhms(g, true)
	un := ReturnPathResistanceOhms(g, false)
	if sh >= un {
		t.Fatalf("shields should lower return resistance: %0.2f vs %0.2f", sh, un)
	}
	if sh <= 0 || un <= 0 {
		t.Fatal("resistances must be positive")
	}
}

func TestDispersionPenalty(t *testing.T) {
	g := Table1()[2]
	sh := DispersionPenaltyPs(g, true)
	un := DispersionPenaltyPs(g, false)
	if sh >= un {
		t.Fatalf("unshielded return path should cost more edge: %0.2f vs %0.2f ps", sh, un)
	}
}

func TestMaxUnshieldedLength(t *testing.T) {
	g := Table1()[2]
	max := MaxUnshieldedLengthCM(g)
	if max >= g.LengthCM {
		t.Fatalf("unshielded max %.2f cm should fall short of the design's %.1f cm", max, g.LengthCM)
	}
	// For these cross-sections the coupled noise alone exceeds the
	// budget: no unshielded length works at all.
	if max != 0 {
		t.Fatalf("expected shields to be mandatory, got max %.2f cm", max)
	}
}

// Property: crosstalk fraction is always in (0,1) and monotone in spacing.
func TestQuickCrosstalkSane(t *testing.T) {
	f := func(rawW, rawS uint8) bool {
		w := 1.0 + float64(rawW%30)/10
		s := 0.5 + float64(rawS%40)/10
		g := Geometry{WidthUM: w, SpacingUM: s, HeightUM: 1.75, ThicknessUM: 3.0, LengthCM: 1}
		k := CrosstalkFrac(g, false)
		if k <= 0 || k >= 1 {
			return false
		}
		wider := g
		wider.SpacingUM = s * 2
		return CrosstalkFrac(wider, false) < k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
