package tline

import "math"

// Crosstalk analysis for the shielding argument of Section 3: the paper
// lays out a power or ground shield between every pair of signal lines (on
// top of the reference planes above and below) to isolate capacitive and
// inductive coupling and provide low-resistance return paths.
//
// The model compares the worst-case coupled noise on a victim line when
// both neighbours switch, with and without the shields:
//
//   - Unshielded: neighbours sit at distance S on both sides; the
//     sidewall coupling capacitance 2*eps*T/S couples directly into the
//     victim. The capacitive divider K = Cc / (Cc + Cself) bounds the
//     coupled voltage for a fast aggressor edge.
//   - Shielded: a grounded line of the same width sits between victim and
//     aggressor. Direct coupling survives only as a fringing component
//     over the shield; the model charges a residual fraction of the
//     sidewall capacitance set by the shield geometry.
//
// The acceptance criterion pairs with the amplitude check: the received
// signal (attenuated) must still clear the receiver threshold with the
// coupled noise subtracted.

// NoiseMarginFrac is the receiver's noise budget as a fraction of Vdd:
// coupled noise beyond this corrupts sampling even when the amplitude
// criterion passes.
const NoiseMarginFrac = 0.15

// shieldResidual is the fraction of direct sidewall coupling that leaks
// past a same-width grounded shield (fringing over the shield top).
const shieldResidual = 0.06

// CrosstalkFrac reports the worst-case coupled noise on a victim line as
// a fraction of Vdd, with both neighbours switching in the same direction.
func CrosstalkFrac(g Geometry, shielded bool) float64 {
	validate(g)
	w := g.WidthUM * 1e-6
	s := g.SpacingUM * 1e-6
	h := g.HeightUM * 1e-6
	t := g.ThicknessUM * 1e-6
	eps := eps0 * EpsR

	// Self capacitance to the reference planes (plate + fringing).
	cSelf := 2*eps*w/h + 4*eps
	// Direct sidewall coupling to one neighbour.
	cSide := eps * t / s
	if shielded {
		// With a shield between victim and aggressor the signals sit two
		// pitches apart and only the residual fringing couples.
		cSide *= shieldResidual
	}
	// Two aggressors, worst case in phase.
	cc := 2 * cSide
	return cc / (cc + cSelf)
}

// SignalWithNoise extends the acceptance analysis with the crosstalk
// budget: the received amplitude must exceed the threshold plus the
// coupled noise.
type SignalWithNoise struct {
	Signal
	// CrosstalkFracShielded / Unshielded are the coupled-noise fractions
	// for the two layouts.
	CrosstalkShielded, CrosstalkUnshielded float64
	// OKShielded / OKUnshielded apply the full criterion (amplitude,
	// pulse width, and noise margin) for each layout.
	OKShielded, OKUnshielded bool
}

// AnalyzeNoise runs the full signal-integrity analysis including
// crosstalk, for both shielded and unshielded layouts of the geometry.
func AnalyzeNoise(g Geometry) SignalWithNoise {
	base := Analyze(g)
	sh := CrosstalkFrac(g, true)
	un := CrosstalkFrac(g, false)
	ok := func(xtalk float64) bool {
		return base.OK && xtalk <= NoiseMarginFrac &&
			base.AmplitudeFrac-xtalk >= MinAmplitudeFrac-NoiseMarginFrac
	}
	return SignalWithNoise{
		Signal:              base,
		CrosstalkShielded:   sh,
		CrosstalkUnshielded: un,
		OKShielded:          ok(sh),
		OKUnshielded:        ok(un),
	}
}

// ReturnPathResistanceOhms estimates the effective return-path resistance
// seen by a line: the paper's second argument for shields is that each
// line gets its own low-resistance return, keeping inductive noise down.
// With shields, the two adjacent shield lines and the planes conduct in
// parallel; without, only the (more distant) reference planes serve.
func ReturnPathResistanceOhms(g Geometry, shielded bool) float64 {
	lenM := g.LengthCM * 1e-2
	// A shield line has the signal conductor's cross-section.
	shieldR := rho / (g.WidthUM * 1e-6 * g.ThicknessUM * 1e-6) * lenM
	// The reference planes present a wide but thin sheet: model the
	// effective return as a strip a few line-widths wide.
	planeT := 0.8e-6
	planeW := 8 * g.WidthUM * 1e-6
	planeR := rho / (planeW * planeT) * lenM
	planes := planeR / 2 // one above, one below
	if !shielded {
		return planes
	}
	shields := shieldR / 2 // one each side
	return 1 / (1/planes + 1/shields)
}

// DispersionPenaltyPs quantifies how much extra edge degradation an
// unshielded layout suffers from the higher return-path impedance: a
// first-order L/R penalty added to the received edge.
func DispersionPenaltyPs(g Geometry, shielded bool) float64 {
	p := Extract(g)
	lenM := g.LengthCM * 1e-2
	lTot := p.LPerM * lenM
	rRet := ReturnPathResistanceOhms(g, shielded)
	return lTot / (2 * (p.Z0 + rRet)) * 1e12 * (rRet / p.Z0)
}

// MaxUnshieldedLengthCM searches for the longest run of this cross-section
// that would still pass the noise criterion without shields — the
// quantitative version of the paper's claim that shields are what make
// centimeter-scale lines viable.
func MaxUnshieldedLengthCM(g Geometry) float64 {
	lo, hi := 0.05, 3.0
	probe := g
	probe.LengthCM = lo
	if !AnalyzeNoise(probe).OKUnshielded {
		return 0 // fails even at the shortest run: shields are mandatory
	}
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		gg := g
		gg.LengthCM = mid
		if AnalyzeNoise(gg).OKUnshielded {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Round(lo*100) / 100
}
