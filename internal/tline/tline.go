// Package tline models the on-chip transmission lines TLC is built from
// (Section 3). It substitutes for the paper's Linpar field solver and
// HSPICE W-element simulations with closed-form stripline physics:
//
//   - RLC extraction: per-unit-length capacitance from parallel-plate,
//     sidewall, and fringing terms; inductance from the TEM relation
//     L*C = mu*eps; characteristic impedance Z0 = sqrt(L/C).
//   - Loss: DC resistance plus the skin effect (current crowding reduces
//     the effective cross-section at high frequency), giving the
//     frequency-dependent attenuation the paper models with HSPICE.
//   - Signal integrity acceptance: received amplitude >= 75% of Vdd and
//     received pulse width >= 40% of the 10 GHz cycle, the paper's two
//     criteria (Section 5, Physical Evaluation).
//   - Driver/receiver cost: transistor count, gate width, and the
//     voltage-mode dynamic energy alpha * t_b * V^2 / (R_D + Z0) * f
//     (Section 6.1, Power).
//
// Lines are laid out stripline-fashion between reference planes with
// alternating power/ground shields, so each signal sees a homogeneous
// low-k dielectric and a low-resistance return path.
package tline

import (
	"fmt"
	"math"
)

// Physical constants.
const (
	eps0 = 8.854e-12      // F/m
	mu0  = 4e-7 * math.Pi // H/m
	c0   = 2.9979e8       // m/s

	// EpsR is the relative permittivity of the low-k dielectric
	// surrounding the transmission lines [7].
	EpsR = 2.2

	// rho is the resistivity of the thick upper-layer copper the
	// transmission lines are drawn in; at 3 um thickness the barrier
	// liner is a negligible fraction of the cross-section.
	rho = 1.8e-8

	// Vdd is the 45 nm supply voltage.
	Vdd = 1.0
	// CyclePs is the 10 GHz clock period.
	CyclePs = 100.0
	// ClockHz is the 10 GHz operating frequency.
	ClockHz = 10e9

	// MinAmplitudeFrac is the acceptance floor for received amplitude,
	// as a fraction of Vdd (the paper requires >= 75%).
	MinAmplitudeFrac = 0.75
	// MinPulseWidthFrac is the acceptance floor for received pulse
	// width, as a fraction of the cycle (the paper requires >= 40%).
	MinPulseWidthFrac = 0.40

	// launchEfficiency folds in driver tuning error and reflection noise
	// at discontinuities: the received amplitude is derated by this
	// factor on top of conductor attenuation.
	launchEfficiency = 0.96
)

// Geometry describes one stripline transmission line (Figure 3 / Table 1).
// All dimensions in microns except length.
type Geometry struct {
	// WidthUM is the signal conductor width (W).
	WidthUM float64
	// SpacingUM is the gap to the adjacent power/ground shield line (S).
	SpacingUM float64
	// HeightUM is the dielectric height to each reference plane (H).
	HeightUM float64
	// ThicknessUM is the conductor thickness (T).
	ThicknessUM float64
	// LengthCM is the routed length in centimeters.
	LengthCM float64
}

// Table1 returns the three transmission-line geometries of Table 1: longer
// links use wider, more widely spaced conductors to hold attenuation down.
func Table1() []Geometry {
	return []Geometry{
		{WidthUM: 2.0, SpacingUM: 2.0, HeightUM: 1.75, ThicknessUM: 3.0, LengthCM: 0.9},
		{WidthUM: 2.5, SpacingUM: 2.5, HeightUM: 1.75, ThicknessUM: 3.0, LengthCM: 1.1},
		{WidthUM: 3.0, SpacingUM: 3.0, HeightUM: 1.75, ThicknessUM: 3.0, LengthCM: 1.3},
	}
}

// RLC holds the extracted per-unit-length electrical parameters, the output
// the paper obtains from Linpar.
type RLC struct {
	// CPerM is capacitance per meter.
	CPerM float64
	// LPerM is inductance per meter.
	LPerM float64
	// RdcPerM is DC resistance per meter.
	RdcPerM float64
	// RhfPerM is the skin-effect resistance per meter at the given
	// frequency.
	RhfPerM func(freqHz float64) float64
	// Z0 is the characteristic impedance, ohms.
	Z0 float64
	// Velocity is the propagation speed, m/s.
	Velocity float64
}

// Extract computes per-unit-length RLC for a stripline geometry.
func Extract(g Geometry) RLC {
	validate(g)
	w := g.WidthUM * 1e-6
	h := g.HeightUM * 1e-6
	t := g.ThicknessUM * 1e-6
	// Cohn's stripline impedance for a strip centered between reference
	// planes separated by b = 2H + T, with a first-order thickness
	// correction fattening the effective strip width:
	//
	//	Z0 = (30*pi/sqrt(epsR)) * b / (w_eff + 0.441 b)
	b := 2*h + t
	wEff := w + 0.35*t
	z0 := 30 * math.Pi / math.Sqrt(EpsR) * b / (wEff + 0.441*b)
	// TEM mode in a homogeneous dielectric: velocity depends only on EpsR;
	// C and L follow from Z0 = sqrt(L/C) and v = 1/sqrt(LC).
	v := c0 / math.Sqrt(EpsR)
	cPerM := 1 / (v * z0)
	lPerM := z0 / v
	rdc := rho / (w * t)
	rhf := func(f float64) float64 {
		if f <= 0 {
			return rdc
		}
		delta := math.Sqrt(rho / (math.Pi * f * mu0))
		// Current crowds into a skin-depth-thick shell around the
		// perimeter; clamp to the DC cross-section.
		aEff := 2 * delta * (w + t)
		if full := w * t; aEff > full {
			aEff = full
		}
		r := rho / aEff
		if r < rdc {
			r = rdc
		}
		return r
	}
	return RLC{
		CPerM:    cPerM,
		LPerM:    lPerM,
		RdcPerM:  rdc,
		RhfPerM:  rhf,
		Z0:       z0,
		Velocity: v,
	}
}

// Signal is the outcome of "simulating" a 10 GHz pulse down the line — the
// quantities the paper reads off its HSPICE waveforms.
type Signal struct {
	Geometry Geometry
	RLC      RLC
	// FlightPs is the wave flight time over the full length.
	FlightPs float64
	// DelayCycles is the link latency in whole clock cycles, including
	// driver and receiver overhead, as the cache model must budget it.
	DelayCycles int
	// AmplitudeFrac is the received amplitude as a fraction of Vdd.
	AmplitudeFrac float64
	// PulseWidthPs is the received pulse width of a one-cycle pulse after
	// dispersion.
	PulseWidthPs float64
	// OK reports whether both acceptance criteria pass.
	OK bool
}

// driverReceiverPs is the fixed driver insertion + receiver resolution
// overhead per traversal.
const driverReceiverPs = 25.0

// Analyze propagates a single-cycle 10 GHz pulse down the line and applies
// the paper's two acceptance criteria.
func Analyze(g Geometry) Signal {
	p := Extract(g)
	lenM := g.LengthCM * 1e-2
	flight := lenM / p.Velocity * 1e12 // ps

	// Amplitude: source-terminated launch at Vdd/2 doubles at the
	// high-impedance receiver; conductor loss attenuates by exp(-alpha*l)
	// with alpha = R/(2*Z0) for a low-loss line. The DC/fundamental
	// resistance governs the settled amplitude.
	alphaDC := p.RdcPerM / (2 * p.Z0)
	amp := math.Exp(-alphaDC*lenM) * launchEfficiency

	// Pulse width: the high-frequency components (taken at the third
	// harmonic) see higher skin-effect resistance, rounding the edges.
	// Model the edge degradation as the RC time constant formed by the
	// high-frequency line resistance and the line capacitance.
	rHF := p.RhfPerM(3*ClockHz) * lenM
	cTot := p.CPerM * lenM
	launchEdgePs := 15.0
	edgePs := math.Sqrt(launchEdgePs*launchEdgePs + (0.5*rHF*cTot*1e12)*(0.5*rHF*cTot*1e12))
	pw := CyclePs - (edgePs - launchEdgePs)

	total := flight + driverReceiverPs
	cycles := int(math.Ceil(total / CyclePs))
	ok := amp >= MinAmplitudeFrac && pw >= MinPulseWidthFrac*CyclePs
	return Signal{
		Geometry: g, RLC: p,
		FlightPs:      flight,
		DelayCycles:   cycles,
		AmplitudeFrac: amp,
		PulseWidthPs:  pw,
		OK:            ok,
	}
}

// EnergyPerBitJ is the dynamic energy to signal one bit down a matched
// (R_D = Z0) voltage-mode line: the driver sees R_D in series with Z0 for
// the pulse duration t_b (Section 6.1):
//
//	E = t_b * V^2 / (R_D + Z0)
func EnergyPerBitJ(z0 float64) float64 {
	tb := CyclePs * 1e-12
	return tb * Vdd * Vdd / (2 * z0)
}

// DynamicPowerW is the paper's transmission-line dynamic power equation:
// alpha * t_b * V^2/(R_D+Z0) * f, for a single line with activity alpha.
func DynamicPowerW(z0, alpha float64) float64 {
	return alpha * EnergyPerBitJ(z0) * ClockHz
}

// CheaperThanRC reports the paper's crossover condition: a matched
// voltage-mode transmission line consumes less dynamic power than a
// conventional wire of total capacitance cWire when t_b/(2*Z0) < C.
func CheaperThanRC(z0, cWireF float64) bool {
	tb := CyclePs * 1e-12
	return tb/(2*z0) < cWireF
}

// InterfaceCost is the circuit cost of one transmission line's endpoints:
// the source-terminated tunable driver, the high-input-impedance receiver,
// and the synchronization latches at each end.
type InterfaceCost struct {
	Transistors     int
	GateWidthLambda float64
}

// Per-line circuit budgets. The driver is sized to match Z0 (a ~70 ohm
// output impedance needs a wide device), split into binary-weighted
// segments for digital tuning [10], and driven through a tapered predriver
// chain. Constants follow the transistor-count arithmetic behind Table 8
// (~93 transistors and ~10 kilo-lambda of gate width per line).
const (
	driverSegments       = 8
	transistorsPerSeg    = 6 // segment inverter + tuning pass gate + control
	receiverTransistors  = 15
	latchTransistors     = 30
	invR0Ohms            = 9000.0
	invMinWidthLambda    = 12.0
	tuningWidthOverhead  = 2.0
	predriverTaperFactor = 2.33
	receiverWidthLambda  = 1200.0
	latchWidthLambda     = 300.0
)

// Interface reports the endpoint circuit cost for a line of impedance z0.
func Interface(z0 float64) InterfaceCost {
	if z0 <= 0 {
		panic(fmt.Sprintf("tline: non-positive Z0 %v", z0))
	}
	driverWidth := invR0Ohms / z0 * invMinWidthLambda * tuningWidthOverhead * predriverTaperFactor
	return InterfaceCost{
		Transistors:     driverSegments*transistorsPerSeg + receiverTransistors + latchTransistors,
		GateWidthLambda: driverWidth + receiverWidthLambda + latchWidthLambda,
	}
}

// TrackPitchMM is the layout pitch one line plus its shield consumes on the
// transmission-line layer: signal width + spacing + shield width + spacing
// (alternating power/ground shielding, Section 3). Shields are the same
// width as the signal.
func (g Geometry) TrackPitchMM() float64 {
	return 2 * (g.WidthUM + g.SpacingUM) * 1e-3
}

func validate(g Geometry) {
	if g.WidthUM <= 0 || g.SpacingUM <= 0 || g.HeightUM <= 0 || g.ThicknessUM <= 0 || g.LengthCM <= 0 {
		panic(fmt.Sprintf("tline: invalid geometry %+v", g))
	}
}
