package tline

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTable1GeometriesPass(t *testing.T) {
	for _, g := range Table1() {
		s := Analyze(g)
		if !s.OK {
			t.Errorf("Table 1 geometry %+v fails acceptance: amp=%.3f pw=%.1fps",
				g, s.AmplitudeFrac, s.PulseWidthPs)
		}
	}
}

func TestNarrowLongLineFailsAmplitude(t *testing.T) {
	// A 1 micron wide line at 1.3 cm attenuates too much — the reason
	// Table 1 widens lines with length.
	g := Geometry{WidthUM: 1.0, SpacingUM: 1.0, HeightUM: 1.75, ThicknessUM: 3.0, LengthCM: 1.3}
	s := Analyze(g)
	if s.AmplitudeFrac >= MinAmplitudeFrac {
		t.Fatalf("narrow 1.3cm line passed amplitude with %.3f", s.AmplitudeFrac)
	}
	if s.OK {
		t.Fatal("narrow 1.3cm line should fail acceptance")
	}
}

func TestWiderLinesAttenuateLess(t *testing.T) {
	base := Geometry{WidthUM: 1.5, SpacingUM: 2.0, HeightUM: 1.75, ThicknessUM: 3.0, LengthCM: 1.3}
	wide := base
	wide.WidthUM = 3.0
	if Analyze(wide).AmplitudeFrac <= Analyze(base).AmplitudeFrac {
		t.Fatal("widening the conductor should reduce attenuation")
	}
}

func TestFlightTimeIsSpeedOfLightLimited(t *testing.T) {
	g := Table1()[2] // 1.3 cm
	s := Analyze(g)
	wantPs := 0.013 / (c0 / math.Sqrt(EpsR)) * 1e12
	if math.Abs(s.FlightPs-wantPs) > 1e-6 {
		t.Fatalf("flight %.2fps, want %.2fps", s.FlightPs, wantPs)
	}
	// 1.3 cm at ~0.2 m/ns is ~64 ps: one 10 GHz cycle covers the longest
	// TLC link including driver/receiver overhead.
	if s.DelayCycles != 1 {
		t.Fatalf("1.3cm link delay %d cycles, want 1", s.DelayCycles)
	}
}

func TestVelocityIndependentOfGeometry(t *testing.T) {
	// TEM propagation: speed depends only on the dielectric.
	a := Extract(Table1()[0])
	b := Extract(Table1()[2])
	if math.Abs(a.Velocity-b.Velocity) > 1 {
		t.Fatalf("velocities differ: %v vs %v", a.Velocity, b.Velocity)
	}
	want := c0 / math.Sqrt(EpsR)
	if math.Abs(a.Velocity-want) > 1 {
		t.Fatalf("velocity %v, want %v", a.Velocity, want)
	}
}

func TestZ0InPlausibleRange(t *testing.T) {
	for _, g := range Table1() {
		z0 := Extract(g).Z0
		if z0 < 40 || z0 > 120 {
			t.Errorf("geometry %+v has implausible Z0 %.1f ohms", g, z0)
		}
	}
}

func TestSkinEffectRaisesResistanceWithFrequency(t *testing.T) {
	p := Extract(Table1()[2])
	rdc := p.RhfPerM(0)
	r10 := p.RhfPerM(10e9)
	r30 := p.RhfPerM(30e9)
	if rdc != p.RdcPerM {
		t.Fatal("zero-frequency resistance should equal DC")
	}
	if r30 < r10 || r10 < rdc {
		t.Fatalf("resistance not monotone with frequency: %v %v %v", rdc, r10, r30)
	}
	if r30 <= rdc {
		t.Fatal("skin effect should raise resistance at the third harmonic")
	}
}

func TestEnergyPerBit(t *testing.T) {
	// Matched 50-ohm line, 100 ps pulse: E = 100ps * 1V^2 / 100ohm = 1 pJ.
	got := EnergyPerBitJ(50)
	if math.Abs(got-1e-12) > 1e-18 {
		t.Fatalf("energy per bit %.3e J, want 1e-12", got)
	}
}

func TestDynamicPowerScalesWithActivity(t *testing.T) {
	full := DynamicPowerW(50, 1.0)
	half := DynamicPowerW(50, 0.5)
	if math.Abs(full-2*half) > 1e-15 {
		t.Fatal("dynamic power should be linear in activity")
	}
	// alpha=1 at 10 GHz on a 50-ohm line: 1 pJ * 10 GHz = 10 mW.
	if math.Abs(full-0.01) > 1e-9 {
		t.Fatalf("full-activity power %v W, want 0.01", full)
	}
}

func TestCheaperThanRCCrossover(t *testing.T) {
	// t_b/(2 Z0) = 100ps/140ohm = 0.71 pF. Wires longer than ~3-4 mm of
	// conventional capacitance clear the bar; short wires do not.
	z0 := 70.0
	if CheaperThanRC(z0, 0.3e-12) {
		t.Fatal("a short (0.3 pF) wire should favour conventional signalling")
	}
	if !CheaperThanRC(z0, 3e-12) {
		t.Fatal("a long (3 pF) global wire should favour the transmission line")
	}
}

func TestInterfaceCost(t *testing.T) {
	c := Interface(70)
	// Table 8 arithmetic: ~1.9e5 transistors over 2048 lines = ~93/line,
	// ~20 Mlambda over 2048 lines = ~10 klambda/line.
	if c.Transistors < 80 || c.Transistors > 110 {
		t.Fatalf("per-line transistors %d, want ~93", c.Transistors)
	}
	if c.GateWidthLambda < 2000 || c.GateWidthLambda > 15000 {
		t.Fatalf("per-line gate width %.0f lambda, want thousands", c.GateWidthLambda)
	}
	// Lower impedance needs a wider driver.
	if Interface(40).GateWidthLambda <= Interface(90).GateWidthLambda {
		t.Fatal("driver width should grow as Z0 falls")
	}
}

func TestInterfacePanicsOnBadZ0(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Interface(0) did not panic")
		}
	}()
	Interface(0)
}

func TestTrackPitch(t *testing.T) {
	g := Table1()[0] // W=S=2um -> pitch includes shield: 2*(2+2)=8um
	if got := g.TrackPitchMM(); math.Abs(got-0.008) > 1e-12 {
		t.Fatalf("track pitch %v mm, want 0.008", got)
	}
}

func TestValidateRejectsBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-width geometry did not panic")
		}
	}()
	Extract(Geometry{WidthUM: 0, SpacingUM: 1, HeightUM: 1, ThicknessUM: 1, LengthCM: 1})
}

// Property: amplitude decays monotonically with length and never exceeds
// the launch efficiency; longer lines never arrive stronger.
func TestQuickAmplitudeMonotoneInLength(t *testing.T) {
	f := func(rawW, rawL1, rawL2 uint8) bool {
		w := 1.0 + float64(rawW%30)/10 // 1.0 .. 3.9 um
		l1 := 0.2 + float64(rawL1%20)/10
		l2 := l1 + 0.1 + float64(rawL2%10)/10
		g1 := Geometry{WidthUM: w, SpacingUM: w, HeightUM: 1.75, ThicknessUM: 3.0, LengthCM: l1}
		g2 := g1
		g2.LengthCM = l2
		a1 := Analyze(g1).AmplitudeFrac
		a2 := Analyze(g2).AmplitudeFrac
		return a2 < a1 && a1 <= launchEfficiency
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Z0 = sqrt(L/C) and v = 1/sqrt(LC) are self-consistent.
func TestQuickRLCSelfConsistent(t *testing.T) {
	f := func(rawW, rawS uint8) bool {
		w := 1.0 + float64(rawW%40)/10
		s := 1.0 + float64(rawS%40)/10
		p := Extract(Geometry{WidthUM: w, SpacingUM: s, HeightUM: 1.75, ThicknessUM: 3.0, LengthCM: 1})
		z := math.Sqrt(p.LPerM / p.CPerM)
		v := 1 / math.Sqrt(p.LPerM*p.CPerM)
		return math.Abs(z-p.Z0) < 1e-9 && math.Abs(v-p.Velocity) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
