package l2

import (
	"testing"
	"testing/quick"

	"tlc/internal/mem"
	"tlc/internal/sim"
)

func TestStatsRecordLoad(t *testing.T) {
	s := NewStats()
	s.RecordLoad(13, true, true, 1)
	s.RecordLoad(25, false, false, 2)
	if s.Loads.Value() != 2 || s.Hits.Value() != 1 || s.Misses.Value() != 1 {
		t.Fatal("load accounting wrong")
	}
	if s.PredictableLookups.Value() != 1 {
		t.Fatal("predictable accounting wrong")
	}
	if s.BanksTouched.Value() != 3 {
		t.Fatal("bank accounting wrong")
	}
	if s.Lookup.Count() != 2 || s.Lookup.Mean() != 19 {
		t.Fatal("lookup histogram wrong")
	}
}

func TestStatsRecordStore(t *testing.T) {
	s := NewStats()
	s.RecordStore(true, 1)
	s.RecordStore(false, 8)
	if s.Stores.Value() != 2 {
		t.Fatal("store count wrong")
	}
	if s.Hits.Value() != 1 || s.Misses.Value() != 1 {
		t.Fatal("store hit/miss accounting wrong")
	}
	if s.BanksTouched.Value() != 9 {
		t.Fatal("store bank accounting wrong")
	}
	if s.Lookup.Count() != 0 {
		t.Fatal("stores must not enter the lookup-latency histogram")
	}
}

func TestDerivedMetrics(t *testing.T) {
	s := NewStats()
	for i := 0; i < 8; i++ {
		s.RecordLoad(13, true, true, 1)
	}
	s.RecordLoad(40, false, false, 1)
	s.RecordLoad(40, false, false, 1)
	s.RecordStore(true, 1)
	if got := s.Requests(); got != 11 {
		t.Fatalf("requests %d, want 11", got)
	}
	if got := s.MissesPer1K(1000); got != 2 {
		t.Fatalf("misses/1K %v, want 2", got)
	}
	if got := s.PredictablePct(); got != 80 {
		t.Fatalf("predictable %v%%, want 80", got)
	}
	if got := s.BanksPerRequest(); got != 1 {
		t.Fatalf("banks/request %v, want 1", got)
	}
}

func TestEmptyStats(t *testing.T) {
	s := NewStats()
	if s.MissesPer1K(0) != 0 || s.PredictablePct() != 0 || s.BanksPerRequest() != 0 {
		t.Fatal("empty stats should report zeros, not NaN")
	}
}

func TestLookupLatency(t *testing.T) {
	o := Outcome{ResolveAt: 113}
	if got := LookupLatency(100, o); got != 13 {
		t.Fatalf("lookup latency %d, want 13", got)
	}
}

func TestMemLatencyJitterProperties(t *testing.T) {
	// Jitter stays within +/-16 of the base and is deterministic.
	for b := mem.Block(0); b < 10000; b++ {
		l := MemLatency(300, b)
		if l < 284 || l > 316 {
			t.Fatalf("block %d latency %d outside 300+/-16", b, l)
		}
		if l != MemLatency(300, b) {
			t.Fatal("jitter not deterministic")
		}
	}
}

func TestMemLatencyJitterMeanAndSpread(t *testing.T) {
	var sum, n uint64
	distinct := map[sim.Time]bool{}
	for b := mem.Block(0); b < 100000; b++ {
		l := MemLatency(300, b)
		sum += uint64(l)
		n++
		distinct[l] = true
	}
	mean := float64(sum) / float64(n)
	if mean < 298 || mean > 302 {
		t.Fatalf("jitter mean %.1f drifted from 300", mean)
	}
	if len(distinct) < 16 {
		t.Fatalf("only %d distinct latencies: jitter not spreading", len(distinct))
	}
}

// Property: MemLatency is monotone in the base and never differs from it
// by more than 16.
func TestQuickMemLatency(t *testing.T) {
	f := func(raw uint32, base uint16) bool {
		bl := sim.Time(base) + 100
		l := MemLatency(bl, mem.Block(raw))
		d := int64(l) - int64(bl)
		return d >= -16 && d <= 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
