package l2

import (
	"tlc/internal/metrics"
	"tlc/internal/stats"
)

// Stats is the access bookkeeping common to every L2 design. Designs embed
// it and add their design-specific counters (DNUCA promotions, TLC link
// business).
type Stats struct {
	// Loads and Stores count requests by type.
	Loads, Stores stats.Counter
	// Hits and Misses count load outcomes.
	Hits, Misses stats.Counter
	// PredictableLookups counts loads resolving at their nominal latency.
	PredictableLookups stats.Counter
	// BanksTouched accumulates banks accessed across all requests.
	BanksTouched stats.Counter
	// Lookup is the load resolution-latency distribution (Figure 6).
	Lookup *stats.Histogram
}

// NewStats returns zeroed stats with a lookup histogram sized for the
// latencies any design here can produce (search chains included).
func NewStats() Stats {
	return Stats{Lookup: stats.NewHistogram(512)}
}

// Register publishes the common L2 counters into the registry under the
// "l2." prefix. Designs call this from their own metric registration and
// add their design-specific names alongside.
func (s *Stats) Register(r *metrics.Registry) {
	r.Counter("l2.loads", &s.Loads)
	r.Counter("l2.stores", &s.Stores)
	r.Counter("l2.hits", &s.Hits)
	r.Counter("l2.misses", &s.Misses)
	r.Counter("l2.predictable_lookups", &s.PredictableLookups)
	r.Counter("l2.banks_touched", &s.BanksTouched)
	r.Histogram("l2.lookup", s.Lookup)
}

// Requests reports total requests.
func (s *Stats) Requests() uint64 { return s.Loads.Value() + s.Stores.Value() }

// MissesPer1K reports load misses per thousand of the given instruction
// count (Table 6, columns 3-4).
func (s *Stats) MissesPer1K(instructions uint64) float64 {
	return stats.PerKilo(s.Misses.Value(), instructions)
}

// PredictablePct reports the predictable-lookup percentage over loads
// (Table 6, columns 7-8).
func (s *Stats) PredictablePct() float64 {
	return 100 * stats.Ratio(s.PredictableLookups.Value(), s.Loads.Value())
}

// BanksPerRequest reports mean banks accessed per request (Table 9).
func (s *Stats) BanksPerRequest() float64 {
	return stats.Ratio(s.BanksTouched.Value(), s.Requests())
}

// RecordLoad folds one load outcome into the stats.
func (s *Stats) RecordLoad(latency uint64, hit, predictable bool, banks int) {
	s.Loads.Inc()
	if hit {
		s.Hits.Inc()
	} else {
		s.Misses.Inc()
	}
	if predictable {
		s.PredictableLookups.Inc()
	}
	s.BanksTouched.Add(uint64(banks))
	s.Lookup.Observe(latency)
}

// RecordStore folds one store into the stats. A store that allocates an
// absent block counts as a miss: the paper's exclusive write-back designs
// never check tags on stores, but the allocation still represents a block
// the cache did not hold.
func (s *Stats) RecordStore(hit bool, banks int) {
	s.Stores.Inc()
	if hit {
		s.Hits.Inc()
	} else {
		s.Misses.Inc()
	}
	s.BanksTouched.Add(uint64(banks))
}
