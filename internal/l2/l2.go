// Package l2 defines the contract between the processor model and the
// level-2 cache designs. Every design (SNUCA2, DNUCA, the TLC family)
// implements Cache; the CPU model and the benchmark harness only see this
// interface.
//
// Timing convention: designs compute access timing arithmetically against
// monotone resource reservations (banks, links) rather than by scheduling
// engine events, so an Access call returns the full outcome immediately.
// Functional state changes (fills, migrations) are applied at call time
// even though their timing lands later; at the simulated request rates this
// skew is far smaller than the reuse distances that determine hit rates.
// Callers must present requests in non-decreasing time order.
package l2

import (
	"tlc/internal/mem"
	"tlc/internal/metrics"
	"tlc/internal/probe"
	"tlc/internal/sim"
)

// Outcome describes one L2 access.
type Outcome struct {
	// Hit reports whether the block was resident.
	Hit bool
	// ResolveAt is when the controller has resolved the access: data at
	// the controller for hits, the miss determination for misses.
	ResolveAt sim.Time
	// CompleteAt is when data is available to the processor: ResolveAt
	// for hits, ResolveAt plus the memory latency for misses. Stores
	// complete immediately (fire-and-forget past the store buffer).
	CompleteAt sim.Time
	// Predictable reports whether the lookup resolved in its statically
	// predicted latency (Table 6, columns 7-8): the per-bank nominal
	// latency for the static designs, the close-hit or fast-miss nominal
	// for DNUCA. Contention, searches, far hits, and multi-match
	// resolution all clear it.
	Predictable bool
	// BanksAccessed counts data banks touched (Table 9).
	BanksAccessed int
}

// Cache is one L2 design under test.
type Cache interface {
	// Access performs one request arriving at the controller at cycle
	// `at`. Calls must be in non-decreasing `at` order.
	Access(at sim.Time, req mem.Request) Outcome
	// Warm installs a block functionally (no timing), for cache warm-up
	// before the measured interval.
	Warm(b mem.Block)
	// Contains reports functional residency, for tests and warm-up logic.
	Contains(b mem.Block) bool
}

// Warmer is the bulk counterpart of Cache.Warm, the fused warm kernel of
// the batched delivery protocol: WarmBulk functionally installs every block
// of the slice, in slice order, with no timing — one interface dispatch and
// one pass of hoisted address arithmetic per batch instead of per block.
// Implementations must leave the cache in exactly the state len(blocks)
// successive Warm calls would (the batched/scalar equivalence gate pins
// this per design). The slice remains owned by the caller and may be reused
// immediately after the call returns.
type Warmer interface {
	WarmBulk(blocks []mem.Block)
}

// WarmAll is the lane-bulk warm entry point: it functionally installs
// blocks in slice order through the design's bulk path when it implements
// Warmer, else through per-block Warm calls. It is the one call the
// lane-parallel warm loop makes per lane per batch, so a design's bulk
// kernel is reached with a single dispatch however the lanes are mixed.
// Empty batches (a batch where a lane spilled nothing) cost nothing.
func WarmAll(c Cache, blocks []mem.Block) {
	if len(blocks) == 0 {
		return
	}
	if w, ok := c.(Warmer); ok {
		w.WarmBulk(blocks)
		return
	}
	for _, b := range blocks {
		c.Warm(b)
	}
}

// FastTimer is an optional Cache capability used by the fast core tier:
// AccessFast performs the same functional state transition as Access —
// lookups, LRU movement, fills, evictions, statistics — but charges the
// design's uncontended nominal latency instead of simulating link and bank
// contention, so a fast-tier run preserves the full tier's hit/miss
// trajectory at a fraction of the per-access cost. Contention and
// rare-event timing (multi-match resolution, ECC retries) fold into the
// fast tier's calibrated per-benchmark bias (internal/calibrate). Designs
// without the capability are still valid under the fast tier; the core
// falls back to Access.
type FastTimer interface {
	AccessFast(at sim.Time, req mem.Request) Outcome
}

// Instrumented is a Cache wired into the instrumentation spine: it exposes
// the common access stats and the full metrics registry every layer
// published into at construction. The harness reports exclusively through
// this interface — table and figure values are registry reads, never
// design-specific plumbing.
type Instrumented interface {
	Cache
	// L2Stats exposes the common access bookkeeping.
	L2Stats() *Stats
	// Metrics exposes the run's metric registry.
	Metrics() *metrics.Registry
	// SetProbe installs (or clears, with nil) event hooks. Designs emit
	// per-access and per-message events only while hooks are set.
	SetProbe(*probe.Hooks)
}

// State is an opaque, design-specific snapshot of a cache's functional
// contents. Each design defines its own concrete state type; the snapshot
// layer (internal/snapshot) stores and transports them without inspecting
// the contents. Concrete types are exported structs of exported fields so
// the on-disk store can gob-encode them.
type State interface{}

// Snapshotter is implemented by designs whose functional contents can be
// captured and restored — the L2 half of a warm-state checkpoint. The
// contract mirrors Warm: only functional state (arrays, shadow tags) is
// captured; timing resources and statistics are per-run and start clean.
type Snapshotter interface {
	// SnapshotState deep-copies the cache's functional contents. Mutating
	// the cache afterwards must not change the returned state.
	SnapshotState() State
	// RestoreState overwrites the cache's functional contents with a state
	// previously captured from an identically configured cache. It returns
	// an error on a type or geometry mismatch.
	RestoreState(State) error
}

// LookupLatency reports the lookup portion of an outcome relative to its
// issue time.
func LookupLatency(at sim.Time, o Outcome) uint64 {
	return uint64(o.ResolveAt - at)
}

// Memory abstracts the main memory behind the L2: Fetch returns when a
// missed block's data is back at the cache controller. The default is
// FlatMemory (the paper's Table 3 fixed latency); internal/dram provides a
// banked model with row buffers and channel contention.
type Memory interface {
	Fetch(at sim.Time, b mem.Block) sim.Time
}

// FlatMemory is the Table 3 memory: a fixed mean latency with the
// deterministic per-block skew of MemLatency.
type FlatMemory struct {
	Latency sim.Time
}

// Fetch implements Memory.
func (f FlatMemory) Fetch(at sim.Time, b mem.Block) sim.Time {
	return at + MemLatency(f.Latency, b)
}

// MemLatency reports the memory access latency for a block: the Table 3
// mean of 300 cycles plus a deterministic per-block skew of up to +/-16
// cycles standing in for DRAM bank and channel scheduling variation.
// Without it, the fixed-latency memory returns the 8 outstanding misses in
// lockstep, and their fill and writeback traffic collides with the next
// burst in a way no real memory system exhibits.
func MemLatency(base sim.Time, b mem.Block) sim.Time {
	h := uint64(b) * 0x9e3779b97f4a7c15
	return base + sim.Time(h>>59) - 16 // +/-16 around the mean
}
