package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter %d, want 5", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatalf("counter %d after reset, want 0", c.Value())
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(3, 4); got != 0.75 {
		t.Fatalf("Ratio(3,4)=%v, want 0.75", got)
	}
	if got := Ratio(3, 0); got != 0 {
		t.Fatalf("Ratio(3,0)=%v, want 0", got)
	}
}

func TestPerKilo(t *testing.T) {
	if got := PerKilo(5, 1000); got != 5 {
		t.Fatalf("PerKilo(5,1000)=%v, want 5", got)
	}
	if got := PerKilo(1, 2000); got != 0.5 {
		t.Fatalf("PerKilo(1,2000)=%v, want 0.5", got)
	}
	if got := PerKilo(1, 0); got != 0 {
		t.Fatalf("PerKilo(1,0)=%v, want 0", got)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(64)
	for _, v := range []uint64{10, 10, 10, 13, 16, 16} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count %d, want 6", h.Count())
	}
	if h.Sum() != 75 {
		t.Fatalf("sum %d, want 75", h.Sum())
	}
	if got := h.Mean(); math.Abs(got-12.5) > 1e-12 {
		t.Fatalf("mean %v, want 12.5", got)
	}
	if h.Min() != 10 || h.Max() != 16 {
		t.Fatalf("min/max %d/%d, want 10/16", h.Min(), h.Max())
	}
	if h.Mode() != 10 {
		t.Fatalf("mode %d, want 10", h.Mode())
	}
	if h.CountOf(16) != 2 {
		t.Fatalf("CountOf(16)=%d, want 2", h.CountOf(16))
	}
	if h.CountAtMost(13) != 4 {
		t.Fatalf("CountAtMost(13)=%d, want 4", h.CountAtMost(13))
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(8)
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mode() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	if h.Percentile(0.5) != 0 {
		t.Fatal("empty histogram percentile should be 0")
	}
}

func TestHistogramOverflowKeepsExactMean(t *testing.T) {
	h := NewHistogram(10)
	h.Observe(5)
	h.Observe(1000) // far past the cap
	if got := h.Mean(); got != 502.5 {
		t.Fatalf("mean with overflow %v, want 502.5", got)
	}
	if h.Max() != 1000 {
		t.Fatalf("max %d, want 1000", h.Max())
	}
	if h.CountOf(1000) != 0 {
		t.Fatal("overflow values must not appear in exact buckets")
	}
}

func TestHistogramPercentile(t *testing.T) {
	h := NewHistogram(100)
	for v := uint64(1); v <= 100; v++ {
		h.Observe(v % 100) // values 0..99, one of each plus an extra 0
	}
	if got := h.Percentile(0.5); got != 49 {
		t.Fatalf("p50 %d, want 49", got)
	}
	if got := h.Percentile(1.0); got != 99 {
		t.Fatalf("p100 %d, want 99", got)
	}
	if got := h.Percentile(0.0); got != 0 {
		t.Fatalf("p0 %d, want 0", got)
	}
}

func TestHistogramModeTieBreaksLow(t *testing.T) {
	h := NewHistogram(16)
	h.Observe(3)
	h.Observe(7)
	if h.Mode() != 3 {
		t.Fatalf("tied mode %d, want the smaller value 3", h.Mode())
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram(16)
	h.Observe(3)
	h.Observe(300)
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 {
		t.Fatal("Reset did not clear histogram")
	}
	h.Observe(2)
	if h.Mean() != 2 {
		t.Fatalf("mean after reset+observe %v, want 2", h.Mean())
	}
}

func TestHistogramStdDev(t *testing.T) {
	h := NewHistogram(32)
	for _, v := range []uint64{2, 4, 4, 4, 5, 5, 7, 9} {
		h.Observe(v)
	}
	if got := h.StdDev(); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("stddev %v, want 2.0", got)
	}
	single := NewHistogram(8)
	single.Observe(3)
	if single.StdDev() != 0 {
		t.Fatal("single-sample stddev should be 0")
	}
}

// Property: for any sample set, mean is sum/count exactly, min <= mode <= max
// for in-range data, and CountAtMost is monotone.
func TestQuickHistogramInvariants(t *testing.T) {
	f := func(raw []uint8) bool {
		h := NewHistogram(256)
		var sum uint64
		for _, v := range raw {
			h.Observe(uint64(v))
			sum += uint64(v)
		}
		if h.Sum() != sum || h.Count() != uint64(len(raw)) {
			return false
		}
		if len(raw) > 0 {
			if h.Mode() < h.Min() || h.Mode() > h.Max() {
				return false
			}
			if h.CountAtMost(h.Max()) != h.Count() {
				return false
			}
		}
		var prev uint64
		for v := uint64(0); v < 256; v += 17 {
			c := h.CountAtMost(v)
			if c < prev {
				return false
			}
			prev = c
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "test"
	s.Append("a", 1.0)
	s.Append("b", 4.0)
	if got := s.Mean(); got != 2.5 {
		t.Fatalf("series mean %v, want 2.5", got)
	}
	if got := s.Max(); got != 4.0 {
		t.Fatalf("series max %v, want 4", got)
	}
	if got := s.GeoMean(); got != 2.0 {
		t.Fatalf("series geomean %v, want 2", got)
	}
	if s.String() != "test: a=1.000 b=4.000" {
		t.Fatalf("series string %q", s.String())
	}
}

func TestSeriesDegenerate(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Max() != 0 || s.GeoMean() != 0 {
		t.Fatal("empty series should report zeros")
	}
	s.Append("neg", -1)
	if s.GeoMean() != 0 {
		t.Fatal("geomean with non-positive value should be 0")
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]float64{"zeus": 1, "apache": 2, "mcf": 3}
	keys := SortedKeys(m)
	want := []string{"apache", "mcf", "zeus"}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys %v, want %v", keys, want)
		}
	}
}

func TestPercentileClampsP(t *testing.T) {
	// All samples in bucket 0 with a large cap: an unclamped p > 1 used to
	// walk past the distribution and report cap-1.
	allZero := NewHistogram(100)
	for i := 0; i < 10; i++ {
		allZero.Observe(0)
	}
	spread := NewHistogram(100)
	for v := uint64(1); v <= 10; v++ {
		spread.Observe(v)
	}
	withOverflow := NewHistogram(10)
	withOverflow.Observe(2)
	withOverflow.Observe(50) // overflow

	cases := []struct {
		name string
		h    *Histogram
		p    float64
		want uint64
	}{
		{"p>1 all-zero clamps to max", allZero, 2.0, 0},
		{"p=1 all-zero", allZero, 1.0, 0},
		{"p<0 clamps to min", spread, -0.5, 1},
		{"NaN treated as min", spread, math.NaN(), 1},
		{"p>1 equals p=1", spread, 1.5, 10},
		{"median unaffected", spread, 0.5, 5},
		{"p=0 reports min", spread, 0, 1},
		{"p>1 with overflow reports observed max", withOverflow, 7.0, 50},
	}
	for _, c := range cases {
		if got := c.h.Percentile(c.p); got != c.want {
			t.Errorf("%s: Percentile(%v) = %d, want %d", c.name, c.p, got, c.want)
		}
	}
}

func TestCountAtMostIncludesOverflow(t *testing.T) {
	// Samples 2, 50, 80 with cap 10: 50 and 80 land in the overflow bucket.
	// CountAtMost used to drop them entirely, so CountAtMost(Max()) < Count().
	h := NewHistogram(10)
	h.Observe(2)
	h.Observe(50)
	h.Observe(80)

	cases := []struct {
		v    uint64
		want uint64
	}{
		{1, 0},   // below the only in-range sample
		{2, 1},   // exact in-range count
		{9, 1},   // top in-range bucket: overflow values unknown, excluded
		{50, 1},  // cap <= v < max: still a lower bound, overflow excluded
		{79, 1},  // one below max
		{80, 3},  // at the observed max every sample qualifies
		{100, 3}, // beyond max
	}
	for _, c := range cases {
		if got := h.CountAtMost(c.v); got != c.want {
			t.Errorf("CountAtMost(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	if h.CountAtMost(h.Max()) != h.Count() {
		t.Error("CountAtMost(Max()) must equal Count() even with overflow")
	}
}

func TestCountAtMostAllOverflow(t *testing.T) {
	h := NewHistogram(4)
	h.Observe(100)
	h.Observe(200)
	if got := h.CountAtMost(99); got != 0 {
		t.Errorf("CountAtMost(99) = %d, want 0", got)
	}
	if got := h.CountAtMost(200); got != 2 {
		t.Errorf("CountAtMost(200) = %d, want 2", got)
	}
}

func TestPercentileReachesOverflow(t *testing.T) {
	// Samples 2 and 50 with cap 10: the median is the in-range 2, but any
	// percentile past it lands among overflow samples and must report the
	// observed max (50), not the cap-1 value (9) the old code returned.
	h := NewHistogram(10)
	h.Observe(2)
	h.Observe(50)
	if got := h.Percentile(0.5); got != 2 {
		t.Errorf("p50 = %d, want 2", got)
	}
	if got := h.Percentile(1.0); got != 50 {
		t.Errorf("p100 = %d, want 50 (the overflowed sample)", got)
	}

	// All samples overflowed: every percentile is in overflow territory.
	h2 := NewHistogram(4)
	h2.Observe(70)
	h2.Observe(90)
	for _, p := range []float64{0.01, 0.5, 1.0} {
		if got := h2.Percentile(p); got != 90 {
			t.Errorf("all-overflow Percentile(%v) = %d, want 90", p, got)
		}
	}
}

func TestStdDevUsesOverflowMean(t *testing.T) {
	// Two samples: 0 and 1000, cap 10. The exact stddev is 500. Folding
	// the overflow sample in at the cap value (10) used to report ~5.
	h := NewHistogram(10)
	h.Observe(0)
	h.Observe(1000)
	if got, want := h.StdDev(), 500.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("StdDev = %v, want %v (overflow folded at its exact mean)", got, want)
	}

	// Several overflow samples fold in at their mean, not individually:
	// samples 0, 90, 110 with cap 10 -> overflow mean 100, exact stddev of
	// {0,100,100} model.
	h2 := NewHistogram(10)
	h2.Observe(0)
	h2.Observe(90)
	h2.Observe(110)
	mean := h2.Mean() // 200/3
	want := math.Sqrt((mean*mean + 2*(100-mean)*(100-mean)) / 3)
	if got := h2.StdDev(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("StdDev = %v, want %v", got, want)
	}

	// In-range-only histograms are unaffected.
	h3 := NewHistogram(100)
	h3.Observe(4)
	h3.Observe(6)
	if got := h3.StdDev(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("in-range StdDev = %v, want 1", got)
	}
}

func TestWeightedMatchesSampleOnUniformWeights(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 10}
	var s Sample
	var w Weighted
	for _, x := range xs {
		s.Observe(x)
		w.Observe(x, 7) // any constant weight
	}
	if w.N() != uint64(len(xs)) || w.SumWeights() != 7*float64(len(xs)) {
		t.Fatalf("n=%d sumw=%v", w.N(), w.SumWeights())
	}
	if math.Abs(w.Mean()-s.Mean()) > 1e-12 {
		t.Errorf("weighted mean %v, unweighted %v", w.Mean(), s.Mean())
	}
	if math.Abs(w.StdDev()-s.StdDev()) > 1e-12 {
		t.Errorf("weighted stddev %v, unweighted %v", w.StdDev(), s.StdDev())
	}
	if math.Abs(w.CI95()-s.CI95()) > 1e-12 {
		t.Errorf("weighted CI %v, unweighted %v", w.CI95(), s.CI95())
	}
	if math.Abs(w.EffectiveN()-float64(len(xs))) > 1e-12 {
		t.Errorf("effective n %v for uniform weights, want %d", w.EffectiveN(), len(xs))
	}
}

func TestWeightedSkewedWeights(t *testing.T) {
	var w Weighted
	w.Observe(1, 90)
	w.Observe(11, 10)
	if got, want := w.Mean(), 2.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("mean %v, want %v", got, want)
	}
	// Kish: (100)²/(8100+100) = 1.2195...: far below the raw n of 2.
	if got := w.EffectiveN(); math.Abs(got-10000.0/8200.0) > 1e-12 {
		t.Errorf("effective n %v", got)
	}
}

func TestWeightedDegenerate(t *testing.T) {
	var w Weighted
	if w.Mean() != 0 || w.StdDev() != 0 || w.CI95() != 0 || w.EffectiveN() != 0 {
		t.Error("empty Weighted reports non-zero statistics")
	}
	w.Observe(5, 0)  // ignored
	w.Observe(5, -1) // ignored
	if w.N() != 0 {
		t.Error("non-positive weights observed")
	}
	w.Observe(5, 3)
	if w.Mean() != 5 || w.StdDev() != 0 || w.CI95() != 0 {
		t.Error("single observation: want mean only, zero spread")
	}
}
