// Package stats collects the run-time statistics every experiment in the
// paper reports: counters (misses, promotions, insertions), latency
// histograms (mean lookup latency, Figure 6; predictable-lookup fraction,
// Table 6), and utilization series (Figure 7).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	n uint64
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.n += d }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value reports the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// Ratio returns a/b as a float, or 0 when b is zero.
func Ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// PerKilo returns events per thousand units, the paper's misses-per-1K-
// instructions metric (Table 6).
func PerKilo(events, units uint64) float64 {
	if units == 0 {
		return 0
	}
	return 1000 * float64(events) / float64(units)
}

// Histogram is an exact integer-valued histogram. Cache lookup latencies
// span a small range (a few to a few hundred cycles), so dense bucketing up
// to a cap with an overflow bucket is both exact and cheap.
type Histogram struct {
	buckets  []uint64 // buckets[v] = count of samples with value v, v < cap
	overflow uint64   // samples >= len(buckets)
	ovSum    uint64   // sum of overflow sample values
	count    uint64
	sum      uint64
	min, max uint64
}

// NewHistogram returns a histogram with exact buckets for values below cap.
// Values at or above cap are tracked in aggregate (count and sum) so the
// mean stays exact even with outliers.
func NewHistogram(cap int) *Histogram {
	if cap <= 0 {
		cap = 1
	}
	return &Histogram{buckets: make([]uint64, cap), min: math.MaxUint64}
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	if v < uint64(len(h.buckets)) {
		h.buckets[v]++
	} else {
		h.overflow++
		h.ovSum += v
	}
}

// Count reports the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Sum reports the exact sum of all samples.
func (h *Histogram) Sum() uint64 { return h.sum }

// Mean reports the exact sample mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min reports the smallest sample, or 0 with no samples.
func (h *Histogram) Min() uint64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max reports the largest sample, or 0 with no samples.
func (h *Histogram) Max() uint64 { return h.max }

// Mode reports the most frequent in-range value. Ties resolve to the
// smallest value; overflow samples never win. With no samples Mode is 0.
func (h *Histogram) Mode() uint64 {
	var best uint64
	var bestCount uint64
	for v, c := range h.buckets {
		if c > bestCount {
			bestCount = c
			best = uint64(v)
		}
	}
	return best
}

// CountOf reports how many samples had exactly value v (v below the cap).
func (h *Histogram) CountOf(v uint64) uint64 {
	if v < uint64(len(h.buckets)) {
		return h.buckets[v]
	}
	return 0
}

// CountAtMost reports how many samples were <= v. Overflow samples (values
// at or above the bucket cap) are tracked only in aggregate, so they are
// counted once v reaches the observed maximum — every sample is <= Max by
// definition. For cap <= v < Max the overflow samples' individual values
// are unknown and none are counted, making the result an exact lower bound
// that is monotone in v and exact at both extremes:
// CountAtMost(Max()) == Count().
func (h *Histogram) CountAtMost(v uint64) uint64 {
	var n uint64
	limit := v
	if limit >= uint64(len(h.buckets)) {
		limit = uint64(len(h.buckets)) - 1
	}
	for i := uint64(0); i <= limit; i++ {
		n += h.buckets[i]
	}
	if v >= h.max {
		n += h.overflow
	}
	return n
}

// Percentile reports the smallest value v such that at least p (0..1) of
// the samples are <= v. p is clamped to [0,1] (and NaN treated as 0), so an
// out-of-range p degrades to the min or max percentile. Overflow samples
// count as larger than every bucket; when the percentile lands among them
// their individual values are unknown and the observed maximum — the
// tightest correct upper bound — is reported.
func (h *Histogram) Percentile(p float64) uint64 {
	if h.count == 0 {
		return 0
	}
	if !(p > 0) { // also catches NaN
		p = 0
	} else if p > 1 {
		p = 1
	}
	target := uint64(math.Ceil(p * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for v, c := range h.buckets {
		cum += c
		if cum >= target {
			return uint64(v)
		}
	}
	return h.max
}

// StdDev reports the sample standard deviation. Overflow samples fold in
// at their exact mean (ovSum/overflow) rather than the cap value, so a few
// far outliers no longer bias the spread low; only their within-overflow
// variance is approximated away.
func (h *Histogram) StdDev() float64 {
	if h.count < 2 {
		return 0
	}
	mean := h.Mean()
	var ss float64
	for v, c := range h.buckets {
		d := float64(v) - mean
		ss += d * d * float64(c)
	}
	if h.overflow > 0 {
		d := float64(h.ovSum)/float64(h.overflow) - mean
		ss += d * d * float64(h.overflow)
	}
	return math.Sqrt(ss / float64(h.count))
}

// Reset clears all samples.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.overflow = 0
	h.ovSum = 0
	h.count = 0
	h.sum = 0
	h.min = math.MaxUint64
	h.max = 0
}

// Series is an ordered set of (label, value) pairs: one figure data series.
type Series struct {
	Name   string
	Labels []string
	Values []float64
}

// Append adds one point to the series.
func (s *Series) Append(label string, v float64) {
	s.Labels = append(s.Labels, label)
	s.Values = append(s.Values, v)
}

// Mean reports the arithmetic mean of the series values (0 when empty).
func (s *Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// Max reports the largest value in the series (0 when empty).
func (s *Series) Max() float64 {
	var m float64
	for i, v := range s.Values {
		if i == 0 || v > m {
			m = v
		}
	}
	return m
}

// GeoMean reports the geometric mean of the series values, the conventional
// aggregate for normalized execution times. Non-positive values make the
// geometric mean undefined; they yield 0.
func (s *Series) GeoMean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	var logSum float64
	for _, v := range s.Values {
		if v <= 0 {
			return 0
		}
		logSum += math.Log(v)
	}
	return math.Exp(logSum / float64(len(s.Values)))
}

// String renders the series compactly for logs and tests.
func (s *Series) String() string {
	out := s.Name + ":"
	for i := range s.Values {
		out += fmt.Sprintf(" %s=%.3f", s.Labels[i], s.Values[i])
	}
	return out
}

// Sample accumulates scalar observations and reports their mean with a 95%
// confidence interval — the aggregation sampled simulation applies to
// per-interval CPI, lookup latency, and miss rate. Welford's algorithm
// keeps the variance numerically stable without storing observations.
type Sample struct {
	n    uint64
	mean float64
	m2   float64 // sum of squared deviations from the running mean
}

// Observe records one observation.
func (s *Sample) Observe(x float64) {
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N reports the number of observations.
func (s *Sample) N() uint64 { return s.n }

// Mean reports the sample mean (0 when empty).
func (s *Sample) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.mean
}

// StdDev reports the sample standard deviation (Bessel-corrected; 0 with
// fewer than two observations).
func (s *Sample) StdDev() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n-1))
}

// CI95 reports the half-width of the normal-approximation 95% confidence
// interval on the mean: 1.96·s/√n. With fewer than two observations the
// spread is unknowable and CI95 is 0; callers wanting an honest interval
// should use several intervals (the sampling literature suggests ≥8).
func (s *Sample) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return 1.96 * s.StdDev() / math.Sqrt(float64(s.n))
}

// Weighted accumulates weighted scalar observations and reports their
// weighted mean with a 95% confidence interval — the aggregation phase-aware
// sampling applies to per-cluster CPI and counter rates, where each
// representative interval stands in for a cluster of windows and its weight
// is the cluster's instruction count. West's incremental algorithm keeps the
// variance numerically stable without storing observations. The struct holds
// only scalar fields so values containing it stay comparable with ==.
type Weighted struct {
	sumw  float64 // Σw
	sumw2 float64 // Σw²
	mean  float64
	m2    float64 // weighted sum of squared deviations from the running mean
	n     uint64
}

// Observe records one observation x with weight w; non-positive weights are
// ignored.
func (s *Weighted) Observe(x, w float64) {
	if w <= 0 {
		return
	}
	s.n++
	s.sumw += w
	s.sumw2 += w * w
	d := x - s.mean
	s.mean += (w / s.sumw) * d
	s.m2 += w * d * (x - s.mean)
}

// N reports the number of observations (not the total weight).
func (s *Weighted) N() uint64 { return s.n }

// SumWeights reports the total weight observed.
func (s *Weighted) SumWeights() float64 { return s.sumw }

// Mean reports the weighted mean (0 when empty).
func (s *Weighted) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.mean
}

// EffectiveN is Kish's effective sample size (Σw)²/Σw²: the number of
// equal-weight observations carrying the same information. It equals N for
// uniform weights and shrinks as the weights skew.
func (s *Weighted) EffectiveN() float64 {
	if s.sumw2 == 0 {
		return 0
	}
	return s.sumw * s.sumw / s.sumw2
}

// StdDev reports the weighted sample standard deviation with the
// reliability-weights Bessel correction (0 with fewer than two
// observations).
func (s *Weighted) StdDev() float64 {
	if s.n < 2 {
		return 0
	}
	denom := s.sumw - s.sumw2/s.sumw
	if denom <= 0 {
		return 0
	}
	return math.Sqrt(s.m2 / denom)
}

// CI95 reports the half-width of the normal-approximation 95% confidence
// interval on the weighted mean: 1.96·s/√n_eff. With fewer than two
// observations the spread is unknowable and CI95 is 0.
func (s *Weighted) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	neff := s.EffectiveN()
	if neff <= 0 {
		return 0
	}
	return 1.96 * s.StdDev() / math.Sqrt(neff)
}

// SortedKeys returns the keys of m in sorted order; a helper for rendering
// deterministic tables from map-shaped results.
func SortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
