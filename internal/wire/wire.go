// Package wire models conventional on-chip RC interconnect at the paper's
// 45 nm / 10 GHz design point: distributed-RC delay, optimal repeater
// insertion, repeater area and transistor demand, and dynamic switching
// power (alpha * C * V^2 * f). It supplies the conventional-wire side of
// every TLC-vs-DNUCA comparison: DNUCA mesh link latency, Table 7 channel
// area, Table 8 repeater transistor counts, and Table 9 dynamic power.
package wire

import (
	"fmt"
	"math"
)

// Technology constants for the 45 nm generation, following the paper's
// sources: ITRS 2002 [14] for wire geometry, Agarwal et al. [1] and
// BACPAC [34] for device parasitics. Lengths in mm, capacitance in F,
// resistance in ohms, time in seconds unless noted.
const (
	// Vdd is the 45 nm supply voltage.
	Vdd = 1.0 // volts
	// ClockHz is the aggressive 10 GHz core frequency [18].
	ClockHz = 10e9
	// CyclePs is the clock period in picoseconds.
	CyclePs = 100.0
	// LambdaNM is the layout half-pitch unit used for transistor gate
	// widths in Table 8 (lambda = half the drawn feature size).
	LambdaNM = 22.5
)

// Params describes one conventional wiring layer.
type Params struct {
	// WidthUM and SpacingUM are the drawn wire width and spacing.
	WidthUM, SpacingUM float64
	// ThicknessUM is the metal thickness.
	ThicknessUM float64
	// RPerMM is wire resistance per mm (ohms), including barrier/liner
	// derating of the copper cross-section.
	RPerMM float64
	// CPerMM is total wire capacitance per mm (farads), including
	// coupling to same-layer neighbours at minimum spacing.
	CPerMM float64
}

// Resistivity of barrier-derated copper, ohm-meters.
const rhoCu = 3.0e-8

// NewParams derives per-mm R and C from wire geometry. Capacitance uses a
// parallel-plate ground component plus sidewall coupling, the standard
// first-order global-wire model.
func NewParams(widthUM, spacingUM, thicknessUM float64) Params {
	area := widthUM * 1e-6 * thicknessUM * 1e-6 // m^2
	rPerMM := rhoCu / area * 1e-3               // ohms per mm
	// Plate component to layers above/below plus sidewall coupling to both
	// neighbours plus a fixed fringing term — the standard first-order
	// global-wire capacitance model, in F/m then scaled to F/mm.
	eps := 8.854e-12 * 3.3 // SiO2-class interlayer dielectric
	ild := 0.35e-6         // interlayer dielectric height, m
	plate := 2 * eps * (widthUM * 1e-6) / ild
	side := 2 * eps * (thicknessUM * 1e-6) / (spacingUM * 1e-6)
	const fringe = 0.04e-9 // F/m
	cPerMM := (plate + side + fringe) * 1e-3
	return Params{
		WidthUM: widthUM, SpacingUM: spacingUM, ThicknessUM: thicknessUM,
		RPerMM: rPerMM, CPerMM: cPerMM,
	}
}

// Global45 returns the dense global-wiring layer the DNUCA channels use
// (Figure 3's conventional cross-section: sub-quarter-micron wires).
func Global45() Params { return NewParams(0.20, 0.20, 0.35) }

// Device parasitics for repeater sizing (45 nm, BACPAC-style).
const (
	// invR0 is the output resistance of a minimum inverter, ohms.
	invR0 = 9000.0
	// invC0 is the input capacitance of a minimum inverter, farads.
	invC0 = 0.33e-15
	// invMinWidthLambda is the summed gate width (N+P) of a minimum
	// inverter in lambda.
	invMinWidthLambda = 12.0
	// repeaterDerate folds in the non-idealities the paper's sources
	// charge real repeated wiring with — via resistance up to the
	// repeater, repeater placement constrained by floorplan, and the
	// setup/clk-to-q overhead of the pipeline latches inserted every
	// cycle. Calibrated so a 2 cm repeated global wire costs ~25+ cycles
	// at 10 GHz, the intro's headline number [14,18].
	repeaterDerate = 4.0
)

// RepeatedWire describes an optimally repeated wire of a given length.
type RepeatedWire struct {
	Params   Params
	LengthMM float64
	// Segments is the number of repeater-bounded segments.
	Segments int
	// RepeaterSize is the repeater size in multiples of a minimum inverter.
	RepeaterSize float64
	// DelayPs is the end-to-end delay including derating.
	DelayPs float64
}

// Repeat computes optimal Bakoglu repeater insertion for a wire of the
// given length.
func Repeat(p Params, lengthMM float64) RepeatedWire {
	if lengthMM <= 0 {
		panic(fmt.Sprintf("wire: non-positive length %v", lengthMM))
	}
	r := p.RPerMM
	c := p.CPerMM
	// Optimal segment length and repeater size (Bakoglu).
	lOpt := math.Sqrt(2 * invR0 * invC0 / (r * c)) // mm
	hOpt := math.Sqrt(invR0 * c / (r * invC0))
	segs := int(math.Max(1, math.Ceil(lengthMM/lOpt)))
	// Per-mm delay of an optimally repeated line: ~2.13*sqrt(R0 C0 r c).
	perMM := 2.13 * math.Sqrt(invR0*invC0*r*c) * 1e12 // ps per mm
	return RepeatedWire{
		Params:       p,
		LengthMM:     lengthMM,
		Segments:     segs,
		RepeaterSize: hOpt,
		DelayPs:      perMM * lengthMM * repeaterDerate,
	}
}

// DelayCycles reports the repeated-wire delay in (fractional) 10 GHz cycles.
func (w RepeatedWire) DelayCycles() float64 { return w.DelayPs / CyclePs }

// UnrepeatedDelayPs reports the distributed-RC delay of a bare wire:
// 0.38 * R * C * L^2, the quadratic growth that motivates repeaters
// (Section 2).
func UnrepeatedDelayPs(p Params, lengthMM float64) float64 {
	return 0.38 * (p.RPerMM * lengthMM) * (p.CPerMM * lengthMM) * 1e12
}

// EnergyPerTransitionJ reports the energy to switch the full wire once:
// C_total * Vdd^2. Callers apply the activity factor alpha and repeater
// input loading.
func EnergyPerTransitionJ(p Params, lengthMM float64) float64 {
	return p.CPerMM * lengthMM * Vdd * Vdd
}

// RepeaterTransistors reports the transistor count and total gate width (in
// lambda) of the repeaters on one repeated wire — the Table 8 inputs.
func (w RepeatedWire) RepeaterTransistors() (count int, gateWidthLambda float64) {
	// One inverter (2 transistors) per segment boundary.
	n := w.Segments
	return 2 * n, float64(n) * w.RepeaterSize * invMinWidthLambda
}

// RepeaterAreaMM2 estimates the substrate area consumed by the repeaters of
// one wire. Large repeaters dominate; use gate width times a fixed device
// pitch, plus well spacing overhead.
func (w RepeaterAreaModel) RepeaterAreaMM2(rw RepeatedWire) float64 {
	_, widthLambda := rw.RepeaterTransistors()
	widthMM := widthLambda * LambdaNM * 1e-6
	return widthMM * w.DeviceDepthMM * w.Overhead
}

// RepeaterAreaModel captures the substrate footprint per unit of repeater
// gate width.
type RepeaterAreaModel struct {
	// DeviceDepthMM is the diffusion depth of a repeater row.
	DeviceDepthMM float64
	// Overhead multiplies for wells, taps, and the disciplined
	// floorplanning slack the paper notes repeaters demand.
	Overhead float64
}

// DefaultRepeaterArea is the repeater footprint model used by the Table 7
// roll-up.
var DefaultRepeaterArea = RepeaterAreaModel{DeviceDepthMM: 0.5e-3, Overhead: 2.0}

// TrackPitchMM reports the layout pitch of one wire track (width+spacing).
func (p Params) TrackPitchMM() float64 { return (p.WidthUM + p.SpacingUM) * 1e-3 }

// ChannelAreaMM2 reports the substrate area of a routing channel carrying
// `tracks` parallel wires over lengthMM. Conventional mesh channels consume
// substrate because the repeaters and via farms below them preclude cell
// placement (Section 2's third repeater problem).
func (p Params) ChannelAreaMM2(tracks int, lengthMM float64) float64 {
	return float64(tracks) * p.TrackPitchMM() * lengthMM
}
