package wire

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGlobal45Parameters(t *testing.T) {
	p := Global45()
	// Dense 45 nm global wiring: hundreds of ohms and ~0.2 pF per mm.
	if p.RPerMM < 200 || p.RPerMM > 800 {
		t.Fatalf("R/mm %.0f ohms out of plausible range", p.RPerMM)
	}
	if p.CPerMM < 0.1e-12 || p.CPerMM > 0.5e-12 {
		t.Fatalf("C/mm %.3g F out of plausible range", p.CPerMM)
	}
}

func TestUnrepeatedDelayQuadratic(t *testing.T) {
	p := Global45()
	d1 := UnrepeatedDelayPs(p, 1)
	d2 := UnrepeatedDelayPs(p, 2)
	if math.Abs(d2/d1-4) > 1e-9 {
		t.Fatalf("unrepeated delay not quadratic: %v vs %v", d1, d2)
	}
}

func TestRepeatedDelayLinear(t *testing.T) {
	p := Global45()
	d1 := Repeat(p, 5).DelayPs
	d2 := Repeat(p, 10).DelayPs
	if math.Abs(d2/d1-2) > 1e-9 {
		t.Fatalf("repeated delay not linear: %v vs %v", d1, d2)
	}
}

func TestRepeatersBeatBareWireForGlobalLengths(t *testing.T) {
	p := Global45()
	for _, l := range []float64{5, 10, 20} {
		if Repeat(p, l).DelayPs >= UnrepeatedDelayPs(p, l) {
			t.Fatalf("repeaters did not help at %v mm", l)
		}
	}
}

func TestCrossChipTakes25PlusCycles(t *testing.T) {
	// The intro's headline: crossing a 2 cm die takes over 25 cycles at
	// the end of the decade for aggressively clocked processors.
	cycles := Repeat(Global45(), 20).DelayCycles()
	if cycles < 25 || cycles > 40 {
		t.Fatalf("2cm repeated wire = %.1f cycles, want 25-40", cycles)
	}
}

func TestSegmentCountGrowsWithLength(t *testing.T) {
	p := Global45()
	if Repeat(p, 20).Segments <= Repeat(p, 5).Segments {
		t.Fatal("longer wires need more repeaters")
	}
	if Repeat(p, 0.1).Segments < 1 {
		t.Fatal("every wire has at least one segment")
	}
}

func TestRepeatPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Repeat with zero length did not panic")
		}
	}()
	Repeat(Global45(), 0)
}

func TestEnergyPerTransition(t *testing.T) {
	p := Global45()
	// E = C*V^2; 1 mm at ~0.2 pF/mm and 1 V is ~0.2 pJ.
	e := EnergyPerTransitionJ(p, 1)
	if e < 0.05e-12 || e > 0.5e-12 {
		t.Fatalf("per-mm switching energy %.3g J out of range", e)
	}
	if e2 := EnergyPerTransitionJ(p, 2); math.Abs(e2-2*e) > 1e-20 {
		t.Fatal("switching energy should be linear in length")
	}
}

func TestRepeaterTransistors(t *testing.T) {
	w := Repeat(Global45(), 10)
	count, width := w.RepeaterTransistors()
	if count != 2*w.Segments {
		t.Fatalf("transistor count %d, want 2 per segment", count)
	}
	if width <= 0 {
		t.Fatal("gate width must be positive")
	}
}

func TestRepeaterArea(t *testing.T) {
	short := DefaultRepeaterArea.RepeaterAreaMM2(Repeat(Global45(), 2))
	long := DefaultRepeaterArea.RepeaterAreaMM2(Repeat(Global45(), 20))
	if long <= short {
		t.Fatal("longer wires need more repeater area")
	}
}

func TestChannelArea(t *testing.T) {
	p := Global45()
	// 128 tracks over 10 mm at 0.4 um pitch: 0.512 mm^2.
	got := p.ChannelAreaMM2(128, 10)
	want := 128 * 0.0004 * 10.0
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("channel area %v, want %v", got, want)
	}
}

// Property: repeated delay is monotone in length and always linear within
// floating-point tolerance.
func TestQuickRepeatedDelayMonotone(t *testing.T) {
	f := func(rawA, rawB uint8) bool {
		a := 0.5 + float64(rawA%100)/10
		b := a + 0.1 + float64(rawB%100)/10
		p := Global45()
		return Repeat(p, b).DelayPs > Repeat(p, a).DelayPs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: derived R and C scale correctly with geometry — wider wires
// have lower resistance; tighter spacing has higher capacitance.
func TestQuickGeometryScaling(t *testing.T) {
	f := func(raw uint8) bool {
		w := 0.1 + float64(raw%20)/20
		narrow := NewParams(w, 0.2, 0.35)
		wide := NewParams(w*2, 0.2, 0.35)
		tight := NewParams(w, 0.1, 0.35)
		loose := NewParams(w, 0.4, 0.35)
		return wide.RPerMM < narrow.RPerMM && tight.CPerMM > loose.CPerMM
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
