// Package client is the typed Go client of the tlcd experiment service
// (internal/server). It speaks the internal/api wire types and absorbs the
// service's backpressure: 429 responses are retried after the server's
// Retry-After estimate, transient 5xx responses with exponential backoff.
// A run fetched through the client reconstructs the exact tlc.Result an
// in-process run returns — remote and local paths are byte-identical.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"tlc"
	"tlc/internal/api"
)

// Client calls one tlcd instance. The zero value is not usable; construct
// with New.
type Client struct {
	base string
	hc   *http.Client

	// Retries bounds re-attempts after a retryable status (429, 502, 503,
	// 504) or a transport error; the first attempt is not counted.
	Retries int
	// Backoff is the initial retry delay for responses without a
	// Retry-After header; it doubles per attempt and is capped at MaxBackoff.
	// MaxBackoff bounds only this exponential path: a server-provided
	// Retry-After is honored as-is — under a long backlog the server's
	// estimate can be minutes, and retrying earlier just burns attempts on
	// guaranteed 429s. Bound total waiting with the request context instead.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// RetryStatus, when non-nil, overrides the default retryable-status
	// predicate. The fleet coordinator uses it to fail over immediately on
	// 503 (a draining worker stays 503 until it exits — retrying it is
	// wasted time) while still honoring 429 backpressure from a busy one.
	RetryStatus func(status int) bool
}

// New builds a client for the server at base (e.g. "http://127.0.0.1:8080").
// httpc may be nil for http.DefaultClient.
func New(base string, httpc *http.Client) *Client {
	if httpc == nil {
		httpc = http.DefaultClient
	}
	return &Client{
		base:       strings.TrimRight(base, "/"),
		hc:         httpc,
		Retries:    8,
		Backoff:    100 * time.Millisecond,
		MaxBackoff: 5 * time.Second,
	}
}

// StatusError is a non-2xx service response after retries are exhausted
// (or a non-retryable status).
type StatusError struct {
	Status int
	Msg    string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("client: server returned %d: %s", e.Status, e.Msg)
}

// retryable statuses: explicit backpressure plus transient gateway/server
// conditions. 500 is excluded — the service uses it for deterministic run
// errors (bad config reaching execution), which retrying cannot fix.
func retryable(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// parseRetryAfter resolves a Retry-After header in either RFC 9110 form:
// delay-seconds ("120") or an HTTP-date ("Fri, 31 Dec 1999 23:59:59 GMT").
// Non-positive delays — a date already past, or "0" — report false, so the
// caller falls back to exponential backoff rather than spinning.
func parseRetryAfter(ra string) (time.Duration, bool) {
	if ra == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(ra); err == nil {
		if secs <= 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(ra); err == nil {
		if d := time.Until(t); d > 0 {
			return d, true
		}
	}
	return 0, false
}

// do issues one request with the retry/backoff policy and decodes a 2xx
// JSON body into out (skipped when out is nil). Request bodies are replayed
// from body on each attempt.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	backoff := c.Backoff
	var lastErr error
	for attempt := 0; ; attempt++ {
		fromRetryAfter := false
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}

		resp, err := c.hc.Do(req)
		var wait time.Duration
		if err != nil {
			// Transport errors (connection refused mid-restart, reset) are
			// retryable unless the context is done.
			if ctx.Err() != nil {
				return ctx.Err()
			}
			lastErr = err
			wait = backoff
		} else {
			data, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil {
				lastErr = rerr
				wait = backoff
			} else if resp.StatusCode/100 == 2 {
				if out == nil {
					return nil
				}
				return json.Unmarshal(data, out)
			} else {
				var apiErr api.Error
				json.Unmarshal(data, &apiErr)
				if apiErr.Error == "" {
					apiErr.Error = strings.TrimSpace(string(data))
				}
				serr := &StatusError{Status: resp.StatusCode, Msg: apiErr.Error}
				retry := c.RetryStatus
				if retry == nil {
					retry = retryable
				}
				if !retry(resp.StatusCode) {
					return serr
				}
				lastErr = serr
				wait = backoff
				if d, ok := parseRetryAfter(resp.Header.Get("Retry-After")); ok {
					wait = d
					fromRetryAfter = true
				}
			}
		}

		if attempt >= c.Retries {
			return fmt.Errorf("client: giving up after %d attempts: %w", attempt+1, lastErr)
		}
		backoff *= 2
		if backoff > c.MaxBackoff {
			backoff = c.MaxBackoff
		}
		// MaxBackoff caps only the exponential path; a server-provided
		// Retry-After is the exact time space frees — waiting less would
		// burn the remaining attempts on guaranteed 429s.
		if wait > c.MaxBackoff && !fromRetryAfter {
			wait = c.MaxBackoff
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Run executes (or fetches) one configuration on the server and returns its
// record. The record's Result field reconstructs exactly what an in-process
// tlc.Run returns.
func (c *Client) Run(ctx context.Context, req api.RunRequest) (api.RunRecord, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return api.RunRecord{}, err
	}
	var rec api.RunRecord
	if err := c.do(ctx, http.MethodPost, "/v1/runs", body, &rec); err != nil {
		return api.RunRecord{}, err
	}
	return rec, nil
}

// RunBlocking is Run with server-side blocking admission (?block=1): a
// full queue parks the run behind the backlog instead of answering 429.
// The fleet coordinator uses it for sweep grid fills, where backpressure
// should queue — mirroring how a single server's own figure and sweep
// handlers enqueue internally.
func (c *Client) RunBlocking(ctx context.Context, req api.RunRequest) (api.RunRecord, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return api.RunRecord{}, err
	}
	var rec api.RunRecord
	if err := c.do(ctx, http.MethodPost, "/v1/runs?block=1", body, &rec); err != nil {
		return api.RunRecord{}, err
	}
	return rec, nil
}

// Sweep streams a grid through POST /v1/sweeps: one request, NDJSON back,
// fn called once per completed point in completion order (Index joins a
// point to the request). A non-nil fn error abandons the stream.
//
// The stream is not retried: a sweep is not an idempotent replayable body
// once points have been consumed, and against a fleet coordinator the
// failover happens server-side per point. A torn connection surfaces as an
// error; the caller re-issues the sweep, and the fleet's result caches
// make the replay cheap.
func (c *Client) Sweep(ctx context.Context, sreq api.SweepRequest, fn func(api.SweepPoint) error) error {
	body, err := json.Marshal(sreq)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/sweeps", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		var apiErr api.Error
		json.Unmarshal(data, &apiErr)
		if apiErr.Error == "" {
			apiErr.Error = strings.TrimSpace(string(data))
		}
		return &StatusError{Status: resp.StatusCode, Msg: apiErr.Error}
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var p api.SweepPoint
		if err := dec.Decode(&p); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("client: sweep stream: %w", err)
		}
		if err := fn(p); err != nil {
			return err
		}
	}
}

// RegisterWorker announces a worker to a fleet coordinator (idempotent
// upsert, doubling as a heartbeat) and returns the coordinator's current
// membership view, so one round-trip also refreshes the caller's ring.
func (c *Client) RegisterWorker(ctx context.Context, baseURL string) (api.FleetState, error) {
	body, err := json.Marshal(api.RegisterRequest{BaseURL: baseURL})
	if err != nil {
		return api.FleetState{}, err
	}
	var state api.FleetState
	if err := c.do(ctx, http.MethodPost, "/v1/workers", body, &state); err != nil {
		return api.FleetState{}, err
	}
	return state, nil
}

// Workers fetches a fleet coordinator's membership view.
func (c *Client) Workers(ctx context.Context) (api.FleetState, error) {
	var state api.FleetState
	if err := c.do(ctx, http.MethodGet, "/v1/workers", nil, &state); err != nil {
		return api.FleetState{}, err
	}
	return state, nil
}

// Result is Run reduced to the tlc.Result an in-process run would return.
func (c *Client) Result(ctx context.Context, d tlc.Design, bench string, opt tlc.Options) (tlc.Result, error) {
	rec, err := c.Run(ctx, api.RunRequest{
		Design:    d.String(),
		Benchmark: bench,
		Options:   api.FromOptions(opt),
	})
	if err != nil {
		return tlc.Result{}, err
	}
	return rec.ToResult()
}

// GetRun looks up a completed run by its content address. A 404 maps to
// ok=false rather than an error.
func (c *Client) GetRun(ctx context.Context, id string) (api.RunRecord, bool, error) {
	var rec api.RunRecord
	err := c.do(ctx, http.MethodGet, "/v1/runs/"+id, nil, &rec)
	if err != nil {
		var serr *StatusError
		if errors.As(err, &serr) && serr.Status == http.StatusNotFound {
			return api.RunRecord{}, false, nil
		}
		return api.RunRecord{}, false, err
	}
	return rec, true, nil
}

// GetProfile looks up a cached phase profile by its content key. A 404 —
// the peer has not profiled that workload (or evicted it) — maps to
// ok=false rather than an error.
func (c *Client) GetProfile(ctx context.Context, key string) (tlc.PhaseProfile, bool, error) {
	var prof tlc.PhaseProfile
	err := c.do(ctx, http.MethodGet, "/v1/profiles/"+key, nil, &prof)
	if err != nil {
		var serr *StatusError
		if errors.As(err, &serr) && serr.Status == http.StatusNotFound {
			return tlc.PhaseProfile{}, false, nil
		}
		return tlc.PhaseProfile{}, false, err
	}
	return prof, true, nil
}

// Figure fetches a rendered table/figure as text.
func (c *Client) Figure(ctx context.Context, name string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/figures/"+name, nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", &StatusError{Status: resp.StatusCode, Msg: strings.TrimSpace(string(data))}
	}
	return string(data), nil
}

// Health probes /healthz; nil means the server is up and not draining.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &StatusError{Status: resp.StatusCode, Msg: "unhealthy"}
	}
	return nil
}
