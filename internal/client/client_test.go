package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"tlc/internal/api"
)

// fastClient returns a client with sub-millisecond backoff for tests.
func fastClient(url string) *Client {
	c := New(url, nil)
	c.Backoff = time.Millisecond
	c.MaxBackoff = 5 * time.Millisecond
	return c
}

// TestRetryOn429 drives the backpressure contract: 429 responses (with
// Retry-After honored) are retried until the server admits the run.
func TestRetryOn429(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0") // ignored (non-positive): falls back to backoff
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(api.Error{Error: "run queue is full"})
			return
		}
		json.NewEncoder(w).Encode(api.RunRecord{Design: "TLC", Benchmark: "gcc", Cycles: 7})
	}))
	defer hs.Close()

	rec, err := fastClient(hs.URL).Run(context.Background(), api.RunRequest{Design: "TLC", Benchmark: "gcc"})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Cycles != 7 {
		t.Fatalf("rec = %+v", rec)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("%d requests, want 3 (two 429s then success)", got)
	}
}

// TestRetryAfterNotClampedByMaxBackoff: a server-provided Retry-After
// beyond MaxBackoff is honored in full — MaxBackoff caps only the
// exponential backoff path, so a long-backlog estimate (minutes) is not
// turned into a burst of early retries.
func TestRetryAfterNotClampedByMaxBackoff(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(api.Error{Error: "run queue is full"})
			return
		}
		json.NewEncoder(w).Encode(api.RunRecord{Design: "TLC", Benchmark: "gcc", Cycles: 7})
	}))
	defer hs.Close()

	c := fastClient(hs.URL) // MaxBackoff 5ms, far below the 1s Retry-After
	start := time.Now()
	rec, err := c.Run(context.Background(), api.RunRequest{Design: "TLC", Benchmark: "gcc"})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Cycles != 7 {
		t.Fatalf("rec = %+v", rec)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("%d requests, want 2 (one 429 then success)", got)
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Fatalf("retried after %v, want the full 1s Retry-After honored", elapsed)
	}
}

// TestNoRetryOn400And500: deterministic failures surface immediately.
func TestNoRetryOn400And500(t *testing.T) {
	for _, status := range []int{http.StatusBadRequest, http.StatusInternalServerError} {
		var calls atomic.Int64
		hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			calls.Add(1)
			w.WriteHeader(status)
			json.NewEncoder(w).Encode(api.Error{Error: "nope"})
		}))
		_, err := fastClient(hs.URL).Run(context.Background(), api.RunRequest{Design: "TLC", Benchmark: "gcc"})
		hs.Close()
		var serr *StatusError
		if !errors.As(err, &serr) || serr.Status != status {
			t.Fatalf("status %d: err = %v, want StatusError with that status", status, err)
		}
		if got := calls.Load(); got != 1 {
			t.Fatalf("status %d retried (%d requests), deterministic failures must not retry", status, got)
		}
	}
}

// TestRetriesExhausted: persistent 503s end in an error wrapping the last
// StatusError after Retries+1 attempts.
func TestRetriesExhausted(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer hs.Close()

	c := fastClient(hs.URL)
	c.Retries = 2
	_, err := c.Run(context.Background(), api.RunRequest{Design: "TLC", Benchmark: "gcc"})
	var serr *StatusError
	if !errors.As(err, &serr) || serr.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want wrapped 503 StatusError", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("%d requests, want 3 (initial + 2 retries)", got)
	}
}

// TestContextCancelsRetryLoop: a cancelled context stops the backoff sleep.
func TestContextCancelsRetryLoop(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer hs.Close()

	c := New(hs.URL, nil) // default MaxBackoff: the 30s Retry-After is honored
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Run(ctx, api.RunRequest{Design: "TLC", Benchmark: "gcc"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("retry loop ignored the context and slept through Retry-After")
	}
}

// TestGetRunNotFound maps 404 to ok=false.
func TestGetRunNotFound(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(api.Error{Error: "no such run"})
	}))
	defer hs.Close()

	_, ok, err := fastClient(hs.URL).GetRun(context.Background(), "abc")
	if err != nil || ok {
		t.Fatalf("GetRun on 404 = ok=%v err=%v, want false, nil", ok, err)
	}
}
