package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"tlc/internal/api"
)

// fastClient returns a client with sub-millisecond backoff for tests.
func fastClient(url string) *Client {
	c := New(url, nil)
	c.Backoff = time.Millisecond
	c.MaxBackoff = 5 * time.Millisecond
	return c
}

// TestRetryOn429 drives the backpressure contract: 429 responses (with
// Retry-After honored) are retried until the server admits the run.
func TestRetryOn429(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0") // ignored (non-positive): falls back to backoff
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(api.Error{Error: "run queue is full"})
			return
		}
		json.NewEncoder(w).Encode(api.RunRecord{Design: "TLC", Benchmark: "gcc", Cycles: 7})
	}))
	defer hs.Close()

	rec, err := fastClient(hs.URL).Run(context.Background(), api.RunRequest{Design: "TLC", Benchmark: "gcc"})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Cycles != 7 {
		t.Fatalf("rec = %+v", rec)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("%d requests, want 3 (two 429s then success)", got)
	}
}

// TestRetryAfterNotClampedByMaxBackoff: a server-provided Retry-After
// beyond MaxBackoff is honored in full — MaxBackoff caps only the
// exponential backoff path, so a long-backlog estimate (minutes) is not
// turned into a burst of early retries.
func TestRetryAfterNotClampedByMaxBackoff(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(api.Error{Error: "run queue is full"})
			return
		}
		json.NewEncoder(w).Encode(api.RunRecord{Design: "TLC", Benchmark: "gcc", Cycles: 7})
	}))
	defer hs.Close()

	c := fastClient(hs.URL) // MaxBackoff 5ms, far below the 1s Retry-After
	start := time.Now()
	rec, err := c.Run(context.Background(), api.RunRequest{Design: "TLC", Benchmark: "gcc"})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Cycles != 7 {
		t.Fatalf("rec = %+v", rec)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("%d requests, want 2 (one 429 then success)", got)
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Fatalf("retried after %v, want the full 1s Retry-After honored", elapsed)
	}
}

// TestRetryAfterHTTPDateForm: RFC 9110 allows Retry-After as an HTTP-date
// as well as delay-seconds. The date form must be honored as a wait until
// that instant — not silently ignored in favor of the (much shorter)
// exponential backoff.
func TestRetryAfterHTTPDateForm(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", time.Now().Add(2*time.Second).UTC().Format(http.TimeFormat))
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(api.Error{Error: "run queue is full"})
			return
		}
		json.NewEncoder(w).Encode(api.RunRecord{Design: "TLC", Benchmark: "gcc", Cycles: 7})
	}))
	defer hs.Close()

	c := fastClient(hs.URL) // millisecond backoff: only the parsed date explains a ~1s+ wait
	start := time.Now()
	rec, err := c.Run(context.Background(), api.RunRequest{Design: "TLC", Benchmark: "gcc"})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Cycles != 7 {
		t.Fatalf("rec = %+v", rec)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("%d requests, want 2 (one 429 then success)", got)
	}
	// The header's wall-clock instant has 1s resolution, so "now + 2s"
	// guarantees at least ~1s of mandated wait even after truncation.
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Fatalf("retried after %v: the HTTP-date Retry-After was not honored", elapsed)
	}
}

// TestRetryAfterDateInPast: a stale HTTP-date (already elapsed) falls back
// to exponential backoff instead of a zero or negative sleep loop.
func TestRetryAfterDateInPast(t *testing.T) {
	if d, ok := parseRetryAfter(time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat)); ok {
		t.Fatalf("past HTTP-date parsed as a %v wait, want fallback to backoff", d)
	}
	if d, ok := parseRetryAfter("120"); !ok || d != 2*time.Minute {
		t.Fatalf("delay-seconds form parsed as (%v, %v), want (2m, true)", d, ok)
	}
	if _, ok := parseRetryAfter("garbage"); ok {
		t.Fatal("unparseable Retry-After treated as a wait")
	}
}

// TestRetryStatusOverride: a custom predicate can exclude 503 from retry
// (the coordinator's fail-fast failover path) without touching 429.
func TestRetryStatusOverride(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(api.Error{Error: "server is draining"})
	}))
	defer hs.Close()

	c := fastClient(hs.URL)
	c.RetryStatus = func(status int) bool { return status == http.StatusTooManyRequests }
	_, err := c.Run(context.Background(), api.RunRequest{Design: "TLC", Benchmark: "gcc"})
	var serr *StatusError
	if !errors.As(err, &serr) || serr.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want immediate 503 StatusError", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("%d requests, want 1 (503 excluded from retry)", got)
	}
}

// TestSweepStreams: NDJSON points are surfaced one at a time, in stream
// order, with Index preserved; a non-200 opening status maps to StatusError.
func TestSweepStreams(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/sweeps" {
			t.Errorf("sweep posted to %s", r.URL.Path)
		}
		var sreq api.SweepRequest
		if err := json.NewDecoder(r.Body).Decode(&sreq); err != nil {
			t.Errorf("decoding sweep request: %v", err)
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		// Completion order deliberately differs from request order.
		for _, i := range []int{1, 0, 2} {
			enc.Encode(api.SweepPoint{Index: i, Record: &api.RunRecord{Cycles: uint64(100 + i)}})
		}
	}))
	defer hs.Close()

	req := api.SweepRequest{Points: []api.RunRequest{
		{Design: "TLC", Benchmark: "gcc"},
		{Design: "TLC", Benchmark: "mcf"},
		{Design: "DNUCA", Benchmark: "gcc"},
	}}
	var got []int
	err := fastClient(hs.URL).Sweep(context.Background(), req, func(p api.SweepPoint) error {
		if p.Record == nil || p.Record.Cycles != uint64(100+p.Index) {
			t.Errorf("point %d carries record %+v", p.Index, p.Record)
		}
		got = append(got, p.Index)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 0 || got[2] != 2 {
		t.Fatalf("points arrived as %v, want stream order [1 0 2]", got)
	}

	hs2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(api.Error{Error: "sweep has no points"})
	}))
	defer hs2.Close()
	err = fastClient(hs2.URL).Sweep(context.Background(), api.SweepRequest{}, func(api.SweepPoint) error { return nil })
	var serr *StatusError
	if !errors.As(err, &serr) || serr.Status != http.StatusBadRequest {
		t.Fatalf("sweep error = %v, want 400 StatusError", err)
	}
}

// TestNoRetryOn400And500: deterministic failures surface immediately.
func TestNoRetryOn400And500(t *testing.T) {
	for _, status := range []int{http.StatusBadRequest, http.StatusInternalServerError} {
		var calls atomic.Int64
		hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			calls.Add(1)
			w.WriteHeader(status)
			json.NewEncoder(w).Encode(api.Error{Error: "nope"})
		}))
		_, err := fastClient(hs.URL).Run(context.Background(), api.RunRequest{Design: "TLC", Benchmark: "gcc"})
		hs.Close()
		var serr *StatusError
		if !errors.As(err, &serr) || serr.Status != status {
			t.Fatalf("status %d: err = %v, want StatusError with that status", status, err)
		}
		if got := calls.Load(); got != 1 {
			t.Fatalf("status %d retried (%d requests), deterministic failures must not retry", status, got)
		}
	}
}

// TestRetriesExhausted: persistent 503s end in an error wrapping the last
// StatusError after Retries+1 attempts.
func TestRetriesExhausted(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer hs.Close()

	c := fastClient(hs.URL)
	c.Retries = 2
	_, err := c.Run(context.Background(), api.RunRequest{Design: "TLC", Benchmark: "gcc"})
	var serr *StatusError
	if !errors.As(err, &serr) || serr.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want wrapped 503 StatusError", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("%d requests, want 3 (initial + 2 retries)", got)
	}
}

// TestContextCancelsRetryLoop: a cancelled context stops the backoff sleep.
func TestContextCancelsRetryLoop(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer hs.Close()

	c := New(hs.URL, nil) // default MaxBackoff: the 30s Retry-After is honored
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Run(ctx, api.RunRequest{Design: "TLC", Benchmark: "gcc"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("retry loop ignored the context and slept through Retry-After")
	}
}

// TestGetRunNotFound maps 404 to ok=false.
func TestGetRunNotFound(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(api.Error{Error: "no such run"})
	}))
	defer hs.Close()

	_, ok, err := fastClient(hs.URL).GetRun(context.Background(), "abc")
	if err != nil || ok {
		t.Fatalf("GetRun on 404 = ok=%v err=%v, want false, nil", ok, err)
	}
}
