package experiments

import (
	"testing"

	"tlc"
)

// planPoints builds a grid over designs x benches with a shared option set.
func planPoints(designs []tlc.Design, benches []string, opt tlc.Options) []GridPoint {
	pts := make([]GridPoint, 0, len(designs)*len(benches))
	for _, d := range designs {
		for _, b := range benches {
			pts = append(pts, GridPoint{Design: d, Bench: b, Opt: opt})
		}
	}
	return pts
}

func TestLanePlannerGroupsByStream(t *testing.T) {
	store := tlc.NewCheckpointStore(0, "")
	opt := tlc.DefaultOptions()
	opt.Checkpoints = store
	designs := []tlc.Design{tlc.DesignSNUCA2, tlc.DesignDNUCA, tlc.DesignTLC}

	p := NewLanePlanner()
	groups := p.Plan(planPoints(designs, []string{"mcf", "gcc"}, opt))
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2 (one per benchmark)", len(groups))
	}
	for _, g := range groups {
		if len(g.Designs) != 3 {
			t.Errorf("bench %s: got %d designs, want 3", g.Bench, len(g.Designs))
		}
	}
	if p.ScalarPoints() != 0 {
		t.Errorf("got %d scalar points, want 0", p.ScalarPoints())
	}
}

func TestLanePlannerScalarFallbacks(t *testing.T) {
	store := tlc.NewCheckpointStore(0, "")
	opt := tlc.DefaultOptions()
	opt.Checkpoints = store
	noStore := tlc.DefaultOptions()

	pts := []GridPoint{
		// A shareable pair...
		{Design: tlc.DesignSNUCA2, Bench: "mcf", Opt: opt},
		{Design: tlc.DesignTLC, Bench: "mcf", Opt: opt},
		// ...a duplicate configuration (no second lane)...
		{Design: tlc.DesignTLC, Bench: "mcf", Opt: opt},
		// ...a lone design on its own stream...
		{Design: tlc.DesignTLC, Bench: "gcc", Opt: opt},
		// ...and a point that cannot carry a warm-up at all.
		{Design: tlc.DesignDNUCA, Bench: "mcf", Opt: noStore},
	}
	p := NewLanePlanner()
	groups := p.Plan(pts)
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(groups))
	}
	if len(groups[0].Designs) != 2 || groups[0].Bench != "mcf" {
		t.Errorf("group 0 = %s/%d designs, want mcf/2", groups[0].Bench, len(groups[0].Designs))
	}
	if len(groups[1].Designs) != 1 || groups[1].Bench != "gcc" {
		t.Errorf("group 1 = %s/%d designs, want gcc/1", groups[1].Bench, len(groups[1].Designs))
	}
	// One storeless point plus one singleton group.
	if p.ScalarPoints() != 2 {
		t.Errorf("got %d scalar points, want 2", p.ScalarPoints())
	}
}

func TestLanePlannerSplitsDistinctStreams(t *testing.T) {
	opt1 := tlc.DefaultOptions()
	opt1.Checkpoints = tlc.NewCheckpointStore(0, "")
	opt2 := opt1
	opt2.Checkpoints = tlc.NewCheckpointStore(0, "")
	opt3 := opt1
	opt3.WarmSeed = 7

	pts := []GridPoint{
		{Design: tlc.DesignSNUCA2, Bench: "mcf", Opt: opt1},
		{Design: tlc.DesignTLC, Bench: "mcf", Opt: opt1},
		// Same grid shape, different store: must not share a pass.
		{Design: tlc.DesignSNUCA2, Bench: "mcf", Opt: opt2},
		{Design: tlc.DesignTLC, Bench: "mcf", Opt: opt2},
		// Same store, different warm seed: a different stream.
		{Design: tlc.DesignSNUCA2, Bench: "mcf", Opt: opt3},
		{Design: tlc.DesignTLC, Bench: "mcf", Opt: opt3},
	}
	p := NewLanePlanner()
	groups := p.Plan(pts)
	if len(groups) != 3 {
		t.Fatalf("got %d groups, want 3 (per store and warm seed)", len(groups))
	}
	for i, g := range groups {
		if len(g.Designs) != 2 {
			t.Errorf("group %d: got %d designs, want 2", i, len(g.Designs))
		}
	}
}

// TestLanePlannerSeedEquivalentKeys pins the warm-plan keying rule: a zero
// WarmSeed falls back to Seed, so points differing only in timed seed (the
// seed-sweep shape, all pinned to one warm seed) group together.
func TestLanePlannerSeedEquivalentKeys(t *testing.T) {
	store := tlc.NewCheckpointStore(0, "")
	base := tlc.DefaultOptions()
	base.Checkpoints = store

	a := base
	a.Seed = 1 // effective warm seed 1
	b := base
	b.Seed = 5
	b.WarmSeed = 1 // explicitly pinned to the same stream
	pts := []GridPoint{
		{Design: tlc.DesignSNUCA2, Bench: "mcf", Opt: a},
		{Design: tlc.DesignTLC, Bench: "mcf", Opt: b},
	}
	p := NewLanePlanner()
	groups := p.Plan(pts)
	if len(groups) != 1 || len(groups[0].Designs) != 2 {
		t.Fatalf("seed-equivalent points did not group: %d groups", len(groups))
	}
}

// TestLanePlannerDoesNotAllocate pins steady-state planning at zero
// allocations: after the first Plan sizes the index and group storage,
// replanning a grid of the same shape reuses it all.
func TestLanePlannerDoesNotAllocate(t *testing.T) {
	store := tlc.NewCheckpointStore(0, "")
	opt := tlc.DefaultOptions()
	opt.Checkpoints = store
	pts := planPoints(tlc.Designs(), []string{"mcf", "gcc", "art", "oltp"}, opt)

	p := NewLanePlanner()
	p.Plan(pts) // size the storage
	if allocs := testing.AllocsPerRun(10, func() { p.Plan(pts) }); allocs != 0 {
		t.Errorf("Plan allocates %.2f per call, want 0", allocs)
	}
}
