package experiments

import (
	"sync"
	"time"

	"tlc"
)

// GridPoint is one point of an explicit sweep grid: the full configuration
// of one run. The lane planner consumes grids in this shape; executors keep
// running points however they already do (suites, server submits) — the
// plan only decides which warm-ups can be paid once, together.
type GridPoint struct {
	Design tlc.Design
	Bench  string
	Opt    tlc.Options
}

// LaneGroup is one plan entry: the distinct designs of a grid whose points
// share a workload stream — same benchmark, same effective warm seed, same
// warm length, same checkpoint store — so one lane-parallel pass
// (tlc.WarmLanes) warms all of them off a single generator traversal.
// Groups with fewer than two designs gain nothing from sharing; planners
// report them and executors leave those points to scalar warm-up.
type LaneGroup struct {
	Bench   string
	Designs []tlc.Design
	// Opt is a representative option set of the group's points. The fields
	// a lane pass reads (warm plan, checkpoint store, cancellation) are
	// equal across the group by construction; the rest differ per point
	// and are irrelevant to functional warm-up.
	Opt tlc.Options
}

// laneKey is the grouping key: everything that determines whether two grid
// points would consume the identical warm stream into the same store.
// The warm length is keyed raw (zero means per-benchmark automatic, which
// is equal within a benchmark anyway); the store pointer keys identity, so
// grids spanning stores never share a pass.
type laneKey struct {
	bench    string
	warmSeed int64
	warm     uint64
	store    *tlc.CheckpointStore
}

// LanePlanner groups grid points for lane-parallel warm-up. A planner
// reuses its internal index and group storage across Plan calls, so
// steady-state planning allocates nothing (the alloc pin covers this); it
// is not safe for concurrent use — give each goroutine its own, or lock.
type LanePlanner struct {
	idx    map[laneKey]int
	groups []LaneGroup
	scalar int
}

// NewLanePlanner returns an empty planner.
func NewLanePlanner() *LanePlanner {
	return &LanePlanner{idx: make(map[laneKey]int)}
}

// Plan groups points by shared workload stream, in first-occurrence order
// (deterministic for a deterministic grid). Points without a checkpoint
// store cannot carry a warm-up to their run and are counted straight to
// scalar fallback. The returned slice and its groups are valid until the
// next Plan call.
func (p *LanePlanner) Plan(points []GridPoint) []LaneGroup {
	for k := range p.idx {
		delete(p.idx, k)
	}
	p.groups = p.groups[:0]
	p.scalar = 0
	for i := range points {
		pt := &points[i]
		if pt.Opt.Checkpoints == nil {
			p.scalar++
			continue
		}
		warmSeed := pt.Opt.WarmSeed
		if warmSeed == 0 {
			warmSeed = pt.Opt.Seed
		}
		k := laneKey{pt.Bench, warmSeed, pt.Opt.WarmInstructions, pt.Opt.Checkpoints}
		gi, ok := p.idx[k]
		if !ok {
			gi = len(p.groups)
			if gi < cap(p.groups) {
				// Reuse the retired group's Designs backing array.
				p.groups = p.groups[:gi+1]
				g := &p.groups[gi]
				g.Bench = pt.Bench
				g.Opt = pt.Opt
				g.Designs = g.Designs[:0]
			} else {
				p.groups = append(p.groups, LaneGroup{Bench: pt.Bench, Opt: pt.Opt})
			}
			p.idx[k] = gi
		}
		g := &p.groups[gi]
		if !containsDesign(g.Designs, pt.Design) {
			g.Designs = append(g.Designs, pt.Design)
		}
	}
	// Lone designs share nothing: their points fall back to scalar
	// warm-up inside their own runs.
	for i := range p.groups {
		if len(p.groups[i].Designs) < 2 {
			p.scalar++
		}
	}
	return p.groups
}

// ScalarPoints reports how many points of the last Plan were left to
// scalar execution: points with no checkpoint store, plus one per group
// too small to share.
func (p *LanePlanner) ScalarPoints() int { return p.scalar }

func containsDesign(ds []tlc.Design, d tlc.Design) bool {
	for _, x := range ds {
		if x == d {
			return true
		}
	}
	return false
}

// warmLanes is the lane phase of grid execution: plan the grid, then run
// one lane-parallel warm pass per shareable group, bounded by par. It only
// pre-pays warm-ups into the checkpoint store — the points themselves still
// execute exactly as before, restoring what the pass stored. Pass errors
// (cancellation) are dropped deliberately: the pass is an accelerator, and
// whatever it could not warm is warmed scalar by the runs, which surface
// their own errors.
func (s *Suite) warmLanes(points []GridPoint, par int) {
	if s.NoLanes {
		return
	}
	if par < 1 {
		par = 1
	}
	s.planMu.Lock()
	if s.planner == nil {
		s.planner = NewLanePlanner()
	}
	groups := s.planner.Plan(points)
	scalar := s.planner.ScalarPoints()
	s.planMu.Unlock()

	var wg sync.WaitGroup
	sem := make(chan struct{}, par)
	for i := range groups {
		g := &groups[i]
		if len(g.Designs) < 2 {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			st, err := tlc.WarmLanes(g.Designs, g.Bench, g.Opt)
			if err != nil || st.Lanes == 0 {
				return
			}
			s.mu.Lock()
			s.m.LaneGroups++
			s.m.LanesWarmed += uint64(st.Lanes)
			s.m.LaneBatches += st.Batches
			s.m.LaneWall += time.Since(start)
			s.mu.Unlock()
		}()
	}
	wg.Wait()
	s.mu.Lock()
	s.m.LaneScalarPoints += uint64(scalar)
	s.mu.Unlock()
}

// WarmGrid plans and executes the lane-parallel warm phase for an explicit
// grid, bounded by par workers. Callers that then run the same points —
// through this suite or any executor sharing the points' checkpoint
// stores — restore the pre-paid warm states instead of re-warming. It is
// the entry point for grid executors outside RunAll (tlcsweep's local
// path, the tlcd sweep and figure pipelines).
func (s *Suite) WarmGrid(points []GridPoint, par int) {
	s.warmLanes(points, par)
}
