package experiments

import (
	"math"
	"strings"
	"testing"

	"tlc"
)

// sampledSuite runs small sampled simulations with a shared checkpoint
// store: the shape tests exercise the full sampled plumbing cheaply.
func sampledSuite() *Suite {
	return NewSuite(tlc.Options{
		WarmInstructions: 200_000,
		RunInstructions:  100_000,
		Seed:             1,
		SampleIntervals:  4,
		SampleLength:     5_000,
		Checkpoints:      tlc.NewCheckpointStore(0, ""),
	})
}

func TestSampledModeDetection(t *testing.T) {
	if tinySuite().Sampled() {
		t.Fatal("full-run suite reports sampled mode")
	}
	s := sampledSuite()
	if !s.Sampled() {
		t.Fatal("sampled suite does not report sampled mode")
	}
	if _, err := tinySuite().SampledErr(tlc.DesignTLC, "gcc"); err == nil {
		t.Fatal("SampledErr on a full-run suite did not error")
	}
}

func TestSampledRunsCarryIntervals(t *testing.T) {
	s := sampledSuite()
	sr, err := s.SampledErr(tlc.DesignTLC, "gcc")
	if err != nil {
		t.Fatal(err)
	}
	if sr.Intervals != 4 || sr.DetailedInstructions != 20_000 {
		t.Fatalf("sampled shape %d×(%d total), want 4 intervals / 20000 detailed",
			sr.Intervals, sr.DetailedInstructions)
	}
	if sr.Cycles == 0 || sr.IPC <= 0 {
		t.Fatalf("sampled estimate empty: %+v", sr.Result)
	}
	if sr.CyclesCI < 0 || math.IsNaN(sr.CyclesCI) {
		t.Fatalf("bad cycles CI %v", sr.CyclesCI)
	}
	// RunErr must serve the same underlying run (one simulation, shared).
	r, err := s.RunErr(tlc.DesignTLC, "gcc")
	if err != nil {
		t.Fatal(err)
	}
	if r != sr.Result {
		t.Fatal("RunErr and SampledErr disagree on the same key")
	}
	if m := s.Metrics(); m.Simulated != 1 || m.CacheHits != 1 {
		t.Fatalf("metrics %+v, want 1 simulated + 1 cache hit", m)
	}
}

func TestSampledFiguresCarryErrorColumns(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated experiments are slow")
	}
	s := sampledSuite()
	f5 := s.Figure5()
	// Two designs, each with a ± companion series.
	if len(f5.Series) != 4 {
		t.Fatalf("sampled Figure 5 has %d series, want 4 (2 designs + 2 error columns)", len(f5.Series))
	}
	var errSeries int
	for _, ser := range f5.Series {
		if strings.HasPrefix(ser.Name, "± ") {
			errSeries++
			for i, v := range ser.Values {
				if v < 0 || math.IsNaN(v) {
					t.Errorf("series %q value %d is %v", ser.Name, i, v)
				}
			}
		}
	}
	if errSeries != 2 {
		t.Fatalf("%d error series, want 2", errSeries)
	}
	f6 := s.Figure6()
	if len(f6.Series) != 4 {
		t.Fatalf("sampled Figure 6 has %d series, want 4", len(f6.Series))
	}
	// Full-run suites must keep the original shape.
	full := tinySuite()
	if got := len(full.Figure6().Series); got != 2 {
		t.Fatalf("full-run Figure 6 has %d series, want 2", got)
	}
}
