package experiments

// The CMP contention figure: one benchmark run across core counts on every
// design, reporting machine cycles, the slowdown against the design's own
// single-core run, and the coherence traffic behind it (BusRd/BusRdX,
// invalidations, downgrades, writebacks) plus the cycles requests spent
// delayed in shared-L2 arbitration. cmd/tlctables renders it via -only
// contention and cmd/tlcsweep -contention sweeps the same grid (locally or
// through a tlcd fleet); both go through ContentionTable, so their output
// is byte-identical per cell.

import (
	"sync"

	"tlc"
	"tlc/internal/report"
)

// ContentionPoint is one executed cell of the contention grid.
type ContentionPoint struct {
	Design tlc.Design
	Cores  int
	// Result and Metrics are the cell's run outcome; Metrics carries the
	// coherence counters ("coh.*", "cmp.arb.*") the table reads, absent —
	// and so zero — on single-core runs.
	Result  tlc.Result
	Metrics tlc.MetricsSnapshot
}

// ContentionCoreCounts is the figure's default x-axis.
func ContentionCoreCounts() []int { return []int{1, 2, 4} }

// ContentionGrid enumerates the figure's cells design-major with core
// counts ascending inside each design — the order ContentionTable renders.
func ContentionGrid(designs []tlc.Design, coreCounts []int) []ContentionPoint {
	points := make([]ContentionPoint, 0, len(designs)*len(coreCounts))
	for _, d := range designs {
		for _, n := range coreCounts {
			points = append(points, ContentionPoint{Design: d, Cores: n})
		}
	}
	return points
}

// Contention runs the grid in-process, bounded by par workers, and renders
// it. Runs are deterministic and land by cell index, so the table is
// byte-identical for every par value. opt.Cores is overridden per cell;
// opt.Sharing shapes every multi-core cell's cross-core reference pattern.
func Contention(opt tlc.Options, designs []tlc.Design, bench string, coreCounts []int, par int) (*report.Table, error) {
	points := ContentionGrid(designs, coreCounts)
	errs := make([]error, len(points))
	sem := make(chan struct{}, max(1, par))
	var wg sync.WaitGroup
	for i := range points {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			p := &points[i]
			o := opt
			o.Cores = p.Cores
			user := o.OnMetrics
			o.OnMetrics = func(ev tlc.MetricsEvent) {
				p.Metrics = ev.Snapshot
				if user != nil {
					user(ev)
				}
			}
			p.Result, errs[i] = tlc.Run(p.Design, bench, o)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return ContentionTable(bench, points), nil
}

// ContentionTable renders executed grid cells (in ContentionGrid order)
// as the contention figure. Slowdown normalizes each cell's cycles to the
// same design's single-core cell, so it isolates what sharing the L2 —
// arbitration plus coherence — costs; designs without a 1-core cell in
// points show an empty slowdown column.
func ContentionTable(bench string, points []ContentionPoint) *report.Table {
	base := make(map[tlc.Design]float64)
	for _, p := range points {
		if p.Cores <= 1 {
			base[p.Design] = float64(p.Result.Cycles)
		}
	}
	t := report.NewTable("CMP contention ("+bench+"): cycles and coherence traffic vs core count",
		"Design", "Cores", "Cycles", "Slowdown", "BusRd", "BusRdX", "Inval", "Downgrades", "Writebacks", "Arb delay (cyc)")
	for _, p := range points {
		slowdown := ""
		if b := base[p.Design]; b > 0 {
			slowdown = report.FormatFloat(float64(p.Result.Cycles) / b)
		}
		t.AddRow(p.Design.String(), p.Cores, float64(p.Result.Cycles), slowdown,
			counter(p.Metrics, "coh.busrd"), counter(p.Metrics, "coh.busrdx"),
			counter(p.Metrics, "coh.invalidations"), counter(p.Metrics, "coh.downgrades"),
			counter(p.Metrics, "coh.writebacks"), counter(p.Metrics, "cmp.arb.delay_cycles"))
	}
	return t
}

// counter reads a counter from a snapshot; absent names (every "coh.*" on
// a single-core run) read zero.
func counter(snap tlc.MetricsSnapshot, name string) uint64 {
	v, _ := snap.Value(name)
	return uint64(v)
}
