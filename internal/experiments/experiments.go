// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6) from the simulation stack: the per-experiment
// index in DESIGN.md maps each function here to its table or figure.
// Simulation results are cached per (design, benchmark) within a Suite so
// tables that share runs (Table 6, Table 9, Figures 5-8) pay for each run
// once.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"tlc"
	"tlc/internal/config"
	"tlc/internal/report"
	"tlc/internal/tline"
	"tlc/internal/wire"
)

// Suite caches simulation runs for one Options setting. It is safe for
// concurrent use: concurrent requests for the same (design, benchmark) key
// join one in-flight simulation (per-key singleflight) instead of
// duplicating it, and requests for distinct keys proceed in parallel.
//
// Simulations are deterministic and independent per key, so a Suite driven
// by RunAll produces bit-identical results to serial Run calls — the
// property that lets full-table regeneration use every core while emitting
// byte-identical output.
type Suite struct {
	Opt tlc.Options

	// OnRun, when set before the first Run, observes every underlying
	// simulation as it completes (cache hits do not fire it). RunAll calls
	// it from its worker goroutines, so the hook must be safe for
	// concurrent use.
	OnRun func(RunEvent)

	// NoLanes, when set before the first RunAll, disables the lane-parallel
	// warm phase: every grid point warms scalar inside its own run. Results
	// are bit-identical either way — the switch exists so artifacts and
	// benchmarks can measure the scalar baseline.
	NoLanes bool

	mu    sync.Mutex
	cache map[runKey]*flight
	m     Metrics

	// runMetrics holds each executed run's full registry snapshot; agg sums
	// every counter across runs. Both are fed by the OnMetrics hook NewSuite
	// installs, which fires from RunAll's worker goroutines — s.mu makes the
	// aggregation race-safe, and cached duplicate runs do not re-fire, so
	// each (design, benchmark) contributes exactly once.
	runMetrics map[runKey]tlc.MetricsSnapshot
	agg        map[string]uint64

	// planner is the suite's reusable lane-grid planner, guarded by its own
	// mutex so a long-held plan never blocks the run cache.
	planMu  sync.Mutex
	planner *LanePlanner
}

// RunEvent describes one completed underlying simulation.
type RunEvent struct {
	Design    tlc.Design
	Benchmark string
	// Wall is the simulation's host wall-clock time.
	Wall time.Duration
	// Result is the completed run's result (zero on error).
	Result tlc.Result
	// Err is the simulation error, if any.
	Err error
}

// Metrics summarizes a suite's cache behavior and simulation cost, the
// observability counters behind sweep progress reporting.
type Metrics struct {
	// Simulated counts underlying simulations actually executed.
	Simulated uint64
	// CacheHits counts Run requests served from the cache or by joining
	// an in-flight simulation of the same key.
	CacheHits uint64
	// SimWall is the summed wall-clock time of all underlying
	// simulations (CPU-seconds of simulation, not elapsed time: parallel
	// runs overlap).
	SimWall time.Duration

	// Lane-parallel warm phase counters (the sim.lanes.* spine): how much
	// grid work the shared-stream passes actually absorbed.

	// LaneGroups counts shared warm passes that warmed at least one lane.
	LaneGroups uint64
	// LanesWarmed counts configurations warmed by shared passes — warm-ups
	// the grid's runs restored instead of re-executing.
	LanesWarmed uint64
	// LaneBatches counts stream batches consumed once on behalf of a whole
	// group, each saved (lanes-1) times over scalar execution.
	LaneBatches uint64
	// LaneScalarPoints counts grid points left to scalar warm-up: no
	// checkpoint store, or a group too small to share.
	LaneScalarPoints uint64
	// LaneWall is the summed wall-clock time of the shared warm passes
	// (CPU-seconds like SimWall: passes running in parallel overlap). Add
	// it to SimWall when comparing a lane-phased sweep's total simulation
	// cost against a scalar one — the runs' own wall no longer carries the
	// warm-up the passes pre-paid.
	LaneWall time.Duration
}

// flight is one singleflight cache entry: the first requester of a key
// installs it and simulates; later requesters block on done.
type flight struct {
	done chan struct{}
	res  tlc.Result
	// sres carries the confidence intervals when the suite runs sampled;
	// sres.Result == res in that mode.
	sres tlc.SampledResult
	err  error
}

type runKey struct {
	d     tlc.Design
	bench string
}

// NewSuite builds a suite with the given run options. The suite chains its
// own metrics aggregation onto opt.OnMetrics: every executed run's registry
// snapshot is retained (RunMetrics) and its counters summed into a
// grid-wide total (AggregatedCounters); a caller-supplied hook still fires
// afterwards.
func NewSuite(opt tlc.Options) *Suite {
	s := &Suite{
		cache:      make(map[runKey]*flight),
		runMetrics: make(map[runKey]tlc.MetricsSnapshot),
		agg:        make(map[string]uint64),
	}
	user := opt.OnMetrics
	opt.OnMetrics = func(ev tlc.MetricsEvent) {
		s.recordMetrics(ev)
		if user != nil {
			user(ev)
		}
	}
	s.Opt = opt
	return s
}

// recordMetrics folds one finished run's snapshot into the suite.
func (s *Suite) recordMetrics(ev tlc.MetricsEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.runMetrics[runKey{ev.Design, ev.Benchmark}] = ev.Snapshot
	for name, v := range ev.Snapshot.Counters() {
		s.agg[name] += v
	}
}

// RunMetrics returns the full registry snapshot of the (design, benchmark)
// run, if it has executed. The snapshot is safe to retain and read
// concurrently with further runs.
func (s *Suite) RunMetrics(d tlc.Design, bench string) (tlc.MetricsSnapshot, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap, ok := s.runMetrics[runKey{d, bench}]
	return snap, ok
}

// AggregatedCounters returns a copy of every counter summed across all
// executed runs — grid-wide totals like l2.misses or noc.spine.flits.
func (s *Suite) AggregatedCounters() map[string]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]uint64, len(s.agg))
	for k, v := range s.agg {
		out[k] = v
	}
	return out
}

// Default returns a suite at the standard scaled run length.
func Default() *Suite { return NewSuite(tlc.DefaultOptions()) }

// Run returns the cached result for (design, benchmark), simulating on
// first use. It panics on an unknown benchmark name — table builders only
// pass names from tlc.Benchmarks(); use RunErr for error propagation.
func (s *Suite) Run(d tlc.Design, bench string) tlc.Result {
	r, err := s.RunErr(d, bench)
	if err != nil {
		panic(err)
	}
	return r
}

// Sampled reports whether the suite runs in sampled mode — uniform
// intervals or phase-aware representatives (confidence intervals available
// via SampledErr, error columns added to figures).
func (s *Suite) Sampled() bool {
	return s.Opt.SampleIntervals > 0 || s.Opt.PhaseWindows > 0 || s.Opt.PhaseClusters > 0
}

// SampledErr returns the sampled result for (design, benchmark), including
// its confidence intervals. The suite must be in sampled mode.
func (s *Suite) SampledErr(d tlc.Design, bench string) (tlc.SampledResult, error) {
	if !s.Sampled() {
		return tlc.SampledResult{}, fmt.Errorf("experiments: suite is not in sampled mode")
	}
	f, err := s.run(d, bench)
	if err != nil {
		return tlc.SampledResult{}, err
	}
	return f.sres, nil
}

// SampledCtx is SampledErr bounded by a context, with RunCtx's
// cancellation and eviction semantics. The suite must be in sampled mode.
func (s *Suite) SampledCtx(ctx context.Context, d tlc.Design, bench string) (tlc.SampledResult, error) {
	if !s.Sampled() {
		return tlc.SampledResult{}, fmt.Errorf("experiments: suite is not in sampled mode")
	}
	f, err := s.runCtx(ctx, d, bench)
	if err != nil {
		return tlc.SampledResult{}, err
	}
	return f.sres, nil
}

// sampled is SampledErr with the Run panic contract, for figure builders.
func (s *Suite) sampled(d tlc.Design, bench string) tlc.SampledResult {
	r, err := s.SampledErr(d, bench)
	if err != nil {
		panic(err)
	}
	return r
}

// RunErr is Run with error propagation instead of panic.
func (s *Suite) RunErr(d tlc.Design, bench string) (tlc.Result, error) {
	f, err := s.run(d, bench)
	if err != nil {
		return tlc.Result{}, err
	}
	return f.res, nil
}

// RunCtx is RunErr bounded by a context: the executing simulation polls ctx
// at batch boundaries (through tlc.Options.Cancel), and a request that
// joins an in-flight simulation of the same key stops waiting when its own
// ctx ends. A flight aborted by cancellation is evicted from the cache —
// cancellation is a property of the requests that happened to be waiting,
// not of the (design, benchmark) key — so a later request re-simulates
// instead of inheriting the cancelled flight's error.
func (s *Suite) RunCtx(ctx context.Context, d tlc.Design, bench string) (tlc.Result, error) {
	f, err := s.runCtx(ctx, d, bench)
	if err != nil {
		return tlc.Result{}, err
	}
	return f.res, nil
}

// run is the singleflight core shared by RunErr and SampledErr.
func (s *Suite) run(d tlc.Design, bench string) (*flight, error) {
	return s.runCtx(context.Background(), d, bench)
}

// runCtx installs or joins the key's flight. Joiners whose flight ends in
// another request's cancellation retry with their own (still live) context.
func (s *Suite) runCtx(ctx context.Context, d tlc.Design, bench string) (*flight, error) {
	key := runKey{d, bench}
	for {
		s.mu.Lock()
		if f, ok := s.cache[key]; ok {
			s.m.CacheHits++
			s.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if isCancellation(f.err) && ctx.Err() == nil {
				// The executing requester was cancelled after we joined; the
				// flight has been evicted. Re-run under our own context.
				continue
			}
			return f, f.err
		}
		f := &flight{done: make(chan struct{})}
		s.cache[key] = f
		s.mu.Unlock()
		s.execute(ctx, key, f)
		return f, f.err
	}
}

// execute runs one simulation in the caller's goroutine, fills the flight,
// and wakes its waiters. Cancelled flights are evicted before the wake-up,
// so retrying waiters never rejoin a dead flight.
func (s *Suite) execute(ctx context.Context, key runKey, f *flight) {
	opt := s.Opt
	if ctx.Done() != nil {
		user := opt.Cancel
		opt.Cancel = func() error {
			if err := ctx.Err(); err != nil {
				return err
			}
			if user != nil {
				return user()
			}
			return nil
		}
	}
	start := time.Now()
	if s.Sampled() {
		f.sres, f.err = tlc.RunSampled(key.d, key.bench, opt)
		f.res = f.sres.Result
	} else {
		f.res, f.err = tlc.Run(key.d, key.bench, opt)
	}
	wall := time.Since(start)

	s.mu.Lock()
	if isCancellation(f.err) && s.cache[key] == f {
		delete(s.cache, key)
	}
	s.m.Simulated++
	s.m.SimWall += wall
	s.mu.Unlock()
	close(f.done)
	if s.OnRun != nil {
		s.OnRun(RunEvent{Design: key.d, Benchmark: key.bench, Wall: wall, Result: f.res, Err: f.err})
	}
}

// isCancellation reports whether err stems from context cancellation or an
// expired deadline (tlc wraps the context error, so errors.Is sees it).
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Seed installs an already-computed result for (d, bench), making later
// table and figure builds of that key pure cache lookups. The tlcd server
// uses it to replay records from its content-addressed result cache into a
// fresh (or LRU-rebuilt) suite without re-simulating. A key that is already
// cached or in flight is left alone. sres carries the confidence intervals
// when the suite runs sampled; it may be nil otherwise.
func (s *Suite) Seed(d tlc.Design, bench string, res tlc.Result, sres *tlc.SampledResult) {
	f := &flight{done: make(chan struct{}), res: res}
	if sres != nil {
		f.sres = *sres
	}
	close(f.done)
	key := runKey{d, bench}
	s.mu.Lock()
	if _, ok := s.cache[key]; !ok {
		s.cache[key] = f
	}
	s.mu.Unlock()
}

// Metrics reports a snapshot of the suite's cache and timing counters.
func (s *Suite) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m
}

// RunAll simulates the full design x benchmark grid, bounded by par
// workers, and returns the first error encountered (concurrently failing
// runs report one of them). Results land in the cache, so subsequent table
// builds are pure lookups; on error the remaining grid is still attempted,
// keeping the cache state independent of error ordering.
func (s *Suite) RunAll(designs []tlc.Design, benches []string, par int) error {
	if par < 1 {
		par = 1
	}
	// Lane phase: pay each benchmark's warm-up once for all designs through
	// a shared stream, so the workers below restore checkpoints instead of
	// re-warming per point. Purely an accelerator — results are pinned
	// bit-identical to scalar warm-up — and a no-op without a checkpoint
	// store.
	points := make([]GridPoint, 0, len(designs)*len(benches))
	for _, d := range designs {
		for _, b := range benches {
			points = append(points, GridPoint{Design: d, Bench: b, Opt: s.Opt})
		}
	}
	s.warmLanes(points, par)
	type job struct {
		d tlc.Design
		b string
	}
	jobs := make(chan job)
	errs := make(chan error, par)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var first error
			for j := range jobs {
				if _, err := s.RunErr(j.d, j.b); err != nil && first == nil {
					first = err
				}
			}
			errs <- first
		}()
	}
	for _, d := range designs {
		for _, b := range benches {
			jobs <- job{d, b}
		}
	}
	close(jobs)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Prefetch runs the given design/benchmark grid concurrently, bounded by
// par workers, so subsequent table builds hit the cache. It is RunAll with
// the legacy panic-on-error contract.
func (s *Suite) Prefetch(designs []tlc.Design, benches []string, par int) {
	if err := s.RunAll(designs, benches, par); err != nil {
		panic(err)
	}
}

// Table1 reproduces Table 1 plus the physical quantities the paper's
// HSPICE study validates: extracted Z0, flight time, received amplitude,
// and pulse width, with the two acceptance criteria.
func Table1() *report.Table {
	t := report.NewTable("Table 1: Transmission Line Dimensions and Signal Integrity",
		"Length", "W (um)", "S (um)", "H (um)", "T (um)", "Z0 (ohm)", "Flight (ps)", "Amplitude (xVdd)", "Pulse (ps)", "OK")
	for _, rep := range tlc.AnalyzeLines() {
		g := rep.Geometry
		t.AddRow(fmt.Sprintf("%.1f cm", g.LengthCM), g.WidthUM, g.SpacingUM, g.HeightUM, g.ThicknessUM,
			rep.RLC.Z0, rep.FlightPs, rep.AmplitudeFrac, rep.PulseWidthPs, fmt.Sprintf("%v", rep.OK))
	}
	return t
}

// Table2 reproduces the design-parameter table.
func Table2() *report.Table {
	t := report.NewTable("Table 2: Design Parameters",
		"Design", "Banks", "Banks/Block", "Bank Size", "Lines/Pair", "Total Lines", "Uncontended Latency", "Bank Access")
	for _, d := range tlc.Designs() {
		min, max := tlc.UncontendedRange(d)
		lat := fmt.Sprintf("%d - %d cycles", min, max)
		if min == max {
			lat = fmt.Sprintf("%d cycles", min)
		}
		switch d {
		case tlc.DesignSNUCA2, tlc.DesignDNUCA:
			p := config.NUCAFor(d)
			t.AddRow(d.String(), p.Banks, 1, fmt.Sprintf("%d KB", p.BankBytes/1024),
				"n/a", "n/a", lat, fmt.Sprintf("%d cycles", p.BankAccess))
		default:
			p := config.TLCFor(d)
			t.AddRow(d.String(), p.Banks, p.BanksPerBlock, fmt.Sprintf("%d KB", p.BankBytes/1024),
				p.LinesPerPair, p.TotalLines(), lat, fmt.Sprintf("%d cycles", p.BankAccess))
		}
	}
	return t
}

// Table6 reproduces the benchmark-characteristics table.
func (s *Suite) Table6() *report.Table {
	t := report.NewTable("Table 6: Benchmark Characteristics",
		"Bench", "L2 Req/1K", "TLC miss/1K", "DNUCA miss/1K", "DNUCA close%", "DNUCA prom/ins", "TLC pred%", "DNUCA pred%")
	for _, b := range tlc.Benchmarks() {
		tr := s.Run(tlc.DesignTLC, b)
		dr := s.Run(tlc.DesignDNUCA, b)
		reqPer1K := float64(tr.L2Loads+tr.L2Stores) / float64(tr.Instructions) * 1000
		t.AddRow(b, reqPer1K, tr.MissesPer1K, dr.MissesPer1K, dr.CloseHitPct,
			dr.PromotesPerInsert, tr.PredictablePct, dr.PredictablePct)
	}
	return t
}

// Table7 reproduces the substrate-area table.
func Table7() *report.Table {
	t := report.NewTable("Table 7: Consumed Substrate Area",
		"Design", "Storage (mm2)", "Channel (mm2)", "Controller (mm2)", "Total (mm2)")
	for _, d := range []tlc.Design{tlc.DesignDNUCA, tlc.DesignTLC, tlc.DesignSNUCA2,
		tlc.DesignTLCOpt1000, tlc.DesignTLCOpt500, tlc.DesignTLCOpt350} {
		a := tlc.Area(d)
		t.AddRow(d.String(), a.StorageMM2, a.ChannelMM2, a.ControlMM2, a.TotalMM2())
	}
	return t
}

// Table8 reproduces the network-transistor table.
func Table8() *report.Table {
	t := report.NewTable("Table 8: Cache Communication Network Characteristics",
		"Design", "Total Transistors", "Total Gate Width (Mlambda)")
	for _, d := range []tlc.Design{tlc.DesignDNUCA, tlc.DesignTLC} {
		n := tlc.Transistors(d)
		t.AddRow(d.String(), fmt.Sprintf("%.2g", float64(n.Count)), n.GateWidthLambda/1e6)
	}
	return t
}

// Table9 reproduces the dynamic-power table.
func (s *Suite) Table9() *report.Table {
	t := report.NewTable("Table 9: Dynamic Components",
		"Bench", "DNUCA banks/req", "TLC banks/req", "DNUCA power (mW)", "TLC power (mW)")
	for _, b := range tlc.Benchmarks() {
		dr := s.Run(tlc.DesignDNUCA, b)
		tr := s.Run(tlc.DesignTLC, b)
		t.AddRow(b, dr.BanksPerRequest, tr.BanksPerRequest,
			dr.NetworkPowerW*1000, tr.NetworkPowerW*1000)
	}
	return t
}

// Figure3 reproduces the cross-sectional comparison's headline: repeated
// conventional-wire delay versus transmission-line delay over distance.
func Figure3() *report.Table {
	t := report.NewTable("Figure 3 (companion): RC wire vs transmission line delay",
		"Length (mm)", "Bare RC (ps)", "Repeated RC (ps)", "Transmission line (ps)", "TL speedup")
	gw := wire.Global45()
	tg := tline.Table1()[2] // widest line class
	rl := tline.Extract(tg)
	for _, mm := range []float64{1, 2, 5, 9, 11, 13, 20} {
		bare := wire.UnrepeatedDelayPs(gw, mm)
		rep := wire.Repeat(gw, mm).DelayPs
		tl := mm * 1e-3 / rl.Velocity * 1e12
		t.AddRow(mm, bare, rep, tl, rep/tl)
	}
	return t
}

// execSeries builds normalized execution time for the given designs,
// normalized to SNUCA2 (Figures 5 and 8). In sampled mode each design gets
// a companion "± " series: the 95% confidence half-width of its normalized
// value, from per-interval CPI variation (the baseline's own uncertainty is
// not propagated — the columns bound each design's estimate, not the
// ratio's joint distribution).
func (s *Suite) execSeries(designs []tlc.Design) *report.Figure {
	benches := tlc.Benchmarks()
	f := report.NewFigure("", benches)
	base := make([]float64, len(benches))
	for i, b := range benches {
		base[i] = float64(s.Run(tlc.DesignSNUCA2, b).Cycles)
	}
	for _, d := range designs {
		vals := make([]float64, len(benches))
		errs := make([]float64, len(benches))
		for i, b := range benches {
			if s.Sampled() {
				r := s.sampled(d, b)
				vals[i] = float64(r.Cycles) / base[i]
				errs[i] = r.CyclesCI / base[i]
			} else {
				vals[i] = float64(s.Run(d, b).Cycles) / base[i]
			}
		}
		f.AddSeries(d.String(), vals)
		if s.Sampled() {
			f.AddSeries("± "+d.String(), errs)
		}
	}
	return f
}

// Figure5 reproduces the normalized execution time comparison.
func (s *Suite) Figure5() *report.Figure {
	f := s.execSeries([]tlc.Design{tlc.DesignDNUCA, tlc.DesignTLC})
	f.Title = "Figure 5: Normalized Execution Time (SNUCA2 = 1.0)"
	return f
}

// Figure6 reproduces the mean cache lookup latency comparison.
func (s *Suite) Figure6() *report.Figure {
	benches := tlc.Benchmarks()
	f := report.NewFigure("Figure 6: Mean Cache Lookup Latency (cycles)", benches)
	for _, d := range []tlc.Design{tlc.DesignDNUCA, tlc.DesignTLC} {
		vals := make([]float64, len(benches))
		errs := make([]float64, len(benches))
		for i, b := range benches {
			if s.Sampled() {
				r := s.sampled(d, b)
				vals[i] = r.MeanLookup
				errs[i] = r.MeanLookupCI
			} else {
				vals[i] = s.Run(d, b).MeanLookup
			}
		}
		f.AddSeries(d.String(), vals)
		if s.Sampled() {
			f.AddSeries("± "+d.String(), errs)
		}
	}
	return f
}

// Figure7 reproduces the TLC-family link utilization comparison.
func (s *Suite) Figure7() *report.Figure {
	benches := tlc.Benchmarks()
	f := report.NewFigure("Figure 7: TLC Average Link Utilization (%)", benches)
	for _, d := range tlc.TLCFamily() {
		vals := make([]float64, len(benches))
		for i, b := range benches {
			vals[i] = s.Run(d, b).LinkUtilization * 100
		}
		f.AddSeries(d.String(), vals)
	}
	return f
}

// Figure8 reproduces the TLC-family normalized execution time comparison.
func (s *Suite) Figure8() *report.Figure {
	f := s.execSeries(tlc.TLCFamily())
	f.Title = "Figure 8: TLC Family Normalized Execution Time (SNUCA2 = 1.0)"
	return f
}
