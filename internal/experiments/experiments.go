// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6) from the simulation stack: the per-experiment
// index in DESIGN.md maps each function here to its table or figure.
// Simulation results are cached per (design, benchmark) within a Suite so
// tables that share runs (Table 6, Table 9, Figures 5-8) pay for each run
// once.
package experiments

import (
	"fmt"
	"sync"

	"tlc"
	"tlc/internal/config"
	"tlc/internal/report"
	"tlc/internal/tline"
	"tlc/internal/wire"
)

// Suite caches simulation runs for one Options setting.
type Suite struct {
	Opt tlc.Options

	mu    sync.Mutex
	cache map[runKey]tlc.Result
}

type runKey struct {
	d     tlc.Design
	bench string
}

// NewSuite builds a suite with the given run options.
func NewSuite(opt tlc.Options) *Suite {
	return &Suite{Opt: opt, cache: make(map[runKey]tlc.Result)}
}

// Default returns a suite at the standard scaled run length.
func Default() *Suite { return NewSuite(tlc.DefaultOptions()) }

// Run returns the cached result for (design, benchmark), simulating on
// first use. Runs for distinct keys may proceed concurrently via RunAll.
func (s *Suite) Run(d tlc.Design, bench string) tlc.Result {
	key := runKey{d, bench}
	s.mu.Lock()
	if r, ok := s.cache[key]; ok {
		s.mu.Unlock()
		return r
	}
	s.mu.Unlock()
	r, err := tlc.Run(d, bench, s.Opt)
	if err != nil {
		panic(err) // benchmarks come from tlc.Benchmarks(); unknown = bug
	}
	s.mu.Lock()
	s.cache[key] = r
	s.mu.Unlock()
	return r
}

// Prefetch runs the given design/benchmark grid concurrently, bounded by
// par workers, so subsequent table builds hit the cache.
func (s *Suite) Prefetch(designs []tlc.Design, benches []string, par int) {
	if par < 1 {
		par = 1
	}
	type job struct {
		d tlc.Design
		b string
	}
	jobs := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				s.Run(j.d, j.b)
			}
		}()
	}
	for _, d := range designs {
		for _, b := range benches {
			jobs <- job{d, b}
		}
	}
	close(jobs)
	wg.Wait()
}

// Table1 reproduces Table 1 plus the physical quantities the paper's
// HSPICE study validates: extracted Z0, flight time, received amplitude,
// and pulse width, with the two acceptance criteria.
func Table1() *report.Table {
	t := report.NewTable("Table 1: Transmission Line Dimensions and Signal Integrity",
		"Length", "W (um)", "S (um)", "H (um)", "T (um)", "Z0 (ohm)", "Flight (ps)", "Amplitude (xVdd)", "Pulse (ps)", "OK")
	for _, rep := range tlc.AnalyzeLines() {
		g := rep.Geometry
		t.AddRow(fmt.Sprintf("%.1f cm", g.LengthCM), g.WidthUM, g.SpacingUM, g.HeightUM, g.ThicknessUM,
			rep.RLC.Z0, rep.FlightPs, rep.AmplitudeFrac, rep.PulseWidthPs, fmt.Sprintf("%v", rep.OK))
	}
	return t
}

// Table2 reproduces the design-parameter table.
func Table2() *report.Table {
	t := report.NewTable("Table 2: Design Parameters",
		"Design", "Banks", "Banks/Block", "Bank Size", "Lines/Pair", "Total Lines", "Uncontended Latency", "Bank Access")
	for _, d := range tlc.Designs() {
		min, max := tlc.UncontendedRange(d)
		lat := fmt.Sprintf("%d - %d cycles", min, max)
		if min == max {
			lat = fmt.Sprintf("%d cycles", min)
		}
		switch d {
		case tlc.DesignSNUCA2, tlc.DesignDNUCA:
			p := config.NUCAFor(d)
			t.AddRow(d.String(), p.Banks, 1, fmt.Sprintf("%d KB", p.BankBytes/1024),
				"n/a", "n/a", lat, fmt.Sprintf("%d cycles", p.BankAccess))
		default:
			p := config.TLCFor(d)
			t.AddRow(d.String(), p.Banks, p.BanksPerBlock, fmt.Sprintf("%d KB", p.BankBytes/1024),
				p.LinesPerPair, p.TotalLines(), lat, fmt.Sprintf("%d cycles", p.BankAccess))
		}
	}
	return t
}

// Table6 reproduces the benchmark-characteristics table.
func (s *Suite) Table6() *report.Table {
	t := report.NewTable("Table 6: Benchmark Characteristics",
		"Bench", "L2 Req/1K", "TLC miss/1K", "DNUCA miss/1K", "DNUCA close%", "DNUCA prom/ins", "TLC pred%", "DNUCA pred%")
	for _, b := range tlc.Benchmarks() {
		tr := s.Run(tlc.DesignTLC, b)
		dr := s.Run(tlc.DesignDNUCA, b)
		reqPer1K := float64(tr.L2Loads+tr.L2Stores) / float64(tr.Instructions) * 1000
		t.AddRow(b, reqPer1K, tr.MissesPer1K, dr.MissesPer1K, dr.CloseHitPct,
			dr.PromotesPerInsert, tr.PredictablePct, dr.PredictablePct)
	}
	return t
}

// Table7 reproduces the substrate-area table.
func Table7() *report.Table {
	t := report.NewTable("Table 7: Consumed Substrate Area",
		"Design", "Storage (mm2)", "Channel (mm2)", "Controller (mm2)", "Total (mm2)")
	for _, d := range []tlc.Design{tlc.DesignDNUCA, tlc.DesignTLC, tlc.DesignSNUCA2,
		tlc.DesignTLCOpt1000, tlc.DesignTLCOpt500, tlc.DesignTLCOpt350} {
		a := tlc.Area(d)
		t.AddRow(d.String(), a.StorageMM2, a.ChannelMM2, a.ControlMM2, a.TotalMM2())
	}
	return t
}

// Table8 reproduces the network-transistor table.
func Table8() *report.Table {
	t := report.NewTable("Table 8: Cache Communication Network Characteristics",
		"Design", "Total Transistors", "Total Gate Width (Mlambda)")
	for _, d := range []tlc.Design{tlc.DesignDNUCA, tlc.DesignTLC} {
		n := tlc.Transistors(d)
		t.AddRow(d.String(), fmt.Sprintf("%.2g", float64(n.Count)), n.GateWidthLambda/1e6)
	}
	return t
}

// Table9 reproduces the dynamic-power table.
func (s *Suite) Table9() *report.Table {
	t := report.NewTable("Table 9: Dynamic Components",
		"Bench", "DNUCA banks/req", "TLC banks/req", "DNUCA power (mW)", "TLC power (mW)")
	for _, b := range tlc.Benchmarks() {
		dr := s.Run(tlc.DesignDNUCA, b)
		tr := s.Run(tlc.DesignTLC, b)
		t.AddRow(b, dr.BanksPerRequest, tr.BanksPerRequest,
			dr.NetworkPowerW*1000, tr.NetworkPowerW*1000)
	}
	return t
}

// Figure3 reproduces the cross-sectional comparison's headline: repeated
// conventional-wire delay versus transmission-line delay over distance.
func Figure3() *report.Table {
	t := report.NewTable("Figure 3 (companion): RC wire vs transmission line delay",
		"Length (mm)", "Bare RC (ps)", "Repeated RC (ps)", "Transmission line (ps)", "TL speedup")
	gw := wire.Global45()
	tg := tline.Table1()[2] // widest line class
	rl := tline.Extract(tg)
	for _, mm := range []float64{1, 2, 5, 9, 11, 13, 20} {
		bare := wire.UnrepeatedDelayPs(gw, mm)
		rep := wire.Repeat(gw, mm).DelayPs
		tl := mm * 1e-3 / rl.Velocity * 1e12
		t.AddRow(mm, bare, rep, tl, rep/tl)
	}
	return t
}

// execSeries builds normalized execution time for the given designs,
// normalized to SNUCA2 (Figures 5 and 8).
func (s *Suite) execSeries(designs []tlc.Design) *report.Figure {
	benches := tlc.Benchmarks()
	f := report.NewFigure("", benches)
	base := make([]float64, len(benches))
	for i, b := range benches {
		base[i] = float64(s.Run(tlc.DesignSNUCA2, b).Cycles)
	}
	for _, d := range designs {
		vals := make([]float64, len(benches))
		for i, b := range benches {
			vals[i] = float64(s.Run(d, b).Cycles) / base[i]
		}
		f.AddSeries(d.String(), vals)
	}
	return f
}

// Figure5 reproduces the normalized execution time comparison.
func (s *Suite) Figure5() *report.Figure {
	f := s.execSeries([]tlc.Design{tlc.DesignDNUCA, tlc.DesignTLC})
	f.Title = "Figure 5: Normalized Execution Time (SNUCA2 = 1.0)"
	return f
}

// Figure6 reproduces the mean cache lookup latency comparison.
func (s *Suite) Figure6() *report.Figure {
	benches := tlc.Benchmarks()
	f := report.NewFigure("Figure 6: Mean Cache Lookup Latency (cycles)", benches)
	for _, d := range []tlc.Design{tlc.DesignDNUCA, tlc.DesignTLC} {
		vals := make([]float64, len(benches))
		for i, b := range benches {
			vals[i] = s.Run(d, b).MeanLookup
		}
		f.AddSeries(d.String(), vals)
	}
	return f
}

// Figure7 reproduces the TLC-family link utilization comparison.
func (s *Suite) Figure7() *report.Figure {
	benches := tlc.Benchmarks()
	f := report.NewFigure("Figure 7: TLC Average Link Utilization (%)", benches)
	for _, d := range tlc.TLCFamily() {
		vals := make([]float64, len(benches))
		for i, b := range benches {
			vals[i] = s.Run(d, b).LinkUtilization * 100
		}
		f.AddSeries(d.String(), vals)
	}
	return f
}

// Figure8 reproduces the TLC-family normalized execution time comparison.
func (s *Suite) Figure8() *report.Figure {
	f := s.execSeries(tlc.TLCFamily())
	f.Title = "Figure 8: TLC Family Normalized Execution Time (SNUCA2 = 1.0)"
	return f
}
