package experiments

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tlc"
)

// quickSuite keeps simulated experiments fast in tests.
func quickSuite() *Suite {
	return NewSuite(tlc.Options{WarmInstructions: 1_000_000, RunInstructions: 50_000, Seed: 1})
}

func TestStaticTablesRender(t *testing.T) {
	for name, fn := range map[string]func() string{
		"table1": func() string { return Table1().String() },
		"table2": func() string { return Table2().String() },
		"table7": func() string { return Table7().String() },
		"table8": func() string { return Table8().String() },
		"fig3":   func() string { return Figure3().String() },
	} {
		out := fn()
		if len(out) < 100 || !strings.Contains(out, "-") {
			t.Errorf("%s rendered implausibly: %q", name, out)
		}
	}
}

func TestTable1ContainsAllGeometries(t *testing.T) {
	out := Table1().String()
	for _, want := range []string{"0.9 cm", "1.1 cm", "1.3 cm", "true"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
}

func TestTable2ContainsAllDesigns(t *testing.T) {
	out := Table2().String()
	for _, d := range tlc.Designs() {
		if !strings.Contains(out, d.String()) {
			t.Errorf("Table 2 missing %v", d)
		}
	}
	if !strings.Contains(out, "2048") || !strings.Contains(out, "10 - 16 cycles") {
		t.Error("Table 2 missing base TLC parameters")
	}
}

// tinySuite is the smallest useful run, for concurrency-shape tests where
// simulation fidelity does not matter.
func tinySuite() *Suite {
	return NewSuite(tlc.Options{WarmInstructions: 10_000, RunInstructions: 5_000, Seed: 1})
}

// TestSingleflightDeduplicates is the regression test for the
// check-then-act race the pre-singleflight cache had: 8 concurrent callers
// of the same key must share one underlying simulation.
func TestSingleflightDeduplicates(t *testing.T) {
	s := tinySuite()
	var runs atomic.Uint64
	s.OnRun = func(RunEvent) { runs.Add(1) }

	const callers = 8
	var wg sync.WaitGroup
	results := make([]tlc.Result, callers)
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i] = s.Run(tlc.DesignTLC, "perl")
		}(i)
	}
	close(start)
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Fatalf("%d underlying runs for %d concurrent callers of one key, want 1", got, callers)
	}
	m := s.Metrics()
	if m.Simulated != 1 {
		t.Fatalf("Metrics.Simulated = %d, want 1", m.Simulated)
	}
	if m.CacheHits != callers-1 {
		t.Fatalf("Metrics.CacheHits = %d, want %d", m.CacheHits, callers-1)
	}
	if m.SimWall <= 0 {
		t.Fatal("Metrics.SimWall not recorded")
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d saw a different result", i)
		}
	}
}

func TestRunAllPropagatesErrors(t *testing.T) {
	s := tinySuite()
	err := s.RunAll([]tlc.Design{tlc.DesignTLC}, []string{"no-such-benchmark"}, 4)
	if err == nil {
		t.Fatal("RunAll swallowed the unknown-benchmark error")
	}
	if !strings.Contains(err.Error(), "no-such-benchmark") {
		t.Fatalf("error %q does not name the benchmark", err)
	}
	// The error is cached like any result: a retry must not panic and must
	// report the same failure.
	if _, err2 := s.RunErr(tlc.DesignTLC, "no-such-benchmark"); err2 == nil {
		t.Fatal("cached error lost on retry")
	}
}

// TestRunAllMatchesSerial is the determinism guarantee behind the -par
// flags: a parallel grid must produce exactly the results of serial runs.
func TestRunAllMatchesSerial(t *testing.T) {
	designs := []tlc.Design{tlc.DesignTLC, tlc.DesignSNUCA2}
	benches := []string{"perl", "oltp"}

	serial := tinySuite()
	want := make(map[string]tlc.Result)
	for _, d := range designs {
		for _, b := range benches {
			want[d.String()+"/"+b] = serial.Run(d, b)
		}
	}

	parallel := tinySuite()
	if err := parallel.RunAll(designs, benches, 4); err != nil {
		t.Fatal(err)
	}
	for _, d := range designs {
		for _, b := range benches {
			if got := parallel.Run(d, b); got != want[d.String()+"/"+b] {
				t.Fatalf("%v/%s diverged between serial and parallel runs", d, b)
			}
		}
	}
	if m := parallel.Metrics(); m.Simulated != uint64(len(designs)*len(benches)) {
		t.Fatalf("parallel grid simulated %d runs, want %d", m.Simulated, len(designs)*len(benches))
	}
}

// TestConcurrentMixedCallers drives Run, RunErr, RunAll, and Metrics from
// many goroutines at once; its value is being -race-clean.
func TestConcurrentMixedCallers(t *testing.T) {
	s := tinySuite()
	s.OnRun = func(RunEvent) {} // exercise the hook path concurrently
	designs := []tlc.Design{tlc.DesignTLC, tlc.DesignSNUCA2}
	benches := []string{"perl", "oltp"}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				if err := s.RunAll(designs, benches, 2); err != nil {
					t.Error(err)
				}
			} else {
				for _, b := range benches {
					s.Run(designs[i%len(designs)], b)
				}
			}
			s.Metrics()
		}(i)
	}
	wg.Wait()
	if m := s.Metrics(); m.Simulated != 4 {
		t.Fatalf("%d underlying runs, want 4 (one per grid key)", m.Simulated)
	}
}

// TestRunCtxCancelledBeforeStart: a dead context aborts the run promptly
// (the cancellation hook fires at the first batch boundary) and — the
// eviction guarantee — does not poison the key: a later uncancelled request
// simulates and succeeds.
func TestRunCtxCancelledBeforeStart(t *testing.T) {
	s := tinySuite()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.RunCtx(ctx, tlc.DesignTLC, "perl")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx under a cancelled context = %v, want context.Canceled", err)
	}
	if _, err := s.RunCtx(context.Background(), tlc.DesignTLC, "perl"); err != nil {
		t.Fatalf("key poisoned by cancelled flight: %v", err)
	}
	if m := s.Metrics(); m.Simulated != 2 {
		t.Fatalf("Simulated = %d, want 2 (the aborted attempt and the retry)", m.Simulated)
	}
}

// TestRunCtxDeadline: an already-expired deadline yields DeadlineExceeded.
func TestRunCtxDeadline(t *testing.T) {
	s := tinySuite()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := s.RunCtx(ctx, tlc.DesignTLC, "perl")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunCtx past deadline = %v, want context.DeadlineExceeded", err)
	}
}

// TestRunCtxWaiterOutlivesCancelledExecutor: a waiter with a live context
// that joined a flight whose executor got cancelled must transparently
// re-run rather than inherit the executor's cancellation error.
func TestRunCtxWaiterOutlivesCancelledExecutor(t *testing.T) {
	s := tinySuite()
	execCtx, cancelExec := context.WithCancel(context.Background())

	started := make(chan struct{})
	var once sync.Once
	s.OnRun = func(RunEvent) { once.Do(func() { close(started) }) }

	// The executor starts first and is cancelled mid-run; OnRun fires when
	// its (aborted) attempt finishes. A best-effort schedule: if the tiny
	// run completes before cancel lands, the waiter simply joins a healthy
	// flight — the assertions below hold either way.
	errc := make(chan error, 1)
	go func() {
		_, err := s.RunCtx(execCtx, tlc.DesignSNUCA2, "oltp")
		errc <- err
	}()
	cancelExec()
	<-errc

	if res, err := s.RunCtx(context.Background(), tlc.DesignSNUCA2, "oltp"); err != nil {
		t.Fatalf("waiter with live context got %v, want a result", err)
	} else if res.Cycles == 0 {
		t.Fatal("waiter got a zero result")
	}
	select {
	case <-started:
	default:
		t.Fatal("OnRun never fired")
	}
}

func TestRunCaching(t *testing.T) {
	s := quickSuite()
	a := s.Run(tlc.DesignTLC, "perl")
	b := s.Run(tlc.DesignTLC, "perl")
	if a != b {
		t.Fatal("cache returned a different result")
	}
}

func TestPrefetchFillsCache(t *testing.T) {
	s := quickSuite()
	benches := []string{"perl", "oltp"}
	s.Prefetch([]tlc.Design{tlc.DesignTLC}, benches, 2)
	s.mu.Lock()
	n := len(s.cache)
	s.mu.Unlock()
	if n != 2 {
		t.Fatalf("%d cached runs, want 2", n)
	}
}

func TestSimulatedExperimentsRender(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated experiments are slow")
	}
	s := quickSuite()
	t6 := s.Table6().String()
	for _, b := range tlc.Benchmarks() {
		if !strings.Contains(t6, b) {
			t.Errorf("Table 6 missing %s", b)
		}
	}
	f5 := s.Figure5()
	if len(f5.Series) != 2 || len(f5.Series[0].Values) != 12 {
		t.Fatal("Figure 5 series malformed")
	}
	for _, v := range f5.Series[1].Values { // TLC normalized exec
		if v <= 0.3 || v > 1.5 {
			t.Errorf("normalized execution time %v implausible", v)
		}
	}
	f7 := s.Figure7()
	if len(f7.Series) != 4 {
		t.Fatal("Figure 7 should cover the four TLC designs")
	}
	// Figure 7's headline: base TLC utilization stays low everywhere.
	for _, v := range f7.Series[0].Values {
		if v > 15 {
			t.Errorf("base TLC utilization %v%% too high", v)
		}
	}
	f8 := s.Figure8()
	if len(f8.Series) != 4 {
		t.Fatal("Figure 8 should cover the four TLC designs")
	}
	t9 := s.Table9().String()
	if !strings.Contains(t9, "mW") {
		t.Error("Table 9 missing power columns")
	}
}
