package experiments

import (
	"strings"
	"testing"

	"tlc"
)

// quickSuite keeps simulated experiments fast in tests.
func quickSuite() *Suite {
	return NewSuite(tlc.Options{WarmInstructions: 1_000_000, RunInstructions: 50_000, Seed: 1})
}

func TestStaticTablesRender(t *testing.T) {
	for name, fn := range map[string]func() string{
		"table1": func() string { return Table1().String() },
		"table2": func() string { return Table2().String() },
		"table7": func() string { return Table7().String() },
		"table8": func() string { return Table8().String() },
		"fig3":   func() string { return Figure3().String() },
	} {
		out := fn()
		if len(out) < 100 || !strings.Contains(out, "-") {
			t.Errorf("%s rendered implausibly: %q", name, out)
		}
	}
}

func TestTable1ContainsAllGeometries(t *testing.T) {
	out := Table1().String()
	for _, want := range []string{"0.9 cm", "1.1 cm", "1.3 cm", "true"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
}

func TestTable2ContainsAllDesigns(t *testing.T) {
	out := Table2().String()
	for _, d := range tlc.Designs() {
		if !strings.Contains(out, d.String()) {
			t.Errorf("Table 2 missing %v", d)
		}
	}
	if !strings.Contains(out, "2048") || !strings.Contains(out, "10 - 16 cycles") {
		t.Error("Table 2 missing base TLC parameters")
	}
}

func TestRunCaching(t *testing.T) {
	s := quickSuite()
	a := s.Run(tlc.DesignTLC, "perl")
	b := s.Run(tlc.DesignTLC, "perl")
	if a != b {
		t.Fatal("cache returned a different result")
	}
}

func TestPrefetchFillsCache(t *testing.T) {
	s := quickSuite()
	benches := []string{"perl", "oltp"}
	s.Prefetch([]tlc.Design{tlc.DesignTLC}, benches, 2)
	s.mu.Lock()
	n := len(s.cache)
	s.mu.Unlock()
	if n != 2 {
		t.Fatalf("%d cached runs, want 2", n)
	}
}

func TestSimulatedExperimentsRender(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated experiments are slow")
	}
	s := quickSuite()
	t6 := s.Table6().String()
	for _, b := range tlc.Benchmarks() {
		if !strings.Contains(t6, b) {
			t.Errorf("Table 6 missing %s", b)
		}
	}
	f5 := s.Figure5()
	if len(f5.Series) != 2 || len(f5.Series[0].Values) != 12 {
		t.Fatal("Figure 5 series malformed")
	}
	for _, v := range f5.Series[1].Values { // TLC normalized exec
		if v <= 0.3 || v > 1.5 {
			t.Errorf("normalized execution time %v implausible", v)
		}
	}
	f7 := s.Figure7()
	if len(f7.Series) != 4 {
		t.Fatal("Figure 7 should cover the four TLC designs")
	}
	// Figure 7's headline: base TLC utilization stays low everywhere.
	for _, v := range f7.Series[0].Values {
		if v > 15 {
			t.Errorf("base TLC utilization %v%% too high", v)
		}
	}
	f8 := s.Figure8()
	if len(f8.Series) != 4 {
		t.Fatal("Figure 8 should cover the four TLC designs")
	}
	t9 := s.Table9().String()
	if !strings.Contains(t9, "mW") {
		t.Error("Table 9 missing power columns")
	}
}
