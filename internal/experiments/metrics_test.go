package experiments

import (
	"sync"
	"sync/atomic"
	"testing"

	"tlc"
)

// TestSuiteAggregatesRunMetrics is the satellite check on the metrics spine
// at the suite layer: every executed run contributes its full registry
// snapshot exactly once, counters sum across the grid, and cached duplicate
// runs do not re-fire the hook or double-count.
func TestSuiteAggregatesRunMetrics(t *testing.T) {
	var fired atomic.Uint64
	opt := tlc.Options{WarmInstructions: 10_000, RunInstructions: 5_000, Seed: 1}
	opt.OnMetrics = func(tlc.MetricsEvent) { fired.Add(1) } // user hook must chain
	s := NewSuite(opt)

	designs := []tlc.Design{tlc.DesignTLC, tlc.DesignSNUCA2, tlc.DesignDNUCA}
	benches := []string{"perl", "oltp"}
	if err := s.RunAll(designs, benches, 8); err != nil {
		t.Fatal(err)
	}

	if got, want := fired.Load(), uint64(len(designs)*len(benches)); got != want {
		t.Fatalf("user OnMetrics fired %d times, want %d", got, want)
	}

	// Every grid cell has a retained snapshot, and summing the per-run
	// counters by hand reproduces AggregatedCounters exactly.
	want := make(map[string]uint64)
	for _, d := range designs {
		for _, b := range benches {
			snap, ok := s.RunMetrics(d, b)
			if !ok {
				t.Fatalf("no metrics snapshot for %v/%s", d, b)
			}
			if len(snap) == 0 {
				t.Fatalf("empty metrics snapshot for %v/%s", d, b)
			}
			if v, ok := snap.Value("l2.loads"); !ok || v <= 0 {
				t.Fatalf("%v/%s snapshot missing l2.loads (got %v, %v)", d, b, v, ok)
			}
			for name, v := range snap.Counters() {
				want[name] += v
			}
		}
	}
	got := s.AggregatedCounters()
	if len(got) != len(want) {
		t.Fatalf("AggregatedCounters has %d names, want %d", len(got), len(want))
	}
	for name, w := range want {
		if got[name] != w {
			t.Errorf("aggregated %s = %d, want %d", name, got[name], w)
		}
	}

	// A repeat of the whole grid hits the cache: no new snapshots, no
	// double-counting, no extra hook firings.
	for _, d := range designs {
		for _, b := range benches {
			s.Run(d, b)
		}
	}
	if fired.Load() != uint64(len(designs)*len(benches)) {
		t.Fatal("cached runs re-fired OnMetrics")
	}
	again := s.AggregatedCounters()
	for name, w := range want {
		if again[name] != w {
			t.Errorf("cached re-run changed aggregated %s: %d -> %d", name, w, again[name])
		}
	}

	// A snapshot never observes a design-foreign metric: SNUCA2 runs must
	// not report DNUCA's close-hit counter.
	snap, _ := s.RunMetrics(tlc.DesignSNUCA2, "perl")
	if _, ok := snap.Value("l2.close_hits"); ok {
		t.Error("SNUCA2 snapshot reports DNUCA-only l2.close_hits")
	}
	snap, _ = s.RunMetrics(tlc.DesignDNUCA, "perl")
	if _, ok := snap.Value("l2.close_hits"); !ok {
		t.Error("DNUCA snapshot missing l2.close_hits")
	}
}

// TestSuiteMetricsConcurrentReaders races RunAll's worker goroutines against
// continuous RunMetrics/AggregatedCounters/Metrics readers; its value is
// being -race-clean while the aggregation mutates under the suite mutex.
func TestSuiteMetricsConcurrentReaders(t *testing.T) {
	s := NewSuite(tlc.Options{WarmInstructions: 10_000, RunInstructions: 5_000, Seed: 1})
	s.OnRun = func(RunEvent) { s.AggregatedCounters() } // reentrant-adjacent read path

	designs := []tlc.Design{tlc.DesignTLC, tlc.DesignSNUCA2}
	benches := []string{"perl", "oltp"}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 4; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.AggregatedCounters()
				s.Metrics()
				for _, d := range designs {
					for _, b := range benches {
						if snap, ok := s.RunMetrics(d, b); ok {
							snap.Value("l2.loads")
						}
					}
				}
			}
		}()
	}

	if err := s.RunAll(designs, benches, 8); err != nil {
		t.Fatal(err)
	}
	close(stop)
	readers.Wait()

	agg := s.AggregatedCounters()
	if agg["l2.loads"] == 0 {
		t.Fatal("aggregated l2.loads is zero after a full grid")
	}
}
