package nuca

import (
	"fmt"

	"tlc/internal/cache"
	"tlc/internal/l2"
)

// SNUCAState is the functional contents of a SNUCA cache: one array state
// per bank, in bank order. Exported for gob encoding by the checkpoint
// store.
type SNUCAState struct {
	Banks []cache.SetAssocState
}

// SnapshotState implements l2.Snapshotter.
func (s *SNUCA) SnapshotState() l2.State {
	st := SNUCAState{Banks: make([]cache.SetAssocState, len(s.banks))}
	for i, b := range s.banks {
		st.Banks[i] = b.Array.Snapshot()
	}
	return st
}

// RestoreState implements l2.Snapshotter.
func (s *SNUCA) RestoreState(state l2.State) error {
	st, ok := state.(SNUCAState)
	if !ok {
		return fmt.Errorf("nuca: restoring %T into SNUCA", state)
	}
	if len(st.Banks) != len(s.banks) {
		return fmt.Errorf("nuca: state has %d banks, SNUCA has %d", len(st.Banks), len(s.banks))
	}
	for i, b := range s.banks {
		if err := b.Array.Restore(st.Banks[i]); err != nil {
			return fmt.Errorf("nuca: bank %d: %w", i, err)
		}
	}
	return nil
}

// DNUCAState is the functional contents of a DNUCA cache: the per-column,
// per-row bank arrays plus the controller's partial-tag shadows (which must
// stay consistent with the arrays, so they are captured rather than
// rebuilt).
type DNUCAState struct {
	// Banks[col][row] mirrors the banks layout.
	Banks [][]cache.SetAssocState
	PTags []cache.PartialTagsState
}

// SnapshotState implements l2.Snapshotter.
func (d *DNUCA) SnapshotState() l2.State {
	st := DNUCAState{
		Banks: make([][]cache.SetAssocState, len(d.banks)),
		PTags: make([]cache.PartialTagsState, len(d.ptags)),
	}
	for c, col := range d.banks {
		st.Banks[c] = make([]cache.SetAssocState, len(col))
		for r, b := range col {
			st.Banks[c][r] = b.Array.Snapshot()
		}
	}
	for i, p := range d.ptags {
		st.PTags[i] = p.Snapshot()
	}
	return st
}

// RestoreState implements l2.Snapshotter.
func (d *DNUCA) RestoreState(state l2.State) error {
	st, ok := state.(DNUCAState)
	if !ok {
		return fmt.Errorf("nuca: restoring %T into DNUCA", state)
	}
	if len(st.Banks) != len(d.banks) || len(st.PTags) != len(d.ptags) {
		return fmt.Errorf("nuca: state has %d columns/%d ptags, DNUCA has %d/%d",
			len(st.Banks), len(st.PTags), len(d.banks), len(d.ptags))
	}
	for c, col := range d.banks {
		if len(st.Banks[c]) != len(col) {
			return fmt.Errorf("nuca: state column %d has %d rows, DNUCA has %d", c, len(st.Banks[c]), len(col))
		}
		for r, b := range col {
			if err := b.Array.Restore(st.Banks[c][r]); err != nil {
				return fmt.Errorf("nuca: bank %d/%d: %w", c, r, err)
			}
		}
	}
	for i, p := range d.ptags {
		if err := p.Restore(st.PTags[i]); err != nil {
			return fmt.Errorf("nuca: ptag %d: %w", i, err)
		}
	}
	return nil
}
