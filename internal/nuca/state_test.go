package nuca

import (
	"math/rand"
	"testing"

	"tlc/internal/l2"
	"tlc/internal/mem"
	"tlc/internal/sim"
)

// warmBlocks installs a pseudo-random working set functionally.
func warmBlocks(c l2.Cache, seed int64, n int) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		c.Warm(mem.Block(rng.Int63n(1 << 20)))
	}
}

// replayCompare drives both caches with an identical timed request stream
// and fails on the first diverging outcome.
func replayCompare(t *testing.T, a, b l2.Cache, seed int64, n int) {
	t.Helper()
	r1 := rand.New(rand.NewSource(seed))
	r2 := rand.New(rand.NewSource(seed))
	var at sim.Time
	for i := 0; i < n; i++ {
		at += sim.Time(r1.Intn(50))
		r2.Intn(50)
		req := mem.Request{Block: mem.Block(r1.Int63n(1 << 20)), Type: mem.Load}
		if r1.Intn(8) == 0 {
			req.Type = mem.Store
		}
		req2 := mem.Request{Block: mem.Block(r2.Int63n(1 << 20)), Type: mem.Load}
		if r2.Intn(8) == 0 {
			req2.Type = mem.Store
		}
		o1 := a.Access(at, req)
		o2 := b.Access(at, req2)
		if o1 != o2 {
			t.Fatalf("request %d: original %+v, restored %+v", i, o1, o2)
		}
	}
}

func TestSNUCASnapshotRoundTrip(t *testing.T) {
	orig := NewSNUCA(300)
	warmBlocks(orig, 1, 200_000)
	st := orig.SnapshotState()

	restored := NewSNUCA(300)
	if err := restored.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	replayCompare(t, orig, restored, 2, 50_000)
}

func TestSNUCASnapshotIsDeepCopy(t *testing.T) {
	orig := NewSNUCA(300)
	warmBlocks(orig, 3, 100_000)
	st := orig.SnapshotState()
	// Mutate the original heavily, then restore two fresh caches from the
	// same state: if the snapshot aliased the original, they would differ.
	warmBlocks(orig, 4, 100_000)
	a, b := NewSNUCA(300), NewSNUCA(300)
	if err := a.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	warmBlocks(a, 5, 100_000) // mutate a restored cache too
	if err := b.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	fresh := NewSNUCA(300)
	if err := fresh.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50_000; i++ {
		blk := mem.Block(rng.Int63n(1 << 20))
		if fresh.Contains(blk) != b.Contains(blk) {
			t.Fatal("snapshot state was mutated through an aliased restore")
		}
	}
}

func TestSNUCARestoreRejectsWrongType(t *testing.T) {
	if err := NewSNUCA(300).RestoreState(DNUCAState{}); err == nil {
		t.Fatal("SNUCA accepted a DNUCA state")
	}
}

func TestDNUCASnapshotRoundTrip(t *testing.T) {
	orig := NewDNUCA(300)
	warmBlocks(orig, 7, 200_000)
	st := orig.SnapshotState()

	restored := NewDNUCA(300)
	if err := restored.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	replayCompare(t, orig, restored, 8, 50_000)
}

func TestDNUCARestoreRejectsWrongType(t *testing.T) {
	if err := NewDNUCA(300).RestoreState(SNUCAState{}); err == nil {
		t.Fatal("DNUCA accepted a SNUCA state")
	}
}
