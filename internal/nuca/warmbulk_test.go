package nuca

import (
	"testing"

	"tlc/internal/l2"
	"tlc/internal/mem"
)

// TestWarmBulkMatchesWarm pins both NUCA designs' fused warm kernels to
// their scalar Warm paths: delivering a block sequence through WarmBulk must
// leave the cache bit-identical to per-block Warm calls, and allocate
// nothing at steady state.
func TestWarmBulkMatchesWarm(t *testing.T) {
	builds := []struct {
		name string
		mk   func() l2.Instrumented
	}{
		{"SNUCA2", func() l2.Instrumented { return NewSNUCA(testMemLat) }},
		{"DNUCA", func() l2.Instrumented { return NewDNUCA(testMemLat) }},
	}
	for _, tc := range builds {
		t.Run(tc.name, func(t *testing.T) {
			scalar := tc.mk()
			bulk := tc.mk().(l2.Warmer)
			blocks := make([]mem.Block, 4096)
			for i := range blocks {
				// A mix of conflicting and fresh blocks exercises eviction
				// and (for DNUCA) the insert-far placement scan.
				blocks[i] = mem.Block(uint64(i*37) % 1024)
			}
			for _, b := range blocks {
				scalar.Warm(b)
			}
			bulk.WarmBulk(blocks[:1000])
			bulk.WarmBulk(blocks[1000:])
			bc := bulk.(l2.Cache)
			for _, b := range blocks {
				if scalar.Contains(b) != bc.Contains(b) {
					t.Fatalf("%s: residency of %d diverges: scalar %v bulk %v",
						tc.name, b, scalar.Contains(b), bc.Contains(b))
				}
			}
			if allocs := testing.AllocsPerRun(20, func() { bulk.WarmBulk(blocks) }); allocs != 0 {
				t.Errorf("%s: WarmBulk allocates %.2f per call, want 0", tc.name, allocs)
			}
		})
	}
}
