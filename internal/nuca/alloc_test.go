package nuca

import (
	"testing"

	"tlc/internal/l2"
	"tlc/internal/mem"
	"tlc/internal/sim"
)

// TestAccessDoesNotAllocate pins both NUCA designs' Access hot path —
// including every registered metric's publication — at zero allocations per
// access. Metric publication is free by construction: layers increment the
// same plain fields they always did, and the registry reads them lazily
// through closures registered at build time. This pin is the proof.
func TestAccessDoesNotAllocate(t *testing.T) {
	builds := []struct {
		name string
		mk   func() l2.Instrumented
	}{
		{"SNUCA2", func() l2.Instrumented { return NewSNUCA(testMemLat) }},
		{"DNUCA", func() l2.Instrumented { return NewDNUCA(testMemLat) }},
	}
	for _, tc := range builds {
		t.Run(tc.name, func(t *testing.T) {
			c := tc.mk()
			// Warm a working set and run a burst so reusable buffers reach
			// steady-state capacity before measuring.
			blocks := make([]mem.Block, 256)
			for i := range blocks {
				blocks[i] = mem.Block(i * 65)
				c.Warm(blocks[i])
			}
			at := sim.Time(0)
			access := func() {
				for i, b := range blocks {
					typ := mem.Load
					if i%4 == 3 {
						typ = mem.Store
					}
					out := c.Access(at, mem.Request{Block: b, Type: typ})
					if out.CompleteAt > at {
						at = out.CompleteAt
					}
					at++
				}
				// A guaranteed miss exercises the fill and writeback paths.
				miss := mem.Block(0x7a7a7a + uint64(at))
				at = c.Access(at, mem.Request{Block: miss, Type: mem.Load}).CompleteAt + 1
			}
			// Warm-up bursts, outside the measurement: link and bank
			// calendars (sim.Resource) grow toward their steady-state
			// capacity as contention patterns repeat.
			for i := 0; i < 50; i++ {
				access()
			}
			if allocs := testing.AllocsPerRun(50, access); allocs != 0 {
				t.Errorf("%s: %.2f allocs per access burst, want 0", tc.name, allocs)
			}
		})
	}
}
