package nuca

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tlc/internal/mem"
	"tlc/internal/sim"
)

const testMemLat = 300

// mkBlock builds a block that maps to the given bank/group/column target
// under the FoldHash bank selection, with the given local id (which fixes
// set and tag).
func mkBlock(target int, local mem.Block, bits int) mem.Block {
	low := uint64(target) ^ mem.FoldHash(uint64(local), bits)
	return local<<uint(bits) | mem.Block(low)
}

func TestSNUCANominalRangeMatchesTable2(t *testing.T) {
	s := NewSNUCA(testMemLat)
	min, max := s.NominalRange()
	if min != 9 || max != 32 {
		t.Fatalf("SNUCA2 uncontended range %d-%d, want 9-32", min, max)
	}
}

func TestDNUCANominalRangeMatchesTable2(t *testing.T) {
	d := NewDNUCA(testMemLat)
	min, max := d.NominalRange()
	if min != 3 || max != 47 {
		t.Fatalf("DNUCA uncontended range %d-%d, want 3-47", min, max)
	}
}

func TestSNUCAMissThenHit(t *testing.T) {
	s := NewSNUCA(testMemLat)
	b := mem.Block(0x1234)
	out := s.Access(0, mem.Request{Block: b, Type: mem.Load})
	if out.Hit {
		t.Fatal("cold access hit")
	}
	delta := int64(out.CompleteAt) - int64(out.ResolveAt)
	if delta < testMemLat-16 || delta > testMemLat+16 {
		t.Fatalf("miss completion %d, want resolve+%d+/-16", out.CompleteAt, testMemLat)
	}
	if !s.Contains(b) {
		t.Fatal("fill did not install the block")
	}
	out2 := s.Access(out.CompleteAt+100, mem.Request{Block: b, Type: mem.Load})
	if !out2.Hit {
		t.Fatal("second access missed")
	}
	if out2.CompleteAt != out2.ResolveAt {
		t.Fatal("hit completion should equal resolution")
	}
}

func TestSNUCAHitLatencyIsNominalWhenUncontended(t *testing.T) {
	s := NewSNUCA(testMemLat)
	b := mem.Block(0x77)
	s.Warm(b)
	out := s.Access(1000, mem.Request{Block: b, Type: mem.Load})
	if !out.Hit {
		t.Fatal("warmed block missed")
	}
	if got := out.ResolveAt - 1000; got != s.Nominal(b) {
		t.Fatalf("uncontended hit latency %d, want nominal %d", got, s.Nominal(b))
	}
	if !out.Predictable {
		t.Fatal("uncontended hit should be predictable")
	}
}

func TestSNUCABankContentionBreaksPredictability(t *testing.T) {
	s := NewSNUCA(testMemLat)
	// Two blocks in the same bank (under the XOR bank hash), accessed
	// simultaneously: the second queues behind the first at the bank port.
	a := mem.Block(0)    // hash(0) = bank 0
	b := mem.Block(0x21) // hash(33) = (33 ^ 1) & 31 = bank 0
	s.Warm(a)
	s.Warm(b)
	outA := s.Access(500, mem.Request{Block: a, Type: mem.Load})
	outB := s.Access(500, mem.Request{Block: b, Type: mem.Load})
	if !outA.Predictable {
		t.Fatal("first access should be at nominal")
	}
	if outB.Predictable {
		t.Fatal("queued access should be unpredictable")
	}
	if outB.ResolveAt <= outA.ResolveAt {
		t.Fatal("queued access should resolve later")
	}
}

func TestSNUCAStoreIsFireAndForget(t *testing.T) {
	s := NewSNUCA(testMemLat)
	b := mem.Block(0x99)
	out := s.Access(10, mem.Request{Block: b, Type: mem.Store})
	if out.CompleteAt != 10 {
		t.Fatal("store should complete immediately for the processor")
	}
	if !s.Contains(b) {
		t.Fatal("store did not install the block")
	}
	if s.Stores.Value() != 1 || s.Loads.Value() != 0 {
		t.Fatal("store accounting wrong")
	}
}

func TestSNUCAWritebackOnEviction(t *testing.T) {
	s := NewSNUCA(testMemLat)
	// Fill one set (4 ways) of bank 0 and overflow it.
	var at sim.Time
	for i := 0; i < 5; i++ {
		b := mkBlock(0, mem.Block(i)<<11, 5) // bank 0, set 0, distinct tags
		s.Access(at, mem.Request{Block: b, Type: mem.Store})
		at += 100
	}
	if s.Writebacks != 1 {
		t.Fatalf("writebacks %d, want 1", s.Writebacks)
	}
}

func TestDNUCAInsertsAtFarBank(t *testing.T) {
	d := NewDNUCA(testMemLat)
	b := mem.Block(0x100)
	out := d.Access(0, mem.Request{Block: b, Type: mem.Load})
	if out.Hit {
		t.Fatal("cold access hit")
	}
	col := d.colOf(b)
	if got := d.findRow(col, d.local(b)); got != d.farRow() {
		t.Fatalf("fill landed in row %d, want far row %d", got, d.farRow())
	}
	if d.Insertions.Value() != 1 {
		t.Fatal("insertion not counted")
	}
}

func TestDNUCAPromotionOnHit(t *testing.T) {
	d := NewDNUCA(testMemLat)
	b := mem.Block(0x100)
	d.Warm(b) // inserts at far row
	col := d.colOf(b)
	startRow := d.findRow(col, d.local(b))
	if startRow != d.farRow() {
		t.Fatalf("warm insert at row %d, want %d", startRow, d.farRow())
	}
	out := d.Access(1000, mem.Request{Block: b, Type: mem.Load})
	if !out.Hit {
		t.Fatal("resident block missed")
	}
	if got := d.findRow(col, d.local(b)); got != startRow-1 {
		t.Fatalf("block at row %d after hit, want promoted to %d", got, startRow-1)
	}
	if d.Promotions.Value() != 1 {
		t.Fatal("promotion not counted")
	}
}

func TestDNUCABlockMigratesToClosestBank(t *testing.T) {
	d := NewDNUCA(testMemLat)
	b := mem.Block(0x42)
	d.Warm(b)
	// Repeated hits walk the block one row closer each time.
	at := sim.Time(0)
	for i := 0; i < 20; i++ {
		at += 10000
		d.Access(at, mem.Request{Block: b, Type: mem.Load})
	}
	if got := d.findRow(d.colOf(b), d.local(b)); got != 0 {
		t.Fatalf("hot block at row %d after 20 hits, want 0", got)
	}
	// Hits at row 0 are close hits at minimal latency.
	out := d.Access(at+10000, mem.Request{Block: b, Type: mem.Load})
	if !out.Predictable || !out.Hit {
		t.Fatal("row-0 uncontended hit should be a predictable close hit")
	}
}

func TestDNUCACloseHitCounting(t *testing.T) {
	d := NewDNUCA(testMemLat)
	b := mem.Block(0x42)
	// Walk the block to row 0.
	d.Warm(b)
	for i := 0; i < 20; i++ {
		d.Warm(b)
	}
	before := d.CloseHits.Value()
	d.Access(0, mem.Request{Block: b, Type: mem.Load})
	if d.CloseHits.Value() != before+1 {
		t.Fatal("close hit not counted")
	}
}

func TestDNUCAFarHitIsSearchedAndUnpredictable(t *testing.T) {
	d := NewDNUCA(testMemLat)
	b := mem.Block(0x42)
	d.Warm(b) // at far row: beyond the close banks
	out := d.Access(0, mem.Request{Block: b, Type: mem.Load})
	if !out.Hit {
		t.Fatal("far block missed")
	}
	if out.Predictable {
		t.Fatal("a searched far hit must be unpredictable")
	}
	if out.BanksAccessed < 3 {
		t.Fatalf("far hit touched %d banks, want close 2 + candidates", out.BanksAccessed)
	}
	if d.Searches.Value() != 1 {
		t.Fatal("search not counted")
	}
}

func TestDNUCAFastMiss(t *testing.T) {
	d := NewDNUCA(testMemLat)
	b := mem.Block(0x5000)
	out := d.Access(0, mem.Request{Block: b, Type: mem.Load})
	if out.Hit {
		t.Fatal("cold access hit")
	}
	if d.FastMisses.Value() != 1 {
		t.Fatal("empty cache miss should be a fast miss")
	}
	if !out.Predictable {
		t.Fatal("uncontended fast miss resolves at its nominal latency")
	}
	if got := out.ResolveAt - 0; got != d.nominalFastMiss(d.colOf(b)) {
		t.Fatalf("fast miss latency %d, want nominal %d", got, d.nominalFastMiss(d.colOf(b)))
	}
}

func TestDNUCAPartialTagFalsePositiveSearch(t *testing.T) {
	d := NewDNUCA(testMemLat)
	// Two blocks in the same column and set whose tags collide in the low
	// 6 bits: per-column locals have 9 set bits, so the tag starts at
	// local bit 9. Tags 0x40 and 0x80 share partial tag 0.
	a := mkBlock(0, mem.Block(0x40)<<9, 4)
	b := mkBlock(0, mem.Block(0x80)<<9, 4)
	d.Warm(a)
	// b is absent; its lookup sees a's partial tag at the far bank and
	// must search it, discovering a false positive.
	out := d.Access(0, mem.Request{Block: b, Type: mem.Load})
	if out.Hit {
		t.Fatal("false positive treated as hit")
	}
	if d.Searches.Value() != 1 {
		t.Fatal("false-positive candidates should trigger a search")
	}
	if out.Predictable {
		t.Fatal("searched miss must be unpredictable")
	}
}

func TestDNUCAStoreWritesInPlace(t *testing.T) {
	d := NewDNUCA(testMemLat)
	b := mem.Block(0x42)
	d.Warm(b)
	row := d.findRow(d.colOf(b), d.local(b))
	d.Access(0, mem.Request{Block: b, Type: mem.Store})
	if got := d.findRow(d.colOf(b), d.local(b)); got != row {
		t.Fatal("store should not migrate the block")
	}
	if d.Promotions.Value() != 0 {
		t.Fatal("stores must not promote")
	}
}

func TestDNUCAStoreMissAllocates(t *testing.T) {
	d := NewDNUCA(testMemLat)
	b := mem.Block(0x9999)
	d.Access(0, mem.Request{Block: b, Type: mem.Store})
	if !d.Contains(b) {
		t.Fatal("store miss did not allocate")
	}
}

func TestDNUCAWritebackOnSetOverflow(t *testing.T) {
	d := NewDNUCA(testMemLat)
	// Fill the far bank's set 0 of column 0 (2 ways) and overflow it.
	var at sim.Time
	for i := 1; i <= 3; i++ {
		b := mkBlock(0, mem.Block(i)<<9, 4) // col 0, set 0, distinct tags
		d.Access(at, mem.Request{Block: b, Type: mem.Load})
		at += 2000
	}
	if d.Writebacks.Value() != 1 {
		t.Fatalf("writebacks %d, want 1 after overflowing a 2-way far set", d.Writebacks.Value())
	}
}

func TestDNUCAPromotesPerInsert(t *testing.T) {
	d := NewDNUCA(testMemLat)
	b := mem.Block(0x42)
	d.Access(0, mem.Request{Block: b, Type: mem.Load}) // insert
	d.Access(5000, mem.Request{Block: b, Type: mem.Load})
	d.Access(10000, mem.Request{Block: b, Type: mem.Load})
	if got := d.PromotesPerInsert(); got != 2 {
		t.Fatalf("promotes/inserts %v, want 2", got)
	}
}

// Property: DNUCA never loses or duplicates a block across random load and
// store traffic — every warmed or accessed block is resident in exactly
// one row of its column, and the partial tags never produce a false
// negative for it.
func TestQuickDNUCAResidencyInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := NewDNUCA(testMemLat)
		var at sim.Time
		// Narrow address pool to force set conflicts and promotions.
		pool := make([]mem.Block, 24)
		for i := range pool {
			pool[i] = mem.Block(rng.Intn(4)<<13 | rng.Intn(2)<<4 | rng.Intn(2))
		}
		for step := 0; step < 150; step++ {
			b := pool[rng.Intn(len(pool))]
			typ := mem.Load
			if rng.Intn(3) == 0 {
				typ = mem.Store
			}
			d.Access(at, mem.Request{Block: b, Type: typ})
			at += sim.Time(rng.Intn(200))
			// Invariant: the just-accessed block is resident exactly once.
			col := d.colOf(b)
			local := d.local(b)
			count := 0
			for r := 0; r < d.p.Mesh.Rows; r++ {
				if d.banks[col][r].Array.Lookup(local) {
					count++
					if !d.ptags[col].MatchesIn(local, r) {
						return false // partial tag false negative
					}
				}
			}
			if count != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSNUCAStatsAccounting(t *testing.T) {
	s := NewSNUCA(testMemLat)
	s.Access(0, mem.Request{Block: 1, Type: mem.Load})     // miss
	s.Access(1000, mem.Request{Block: 1, Type: mem.Load})  // hit
	s.Access(2000, mem.Request{Block: 2, Type: mem.Store}) // store
	if s.Loads.Value() != 2 || s.Stores.Value() != 1 {
		t.Fatal("request counts wrong")
	}
	// The store allocated an absent block: it counts as a miss too.
	if s.Hits.Value() != 1 || s.Misses.Value() != 2 {
		t.Fatal("outcome counts wrong")
	}
	if s.Lookup.Count() != 2 {
		t.Fatal("lookup histogram should record loads only")
	}
	if s.BanksPerRequest() != 1 {
		t.Fatalf("SNUCA banks/request %v, want 1", s.BanksPerRequest())
	}
}

func TestDNUCABanksPerRequestAtLeastTwoForLoads(t *testing.T) {
	d := NewDNUCA(testMemLat)
	for i := 0; i < 10; i++ {
		d.Access(sim.Time(i*1000), mem.Request{Block: mem.Block(i * 64), Type: mem.Load})
	}
	if got := d.BanksPerRequest(); got < 2 {
		t.Fatalf("DNUCA loads probe the two close banks: banks/request %v", got)
	}
}

func TestDNUCAWarmPromotionKeepsPartialTagsInSync(t *testing.T) {
	// Regression: accelerated warm promotion (row -> row/2) must resync
	// the partial tags of the destination row, or a resident mid-row
	// block becomes invisible to the search and fast-misses.
	d := NewDNUCA(testMemLat)
	b := mem.Block(0x584a)
	d.Warm(b) // insert far
	d.Warm(b) // promote toward the controller
	d.Warm(b)
	if !d.Contains(b) {
		t.Fatal("warmed block not resident")
	}
	out := d.Access(0, mem.Request{Block: b, Type: mem.Load})
	if !out.Hit {
		t.Fatal("resident mid-row block missed: partial tags out of sync")
	}
}
