// Package nuca implements the paper's two baseline cache designs: SNUCA2,
// the statically partitioned NUCA with a 2-D grid interconnect, and DNUCA,
// Kim et al.'s dynamic NUCA with bank sets, block migration, and a
// controller partial-tag structure [24]. Both run over the conventional
// mesh in package noc.
package nuca

import (
	"tlc/internal/cache"
	"tlc/internal/config"
	"tlc/internal/l2"
	"tlc/internal/mem"
	"tlc/internal/metrics"
	"tlc/internal/noc"
	"tlc/internal/probe"
	"tlc/internal/sim"
)

// Message payload sizes, bytes. Requests carry the block address and
// command; data messages carry the 64-byte block plus address/command
// overhead.
const (
	reqBytes  = 8
	dataBytes = mem.BlockBytes + 8
)

// SNUCA is the SNUCA2 design: 32 x 512 KB statically mapped banks
// (Table 2: 9-32 cycle uncontended latency, 8-cycle banks).
type SNUCA struct {
	l2.Stats
	p      config.NUCAParams
	mesh   *noc.Mesh
	banks  []*cache.Bank
	memory l2.Memory

	// Writebacks counts victim blocks sent back toward memory.
	Writebacks uint64

	// fastNominal[b] is bank b's uncontended lookup latency, built lazily
	// on the first AccessFast call.
	fastNominal []sim.Time

	reg   *metrics.Registry
	hooks *probe.Hooks
}

// NewSNUCA builds the SNUCA2 design with the given memory latency.
func NewSNUCA(memLat sim.Time) *SNUCA {
	p := config.NUCAFor(config.SNUCA2)
	s := &SNUCA{
		Stats:  l2.NewStats(),
		p:      p,
		mesh:   noc.New(p.Mesh),
		memory: l2.FlatMemory{Latency: memLat},
		reg:    metrics.New(),
	}
	sets := p.BankBytes / mem.BlockBytes / p.BankAssoc
	for i := 0; i < p.Banks; i++ {
		s.banks = append(s.banks, cache.NewBank(sets, p.BankAssoc, p.BankAccess))
	}
	s.Stats.Register(s.reg)
	s.reg.CounterFunc("l2.writebacks", func() uint64 { return s.Writebacks })
	s.reg.CounterFunc("l2.bank_busy_cycles", func() uint64 { return uint64(s.BankBusyCycles()) })
	s.mesh.RegisterMetrics(s.reg)
	return s
}

// Metrics implements l2.Instrumented.
func (s *SNUCA) Metrics() *metrics.Registry { return s.reg }

// SetProbe implements l2.Instrumented: hooks propagate to the mesh.
func (s *SNUCA) SetProbe(h *probe.Hooks) {
	s.hooks = h
	s.mesh.SetProbe(h)
}

// Mesh exposes the interconnect for power/utilization accounting.
func (s *SNUCA) Mesh() *noc.Mesh { return s.mesh }

// Params exposes the design parameters.
func (s *SNUCA) Params() config.NUCAParams { return s.p }

// bankOf maps a block to its static bank and grid position. The low block
// bits select the bank; the bank index linearizes column-major so adjacent
// banksets spread across columns.
// Bank selection XOR-folds higher address bits into the bank field (bank
// hashing), decorrelating strided streams and their L1-victim writebacks
// from bank conflicts.
func (s *SNUCA) bankOf(b mem.Block) (idx, col, row int) {
	idx = int(mem.FoldHash(uint64(b), mem.Log2(s.p.Banks)))
	col = idx % s.p.Mesh.Cols
	row = idx / s.p.Mesh.Cols
	return idx, col, row
}

// local strips the bank-select bits so bank arrays index sets correctly.
func (s *SNUCA) local(b mem.Block) mem.Block {
	return b >> uint(mem.Log2(s.p.Banks))
}

// unlocal reconstructs the global block from a bank-local id: invert the
// XOR fold given the bank index.
func (s *SNUCA) unlocal(local mem.Block, bankIdx int) mem.Block {
	bits := mem.Log2(s.p.Banks)
	low := uint64(bankIdx) ^ mem.FoldHash(uint64(local), bits)
	return local<<uint(bits) | mem.Block(low)
}

// Nominal reports the uncontended lookup latency of the bank holding b —
// the latency a scheduler would statically predict.
func (s *SNUCA) Nominal(b mem.Block) sim.Time {
	_, col, row := s.bankOf(b)
	return s.p.BankAccess + s.mesh.UncontendedRoundTrip(col, row)
}

// NominalRange reports the design's uncontended latency range (Table 2).
func (s *SNUCA) NominalRange() (min, max sim.Time) {
	min, max = ^sim.Time(0), 0
	for i := 0; i < s.p.Banks; i++ {
		_, col, row := s.bankOf(mem.Block(i))
		n := s.p.BankAccess + s.mesh.UncontendedRoundTrip(col, row)
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	return min, max
}

// Access implements l2.Cache.
func (s *SNUCA) Access(at sim.Time, req mem.Request) l2.Outcome {
	idx, col, row := s.bankOf(req.Block)
	bank := s.banks[idx]
	local := s.local(req.Block)

	if req.Type == mem.Store {
		// Write the block into its bank: request + data down, no reply.
		arrive := s.mesh.Route(at, col, row, dataBytes, noc.ToBank)
		done := bank.Reserve(arrive)
		present := bank.Array.Lookup(local)
		victim, evicted := bank.Array.Insert(local)
		if evicted {
			s.writeback(done, col, row, victim, idx)
		}
		s.RecordStore(present, 1)
		if h := s.hooks; h != nil && h.OnAccess != nil {
			h.OnAccess(probe.AccessEvent{At: at, Block: req.Block, Store: true, Hit: present, Banks: 1})
		}
		return l2.Outcome{Hit: present, ResolveAt: at, CompleteAt: at, Predictable: true, BanksAccessed: 1}
	}

	arrive := s.mesh.Route(at, col, row, reqBytes, noc.ToBank)
	done := bank.Reserve(arrive)
	hit := bank.Array.Access(local)
	respBytes := reqBytes
	if hit {
		respBytes = dataBytes
	}
	resolve := s.mesh.Route(done, col, row, respBytes, noc.ToController)
	nominal := s.Nominal(req.Block)
	predictable := resolve-at == nominal
	out := l2.Outcome{Hit: hit, ResolveAt: resolve, CompleteAt: resolve, Predictable: predictable, BanksAccessed: 1}
	if !hit {
		out.CompleteAt = s.memory.Fetch(resolve, req.Block)
		s.fill(out.CompleteAt, req.Block)
	}
	s.RecordLoad(uint64(resolve-at), hit, predictable, 1)
	if h := s.hooks; h != nil && h.OnAccess != nil {
		h.OnAccess(probe.AccessEvent{At: at, Block: req.Block, Hit: hit, Latency: uint64(resolve - at), Banks: 1})
	}
	return out
}

// AccessFast implements l2.FastTimer: the same functional state evolution
// as Access — lookup, touch, insert with eviction, writeback accounting,
// hit/miss statistics — timed with the bank's uncontended nominal latency
// instead of mesh routing and port reservation. Contention folds into the
// fast tier's calibrated per-benchmark bias. DNUCA stays on the Access
// fallback: duplicating its migration state machine is not worth the
// divergence risk.
func (s *SNUCA) AccessFast(at sim.Time, req mem.Request) l2.Outcome {
	idx, _, _ := s.bankOf(req.Block)
	bank := s.banks[idx]
	local := s.local(req.Block)

	if req.Type == mem.Store {
		present := bank.Array.Lookup(local)
		if _, evicted := bank.Array.Insert(local); evicted {
			s.Writebacks++
		}
		s.RecordStore(present, 1)
		if h := s.hooks; h != nil && h.OnAccess != nil {
			h.OnAccess(probe.AccessEvent{At: at, Block: req.Block, Store: true, Hit: present, Banks: 1})
		}
		return l2.Outcome{Hit: present, ResolveAt: at, CompleteAt: at, Predictable: true, BanksAccessed: 1}
	}

	hit := bank.Array.Access(local)
	resolve := at + s.nominalOf(idx)
	out := l2.Outcome{Hit: hit, ResolveAt: resolve, CompleteAt: resolve, Predictable: true, BanksAccessed: 1}
	if !hit {
		out.CompleteAt = s.memory.Fetch(resolve, req.Block)
		if _, evicted := bank.Array.Insert(local); evicted {
			s.Writebacks++
		}
	}
	s.RecordLoad(uint64(resolve-at), hit, true, 1)
	if h := s.hooks; h != nil && h.OnAccess != nil {
		h.OnAccess(probe.AccessEvent{At: at, Block: req.Block, Hit: hit, Latency: uint64(resolve - at), Banks: 1})
	}
	return out
}

// nominalOf is Nominal with the bank already mapped, backed by a lazily
// built per-bank table.
func (s *SNUCA) nominalOf(idx int) sim.Time {
	if s.fastNominal == nil {
		s.fastNominal = make([]sim.Time, s.p.Banks)
		for i := range s.fastNominal {
			col := i % s.p.Mesh.Cols
			row := i / s.p.Mesh.Cols
			s.fastNominal[i] = s.p.BankAccess + s.mesh.UncontendedRoundTrip(col, row)
		}
	}
	return s.fastNominal[idx]
}

// fill installs a block fetched from memory into its static bank, routing
// the fill data and any victim writeback.
func (s *SNUCA) fill(at sim.Time, b mem.Block) {
	idx, col, row := s.bankOf(b)
	bank := s.banks[idx]
	arrive := s.mesh.Route(at, col, row, dataBytes, noc.ToBank)
	done := bank.Reserve(arrive)
	victim, evicted := bank.Array.Insert(s.local(b))
	if evicted {
		s.writeback(done, col, row, victim, idx)
	}
}

// writeback routes an evicted block back to the controller on its way to
// memory.
func (s *SNUCA) writeback(at sim.Time, col, row int, victim mem.Block, bankIdx int) {
	_ = s.unlocal(victim, bankIdx) // the block identity; memory is not modeled further
	s.mesh.Route(at, col, row, dataBytes, noc.ToController)
	s.Writebacks++
}

// Warm implements l2.Cache: install without timing.
func (s *SNUCA) Warm(b mem.Block) {
	idx, _, _ := s.bankOf(b)
	s.banks[idx].Array.Insert(s.local(b))
}

// WarmBulk implements l2.Warmer: the fused warm kernel. One dispatch
// installs the whole batch, with the bank-select arithmetic (the Log2 loop
// bankOf repays per block) hoisted out of the loop. State evolution is
// identical to per-block Warm calls in slice order.
func (s *SNUCA) WarmBulk(blocks []mem.Block) {
	bits := mem.Log2(s.p.Banks)
	for _, b := range blocks {
		idx := int(mem.FoldHash(uint64(b), bits))
		// TouchOrInsertAt leaves the array exactly as Insert would, in one
		// set scan instead of Insert's find-then-place pair.
		s.banks[idx].Array.TouchOrInsertAt(b >> uint(bits))
	}
}

// Contains implements l2.Cache.
func (s *SNUCA) Contains(b mem.Block) bool {
	idx, _, _ := s.bankOf(b)
	return s.banks[idx].Array.Lookup(s.local(b))
}

// BankBusyCycles sums port occupancy over all banks.
func (s *SNUCA) BankBusyCycles() sim.Time {
	var t sim.Time
	for _, b := range s.banks {
		t += b.PortBusyCycles()
	}
	return t
}

// L2Stats exposes the embedded common statistics.
func (s *SNUCA) L2Stats() *l2.Stats { return &s.Stats }

// SetMemory replaces the flat Table 3 memory with another model (the
// banked DRAM in internal/dram).
func (s *SNUCA) SetMemory(m l2.Memory) { s.memory = m }
