package nuca

import (
	"tlc/internal/cache"
	"tlc/internal/config"
	"tlc/internal/l2"
	"tlc/internal/mem"
	"tlc/internal/metrics"
	"tlc/internal/noc"
	"tlc/internal/probe"
	"tlc/internal/sim"
)

// DNUCA is Kim et al.'s Dynamic NUCA [24] as the paper evaluates it:
// 256 x 64 KB banks in a 16x16 grid, one bank set per column (16 banks x
// 2 ways = 32-way aggregate associativity, the paper's "+30-way"), a
// 6-bit partial-tag structure at the controller, and gradual promotion.
//
// Access protocol (Section 2):
//
//   - Probe the two closest banks of the block's bank set and the partial
//     tag structure in parallel.
//   - A hit in the closest banks is a close hit — the fast path.
//   - Otherwise the partial tags name the candidate banks; a multicast
//     search probes them. No candidates is a fast miss (declared once the
//     close banks confirm).
//   - Fills from memory insert at the farthest bank of the bank set;
//     every load hit promotes the block one bank closer, swapping with
//     the occupant — the frequency-based placement that protects hot data
//     from streaming data (the equake discussion in Section 6.1).
//
// DNUCAAblations are the policy knobs for the ablation studies
// (DESIGN.md, section 5). The zero value is the paper's design.
type DNUCAAblations struct {
	// DisablePromotion freezes block placement: hits no longer migrate
	// blocks toward the controller, isolating the value of dynamic
	// placement.
	DisablePromotion bool
	// DisablePartialTags removes the controller partial-tag structure: a
	// close miss must search every remaining bank of the bank set, and
	// fast misses disappear — the cost the structure's complexity buys
	// back.
	DisablePartialTags bool
}

type DNUCA struct {
	l2.Stats
	// Abl holds the ablation knobs; set before use.
	Abl DNUCAAblations
	// OnWriteback, when set, observes every block evicted toward memory
	// (testing and analysis hook).
	OnWriteback func(victim mem.Block)
	p           config.NUCAParams
	mesh        *noc.Mesh
	memory      l2.Memory
	// banks[col][row]
	banks [][]*cache.Bank
	// ptags[col] shadows the 16 row-banks of one bank set.
	ptags []*cache.PartialTags
	sets  int
	// lineScratch is the reused buffer for partial-tag resyncs.
	lineScratch []cache.Line
	// candScratch is the reused candidate-bank buffer for far searches.
	candScratch []int

	// Design-specific counters (Table 6).
	CloseHits  stats64
	Promotions stats64
	Insertions stats64
	FastMisses stats64
	Searches   stats64
	Writebacks stats64

	reg   *metrics.Registry
	hooks *probe.Hooks
}

// stats64 is a plain counter; a named type keeps the field list readable.
type stats64 uint64

// Inc increments the counter.
func (s *stats64) Inc() { *s++ }

// Value reports the count.
func (s stats64) Value() uint64 { return uint64(s) }

const (
	closeRows = 2
	// ptagLookupBusy is the pipeline occupancy ahead of the partial-tag
	// array access.
	ptagLookupBusy = 1
)

// NewDNUCA builds the DNUCA design with the given memory latency.
func NewDNUCA(memLat sim.Time) *DNUCA {
	p := config.NUCAFor(config.DNUCA)
	d := &DNUCA{
		Stats:  l2.NewStats(),
		p:      p,
		mesh:   noc.New(p.Mesh),
		memory: l2.FlatMemory{Latency: memLat},
		sets:   p.BankBytes / mem.BlockBytes / p.BankAssoc,
		reg:    metrics.New(),
	}
	for c := 0; c < p.Mesh.Cols; c++ {
		col := make([]*cache.Bank, p.Mesh.Rows)
		for r := 0; r < p.Mesh.Rows; r++ {
			col[r] = cache.NewBank(d.sets, p.BankAssoc, p.BankAccess)
		}
		d.banks = append(d.banks, col)
		d.ptags = append(d.ptags, cache.NewPartialTags(d.sets, p.Mesh.Rows, p.BankAssoc))
	}
	d.Stats.Register(d.reg)
	// stats64.Value has a value receiver, so a method value would capture a
	// zero copy at registration; closures read the live fields.
	d.reg.CounterFunc("l2.close_hits", func() uint64 { return uint64(d.CloseHits) })
	d.reg.CounterFunc("l2.promotions", func() uint64 { return uint64(d.Promotions) })
	d.reg.CounterFunc("l2.insertions", func() uint64 { return uint64(d.Insertions) })
	d.reg.CounterFunc("l2.fast_misses", func() uint64 { return uint64(d.FastMisses) })
	d.reg.CounterFunc("l2.searches", func() uint64 { return uint64(d.Searches) })
	d.reg.CounterFunc("l2.writebacks", func() uint64 { return uint64(d.Writebacks) })
	d.reg.CounterFunc("l2.bank_busy_cycles", func() uint64 { return uint64(d.BankBusyCycles()) })
	d.reg.Gauge("l2.close_hit_pct", func(sim.Time) float64 { return d.CloseHitPct() })
	d.reg.Gauge("l2.promotes_per_insert", func(sim.Time) float64 { return d.PromotesPerInsert() })
	d.mesh.RegisterMetrics(d.reg)
	return d
}

// Metrics implements l2.Instrumented.
func (d *DNUCA) Metrics() *metrics.Registry { return d.reg }

// SetProbe implements l2.Instrumented: hooks propagate to the mesh.
func (d *DNUCA) SetProbe(h *probe.Hooks) {
	d.hooks = h
	d.mesh.SetProbe(h)
}

// Mesh exposes the interconnect for power/utilization accounting.
func (d *DNUCA) Mesh() *noc.Mesh { return d.mesh }

// Params exposes the design parameters.
func (d *DNUCA) Params() config.NUCAParams { return d.p }

// colOf maps a block to its bank set (one per column). Bank-set selection
// XOR-folds higher address bits into the low bits (bank hashing), matching
// the other designs.
func (d *DNUCA) colOf(b mem.Block) int {
	return int(mem.FoldHash(uint64(b), mem.Log2(d.p.BankSets)))
}

// local strips the bank-set bits for per-column set indexing.
func (d *DNUCA) local(b mem.Block) mem.Block {
	return b >> uint(mem.Log2(d.p.BankSets))
}

// unlocal reconstructs the global block from a column-local id by
// inverting the bank-set hash.
func (d *DNUCA) unlocal(local mem.Block, col int) mem.Block {
	bits := mem.Log2(d.p.BankSets)
	low := uint64(col) ^ mem.FoldHash(uint64(local), bits)
	return local<<uint(bits) | mem.Block(low)
}

// findRow reports which row-bank of the column currently holds the block,
// or -1.
func (d *DNUCA) findRow(col int, local mem.Block) int {
	for r := 0; r < d.p.Mesh.Rows; r++ {
		if d.banks[col][r].Array.Lookup(local) {
			return r
		}
	}
	return -1
}

// farRow is the insertion row: the farthest bank from the controller.
func (d *DNUCA) farRow() int { return d.p.Mesh.Rows - 1 }

// syncPTag resynchronizes the partial-tag shadow of one (column,row) set.
// It reuses a scratch line buffer: resyncs run on every fill, migration,
// and promotion, and a fresh slice per call dominated the allocation
// profile.
func (d *DNUCA) syncPTag(col, row int, set int) {
	d.lineScratch = d.banks[col][row].Array.AppendLinesIn(d.lineScratch[:0], set)
	d.ptags[col].SyncSet(set, row, d.lineScratch)
}

// nominalClose reports the uncontended close-hit latency at the given row.
func (d *DNUCA) nominalClose(col, row int) sim.Time {
	return d.p.BankAccess + d.mesh.UncontendedRoundTrip(col, row)
}

// nominalFastMiss reports the uncontended fast-miss latency: the partial
// tags rule out every bank, but the miss is declared once the slower of
// the two close probes confirms.
func (d *DNUCA) nominalFastMiss(col int) sim.Time {
	n := d.nominalClose(col, closeRows-1)
	if pt := sim.Time(ptagLookupBusy) + d.p.PTagLatency; pt > n {
		return pt
	}
	return n
}

// NominalRange reports the design's uncontended latency range (Table 2).
func (d *DNUCA) NominalRange() (min, max sim.Time) {
	min, max = ^sim.Time(0), 0
	for c := 0; c < d.p.Mesh.Cols; c++ {
		for r := 0; r < d.p.Mesh.Rows; r++ {
			n := d.nominalClose(c, r)
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
		}
	}
	return min, max
}

// emitAccess publishes one access outcome to the probe hooks, if set.
func (d *DNUCA) emitAccess(at sim.Time, b mem.Block, store, hit bool, latency uint64, banks int) {
	if h := d.hooks; h != nil && h.OnAccess != nil {
		h.OnAccess(probe.AccessEvent{At: at, Block: b, Store: store, Hit: hit, Latency: latency, Banks: banks})
	}
}

// Access implements l2.Cache.
func (d *DNUCA) Access(at sim.Time, req mem.Request) l2.Outcome {
	col := d.colOf(req.Block)
	local := d.local(req.Block)

	if req.Type == mem.Store {
		out := d.store(at, col, local)
		d.emitAccess(at, req.Block, true, out.Hit, 0, out.BanksAccessed)
		return out
	}

	// Probe the two closest banks and the partial tags in parallel. The
	// close probe is a single multicast request: the row-0 bank snoops the
	// message as it passes on its way to row 1; each bank responds with
	// its own message.
	respArrive := make([]sim.Time, closeRows)
	arriveLast := d.mesh.Route(at, col, closeRows-1, reqBytes, noc.ToBank)
	arrive := make([]sim.Time, closeRows)
	for r := closeRows - 1; r >= 0; r-- {
		arrive[r] = arriveLast
		for i := r; i < closeRows-1; i++ {
			arrive[r] -= d.p.Mesh.VertReqLat[i]
		}
	}
	// Responses issue in arrival order (row 0 responds first); link
	// reservations must be made in time order.
	for r := 0; r < closeRows; r++ {
		done := d.banks[col][r].Reserve(arrive[r])
		bytes := reqBytes
		if d.banks[col][r].Array.Lookup(local) {
			bytes = dataBytes
		}
		respArrive[r] = d.mesh.Route(done, col, r, bytes, noc.ToController)
	}
	// The partial-tag structure is modeled as fully pipelined (banked in a
	// real implementation): fixed latency, no port contention. This
	// idealizes DNUCA slightly; the paper's complexity argument against
	// the structure is about synchronization, which the functional model
	// keeps exact.
	ptagDone := at + sim.Time(ptagLookupBusy) + d.p.PTagLatency

	actualRow := d.findRow(col, local)
	if actualRow >= 0 && actualRow < closeRows {
		// Close hit.
		resolve := respArrive[actualRow]
		d.banks[col][actualRow].Array.Touch(local)
		predictable := resolve-at == d.nominalClose(col, actualRow)
		d.CloseHits.Inc()
		if actualRow > 0 && !d.Abl.DisablePromotion {
			d.promote(resolve, col, actualRow, local)
		}
		d.RecordLoad(uint64(resolve-at), true, predictable, closeRows)
		d.emitAccess(at, req.Block, false, true, uint64(resolve-at), closeRows)
		return l2.Outcome{Hit: true, ResolveAt: resolve, CompleteAt: resolve, Predictable: predictable, BanksAccessed: closeRows}
	}

	// Partial tags name the remaining candidates; without them, every
	// remaining bank of the bank set must be searched. The scratch buffer
	// lives on the struct so steady-state searches allocate nothing; it is
	// dead once Access returns.
	cands := d.candScratch[:0]
	if d.Abl.DisablePartialTags {
		for r := closeRows; r < d.p.Mesh.Rows; r++ {
			cands = append(cands, r)
		}
	} else {
		// Filter in place: cands re-uses all's backing array, and the write
		// index never passes the read index.
		all := d.ptags[col].AppendCandidates(cands, local)
		for _, bank := range all {
			if bank >= closeRows {
				cands = append(cands, bank)
			}
		}
	}
	d.candScratch = cands[:0]

	if len(cands) == 0 {
		// Fast miss: nothing beyond the close banks can match; declared
		// when the slower close probe and the tag check have both
		// resolved.
		resolve := ptagDone
		for _, t := range respArrive {
			if t > resolve {
				resolve = t
			}
		}
		d.FastMisses.Inc()
		predictable := resolve-at == d.nominalFastMiss(col)
		complete := d.memory.Fetch(resolve, req.Block)
		d.fill(complete, col, local)
		d.RecordLoad(uint64(resolve-at), false, predictable, closeRows)
		d.emitAccess(at, req.Block, false, false, uint64(resolve-at), closeRows)
		return l2.Outcome{Hit: false, ResolveAt: resolve, CompleteAt: complete, Predictable: predictable, BanksAccessed: closeRows}
	}

	// Multicast search of the candidate banks, launched once the partial
	// tags have been read.
	d.Searches.Inc()
	banksTouched := closeRows + len(cands)
	var resolve sim.Time
	hit := false
	var worst sim.Time
	for _, t := range respArrive {
		if t > worst {
			worst = t
		}
	}
	for _, r := range cands {
		arrive := d.mesh.Route(ptagDone, col, r, reqBytes, noc.ToBank)
		done := d.banks[col][r].Reserve(arrive)
		bytes := reqBytes
		if r == actualRow {
			bytes = dataBytes
		}
		resp := d.mesh.Route(done, col, r, bytes, noc.ToController)
		if r == actualRow {
			hit = true
			resolve = resp
		}
		if resp > worst {
			worst = resp
		}
	}
	if !hit {
		resolve = worst // every candidate was a partial-tag false positive
	}

	if hit {
		d.banks[col][actualRow].Array.Touch(local)
		if !d.Abl.DisablePromotion {
			d.promote(resolve, col, actualRow, local)
		}
		d.RecordLoad(uint64(resolve-at), true, false, banksTouched)
		d.emitAccess(at, req.Block, false, true, uint64(resolve-at), banksTouched)
		return l2.Outcome{Hit: true, ResolveAt: resolve, CompleteAt: resolve, BanksAccessed: banksTouched}
	}
	complete := d.memory.Fetch(resolve, req.Block)
	d.fill(complete, col, local)
	d.RecordLoad(uint64(resolve-at), false, false, banksTouched)
	d.emitAccess(at, req.Block, false, false, uint64(resolve-at), banksTouched)
	return l2.Outcome{Hit: false, ResolveAt: resolve, CompleteAt: complete, BanksAccessed: banksTouched}
}

// store writes a block: into its resident bank if present, else allocated
// at the insertion bank. Fire-and-forget for the processor.
func (d *DNUCA) store(at sim.Time, col int, local mem.Block) l2.Outcome {
	row := d.findRow(col, local)
	if row < 0 {
		d.fill(at, col, local)
		d.RecordStore(false, 1)
		return l2.Outcome{Hit: false, ResolveAt: at, CompleteAt: at, Predictable: true, BanksAccessed: 1}
	}
	arrive := d.mesh.Route(at, col, row, dataBytes, noc.ToBank)
	d.banks[col][row].Reserve(arrive)
	d.banks[col][row].Array.Touch(local)
	d.RecordStore(true, 1)
	return l2.Outcome{Hit: true, ResolveAt: at, CompleteAt: at, Predictable: true, BanksAccessed: 1}
}

// promote migrates a block one row closer to the controller, swapping with
// the victim in the destination set, and updates the partial tags — the
// bookkeeping whose synchronization the paper highlights as DNUCA's
// complexity cost.
func (d *DNUCA) promote(at sim.Time, col, fromRow int, local mem.Block) {
	toRow := fromRow - 1
	from := d.banks[col][fromRow]
	to := d.banks[col][toRow]

	// Timing: read the block out, move it up, write it; the displaced
	// victim makes the reverse trip.
	t := from.Reserve(at)
	t = d.mesh.RouteBetween(t, col, fromRow, toRow, dataBytes)
	t = to.Reserve(t)
	t = d.mesh.RouteBetween(t, col, toRow, fromRow, dataBytes)
	from.Reserve(t)

	// Functional swap.
	set := local.SetIndex(d.sets)
	from.Array.Remove(local)
	victim, evicted := to.Array.Insert(local)
	if evicted {
		from.Array.Insert(victim)
	}
	d.syncPTag(col, fromRow, set)
	d.syncPTag(col, toRow, set)
	d.Promotions.Inc()
}

// fill installs a block at the farthest bank of its bank set, evicting and
// writing back the victim if the set is full.
func (d *DNUCA) fill(at sim.Time, col int, local mem.Block) {
	row := d.farRow()
	bank := d.banks[col][row]
	arrive := d.mesh.Route(at, col, row, dataBytes, noc.ToBank)
	done := bank.Reserve(arrive)
	victim, evicted := bank.Array.Insert(local)
	if evicted {
		d.mesh.Route(done, col, row, dataBytes, noc.ToController)
		d.Writebacks.Inc()
		if d.OnWriteback != nil {
			d.OnWriteback(d.unlocal(victim, col))
		}
	}
	d.syncPTag(col, row, local.SetIndex(d.sets))
	d.Insertions.Inc()
}

// Warm implements l2.Cache: the functional load path with no timing, so
// warm-up reaches the same steady-state placement the timed run would.
// WarmBulk implements l2.Warmer. DNUCA's warm placement is inherently
// stateful per block (row search, free-way scan, promotion), so the bulk
// kernel only amortizes the interface dispatch; state evolution is exactly
// per-block Warm in slice order.
func (d *DNUCA) WarmBulk(blocks []mem.Block) {
	for _, b := range blocks {
		d.Warm(b)
	}
}

func (d *DNUCA) Warm(b mem.Block) {
	col := d.colOf(b)
	local := d.local(b)
	row := d.findRow(col, local)
	if row < 0 {
		// Functional insert: the farthest row with a free way, so a
		// full-footprint pre-warm fills each column from the tail inward
		// (approximating the placement gradient a long warm-up leaves);
		// once the column's set is full this degenerates to the paper's
		// insert-far-with-eviction.
		set := local.SetIndex(d.sets)
		target := d.farRow()
		for r := d.farRow(); r >= 0; r-- {
			if _, wouldEvict := d.banks[col][r].Array.VictimOf(local); !wouldEvict {
				target = r
				break
			}
		}
		d.banks[col][target].Array.Insert(local)
		d.syncPTag(col, target, set)
		return
	}
	d.banks[col][row].Array.Touch(local)
	if row > 0 && !d.Abl.DisablePromotion {
		// Accelerated functional promotion: warm-up moves a hit block
		// halfway to the controller rather than one row, reaching the
		// same frequency-ordered fixed point the paper's billion-
		// instruction warm-up converges to in far fewer passes.
		set := local.SetIndex(d.sets)
		from := d.banks[col][row]
		to := d.banks[col][row/2]
		from.Array.Remove(local)
		victim, evicted := to.Array.Insert(local)
		if evicted {
			from.Array.Insert(victim)
		}
		d.syncPTag(col, row, set)
		d.syncPTag(col, row/2, set)
	}
}

// Contains implements l2.Cache.
func (d *DNUCA) Contains(b mem.Block) bool {
	return d.findRow(d.colOf(b), d.local(b)) >= 0
}

// PromotesPerInsert reports the Table 6 promotes/inserts ratio. With no
// insertions in the measured window (the in-cache SPECint benchmarks) the
// ratio is effectively unbounded; report the promotion count itself, as a
// single insert would.
func (d *DNUCA) PromotesPerInsert() float64 {
	if d.Insertions == 0 {
		return float64(d.Promotions)
	}
	return float64(d.Promotions) / float64(d.Insertions)
}

// CloseHitPct reports close hits as a percentage of loads (Table 6).
func (d *DNUCA) CloseHitPct() float64 {
	loads := d.Loads.Value()
	if loads == 0 {
		return 0
	}
	return 100 * float64(d.CloseHits) / float64(loads)
}

// BankBusyCycles sums port occupancy over all banks.
func (d *DNUCA) BankBusyCycles() sim.Time {
	var t sim.Time
	for _, col := range d.banks {
		for _, b := range col {
			t += b.PortBusyCycles()
		}
	}
	return t
}

// L2Stats exposes the embedded common statistics.
func (d *DNUCA) L2Stats() *l2.Stats { return &d.Stats }

// SetMemory replaces the flat Table 3 memory with another model.
func (d *DNUCA) SetMemory(m l2.Memory) { d.memory = m }
