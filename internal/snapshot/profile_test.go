package snapshot

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"tlc/internal/sample"
)

// testProfile builds a small but fully-populated profile; idx varies the
// contents so distinct keys hold distinct profiles.
func testProfile(key string, idx int) sample.Profile {
	return sample.Profile{
		Version:  sample.ProfileFormat,
		Key:      key,
		Total:    uint64(1000 * (idx + 1)),
		Windows:  4,
		Clusters: 2,
		Features: [][]float64{{1, float64(idx)}, {2, 0}, {3, 1}, {4, 2}},
		Instr:    []uint64{250, 250, 250, 250},
		Assign:   []int{0, 0, 1, 1},
		Reps:     []int{0, 2},
		Weights:  []uint64{500, 500},
	}
}

func TestProfileStoreMemoryRoundTrip(t *testing.T) {
	s := NewProfileStore(4, "")
	want := testProfile("a", 0)
	s.Put("a", want)
	got, ok := s.Get("a")
	if !ok || !reflect.DeepEqual(got, want) {
		t.Fatalf("Get after Put: ok=%v got=%+v", ok, got)
	}
	if _, ok := s.Get("missing"); ok {
		t.Error("Get of an absent key hit")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Errorf("stats %+v, want 1 hit / 1 miss / 1 put", st)
	}
}

func TestProfileStoreLRUEviction(t *testing.T) {
	s := NewProfileStore(2, "")
	s.Put("a", testProfile("a", 0))
	s.Put("b", testProfile("b", 1))
	s.Get("a") // refresh a: b is now the LRU entry
	s.Put("c", testProfile("c", 2))
	if _, ok := s.Peek("b"); ok {
		t.Error("LRU entry b survived eviction")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := s.Peek(k); !ok {
			t.Errorf("recently-used entry %s evicted", k)
		}
	}
}

func TestProfileStoreDiskTier(t *testing.T) {
	dir := t.TempDir()
	want := testProfile("a", 0)
	NewProfileStore(4, dir).Put("a", want)

	// A fresh store over the same directory — a later process — reads the
	// profile back from disk.
	fresh := NewProfileStore(4, dir)
	got, ok := fresh.Get("a")
	if !ok || !reflect.DeepEqual(got, want) {
		t.Fatalf("disk read-back: ok=%v got=%+v", ok, got)
	}
	st := fresh.Stats()
	if st.DiskHits != 1 {
		t.Errorf("stats %+v, want 1 disk hit", st)
	}
	if err := fresh.DiskErr(); err != nil {
		t.Errorf("disk error %v on a clean round-trip", err)
	}
}

// TestProfileStoreTruncatedFileIsAMiss pins the corruption contract: a
// torn or truncated on-disk profile — possible only outside the atomic
// temp-file + rename write path — degrades to a miss (the caller
// recomputes) instead of an error or, worse, a garbage clustering.
func TestProfileStoreTruncatedFileIsAMiss(t *testing.T) {
	dir := t.TempDir()
	NewProfileStore(4, dir).Put("a", testProfile("a", 0))

	files, err := filepath.Glob(filepath.Join(dir, "prof-*.gob"))
	if err != nil || len(files) != 1 {
		t.Fatalf("profile files on disk: %v (%v)", files, err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[0], data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	fresh := NewProfileStore(4, dir)
	if _, ok := fresh.Get("a"); ok {
		t.Fatal("truncated profile served as a hit")
	}
	if fresh.Stats().Misses != 1 {
		t.Errorf("stats %+v, want a miss", fresh.Stats())
	}
	if fresh.DiskErr() == nil {
		t.Error("truncated profile left no diagnostic in DiskErr")
	}
	// The store still works: a recompute overwrites the torn file and the
	// next process reads it back intact.
	want := testProfile("a", 5)
	fresh.Put("a", want)
	got, ok := NewProfileStore(4, dir).Get("a")
	if !ok || !reflect.DeepEqual(got, want) {
		t.Fatal("recomputed profile did not replace the torn file")
	}
}

func TestProfileStoreFillHook(t *testing.T) {
	dir := t.TempDir()
	s := NewProfileStore(4, dir)
	want := testProfile("a", 3)
	fills := 0
	s.SetFill(func(key string) (sample.Profile, bool) {
		fills++
		if key == "a" {
			return want, true
		}
		return sample.Profile{}, false
	})

	// Peek never consults the hook: that is what makes peer fills
	// recursion-free.
	if _, ok := s.Peek("a"); ok || fills != 0 {
		t.Fatalf("Peek consulted the fill hook (%d fills)", fills)
	}
	got, ok := s.Get("a")
	if !ok || !reflect.DeepEqual(got, want) {
		t.Fatalf("fill hit: ok=%v", ok)
	}
	if st := s.Stats(); st.FillHits != 1 {
		t.Errorf("stats %+v, want 1 fill hit", st)
	}
	// The fill hit landed in both tiers: a repeat Get is local, and a fresh
	// store finds it on disk.
	if _, ok := s.Get("a"); !ok || fills != 1 {
		t.Errorf("second Get went back to the hook (%d fills)", fills)
	}
	if _, ok := NewProfileStore(4, dir).Get("a"); !ok {
		t.Error("fill hit not persisted to the disk tier")
	}
	// A hook miss is a plain miss.
	if _, ok := s.Get("b"); ok {
		t.Error("hook miss reported as a hit")
	}
}
