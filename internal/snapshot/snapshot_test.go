package snapshot

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"tlc/internal/config"
	"tlc/internal/cpu"
	"tlc/internal/l2"
	"tlc/internal/mem"
	"tlc/internal/nuca"
	"tlc/internal/tlcache"
	"tlc/internal/workload"
)

// fixture builds a small but non-trivial checkpoint: a warmed core, a
// warmed TLC cache, and an advanced generator.
func fixture(t *testing.T, seed int64) Checkpoint {
	t.Helper()
	spec, ok := workload.SpecByName("oltp")
	if !ok {
		t.Fatal("oltp spec missing")
	}
	cache := tlcache.New(config.TLC, 300)
	gen := workload.New(spec, seed)
	core := cpu.New(config.DefaultSystem(), cache)
	core.Warm(gen, 100_000)
	return Checkpoint{Core: core.Snapshot(), L2: cache.SnapshotState(), Gen: gen.State()}
}

func key(i int) Key {
	return Key{Config: "cfghash", Bench: fmt.Sprintf("bench%d", i), Seed: 1, Warm: 1000}
}

func TestStoreMemoryRoundTrip(t *testing.T) {
	s := NewStore(4, "")
	ckp := fixture(t, 1)
	k := key(0)
	if _, ok := s.Get(k); ok {
		t.Fatal("empty store reported a hit")
	}
	s.Put(k, ckp)
	got, ok := s.Get(k)
	if !ok {
		t.Fatal("stored checkpoint not found")
	}
	if !reflect.DeepEqual(got, ckp) {
		t.Fatal("retrieved checkpoint differs from the stored one")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.DiskHits != 0 {
		t.Fatalf("stats %+v, want 1 hit / 1 miss / 1 put / 0 disk hits", st)
	}
}

func TestStoreLRUEviction(t *testing.T) {
	s := NewStore(2, "")
	ckp := fixture(t, 1)
	s.Put(key(0), ckp)
	s.Put(key(1), ckp)
	s.Get(key(0)) // refresh 0: 1 becomes LRU
	s.Put(key(2), ckp)
	if _, ok := s.Get(key(1)); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := s.Get(key(0)); !ok {
		t.Fatal("recently used entry was evicted")
	}
	if _, ok := s.Get(key(2)); !ok {
		t.Fatal("newest entry was evicted")
	}
}

func TestStoreDiskTier(t *testing.T) {
	dir := t.TempDir()
	ckp := fixture(t, 2)
	k := key(7)

	// Write through one store, read through a fresh one: simulates a new
	// process reusing -ckptdir.
	NewStore(4, dir).Put(k, ckp)
	s2 := NewStore(4, dir)
	got, ok := s2.Get(k)
	if !ok {
		t.Fatal("checkpoint not found on disk by a fresh store")
	}
	if !reflect.DeepEqual(got, ckp) {
		t.Fatal("disk round-trip changed the checkpoint")
	}
	st := s2.Stats()
	if st.DiskHits != 1 {
		t.Fatalf("disk hits %d, want 1", st.DiskHits)
	}
	// Second Get is served from memory.
	if _, ok := s2.Get(k); !ok {
		t.Fatal("promoted checkpoint missing from memory tier")
	}
	if st := s2.Stats(); st.DiskHits != 1 || st.Hits != 2 {
		t.Fatalf("stats %+v, want 2 hits with 1 from disk", st)
	}
	if err := s2.DiskErr(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreDiskCorruptionIsAMiss(t *testing.T) {
	dir := t.TempDir()
	ckp := fixture(t, 3)
	k := key(9)
	NewStore(4, dir).Put(k, ckp)
	// Truncate the file: a fresh store must treat it as a miss, not crash.
	name := filepath.Join(dir, k.filename())
	if err := os.Truncate(name, 16); err != nil {
		t.Fatal(err)
	}
	s := NewStore(4, dir)
	if _, ok := s.Get(k); ok {
		t.Fatal("truncated checkpoint was served")
	}
	if s.DiskErr() == nil {
		t.Fatal("corruption was not surfaced via DiskErr")
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	// Hammer one store from many goroutines mixing Put and Get across a
	// small key space; run under -race this exercises the locking, and the
	// restored checkpoints must always be internally consistent.
	s := NewStore(4, t.TempDir())
	ckps := []Checkpoint{fixture(t, 1), fixture(t, 2)}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := key(i % 6)
				if (i+w)%3 == 0 {
					s.Put(k, ckps[i%2])
				} else if ckp, ok := s.Get(k); ok {
					// Restore into a private cache: Get results must be
					// usable concurrently.
					c := tlcache.New(config.TLC, 300)
					if err := c.RestoreState(ckp.L2); err != nil {
						t.Error(err)
						return
					}
					if !c.Contains(mem.Block(0)) && !c.Contains(mem.Block(1)) {
						// Sanity touch so the restore is not optimized away;
						// warmed fixtures contain plenty of low blocks, but
						// either way this is just a read.
						_ = c
					}
				}
			}
		}()
	}
	wg.Wait()
	if err := s.DiskErr(); err != nil {
		t.Fatal(err)
	}
}

func TestGobHandlesAllDesignStates(t *testing.T) {
	// Every design's state must survive the disk tier: the gob registry
	// must cover SNUCA, DNUCA, and the TLC family.
	dir := t.TempDir()
	states := map[string]l2.State{
		"snuca": nuca.NewSNUCA(300).SnapshotState(),
		"dnuca": nuca.NewDNUCA(300).SnapshotState(),
		"tlc":   tlcache.New(config.TLCOpt500, 300).SnapshotState(),
	}
	base := fixture(t, 4)
	for name, st := range states {
		k := Key{Config: "cfg", Bench: name, Seed: 1, Warm: 10}
		ckp := base
		ckp.L2 = st
		NewStore(4, dir).Put(k, ckp)
		got, ok := NewStore(4, dir).Get(k)
		if !ok {
			t.Fatalf("%s: checkpoint not found on disk", name)
		}
		if !reflect.DeepEqual(got.L2, st) {
			t.Fatalf("%s: L2 state changed across the disk tier", name)
		}
	}
}
