package snapshot

// ProfileStore caches phase profiles (sample.Profile): the clustering a
// phase-sampled run needs, keyed by the workload content key the caller
// computes. Same tiering as the checkpoint Store — bounded in-process LRU
// plus an optional gob disk tier with atomic temp-file + rename writes and
// corrupt-degrades-to-miss — plus an optional fill hook consulted on a
// local miss (the fleet wires peer fetch here, so a fleet pays each
// profiling pass once total).

import (
	"container/list"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"

	"tlc/internal/sample"
)

// ProfileStats counts profile-store traffic.
type ProfileStats struct {
	// Hits counts Get/Peek calls satisfied from memory or disk.
	Hits uint64
	// DiskHits counts the subset of Hits served by reading the disk tier.
	DiskHits uint64
	// FillHits counts Get misses satisfied by the fill hook (peer fetch).
	FillHits uint64
	// Misses counts Get/Peek calls that found nothing anywhere.
	Misses uint64
	// Puts counts profiles stored.
	Puts uint64
}

// ProfileStore is a bounded in-process LRU of phase profiles with an
// optional disk tier and fill hook. All methods are safe for concurrent
// use.
type ProfileStore struct {
	mu      sync.Mutex
	cap     int
	dir     string
	order   *list.List // front = most recently used; values are *profileEntry
	items   map[string]*list.Element
	stats   ProfileStats
	diskErr error
	fill    func(key string) (sample.Profile, bool)
}

type profileEntry struct {
	key  string
	prof sample.Profile
}

// profileEnvelope is the on-disk record; the key rides along so a load
// verifies it got the profile it asked for.
type profileEnvelope struct {
	Key     string
	Profile sample.Profile
}

// DefaultProfileCapacity bounds the in-process tier. Profiles are a few
// kilobytes each (feature rows dominate), so this comfortably covers the
// benchmark grid times several sampling shapes.
const DefaultProfileCapacity = 256

// NewProfileStore builds a store holding up to capacity profiles in memory
// (DefaultProfileCapacity if capacity <= 0). If dir is non-empty, profiles
// are also written there and Get/Peek fall back to disk on a memory miss;
// the directory is created on first use.
func NewProfileStore(capacity int, dir string) *ProfileStore {
	if capacity <= 0 {
		capacity = DefaultProfileCapacity
	}
	return &ProfileStore{
		cap:   capacity,
		dir:   dir,
		order: list.New(),
		items: make(map[string]*list.Element),
	}
}

// SetFill installs the miss hook Get consults after memory and disk: the
// fleet's profile peer fetch. The hook must be a pure lookup — it must
// never trigger profile computation on a peer, so there is no recursion.
// Call before the store is shared across goroutines.
func (s *ProfileStore) SetFill(fill func(key string) (sample.Profile, bool)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fill = fill
}

// profileFilename is the key's on-disk name, FNV-hashed like checkpoint
// files; the "prof-" prefix keeps the two tiers distinct in a shared dir.
func profileFilename(key string) string {
	h := fnv.New64a()
	h.Write([]byte(key))
	return fmt.Sprintf("prof-%016x.gob", h.Sum64())
}

// Get returns the profile for key, consulting memory, then disk, then the
// fill hook. A fill hit is stored in both tiers so later runs (and peers
// asking this node) find it locally.
func (s *ProfileStore) Get(key string) (sample.Profile, bool) {
	s.mu.Lock()
	if prof, ok := s.lookupLocked(key); ok {
		s.mu.Unlock()
		return prof, true
	}
	fill := s.fill
	s.mu.Unlock()
	if fill != nil {
		// A fill hit is taken as-is: consumers validate a profile against
		// their run (sample.Profile.Check) and fall back to recomputing on
		// any mismatch, so a bad peer can cost a recompute but never a
		// wrong interval selection.
		if prof, ok := fill(key); ok {
			s.mu.Lock()
			s.stats.FillHits++
			s.insertLocked(key, prof)
			if s.dir != "" {
				s.save(key, prof)
			}
			s.mu.Unlock()
			return prof, true
		}
	}
	s.mu.Lock()
	s.stats.Misses++
	s.mu.Unlock()
	return sample.Profile{}, false
}

// Peek is Get without the fill hook: a pure local lookup. The HTTP profile
// endpoint serves from it, which is what makes peer fills recursion-free.
func (s *ProfileStore) Peek(key string) (sample.Profile, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if prof, ok := s.lookupLocked(key); ok {
		return prof, true
	}
	s.stats.Misses++
	return sample.Profile{}, false
}

// lookupLocked checks memory then disk, counting a hit. Caller holds mu.
func (s *ProfileStore) lookupLocked(key string) (sample.Profile, bool) {
	if el, ok := s.items[key]; ok {
		s.order.MoveToFront(el)
		s.stats.Hits++
		return el.Value.(*profileEntry).prof, true
	}
	if s.dir != "" {
		if prof, ok := s.load(key); ok {
			s.insertLocked(key, prof)
			s.stats.Hits++
			s.stats.DiskHits++
			return prof, true
		}
	}
	return sample.Profile{}, false
}

// Put stores the profile for key, evicting the least-recently-used entry
// if the memory tier is full, and writes it to the disk tier if
// configured. The caller must not mutate prof's slices after Put.
func (s *ProfileStore) Put(key string, prof sample.Profile) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.insertLocked(key, prof)
	s.stats.Puts++
	if s.dir != "" {
		s.save(key, prof)
	}
}

// Stats returns a snapshot of the traffic counters.
func (s *ProfileStore) Stats() ProfileStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// DiskErr reports the first disk-tier failure, if any; disk problems
// degrade the store to memory-only rather than failing runs.
func (s *ProfileStore) DiskErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.diskErr
}

// insertLocked adds or refreshes a memory-tier entry. Caller holds mu.
func (s *ProfileStore) insertLocked(key string, prof sample.Profile) {
	if el, ok := s.items[key]; ok {
		el.Value.(*profileEntry).prof = prof
		s.order.MoveToFront(el)
		return
	}
	s.items[key] = s.order.PushFront(&profileEntry{key: key, prof: prof})
	for len(s.items) > s.cap {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.items, oldest.Value.(*profileEntry).key)
	}
}

// save writes the profile to the disk tier atomically: encode into a temp
// file in the same directory, then rename over the final name, so a reader
// — or a process killed mid-write — never observes a torn profile. Caller
// holds mu.
func (s *ProfileStore) save(key string, prof sample.Profile) {
	err := func() error {
		if err := os.MkdirAll(s.dir, 0o755); err != nil {
			return err
		}
		tmp, err := os.CreateTemp(s.dir, "prof-*.tmp")
		if err != nil {
			return err
		}
		defer os.Remove(tmp.Name())
		if err := gob.NewEncoder(tmp).Encode(profileEnvelope{Key: key, Profile: prof}); err != nil {
			tmp.Close()
			return err
		}
		if err := tmp.Close(); err != nil {
			return err
		}
		return os.Rename(tmp.Name(), filepath.Join(s.dir, profileFilename(key)))
	}()
	if err != nil && s.diskErr == nil {
		s.diskErr = fmt.Errorf("snapshot: writing profile %s: %w", key, err)
	}
}

// load reads a profile from the disk tier. A truncated or foreign file —
// possible only outside save's atomic rename path — degrades to a miss, so
// the caller recomputes instead of clustering on garbage. Caller holds mu.
func (s *ProfileStore) load(key string) (sample.Profile, bool) {
	f, err := os.Open(filepath.Join(s.dir, profileFilename(key)))
	if err != nil {
		return sample.Profile{}, false // absent: a plain miss, not an error
	}
	defer f.Close()
	var env profileEnvelope
	if err := gob.NewDecoder(f).Decode(&env); err != nil || env.Key != key {
		if err != nil && s.diskErr == nil {
			s.diskErr = fmt.Errorf("snapshot: reading profile %s: %w", key, err)
		}
		return sample.Profile{}, false
	}
	return env.Profile, true
}
