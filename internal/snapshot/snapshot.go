// Package snapshot stores warm-state checkpoints: the complete post-warm-up
// functional state of a simulated machine, keyed by everything that
// determines it. A seed study or parameter sweep re-pays the 4M–24M
// instruction functional warm-up for every (design, bench) point it visits;
// with a checkpoint the warm-up runs once and later runs restore its result
// directly.
//
// Determinism contract: warm-up is purely functional (cpu.Core.Warm and the
// designs' Warm methods touch arrays and shadow tags only — no timing
// resources, no statistics), so a checkpoint captures the machine exactly
// and a restored run is bit-identical to one that re-executed the warm-up.
// The warm-prefix capture is batch-driven (cpu.MemStream run-length
// skipping plus l2.Warmer bulk installs), which the contract survives
// because batching is pinned bit-identical to scalar delivery: checkpoints
// written by scalar warm-up and batched warm-up are interchangeable.
//
// The store is an in-process LRU with an optional on-disk tier. Disk
// persistence uses encoding/gob with atomic temp-file + rename writes, so
// concurrent processes sharing a directory never observe torn checkpoints.
package snapshot

import (
	"container/list"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"

	"tlc/internal/cpu"
	"tlc/internal/l2"
	"tlc/internal/machine"
	"tlc/internal/nuca"
	"tlc/internal/tlcache"
	"tlc/internal/workload"
)

func init() {
	// The L2 half of a checkpoint is an opaque l2.State; gob needs the
	// concrete design types registered to encode through the interface.
	gob.Register(nuca.SNUCAState{})
	gob.Register(nuca.DNUCAState{})
	gob.Register(tlcache.State{})
}

// Key identifies one warm-up result: the design configuration (a hash of
// every parameter that shapes machine state), the benchmark, the seed that
// drove the warm-up stream, and the warm-up length. Two runs with equal
// keys provably reach identical post-warm state.
type Key struct {
	// Config is a hash of the design + system configuration, computed by
	// the caller (tlc.Options knows the full parameter set; this package
	// does not). It also versions the checkpoint format: callers bump the
	// hash input when state layouts change.
	Config string
	Bench  string
	Seed   int64
	Warm   uint64
}

// String renders the key for filenames and diagnostics.
func (k Key) String() string {
	return fmt.Sprintf("%s-%s-s%d-w%d", k.Config, k.Bench, k.Seed, k.Warm)
}

// filename is the key's on-disk name: an FNV hash keeps names short and
// filesystem-safe regardless of bench naming.
func (k Key) filename() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s\x00%s\x00%d\x00%d", k.Config, k.Bench, k.Seed, k.Warm)
	return fmt.Sprintf("ckpt-%016x.gob", h.Sum64())
}

// Checkpoint is the complete post-warm machine state: core caches, L2
// contents, and the workload generator's stream position.
type Checkpoint struct {
	Core cpu.State
	L2   l2.State
	Gen  workload.State
	// Lanes marks a checkpoint produced by a lane-parallel warm pass (one
	// shared stream warming several configurations at once). Provenance
	// only: lane-warmed state is bit-identical to scalar-warmed state, so
	// consumers restore both the same way. Old stored checkpoints decode
	// with Lanes false.
	Lanes bool
	// CMP holds the extra state of an N-core machine (nil for single-core
	// checkpoints). It is the CMP provenance flag: consumers restoring for
	// a multi-core key must treat a checkpoint whose CMP is nil — or whose
	// core count differs — as a miss, the same way the lane planner's Has
	// probe gates lane reuse. Core/Gen keep core 0's state for such
	// checkpoints (redundantly with CMP.Cores[0]/Gens[0].Gen) so older
	// tooling reading the envelope sees a coherent single-core view.
	CMP *CMPCheckpoint
}

// CMPCheckpoint is an N-core machine's post-warm state beyond the shared
// L2: every core's cache state, every core's CMP stream position, and the
// MSI coherence directory (sorted by block; see
// machine.DirectorySnapshot).
type CMPCheckpoint struct {
	Cores []cpu.State
	Gens  []workload.CMPState
	Dir   []machine.DirEntry
}

// Stats counts store traffic, for tests and the experiment harness's
// cache-effectiveness reporting.
type Stats struct {
	// Hits counts Get calls satisfied from memory or disk.
	Hits uint64
	// DiskHits counts the subset of Hits served by reading the disk tier.
	DiskHits uint64
	// Misses counts Get calls that found nothing.
	Misses uint64
	// Puts counts checkpoints stored.
	Puts uint64
}

// Store is a bounded in-process LRU of checkpoints with an optional disk
// tier. All methods are safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	cap     int
	dir     string
	order   *list.List // front = most recently used; values are *entry
	items   map[Key]*list.Element
	stats   Stats
	diskErr error // first disk failure, reported once via DiskErr
}

// entry is one resident checkpoint.
type entry struct {
	key Key
	ckp Checkpoint
}

// diskEnvelope is the on-disk record: the key rides along so a load
// verifies it got the checkpoint it asked for (hash-named files could
// collide in principle).
type diskEnvelope struct {
	Key        Key
	Checkpoint Checkpoint
}

// DefaultCapacity bounds the in-process tier. Checkpoints are megabytes
// each (L2 arrays dominate); a sweep touches one per (design, bench, warm),
// so a small multiple of the twelve benchmarks is plenty.
const DefaultCapacity = 64

// NewStore builds a store holding up to capacity checkpoints in memory
// (DefaultCapacity if capacity <= 0). If dir is non-empty, checkpoints are
// also written there and Get falls back to disk on a memory miss; the
// directory is created on first use.
func NewStore(capacity int, dir string) *Store {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Store{
		cap:   capacity,
		dir:   dir,
		order: list.New(),
		items: make(map[Key]*list.Element),
	}
}

// Get returns the checkpoint for k. The returned checkpoint's state values
// are shared with the store but treated as read-only by every consumer
// (Restore methods copy out of them), so concurrent Gets of the same key
// are safe.
func (s *Store) Get(k Key) (Checkpoint, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[k]; ok {
		s.order.MoveToFront(el)
		s.stats.Hits++
		return el.Value.(*entry).ckp, true
	}
	if s.dir != "" {
		if ckp, ok := s.load(k); ok {
			s.insertLocked(k, ckp)
			s.stats.Hits++
			s.stats.DiskHits++
			return ckp, true
		}
	}
	s.stats.Misses++
	return Checkpoint{}, false
}

// Has reports whether a checkpoint for k is resident in memory or present
// on the disk tier. Unlike Get it moves no LRU state, reads no disk
// payload, and leaves the traffic stats untouched — the lane planner
// probes with it to decide which lanes still need warming without
// perturbing the hit/miss accounting of the runs themselves.
func (s *Store) Has(k Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.items[k]; ok {
		return true
	}
	if s.dir == "" {
		return false
	}
	_, err := os.Stat(filepath.Join(s.dir, k.filename()))
	return err == nil
}

// Put stores the checkpoint for k, evicting the least-recently-used entry
// if the memory tier is full, and writes it to the disk tier if configured.
// The caller must not mutate ckp's state values after Put.
func (s *Store) Put(k Key, ckp Checkpoint) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.insertLocked(k, ckp)
	s.stats.Puts++
	if s.dir != "" {
		s.save(k, ckp)
	}
}

// Stats returns a snapshot of the traffic counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// DiskErr reports the first disk-tier failure, if any. Disk problems
// degrade the store to memory-only rather than failing runs; callers that
// care (the CLIs) surface this as a warning.
func (s *Store) DiskErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.diskErr
}

// insertLocked adds or refreshes a memory-tier entry. Caller holds mu.
func (s *Store) insertLocked(k Key, ckp Checkpoint) {
	if el, ok := s.items[k]; ok {
		el.Value.(*entry).ckp = ckp
		s.order.MoveToFront(el)
		return
	}
	s.items[k] = s.order.PushFront(&entry{key: k, ckp: ckp})
	for len(s.items) > s.cap {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.items, oldest.Value.(*entry).key)
	}
}

// save writes the checkpoint to the disk tier atomically. Caller holds mu.
func (s *Store) save(k Key, ckp Checkpoint) {
	err := func() error {
		if err := os.MkdirAll(s.dir, 0o755); err != nil {
			return err
		}
		tmp, err := os.CreateTemp(s.dir, "ckpt-*.tmp")
		if err != nil {
			return err
		}
		defer os.Remove(tmp.Name())
		if err := gob.NewEncoder(tmp).Encode(diskEnvelope{Key: k, Checkpoint: ckp}); err != nil {
			tmp.Close()
			return err
		}
		if err := tmp.Close(); err != nil {
			return err
		}
		return os.Rename(tmp.Name(), filepath.Join(s.dir, k.filename()))
	}()
	if err != nil && s.diskErr == nil {
		s.diskErr = fmt.Errorf("snapshot: writing %s: %w", k, err)
	}
}

// load reads a checkpoint from the disk tier. Caller holds mu.
func (s *Store) load(k Key) (Checkpoint, bool) {
	f, err := os.Open(filepath.Join(s.dir, k.filename()))
	if err != nil {
		return Checkpoint{}, false // absent: a plain miss, not an error
	}
	defer f.Close()
	var env diskEnvelope
	if err := gob.NewDecoder(f).Decode(&env); err != nil || env.Key != k {
		// A torn or foreign file cannot happen via save's atomic rename,
		// but a truncated disk or hash collision could; treat as a miss.
		if err != nil && s.diskErr == nil {
			s.diskErr = fmt.Errorf("snapshot: reading %s: %w", k, err)
		}
		return Checkpoint{}, false
	}
	return env.Checkpoint, true
}
