package power

import (
	"testing"

	"tlc/internal/config"
	"tlc/internal/mem"
	"tlc/internal/noc"
	"tlc/internal/sim"
	"tlc/internal/tlcache"
)

func TestMeshEnergyAccumulatesWithTraffic(t *testing.T) {
	m := noc.New(config.NUCAFor(config.DNUCA).Mesh)
	if MeshEnergyJ(m) != 0 {
		t.Fatal("idle mesh should have zero dynamic energy")
	}
	m.Route(0, 0, 10, 64, noc.ToBank)
	e1 := MeshEnergyJ(m)
	if e1 <= 0 {
		t.Fatal("traffic should dissipate energy")
	}
	m.Route(100, 0, 10, 64, noc.ToBank)
	if MeshEnergyJ(m) <= e1 {
		t.Fatal("more traffic should dissipate more energy")
	}
}

func TestMeshPowerAveragesOverTime(t *testing.T) {
	m := noc.New(config.NUCAFor(config.DNUCA).Mesh)
	m.Route(0, 0, 10, 64, noc.ToBank)
	p1 := MeshDynamicPowerW(m, 1000)
	p2 := MeshDynamicPowerW(m, 2000)
	if p1 <= 0 || p2 != p1/2 {
		t.Fatalf("power should scale inversely with window: %v vs %v", p1, p2)
	}
	if MeshDynamicPowerW(m, 0) != 0 {
		t.Fatal("zero-length window should report zero power")
	}
}

func TestTLCPowerBelowDNUCAForSameTraffic(t *testing.T) {
	// Route comparable traffic through both networks and compare energy:
	// the paper's Table 9 claim in microcosm.
	mesh := noc.New(config.NUCAFor(config.DNUCA).Mesh)
	tl := tlcache.New(config.TLC, 300)
	for i := 0; i < 200; i++ {
		at := uint64(i * 50)
		mesh.Route(nocTime(at), i%16, 8, 72, noc.ToBank)
		mesh.Route(nocTime(at+20), i%16, 8, 72, noc.ToController)
		tl.Access(nocTime(at), mem.Request{Block: mem.Block(i), Type: mem.Load})
	}
	meshP := MeshDynamicPowerW(mesh, 10000)
	tlP := TLCDynamicPowerW(tl, 10000)
	if tlP >= meshP {
		t.Fatalf("TLC network power %.2g W should undercut the mesh %.2g W", tlP, meshP)
	}
}

func TestLeakageProxyLinear(t *testing.T) {
	if LeakageProxy(200) != 2*LeakageProxy(100) {
		t.Fatal("leakage proxy should be linear in gate width")
	}
}

func TestRCWireEnergyScalesWithLength(t *testing.T) {
	if RCWireEnergyPerBitJ(10) <= RCWireEnergyPerBitJ(1) {
		t.Fatal("longer wires should cost more per bit")
	}
}

// nocTime adapts a plain integer to the sim.Time the interfaces expect.
func nocTime(v uint64) sim.Time { return sim.Time(v) }
