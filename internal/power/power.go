// Package power converts the traffic counters the cache models accumulate
// into the Table 9 dynamic-power numbers, and rolls up the static
// (leakage-proxy) comparison behind Table 8's gate-width column.
//
// Conventional mesh signalling charges the full wire capacitance every
// transition (alpha * C * V^2 * f); transmission-line signalling drives a
// matched line for one bit time (alpha * t_b * V^2/(R_D+Z0) * f). The
// crossover — t_b/(2 Z0) < C — favours transmission lines for links beyond
// about a centimeter, which is exactly the TLC regime.
package power

import (
	"tlc/internal/noc"
	"tlc/internal/sim"
	"tlc/internal/tlcache"
	"tlc/internal/wire"
)

// CyclePeriodS is the 10 GHz clock period in seconds.
const CyclePeriodS = 100e-12

// MeshEnergyJ reports the dynamic energy a NUCA mesh has dissipated:
// link-wire switching plus router traversal for every flit-segment.
func MeshEnergyJ(m *noc.Mesh) float64 {
	cfg := m.Config()
	sc := noc.DefaultSwitch(cfg.FlitBytes)
	spine := float64(m.SpineFlitSegs) * (noc.LinkEnergyPerFlitJ(cfg.FlitBytes, cfg.SpineSegMM) + sc.EnergyPerFlitJ())
	vert := float64(m.VertFlitSegs) * (noc.LinkEnergyPerFlitJ(cfg.FlitBytes, cfg.VertSegMM) + sc.EnergyPerFlitJ())
	return spine + vert
}

// MeshDynamicPowerW reports mesh dynamic power averaged over a run of the
// given length.
func MeshDynamicPowerW(m *noc.Mesh, cycles sim.Time) float64 {
	if cycles == 0 {
		return 0
	}
	return MeshEnergyJ(m) / (float64(cycles) * CyclePeriodS)
}

// TLCDynamicPowerW reports transmission-line network dynamic power for a
// TLC-family cache averaged over a run.
func TLCDynamicPowerW(c *tlcache.Cache, cycles sim.Time) float64 {
	if cycles == 0 {
		return 0
	}
	return c.NetworkEnergyJ() / (float64(cycles) * CyclePeriodS)
}

// LeakageProxy compares static power via total transistor gate width, the
// paper's Table 8 argument: leakage is proportional to width, so the
// network with an order of magnitude less gate width leaks an order of
// magnitude less.
func LeakageProxy(gateWidthLambda float64) float64 {
	// Normalized leakage units per lambda of gate width.
	const leakPerLambda = 1.0
	return gateWidthLambda * leakPerLambda
}

// RCWireEnergyPerBitJ is the conventional-wire energy to move one bit one
// segment: exposed for the crossover analysis in cmd/tlcphys.
func RCWireEnergyPerBitJ(segMM float64) float64 {
	const activity = 0.5
	return activity * wire.EnergyPerTransitionJ(wire.Global45(), segMM)
}
