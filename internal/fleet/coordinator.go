package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tlc/internal/api"
	"tlc/internal/client"
	"tlc/internal/metrics"
	"tlc/internal/sim"
)

// Config parameterizes a Coordinator. The zero value is usable.
type Config struct {
	// HealthInterval is the period of the readiness probe loop (default 2s).
	HealthInterval time.Duration
	// ProbeTimeout bounds one /readyz probe (default 1s).
	ProbeTimeout time.Duration
	// DeadAfter is the consecutive probe failures after which a worker is
	// declared dead — removed from routing entirely, not just marked
	// unready (default 3).
	DeadAfter int
	// Replicas is the virtual-node count per worker on the routing ring
	// (default 128). Every member of the fleet must agree on it.
	Replicas int
	// SweepFanout bounds concurrently dispatched sweep points (default 32).
	// Workers additionally bound themselves: sweep points are dispatched
	// with blocking admission, so a worker's queue, not the coordinator,
	// is the real throttle.
	SweepFanout int
}

// workerState is one registered worker as the coordinator sees it.
type workerState struct {
	base  string
	alive bool
	ready bool
	fails int // consecutive probe failures
}

// Coordinator is the fleet's routing front end. Workers register with it
// (POST /v1/workers, idempotent, doubling as a heartbeat); it probes their
// readiness, consistent-hashes every run key across the ready ones, and
// proxies the tlcd run API so clients — tlcsweep -remote, curl — speak to
// a fleet exactly as they would to one tlcd. It executes nothing itself:
// simulation capacity, result caches, and backpressure all live on the
// workers, which is what lets the fleet scale by registration alone.
type Coordinator struct {
	cfg   Config
	reg   *metrics.Registry
	start time.Time

	mu      sync.Mutex
	workers map[string]*workerState
	ring    *Ring // ready workers only; rebuilt when readiness changes
	clients map[string]*client.Client
	hc      *http.Client

	stop     chan struct{}
	loopDone chan struct{}

	nHTTP        atomic.Uint64
	nRouted      atomic.Uint64
	nFailovers   atomic.Uint64
	nUnroutable  atomic.Uint64
	nSweeps      atomic.Uint64
	nSweepPoints atomic.Uint64
}

// NewCoordinator builds a coordinator and starts its health loop. Call
// Close before discarding it.
func NewCoordinator(cfg Config) *Coordinator {
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 2 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	if cfg.DeadAfter <= 0 {
		cfg.DeadAfter = 3
	}
	if cfg.SweepFanout <= 0 {
		cfg.SweepFanout = 32
	}
	c := &Coordinator{
		cfg:      cfg,
		reg:      metrics.New(),
		start:    time.Now(),
		workers:  make(map[string]*workerState),
		ring:     NewRing(cfg.Replicas),
		clients:  make(map[string]*client.Client),
		hc:       &http.Client{},
		stop:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	c.registerMetrics()
	go c.healthLoop()
	return c
}

func (c *Coordinator) registerMetrics() {
	c.reg.CounterFunc("fleet.http.requests", c.nHTTP.Load)
	c.reg.CounterFunc("fleet.runs.routed", c.nRouted.Load)
	c.reg.CounterFunc("fleet.runs.failovers", c.nFailovers.Load)
	c.reg.CounterFunc("fleet.runs.unroutable", c.nUnroutable.Load)
	c.reg.CounterFunc("fleet.sweeps.requested", c.nSweeps.Load)
	c.reg.CounterFunc("fleet.sweeps.points", c.nSweepPoints.Load)
	c.reg.Gauge("fleet.workers.registered", func(sim.Time) float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.workers))
	})
	c.reg.Gauge("fleet.workers.ready", func(sim.Time) float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		n := 0
		for _, w := range c.workers {
			if w.ready {
				n++
			}
		}
		return float64(n)
	})
	c.reg.Gauge("fleet.uptime_seconds", func(sim.Time) float64 { return time.Since(c.start).Seconds() })
}

// Metrics exposes the coordinator's registry (tests and /metricz).
func (c *Coordinator) Metrics() *metrics.Registry { return c.reg }

// Close stops the health loop.
func (c *Coordinator) Close() {
	close(c.stop)
	<-c.loopDone
}

// clientFor returns (building on first use) the routing client for one
// worker. Routing clients fail fast: few retries, short backoff, and 503
// excluded from retry — a draining worker answers 503 until it exits, so
// the right move is immediate failover to the next ring node, while 429
// (busy, with a Retry-After estimate) and transient transport errors are
// still retried in place.
func (c *Coordinator) clientFor(base string) *client.Client {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cl, ok := c.clients[base]; ok {
		return cl
	}
	cl := client.New(base, c.hc)
	cl.Retries = 2
	cl.Backoff = 50 * time.Millisecond
	cl.RetryStatus = func(status int) bool {
		switch status {
		case http.StatusTooManyRequests, http.StatusBadGateway, http.StatusGatewayTimeout:
			return true
		}
		return false
	}
	c.clients[base] = cl
	return cl
}

// register upserts a worker. A (re-)registration marks it alive and ready
// optimistically; the next probe corrects within one HealthInterval.
func (c *Coordinator) register(base string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[base]
	if !ok {
		w = &workerState{base: base}
		c.workers[base] = w
	}
	if !w.alive || !w.ready {
		w.alive, w.ready, w.fails = true, true, 0
		c.rebuildRingLocked()
	}
}

// rebuildRingLocked reconstitutes the routing ring from the ready workers.
// Caller holds mu.
func (c *Coordinator) rebuildRingLocked() {
	r := NewRing(c.cfg.Replicas)
	for _, w := range c.workers {
		if w.ready {
			r.Add(w.base)
		}
	}
	c.ring = r
}

// markUnready pulls a worker out of routing immediately (a failed dispatch
// should not wait for the probe loop to notice); the probe loop restores
// it when /readyz answers 200 again.
func (c *Coordinator) markUnready(base string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w, ok := c.workers[base]; ok && w.ready {
		w.ready = false
		c.rebuildRingLocked()
	}
}

// snapshot lists worker states, sorted by base URL.
func (c *Coordinator) snapshot() api.FleetState {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := api.FleetState{Workers: make([]api.WorkerState, 0, len(c.workers))}
	for _, w := range c.workers {
		out.Workers = append(out.Workers, api.WorkerState{BaseURL: w.base, Alive: w.alive, Ready: w.ready})
	}
	sort.Slice(out.Workers, func(i, j int) bool { return out.Workers[i].BaseURL < out.Workers[j].BaseURL })
	return out
}

// candidates returns the failover sequence for key: ready workers in ring
// order starting at the owner.
func (c *Coordinator) candidates(key string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring.Successors(key, 0)
}

// healthLoop probes every registered worker each interval. One /readyz
// round-trip answers both questions the router has: a 200 is ready, any
// other response (a draining worker's 503) is alive but not ready, and
// DeadAfter consecutive non-responses is dead.
func (c *Coordinator) healthLoop() {
	defer close(c.loopDone)
	tick := time.NewTicker(c.cfg.HealthInterval)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
			c.probeAll()
		}
	}
}

func (c *Coordinator) probeAll() {
	c.mu.Lock()
	bases := make([]string, 0, len(c.workers))
	for b := range c.workers {
		bases = append(bases, b)
	}
	c.mu.Unlock()

	type verdict struct {
		base      string
		responded bool
		ready     bool
	}
	results := make(chan verdict, len(bases))
	for _, b := range bases {
		go func(base string) {
			ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/readyz", nil)
			if err != nil {
				results <- verdict{base: base}
				return
			}
			resp, err := c.hc.Do(req)
			if err != nil {
				results <- verdict{base: base}
				return
			}
			resp.Body.Close()
			results <- verdict{base: base, responded: true, ready: resp.StatusCode == http.StatusOK}
		}(b)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	changed := false
	for range bases {
		v := <-results
		w, ok := c.workers[v.base]
		if !ok {
			continue
		}
		if v.responded {
			if !w.alive || w.ready != v.ready {
				changed = true
			}
			w.alive, w.ready, w.fails = true, v.ready, 0
		} else {
			w.fails++
			if w.fails >= c.cfg.DeadAfter && (w.alive || w.ready) {
				w.alive, w.ready = false, false
				changed = true
			}
		}
	}
	if changed {
		c.rebuildRingLocked()
	}
}

// coordError carries an HTTP status through the routing path.
type coordError struct {
	status     int
	msg        string
	retryAfter int
}

func (e *coordError) Error() string { return e.msg }

// route dispatches one run to its key's owner, failing over along the ring
// when a worker cannot serve it. Failover is for infrastructure failures
// only (transport errors, 502/503/504): a 4xx or 500 is deterministic —
// the identical content-addressed request fails identically everywhere —
// and is passed through. 429 means the owner is healthy but saturated;
// the client has already honored its Retry-After, so the key spills to
// the next ring node rather than waiting longer (the spill node coalesces
// and caches like any other run, and ownership reasserts on the next
// request). Results are deterministic, so a spill changes placement, never
// bytes.
func (c *Coordinator) route(ctx context.Context, req api.RunRequest, block bool) (api.RunRecord, *coordError) {
	key, err := req.Key()
	if err != nil {
		return api.RunRecord{}, &coordError{status: 400, msg: err.Error()}
	}
	cands := c.candidates(key)
	if len(cands) == 0 {
		return api.RunRecord{}, &coordError{status: 503, msg: "fleet: no ready workers"}
	}
	var lastErr error
	for i, node := range cands {
		if i > 0 {
			c.nFailovers.Add(1)
		}
		cl := c.clientFor(node)
		var rec api.RunRecord
		var rerr error
		if block {
			rec, rerr = cl.RunBlocking(ctx, req)
		} else {
			rec, rerr = cl.Run(ctx, req)
		}
		if rerr == nil {
			c.nRouted.Add(1)
			return rec, nil
		}
		if ctx.Err() != nil {
			return api.RunRecord{}, &coordError{status: 504, msg: ctx.Err().Error()}
		}
		var serr *client.StatusError
		if errors.As(rerr, &serr) {
			switch {
			case serr.Status < 500 && serr.Status != http.StatusTooManyRequests:
				return api.RunRecord{}, &coordError{status: serr.Status, msg: serr.Msg}
			case serr.Status == http.StatusInternalServerError:
				return api.RunRecord{}, &coordError{status: 500, msg: serr.Msg}
			case serr.Status == http.StatusTooManyRequests:
				// Saturated but healthy: spill to the next node without
				// pulling the owner out of routing.
			default:
				c.markUnready(node)
			}
		} else {
			c.markUnready(node)
		}
		lastErr = rerr
	}
	c.nUnroutable.Add(1)
	return api.RunRecord{}, &coordError{status: 502, msg: fmt.Sprintf("fleet: no worker could serve the run: %v", lastErr)}
}

// Handler returns the coordinator's HTTP interface — the tlcd run surface
// (runs, sweeps) plus fleet membership:
//
//	POST /v1/workers    register a worker (idempotent heartbeat)
//	GET  /v1/workers    membership with liveness/readiness
//	POST /v1/runs       route one run to its key's owner
//	GET  /v1/runs/{id}  content-address lookup across the fleet
//	POST /v1/sweeps     route a grid, streamed back as NDJSON
//	GET  /healthz       liveness
//	GET  /readyz        readiness (503 until a worker is ready)
//	GET  /metricz       the coordinator's own counters
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/workers", c.handleRegister)
	mux.HandleFunc("GET /v1/workers", c.handleWorkers)
	mux.HandleFunc("POST /v1/runs", c.handleRun)
	mux.HandleFunc("GET /v1/runs/{id}", c.handleGetRun)
	mux.HandleFunc("POST /v1/sweeps", c.handleSweep)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", c.handleReady)
	mux.HandleFunc("GET /metricz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.reg.Snapshot(sim.Time(0)))
	})
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c.nHTTP.Add(1)
		mux.ServeHTTP(w, r)
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeCoordError(w http.ResponseWriter, e *coordError) {
	if e.retryAfter > 0 {
		w.Header().Set("Retry-After", fmt.Sprint(e.retryAfter))
	}
	writeJSON(w, e.status, api.Error{Error: e.msg})
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req api.RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeCoordError(w, &coordError{status: 400, msg: "decoding registration: " + err.Error()})
		return
	}
	if req.BaseURL == "" {
		writeCoordError(w, &coordError{status: 400, msg: "registration without base_url"})
		return
	}
	c.register(req.BaseURL)
	writeJSON(w, http.StatusOK, c.snapshot())
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.snapshot())
}

func (c *Coordinator) handleReady(w http.ResponseWriter, r *http.Request) {
	for _, ws := range c.snapshot().Workers {
		if ws.Ready {
			writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
			return
		}
	}
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "no ready workers"})
}

func (c *Coordinator) handleRun(w http.ResponseWriter, r *http.Request) {
	var req api.RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeCoordError(w, &coordError{status: 400, msg: "decoding request: " + err.Error()})
		return
	}
	rec, cerr := c.route(r.Context(), req, r.URL.Query().Get("block") == "1")
	if cerr != nil {
		writeCoordError(w, cerr)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// handleGetRun looks a content address up across the fleet: the owner
// first, then — because a membership change may have left the record at a
// previous owner — the rest of the ring, cheapest-first. Pure cache reads;
// nothing simulates.
func (c *Coordinator) handleGetRun(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	for _, node := range c.candidates(id) {
		rec, ok, err := c.clientFor(node).GetRun(r.Context(), id)
		if err == nil && ok {
			writeJSON(w, http.StatusOK, rec)
			return
		}
		if r.Context().Err() != nil {
			writeCoordError(w, &coordError{status: 504, msg: r.Context().Err().Error()})
			return
		}
	}
	writeCoordError(w, &coordError{status: 404, msg: "no completed run with id " + id})
}

// handleSweep is the fleet's POST /v1/sweeps: every grid point is routed
// to its owner (with failover) and streamed back the moment it lands, so
// the sweep completes as long as any worker survives. Dispatch uses
// blocking admission on the workers — a saturated fleet queues instead of
// 429-bouncing its own sweep.
func (c *Coordinator) handleSweep(w http.ResponseWriter, r *http.Request) {
	var sreq api.SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&sreq); err != nil {
		writeCoordError(w, &coordError{status: 400, msg: "decoding sweep: " + err.Error()})
		return
	}
	if err := sreq.Validate(); err != nil {
		writeCoordError(w, &coordError{status: 400, msg: err.Error()})
		return
	}
	c.nSweeps.Add(1)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	var (
		wmu sync.Mutex
		enc = json.NewEncoder(w)
		wg  sync.WaitGroup
		sem = make(chan struct{}, c.cfg.SweepFanout)
	)
	emit := func(p api.SweepPoint) {
		wmu.Lock()
		defer wmu.Unlock()
		enc.Encode(p)
		if fl != nil {
			fl.Flush()
		}
	}
	for i, p := range sreq.Points {
		wg.Add(1)
		go func(i int, p api.RunRequest) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			c.nSweepPoints.Add(1)
			rec, cerr := c.route(r.Context(), p, true)
			if cerr != nil {
				emit(api.SweepPoint{Index: i, Error: cerr.msg})
				return
			}
			emit(api.SweepPoint{Index: i, Record: &rec})
		}(i, p)
	}
	wg.Wait()
}
