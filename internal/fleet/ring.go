// Package fleet shards the tlcd experiment service across N workers.
//
// The shape follows the cache-network argument from the roadmap: run IDs
// are content addresses (tlc.RunKey is known before execution) and results
// are immutable, so a fleet of tlcd workers *is* a network of caches —
// every demand should be routed to the node where the result most likely
// already lives instead of recomputed wherever a load balancer happens to
// land it. Three pieces implement that:
//
//   - Ring: a consistent-hash ring mapping run keys to workers, so a
//     membership change remaps only ~1/N of the key space;
//   - Coordinator: the routing front end — workers register with it, it
//     health-checks them (liveness via /healthz, readiness via /readyz)
//     and proxies /v1/runs and /v1/sweeps to each key's owner, failing
//     over along the ring when an owner is down or draining;
//   - Member: the worker-side agent — it keeps the worker registered,
//     mirrors the membership, and serves the peer-fill hook: on a local
//     cache miss, ask the node that owned the key before this worker
//     joined (a pure GET /v1/runs/{key} cache lookup, never a recursive
//     simulation) so a rebalanced ring does not re-run the world.
package fleet

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// defaultReplicas is the virtual-node count per worker. 128 vnodes keep
// the per-node key-space share within a few percent of 1/N for the fleet
// sizes tlcd targets (single digits to low hundreds of workers).
const defaultReplicas = 128

// Ring is a consistent-hash ring over worker base URLs. Each node is
// projected to `replicas` pseudo-random points on a 64-bit circle; a key is
// owned by the node of the first point at or clockwise of the key's hash.
// Adding or removing one node therefore remaps only the arcs adjacent to
// its points — about 1/N of the key space — which is the property the
// result-cache tier depends on: a membership change must not invalidate
// every worker's cache.
//
// Ring is not safe for concurrent use; Coordinator and Member guard theirs
// with their own mutexes.
type Ring struct {
	replicas int
	nodes    map[string]struct{}
	points   []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds an empty ring. replicas <= 0 selects the default.
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	return &Ring{replicas: replicas, nodes: make(map[string]struct{})}
}

// hash64 is FNV-1a over s: stable across processes (the coordinator and
// every member must agree on ownership without coordination).
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// Add inserts a node (idempotent).
func (r *Ring) Add(node string) {
	if _, ok := r.nodes[node]; ok {
		return
	}
	r.nodes[node] = struct{}{}
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{hash64(node + "#" + strconv.Itoa(i)), node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a node (idempotent).
func (r *Ring) Remove(node string) {
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Len reports the node count.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes lists the members, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// start returns the index of the first ring point at or clockwise of key's
// hash (wrapping past the top of the circle).
func (r *Ring) start(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Owner returns the node owning key; ok is false on an empty ring.
func (r *Ring) Owner(key string) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	return r.points[r.start(key)].node, true
}

// Successors returns up to n distinct nodes in ring order starting at
// key's owner — the failover sequence for that key. n <= 0 or n beyond the
// membership yields every node.
func (r *Ring) Successors(key string, n int) []string {
	if len(r.points) == 0 {
		return nil
	}
	if n <= 0 || n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for i, looked := r.start(key), 0; looked < len(r.points) && len(out) < n; looked++ {
		p := r.points[i]
		if _, dup := seen[p.node]; !dup {
			seen[p.node] = struct{}{}
			out = append(out, p.node)
		}
		i++
		if i == len(r.points) {
			i = 0
		}
	}
	return out
}

// OwnerExcluding returns the node that would own key if skip were not a
// member — exactly where a result landed before skip joined the ring, which
// is where a peer fill should look. ok is false when no other node exists.
func (r *Ring) OwnerExcluding(key, skip string) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	for i, looked := r.start(key), 0; looked < len(r.points); looked++ {
		if p := r.points[i]; p.node != skip {
			return p.node, true
		}
		i++
		if i == len(r.points) {
			i = 0
		}
	}
	return "", false
}
