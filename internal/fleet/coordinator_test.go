package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"tlc"
	"tlc/internal/api"
)

// fakeWorker speaks just enough of the tlcd worker API for the coordinator:
// POST /v1/runs (records the execution, returns a stub record), GET
// /v1/runs/{id} (cache lookup), GET /readyz (configurable). It lets these
// tests exercise routing, failover, and health without real simulations.
type fakeWorker struct {
	mu      sync.Mutex
	runs    map[string]int // executions by benchmark
	records map[string]api.RunRecord
	ready   int // /readyz status code
	hs      *httptest.Server
}

func newFakeWorker(t *testing.T) *fakeWorker {
	t.Helper()
	w := &fakeWorker{
		runs:    make(map[string]int),
		records: make(map[string]api.RunRecord),
		ready:   http.StatusOK,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", func(rw http.ResponseWriter, r *http.Request) {
		var req api.RunRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			rw.WriteHeader(http.StatusBadRequest)
			return
		}
		key, err := req.Key()
		if err != nil {
			rw.WriteHeader(http.StatusBadRequest)
			return
		}
		w.mu.Lock()
		w.runs[req.Benchmark]++
		rec := api.RunRecord{ID: key, Design: req.Design, Benchmark: req.Benchmark, Cycles: 42}
		w.records[key] = rec
		w.mu.Unlock()
		rw.Header().Set("Content-Type", "application/json")
		json.NewEncoder(rw).Encode(rec)
	})
	mux.HandleFunc("GET /v1/runs/{id}", func(rw http.ResponseWriter, r *http.Request) {
		w.mu.Lock()
		rec, ok := w.records[r.PathValue("id")]
		w.mu.Unlock()
		if !ok {
			rw.WriteHeader(http.StatusNotFound)
			return
		}
		json.NewEncoder(rw).Encode(rec)
	})
	mux.HandleFunc("GET /readyz", func(rw http.ResponseWriter, r *http.Request) {
		w.mu.Lock()
		st := w.ready
		w.mu.Unlock()
		rw.WriteHeader(st)
	})
	w.hs = httptest.NewServer(mux)
	t.Cleanup(w.hs.Close)
	return w
}

func (w *fakeWorker) executions() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := 0
	for _, c := range w.runs {
		n += c
	}
	return n
}

func newTestCoordinator(t *testing.T, cfg Config) (*Coordinator, *httptest.Server) {
	t.Helper()
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = time.Hour // tests drive probes explicitly
	}
	c := NewCoordinator(cfg)
	hs := httptest.NewServer(c.Handler())
	t.Cleanup(func() {
		hs.Close()
		c.Close()
	})
	return c, hs
}

func registerWorker(t *testing.T, coordURL, base string) {
	t.Helper()
	body, _ := json.Marshal(api.RegisterRequest{BaseURL: base})
	resp, err := http.Post(coordURL+"/v1/workers", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("register %s: %v", base, err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register %s: status %d", base, resp.StatusCode)
	}
}

func runReq(bench string) api.RunRequest {
	return api.RunRequest{Design: "TLC", Benchmark: bench}
}

func postCoordRun(t *testing.T, coordURL string, req api.RunRequest) (*http.Response, api.RunRecord) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(coordURL+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post run: %v", err)
	}
	defer resp.Body.Close()
	var rec api.RunRecord
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
			t.Fatalf("decode record: %v", err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp, rec
}

// TestCoordinatorRoutesByKey: every run lands on the worker the ring names
// as its key's owner — the property peer caches and coalescing depend on.
func TestCoordinatorRoutesByKey(t *testing.T) {
	workers := []*fakeWorker{newFakeWorker(t), newFakeWorker(t), newFakeWorker(t)}
	_, hs := newTestCoordinator(t, Config{})
	byBase := make(map[string]*fakeWorker)
	ring := NewRing(0)
	for _, w := range workers {
		registerWorker(t, hs.URL, w.hs.URL)
		byBase[w.hs.URL] = w
		ring.Add(w.hs.URL)
	}

	for _, bench := range tlc.Benchmarks() {
		req := runReq(bench)
		resp, rec := postCoordRun(t, hs.URL, req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", bench, resp.StatusCode)
		}
		key, _ := req.Key()
		if rec.ID != key {
			t.Fatalf("%s: record ID %q, want key %q", bench, rec.ID, key)
		}
		owner, _ := ring.Owner(key)
		w := byBase[owner]
		w.mu.Lock()
		n := w.runs[bench]
		w.mu.Unlock()
		if n != 1 {
			t.Fatalf("%s: owner %s executed %d times, want 1", bench, owner, n)
		}
	}
}

// TestCoordinatorFailover: with the key's owner dead, the run fails over to
// the next ring node, the dead worker drops out of routing immediately (no
// probe needed), and the failover is counted.
func TestCoordinatorFailover(t *testing.T) {
	alive := newFakeWorker(t)
	doomed := newFakeWorker(t)
	c, hs := newTestCoordinator(t, Config{})
	registerWorker(t, hs.URL, alive.hs.URL)
	registerWorker(t, hs.URL, doomed.hs.URL)

	ring := NewRing(0)
	ring.Add(alive.hs.URL)
	ring.Add(doomed.hs.URL)
	var req api.RunRequest
	for _, bench := range tlc.Benchmarks() {
		key, _ := runReq(bench).Key()
		if owner, _ := ring.Owner(key); owner == doomed.hs.URL {
			req = runReq(bench)
			break
		}
	}
	if req.Benchmark == "" {
		t.Skip("no benchmark hashed to the doomed worker (vanishingly unlikely)")
	}
	doomed.hs.Close()

	resp, rec := postCoordRun(t, hs.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run after owner death: status %d", resp.StatusCode)
	}
	if rec.Benchmark != req.Benchmark {
		t.Fatalf("record benchmark %q, want %q", rec.Benchmark, req.Benchmark)
	}
	if alive.executions() != 1 {
		t.Fatalf("surviving worker executed %d runs, want 1", alive.executions())
	}
	if got := c.nFailovers.Load(); got == 0 {
		t.Fatal("failover not counted")
	}
	for _, ws := range c.snapshot().Workers {
		if ws.BaseURL == doomed.hs.URL && ws.Ready {
			t.Fatal("dead worker still marked ready after failed dispatch")
		}
	}
}

// TestCoordinatorSweepStreams: a fleet sweep returns every point exactly
// once as NDJSON, spread across the ready workers.
func TestCoordinatorSweepStreams(t *testing.T) {
	w1, w2 := newFakeWorker(t), newFakeWorker(t)
	_, hs := newTestCoordinator(t, Config{})
	registerWorker(t, hs.URL, w1.hs.URL)
	registerWorker(t, hs.URL, w2.hs.URL)

	var sreq api.SweepRequest
	for _, bench := range tlc.Benchmarks()[:8] {
		sreq.Points = append(sreq.Points, runReq(bench))
	}
	body, _ := json.Marshal(sreq)
	resp, err := http.Post(hs.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q, want NDJSON", ct)
	}
	seen := make(map[int]bool)
	dec := json.NewDecoder(resp.Body)
	for {
		var p api.SweepPoint
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("decode point: %v", err)
		}
		if p.Error != "" {
			t.Fatalf("point %d failed: %s", p.Index, p.Error)
		}
		if seen[p.Index] {
			t.Fatalf("point %d emitted twice", p.Index)
		}
		seen[p.Index] = true
	}
	if len(seen) != len(sreq.Points) {
		t.Fatalf("got %d points, want %d", len(seen), len(sreq.Points))
	}
	if w1.executions()+w2.executions() != len(sreq.Points) {
		t.Fatalf("workers executed %d+%d, want %d total",
			w1.executions(), w2.executions(), len(sreq.Points))
	}
}

// TestCoordinatorNoWorkers: an empty fleet refuses runs with 503 and
// reports unready, rather than hanging or panicking.
func TestCoordinatorNoWorkers(t *testing.T) {
	_, hs := newTestCoordinator(t, Config{})
	resp, _ := postCoordRun(t, hs.URL, runReq("gcc"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("run on empty fleet: status %d, want 503", resp.StatusCode)
	}
	r2, err := http.Get(hs.URL + "/readyz")
	if err != nil {
		t.Fatalf("readyz: %v", err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz on empty fleet: status %d, want 503", r2.StatusCode)
	}
}

// TestProbeTracksReadiness: the health loop sees a draining worker's 503
// /readyz as alive-but-unready, a dead worker as dead after DeadAfter
// consecutive failures, and a recovered worker as ready again.
func TestProbeTracksReadiness(t *testing.T) {
	w := newFakeWorker(t)
	dead := newFakeWorker(t)
	c, hs := newTestCoordinator(t, Config{DeadAfter: 2})
	registerWorker(t, hs.URL, w.hs.URL)
	registerWorker(t, hs.URL, dead.hs.URL)
	dead.hs.Close()

	w.mu.Lock()
	w.ready = http.StatusServiceUnavailable // draining
	w.mu.Unlock()

	c.probeAll() // draining observed; dead worker: strike one
	states := map[string]api.WorkerState{}
	for _, ws := range c.snapshot().Workers {
		states[ws.BaseURL] = ws
	}
	if s := states[w.hs.URL]; !s.Alive || s.Ready {
		t.Fatalf("draining worker: alive=%v ready=%v, want alive and not ready", s.Alive, s.Ready)
	}
	if s := states[dead.hs.URL]; !s.Alive {
		t.Fatal("unresponsive worker declared dead before DeadAfter strikes")
	}

	c.probeAll() // strike two: dead
	for _, ws := range c.snapshot().Workers {
		if ws.BaseURL == dead.hs.URL && ws.Alive {
			t.Fatal("worker still alive after DeadAfter failed probes")
		}
	}

	w.mu.Lock()
	w.ready = http.StatusOK
	w.mu.Unlock()
	c.probeAll()
	for _, ws := range c.snapshot().Workers {
		if ws.BaseURL == w.hs.URL && !ws.Ready {
			t.Fatal("recovered worker not restored to routing")
		}
	}
}

// TestRegisterValidation: a registration without a base URL is rejected.
func TestRegisterValidation(t *testing.T) {
	_, hs := newTestCoordinator(t, Config{})
	for _, body := range []string{`{}`, `not json`} {
		resp, err := http.Post(hs.URL+"/v1/workers", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatalf("register: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("register %q: status %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestGetRunAcrossFleet: the coordinator's GET /v1/runs/{id} finds a record
// wherever it lives on the ring and 404s cleanly when nowhere.
func TestGetRunAcrossFleet(t *testing.T) {
	w1, w2 := newFakeWorker(t), newFakeWorker(t)
	_, hs := newTestCoordinator(t, Config{})
	registerWorker(t, hs.URL, w1.hs.URL)
	registerWorker(t, hs.URL, w2.hs.URL)

	req := runReq("perl")
	key, _ := req.Key()
	// Plant the record on the non-owner: a membership change can leave
	// history anywhere, and the lookup must still find it.
	ring := NewRing(0)
	ring.Add(w1.hs.URL)
	ring.Add(w2.hs.URL)
	owner, _ := ring.Owner(key)
	holder := w1
	if owner == w1.hs.URL {
		holder = w2
	}
	holder.mu.Lock()
	holder.records[key] = api.RunRecord{ID: key, Benchmark: "perl", Cycles: 7}
	holder.mu.Unlock()

	resp, err := http.Get(hs.URL + "/v1/runs/" + key)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	var rec api.RunRecord
	json.NewDecoder(resp.Body).Decode(&rec)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rec.Cycles != 7 {
		t.Fatalf("fleet lookup: status %d cycles %d, want 200 and 7", resp.StatusCode, rec.Cycles)
	}

	resp2, err := http.Get(hs.URL + "/v1/runs/" + fmt.Sprintf("%s-missing", key))
	if err != nil {
		t.Fatalf("get missing: %v", err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("missing id: status %d, want 404", resp2.StatusCode)
	}
}
