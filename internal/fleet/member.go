package fleet

import (
	"context"
	"log"
	"net/http"
	"sync"
	"time"

	"tlc"
	"tlc/internal/api"
	"tlc/internal/client"
)

// Member is a worker's view of the fleet. It registers the worker with the
// coordinator on a loop (registration doubles as the heartbeat) and keeps
// a local copy of the ring built from the membership each registration
// returns, which is all PeerFill needs: on a local cache miss, the worker
// asks the key's owner-before-it-joined for the finished record before
// simulating. The view ring includes every *alive* member — draining
// workers answer 503 on /readyz but their caches still serve GETs, and a
// key's history lives where it used to be routed, not where it would be
// routed now.
type Member struct {
	self     string
	interval time.Duration
	replicas int
	coord    *client.Client
	hc       *http.Client

	mu      sync.Mutex
	ring    *Ring
	clients map[string]*client.Client

	stop chan struct{}
	done chan struct{}
}

// peerFillTimeout bounds one peer cache lookup. A peer fill is an
// optimization over re-simulating; a peer slower than this is worse than
// the miss.
const peerFillTimeout = 5 * time.Second

// Join starts a membership loop against the coordinator at coordBase,
// registering self (the worker's advertised base URL) every interval.
// Call Close before discarding the member. replicas must match the
// coordinator's ring configuration (0 means the shared default).
func Join(coordBase, self string, interval time.Duration, replicas int) *Member {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	hc := &http.Client{}
	coord := client.New(coordBase, hc)
	coord.Retries = 2
	coord.Backoff = 100 * time.Millisecond
	m := &Member{
		self:     self,
		interval: interval,
		replicas: replicas,
		coord:    coord,
		hc:       hc,
		ring:     NewRing(replicas),
		clients:  make(map[string]*client.Client),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	m.registerOnce()
	go m.loop()
	return m
}

// Close stops the membership loop.
func (m *Member) Close() {
	close(m.stop)
	<-m.done
}

func (m *Member) loop() {
	defer close(m.done)
	tick := time.NewTicker(m.interval)
	defer tick.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-tick.C:
			m.registerOnce()
		}
	}
}

// registerOnce sends one registration heartbeat and refreshes the local
// ring from the returned membership. A coordinator outage degrades
// gracefully: the stale ring keeps peer fills flowing between workers
// that are still up, and misses fall back to local simulation anyway.
func (m *Member) registerOnce() {
	ctx, cancel := context.WithTimeout(context.Background(), peerFillTimeout)
	defer cancel()
	state, err := m.coord.RegisterWorker(ctx, m.self)
	if err != nil {
		log.Printf("fleet: registration heartbeat failed (keeping previous fleet view): %v", err)
		return
	}
	r := NewRing(m.replicas)
	for _, w := range state.Workers {
		if w.Alive {
			r.Add(w.BaseURL)
		}
	}
	m.mu.Lock()
	m.ring = r
	m.mu.Unlock()
}

// Peers lists the alive fleet members in the current view, self included.
func (m *Member) Peers() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ring.Nodes()
}

// peerClient builds (or reuses) the client for one peer. Peer-fill clients
// never retry: the fallback — simulate locally — is always available, so a
// dead owner should cost one failed connect, not a backoff schedule.
func (m *Member) peerClient(base string) *client.Client {
	m.mu.Lock()
	defer m.mu.Unlock()
	if cl, ok := m.clients[base]; ok {
		return cl
	}
	cl := client.New(base, m.hc)
	cl.Retries = 0
	m.clients[base] = cl
	return cl
}

// PeerFill implements server.Config.PeerFill: given a run key this worker
// is about to execute, ask the worker that owned the key before self was
// part of the ring whether it already has the record. The lookup is a pure
// cache GET — it can never trigger a simulation on the peer, so there is
// no recursion and no added load beyond one round-trip. Any failure (no
// peer, owner down, record not there) reports a miss and the caller
// simulates locally; determinism makes the two outcomes byte-identical.
func (m *Member) PeerFill(ctx context.Context, key string) (api.RunRecord, bool) {
	m.mu.Lock()
	owner, ok := m.ring.OwnerExcluding(key, m.self)
	m.mu.Unlock()
	if !ok || owner == m.self {
		return api.RunRecord{}, false
	}
	cctx, cancel := context.WithTimeout(ctx, peerFillTimeout)
	defer cancel()
	rec, found, err := m.peerClient(owner).GetRun(cctx, key)
	if err != nil || !found {
		return api.RunRecord{}, false
	}
	return rec, true
}

// ProfileFill implements the phase-profile store's fill hook
// (tlc.PhaseProfileStore.SetFill): on a local profile miss, ask the key's
// ring owner for its cached clustering before recomputing. Like PeerFill
// it is a pure cache GET (the peer serves Peek only — a cold peer answers
// 404, never profiles on demand), so a fleet pays each profiling pass at
// most once and a miss just means profiling locally. The hook has no
// caller context — it fires deep inside a run — so it bounds itself with
// the standard peer-fill timeout.
func (m *Member) ProfileFill(key string) (tlc.PhaseProfile, bool) {
	m.mu.Lock()
	owner, ok := m.ring.OwnerExcluding(key, m.self)
	m.mu.Unlock()
	if !ok || owner == m.self {
		return tlc.PhaseProfile{}, false
	}
	ctx, cancel := context.WithTimeout(context.Background(), peerFillTimeout)
	defer cancel()
	prof, found, err := m.peerClient(owner).GetProfile(ctx, key)
	if err != nil || !found {
		return tlc.PhaseProfile{}, false
	}
	return prof, true
}
