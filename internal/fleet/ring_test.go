package fleet

import (
	"fmt"
	"testing"
)

// testKeys generates n synthetic run-key-shaped strings.
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("runkey-%08x", i*2654435761)
	}
	return keys
}

func ringOf(nodes ...string) *Ring {
	r := NewRing(0)
	for _, n := range nodes {
		r.Add(n)
	}
	return r
}

func workerNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return names
}

// TestOwnerDeterministicAcrossInsertionOrder: ownership is a pure function
// of the membership set — the coordinator and every member must agree on
// owners without coordinating, whatever order they learned the nodes in.
func TestOwnerDeterministicAcrossInsertionOrder(t *testing.T) {
	nodes := workerNames(7)
	fwd := ringOf(nodes...)
	rev := NewRing(0)
	for i := len(nodes) - 1; i >= 0; i-- {
		rev.Add(nodes[i])
	}
	for _, k := range testKeys(2000) {
		a, _ := fwd.Owner(k)
		b, _ := rev.Owner(k)
		if a != b {
			t.Fatalf("owner of %s depends on insertion order: %s vs %s", k, a, b)
		}
	}
}

// TestJoinRemapsMinimally: adding a node to a 9-node ring must remap about
// 1/10 of the keys — and every remapped key must move to the new node, so
// no existing worker's cache territory shifts to another existing worker.
func TestJoinRemapsMinimally(t *testing.T) {
	nodes := workerNames(9)
	r := ringOf(nodes...)
	keys := testKeys(10000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k], _ = r.Owner(k)
	}

	const joined = "http://10.0.0.100:8080"
	r.Add(joined)
	moved := 0
	for _, k := range keys {
		after, _ := r.Owner(k)
		if after == before[k] {
			continue
		}
		moved++
		if after != joined {
			t.Fatalf("key %s moved %s -> %s, but only the joining node may gain keys", k, before[k], after)
		}
	}
	frac := float64(moved) / float64(len(keys))
	if frac == 0 {
		t.Fatal("join remapped nothing; the new node owns no keys")
	}
	// Ideal share is 1/10; allow generous spread for vnode variance.
	if frac > 0.25 {
		t.Fatalf("join remapped %.1f%% of keys, want ~10%% (<25%%)", frac*100)
	}
}

// TestLeaveRemapsOnlyTheLeaver: removing a node reassigns exactly the keys
// it owned; every other key keeps its owner (those caches stay hot).
func TestLeaveRemapsOnlyTheLeaver(t *testing.T) {
	nodes := workerNames(8)
	r := ringOf(nodes...)
	keys := testKeys(10000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k], _ = r.Owner(k)
	}

	leaver := nodes[3]
	r.Remove(leaver)
	for _, k := range keys {
		after, _ := r.Owner(k)
		if before[k] == leaver {
			if after == leaver {
				t.Fatalf("key %s still owned by removed node", k)
			}
			continue
		}
		if after != before[k] {
			t.Fatalf("key %s moved %s -> %s though its owner never left", k, before[k], after)
		}
	}
}

// TestOwnerExcludingMatchesRingWithout: the peer-fill target — the owner
// with self excluded — must be exactly the owner of the ring built without
// self, i.e. where the result lived before self joined.
func TestOwnerExcludingMatchesRingWithout(t *testing.T) {
	nodes := workerNames(5)
	full := ringOf(nodes...)
	self := nodes[2]
	without := NewRing(0)
	for _, n := range nodes {
		if n != self {
			without.Add(n)
		}
	}
	for _, k := range testKeys(3000) {
		got, ok := full.OwnerExcluding(k, self)
		want, _ := without.Owner(k)
		if !ok || got != want {
			t.Fatalf("OwnerExcluding(%s, self) = %s ok=%v, want %s", k, got, ok, want)
		}
	}
	// A single-node ring has no peer to fill from.
	if _, ok := ringOf(self).OwnerExcluding("k", self); ok {
		t.Fatal("OwnerExcluding on a one-node ring reported a peer")
	}
}

// TestSuccessorsDistinctAndStartAtOwner: the failover sequence leads with
// the owner, never repeats a node, and covers the whole membership.
func TestSuccessorsDistinctAndStartAtOwner(t *testing.T) {
	nodes := workerNames(6)
	r := ringOf(nodes...)
	for _, k := range testKeys(500) {
		succ := r.Successors(k, 0)
		if len(succ) != len(nodes) {
			t.Fatalf("Successors covered %d of %d nodes", len(succ), len(nodes))
		}
		owner, _ := r.Owner(k)
		if succ[0] != owner {
			t.Fatalf("Successors[0] = %s, want owner %s", succ[0], owner)
		}
		seen := map[string]bool{}
		for _, n := range succ {
			if seen[n] {
				t.Fatalf("Successors repeated %s", n)
			}
			seen[n] = true
		}
	}
	if got := r.Successors("k", 2); len(got) != 2 {
		t.Fatalf("Successors(k, 2) returned %d nodes", len(got))
	}
}

// TestBalance: with the default vnode count no node's share of a 10-node
// ring is pathologically far from 1/10.
func TestBalance(t *testing.T) {
	nodes := workerNames(10)
	r := ringOf(nodes...)
	counts := map[string]int{}
	keys := testKeys(20000)
	for _, k := range keys {
		o, _ := r.Owner(k)
		counts[o]++
	}
	for _, n := range nodes {
		share := float64(counts[n]) / float64(len(keys))
		if share < 0.02 || share > 0.25 {
			t.Errorf("node %s owns %.1f%% of keys, want roughly 10%%", n, share*100)
		}
	}
}

// TestEmptyRing: lookups on an empty ring report no owner instead of
// panicking.
func TestEmptyRing(t *testing.T) {
	r := NewRing(0)
	if _, ok := r.Owner("k"); ok {
		t.Fatal("empty ring reported an owner")
	}
	if s := r.Successors("k", 3); len(s) != 0 {
		t.Fatalf("empty ring reported successors %v", s)
	}
	r.Remove("absent") // must not panic
}
