// Package mem defines the physical-address arithmetic and request types
// shared by every cache model. All designs in the paper use 64-byte cache
// blocks (Table 3); addresses are byte addresses in a 4 GB physical space.
package mem

import "fmt"

// BlockBytes is the cache block size used throughout the paper (Table 3).
const BlockBytes = 64

// blockShift is log2(BlockBytes).
const blockShift = 6

// Addr is a physical byte address.
type Addr uint64

// Block is a block-aligned address identifier: the address with the
// block-offset bits removed. Two addresses in the same 64-byte block map to
// the same Block.
type Block uint64

// BlockOf reports the block containing a.
func BlockOf(a Addr) Block { return Block(a >> blockShift) }

// Addr reports the first byte address of the block.
func (b Block) Addr() Addr { return Addr(b) << blockShift }

// SetIndex reports the cache-set index for this block in a cache with the
// given number of sets. Sets must be a power of two.
func (b Block) SetIndex(sets int) int {
	return int(uint64(b) & uint64(sets-1))
}

// Tag reports the block's tag in a cache with the given number of sets.
func (b Block) Tag(sets int) uint64 {
	return uint64(b) / uint64(sets)
}

// PartialTag reports the low 6 bits of the block tag, the partial tag used
// both by DNUCA's controller structure and the TLCopt in-bank comparison
// (the paper's 6-bit partial tags, after Kessler et al. [21]).
func (b Block) PartialTag(sets int) uint8 {
	return uint8(b.Tag(sets) & 0x3f)
}

// IsPow2 reports whether v is a positive power of two.
func IsPow2(v int) bool { return v > 0 && v&(v-1) == 0 }

// Log2 reports log2(v) for a power of two, panicking otherwise: set and bank
// counts in every design in Table 2 are powers of two, and anything else is
// a configuration bug.
func Log2(v int) int {
	if !IsPow2(v) {
		panic(fmt.Sprintf("mem: %d is not a power of two", v))
	}
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// FoldHash folds every higher bit group of v into the low `bits` bits by
// repeated XOR shifts. It is the bank-hash every design uses to select a
// bank/group/bank-set: unlike plain low-bit interleaving it decorrelates
// all power-of-two strides (notably the L1-capacity stride between a
// streaming load and its own dirty-victim writeback) from bank conflicts,
// while remaining trivially invertible given the remaining high bits.
func FoldHash(v uint64, bits int) uint64 {
	var h uint64
	for x := v; x != 0; x >>= uint(bits) {
		h ^= x
	}
	return h & (1<<uint(bits) - 1)
}

// AccessType distinguishes loads from stores. All TLC designs are exclusive
// write-back caches: stores are written without a tag comparison (Section 4),
// which the cache models use to skip the lookup path.
type AccessType uint8

const (
	// Load is a data read (or instruction fetch reaching L2).
	Load AccessType = iota
	// Store is a data write.
	Store
)

func (t AccessType) String() string {
	switch t {
	case Load:
		return "load"
	case Store:
		return "store"
	default:
		return fmt.Sprintf("AccessType(%d)", uint8(t))
	}
}

// Request is one L2 cache access as issued by the processor side.
type Request struct {
	Block Block
	Type  AccessType
	// Core identifies the requesting CMP core. Single-core runs leave it
	// zero; the shared-L2 arbitration layer stamps it so designs and the
	// coherence directory can attribute traffic per core.
	Core int
}

// Result describes the outcome of one L2 access.
type Result struct {
	// Hit reports whether the block was found in the L2.
	Hit bool
	// Latency is the total lookup latency in cycles, from the request
	// arriving at the cache controller to data (or the miss determination)
	// being available at the controller.
	Latency uint64
	// Predictable reports whether the access completed in the design's
	// statically predicted latency — the quantity behind Table 6 columns
	// 7-8. Unpredictable lookups are those delayed by contention, extra
	// bank searches, or multi-match resolution.
	Predictable bool
	// BanksAccessed counts data banks touched by this request (Table 9).
	BanksAccessed int
}
