package mem

import (
	"testing"
	"testing/quick"
)

func TestBlockOf(t *testing.T) {
	if BlockOf(0) != 0 {
		t.Fatal("address 0 not in block 0")
	}
	if BlockOf(63) != 0 {
		t.Fatal("address 63 should still be block 0")
	}
	if BlockOf(64) != 1 {
		t.Fatal("address 64 should be block 1")
	}
	if BlockOf(0x1000) != 0x40 {
		t.Fatalf("BlockOf(0x1000)=%#x, want 0x40", BlockOf(0x1000))
	}
}

func TestBlockAddrRoundTrip(t *testing.T) {
	for _, b := range []Block{0, 1, 7, 1 << 20} {
		if BlockOf(b.Addr()) != b {
			t.Fatalf("round trip failed for block %d", b)
		}
	}
}

func TestSetIndexAndTag(t *testing.T) {
	const sets = 1024
	b := Block(0x12345)
	if got := b.SetIndex(sets); got != 0x345 {
		t.Fatalf("set index %#x, want 0x345", got)
	}
	if got := b.Tag(sets); got != 0x48 {
		t.Fatalf("tag %#x, want 0x48", got)
	}
}

func TestPartialTag(t *testing.T) {
	const sets = 64
	// Tag = block / 64; partial tag is its low 6 bits.
	b := Block(64 * 0x7f) // tag 0x7f -> partial 0x3f
	if got := b.PartialTag(sets); got != 0x3f {
		t.Fatalf("partial tag %#x, want 0x3f", got)
	}
	b2 := Block(64 * 0x40) // tag 0x40 -> partial 0
	if got := b2.PartialTag(sets); got != 0 {
		t.Fatalf("partial tag %#x, want 0", got)
	}
}

// Property: (tag, set) decomposition is invertible.
func TestQuickTagSetRoundTrip(t *testing.T) {
	f := func(raw uint32, setsExp uint8) bool {
		sets := 1 << (setsExp%12 + 1)
		b := Block(raw)
		reassembled := Block(b.Tag(sets)*uint64(sets) + uint64(b.SetIndex(sets)))
		return reassembled == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: two blocks in the same set with equal partial tags may differ,
// but equal full tags in the same set imply the same block.
func TestQuickFullTagUnique(t *testing.T) {
	f := func(a, b uint32) bool {
		const sets = 4096
		ba, bb := Block(a), Block(b)
		if ba.SetIndex(sets) == bb.SetIndex(sets) && ba.Tag(sets) == bb.Tag(sets) {
			return ba == bb
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestIsPow2(t *testing.T) {
	for _, v := range []int{1, 2, 4, 1024} {
		if !IsPow2(v) {
			t.Fatalf("%d should be a power of two", v)
		}
	}
	for _, v := range []int{0, -2, 3, 6, 1023} {
		if IsPow2(v) {
			t.Fatalf("%d should not be a power of two", v)
		}
	}
}

func TestLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 256: 8, 1 << 20: 20}
	for v, want := range cases {
		if got := Log2(v); got != want {
			t.Fatalf("Log2(%d)=%d, want %d", v, got, want)
		}
	}
}

func TestLog2PanicsOnNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Log2(12) did not panic")
		}
	}()
	Log2(12)
}

func TestAccessTypeString(t *testing.T) {
	if Load.String() != "load" || Store.String() != "store" {
		t.Fatal("access type names wrong")
	}
	if AccessType(9).String() != "AccessType(9)" {
		t.Fatal("unknown access type should format numerically")
	}
}

func TestFoldHashInvertibleGivenHighBits(t *testing.T) {
	// For a fixed local id (v >> bits), distinct low fields map to
	// distinct hashes: the bank selection stays a bijection per set.
	const bits = 5
	for local := uint64(0); local < 64; local++ {
		seen := map[uint64]bool{}
		for low := uint64(0); low < 1<<bits; low++ {
			h := FoldHash(local<<bits|low, bits)
			if seen[h] {
				t.Fatalf("local %d: duplicate hash %d", local, h)
			}
			seen[h] = true
		}
	}
}

func TestFoldHashDecorrelatesPowerOfTwoStrides(t *testing.T) {
	// The motivating case: a streaming block and its L1-victim writeback
	// 1024 blocks behind must not always share a bank.
	const bits = 5
	same := 0
	for b := uint64(2048); b < 2048+4096; b++ {
		if FoldHash(b, bits) == FoldHash(b-1024, bits) {
			same++
		}
	}
	if same > 4096/4 {
		t.Fatalf("%d/4096 victim pairs share a bank: stride not decorrelated", same)
	}
}

func TestFoldHashUniform(t *testing.T) {
	const bits = 4
	counts := make([]int, 1<<bits)
	for b := uint64(0); b < 1<<16; b++ {
		counts[FoldHash(b, bits)]++
	}
	want := 1 << 16 >> bits
	for v, n := range counts {
		if n < want*9/10 || n > want*11/10 {
			t.Fatalf("bank %d gets %d of %d blocks: not uniform", v, n, want)
		}
	}
}
