// Package area is the ECACTI-substitute bank model plus the Table 7
// substrate-area roll-up. The bank access-time and density curves are
// anchored on the paper's three operating points — 64 KB banks at 3
// cycles, 512 KB at 8, 1 MB at 10 (Table 2) — and the Table 7 areas
// (DNUCA's 256 small banks cost more area per megabyte than TLC's 32
// dense banks).
package area

import (
	"fmt"
	"math"

	"tlc/internal/config"
	"tlc/internal/noc"
	"tlc/internal/tline"
	"tlc/internal/wire"
)

// BankAccessCycles models bank access time at 10 GHz as a function of
// capacity: latency grows with the logarithm of size (deeper decoders,
// longer word/bit lines). Anchored exactly on the paper's three bank
// sizes.
func BankAccessCycles(bytes int) int {
	if bytes <= 0 {
		panic(fmt.Sprintf("area: non-positive bank size %d", bytes))
	}
	kb := float64(bytes) / 1024
	cycles := -7 + (5.0/3.0)*math.Log2(kb)
	if cycles < 1 {
		cycles = 1
	}
	return int(math.Round(cycles))
}

// BankAreaMM2 models bank substrate area: cell area plus periphery
// (decoders, sense amplifiers) whose relative cost shrinks with bank size.
// Fit to Table 7: 256 x 64 KB = 92 mm^2, 32 x 512 KB = 77 mm^2.
func BankAreaMM2(bytes int) float64 {
	if bytes <= 0 {
		panic(fmt.Sprintf("area: non-positive bank size %d", bytes))
	}
	mb := float64(bytes) / (1024 * 1024)
	perMB := 4.378 + 0.3055/math.Sqrt(mb)
	return perMB * mb
}

// Breakdown is one Table 7 row.
type Breakdown struct {
	Design     config.Design
	StorageMM2 float64
	ChannelMM2 float64
	ControlMM2 float64
}

// TotalMM2 sums the breakdown.
func (b Breakdown) TotalMM2() float64 { return b.StorageMM2 + b.ChannelMM2 + b.ControlMM2 }

// controllerDepthMM is the logic depth of the TLC controller strip.
const controllerDepthMM = 1.05

// DesignArea computes the Table 7 breakdown for any design.
func DesignArea(d config.Design) Breakdown {
	switch d {
	case config.SNUCA2, config.DNUCA:
		p := config.NUCAFor(d)
		m := noc.New(p.Mesh)
		storage := float64(p.Banks) * BankAreaMM2(p.BankBytes)
		// Channel: every link segment is FlitBytes*8 parallel wires at the
		// conventional global pitch, running one segment length over
		// substrate reserved for repeaters and via farms.
		gw := wire.Global45()
		segMM := p.Mesh.VertSegMM
		tracks := p.Mesh.FlitBytes * 8
		channel := gw.ChannelAreaMM2(tracks*m.SegmentCount(), segMM)
		// Controller: the partial-tag structure (DNUCA) or a plain bank
		// scheduler (SNUCA2).
		control := 0.2
		if d == config.DNUCA {
			lines := 16 * 1024 * 1024 / 64 // 256K cache lines
			bits := float64(lines * 6)
			const mm2PerMbit = 0.6
			control = bits/1e6*mm2PerMbit + 0.15
		}
		return Breakdown{Design: d, StorageMM2: storage, ChannelMM2: channel, ControlMM2: control}
	default:
		p := config.TLCFor(d)
		storage := float64(p.Banks) * BankAreaMM2(p.BankBytes)
		// Channel: the transmission lines themselves fly over other logic
		// on dedicated upper layers and consume no substrate; the only
		// substrate channel is the conventional wiring from the line
		// landings to the controller center.
		gw := wire.Global45()
		ctrl := ControllerDims(p)
		avgRun := ctrl.HeightMM / 4 * 1.5 // mean Manhattan run to center
		channel := gw.ChannelAreaMM2(p.TotalLines(), avgRun)
		return Breakdown{
			Design:     d,
			StorageMM2: storage,
			ChannelMM2: channel,
			ControlMM2: ctrl.AreaMM2(),
		}
	}
}

// Dims is the TLC controller strip geometry: tall enough for every
// transmission line to land on its edges (Section 4 — the controller
// height is the sum of the lines' width and spacing).
type Dims struct {
	HeightMM float64
	WidthMM  float64
}

// AreaMM2 reports the strip area.
func (d Dims) AreaMM2() float64 { return d.HeightMM * d.WidthMM }

// ControllerDims computes the controller strip for a TLC design: half the
// lines land on each side, at each pair's Table 1 track pitch.
func ControllerDims(p config.TLCParams) Dims {
	var height float64
	for pr := 0; pr < p.Pairs(); pr++ {
		g := config.LinkGeometry(pr, p.Pairs())
		height += float64(p.LinesPerPair) * g.TrackPitchMM()
	}
	height /= 2 // lines split across the two controller edges
	return Dims{HeightMM: height, WidthMM: controllerDepthMM}
}

// NetworkTransistors is one Table 8 row.
type NetworkTransistors struct {
	Design          config.Design
	Count           int
	GateWidthLambda float64
}

// DesignTransistors computes the Table 8 communication-network transistor
// demand for any design.
func DesignTransistors(d config.Design) NetworkTransistors {
	switch d {
	case config.SNUCA2, config.DNUCA:
		p := config.NUCAFor(d)
		m := noc.New(p.Mesh)
		// The partial-tag structure is accounted as controller area in
		// Table 7; Table 8 covers the communication network proper —
		// switches, buffers, and link repeaters.
		count, width := noc.MeshTransistors(m, noc.DefaultSwitch(p.Mesh.FlitBytes))
		return NetworkTransistors{Design: d, Count: count, GateWidthLambda: width}
	default:
		p := config.TLCFor(d)
		var count int
		var width float64
		for pr := 0; pr < p.Pairs(); pr++ {
			g := config.LinkGeometry(pr, p.Pairs())
			c := tline.Interface(tline.Extract(g).Z0)
			count += p.LinesPerPair * c.Transistors
			width += float64(p.LinesPerPair) * c.GateWidthLambda
		}
		return NetworkTransistors{Design: d, Count: count, GateWidthLambda: width}
	}
}
