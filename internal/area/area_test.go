package area

import (
	"math"
	"testing"
	"testing/quick"

	"tlc/internal/config"
)

func TestBankAccessCyclesMatchesTable2(t *testing.T) {
	// The three anchor points of Table 2.
	cases := map[int]int{
		64 * 1024:   3,
		512 * 1024:  8,
		1024 * 1024: 10,
	}
	for bytes, want := range cases {
		if got := BankAccessCycles(bytes); got != want {
			t.Errorf("BankAccessCycles(%dKB)=%d, want %d", bytes/1024, got, want)
		}
	}
}

func TestBankAccessMonotone(t *testing.T) {
	prev := 0
	for kb := 16; kb <= 4096; kb *= 2 {
		got := BankAccessCycles(kb * 1024)
		if got < prev {
			t.Fatalf("access time decreased at %dKB", kb)
		}
		prev = got
	}
	if BankAccessCycles(64) < 1 {
		t.Fatal("access time floor violated")
	}
}

func TestBankAreaMatchesTable7Anchors(t *testing.T) {
	// 256 x 64 KB ~ 92 mm^2; 32 x 512 KB = 77 mm^2.
	dnuca := 256 * BankAreaMM2(64*1024)
	tlc := 32 * BankAreaMM2(512*1024)
	if math.Abs(dnuca-92) > 4 {
		t.Errorf("DNUCA storage %.1f mm2, want ~92", dnuca)
	}
	if math.Abs(tlc-77) > 2 {
		t.Errorf("TLC storage %.1f mm2, want ~77", tlc)
	}
}

func TestSmallBanksAreLessDense(t *testing.T) {
	small := BankAreaMM2(64*1024) / (64.0 / 1024)
	large := BankAreaMM2(1024*1024) / 1.0
	if small <= large {
		t.Fatal("per-MB area should shrink with bank size (periphery amortization)")
	}
}

func TestBankModelsPanicOnBadSize(t *testing.T) {
	for _, fn := range []func(){
		func() { BankAccessCycles(0) },
		func() { BankAreaMM2(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad bank size did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestTable7Shape(t *testing.T) {
	dn := DesignArea(config.DNUCA)
	tl := DesignArea(config.TLC)
	// Paper: DNUCA 110 mm^2 total, TLC 91; TLC saves ~18%.
	if math.Abs(dn.TotalMM2()-110) > 8 {
		t.Errorf("DNUCA total %.1f mm2, want ~110", dn.TotalMM2())
	}
	if math.Abs(tl.TotalMM2()-91) > 4 {
		t.Errorf("TLC total %.1f mm2, want ~91", tl.TotalMM2())
	}
	savings := 1 - tl.TotalMM2()/dn.TotalMM2()
	if savings < 0.12 || savings > 0.22 {
		t.Errorf("TLC area savings %.0f%%, want ~18%%", savings*100)
	}
	// Component shapes: DNUCA pays in channels, TLC in the controller.
	if dn.ChannelMM2 < 5*tl.ChannelMM2 {
		t.Error("DNUCA's mesh channels should dwarf TLC's controller runs")
	}
	if tl.ControlMM2 < 5*dn.ControlMM2 {
		t.Error("TLC's line-landing controller should dwarf DNUCA's partial tags")
	}
}

func TestOptimizedControllersShrink(t *testing.T) {
	base := DesignArea(config.TLC).ControlMM2
	prev := base
	for _, d := range []config.Design{config.TLCOpt1000, config.TLCOpt500, config.TLCOpt350} {
		got := DesignArea(d).ControlMM2
		if got >= prev {
			t.Fatalf("%v controller %.2f mm2 not smaller than predecessor %.2f", d, got, prev)
		}
		prev = got
	}
}

func TestControllerDimsFollowLineCount(t *testing.T) {
	base := ControllerDims(config.TLCFor(config.TLC))
	opt := ControllerDims(config.TLCFor(config.TLCOpt350))
	if opt.HeightMM >= base.HeightMM {
		t.Fatal("fewer lines must mean a shorter controller strip")
	}
	if base.AreaMM2() != base.HeightMM*base.WidthMM {
		t.Fatal("area arithmetic wrong")
	}
}

func TestTable8Shape(t *testing.T) {
	dn := DesignTransistors(config.DNUCA)
	tl := DesignTransistors(config.TLC)
	// Paper: 1.2e7 vs 1.9e5 transistors (>50x), 440 vs 20 Mlambda.
	if ratio := float64(dn.Count) / float64(tl.Count); ratio < 50 {
		t.Errorf("transistor ratio %.0fx, want >50x", ratio)
	}
	if dn.Count < 0.8e7 || dn.Count > 1.6e7 {
		t.Errorf("DNUCA transistors %.2g, want ~1.2e7", float64(dn.Count))
	}
	if tl.Count < 1.5e5 || tl.Count > 2.4e5 {
		t.Errorf("TLC transistors %.2g, want ~1.9e5", float64(tl.Count))
	}
	if dn.GateWidthLambda < 350e6 || dn.GateWidthLambda > 550e6 {
		t.Errorf("DNUCA gate width %.0f Mlambda, want ~440", dn.GateWidthLambda/1e6)
	}
	if tl.GateWidthLambda < 14e6 || tl.GateWidthLambda > 26e6 {
		t.Errorf("TLC gate width %.0f Mlambda, want ~20", tl.GateWidthLambda/1e6)
	}
}

func TestOptimizedDesignsUseFewerTransistors(t *testing.T) {
	prev := DesignTransistors(config.TLC).Count
	for _, d := range []config.Design{config.TLCOpt1000, config.TLCOpt500, config.TLCOpt350} {
		got := DesignTransistors(d).Count
		if got >= prev {
			t.Fatalf("%v should need fewer line interfaces than its predecessor", d)
		}
		prev = got
	}
}

// Property: bank area is monotone in size and superlinear amortization
// never makes a bigger bank smaller in absolute terms.
func TestQuickBankAreaMonotone(t *testing.T) {
	f := func(raw uint8) bool {
		kb := 16 << (raw % 8) // 16KB .. 2MB
		a := BankAreaMM2(kb * 1024)
		b := BankAreaMM2(kb * 2048)
		return b > a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
