package tlc

import (
	"reflect"
	"testing"

	"tlc/internal/config"
	"tlc/internal/cpu"
	"tlc/internal/l2"
	"tlc/internal/sample"
	"tlc/internal/workload"
)

// scalarStream hides a stream's BatchStream/MemStream implementations, so
// the core is forced down the scalar Next-per-instruction reference paths.
type scalarStream struct {
	s cpu.Stream
}

func (s scalarStream) Next() cpu.Instr { return s.s.Next() }

// scalarCache hides a design's l2.Warmer implementation (embedding the
// interface does not promote the concrete type's WarmBulk), forcing
// per-block Warm dispatch.
type scalarCache struct {
	l2.Instrumented
}

// equivalencePoint runs one (design, benchmark) pair through PreWarm + Warm
// + a detailed run, with either scalar-forced or batched delivery, and
// returns the run Result plus the post-run core and L2 snapshots.
func equivalencePoint(t *testing.T, d Design, spec workload.Spec, scalar bool) (cpu.Result, cpu.State, l2.State) {
	t.Helper()
	const (
		warmInstrs = 150_000
		runInstrs  = 40_000
	)
	inst := build(d, Options{})
	gen := workload.New(spec, 1)
	var cacheArm l2.Cache = inst
	var streamArm cpu.Stream = gen
	if scalar {
		cacheArm = scalarCache{inst}
		streamArm = scalarStream{gen}
	}
	core := cpu.New(config.DefaultSystem(), cacheArm)
	gen.PreWarm(cacheArm)
	core.Warm(streamArm, warmInstrs)
	r := core.Run(streamArm, runInstrs)
	snap, ok := inst.(l2.Snapshotter)
	if !ok {
		t.Fatalf("%v does not snapshot", d)
	}
	return r, core.Snapshot(), snap.SnapshotState()
}

// TestBatchedScalarEquivalence is the tentpole's correctness gate: for all
// twelve benchmarks × all six designs, batched delivery (native NextBatch,
// the MemStream warm fast path, fused TouchOrInsertAt, bulk WarmBulk
// installs) produces the identical Result and bit-identical post-run L1 and
// L2 state as scalar per-instruction delivery through the reference paths.
func TestBatchedScalarEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid; skipped in -short")
	}
	for _, d := range Designs() {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			t.Parallel()
			for _, spec := range workload.Specs() {
				sr, sCore, sL2 := equivalencePoint(t, d, spec, true)
				br, bCore, bL2 := equivalencePoint(t, d, spec, false)
				if sr != br {
					t.Errorf("%s: Result diverged:\nscalar  %+v\nbatched %+v", spec.Name, sr, br)
				}
				if !reflect.DeepEqual(sCore, bCore) {
					t.Errorf("%s: post-run L1 state diverged", spec.Name)
				}
				if !reflect.DeepEqual(sL2, bL2) {
					t.Errorf("%s: post-run L2 state diverged", spec.Name)
				}
			}
		})
	}
}

// TestSampledBatchedEquivalence extends the gate to sampled mode: warm
// stretches (the MemStream fast path) interleaved with detailed intervals
// must leave estimates and machine state identical to scalar delivery.
func TestSampledBatchedEquivalence(t *testing.T) {
	benches := []string{"gcc", "equake", "oltp"}
	opt := sample.Options{Intervals: 8, Length: 2000}
	const total = 200_000
	for _, d := range Designs() {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			t.Parallel()
			for _, name := range benches {
				spec, ok := workload.SpecByName(name)
				if !ok {
					t.Fatalf("unknown benchmark %q", name)
				}
				run := func(scalar bool) (sample.Estimate, cpu.State, l2.State) {
					inst := build(d, Options{})
					gen := workload.New(spec, 1)
					var cacheArm l2.Cache = inst
					var streamArm cpu.Stream = gen
					if scalar {
						cacheArm = scalarCache{inst}
						streamArm = scalarStream{gen}
					}
					core := cpu.New(config.DefaultSystem(), cacheArm)
					gen.PreWarm(cacheArm)
					core.Warm(streamArm, 100_000)
					est := sample.Run(core, streamArm, total, opt, nil)
					return est, core.Snapshot(), inst.(l2.Snapshotter).SnapshotState()
				}
				sEst, sCore, sL2 := run(true)
				bEst, bCore, bL2 := run(false)
				if !reflect.DeepEqual(sEst, bEst) {
					t.Errorf("%s: sampled estimate diverged:\nscalar  %+v\nbatched %+v", name, sEst, bEst)
				}
				if !reflect.DeepEqual(sCore, bCore) {
					t.Errorf("%s: post-run L1 state diverged", name)
				}
				if !reflect.DeepEqual(sL2, bL2) {
					t.Errorf("%s: post-run L2 state diverged", name)
				}
			}
		})
	}
}

// TestWarmFastPathDoesNotAllocate pins the batched warm loop — generator
// fast path, fused L1 scan, bulk L2 installs — at zero allocations per call
// once the core's reusable buffers exist.
func TestWarmFastPathDoesNotAllocate(t *testing.T) {
	spec, _ := workload.SpecByName("oltp")
	for _, d := range []Design{DesignSNUCA2, DesignTLC} {
		inst := build(d, Options{})
		gen := workload.New(spec, 1)
		core := cpu.New(config.DefaultSystem(), inst)
		gen.PreWarm(inst)
		core.Warm(gen, 200_000) // allocate the batch buffers
		if allocs := testing.AllocsPerRun(10, func() { core.Warm(gen, 50_000) }); allocs != 0 {
			t.Errorf("%v: batched warm allocates %.2f per call, want 0", d, allocs)
		}
	}
}
