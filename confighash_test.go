package tlc

import (
	"fmt"
	"reflect"
	"testing"

	"tlc/internal/config"
	"tlc/internal/sim"
	"tlc/internal/workload"
)

// perturbLeaves visits every leaf field of v (recursing through structs and
// slice elements), applies a single perturbation, calls visit with a label,
// and restores the original value — so each invocation of visit sees exactly
// one field changed.
func perturbLeaves(v reflect.Value, path string, visit func(label string)) {
	switch v.Kind() {
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			f := v.Type().Field(i)
			perturbLeaves(v.Field(i), path+"."+f.Name, visit)
		}
	case reflect.Slice:
		// Perturb each element, then the length itself.
		for i := 0; i < v.Len(); i++ {
			perturbLeaves(v.Index(i), fmt.Sprintf("%s[%d]", path, i), visit)
		}
		old := v.Interface()
		grown := reflect.MakeSlice(v.Type(), v.Len()+1, v.Len()+1)
		reflect.Copy(grown, v)
		v.Set(grown)
		visit(path + ".len")
		v.Set(reflect.ValueOf(old))
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		old := v.Int()
		v.SetInt(old + 1)
		visit(path)
		v.SetInt(old)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		old := v.Uint()
		v.SetUint(old + 1)
		visit(path)
		v.SetUint(old)
	case reflect.Float32, reflect.Float64:
		old := v.Float()
		v.SetFloat(old + 0.125)
		visit(path)
		v.SetFloat(old)
	case reflect.Bool:
		old := v.Bool()
		v.SetBool(!old)
		visit(path)
		v.SetBool(old)
	case reflect.String:
		old := v.String()
		v.SetString(old + "x")
		visit(path)
		v.SetString(old)
	default:
		panic(fmt.Sprintf("perturbLeaves: unhandled kind %s at %s", v.Kind(), path))
	}
}

// TestConfigHashCoversEveryParameter drives configHashOf with every single
// field of the system, workload spec, NUCA parameters, and TLC parameters
// perturbed in turn, and asserts each perturbation changes the checkpoint
// key. This is the guarantee %+v formatting could not give: the key covers
// exactly the fields the keyHasher encoders enumerate, and this test fails
// the moment a struct grows a field the encoder does not fold (reflection
// walks the real struct, so a new field is perturbed here but ignored by the
// encoder, leaving the hash unchanged).
func TestConfigHashCoversEveryParameter(t *testing.T) {
	d := DesignTLC
	sys := config.DefaultSystem()
	spec, ok := workload.SpecByName("gcc")
	if !ok {
		t.Fatal("unknown benchmark gcc")
	}
	np := config.NUCAFor(config.DNUCA) // non-zero so nested mesh slices have elements
	tp := config.TLCFor(config.TLC)
	// Non-zero CMP axis so every coherence/sharing field has perturbable
	// content (the reflection walk covers Cores, Protocol, and the three
	// SharingSpec fields).
	cm := CMPConfig{Cores: 4, Protocol: "MSI", Sharing: SharingSpec{Pattern: "migratory", SharedMB: 2, SharedFrac: 0.25}}
	fid := FidelityFull

	base := configHashOf(d, sys, spec, np, tp, cm, fid)
	if again := configHashOf(d, sys, spec, np, tp, cm, fid); again != base {
		t.Fatalf("configHashOf is not deterministic: %s vs %s", base, again)
	}

	seen := map[string]string{"": base}
	check := func(label string, h string) {
		t.Helper()
		if h == base {
			t.Errorf("perturbing %s did not change the config hash", label)
		}
		if prev, ok := seen[h]; ok && prev != label {
			t.Errorf("perturbing %s collides with %s (hash %s)", label, prev, h)
		}
		seen[h] = label
	}

	perturbLeaves(reflect.ValueOf(&sys).Elem(), "System", func(label string) {
		check(label, configHashOf(d, sys, spec, np, tp, cm, fid))
	})
	perturbLeaves(reflect.ValueOf(&spec).Elem(), "Spec", func(label string) {
		check(label, configHashOf(d, sys, spec, np, tp, cm, fid))
	})
	perturbLeaves(reflect.ValueOf(&np).Elem(), "NUCAParams", func(label string) {
		check(label, configHashOf(d, sys, spec, np, tp, cm, fid))
	})
	perturbLeaves(reflect.ValueOf(&tp).Elem(), "TLCParams", func(label string) {
		check(label, configHashOf(d, sys, spec, np, tp, cm, fid))
	})
	perturbLeaves(reflect.ValueOf(&cm).Elem(), "CMPConfig", func(label string) {
		check(label, configHashOf(d, sys, spec, np, tp, cm, fid))
	})

	check("Design", configHashOf(DesignSNUCA2, sys, spec, np, tp, cm, fid))
	check("Fidelity", configHashOf(d, sys, spec, np, tp, cm, FidelityFast))
}

// TestConfigHashSliceBoundaries asserts the length-prefixed slice encoding
// cannot alias element moves across adjacent slices — the classic failure
// mode of concatenating variable-length fields without framing.
func TestConfigHashSliceBoundaries(t *testing.T) {
	d := DesignDNUCA
	sys := config.DefaultSystem()
	spec, ok := workload.SpecByName("gcc")
	if !ok {
		t.Fatal("unknown benchmark gcc")
	}
	tp := config.TLCParams{}

	a := config.NUCAFor(config.DNUCA)
	b := config.NUCAFor(config.DNUCA)
	// Move the last VertReqLat element to the front of VertRespLat: the raw
	// concatenation of the two slices is unchanged, only the boundary moves.
	a.Mesh.VertReqLat = []sim.Time{1, 2, 3}
	a.Mesh.VertRespLat = []sim.Time{4, 5}
	b.Mesh.VertReqLat = []sim.Time{1, 2}
	b.Mesh.VertRespLat = []sim.Time{3, 4, 5}

	cm := singleCoreCMP()
	ha := configHashOf(d, sys, spec, a, tp, cm, FidelityFull)
	hb := configHashOf(d, sys, spec, b, tp, cm, FidelityFull)
	if ha == hb {
		t.Fatalf("slice boundary move did not change the config hash (%s)", ha)
	}
}

// TestConfigHashDistinctPerDesign asserts the six designs produce six
// distinct checkpoint keys for the same benchmark — the property
// TestCheckpointKeySeparatesConfigurations relies on.
func TestConfigHashDistinctPerDesign(t *testing.T) {
	spec, ok := workload.SpecByName("mcf")
	if !ok {
		t.Fatal("unknown benchmark mcf")
	}
	hashes := map[string]Design{}
	for _, d := range Designs() {
		h := configHash(d, spec, singleCoreCMP(), FidelityFull)
		if prev, ok := hashes[h]; ok {
			t.Errorf("designs %v and %v share config hash %s", prev, d, h)
		}
		hashes[h] = d
	}
}
