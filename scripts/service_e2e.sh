#!/usr/bin/env bash
# End-to-end exercise of the tlcd experiment service, as run by the CI
# service-e2e job (and runnable locally: scripts/service_e2e.sh).
#
# Asserts, against a real tlcd process:
#   1. /healthz answers ok
#   2. a cold POST /v1/runs executes and returns a record with an ID
#   3. repeating it is served from the result cache (cached=true, zero new
#      executions by the server's own metrics)
#   4. concurrent identical requests coalesce into ONE execution
#   5. tlcsweep -remote output is byte-identical to the local run
#   6. SIGTERM drains gracefully (exit 0, "drained cleanly")
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)

fail() { echo "service_e2e: FAIL: $*" >&2; exit 1; }

# wait_addr <logfile> <pid>: scrape the "listening on <host:port>" line a
# tlcd started with -addr 127.0.0.1:0 prints once its kernel-chosen port is
# bound. No fixed port means no collision with parallel CI jobs.
wait_addr() {
    local logfile=$1 pid=$2 a=
    for i in $(seq 1 50); do
        a=$(grep -m1 -oE 'listening on [0-9.:]+' "$logfile" 2>/dev/null | awk '{print $3}' || true)
        [ -n "$a" ] && { echo "$a"; return 0; }
        kill -0 "$pid" 2>/dev/null || { cat "$logfile" >&2; return 1; }
        sleep 0.2
    done
    return 1
}

cleanup() {
    [ -n "${tlcd_pid:-}" ] && kill -9 "$tlcd_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build"
go build -o "$workdir/tlcd" ./cmd/tlcd
go build -o "$workdir/tlcsweep" ./cmd/tlcsweep

echo "== start tlcd"
"$workdir/tlcd" -addr 127.0.0.1:0 -workers 4 -quick > "$workdir/tlcd.log" 2>&1 &
tlcd_pid=$!
addr=$(wait_addr "$workdir/tlcd.log" "$tlcd_pid") || fail "tlcd never reported its listen address"
base="http://$addr"

for i in $(seq 1 50); do
    if curl -sf "$base/healthz" > /dev/null 2>&1; then break; fi
    kill -0 "$tlcd_pid" 2>/dev/null || { cat "$workdir/tlcd.log"; fail "tlcd died on startup"; }
    sleep 0.2
done
curl -sf "$base/healthz" | grep -q '"ok"' || fail "healthz not ok"

# metric <name>: read one integer counter from /metricz.
metric() {
    curl -sf "$base/metricz" | tr -d ' \n' \
        | grep -o "\"name\":\"$1\",\"kind\":\"counter\",\"value\":[0-9]*" \
        | grep -o '[0-9]*$'
}

run_body='{"design":"TLC","benchmark":"perl","options":{"warm_instructions":2000000,"run_instructions":200000}}'

echo "== cold run"
cold=$(curl -sf -X POST "$base/v1/runs" -d "$run_body")
echo "$cold" | grep -q '"id"' || fail "cold run has no id: $cold"
echo "$cold" | grep -q '"cached": true' && fail "cold run claims to be cached"
id=$(echo "$cold" | tr -d ' ' | grep -o '"id":"[^"]*"' | cut -d'"' -f4)
executed_after_cold=$(metric server.runs.executed)
[ "$executed_after_cold" -ge 1 ] || fail "no execution counted after cold run"

echo "== cached run"
cached=$(curl -sf -X POST "$base/v1/runs" -d "$run_body")
echo "$cached" | grep -q '"cached": true' || fail "repeat run not served from cache: $cached"
[ "$(metric server.runs.executed)" -eq "$executed_after_cold" ] \
    || fail "cache hit triggered a new execution"
curl -sf "$base/v1/runs/$id" | grep -q '"cached": true' || fail "GET by id missed"

echo "== coalescing"
# A fresh, slower config (default-scale warm-up) posted concurrently: all
# four must resolve to ONE execution — joiners coalesce onto the flight.
slow_body='{"design":"DNUCA","benchmark":"oltp","options":{"run_instructions":2000000}}'
executed_before=$(metric server.runs.executed)
curl_pids=()
for i in 1 2 3 4; do
    curl -sf -X POST "$base/v1/runs" -d "$slow_body" > "$workdir/co$i.json" &
    curl_pids+=($!)
done
wait "${curl_pids[@]}"
executed_delta=$(( $(metric server.runs.executed) - executed_before ))
[ "$executed_delta" -eq 1 ] || fail "concurrent identical requests caused $executed_delta executions, want 1"
grep -l '"coalesced": true' "$workdir"/co*.json > /dev/null \
    || fail "no concurrent response was marked coalesced"
for i in 1 2 3 4; do
    grep -q '"cycles"' "$workdir/co$i.json" || fail "concurrent caller $i got no result"
done

echo "== fidelity knob"
# The same configuration at the fast tier: a distinct run identity (the
# tier folds into the content key, so it must miss the full-tier cache
# entry and execute), a response that embeds the committed calibration
# envelope, and per-tier execution counters that account one execution
# each. The full-tier run above already executed once; the fast run must
# bump executed_fast exactly once and leave executed_full alone.
fast_body='{"design":"TLC","benchmark":"perl","options":{"warm_instructions":2000000,"run_instructions":200000,"fidelity":"fast"}}'
full_before=$(metric server.runs.executed_full)
fast_before=$(metric server.runs.executed_fast)
fast=$(curl -sf -X POST "$base/v1/runs" -d "$fast_body")
echo "$fast" | grep -q '"cached": true' && fail "fast run hit the full-tier cache entry"
fast_id=$(echo "$fast" | tr -d ' ' | grep -o '"id":"[^"]*"' | cut -d'"' -f4)
[ -n "$fast_id" ] || fail "fast run has no id: $fast"
[ "$fast_id" != "$id" ] || fail "fast and full runs share a run id"
echo "$fast" | grep -q '"fidelity": "fast"' || fail "fast record not tagged with its tier: $fast"
echo "$fast" | grep -q '"error_bound"' || fail "fast record carries no error bound: $fast"
echo "$fast" | grep -q '"cycles_bias_pct"' || fail "error bound is empty: $fast"
[ "$(metric server.runs.executed_fast)" -eq $((fast_before + 1)) ] \
    || fail "fast run did not count one fast-tier execution"
[ "$(metric server.runs.executed_full)" -eq "$full_before" ] \
    || fail "fast run bumped the full-tier execution counter"
# The fast entry is cacheable under its own key: a repeat must not execute.
fast_cached=$(curl -sf -X POST "$base/v1/runs" -d "$fast_body")
echo "$fast_cached" | grep -q '"cached": true' || fail "fast repeat not served from cache"
[ "$(metric server.runs.executed_fast)" -eq $((fast_before + 1)) ] \
    || fail "fast cache hit triggered a new execution"

echo "== remote sweep is byte-identical to local"
"$workdir/tlcsweep" -quick -bench perl > "$workdir/sweep_local.txt"
"$workdir/tlcsweep" -quick -bench perl -remote "$base" > "$workdir/sweep_remote.txt"
cmp "$workdir/sweep_local.txt" "$workdir/sweep_remote.txt" \
    || fail "tlcsweep -remote output diverged from the local run"

echo "== graceful shutdown"
kill -TERM "$tlcd_pid"
for i in $(seq 1 100); do
    kill -0 "$tlcd_pid" 2>/dev/null || break
    sleep 0.2
done
if wait "$tlcd_pid"; then :; else
    code=$?
    cat "$workdir/tlcd.log"
    fail "tlcd exited $code on SIGTERM, want 0"
fi
grep -q "drained cleanly" "$workdir/tlcd.log" || { cat "$workdir/tlcd.log"; fail "no clean-drain message"; }
tlcd_pid=

echo "service_e2e: PASS"
