#!/usr/bin/env bash
# Coverage gate, as run by CI (and runnable locally:
# scripts/coverage_check.sh [outdir]).
#
# Runs the tier-1 test suite with -coverprofile, renders the HTML report,
# and enforces the committed floor in .github/coverage-floor.txt: total
# statement coverage below the floor fails. The floor is a ratchet — raise
# it when coverage rises, never lower it to admit a regression.
#
# -short keeps the gate fast and deterministic: the long simulated-figure
# tests exercise scale, not additional branches.
set -euo pipefail

cd "$(dirname "$0")/.."
outdir="${1:-coverage}"
mkdir -p "$outdir"

go test -short -count=1 -coverprofile="$outdir/cover.out" ./...
go tool cover -html="$outdir/cover.out" -o "$outdir/cover.html"
go tool cover -func="$outdir/cover.out" > "$outdir/cover.txt"

total=$(awk '/^total:/ {gsub(/%/, "", $NF); print $NF}' "$outdir/cover.txt")
floor=$(cat .github/coverage-floor.txt)

echo "total statement coverage: ${total}% (floor: ${floor}%)"
if awk -v t="$total" -v f="$floor" 'BEGIN { exit !(t < f) }'; then
    echo "coverage_check: FAIL: coverage ${total}% fell below the floor ${floor}%" >&2
    echo "(fix the regression, or justify lowering .github/coverage-floor.txt)" >&2
    exit 1
fi
echo "coverage_check: PASS"
