#!/usr/bin/env bash
# Calibration ratchet, CI-enforced like the coverage floor: rebuild the
# fast-tier calibration from scratch at the committed artifact's recorded
# scale and fail on any per-benchmark bias/spread drift beyond the
# tolerance in .github/calibration-drift.txt. Both tiers are deterministic,
# so on unchanged timing code the rebuild reproduces the committed
# statistics exactly — the tolerance admits deliberate, reviewed drift
# only. A fast-core or cache-timing change that shifts the error contract
# fails here until the artifact is regenerated and committed:
#
#   go run ./cmd/tlccal -out internal/calibrate/CALIBRATION.json
#
# (bump -version when the shift is intentional, then review the new bounds
# in the diff).
set -euo pipefail
cd "$(dirname "$0")/.."

ARTIFACT=internal/calibrate/CALIBRATION.json
TOL=$(tr -d '[:space:]' < .github/calibration-drift.txt)

echo "== calibration ratchet: rebuilding at committed scale, tolerance ${TOL}pp =="
go run ./cmd/tlccal -against "$ARTIFACT" -tol "$TOL"
