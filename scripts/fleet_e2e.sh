#!/usr/bin/env bash
# End-to-end exercise of the fleet-sharded tlcd, as run by the CI fleet-e2e
# job (and runnable locally: scripts/fleet_e2e.sh).
#
# Topology: one coordinator, three workers joined to it, every process on a
# kernel-chosen free port. Asserts:
#   1. all three workers register and turn ready
#   2. a cold fleet sweep (tlcsweep -remote <coordinator>) is byte-identical
#      to the same sweep run locally — sharding must not change one byte
#   3. re-running the sweep executes NOTHING (fleet-wide result caches serve
#      every point; asserted via each worker's /metricz)
#   4. SIGTERMing a worker mid-sweep does not fail the sweep: the coordinator
#      routes around the drained worker and output is still byte-identical
#   5. the killed worker drains cleanly (readyz 503s while healthz stays 200,
#      in-flight runs finish, "drained cleanly" in its log)
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)

fail() { echo "fleet_e2e: FAIL: $*" >&2; exit 1; }

cleanup() {
    for pid in "${pids[@]:-}"; do
        [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    done
    rm -rf "$workdir"
}
pids=()
trap cleanup EXIT

# wait_addr <logfile> <pid>: scrape the "listening on <host:port>" line a
# tlcd started with -addr 127.0.0.1:0 prints once its port is bound.
wait_addr() {
    local logfile=$1 pid=$2 a=
    for i in $(seq 1 50); do
        a=$(grep -m1 -oE 'listening on [0-9.:]+' "$logfile" 2>/dev/null | awk '{print $3}' || true)
        [ -n "$a" ] && { echo "$a"; return 0; }
        kill -0 "$pid" 2>/dev/null || { cat "$logfile" >&2; return 1; }
        sleep 0.2
    done
    return 1
}

# metric <base> <name>: read one integer counter from a node's /metricz.
metric() {
    curl -sf "$1/metricz" | tr -d ' \n' \
        | grep -o "\"name\":\"$2\",\"kind\":\"counter\",\"value\":[0-9]*" \
        | grep -o '[0-9]*$'
}

# executed_total: sum of server.runs.executed across all live workers.
executed_total() {
    local total=0 base
    for base in "$@"; do
        total=$(( total + $(metric "$base" server.runs.executed) ))
    done
    echo "$total"
}

echo "== build"
go build -o "$workdir/tlcd" ./cmd/tlcd
go build -o "$workdir/tlcsweep" ./cmd/tlcsweep

echo "== single-node baselines"
# Local tlcsweep output IS the single-node baseline: the service-e2e job
# already asserts local == one-server output, so fleet == local closes the
# chain fleet == single-node.
"$workdir/tlcsweep" -quick -bench perl > "$workdir/base_perl.txt"
"$workdir/tlcsweep" -quick -bench gcc  > "$workdir/base_gcc.txt"

echo "== start coordinator + 3 workers"
"$workdir/tlcd" -coordinator -addr 127.0.0.1:0 -heartbeat 500ms \
    > "$workdir/coord.log" 2>&1 &
coord_pid=$!; pids+=("$coord_pid")
coord_addr=$(wait_addr "$workdir/coord.log" "$coord_pid") || fail "coordinator never reported its address"
coord="http://$coord_addr"

worker_bases=()
worker_pids=()
for i in 1 2 3; do
    "$workdir/tlcd" -addr 127.0.0.1:0 -join "$coord" -heartbeat 500ms \
        -workers 2 -quick > "$workdir/worker$i.log" 2>&1 &
    wpid=$!; pids+=("$wpid"); worker_pids+=("$wpid")
    waddr=$(wait_addr "$workdir/worker$i.log" "$wpid") || fail "worker $i never reported its address"
    worker_bases+=("http://$waddr")
done

ready=0
for i in $(seq 1 50); do
    ready=$( (curl -sf "$coord/v1/workers" || true) | tr -d ' \n' | { grep -o '"ready":true' || true; } | wc -l)
    [ "$ready" -eq 3 ] && break
    sleep 0.2
done
[ "$ready" -eq 3 ] || fail "only $ready of 3 workers turned ready"
curl -sf "$coord/readyz" > /dev/null || fail "coordinator readyz not ok with ready workers"

echo "== cold fleet sweep is byte-identical to single-node"
"$workdir/tlcsweep" -quick -bench perl -remote "$coord" > "$workdir/fleet_perl.txt"
cmp "$workdir/base_perl.txt" "$workdir/fleet_perl.txt" \
    || fail "fleet sweep output diverged from single-node"
routed=$(metric "$coord" fleet.runs.routed)
[ "$routed" -ge 1 ] || fail "coordinator routed no runs"

echo "== warm refetch executes nothing fleet-wide"
executed_cold=$(executed_total "${worker_bases[@]}")
[ "$executed_cold" -ge 1 ] || fail "no executions counted after cold sweep"
"$workdir/tlcsweep" -quick -bench perl -remote "$coord" > "$workdir/fleet_perl2.txt"
cmp "$workdir/base_perl.txt" "$workdir/fleet_perl2.txt" \
    || fail "warm fleet sweep output diverged"
executed_warm=$(executed_total "${worker_bases[@]}")
[ "$executed_warm" -eq "$executed_cold" ] \
    || fail "warm refetch re-executed $(( executed_warm - executed_cold )) runs, want 0 (owner caches must serve)"
hits=0
for base in "${worker_bases[@]}"; do
    hits=$(( hits + $(metric "$base" server.runs.cache_hits) ))
done
[ "$hits" -ge 1 ] || fail "no cache hits recorded on any worker during warm refetch"

echo "== SIGTERM one worker mid-sweep; sweep must still complete identically"
( sleep 1; kill -TERM "${worker_pids[2]}" 2>/dev/null || true ) &
killer=$!
"$workdir/tlcsweep" -quick -bench gcc -remote "$coord" > "$workdir/fleet_gcc.txt" \
    || fail "fleet sweep failed while a worker drained"
wait "$killer" 2>/dev/null || true
cmp "$workdir/base_gcc.txt" "$workdir/fleet_gcc.txt" \
    || fail "fleet sweep output diverged while a worker drained"

echo "== killed worker drained cleanly"
for i in $(seq 1 100); do
    kill -0 "${worker_pids[2]}" 2>/dev/null || break
    sleep 0.2
done
if wait "${worker_pids[2]}"; then :; else
    code=$?
    cat "$workdir/worker3.log"
    fail "worker exited $code on SIGTERM, want 0"
fi
grep -q "drained cleanly" "$workdir/worker3.log" \
    || { cat "$workdir/worker3.log"; fail "killed worker has no clean-drain message"; }

echo "== survivors still serve"
"$workdir/tlcsweep" -quick -bench perl -remote "$coord" > "$workdir/fleet_perl3.txt"
cmp "$workdir/base_perl.txt" "$workdir/fleet_perl3.txt" \
    || fail "two-worker fleet output diverged"

echo "fleet_e2e: PASS"
