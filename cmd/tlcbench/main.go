// Command tlcbench runs the evaluation grid and emits the headline metrics
// as JSON (the BENCH_*.json trajectory format): per-run records plus the
// paper's aggregate comparisons and the harness's own performance
// (wall-clock per run, total simulation time, parallel speedup basis).
//
//	tlcbench                      # 3-design x 12-benchmark headline grid
//	tlcbench -full                # all 6 designs
//	tlcbench -quick               # reduced scale (200 K timed instructions)
//	tlcbench -par 8 -out bench.json
//	tlcbench -ckptdir ~/.tlc-ckpt -sample 50  # warm-skip + sampled detail
//	tlcbench -cpuprofile cpu.pprof -memprofile mem.pprof
//	tlcbench -out b.json -diff-against prev.json  # metric drift vs last artifact
//
// Each run record embeds its full metric-registry snapshot, so the artifact
// carries every counter, gauge, and histogram the simulation layers
// registered; -diff-against reports which of them moved since a previous
// artifact (empty for a pure refactor).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"tlc"
	"tlc/internal/api"
	"tlc/internal/cliopt"
	"tlc/internal/experiments"
	"tlc/internal/stats"
)

// record is one completed run's headline metrics plus its full
// metric-registry snapshot, so the trajectory artifact carries every
// counter, gauge, and histogram the simulation layers registered and any
// metric can be diffed across commits (-diff-against). The schema is shared
// with the tlcd service (internal/api): a served run record and a CLI
// artifact record are interchangeable JSON — the service-only fields simply
// stay empty here.
type record = api.RunRecord

// document is the emitted JSON shape.
type document struct {
	TimedInstructions uint64             `json:"timed_instructions"`
	Seed              int64              `json:"seed"`
	Par               int                `json:"par"`
	SampleIntervals   int                `json:"sample_intervals,omitempty"`
	SampleLength      uint64             `json:"sample_length,omitempty"`
	PhaseWindows      int                `json:"phase_windows,omitempty"`
	PhaseClusters     int                `json:"phase_clusters,omitempty"`
	Fidelity          string             `json:"fidelity,omitempty"`
	Runs              []record           `json:"runs"`
	Headline          map[string]float64 `json:"headline"`
	SimulatedRuns     uint64             `json:"simulated_runs"`
	SimWallMS         float64            `json:"sim_wall_ms"`
	ElapsedMS         float64            `json:"elapsed_ms"`
	Lanes             *laneStatsJSON     `json:"lanes,omitempty"`
}

// laneStatsJSON is the lane-parallel warm phase's share of the grid (the
// sim.lanes.* spine, aggregated): present only when the lane phase was
// enabled, zero-valued when it ran but nothing grouped.
type laneStatsJSON struct {
	Groups        uint64 `json:"groups"`
	LanesWarmed   uint64 `json:"lanes_warmed"`
	BatchesShared uint64 `json:"batches_shared"`
	ScalarPoints  uint64 `json:"scalar_points"`
	// WarmWallMS is the summed wall-clock of the shared warm passes. The
	// runs restore instead of warming, so the artifact's total simulation
	// cost is sim_wall_ms + warm_wall_ms — the figure to hold against a
	// scalar artifact's sim_wall_ms.
	WarmWallMS float64 `json:"warm_wall_ms"`
	// BenchSpeedups carries BenchmarkLaneSweep's measured lane-vs-scalar
	// warm speedup per calibration workload, parsed from a go-test log via
	// -lane-bench-log: the kernel-level number the sweep-level wall ratio
	// dilutes with the timed phase and the per-design L2 installs.
	BenchSpeedups map[string]float64 `json:"bench_speedup,omitempty"`
}

func main() {
	full := flag.Bool("full", false, "all six designs (default: SNUCA2, DNUCA, TLC)")
	quick := flag.Bool("quick", false, "reduced scale (200K timed instructions)")
	par := flag.Int("par", runtime.NumCPU(), "simulation parallelism")
	seed := flag.Int64("seed", 1, "workload seed")
	out := flag.String("out", "", "output file (default stdout)")
	diffAgainst := flag.String("diff-against", "",
		"previous artifact to diff the embedded metrics against (report on stderr)")
	diffFatal := flag.Bool("diff-fatal", false,
		"exit non-zero if -diff-against reports any changed metric "+
			"(the lane-vs-scalar equivalence gate)")
	diffTol := flag.Float64("tol", 0,
		"relative tolerance for -diff-against: values within |a-b| <= tol*max(|a|,|b|) "+
			"count as unchanged (0 = exact equality, the equivalence-gate default; "+
			"accuracy gates comparing phase-sampled vs uniform artifacts pass e.g. 0.03)")
	diffHead := flag.Bool("diff-headline", false,
		"with -diff-against: compare each run's full-run cycle estimates (cycles, ipc) "+
			"instead of the embedded registry snapshots — the cross-execution-mode "+
			"accuracy gate (a sampled artifact's raw registry counters cover only its "+
			"detailed fraction, so they are not comparable against a full run's)")
	lanes := flag.Bool("lanes", true,
		"lane-parallel warm phase: share each benchmark's warm stream across "+
			"all designs (an in-memory checkpoint store is used when -ckptdir "+
			"is unset); -lanes=false measures the scalar warm baseline")
	laneBenchLog := flag.String("lane-bench-log", "",
		"go-test output of BenchmarkLaneSweep to embed in the lanes block "+
			"(bench_speedup per workload)")
	cpuprofile := flag.String("cpuprofile", "",
		"write a CPU profile of the simulation region to this file "+
			"(covers only the run sweep — setup, JSON encoding, and metric diffing are excluded)")
	memprofile := flag.String("memprofile", "", "write a post-sweep heap profile to this file")
	accel := cliopt.Register()
	flag.Parse()

	opt := tlc.DefaultOptions()
	opt.Seed = *seed
	if *quick {
		opt.RunInstructions = 200_000
		opt.WarmInstructions = 2_000_000
	}
	if err := accel.Apply(&opt); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	designs := []tlc.Design{tlc.DesignSNUCA2, tlc.DesignDNUCA, tlc.DesignTLC}
	if *full {
		designs = tlc.Designs()
	}
	benches := tlc.Benchmarks()

	if *lanes && opt.Checkpoints == nil {
		// The lane phase carries warm state to the runs through a checkpoint
		// store; without -ckptdir an in-memory one scoped to this invocation
		// serves. Sized to the grid: the default capacity (64) is smaller
		// than the full 6x12 grid, and LRU eviction between the warm phase
		// and the runs would silently re-warm the evicted points scalar.
		opt.Checkpoints = tlc.NewCheckpointStore(len(designs)*len(benches), "")
	}

	s := experiments.NewSuite(opt)
	s.NoLanes = !*lanes
	var mu sync.Mutex
	wall := make(map[string]time.Duration)
	s.OnRun = func(ev experiments.RunEvent) {
		mu.Lock()
		wall[ev.Design.String()+"/"+ev.Benchmark] = ev.Wall
		mu.Unlock()
	}

	// The CPU profile brackets exactly the simulation region, so the
	// resulting profile answers "where does simulation time go" without
	// startup, artifact encoding, or diffing noise diluting it.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	start := time.Now()
	err := s.RunAll(designs, benches, *par)
	elapsed := time.Since(start)
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	doc := document{
		TimedInstructions: opt.RunInstructions,
		Seed:              opt.Seed,
		Par:               *par,
		SampleIntervals:   opt.SampleIntervals,
		SampleLength:      opt.SampleLength,
		PhaseWindows:      opt.PhaseWindows,
		PhaseClusters:     opt.PhaseClusters,
		Fidelity:          opt.Fidelity,
		Headline:          map[string]float64{},
		ElapsedMS:         float64(elapsed.Microseconds()) / 1000,
	}
	m := s.Metrics()
	doc.SimulatedRuns = m.Simulated
	doc.SimWallMS = float64(m.SimWall.Microseconds()) / 1000
	if *lanes {
		doc.Lanes = &laneStatsJSON{
			Groups:        m.LaneGroups,
			LanesWarmed:   m.LanesWarmed,
			BatchesShared: m.LaneBatches,
			ScalarPoints:  m.LaneScalarPoints,
			WarmWallMS:    float64(m.LaneWall.Microseconds()) / 1000,
		}
		if *laneBenchLog != "" {
			sp, err := parseLaneBench(*laneBenchLog)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			doc.Lanes.BenchSpeedups = sp
		}
	}

	norm := map[tlc.Design]*stats.Series{}
	for _, d := range designs {
		norm[d] = &stats.Series{Name: d.String()}
	}
	for _, d := range designs {
		for _, b := range benches {
			r := s.Run(d, b)
			rec := record{
				Design:          d.String(),
				Benchmark:       b,
				Cycles:          r.Cycles,
				IPC:             r.IPC,
				MeanLookup:      r.MeanLookup,
				MissesPer1K:     r.MissesPer1K,
				PredictablePct:  r.PredictablePct,
				LinkUtilization: r.LinkUtilization,
				NetworkPowerW:   r.NetworkPowerW,
				WallMS:          float64(wall[d.String()+"/"+b].Microseconds()) / 1000,
			}
			if opt.FidelityTier() == tlc.FidelityFast {
				rec.Fidelity = tlc.FidelityFast
				rec.ErrorBound = r.ErrorBound
			}
			if s.Sampled() {
				sr, err := s.SampledErr(d, b)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				rec.CyclesCI = sr.CyclesCI
				rec.MeanLookupCI = sr.MeanLookupCI
				rec.MissesPer1KCI = sr.MissesPer1KCI
			}
			if snap, ok := s.RunMetrics(d, b); ok {
				rec.Metrics = snap
			}
			doc.Runs = append(doc.Runs, rec)
			base := float64(s.Run(tlc.DesignSNUCA2, b).Cycles)
			norm[d].Append(b, float64(r.Cycles)/base)
		}
	}

	// The Figure 5/8 headline: normalized execution time geomeans.
	for _, d := range designs {
		doc.Headline["norm_exec_geomean_"+d.String()] = norm[d].GeoMean()
	}
	// Harness performance headline for the trajectory.
	if m.Simulated > 0 {
		doc.Headline["mean_run_wall_ms"] = doc.SimWallMS / float64(m.Simulated)
	}
	if elapsed > 0 {
		// Summed per-run wall-clock over elapsed time: the parallel
		// overlap factor. With free cores this equals the wall-clock
		// speedup over a serial sweep.
		doc.Headline["parallel_overlap"] = float64(m.SimWall) / float64(elapsed)
	}
	var prev *document
	if *diffAgainst != "" {
		prev, err = readArtifact(*diffAgainst)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// Record the sweep-level wall speedup in the artifact itself: total
		// simulation cost — runs plus any shared warm passes — against the
		// previous artifact's. A lane-phased sweep diffed against a scalar
		// one captures exactly what lane grouping saved.
		cost := doc.SimWallMS
		if doc.Lanes != nil {
			cost += doc.Lanes.WarmWallMS
		}
		prevCost := prev.SimWallMS
		if prev.Lanes != nil {
			prevCost += prev.Lanes.WarmWallMS
		}
		if cost > 0 && prevCost > 0 {
			doc.Headline["sim_wall_speedup_vs_prev"] = prevCost / cost
		}
	}
	sortRecords(doc.Runs)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if prev != nil {
		if *diffTol < 0 {
			fmt.Fprintf(os.Stderr, "tlcbench: -tol %g: tolerance must be non-negative\n", *diffTol)
			os.Exit(2)
		}
		var changed int
		if *diffHead {
			changed, _ = diffHeadline(*diffAgainst, *prev, doc, *diffTol, os.Stderr)
		} else {
			changed, _ = diffMetrics(*diffAgainst, *prev, doc, *diffTol, os.Stderr)
		}
		if *diffFatal && changed > 0 {
			fmt.Fprintf(os.Stderr, "tlcbench: -diff-fatal: %d metrics changed vs %s\n",
				changed, *diffAgainst)
			os.Exit(1)
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // report retained allocations, not transient garbage
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// diffMetrics compares every embedded metric of the current artifact with a
// previous one and reports changed values on w. It is the CI trajectory
// check: after a pure-refactor commit the diff must be empty, and after a
// modeling change it names exactly which counters moved. A previous
// artifact without embedded metrics (or with a different grid) diffs only
// the intersection.
//
// tol relaxes the comparison to a symmetric relative tolerance — values
// within |a-b| <= tol*max(|a|,|b|) count as unchanged — for accuracy gates
// that compare estimates against a different execution mode (phase-sampled
// vs uniform). Equivalence gates (lane-vs-scalar, cache-hit-vs-recompute)
// keep tol 0: bit-identical modes must diff exactly.
//
// The comparison is fully order-independent: runs match by (design,
// benchmark) key and metrics by name, never by position. A served artifact
// (tlcd emits records in completion order) or one whose metrics array was
// reassembled out of sorted order diffs identically to a freshly sorted
// one — in particular, Snapshot.Value's sorted-order binary search is NOT
// used on the deserialized previous artifact, which carries no ordering
// guarantee.
func diffMetrics(path string, prev, cur document, tol float64, w io.Writer) (changed, compared int) {
	prevRuns := make(map[string]map[string]float64, len(prev.Runs))
	for _, r := range prev.Runs {
		vals := make(map[string]float64, len(r.Metrics))
		for _, m := range r.Metrics {
			vals[m.Name] = m.Value
		}
		prevRuns[r.Design+"/"+r.Benchmark] = vals
	}

	for _, r := range cur.Runs {
		p, ok := prevRuns[r.Design+"/"+r.Benchmark]
		if !ok || len(p) == 0 || len(r.Metrics) == 0 {
			continue
		}
		for _, m := range r.Metrics {
			old, ok := p[m.Name]
			if !ok {
				continue
			}
			compared++
			if metricChanged(old, m.Value, tol) {
				changed++
				fmt.Fprintf(w, "metric %s/%s %s: %g -> %g\n",
					r.Design, r.Benchmark, m.Name, old, m.Value)
			}
		}
	}
	fmt.Fprintf(w, "metrics diff vs %s: %d of %d values changed\n",
		path, changed, compared)
	return changed, compared
}

// diffHeadline compares each run's headline cycle estimates — cycles and
// ipc — between artifacts, matching runs by (design, benchmark) like
// diffMetrics. It is the cross-execution-mode accuracy gate: a sampled or
// phase-sampled artifact's embedded registry counters cover only the
// detailed fraction of each run (not comparable to a full artifact's), but
// its cycles and ipc are full-run estimates, so they diff meaningfully
// against a full artifact under -tol. The rate estimates (mean lookup,
// misses/1K) are deliberately excluded: they carry their own confidence
// intervals in the artifact and are not part of the ±tolerance contract.
func diffHeadline(path string, prev, cur document, tol float64, w io.Writer) (changed, compared int) {
	prevRuns := make(map[string]record, len(prev.Runs))
	for _, r := range prev.Runs {
		prevRuns[r.Design+"/"+r.Benchmark] = r
	}
	for _, r := range cur.Runs {
		p, ok := prevRuns[r.Design+"/"+r.Benchmark]
		if !ok {
			continue
		}
		for _, f := range []struct {
			name     string
			old, new float64
		}{
			{"cycles", float64(p.Cycles), float64(r.Cycles)},
			{"ipc", p.IPC, r.IPC},
		} {
			compared++
			if metricChanged(f.old, f.new, tol) {
				changed++
				fmt.Fprintf(w, "headline %s/%s %s: %g -> %g\n",
					r.Design, r.Benchmark, f.name, f.old, f.new)
			}
		}
	}
	fmt.Fprintf(w, "headline diff vs %s: %d of %d values changed\n",
		path, changed, compared)
	return changed, compared
}

// metricChanged reports whether two metric values differ beyond the
// relative tolerance. tol 0 degenerates to exact inequality (a NaN — which
// no registry metric produces — would then always read as changed, the
// conservative direction for a gate).
func metricChanged(old, new, tol float64) bool {
	if old == new {
		return false
	}
	if tol == 0 {
		return true
	}
	scale := math.Abs(old)
	if a := math.Abs(new); a > scale {
		scale = a
	}
	return math.Abs(new-old) > tol*scale
}

// readArtifact loads and parses a previous trajectory artifact.
func readArtifact(path string) (*document, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("tlcbench: -diff-against: no previous artifact at %s", path)
	}
	if err != nil {
		return nil, fmt.Errorf("tlcbench: -diff-against: cannot read %s: %v", path, err)
	}
	var prev document
	if err := json.Unmarshal(raw, &prev); err != nil {
		return nil, fmt.Errorf("tlcbench: -diff-against: %s is not a tlcbench artifact: %v", path, err)
	}
	return &prev, nil
}

// parseLaneBench extracts the lane_speedup metric per workload from a
// `go test -bench BenchmarkLaneSweep` log. Each result line looks like
//
//	BenchmarkLaneSweep/bzip-4  3  279292635 ns/op  4.064 lane_speedup  ...
//
// (custom metrics in value-then-unit pairs; order among them is not
// guaranteed, so the value is found as the field preceding the
// "lane_speedup" token). The sub-benchmark name, stripped of the
// BenchmarkLaneSweep/ prefix and the -GOMAXPROCS suffix, keys the map.
func parseLaneBench(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tlcbench: -lane-bench-log: cannot read %s: %v", path, err)
	}
	defer f.Close()
	const prefix = "BenchmarkLaneSweep/"
	out := make(map[string]float64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 || !strings.HasPrefix(fields[0], prefix) {
			continue
		}
		name := strings.TrimPrefix(fields[0], prefix)
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		for i := 1; i < len(fields); i++ {
			if fields[i] != "lane_speedup" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				return nil, fmt.Errorf("tlcbench: -lane-bench-log: %s: bad lane_speedup for %s: %v", path, name, err)
			}
			out[name] = v
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tlcbench: -lane-bench-log: reading %s: %v", path, err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("tlcbench: -lane-bench-log: %s has no BenchmarkLaneSweep results with a lane_speedup metric", path)
	}
	return out, nil
}

// sortRecords keeps the emitted order stable regardless of execution order.
func sortRecords(rs []record) {
	sort.SliceStable(rs, func(i, j int) bool {
		if rs[i].Design != rs[j].Design {
			return rs[i].Design < rs[j].Design
		}
		return rs[i].Benchmark < rs[j].Benchmark
	})
}
