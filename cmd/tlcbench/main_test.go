package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tlc"
)

// TestDiffMetricsMissingArtifact covers the common trajectory mistake:
// pointing -diff-against at an artifact that was never generated. The error
// must be a single clear line naming the path (main exits nonzero on it),
// not a wrapped *PathError dump.
func TestDiffMetricsMissingArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nope.json")
	err := diffMetrics(path, document{})
	if err == nil {
		t.Fatalf("diffMetrics(%q) = nil, want error", path)
	}
	msg := err.Error()
	if !strings.Contains(msg, path) {
		t.Errorf("error %q does not name the missing path %q", msg, path)
	}
	if !strings.Contains(msg, "no previous artifact") {
		t.Errorf("error %q does not say the artifact is missing", msg)
	}
	if strings.Contains(msg, "\n") {
		t.Errorf("error %q spans multiple lines", msg)
	}
}

// TestDiffMetricsMalformedArtifact: a file that exists but is not a
// tlcbench artifact must fail with a one-line message naming the path.
func TestDiffMetricsMalformedArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := diffMetrics(path, document{})
	if err == nil {
		t.Fatalf("diffMetrics(%q) = nil, want error", path)
	}
	msg := err.Error()
	if !strings.Contains(msg, path) {
		t.Errorf("error %q does not name the path %q", msg, path)
	}
	if strings.Contains(msg, "\n") {
		t.Errorf("error %q spans multiple lines", msg)
	}
}

// TestDiffMetricsValidArtifact: a well-formed previous artifact diffs
// cleanly (nil error), whether metrics moved or not — drift is reported on
// stderr, it is not a failure.
func TestDiffMetricsValidArtifact(t *testing.T) {
	prev := document{
		Runs: []record{{
			Design:    "TLC",
			Benchmark: "gcc",
			Metrics: tlc.MetricsSnapshot{
				{Name: "l1.hits", Value: 100},
			},
		}},
	}
	raw, err := json.Marshal(prev)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "prev.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	cur := document{
		Runs: []record{{
			Design:    "TLC",
			Benchmark: "gcc",
			Metrics: tlc.MetricsSnapshot{
				{Name: "l1.hits", Value: 150},
			},
		}},
	}
	if err := diffMetrics(path, cur); err != nil {
		t.Fatalf("diffMetrics on valid artifact: %v", err)
	}
}
