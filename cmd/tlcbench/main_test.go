package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tlc"
)

// TestDiffMetricsMissingArtifact covers the common trajectory mistake:
// pointing -diff-against at an artifact that was never generated. The error
// must be a single clear line naming the path (main exits nonzero on it),
// not a wrapped *PathError dump.
func TestDiffMetricsMissingArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nope.json")
	_, err := readArtifact(path)
	if err == nil {
		t.Fatalf("readArtifact(%q) = nil, want error", path)
	}
	msg := err.Error()
	if !strings.Contains(msg, path) {
		t.Errorf("error %q does not name the missing path %q", msg, path)
	}
	if !strings.Contains(msg, "no previous artifact") {
		t.Errorf("error %q does not say the artifact is missing", msg)
	}
	if strings.Contains(msg, "\n") {
		t.Errorf("error %q spans multiple lines", msg)
	}
}

// TestDiffMetricsMalformedArtifact: a file that exists but is not a
// tlcbench artifact must fail with a one-line message naming the path.
func TestDiffMetricsMalformedArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := readArtifact(path)
	if err == nil {
		t.Fatalf("readArtifact(%q) = nil, want error", path)
	}
	msg := err.Error()
	if !strings.Contains(msg, path) {
		t.Errorf("error %q does not name the path %q", msg, path)
	}
	if strings.Contains(msg, "\n") {
		t.Errorf("error %q spans multiple lines", msg)
	}
}

// TestDiffMetricsValidArtifact: a well-formed previous artifact diffs
// cleanly (nil error), whether metrics moved or not — drift is reported on
// stderr, it is not a failure.
func TestDiffMetricsValidArtifact(t *testing.T) {
	prev := document{
		Runs: []record{{
			Design:    "TLC",
			Benchmark: "gcc",
			Metrics: tlc.MetricsSnapshot{
				{Name: "l1.hits", Value: 100},
			},
		}},
	}
	raw, err := json.Marshal(prev)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "prev.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	cur := document{
		Runs: []record{{
			Design:    "TLC",
			Benchmark: "gcc",
			Metrics: tlc.MetricsSnapshot{
				{Name: "l1.hits", Value: 150},
			},
		}},
	}
	got, err := readArtifact(path)
	if err != nil {
		t.Fatalf("readArtifact on valid artifact: %v", err)
	}
	changed, compared := diffMetrics(path, *got, cur, io.Discard)
	if changed != 1 || compared != 1 {
		t.Fatalf("diff = %d changed of %d compared, want 1 of 1", changed, compared)
	}
}

// TestParseLaneBench: the -lane-bench-log parser must pull lane_speedup
// per workload out of real `go test -bench` output — tab-separated fields,
// -GOMAXPROCS suffix on sub-benchmark names, unrelated benchmark and
// chatter lines interleaved — and fail loudly on a log with no results.
func TestParseLaneBench(t *testing.T) {
	log := strings.Join([]string{
		"goos: linux",
		"goarch: amd64",
		"pkg: tlc",
		"BenchmarkWarmThroughput/gcc-4 \t 5\t 1000 ns/op",
		"BenchmarkLaneSweep/bzip-4         \t       3\t 279292635 ns/op\t       387.6 lane_Minstr_per_s\t         4.064 lane_speedup\t        95.38 scalar_Minstr_per_s",
		"BenchmarkLaneSweep/gcc            \t       3\t 471834522 ns/op\t       229.4 lane_Minstr_per_s\t         2.403 lane_speedup\t        95.45 scalar_Minstr_per_s",
		"PASS",
	}, "\n")
	path := filepath.Join(t.TempDir(), "bench.txt")
	if err := os.WriteFile(path, []byte(log), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := parseLaneBench(path)
	if err != nil {
		t.Fatalf("parseLaneBench: %v", err)
	}
	want := map[string]float64{"bzip": 4.064, "gcc": 2.403}
	if len(got) != len(want) {
		t.Fatalf("parsed %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("speedup[%q] = %g, want %g", k, got[k], v)
		}
	}

	empty := filepath.Join(t.TempDir(), "empty.txt")
	if err := os.WriteFile(empty, []byte("PASS\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := parseLaneBench(empty); err == nil {
		t.Error("parseLaneBench on a log without results = nil, want error")
	}
	if _, err := parseLaneBench(filepath.Join(t.TempDir(), "nope.txt")); err == nil {
		t.Error("parseLaneBench on a missing file = nil, want error")
	}
}

// TestDiffMetricsOrderIndependent is the regression test for the
// reordered-artifact bug: a previous artifact with the same values but
// different run ordering AND unsorted per-run metric arrays (a tlcd-served
// artifact emits records in completion order; nothing guarantees the
// deserialized metrics arrays are sorted) must diff as identical — every
// metric compared, zero changed. The broken version looked metrics up with
// a sorted-order binary search, so an unsorted previous artifact silently
// dropped comparisons or matched wrong values.
func TestDiffMetricsOrderIndependent(t *testing.T) {
	mk := func(bench string, metrics tlc.MetricsSnapshot) record {
		return record{Design: "TLC", Benchmark: bench, Metrics: metrics}
	}
	// Previous artifact: runs reversed, metric arrays deliberately
	// anti-sorted.
	prev := document{Runs: []record{
		mk("mcf", tlc.MetricsSnapshot{
			{Name: "noc.flits", Value: 7},
			{Name: "l2.misses", Value: 4},
			{Name: "cpu.cycles", Value: 9},
		}),
		mk("gcc", tlc.MetricsSnapshot{
			{Name: "noc.flits", Value: 3},
			{Name: "l2.misses", Value: 2},
			{Name: "cpu.cycles", Value: 1},
		}),
	}}
	raw, err := json.Marshal(prev)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "prev.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Current artifact: same values, canonical order.
	cur := document{Runs: []record{
		mk("gcc", tlc.MetricsSnapshot{
			{Name: "cpu.cycles", Value: 1},
			{Name: "l2.misses", Value: 2},
			{Name: "noc.flits", Value: 3},
		}),
		mk("mcf", tlc.MetricsSnapshot{
			{Name: "cpu.cycles", Value: 9},
			{Name: "l2.misses", Value: 4},
			{Name: "noc.flits", Value: 7},
		}),
	}}
	got, err := readArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	changed, compared := diffMetrics(path, *got, cur, io.Discard)
	if changed != 0 {
		t.Errorf("reordered identical artifact reported %d changed metrics, want 0", changed)
	}
	if compared != 6 {
		t.Errorf("compared %d metrics, want all 6", compared)
	}

	// And a genuine change in an unsorted previous artifact is still found.
	cur.Runs[0].Metrics[1].Value = 999 // gcc l2.misses
	changed, compared = diffMetrics(path, *got, cur, io.Discard)
	if changed != 1 || compared != 6 {
		t.Errorf("diff = %d changed of %d compared, want 1 of 6", changed, compared)
	}
}
