package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tlc"
)

// TestDiffMetricsMissingArtifact covers the common trajectory mistake:
// pointing -diff-against at an artifact that was never generated. The error
// must be a single clear line naming the path (main exits nonzero on it),
// not a wrapped *PathError dump.
func TestDiffMetricsMissingArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nope.json")
	_, err := readArtifact(path)
	if err == nil {
		t.Fatalf("readArtifact(%q) = nil, want error", path)
	}
	msg := err.Error()
	if !strings.Contains(msg, path) {
		t.Errorf("error %q does not name the missing path %q", msg, path)
	}
	if !strings.Contains(msg, "no previous artifact") {
		t.Errorf("error %q does not say the artifact is missing", msg)
	}
	if strings.Contains(msg, "\n") {
		t.Errorf("error %q spans multiple lines", msg)
	}
}

// TestDiffMetricsMalformedArtifact: a file that exists but is not a
// tlcbench artifact must fail with a one-line message naming the path.
func TestDiffMetricsMalformedArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := readArtifact(path)
	if err == nil {
		t.Fatalf("readArtifact(%q) = nil, want error", path)
	}
	msg := err.Error()
	if !strings.Contains(msg, path) {
		t.Errorf("error %q does not name the path %q", msg, path)
	}
	if strings.Contains(msg, "\n") {
		t.Errorf("error %q spans multiple lines", msg)
	}
}

// TestDiffMetricsValidArtifact: a well-formed previous artifact diffs
// cleanly (nil error), whether metrics moved or not — drift is reported on
// stderr, it is not a failure.
func TestDiffMetricsValidArtifact(t *testing.T) {
	prev := document{
		Runs: []record{{
			Design:    "TLC",
			Benchmark: "gcc",
			Metrics: tlc.MetricsSnapshot{
				{Name: "l1.hits", Value: 100},
			},
		}},
	}
	raw, err := json.Marshal(prev)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "prev.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	cur := document{
		Runs: []record{{
			Design:    "TLC",
			Benchmark: "gcc",
			Metrics: tlc.MetricsSnapshot{
				{Name: "l1.hits", Value: 150},
			},
		}},
	}
	got, err := readArtifact(path)
	if err != nil {
		t.Fatalf("readArtifact on valid artifact: %v", err)
	}
	changed, compared := diffMetrics(path, *got, cur, 0, io.Discard)
	if changed != 1 || compared != 1 {
		t.Fatalf("diff = %d changed of %d compared, want 1 of 1", changed, compared)
	}
}

// TestDiffMetricsTolerance: -tol turns the exact diff into a symmetric
// relative band — drift within tol*max(|a|,|b|) is unchanged, drift beyond
// it is reported — and tol 0 stays exact down to the last bit.
func TestDiffMetricsTolerance(t *testing.T) {
	cases := []struct {
		old, new, tol float64
		changed       bool
	}{
		{100, 100, 0, false},         // identical, exact
		{100, 100.0001, 0, true},     // any drift, exact
		{100, 102, 0.03, false},      // 2% drift inside a 3% band
		{100, 104, 0.03, true},       // 4% drift outside it
		{102, 100, 0.03, false},      // symmetric: direction does not matter
		{0, 0, 0.03, false},          // both zero
		{0, 1, 0.03, true},           // zero to nonzero is a full-scale change
		{-100, -102, 0.03, false},    // negative values use magnitudes
		{1e-12, 1.02e-12, 0.03, false}, // relative, not absolute
	}
	for _, c := range cases {
		if got := metricChanged(c.old, c.new, c.tol); got != c.changed {
			t.Errorf("metricChanged(%g, %g, tol=%g) = %v, want %v",
				c.old, c.new, c.tol, got, c.changed)
		}
	}
}

// TestParseLaneBench: the -lane-bench-log parser must pull lane_speedup
// per workload out of real `go test -bench` output — tab-separated fields,
// -GOMAXPROCS suffix on sub-benchmark names, unrelated benchmark and
// chatter lines interleaved — and fail loudly on a log with no results.
func TestParseLaneBench(t *testing.T) {
	log := strings.Join([]string{
		"goos: linux",
		"goarch: amd64",
		"pkg: tlc",
		"BenchmarkWarmThroughput/gcc-4 \t 5\t 1000 ns/op",
		"BenchmarkLaneSweep/bzip-4         \t       3\t 279292635 ns/op\t       387.6 lane_Minstr_per_s\t         4.064 lane_speedup\t        95.38 scalar_Minstr_per_s",
		"BenchmarkLaneSweep/gcc            \t       3\t 471834522 ns/op\t       229.4 lane_Minstr_per_s\t         2.403 lane_speedup\t        95.45 scalar_Minstr_per_s",
		"PASS",
	}, "\n")
	path := filepath.Join(t.TempDir(), "bench.txt")
	if err := os.WriteFile(path, []byte(log), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := parseLaneBench(path)
	if err != nil {
		t.Fatalf("parseLaneBench: %v", err)
	}
	want := map[string]float64{"bzip": 4.064, "gcc": 2.403}
	if len(got) != len(want) {
		t.Fatalf("parsed %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("speedup[%q] = %g, want %g", k, got[k], v)
		}
	}

	empty := filepath.Join(t.TempDir(), "empty.txt")
	if err := os.WriteFile(empty, []byte("PASS\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := parseLaneBench(empty); err == nil {
		t.Error("parseLaneBench on a log without results = nil, want error")
	}
	if _, err := parseLaneBench(filepath.Join(t.TempDir(), "nope.txt")); err == nil {
		t.Error("parseLaneBench on a missing file = nil, want error")
	}
}

// TestDiffMetricsOrderIndependent is the regression test for the
// reordered-artifact bug: a previous artifact with the same values but
// different run ordering AND unsorted per-run metric arrays (a tlcd-served
// artifact emits records in completion order; nothing guarantees the
// deserialized metrics arrays are sorted) must diff as identical — every
// metric compared, zero changed. The broken version looked metrics up with
// a sorted-order binary search, so an unsorted previous artifact silently
// dropped comparisons or matched wrong values.
func TestDiffMetricsOrderIndependent(t *testing.T) {
	mk := func(bench string, metrics tlc.MetricsSnapshot) record {
		return record{Design: "TLC", Benchmark: bench, Metrics: metrics}
	}
	// Previous artifact: runs reversed, metric arrays deliberately
	// anti-sorted.
	prev := document{Runs: []record{
		mk("mcf", tlc.MetricsSnapshot{
			{Name: "noc.flits", Value: 7},
			{Name: "l2.misses", Value: 4},
			{Name: "cpu.cycles", Value: 9},
		}),
		mk("gcc", tlc.MetricsSnapshot{
			{Name: "noc.flits", Value: 3},
			{Name: "l2.misses", Value: 2},
			{Name: "cpu.cycles", Value: 1},
		}),
	}}
	raw, err := json.Marshal(prev)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "prev.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Current artifact: same values, canonical order.
	cur := document{Runs: []record{
		mk("gcc", tlc.MetricsSnapshot{
			{Name: "cpu.cycles", Value: 1},
			{Name: "l2.misses", Value: 2},
			{Name: "noc.flits", Value: 3},
		}),
		mk("mcf", tlc.MetricsSnapshot{
			{Name: "cpu.cycles", Value: 9},
			{Name: "l2.misses", Value: 4},
			{Name: "noc.flits", Value: 7},
		}),
	}}
	got, err := readArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	changed, compared := diffMetrics(path, *got, cur, 0, io.Discard)
	if changed != 0 {
		t.Errorf("reordered identical artifact reported %d changed metrics, want 0", changed)
	}
	if compared != 6 {
		t.Errorf("compared %d metrics, want all 6", compared)
	}

	// And a genuine change in an unsorted previous artifact is still found.
	cur.Runs[0].Metrics[1].Value = 999 // gcc l2.misses
	changed, compared = diffMetrics(path, *got, cur, 0, io.Discard)
	if changed != 1 || compared != 6 {
		t.Errorf("diff = %d changed of %d compared, want 1 of 6", changed, compared)
	}
}

// TestDiffHeadline: -diff-headline compares per-run cycles and ipc under
// the relative tolerance and ignores the embedded registry snapshots —
// the cross-execution-mode accuracy gate, where raw counters cover
// different detailed fractions and cannot be compared.
func TestDiffHeadline(t *testing.T) {
	prev := document{Runs: []record{
		{Design: "TLC", Benchmark: "gcc", Cycles: 100_000, IPC: 2.0,
			Metrics: tlc.MetricsSnapshot{{Name: "l2.misses", Value: 1216}}},
		{Design: "TLC", Benchmark: "mcf", Cycles: 500_000, IPC: 0.4},
	}}
	cur := document{Runs: []record{
		// Within 3% of prev, registry metric wildly different: headline
		// mode must pass where a metrics diff would scream.
		{Design: "TLC", Benchmark: "gcc", Cycles: 102_000, IPC: 1.96,
			Metrics: tlc.MetricsSnapshot{{Name: "l2.misses", Value: 446}}},
		// 10% off: both fields flagged.
		{Design: "TLC", Benchmark: "mcf", Cycles: 550_000, IPC: 0.36},
	}}

	changed, compared := diffHeadline("prev.json", prev, cur, 0.03, io.Discard)
	if compared != 4 {
		t.Errorf("compared %d headline values, want 4 (2 runs x cycles+ipc)", compared)
	}
	if changed != 2 {
		t.Errorf("%d headline values changed at 3%% tolerance, want 2 (mcf only)", changed)
	}
	if c, _ := diffHeadline("prev.json", prev, cur, 0.15, io.Discard); c != 0 {
		t.Errorf("%d headline values changed at 15%% tolerance, want 0", c)
	}
	// Exact mode still bites on the small drift.
	if c, _ := diffHeadline("prev.json", prev, cur, 0, io.Discard); c != 4 {
		t.Errorf("%d headline values changed at tol 0, want all 4", c)
	}
}
