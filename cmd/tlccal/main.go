// Command tlccal builds and checks the fast-tier calibration artifact
// (internal/calibrate/CALIBRATION.json): it runs every benchmark on every
// design at both fidelity tiers, fits per-benchmark error statistics
// (cycle-weighted bias + spread on cycles and IPC), and either writes the
// artifact or — with -against — rebuilds from scratch and diffs against a
// committed artifact with a per-benchmark drift tolerance. CI runs the
// check mode (scripts/calibration_check.sh), so a fast-core change that
// silently shifts error fails the build until the artifact is regenerated
// and re-committed with -out.
//
// Both tiers run at the artifact's recorded scale with deterministic
// integer cycle counts, so a rebuild on unchanged code reproduces the
// committed statistics exactly; the tolerance exists for deliberate,
// reviewed drift, not platform noise.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"tlc"
	"tlc/internal/calibrate"
	"tlc/internal/experiments"
)

func main() {
	warm := flag.Uint64("warm", 2_000_000, "warm instructions per run")
	run := flag.Uint64("run", 200_000, "timed instructions per run")
	seed := flag.Int64("seed", 1, "workload seed")
	par := flag.Int("par", runtime.NumCPU(), "simulation parallelism")
	out := flag.String("out", "internal/calibrate/CALIBRATION.json", "artifact output path")
	version := flag.Int("version", 1, "artifact version to stamp when writing")
	against := flag.String("against", "", "committed artifact to check: rebuild at its recorded scale and diff instead of writing")
	tol := flag.Float64("tol", 0.25, "per-benchmark drift tolerance for -against, in percentage points on bias and spread")
	flag.Parse()

	scale := calibrate.Scale{
		WarmInstructions: *warm,
		RunInstructions:  *run,
		Seed:             *seed,
		Designs:          len(tlc.Designs()),
	}
	var committed *calibrate.Artifact
	if *against != "" {
		a, err := calibrate.Load(*against)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tlccal: %v\n", err)
			os.Exit(1)
		}
		committed = a
		// Rebuild at the committed scale so the diff compares the same
		// experiment, whatever this invocation's scale flags say.
		scale = a.Scale
	}

	cells, err := measure(scale, *par)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tlccal: %v\n", err)
		os.Exit(1)
	}
	ver := *version
	if committed != nil {
		ver = committed.Version
	}
	art := calibrate.Fit(cells, scale, ver)

	if committed != nil {
		bad := calibrate.Compare(committed, art, *tol)
		if len(bad) > 0 {
			fmt.Fprintf(os.Stderr, "tlccal: calibration drift vs %s (tol %.3fpp):\n", *against, *tol)
			for _, line := range bad {
				fmt.Fprintf(os.Stderr, "  %s\n", line)
			}
			fmt.Fprintf(os.Stderr, "regenerate with: go run ./cmd/tlccal -out %s (then review and commit)\n", *against)
			os.Exit(1)
		}
		fmt.Printf("calibration check passed: %d benchmarks within %.3fpp of %s\n",
			len(committed.Benchmarks), *tol, *against)
		return
	}

	buf, err := art.Marshal()
	if err != nil {
		fmt.Fprintf(os.Stderr, "tlccal: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "tlccal: %v\n", err)
		os.Exit(1)
	}
	worst := 0.0
	for _, b := range art.Benchmarks {
		for _, v := range []float64{b.Cycles.MinPct, b.Cycles.MaxPct} {
			if v < 0 {
				v = -v
			}
			if v > worst {
				worst = v
			}
		}
	}
	fmt.Printf("wrote %s: version %d, %d benchmarks x %d designs, worst |cycle error| %.2f%%\n",
		*out, art.Version, len(art.Benchmarks), scale.Designs, worst)
}

// measure runs the full grid at both tiers and pairs the results into
// calibration cells. Each tier gets its own suite (checkpoints key on the
// fidelity tier, so there is nothing to share across them).
func measure(scale calibrate.Scale, par int) ([]calibrate.Cell, error) {
	designs := tlc.Designs()
	benches := tlc.Benchmarks()
	suite := func(fidelity string) (*experiments.Suite, error) {
		opt := tlc.DefaultOptions()
		opt.WarmInstructions = scale.WarmInstructions
		opt.RunInstructions = scale.RunInstructions
		opt.Seed = scale.Seed
		opt.Fidelity = fidelity
		opt.Checkpoints = tlc.NewCheckpointStore(len(designs)*len(benches), "")
		s := experiments.NewSuite(opt)
		if err := s.RunAll(designs, benches, par); err != nil {
			return nil, err
		}
		return s, nil
	}
	fullS, err := suite(tlc.FidelityFull)
	if err != nil {
		return nil, err
	}
	fastS, err := suite(tlc.FidelityFast)
	if err != nil {
		return nil, err
	}
	var cells []calibrate.Cell
	for _, d := range designs {
		for _, b := range benches {
			fu := fullS.Run(d, b)
			fa := fastS.Run(d, b)
			cells = append(cells, calibrate.Cell{
				Design:     d.String(),
				Benchmark:  b,
				FullCycles: fu.Cycles,
				FastCycles: fa.Cycles,
				FullIPC:    fu.IPC,
				FastIPC:    fa.IPC,
			})
		}
	}
	return cells, nil
}
