// Command tlcphys explores the physical models behind TLC: transmission-
// line extraction and signal integrity across geometry sweeps, the
// conventional-wire comparison, and the dynamic-power crossover.
//
//	tlcphys           # Table 1 analysis + delay comparison + power crossover
//	tlcphys -sweep    # width/length acceptance sweep (which geometries work)
package main

import (
	"flag"
	"fmt"

	"tlc/internal/power"
	"tlc/internal/report"
	"tlc/internal/tline"
	"tlc/internal/wire"
)

func main() {
	sweep := flag.Bool("sweep", false, "sweep conductor width x length acceptance")
	flag.Parse()

	t := report.NewTable("Transmission line analysis (Table 1 geometries)",
		"Length", "W (um)", "Z0 (ohm)", "C (pF/m)", "Rdc (ohm/m)", "Flight (ps)", "Cycles", "Amplitude", "Pulse (ps)", "Accept")
	for _, g := range tline.Table1() {
		s := tline.Analyze(g)
		t.AddRow(fmt.Sprintf("%.1f cm", g.LengthCM), g.WidthUM, s.RLC.Z0, s.RLC.CPerM*1e12,
			s.RLC.RdcPerM, s.FlightPs, s.DelayCycles, s.AmplitudeFrac, s.PulseWidthPs,
			fmt.Sprintf("%v", s.OK))
	}
	fmt.Println(t)

	d := report.NewTable("Global interconnect delay at 45 nm / 10 GHz",
		"Length (mm)", "Bare RC (cycles)", "Repeated RC (cycles)", "Transmission line (cycles)", "TL speedup vs repeated")
	gw := wire.Global45()
	rl := tline.Extract(tline.Table1()[2])
	for _, mm := range []float64{1, 2, 5, 9, 13, 20, 30} {
		bare := wire.UnrepeatedDelayPs(gw, mm) / wire.CyclePs
		rep := wire.Repeat(gw, mm).DelayCycles()
		tl := mm * 1e-3 / rl.Velocity * 1e12 / wire.CyclePs
		d.AddRow(mm, bare, rep, tl, rep/tl)
	}
	fmt.Println(d)

	p := report.NewTable("Dynamic power crossover: t_b/(2 Z0) < C favours transmission lines",
		"Length (mm)", "Conventional C (pF)", "TL equivalent (pF)", "TL cheaper", "RC energy/bit (pJ)", "TL energy/bit (pJ)")
	z0 := rl.Z0
	tlEquivalent := 100e-12 / (2 * z0) // t_b/(2 Z0)
	for _, mm := range []float64{1, 3, 5, 10, 13, 20} {
		c := gw.CPerMM * mm
		p.AddRow(mm, c*1e12, tlEquivalent*1e12,
			fmt.Sprintf("%v", tline.CheaperThanRC(z0, c)),
			power.RCWireEnergyPerBitJ(mm)*1e12,
			0.5*tline.EnergyPerBitJ(z0)*1e12)
	}
	fmt.Println(p)

	if *sweep {
		sw := report.NewTable("Acceptance sweep: conductor width vs length (S=W, H=1.75um, T=3um)",
			"W (um)", "0.5 cm", "0.9 cm", "1.1 cm", "1.3 cm", "1.6 cm", "2.0 cm")
		for _, w := range []float64{1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0} {
			row := []interface{}{w}
			for _, l := range []float64{0.5, 0.9, 1.1, 1.3, 1.6, 2.0} {
				s := tline.Analyze(tline.Geometry{WidthUM: w, SpacingUM: w, HeightUM: 1.75, ThicknessUM: 3.0, LengthCM: l})
				mark := "fail"
				if s.OK {
					mark = "ok"
				}
				row = append(row, mark)
			}
			sw.AddRow(row...)
		}
		fmt.Println(sw)
	}
}
