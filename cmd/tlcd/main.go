// Command tlcd serves the paper's evaluation as an HTTP API: POST a
// (design, benchmark, options) configuration to /v1/runs and get back the
// same run record a local tlcbench invocation would produce — byte-identical
// results, content-addressed caching, coalescing of identical in-flight
// requests, and explicit backpressure when the worker pool is saturated.
//
//	tlcd -addr :8080 -workers 8 -queue 32 -ckptdir /var/cache/tlc
//
// A fleet is the same binary in two roles. A coordinator owns no
// simulations — it consistent-hashes run keys across registered workers
// and proxies the run API; workers join it and pull remapped keys from
// each other's result caches before simulating:
//
//	tlcd -coordinator -addr :8080
//	tlcd -addr 127.0.0.1:0 -join http://127.0.0.1:8080   # × N workers
//
// -addr accepts ":0" to bind any free port; the chosen address is printed
// as "tlcd listening on <host:port>" for scripts to scrape.
//
// SIGINT/SIGTERM drain gracefully: intake stops (readyz flips to 503 so a
// coordinator stops routing here, while healthz stays 200 — the process is
// alive and its cache still answers peer fills), queued and executing runs
// finish, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"tlc"
	"tlc/internal/fleet"
	"tlc/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address (\":0\" binds a free port)")
		workers     = flag.Int("workers", runtime.NumCPU(), "concurrent simulation workers")
		queue       = flag.Int("queue", 0, "queued-run bound before 429s (default 4x workers)")
		cacheSize   = flag.Int("cache", 4096, "result cache entries")
		ckptdir     = flag.String("ckptdir", "", "checkpoint directory (adds a persistent warm-state tier)")
		timeout     = flag.Duration("timeout", 5*time.Minute, "default per-request deadline")
		maxTimeout  = flag.Duration("max-timeout", 30*time.Minute, "cap on client-requested deadlines")
		drainWait   = flag.Duration("drain", 2*time.Minute, "shutdown drain bound")
		seed        = flag.Int64("seed", 1, "base options seed for figure endpoints")
		quick       = flag.Bool("quick", false, "quick base options for figure endpoints (shorter runs)")
		cores       = flag.Int("cores", 1, "base options CMP core count for figure endpoints (run requests set their own)")
		sharing     = flag.String("sharing", "", "base options CMP sharing pattern: private|producer-consumer|migratory|read-mostly")
		fidelity    = flag.String("fidelity", "", "base options core timing tier for figure endpoints: full (default) or fast")
		coordinator = flag.Bool("coordinator", false, "run as a fleet coordinator (routes runs, simulates nothing)")
		join        = flag.String("join", "", "coordinator base URL to register with as a worker")
		advertise   = flag.String("advertise", "", "base URL peers reach this worker at (default http://<bound addr>)")
		heartbeat   = flag.Duration("heartbeat", 2*time.Second, "fleet registration/health-probe interval")
	)
	flag.Parse()

	if *coordinator && *join != "" {
		log.Fatal("tlcd: -coordinator and -join are mutually exclusive")
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("tlcd: listen %s: %v", *addr, err)
	}
	bound := ln.Addr().String()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *coordinator {
		runCoordinator(ctx, ln, bound, *heartbeat, *drainWait)
		return
	}

	base := tlc.DefaultOptions()
	base.Seed = *seed
	if *quick {
		base.WarmInstructions = 2_000_000
		base.RunInstructions = 200_000
	}
	if *cores < 1 {
		log.Fatalf("tlcd: -cores %d: need at least 1", *cores)
	}
	base.Cores = *cores
	base.Sharing = tlc.SharingSpec{Pattern: *sharing}
	base.Fidelity = *fidelity
	if err := base.Validate(); err != nil {
		log.Fatalf("tlcd: %v", err)
	}

	cfg := server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheSize:      *cacheSize,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		Checkpoints:    tlc.NewCheckpointStore(0, *ckptdir),
		Profiles:       tlc.NewPhaseProfileStore(0, *ckptdir),
		BaseOptions:    base,
	}

	var member *fleet.Member
	if *join != "" {
		self := *advertise
		if self == "" {
			self = "http://" + advertiseHost(bound)
		}
		member = fleet.Join(*join, self, *heartbeat, 0)
		cfg.PeerFill = member.PeerFill
		// Phase profiles peer-fill too: a worker about to profile a
		// workload first asks the key's ring owner for its cached
		// clustering (a pure Peek on the peer), so the fleet pays each
		// profiling pass once.
		cfg.Profiles.SetFill(member.ProfileFill)
		log.Printf("tlcd: joined fleet at %s as %s", *join, self)
	}

	srv := server.New(cfg)
	hs := &http.Server{Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() {
		log.Printf("tlcd listening on %s (%d workers, queue %d)", bound, *workers, queueOr(*queue, 4**workers))
		errc <- hs.Serve(ln)
	}()

	select {
	case err := <-errc:
		log.Fatalf("tlcd: %v", err)
	case <-ctx.Done():
	}

	// Leave the fleet first: stopping the heartbeat keeps a re-registration
	// from marking this draining worker routable again. The coordinator's
	// probe sees readyz 503 and stops sending new keys; the cache keeps
	// answering peer fills until the process exits.
	if member != nil {
		member.Close()
	}
	log.Printf("tlcd: draining (bound %v)", *drainWait)
	dctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	// Stop intake first so in-flight HTTP waiters get their answers, then
	// close the listener and let active handlers finish.
	drainErr := srv.Drain(dctx)
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("tlcd: http shutdown: %v", err)
	}
	if drainErr != nil {
		log.Fatalf("tlcd: drain: %v", drainErr)
	}
	fmt.Println("tlcd: drained cleanly")
}

// runCoordinator serves the fleet routing layer until the context signals
// shutdown.
func runCoordinator(ctx context.Context, ln net.Listener, bound string, heartbeat, drainWait time.Duration) {
	coord := fleet.NewCoordinator(fleet.Config{HealthInterval: heartbeat})
	hs := &http.Server{Handler: coord.Handler()}
	errc := make(chan error, 1)
	go func() {
		log.Printf("tlcd coordinator listening on %s", bound)
		errc <- hs.Serve(ln)
	}()
	select {
	case err := <-errc:
		log.Fatalf("tlcd: %v", err)
	case <-ctx.Done():
	}
	dctx, cancel := context.WithTimeout(context.Background(), drainWait)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("tlcd: http shutdown: %v", err)
	}
	coord.Close()
	fmt.Println("tlcd: drained cleanly")
}

// advertiseHost rewrites a bound listen address into one peers can dial:
// an unspecified host (":8080" binds "[::]" or "0.0.0.0") becomes
// loopback, which is right for single-machine fleets; multi-host fleets
// pass -advertise explicitly.
func advertiseHost(bound string) string {
	host, port, err := net.SplitHostPort(bound)
	if err != nil {
		return bound
	}
	if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		return net.JoinHostPort("127.0.0.1", port)
	}
	return bound
}

// queueOr mirrors server.New's queue default for the startup log line.
func queueOr(v, def int) int {
	if v > 0 {
		return v
	}
	return def
}
